# Empty compiler generated dependencies file for bench_ablation_mcts.
# This may be replaced when dependencies are built.
