#pragma once

// Obstacle-aware maze router: multi-source Dijkstra over a HananGrid.
//
// The router keeps per-vertex scratch arrays alive between calls and uses
// epoch stamping so that repeated searches (Prim's loop runs one per
// terminal) cost O(visited) instead of O(grid) to reset.

#include <limits>
#include <vector>

#include "hanan/hanan_grid.hpp"

namespace oar::route {

using hanan::HananGrid;
using hanan::Vertex;

class MazeRouter {
 public:
  explicit MazeRouter(const HananGrid& grid);

  /// Run Dijkstra from `sources` (all at distance 0).  If `targets` is
  /// non-empty the search stops as soon as the cheapest target is settled
  /// and returns it; otherwise the search exhausts the reachable region and
  /// returns kInvalidVertex.  Sources on blocked vertices are ignored.
  Vertex run(const std::vector<Vertex>& sources,
             const std::vector<Vertex>& targets = {});

  /// Distance of `v` from the nearest source in the last run; +inf when
  /// unreached.
  double dist(Vertex v) const;

  /// True when `v` was settled (finalized) in the last run.
  bool reached(Vertex v) const;

  /// Path from a source to `v` (inclusive), following parents of the last
  /// run.  `v` must have been reached.
  std::vector<Vertex> path_to(Vertex v) const;

  static constexpr double kInf = std::numeric_limits<double>::infinity();

 private:
  const HananGrid& grid_;
  std::vector<double> dist_;
  std::vector<Vertex> parent_;
  std::vector<std::uint32_t> epoch_;    // dist/parent validity stamp
  std::vector<std::uint32_t> settled_;  // settled stamp
  std::uint32_t current_epoch_ = 0;

  bool stamped(Vertex v) const { return epoch_[std::size_t(v)] == current_epoch_; }
};

}  // namespace oar::route
