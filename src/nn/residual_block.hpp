#pragma once

// 3D convolutional residual block (He et al. [8]), as used by the paper's
// selector: conv3x3x3 -> GroupNorm -> ReLU -> conv3x3x3 -> GroupNorm, plus
// an identity (or 1x1x1 projection) skip, joined by ReLU.

#include <memory>

#include "nn/activations.hpp"
#include "nn/conv3d.hpp"
#include "nn/group_norm.hpp"

namespace oar::nn {

class InferenceScratch;

class ResidualBlock3d : public Module {
 public:
  ResidualBlock3d(std::int32_t in_channels, std::int32_t out_channels, util::Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  /// Batched inference threading (N, C, ...) through the batched kernels
  /// of the submodules (no ReLU masks are recorded).
  Tensor forward_batch(const Tensor& input) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  void set_training(bool training) override;

  /// Single-sample inference fast path: tiled conv kernels with the norm /
  /// skip / ReLU steps fused in place, all temporaries from `arena`.  The
  /// returned tensor is arena-owned and stays valid until the arena is
  /// rewound past it.  `input` may itself live in `arena`.
  const Tensor& infer(const Tensor& input, InferenceScratch& arena);

  std::int32_t out_channels() const { return out_channels_; }

  // Read-only submodule access (quant calibration replays the fp32 path
  // and folds/quantizes the weights — nn/quant/quantize.cpp).
  const Conv3d& conv1() const { return conv1_; }
  const GroupNorm& norm1() const { return norm1_; }
  const Conv3d& conv2() const { return conv2_; }
  const GroupNorm& norm2() const { return norm2_; }
  /// Null for identity skips (in_channels == out_channels).
  const Conv3d* projection() const { return projection_.get(); }

  /// Largest group count <= 4 dividing `channels` (GroupNorm constraint).
  static std::int32_t pick_groups(std::int32_t channels);

 private:
  std::int32_t out_channels_;
  Conv3d conv1_;
  GroupNorm norm1_;
  ReLU relu1_;
  Conv3d conv2_;
  GroupNorm norm2_;
  std::unique_ptr<Conv3d> projection_;  // 1x1x1 when in != out channels
  std::vector<std::uint8_t> out_mask_;  // final ReLU mask
};

}  // namespace oar::nn
