# Empty compiler generated dependencies file for oar_gen.
# This may be replaced when dependencies are built.
