#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <thread>

namespace oar::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto f1 = pool.submit([] { return 21 * 2; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroCount) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ParallelForChunksAcrossWorkers) {
  // Chunked dispatch: each index records which thread ran it; with contiguous
  // ranges there can be at most min(count, size()) distinct runner threads,
  // and indices inside one chunk share a thread.
  ThreadPool pool(4);
  constexpr std::size_t kCount = 64;
  std::vector<std::thread::id> runner(kCount);
  pool.parallel_for(kCount, [&](std::size_t i) { runner[i] = std::this_thread::get_id(); });

  std::set<std::thread::id> distinct(runner.begin(), runner.end());
  EXPECT_LE(distinct.size(), pool.size());
  // Contiguity: the sequence of runner ids changes at most chunks-1 times.
  std::size_t switches = 0;
  for (std::size_t i = 1; i < kCount; ++i) {
    if (runner[i] != runner[i - 1]) ++switches;
  }
  EXPECT_LT(switches, pool.size());
}

TEST(ThreadPool, ParallelForFewerIndicesThanWorkers) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  try {
    pool.parallel_for(16, [&](std::size_t i) {
      calls++;
      if (i % 5 == 0) throw std::runtime_error("fail " + std::to_string(i));
    });
    FAIL() << "expected parallel_for to rethrow";
  } catch (const std::runtime_error& e) {
    // First exception in chunk order: index 0 throws in the first chunk.
    EXPECT_STREQ(e.what(), "fail 0");
  }
  // Every chunk ran up to its own first failure; nothing deadlocked.
  EXPECT_GE(calls.load(), 4);
}

TEST(ThreadPool, ManySmallTasks) {
  ThreadPool pool(8);
  std::atomic<long> total{0};
  pool.parallel_for(1000, [&](std::size_t i) { total += long(i); });
  EXPECT_EQ(total.load(), 999L * 1000 / 2);
}

}  // namespace
}  // namespace oar::util
