// AVX2 and AVX-512VL+VNNI kernels for the int8 NHWC convolution primitives
// (contract in simd.hpp).  Compiled WITHOUT -march=native: each kernel
// carries a per-function target attribute and is only reachable through the
// runtime __builtin_cpu_supports dispatch below, so the binary stays
// portable to any x86-64.
//
// Both levels share one body (simd_x86_conv.inc) parameterized on the
// 4-wide u8*s8 dot product: dpbusd directly on VNNI; maddubs (u8*s8 pair
// sums, saturation-free because activations are <= 127) + madd(1) + add on
// plain AVX2.  All arithmetic is exact integer, so the accumulators match
// the scalar reference bit for bit.

#include "nn/quant/simd.hpp"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <cstring>

namespace oar::nn::simd {
namespace {

// Scalar odd-OC tail for one voxel, shared by both vector levels (plain
// C++, identical sums to the scalar reference kernel).
inline void conv3_voxel_tail(const std::uint8_t* act, std::int32_t D1,
                             std::int32_t D2, std::int32_t ICp,
                             const std::int8_t* wp, std::int32_t OC,
                             std::int32_t o0, std::int32_t o1, std::int32_t o2,
                             std::int32_t k0_lo, std::int32_t k0_hi,
                             std::int32_t k1_lo, std::int32_t k1_hi,
                             std::int32_t k2_lo, std::int32_t k2_hi,
                             std::int32_t oc_begin, std::int32_t* out) {
  const std::int32_t G = ICp / 4;
  for (std::int32_t oc = oc_begin; oc < OC; ++oc) out[oc] = 0;
  for (std::int32_t k0 = k0_lo; k0 <= k0_hi; ++k0) {
    for (std::int32_t k1 = k1_lo; k1 <= k1_hi; ++k1) {
      const std::uint8_t* arow =
          act + ((std::int64_t(o0 + k0 - 1) * D1 + (o1 + k1 - 1)) * D2 +
                 (o2 - 1)) *
                    ICp;
      for (std::int32_t k2 = k2_lo; k2 <= k2_hi; ++k2) {
        const std::uint8_t* a = arow + std::int64_t(k2) * ICp;
        const std::int8_t* w =
            wp + std::int64_t((k0 * 3 + k1) * 3 + k2) * G * OC * 4;
        for (std::int32_t g = 0; g < G; ++g) {
          const std::uint8_t* ag = a + 4 * g;
          const std::int8_t* wg = w + std::int64_t(g) * OC * 4;
          for (std::int32_t oc = oc_begin; oc < OC; ++oc) {
            const std::int8_t* wo = wg + oc * 4;
            out[oc] += std::int32_t(ag[0]) * wo[0] + std::int32_t(ag[1]) * wo[1] +
                       std::int32_t(ag[2]) * wo[2] + std::int32_t(ag[3]) * wo[3];
          }
        }
      }
    }
  }
}

inline void conv1_voxel_tail(const std::uint8_t* a, std::int32_t ICp,
                             const std::int8_t* wp, std::int32_t OC,
                             std::int32_t oc_begin, std::int32_t* out) {
  const std::int32_t G = ICp / 4;
  for (std::int32_t oc = oc_begin; oc < OC; ++oc) out[oc] = 0;
  for (std::int32_t g = 0; g < G; ++g) {
    const std::uint8_t* ag = a + 4 * g;
    const std::int8_t* wg = wp + std::int64_t(g) * OC * 4;
    for (std::int32_t oc = oc_begin; oc < OC; ++oc) {
      const std::int8_t* wo = wg + oc * 4;
      out[oc] += std::int32_t(ag[0]) * wo[0] + std::int32_t(ag[1]) * wo[1] +
                 std::int32_t(ag[2]) * wo[2] + std::int32_t(ag[3]) * wo[3];
    }
  }
}

// ---------------------------------------------------------------------------
// AVX2: maddubs (u8 * s8 -> saturating i16 pair sums; never saturates for
// act <= 127) + madd(ones) to widen + add.
// ---------------------------------------------------------------------------

__attribute__((target("avx2"), always_inline)) inline __m256i
broadcast_group_avx2(const std::uint8_t* p) {
  std::uint32_t bits;
  std::memcpy(&bits, p, 4);
  return _mm256_set1_epi32(std::int32_t(bits));
}

__attribute__((target("avx2"), always_inline)) inline __m256i
dp_avx2(__m256i acc, __m256i a, __m256i w) {
  const __m256i ones = _mm256_set1_epi16(1);
  return _mm256_add_epi32(acc, _mm256_madd_epi16(_mm256_maddubs_epi16(a, w), ones));
}

#define OAR_KFN(name) __attribute__((target("avx2"))) name
#define OAR_DP(acc, a, w) dp_avx2((acc), (a), (w))
#define OAR_BCAST(p) broadcast_group_avx2(p)
#define OAR_SUFFIX _avx2
#include "nn/quant/simd_x86_conv.inc"

// ---------------------------------------------------------------------------
// AVX-512VL + VNNI: one dpbusd per (group, 8 output channels).
// ---------------------------------------------------------------------------

#define OAR_TARGET_VNNI "avx2,avx512f,avx512vl,avx512vnni"

__attribute__((target(OAR_TARGET_VNNI), always_inline)) inline __m256i
broadcast_group_vnni(const std::uint8_t* p) {
  std::uint32_t bits;
  std::memcpy(&bits, p, 4);
  return _mm256_set1_epi32(std::int32_t(bits));
}

#define OAR_KFN(name) __attribute__((target(OAR_TARGET_VNNI))) name
#define OAR_DP(acc, a, w) _mm256_dpbusd_epi32((acc), (a), (w))
#define OAR_BCAST(p) broadcast_group_vnni(p)
#define OAR_SUFFIX _vnni
#include "nn/quant/simd_x86_conv.inc"

constexpr Kernels kAvx2Kernels{conv3_nhwc_avx2, conv1_nhwc_avx2};
constexpr Kernels kVnniKernels{conv3_nhwc_vnni, conv1_nhwc_vnni};

}  // namespace

namespace detail {

const Kernels* avx2_kernels() {
  static const bool ok = __builtin_cpu_supports("avx2");
  return ok ? &kAvx2Kernels : nullptr;
}

const Kernels* avx2_vnni_kernels() {
  static const bool ok = __builtin_cpu_supports("avx2") &&
                         __builtin_cpu_supports("avx512vl") &&
                         __builtin_cpu_supports("avx512vnni");
  return ok ? &kVnniKernels : nullptr;
}

}  // namespace detail
}  // namespace oar::nn::simd

#else  // !x86

namespace oar::nn::simd::detail {
const Kernels* avx2_kernels() { return nullptr; }
const Kernels* avx2_vnni_kernels() { return nullptr; }
}  // namespace oar::nn::simd::detail

#endif
