// Fig. 10 reproduction: average routing-cost improvement ratio of the RL
// router over the [14]-class baseline, bucketed by obstacle ratio (blocked
// area over total area).  The paper's shape: the improvement grows as the
// layout gets more obstructed, across every test subset.

#include <array>

#include "bench_common.hpp"

int main() {
  using namespace oar;

  auto selector = bench::bench_selector();
  core::RlRouter ours(selector);
  steiner::Lin18Router lin18(bench::bench_lin18_config());

  // Sweep obstacle density explicitly (the generator analogue of the
  // paper's per-subset obstacle-ratio buckets) on two subset sizes.
  const std::array<double, 4> densities = {0.05, 0.10, 0.15, 0.20};
  struct SizeRow {
    const char* name;
    std::int32_t dim;
    int layouts;
  };
  const std::array<SizeRow, 2> sizes = {SizeRow{"T32/4", 8, 20}, SizeRow{"T64/4", 16, 12}};
  const double scale = bench::env_scale();

  std::printf("Fig. 10: avg improvement ratio vs obstacle ratio\n\n");
  std::printf("%-8s | %12s | %10s | %10s | %8s\n", "subset", "obstacle dens",
              "blocked%", "avg.imp%", "win%");
  bench::print_rule(64);

  for (const auto& size : sizes) {
    for (const double density : densities) {
      util::Rng rng(std::uint64_t(0xf16a + size.dim * 100 + int(density * 100)));
      gen::RandomGridSpec spec;
      spec.h = spec.v = size.dim;
      spec.m = 4;
      spec.min_pins = 3;
      spec.max_pins = std::max(4, size.dim / 2);
      const double cells = double(size.dim) * size.dim * spec.m;
      spec.min_obstacles = spec.max_obstacles =
          std::max(1, int(density * cells / 3.5));

      bench::CostDuel duel;
      util::RunningStats blocked;
      const int layouts = std::max(1, int(size.layouts * scale));
      for (int l = 0; l < layouts; ++l) {
        const hanan::HananGrid grid = gen::random_grid(spec, rng);
        const auto base = lin18.route(grid);
        const auto mine = ours.route(grid);
        if (!base.connected || !mine.connected) continue;
        duel.add(base.cost, mine.cost);
        blocked.add(100.0 * grid.blocked_ratio());
      }
      std::printf("%-8s | %12.2f | %9.1f%% | %9.3f%% | %6.1f%%\n", size.name,
                  density, blocked.mean(), duel.avg_imp_percent(), duel.win_rate());
    }
  }
  std::printf("\npaper shape: improvement ratio increases with obstacle ratio on"
              " every subset\n");
  return 0;
}
