#include "rl/augment.hpp"

#include <gtest/gtest.h>

#include "gen/random_layout.hpp"
#include "steiner/router_base.hpp"

namespace oar::rl {
namespace {

HananGrid test_grid(std::uint64_t seed) {
  util::Rng rng(seed);
  gen::RandomGridSpec spec;
  spec.h = 6;
  spec.v = 4;  // rectangular on purpose: rotation swaps dims
  spec.m = 3;
  spec.min_pins = 4;
  spec.max_pins = 5;
  spec.min_obstacles = 3;
  spec.max_obstacles = 5;
  spec.min_edge_cost = 1;
  spec.max_edge_cost = 9;
  return gen::random_grid(spec, rng);
}

TEST(Augment, SixteenUniqueSpecsIdentityFirst) {
  const auto specs = all_augmentations();
  EXPECT_EQ(specs[0], (AugmentSpec{0, false, false}));
  for (std::size_t i = 0; i < specs.size(); ++i) {
    for (std::size_t j = i + 1; j < specs.size(); ++j) {
      EXPECT_NE(specs[i], specs[j]);
    }
  }
}

TEST(Augment, IdentityPreservesEverything) {
  const HananGrid grid = test_grid(1);
  const HananGrid same = transform_grid(grid, AugmentSpec{});
  EXPECT_EQ(same.h_dim(), grid.h_dim());
  EXPECT_EQ(same.v_dim(), grid.v_dim());
  EXPECT_EQ(same.pins().size(), grid.pins().size());
  for (Vertex v = 0; v < grid.num_vertices(); ++v) {
    EXPECT_EQ(transform_vertex(grid, v, AugmentSpec{}), v);
    EXPECT_EQ(same.is_blocked(v), grid.is_blocked(v));
    EXPECT_EQ(same.is_pin(v), grid.is_pin(v));
  }
}

TEST(Augment, RotationSwapsDimensions) {
  const HananGrid grid = test_grid(2);
  const HananGrid rotated = transform_grid(grid, AugmentSpec{1, false, false});
  EXPECT_EQ(rotated.h_dim(), grid.v_dim());
  EXPECT_EQ(rotated.v_dim(), grid.h_dim());
  EXPECT_EQ(rotated.m_dim(), grid.m_dim());
  EXPECT_EQ(rotated.validate(), "");
}

class AugmentRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(AugmentRoundTripTest, FourRotationsAreIdentity) {
  const HananGrid grid = test_grid(std::uint64_t(GetParam()));
  HananGrid current = grid;
  for (int i = 0; i < 4; ++i) current = transform_grid(current, AugmentSpec{1, false, false});
  ASSERT_EQ(current.h_dim(), grid.h_dim());
  ASSERT_EQ(current.v_dim(), grid.v_dim());
  for (Vertex v = 0; v < grid.num_vertices(); ++v) {
    EXPECT_EQ(current.is_blocked(v), grid.is_blocked(v));
    EXPECT_EQ(current.is_pin(v), grid.is_pin(v));
  }
  for (std::int32_t h = 0; h + 1 < grid.h_dim(); ++h) {
    EXPECT_DOUBLE_EQ(current.x_step(h), grid.x_step(h));
  }
}

TEST_P(AugmentRoundTripTest, DoubleReflectionIsIdentity) {
  const HananGrid grid = test_grid(std::uint64_t(GetParam()) + 50);
  for (const AugmentSpec spec :
       {AugmentSpec{0, true, false}, AugmentSpec{0, false, true}}) {
    HananGrid once = transform_grid(grid, spec);
    HananGrid twice = transform_grid(once, spec);
    for (Vertex v = 0; v < grid.num_vertices(); ++v) {
      EXPECT_EQ(twice.is_blocked(v), grid.is_blocked(v));
      EXPECT_EQ(twice.is_pin(v), grid.is_pin(v));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AugmentRoundTripTest, ::testing::Range(1, 7));

class AugmentInvarianceTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AugmentInvarianceTest, RoutingCostIsInvariantUnderAllTransforms) {
  // Symmetry is the whole point of augmentation: the optimal tree cost must
  // be identical in every transformed layout.
  const HananGrid grid = test_grid(99);
  const double base_mst = steiner::mst_cost(grid);
  const auto spec = all_augmentations()[GetParam()];
  const HananGrid transformed = transform_grid(grid, spec);
  EXPECT_NEAR(steiner::mst_cost(transformed), base_mst, 1e-9);

  route::OarmstRouter base_router(grid);
  route::OarmstRouter trans_router(transformed);
  EXPECT_NEAR(trans_router.build(transformed.pins()).cost,
              base_router.build(grid.pins()).cost, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllSixteen, AugmentInvarianceTest,
                         ::testing::Range(std::size_t(0), std::size_t(16)));

TEST(Augment, LabelFollowsVertices) {
  const HananGrid grid = test_grid(3);
  std::vector<float> label(std::size_t(grid.num_vertices()), 0.0f);
  // Tag three vertices with distinct values.
  const Vertex a = grid.index(1, 2, 0), b = grid.index(5, 0, 2), c = grid.index(0, 3, 1);
  label[std::size_t(grid.priority_of(a))] = 0.25f;
  label[std::size_t(grid.priority_of(b))] = 0.5f;
  label[std::size_t(grid.priority_of(c))] = 0.75f;

  for (const auto& spec : all_augmentations()) {
    const HananGrid tg = transform_grid(grid, spec);
    const auto tl = transform_label(grid, label, spec);
    EXPECT_FLOAT_EQ(
        tl[std::size_t(tg.priority_of(transform_vertex(grid, a, spec)))], 0.25f);
    EXPECT_FLOAT_EQ(
        tl[std::size_t(tg.priority_of(transform_vertex(grid, b, spec)))], 0.5f);
    EXPECT_FLOAT_EQ(
        tl[std::size_t(tg.priority_of(transform_vertex(grid, c, spec)))], 0.75f);
    // Mass conservation.
    double total = 0.0;
    for (float l : tl) total += l;
    EXPECT_NEAR(total, 1.5, 1e-6);
  }
}

TEST(Augment, TransformedGridsValidate) {
  const HananGrid grid = test_grid(4);
  for (const auto& spec : all_augmentations()) {
    EXPECT_EQ(transform_grid(grid, spec).validate(), "");
  }
}

}  // namespace
}  // namespace oar::rl
