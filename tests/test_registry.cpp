#include "core/registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "gen/random_layout.hpp"
#include "steiner/lin08.hpp"
#include "steiner/lin18.hpp"

namespace oar::core {
namespace {

TEST(Registry, BuiltInsArePresent) {
  auto& registry = RouterRegistry::instance();
  for (const char* name : {"lin08", "liu14", "lin18", "oracle", "rl-ours"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
  }
  EXPECT_FALSE(registry.contains("nope"));
  EXPECT_EQ(registry.create("nope"), nullptr);
}

TEST(Registry, NamesAreSorted) {
  const auto names = RouterRegistry::instance().names();
  EXPECT_GE(names.size(), 5u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(Registry, CreatedRouterRoutes) {
  auto router = RouterRegistry::instance().create("lin08");
  ASSERT_NE(router, nullptr);
  EXPECT_EQ(router->name(), "lin08");

  util::Rng rng(3);
  gen::RandomGridSpec spec;
  spec.h = 6;
  spec.v = 6;
  spec.m = 2;
  spec.min_obstacles = 2;
  spec.max_obstacles = 4;
  const auto grid = gen::random_grid(spec, rng);
  const auto result = router->route(grid);
  EXPECT_TRUE(result.connected);
  EXPECT_EQ(result.tree.validate(grid.pins()), "");
}

TEST(Registry, CustomRegistrationAndReplacement) {
  RouterRegistry registry;
  int calls = 0;
  registry.register_router("custom", [&calls] {
    ++calls;
    return std::unique_ptr<steiner::Router>(new steiner::Lin08Router());
  });
  EXPECT_TRUE(registry.contains("custom"));
  auto r = registry.create("custom");
  EXPECT_NE(r, nullptr);
  EXPECT_EQ(calls, 1);

  // Replacement under the same name wins.
  registry.register_router("custom", [] {
    return std::unique_ptr<steiner::Router>(new steiner::Lin18Router());
  });
  EXPECT_EQ(registry.create("custom")->name(), "lin18");
  EXPECT_EQ(registry.names().size(), 1u);
}

}  // namespace
}  // namespace oar::core
