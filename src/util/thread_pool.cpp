#include "util/thread_pool.hpp"

#include <algorithm>

namespace oar::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !jobs_.empty(); });
      if (stopping_ && jobs_.empty()) return;
      job = std::move(jobs_.front());
      jobs_.pop();
    }
    job();
  }
}

void ThreadPool::parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  for (auto& f : futures) f.get();
}

}  // namespace oar::util
