#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <set>
#include <thread>

namespace oar::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto f1 = pool.submit([] { return 21 * 2; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroCount) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ParallelForChunksAcrossWorkers) {
  // Chunked dispatch: each index records which thread ran it; with contiguous
  // ranges there can be at most min(count, size()) distinct runner threads,
  // and indices inside one chunk share a thread.
  ThreadPool pool(4);
  constexpr std::size_t kCount = 64;
  std::vector<std::thread::id> runner(kCount);
  pool.parallel_for(kCount, [&](std::size_t i) { runner[i] = std::this_thread::get_id(); });

  std::set<std::thread::id> distinct(runner.begin(), runner.end());
  EXPECT_LE(distinct.size(), pool.size());
  // Contiguity: the sequence of runner ids changes at most chunks-1 times.
  std::size_t switches = 0;
  for (std::size_t i = 1; i < kCount; ++i) {
    if (runner[i] != runner[i - 1]) ++switches;
  }
  EXPECT_LT(switches, pool.size());
}

TEST(ThreadPool, ParallelForFewerIndicesThanWorkers) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  try {
    pool.parallel_for(16, [&](std::size_t i) {
      calls++;
      if (i % 5 == 0) throw std::runtime_error("fail " + std::to_string(i));
    });
    FAIL() << "expected parallel_for to rethrow";
  } catch (const std::runtime_error& e) {
    // First exception in chunk order: index 0 throws in the first chunk.
    EXPECT_STREQ(e.what(), "fail 0");
  }
  // Every chunk ran up to its own first failure; nothing deadlocked.
  EXPECT_GE(calls.load(), 4);
}

TEST(ThreadPool, NestedParallelForRunsInlineInsteadOfDeadlocking) {
  // The worker-reentrancy contract: parallel_for issued from inside a pool
  // task executes inline on the calling worker.  Before this contract a
  // nested call on a single-worker pool hung forever — the outer task held
  // the only worker while waiting on chunks that could never be scheduled
  // (the eval-server drain / RouterService layering hazard).
  ThreadPool pool(1);
  std::vector<std::atomic<int>> hits(16);
  std::atomic<int> outer_runs{0};
  pool.parallel_for(2, [&](std::size_t) {
    outer_runs++;
    pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i]++; });
  });
  EXPECT_EQ(outer_runs.load(), 2);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 2);
}

TEST(ThreadPool, NestedParallelForOnDifferentPoolStillFansOut) {
  ThreadPool outer(2);
  ThreadPool inner(2);
  std::atomic<int> total{0};
  outer.parallel_for(2, [&](std::size_t) {
    // A different pool is not reentrant: the call goes through the normal
    // chunked dispatch (and must also not deadlock).
    EXPECT_FALSE(inner.current_thread_in_pool());
    inner.parallel_for(8, [&](std::size_t) { total++; });
  });
  EXPECT_EQ(total.load(), 16);
}

TEST(ThreadPool, CurrentThreadInPoolIdentifiesWorkers) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.current_thread_in_pool());
  auto inside = pool.submit([&] { return pool.current_thread_in_pool(); });
  EXPECT_TRUE(inside.get());
}

TEST(ThreadPool, SubmitFromWorkerDoesNotBlock) {
  // submit() (unlike a naive nested parallel_for) never waits, so chaining
  // work from inside a task is safe even on a one-worker pool as long as
  // the outer task does not block on the inner future.
  ThreadPool pool(1);
  std::atomic<bool> inner_ran{false};
  auto outer = pool.submit([&] {
    pool.submit([&] { inner_ran = true; });
  });
  outer.get();
  // The inner task runs after the outer returns; drain by destroying later.
  // Wait briefly for the single worker to pick it up.
  for (int i = 0; i < 1000 && !inner_ran.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(inner_ran.load());
}

TEST(ThreadPool, ManySmallTasks) {
  ThreadPool pool(8);
  std::atomic<long> total{0};
  pool.parallel_for(1000, [&](std::size_t i) { total += long(i); });
  EXPECT_EQ(total.load(), 999L * 1000 / 2);
}

}  // namespace
}  // namespace oar::util
