#include "chip/netlist.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace oar::chip {
namespace {

HananGrid open_grid(std::int32_t h, std::int32_t v, std::int32_t m) {
  return HananGrid(h, v, m, std::vector<double>(std::size_t(h - 1), 1.0),
                   std::vector<double>(std::size_t(v - 1), 1.0), 1.5);
}

Netlist two_net_list(const HananGrid& grid) {
  Netlist netlist;
  netlist.name = "demo";
  netlist.nets.push_back(
      {"a", {grid.index(0, 0, 0), grid.index(3, 0, 0), grid.index(3, 3, 1)}});
  netlist.nets.push_back({"b", {grid.index(0, 3, 0), grid.index(1, 3, 0)}});
  return netlist;
}

TEST(Netlist, CountsAndValidatesCleanList) {
  const auto grid = open_grid(4, 4, 2);
  const Netlist netlist = two_net_list(grid);
  EXPECT_EQ(netlist.size(), 2u);
  EXPECT_EQ(netlist.total_pins(), 5);
  EXPECT_EQ(netlist.validate(grid), "");
}

TEST(Netlist, WriteReadRoundTrip) {
  const auto grid = open_grid(4, 4, 2);
  const Netlist netlist = two_net_list(grid);

  std::ostringstream out;
  ASSERT_TRUE(write_netlist(netlist, grid, out));

  std::istringstream in(out.str());
  std::string error;
  const auto parsed = read_netlist(in, grid, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->name, "demo");
  ASSERT_EQ(parsed->nets.size(), 2u);
  EXPECT_EQ(parsed->nets[0].name, "a");
  EXPECT_EQ(parsed->nets[0].pins, netlist.nets[0].pins);
  EXPECT_EQ(parsed->nets[1].name, "b");
  EXPECT_EQ(parsed->nets[1].pins, netlist.nets[1].pins);
}

TEST(Netlist, ParserSkipsCommentsAndBlankLines) {
  const auto grid = open_grid(4, 4, 1);
  std::istringstream in(
      "# a netlist\n"
      "oarnetlist 1\n"
      "\n"
      "net a  0 0 0  3 3 0\n"
      "# trailing comment\n"
      "end\n");
  std::string error;
  const auto parsed = read_netlist(in, grid, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->nets.size(), 1u);
}

struct RejectCase {
  const char* label;
  const char* text;
  const char* needle;  // must appear in the error
};

TEST(Netlist, ParserRejectsMalformedInput) {
  const auto grid = open_grid(4, 4, 2);
  const RejectCase cases[] = {
      {"bad version", "oarnetlist 2\nend\n", "version"},
      {"net before header", "net a 0 0 0 1 0 0\nend\n", "before oarnetlist"},
      {"missing end", "oarnetlist 1\nnet a 0 0 0 1 0 0\n", "end marker"},
      {"missing header", "net a 0 0 0 1 0 0\n", "before oarnetlist"},
      {"empty input", "", "header"},
      {"unknown keyword", "oarnetlist 1\nwire a 0 0 0\nend\n", "unknown"},
      {"nameless net", "oarnetlist 1\nnet\nend\n", "without a name"},
      {"bad name line", "oarnetlist 1\nname\nend\n", "bad name"},
      {"partial triple", "oarnetlist 1\nnet a 0 0 0  1 0\nend\n",
       "malformed pin triples"},
      {"non-numeric coord", "oarnetlist 1\nnet a 0 0 0  x 0 0\nend\n",
       "malformed pin triples"},
      {"one pin", "oarnetlist 1\nnet a 0 0 0\nend\n", "fewer than 2 pins"},
      {"out of range", "oarnetlist 1\nnet a 0 0 0  9 0 0\nend\n",
       "outside the 4x4x2 grid"},
      {"duplicate net name",
       "oarnetlist 1\nnet a 0 0 0 1 0 0\nnet a 2 0 0 3 0 0\nend\n",
       "duplicate net name"},
  };
  for (const auto& c : cases) {
    std::istringstream in(c.text);
    std::string error;
    const auto parsed = read_netlist(in, grid, &error);
    EXPECT_FALSE(parsed.has_value()) << c.label;
    EXPECT_NE(error.find(c.needle), std::string::npos)
        << c.label << ": " << error;
  }
}

TEST(Netlist, ParserErrorsNameTheLine) {
  const auto grid = open_grid(4, 4, 1);
  std::istringstream in("oarnetlist 1\n# comment\nnet a 0 0 0\nend\n");
  std::string error;
  EXPECT_FALSE(read_netlist(in, grid, &error).has_value());
  EXPECT_NE(error.find("(line 3)"), std::string::npos) << error;
}

TEST(Netlist, ValidateRejectsEmptyAndDuplicateNames) {
  const auto grid = open_grid(4, 4, 1);
  Netlist netlist;
  netlist.nets.push_back({"", {grid.index(0, 0, 0), grid.index(1, 0, 0)}});
  EXPECT_NE(netlist.validate(grid).find("be non-empty"), std::string::npos);

  netlist.nets[0].name = "a";
  netlist.nets.push_back({"a", {grid.index(0, 1, 0), grid.index(1, 1, 0)}});
  EXPECT_NE(netlist.validate(grid).find("be unique"), std::string::npos);
}

TEST(Netlist, ValidateRejectsTooFewAndOutOfRangePins) {
  const auto grid = open_grid(4, 4, 1);
  Netlist netlist;
  netlist.nets.push_back({"solo", {grid.index(0, 0, 0)}});
  EXPECT_NE(netlist.validate(grid).find("at least 2 pins"), std::string::npos);

  netlist.nets[0].pins = {grid.index(0, 0, 0), Vertex(999)};
  EXPECT_NE(netlist.validate(grid).find("valid grid vertex"),
            std::string::npos);
}

TEST(Netlist, ValidateRejectsBlockedPinNamingTheNet) {
  auto grid = open_grid(4, 4, 1);
  grid.block_vertex(grid.index(2, 2, 0));
  Netlist netlist;
  netlist.nets.push_back({"clk", {grid.index(0, 0, 0), grid.index(2, 2, 0)}});
  const std::string problem = netlist.validate(grid);
  EXPECT_NE(problem.find("nets[\"clk\"].pins[1]"), std::string::npos)
      << problem;
  EXPECT_NE(problem.find("blocked (obstacle) vertex"), std::string::npos);
  EXPECT_NE(problem.find("(2, 2, 0)"), std::string::npos);
}

TEST(Netlist, ValidateRejectsDuplicatePinWithinNet) {
  const auto grid = open_grid(4, 4, 1);
  Netlist netlist;
  netlist.nets.push_back(
      {"a", {grid.index(0, 0, 0), grid.index(1, 0, 0), grid.index(0, 0, 0)}});
  const std::string problem = netlist.validate(grid);
  EXPECT_NE(problem.find("not duplicate a pin"), std::string::npos) << problem;
  EXPECT_NE(problem.find("pins[2]"), std::string::npos);
}

TEST(Netlist, ValidateRejectsCrossNetShortNamingBothNets) {
  const auto grid = open_grid(4, 4, 1);
  Netlist netlist;
  netlist.nets.push_back({"vdd", {grid.index(0, 0, 0), grid.index(3, 0, 0)}});
  netlist.nets.push_back({"gnd", {grid.index(3, 0, 0), grid.index(3, 3, 0)}});
  const std::string problem = netlist.validate(grid);
  EXPECT_NE(problem.find("nets[\"gnd\"].pins[0]"), std::string::npos)
      << problem;
  EXPECT_NE(problem.find("net \"vdd\""), std::string::npos);
  EXPECT_NE(problem.find("electrical short"), std::string::npos);
}

TEST(Netlist, LoadReportsMissingFile) {
  const auto grid = open_grid(4, 4, 1);
  std::string error;
  EXPECT_FALSE(
      load_netlist("/nonexistent/netlist.txt", grid, &error).has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace oar::chip
