#include "geom/layout.hpp"

#include <gtest/gtest.h>

namespace oar::geom {
namespace {

TEST(Rect, ContainsClosedVsStrict) {
  const Rect r(0, 0, 4, 4);
  EXPECT_TRUE(r.contains({0, 0}));
  EXPECT_TRUE(r.contains({4, 4}));
  EXPECT_TRUE(r.contains({2, 2}));
  EXPECT_FALSE(r.contains({5, 2}));
  EXPECT_FALSE(r.strictly_contains({0, 2}));  // boundary
  EXPECT_FALSE(r.strictly_contains({4, 4}));
  EXPECT_TRUE(r.strictly_contains({2, 2}));
}

TEST(Rect, IntersectionVariants) {
  const Rect a(0, 0, 4, 4), b(4, 4, 8, 8), c(5, 5, 9, 9);
  EXPECT_TRUE(a.intersects(b));            // touching corner counts
  EXPECT_FALSE(a.interior_intersects(b));  // but interiors do not overlap
  EXPECT_FALSE(a.intersects(c));
  const Rect d(2, 2, 6, 6);
  EXPECT_TRUE(a.interior_intersects(d));
}

TEST(Rect, AreaAndUnion) {
  const Rect a(0, 0, 2, 3);
  EXPECT_EQ(a.area(), 6);
  const Rect u = a.united(Rect(5, 5, 6, 6));
  EXPECT_EQ(u, Rect(0, 0, 6, 6));
}

TEST(Manhattan, Distances) {
  EXPECT_EQ(manhattan({0, 0}, {3, 4}), 7);
  EXPECT_EQ(manhattan({3, 4}, {0, 0}), 7);
  EXPECT_EQ(manhattan({-2, -2}, {2, 2}), 8);
}

TEST(Layout, ValidLayoutPassesValidation) {
  Layout layout(100, 100, 4, 3.0);
  layout.add_pin(10, 10, 0);
  layout.add_pin(90, 90, 3);
  layout.add_obstacle(Rect(40, 40, 60, 60), 1);
  EXPECT_EQ(layout.validate(), "");
}

TEST(Layout, DetectsOutOfBoundsPin) {
  Layout layout(10, 10, 2, 3.0);
  layout.add_pin(5, 5, 0);
  layout.add_pin(11, 5, 0);
  EXPECT_NE(layout.validate().find("out of bounds"), std::string::npos);
}

TEST(Layout, DetectsBadLayerAndFewPins) {
  Layout layout(10, 10, 2, 3.0);
  layout.add_pin(5, 5, 7);
  EXPECT_NE(layout.validate().find("fewer than 2 pins"), std::string::npos);
  EXPECT_NE(layout.validate().find("layer"), std::string::npos);
}

TEST(Layout, DetectsBuriedPin) {
  Layout layout(10, 10, 1, 3.0);
  layout.add_pin(5, 5, 0);
  layout.add_pin(1, 1, 0);
  layout.add_obstacle(Rect(3, 3, 7, 7), 0);
  EXPECT_TRUE(layout.has_buried_pin());
  EXPECT_NE(layout.validate().find("inside an obstacle"), std::string::npos);
}

TEST(Layout, PinOnObstacleBoundaryIsNotBuried) {
  Layout layout(10, 10, 1, 3.0);
  layout.add_pin(3, 5, 0);  // on the left edge of the obstacle
  layout.add_pin(0, 0, 0);
  layout.add_obstacle(Rect(3, 3, 7, 7), 0);
  EXPECT_FALSE(layout.has_buried_pin());
}

TEST(Layout, ObstacleRatioSingleRect) {
  Layout layout(10, 10, 1, 3.0);
  layout.add_obstacle(Rect(0, 0, 5, 10), 0);
  EXPECT_DOUBLE_EQ(layout.obstacle_ratio(), 0.5);
}

TEST(Layout, ObstacleRatioCountsOverlapOnce) {
  Layout layout(10, 10, 1, 3.0);
  layout.add_obstacle(Rect(0, 0, 6, 10), 0);
  layout.add_obstacle(Rect(4, 0, 10, 10), 0);  // overlaps previous
  EXPECT_DOUBLE_EQ(layout.obstacle_ratio(), 1.0);
}

TEST(Layout, ObstacleRatioAveragesOverLayers) {
  Layout layout(10, 10, 2, 3.0);
  layout.add_obstacle(Rect(0, 0, 10, 10), 0);  // covers layer 0 fully
  EXPECT_DOUBLE_EQ(layout.obstacle_ratio(), 0.5);
}

}  // namespace
}  // namespace oar::geom
