#include "route/maze.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace oar::route {

namespace {

// Registered once, incremented lock-free ever after (DESIGN.md §12).
struct MazeObs {
  obs::Counter& epochs;
  obs::Counter& heap_pushes;
  obs::Counter& adjacency_rebuilds;
};

MazeObs& maze_obs() {
  auto& reg = obs::MetricsRegistry::instance();
  static MazeObs o{
      reg.counter("oar_route_maze_epochs_total",
                  "Dijkstra search epochs started (MazeRouter::begin)"),
      reg.counter("oar_route_maze_heap_pushes_total",
                  "Heap pushes performed by the maze relaxation loop"),
      reg.counter("oar_route_maze_adjacency_rebuilds_total",
                  "CSR adjacency cache rebuilds (MazeRouter::bind misses)"),
  };
  return o;
}

}  // namespace

MazeRouter::MazeRouter(const HananGrid& grid) { bind(grid); }

void MazeRouter::bind(const HananGrid& grid) {
  const bool adjacency_current =
      grid_ == &grid && bound_revision_ == grid.revision();
  grid_ = &grid;
  const auto n = std::size_t(grid.num_vertices());
  if (state_.size() < n) {
    // Grow-only: a pooled router bound to a smaller grid keeps its arrays.
    // Stale contents are harmless — stamps from other epochs never match.
    state_.resize(n, State{kInf, hanan::kInvalidVertex, 0, 0, 0});
  }
  if (adjacency_current) return;

  // Flatten the usable edges into CSR arrays once per (grid, revision); the
  // relaxation loop is then a contiguous scan with no per-edge coordinate
  // math or blocked checks.
  maze_obs().adjacency_rebuilds.inc();
  bound_revision_ = grid.revision();
  adj_offset_.assign(n + 1, 0);
  adj_vertex_.clear();
  adj_cost_.clear();
  for (Vertex v = 0; v < grid.num_vertices(); ++v) {
    grid.for_each_neighbor(v, [&](Vertex nb, double w) {
      adj_vertex_.push_back(nb);
      adj_cost_.push_back(w);
    });
    adj_offset_[std::size_t(v) + 1] = std::int32_t(adj_vertex_.size());
  }
}

// The heap is the hottest part of the router (the relaxation loop performs
// tens of thousands of pushes/pops per OARMST build), so it is a hand-rolled
// 4-ary min-heap: half the levels of a binary heap, hole-based sifts instead
// of swap chains.  Pop order stays fully deterministic — the comparator is a
// total lexicographic order on (distance, vertex), so any correct min-heap
// pops the same sequence; bitwise equivalence between the incremental and
// from-scratch modes does not depend on heap shape.
void MazeRouter::push_entry(double d, Vertex v) {
  ++heap_pushes_pending_;  // flushed to the obs registry per continue_run
  const Entry e{d, v};
  std::size_t i = heap_.size();
  heap_.push_back(e);
  while (i > 0) {
    const std::size_t p = (i - 1) >> 2;
    if (!(e < heap_[p])) break;
    heap_[i] = heap_[p];
    i = p;
  }
  heap_[i] = e;
}

MazeRouter::Entry MazeRouter::pop_entry() {
  const Entry top = heap_.front();
  const Entry last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n > 0) {
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = (i << 2) + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t end = std::min(first + 4, n);
      for (std::size_t c = first + 1; c < end; ++c) {
        if (heap_[c] < heap_[best]) best = c;
      }
      if (!(heap_[best] < last)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }
  return top;
}

void MazeRouter::sift_down(std::size_t i) {
  const Entry e = heap_[i];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = (i << 2) + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t end = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < end; ++c) {
      if (heap_[c] < heap_[best]) best = c;
    }
    if (!(heap_[best] < e)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

// Across the continuations of one epoch the heap accumulates stale entries:
// every relaxation that improves an already-queued vertex leaves the old
// (larger-distance) entry behind, and settled vertices' duplicates linger
// too.  Left alone, each of those costs a full O(log n) pop just to be
// skipped.  This drops them in one linear pass and re-heapifies.  Only the
// multiset of *live* entries — which fully determines the pop sequence —
// survives, so compaction cannot perturb the search result.
void MazeRouter::compact_heap() {
  std::size_t w = 0;
  for (const Entry& e : heap_) {
    const State& s = state_[std::size_t(e.second)];
    if (s.epoch == current_epoch_ && e.first == s.dist &&
        s.settled != current_epoch_) {
      heap_[w++] = e;
    }
  }
  heap_.resize(w);
  if (w > 1) {
    for (std::size_t i = (w - 2) >> 2;; --i) {
      sift_down(i);
      if (i == 0) break;
    }
  }
}

void MazeRouter::begin(const std::vector<Vertex>& sources) {
  assert(grid_ != nullptr);
  // The grid may have been mutated in place (block_vertex etc.) since the
  // last bind; a new search must see the current topology.
  if (bound_revision_ != grid_->revision()) bind(*grid_);
  maze_obs().epochs.inc();
  heap_.clear();
  ++current_epoch_;
  if (current_epoch_ == 0) {  // stamp wrap-around: hard reset
    for (State& s : state_) {
      s.epoch = 0;
      s.settled = 0;
    }
    current_epoch_ = 1;
  }
  add_sources(sources);
}

void MazeRouter::add_sources(const std::vector<Vertex>& sources) {
  for (Vertex s : sources) add_source(s);
}

void MazeRouter::add_source(Vertex s) {
  assert(grid_ != nullptr && current_epoch_ != 0);
  assert(s >= 0 && s < grid_->num_vertices());
  if (grid_->is_blocked(s)) return;
  State& st = state_[std::size_t(s)];
  if (stamped(s) && st.dist <= 0.0) return;
  st.dist = 0.0;
  st.parent = s;  // parent(source) == itself terminates path walks
  st.epoch = current_epoch_;
  // A settled vertex that becomes a source re-opens for relaxation.
  if (st.settled == current_epoch_) st.settled = 0;
  push_entry(0.0, s);
}

Vertex MazeRouter::continue_run(const std::vector<Vertex>& targets) {
  assert(grid_ != nullptr && current_epoch_ != 0);

  // Shed the stale entries accumulated by earlier continuations before
  // paying pop cost on them (threshold skips the pass for small frontiers,
  // where the linear scan would cost more than the pops it saves).
  if (heap_.size() >= 512) compact_heap();

  ++target_stamp_;
  if (target_stamp_ == 0) {  // mark-stamp wrap-around: hard reset
    for (State& s : state_) s.target = 0;
    target_stamp_ = 1;
  }
  for (Vertex t : targets) {
    assert(t >= 0 && t < grid_->num_vertices());
    state_[std::size_t(t)].target = target_stamp_;
    // A target settled by an earlier continuation consumed its heap entry;
    // push it back at its stamped distance so it can be re-discovered.
    if (stamped(t)) push_entry(state_[std::size_t(t)].dist, t);
  }
  const bool have_targets = !targets.empty();

  Vertex found = hanan::kInvalidVertex;
  while (found == hanan::kInvalidVertex && !heap_.empty()) {
    const auto [d, u] = pop_entry();
    State& su = state_[std::size_t(u)];
    if (su.epoch != current_epoch_ || d > su.dist) continue;  // stale entry
    const bool is_target = have_targets && su.target == target_stamp_;
    if (!is_target && su.settled == current_epoch_) continue;
    su.settled = current_epoch_;

    const std::int32_t adj_end = adj_offset_[std::size_t(u) + 1];
    for (std::int32_t e = adj_offset_[std::size_t(u)]; e < adj_end; ++e) {
      const Vertex nb = adj_vertex_[std::size_t(e)];
      const double nd = d + adj_cost_[std::size_t(e)];
      State& sn = state_[std::size_t(nb)];
      if (sn.epoch != current_epoch_ || nd < sn.dist) {
        sn.dist = nd;
        sn.parent = u;
        sn.epoch = current_epoch_;
        // Improving a settled vertex re-opens it (only possible after
        // add_sources introduced a closer seed).
        if (sn.settled == current_epoch_) sn.settled = 0;
        push_entry(nd, nb);
      } else if (nd == sn.dist && u < sn.parent) {
        // Canonical tie-break: the parent is the smallest-id neighbor on a
        // shortest path, independent of relaxation order.  This is what
        // makes incremental and from-scratch searches path-identical.
        sn.parent = u;
      }
    }
    if (is_target) found = u;
  }
  if (heap_pushes_pending_ != 0) {
    maze_obs().heap_pushes.add(heap_pushes_pending_);
    heap_pushes_pending_ = 0;
  }
  return found;
}

Vertex MazeRouter::run(const std::vector<Vertex>& sources,
                       const std::vector<Vertex>& targets) {
  begin(sources);
  return continue_run(targets);
}

double MazeRouter::dist(Vertex v) const {
  return stamped(v) ? state_[std::size_t(v)].dist : kInf;
}

bool MazeRouter::reached(Vertex v) const {
  return stamped(v) && state_[std::size_t(v)].settled == current_epoch_;
}

std::vector<Vertex> MazeRouter::path_to(Vertex v) const {
  std::vector<Vertex> path;
  path_to(v, path);
  return path;
}

void MazeRouter::path_to(Vertex v, std::vector<Vertex>& out) const {
  out.clear();
  if (grid_ == nullptr || v < 0 || v >= grid_->num_vertices() || !stamped(v)) {
    throw std::logic_error("MazeRouter::path_to: vertex was not reached in the current search");
  }
  Vertex cur = v;
  // The parent chain of a stamped vertex strictly decreases in distance, so
  // it terminates at a source within num_vertices steps; the bound guards
  // against stale-state corruption ever looping in release builds.
  for (std::int64_t steps = 0; steps <= grid_->num_vertices(); ++steps) {
    out.push_back(cur);
    const Vertex p = state_[std::size_t(cur)].parent;
    if (p == hanan::kInvalidVertex || !stamped(p)) {
      throw std::logic_error("MazeRouter::path_to: broken parent chain");
    }
    if (p == cur) {  // reached a source
      std::reverse(out.begin(), out.end());
      return;
    }
    cur = p;
  }
  throw std::logic_error("MazeRouter::path_to: parent chain exceeds grid size");
}

}  // namespace oar::route
