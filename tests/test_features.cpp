#include "hanan/features.hpp"

#include <gtest/gtest.h>

namespace oar::hanan {
namespace {

HananGrid make_grid() {
  // 3 x 2 x 2, x steps {2, 10}, y step {4}, via 5.
  HananGrid grid(3, 2, 2, {2.0, 10.0}, {4.0}, 5.0);
  grid.add_pin(grid.index(0, 0, 0));
  grid.add_pin(grid.index(2, 1, 1));
  grid.block_vertex(grid.index(1, 1, 0));
  return grid;
}

TEST(Features, ShapeAndChannelCount) {
  const HananGrid grid = make_grid();
  const FeatureVolume vol = encode_features(grid);
  EXPECT_EQ(vol.c, kNumFeatureChannels);
  EXPECT_EQ(vol.h, 3);
  EXPECT_EQ(vol.v, 2);
  EXPECT_EQ(vol.m, 2);
  EXPECT_EQ(vol.data.size(), std::size_t(7 * 3 * 2 * 2));
}

TEST(Features, PinAndObstacleChannels) {
  const HananGrid grid = make_grid();
  const FeatureVolume vol = encode_features(grid);
  EXPECT_FLOAT_EQ(vol.at(0, 0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(vol.at(0, 2, 1, 1), 1.0f);
  EXPECT_FLOAT_EQ(vol.at(0, 1, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(vol.at(1, 1, 1, 0), 1.0f);  // blocked vertex
  EXPECT_FLOAT_EQ(vol.at(1, 0, 0, 0), 0.0f);
}

TEST(Features, CostChannelsNormalizedByMax) {
  const HananGrid grid = make_grid();
  const FeatureVolume vol = encode_features(grid);
  // Max cost value in the layout is the x step of 10.
  EXPECT_FLOAT_EQ(vol.at(2, 0, 0, 0), 0.2f);   // right cost 2/10
  EXPECT_FLOAT_EQ(vol.at(3, 1, 0, 0), 0.2f);   // left cost 2/10
  EXPECT_FLOAT_EQ(vol.at(2, 1, 0, 0), 1.0f);   // right cost 10/10
  EXPECT_FLOAT_EQ(vol.at(4, 0, 0, 0), 0.4f);   // up cost 4/10
  EXPECT_FLOAT_EQ(vol.at(5, 0, 1, 0), 0.4f);   // down cost 4/10
  EXPECT_FLOAT_EQ(vol.at(6, 0, 0, 0), 0.5f);   // via 5/10, uniform
  EXPECT_FLOAT_EQ(vol.at(6, 2, 1, 1), 0.5f);
}

TEST(Features, AllValuesInUnitInterval) {
  const HananGrid grid = make_grid();
  const FeatureVolume vol = encode_features(grid);
  for (float x : vol.data) {
    EXPECT_GE(x, 0.0f);
    EXPECT_LE(x, 1.0f);
  }
}

TEST(Features, BorderEdgesEncodeZero) {
  const HananGrid grid = make_grid();
  const FeatureVolume vol = encode_features(grid);
  EXPECT_FLOAT_EQ(vol.at(3, 0, 0, 0), 0.0f);  // no left neighbor
  EXPECT_FLOAT_EQ(vol.at(2, 2, 0, 0), 0.0f);  // no right neighbor
  EXPECT_FLOAT_EQ(vol.at(5, 0, 0, 0), 0.0f);  // no down neighbor
}

TEST(Features, BlockedNeighborEdgeEncodesZero) {
  const HananGrid grid = make_grid();
  const FeatureVolume vol = encode_features(grid);
  // (0,1,0)'s right neighbor (1,1,0) is blocked -> right-cost channel 0.
  EXPECT_FLOAT_EQ(vol.at(2, 0, 1, 0), 0.0f);
  // (2,1,0)'s left neighbor (1,1,0) is blocked -> left-cost channel 0.
  EXPECT_FLOAT_EQ(vol.at(3, 2, 1, 0), 0.0f);
}

TEST(Features, ExtraPinsEncodedAsPins) {
  const HananGrid grid = make_grid();
  const Vertex extra = grid.index(1, 0, 1);
  const FeatureVolume vol = encode_features(grid, {extra});
  EXPECT_FLOAT_EQ(vol.at(0, 1, 0, 1), 1.0f);
  // Without extra pins the same location encodes 0.
  const FeatureVolume plain = encode_features(grid);
  EXPECT_FLOAT_EQ(plain.at(0, 1, 0, 1), 0.0f);
}

TEST(Features, PriorityOrderMatchesVolumeFlattening) {
  // The (h, v, m)-ordered flat layout of a single channel must coincide
  // with HananGrid::priority_of, which the selector relies on.
  const HananGrid grid = make_grid();
  const FeatureVolume vol = encode_features(grid);
  for (Vertex idx = 0; idx < grid.num_vertices(); ++idx) {
    const Cell c = grid.cell(idx);
    const std::size_t channel0_offset = vol.offset(0, c.h, c.v, c.m);
    EXPECT_EQ(std::int64_t(channel0_offset), grid.priority_of(idx));
  }
}

}  // namespace
}  // namespace oar::hanan
