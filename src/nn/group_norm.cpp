#include "nn/group_norm.hpp"

#include <cmath>

namespace oar::nn {

namespace {
/// Per-group mean / inverse sigma with the same double accumulation and
/// float narrowing as the training forward, so inference stays within
/// rounding of the reference path.
inline void group_stats(const float* x, std::int64_t group_size, float eps,
                        float* mu_out, float* inv_out) {
  double sum = 0.0, sum_sq = 0.0;
  for (std::int64_t i = 0; i < group_size; ++i) {
    const double v = x[i];
    sum += v;
    sum_sq += v * v;
  }
  const double mu = sum / double(group_size);
  const double var = std::max(0.0, sum_sq / double(group_size) - mu * mu);
  *mu_out = float(mu);
  *inv_out = float(1.0 / std::sqrt(var + eps));
}
}  // namespace

GroupNorm::GroupNorm(std::int32_t num_channels, std::int32_t num_groups, float eps)
    : channels_(num_channels), groups_(num_groups), eps_(eps) {
  assert(num_groups >= 1 && num_channels % num_groups == 0);
  gamma_ = Parameter("gn.gamma", Tensor::full({num_channels}, 1.0f));
  beta_ = Parameter("gn.beta", Tensor({num_channels}));
}

void GroupNorm::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&gamma_);
  out.push_back(&beta_);
}

Tensor GroupNorm::forward(const Tensor& input) {
  assert(input.dim() == 4 && input.shape(0) == channels_);
  if (!training()) {
    Tensor out(input.shape());
    infer_into(input.data(), input.numel() / channels_, out.data());
    return out;
  }
  input_ = input;
  const std::int64_t spatial = input.numel() / channels_;
  const std::int32_t cpg = channels_ / groups_;  // channels per group
  const std::int64_t group_size = cpg * spatial;

  normalized_ = Tensor(input.shape());
  inv_sigma_.assign(std::size_t(groups_), 0.0f);
  Tensor out(input.shape());

  const float* x = input.data();
  float* nrm = normalized_.data();
  float* y = out.data();

  for (std::int32_t g = 0; g < groups_; ++g) {
    const std::int64_t base = std::int64_t(g) * group_size;
    double sum = 0.0, sum_sq = 0.0;
    for (std::int64_t i = 0; i < group_size; ++i) {
      const double v = x[base + i];
      sum += v;
      sum_sq += v * v;
    }
    const double mu = sum / double(group_size);
    const double var = std::max(0.0, sum_sq / double(group_size) - mu * mu);
    const float inv = float(1.0 / std::sqrt(var + eps_));
    inv_sigma_[std::size_t(g)] = inv;
    for (std::int32_t c = 0; c < cpg; ++c) {
      const std::int32_t chan = g * cpg + c;
      const float gam = gamma_.value[chan];
      const float bet = beta_.value[chan];
      const std::int64_t cbase = base + std::int64_t(c) * spatial;
      for (std::int64_t i = 0; i < spatial; ++i) {
        const float n = (x[cbase + i] - float(mu)) * inv;
        nrm[cbase + i] = n;
        y[cbase + i] = gam * n + bet;
      }
    }
  }
  return out;
}

Tensor GroupNorm::forward_batch(const Tensor& input) {
  assert(input.dim() == 5 && input.shape(1) == channels_);
  const std::int32_t N = input.shape(0);
  const std::int64_t spatial =
      std::int64_t(input.shape(2)) * input.shape(3) * input.shape(4);
  const std::int32_t cpg = channels_ / groups_;
  const std::int64_t group_size = cpg * spatial;
  const std::int64_t sample_size = std::int64_t(channels_) * spatial;

  Tensor out(input.shape());
  const float* x = input.data();
  float* y = out.data();

  for (std::int32_t n = 0; n < N; ++n) {
    for (std::int32_t g = 0; g < groups_; ++g) {
      const std::int64_t base = n * sample_size + std::int64_t(g) * group_size;
      double sum = 0.0, sum_sq = 0.0;
      for (std::int64_t i = 0; i < group_size; ++i) {
        const double v = x[base + i];
        sum += v;
        sum_sq += v * v;
      }
      const double mu = sum / double(group_size);
      const double var = std::max(0.0, sum_sq / double(group_size) - mu * mu);
      const float inv = float(1.0 / std::sqrt(var + eps_));
      for (std::int32_t c = 0; c < cpg; ++c) {
        const std::int32_t chan = g * cpg + c;
        const float gam = gamma_.value[chan];
        const float bet = beta_.value[chan];
        const std::int64_t cbase = base + std::int64_t(c) * spatial;
        for (std::int64_t i = 0; i < spatial; ++i) {
          y[cbase + i] = gam * ((x[cbase + i] - float(mu)) * inv) + bet;
        }
      }
    }
  }
  return out;
}

void GroupNorm::infer_into(const float* in, std::int64_t spatial,
                           float* out) const {
  const std::int32_t cpg = channels_ / groups_;
  const std::int64_t group_size = cpg * spatial;
  for (std::int32_t g = 0; g < groups_; ++g) {
    const std::int64_t base = std::int64_t(g) * group_size;
    float mu, inv;
    group_stats(in + base, group_size, eps_, &mu, &inv);
    for (std::int32_t c = 0; c < cpg; ++c) {
      const std::int32_t chan = g * cpg + c;
      const float gam = gamma_.value[chan];
      const float bet = beta_.value[chan];
      const std::int64_t cbase = base + std::int64_t(c) * spatial;
      const float* __restrict__ xr = in + cbase;
      float* __restrict__ yr = out + cbase;
      for (std::int64_t i = 0; i < spatial; ++i) {
        yr[i] = gam * ((xr[i] - mu) * inv) + bet;
      }
    }
  }
}

void GroupNorm::infer_relu_inplace(float* x, std::int64_t spatial) const {
  const std::int32_t cpg = channels_ / groups_;
  const std::int64_t group_size = cpg * spatial;
  for (std::int32_t g = 0; g < groups_; ++g) {
    const std::int64_t base = std::int64_t(g) * group_size;
    float mu, inv;
    group_stats(x + base, group_size, eps_, &mu, &inv);
    for (std::int32_t c = 0; c < cpg; ++c) {
      const std::int32_t chan = g * cpg + c;
      const float gam = gamma_.value[chan];
      const float bet = beta_.value[chan];
      float* __restrict__ xr = x + base + std::int64_t(c) * spatial;
      for (std::int64_t i = 0; i < spatial; ++i) {
        const float v = gam * ((xr[i] - mu) * inv) + bet;
        xr[i] = v > 0.0f ? v : 0.0f;
      }
    }
  }
}

void GroupNorm::infer_add_relu_inplace(float* x, const float* skip,
                                       std::int64_t spatial) const {
  const std::int32_t cpg = channels_ / groups_;
  const std::int64_t group_size = cpg * spatial;
  for (std::int32_t g = 0; g < groups_; ++g) {
    const std::int64_t base = std::int64_t(g) * group_size;
    float mu, inv;
    group_stats(x + base, group_size, eps_, &mu, &inv);
    for (std::int32_t c = 0; c < cpg; ++c) {
      const std::int32_t chan = g * cpg + c;
      const float gam = gamma_.value[chan];
      const float bet = beta_.value[chan];
      const std::int64_t cbase = base + std::int64_t(c) * spatial;
      float* __restrict__ xr = x + cbase;
      const float* __restrict__ sr = skip + cbase;
      for (std::int64_t i = 0; i < spatial; ++i) {
        const float v = gam * ((xr[i] - mu) * inv) + bet + sr[i];
        xr[i] = v > 0.0f ? v : 0.0f;
      }
    }
  }
}

Tensor GroupNorm::backward(const Tensor& grad_output) {
  assert(training());  // inference-mode forward retains nothing
  assert(input_.defined());
  const std::int64_t spatial = input_.numel() / channels_;
  const std::int32_t cpg = channels_ / groups_;
  const std::int64_t group_size = cpg * spatial;

  Tensor grad_input(input_.shape());
  const float* go = grad_output.data();
  const float* nrm = normalized_.data();
  float* gi = grad_input.data();
  float* ggam = gamma_.grad.data();
  float* gbet = beta_.grad.data();

  for (std::int32_t g = 0; g < groups_; ++g) {
    const std::int64_t base = std::int64_t(g) * group_size;
    const float inv = inv_sigma_[std::size_t(g)];

    // Per-channel parameter grads and group-level reductions.
    double sum_gy = 0.0;      // sum over group of gamma_c * go
    double sum_gy_n = 0.0;    // sum over group of gamma_c * go * normalized
    for (std::int32_t c = 0; c < cpg; ++c) {
      const std::int32_t chan = g * cpg + c;
      const float gam = gamma_.value[chan];
      const std::int64_t cbase = base + std::int64_t(c) * spatial;
      double gg = 0.0, gb = 0.0;
      for (std::int64_t i = 0; i < spatial; ++i) {
        const float gov = go[cbase + i];
        const float nv = nrm[cbase + i];
        gg += double(gov) * nv;
        gb += gov;
        sum_gy += double(gam) * gov;
        sum_gy_n += double(gam) * gov * nv;
      }
      ggam[chan] += float(gg);
      gbet[chan] += float(gb);
    }

    const double inv_n = 1.0 / double(group_size);
    for (std::int32_t c = 0; c < cpg; ++c) {
      const std::int32_t chan = g * cpg + c;
      const float gam = gamma_.value[chan];
      const std::int64_t cbase = base + std::int64_t(c) * spatial;
      for (std::int64_t i = 0; i < spatial; ++i) {
        const double gy = double(gam) * go[cbase + i];
        const double nv = nrm[cbase + i];
        gi[cbase + i] =
            float(inv * (gy - inv_n * sum_gy - nv * inv_n * sum_gy_n));
      }
    }
  }
  return grad_input;
}

}  // namespace oar::nn
