# Empty dependencies file for oar_route.
# This may be replaced when dependencies are built.
