#pragma once

// Minimal CSV writer: the bench binaries print human-readable tables AND
// dump machine-readable CSVs (for plotting the figure reproductions).

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace oar::util {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.  is_open() reports
  /// failure; writes on a failed file are ignored.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  bool is_open() const { return bool(out_); }

  /// Appends one row; values are quoted when they contain separators.
  void row(const std::vector<std::string>& values);

  /// Convenience: mixed string/number row via streaming.
  template <typename... Args>
  void row_values(const Args&... args) {
    std::vector<std::string> values;
    (values.push_back(to_cell(args)), ...);
    row(values);
  }

 private:
  template <typename T>
  static std::string to_cell(const T& value) {
    std::ostringstream os;
    os << value;
    return os.str();
  }

  static std::string escape(const std::string& value);

  std::ofstream out_;
};

}  // namespace oar::util
