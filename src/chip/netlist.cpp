#include "chip/netlist.hpp"

#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace oar::chip {

namespace {

void fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

std::string cell_str(const HananGrid& grid, Vertex v) {
  const auto c = grid.cell(v);
  std::ostringstream os;
  os << "vertex " << v << " = (" << c.h << ", " << c.v << ", " << c.m << ")";
  return os.str();
}

/// check_field-style message with a dynamically composed field path:
///   Netlist.<field> must <requirement> (got <value>)
std::string problem(const std::string& field, const std::string& requirement,
                    const std::string& got) {
  return "Netlist." + field + " must " + requirement + " (got " + got + ")";
}

}  // namespace

std::int64_t Netlist::total_pins() const {
  std::int64_t n = 0;
  for (const Net& net : nets) n += std::ssize(net.pins);
  return n;
}

std::string Netlist::validate(const HananGrid& grid) const {
  std::unordered_map<std::string, std::size_t> names;
  // pin vertex -> (net index, pin index) of first placement, for the
  // cross-net short diagnostic.
  std::unordered_map<Vertex, std::pair<std::size_t, std::size_t>> placed;
  for (std::size_t i = 0; i < nets.size(); ++i) {
    const Net& net = nets[i];
    const std::string field = "nets[\"" + net.name + "\"]";
    if (net.name.empty()) {
      return problem("nets[" + std::to_string(i) + "].name",
                     "be non-empty", "\"\"");
    }
    if (const auto [it, inserted] = names.emplace(net.name, i); !inserted) {
      return problem(field + ".name", "be unique",
                     "also used by nets[" + std::to_string(it->second) + "]");
    }
    if (net.pins.size() < 2) {
      return problem(field + ".pins", "contain at least 2 pins",
                     std::to_string(net.pins.size()));
    }
    std::unordered_set<Vertex> within;
    for (std::size_t j = 0; j < net.pins.size(); ++j) {
      const Vertex p = net.pins[j];
      const std::string pin_field = field + ".pins[" + std::to_string(j) + "]";
      if (p < 0 || p >= grid.num_vertices()) {
        return problem(pin_field, "be a valid grid vertex",
                       std::to_string(p) + " on " +
                           std::to_string(grid.num_vertices()) + " vertices");
      }
      if (grid.is_blocked(p)) {
        return problem(pin_field, "not lie on a blocked (obstacle) vertex",
                       cell_str(grid, p));
      }
      if (!within.insert(p).second) {
        return problem(pin_field, "not duplicate a pin of the same net",
                       cell_str(grid, p));
      }
      if (const auto [it, inserted] = placed.emplace(p, std::make_pair(i, j));
          !inserted) {
        return problem(pin_field,
                       "not share a vertex with net \"" +
                           nets[it->second.first].name + "\" (electrical short)",
                       cell_str(grid, p));
      }
    }
  }
  return "";
}

bool write_netlist(const Netlist& netlist, const HananGrid& grid,
                   std::ostream& out) {
  out << "oarnetlist 1\n";
  if (!netlist.name.empty()) out << "name " << netlist.name << "\n";
  for (const Net& net : netlist.nets) {
    out << "net " << net.name;
    for (Vertex p : net.pins) {
      const auto c = grid.cell(p);
      out << "  " << c.h << " " << c.v << " " << c.m;
    }
    out << "\n";
  }
  out << "end\n";
  return bool(out);
}

bool save_netlist(const Netlist& netlist, const HananGrid& grid,
                  const std::string& path) {
  std::ofstream out(path);
  return out && write_netlist(netlist, grid, out);
}

std::optional<Netlist> read_netlist(std::istream& in, const HananGrid& grid,
                                    std::string* error) {
  Netlist netlist;
  std::unordered_set<std::string> names;
  bool saw_header = false, saw_end = false;
  int line_no = 0;

  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string at = " (line " + std::to_string(line_no) + ")";
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string keyword;
    ls >> keyword;
    if (keyword == "oarnetlist") {
      int version = 0;
      if (!(ls >> version) || version != 1) {
        fail(error, "unsupported oarnetlist version" + at);
        return std::nullopt;
      }
      saw_header = true;
    } else if (keyword == "name") {
      if (!(ls >> netlist.name)) {
        fail(error, "bad name line" + at);
        return std::nullopt;
      }
    } else if (keyword == "net") {
      if (!saw_header) {
        fail(error, "net before oarnetlist header" + at);
        return std::nullopt;
      }
      Net net;
      if (!(ls >> net.name)) {
        fail(error, "net line without a name" + at);
        return std::nullopt;
      }
      if (!names.insert(net.name).second) {
        fail(error, "duplicate net name \"" + net.name + "\"" + at);
        return std::nullopt;
      }
      std::vector<std::int32_t> coords;
      std::int32_t value;
      while (ls >> value) coords.push_back(value);
      if (!ls.eof() || coords.size() % 3 != 0) {
        fail(error, "net \"" + net.name + "\": malformed pin triples" + at);
        return std::nullopt;
      }
      if (coords.size() < 6) {
        fail(error, "net \"" + net.name + "\": fewer than 2 pins" + at);
        return std::nullopt;
      }
      for (std::size_t i = 0; i + 2 < coords.size(); i += 3) {
        const std::int32_t h = coords[i], v = coords[i + 1], m = coords[i + 2];
        if (h < 0 || h >= grid.h_dim() || v < 0 || v >= grid.v_dim() ||
            m < 0 || m >= grid.m_dim()) {
          std::ostringstream os;
          os << "net \"" << net.name << "\": pin (" << h << ", " << v << ", "
             << m << ") outside the " << grid.h_dim() << "x" << grid.v_dim()
             << "x" << grid.m_dim() << " grid" << at;
          fail(error, os.str());
          return std::nullopt;
        }
        net.pins.push_back(grid.index(h, v, m));
      }
      netlist.nets.push_back(std::move(net));
    } else if (keyword == "end") {
      saw_end = true;
      break;
    } else {
      fail(error, "unknown keyword: " + keyword + at);
      return std::nullopt;
    }
  }

  if (!saw_header || !saw_end) {
    fail(error, "missing oarnetlist header or end marker");
    return std::nullopt;
  }
  return netlist;
}

std::optional<Netlist> load_netlist(const std::string& path,
                                    const HananGrid& grid,
                                    std::string* error) {
  std::ifstream in(path);
  if (!in) {
    fail(error, "cannot open " + path);
    return std::nullopt;
  }
  return read_netlist(in, grid, error);
}

}  // namespace oar::chip
