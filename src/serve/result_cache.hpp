#pragma once

// DEPRECATED — superseded by experience::Store (DESIGN.md §18).
//
// ResultCache was the ad-hoc string-keyed LRU the serving layer used
// before the tiered experience store existed.  It survives for one
// release as a thin shim over a memory-only experience::Store so external
// callers keep compiling; RouterService itself now talks to the store
// directly (typed CanonicalKey, disk tier, hit provenance).
//
// The shim also repairs the long-standing gauge bug this class shipped
// with: the oar_serve_cache_entries gauge is refreshed at every mutation
// (put, eviction, clear) instead of only at scrape time, so clear() can no
// longer leave it stale.

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "experience/store.hpp"
#include "route/route_tree.hpp"

namespace oar::serve {

using hanan::Vertex;

/// A routed tree in canonical vertex space.
struct CachedRoute {
  std::vector<route::GridEdge> edges;
  std::vector<Vertex> steiner;
  double cost = 0.0;
  bool connected = false;
};

class [[deprecated(
    "serve::ResultCache is a compatibility shim; use experience::Store "
    "(experience/store.hpp)")]] ResultCache {
 public:
  explicit ResultCache(std::size_t capacity);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Returns the entry and marks it most-recently used.
  std::optional<CachedRoute> get(const std::string& key);

  /// Inserts or refreshes an entry, evicting the least-recently-used one
  /// when over capacity.  A capacity of 0 disables storage entirely.
  void put(const std::string& key, CachedRoute value);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  void clear();

 private:
  const std::size_t capacity_;
  experience::Store store_;  // memory tier only (no path configured)
};

}  // namespace oar::serve
