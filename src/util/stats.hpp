#pragma once

// Small descriptive-statistics helpers used by the benchmark harness to
// aggregate per-layout results into the paper's table rows.

#include <cstddef>
#include <vector>

namespace oar::util {

/// Streaming accumulator for mean / min / max / variance.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const;
  double min() const;
  double max() const;
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact percentile (linear interpolation) of a sample; p in [0, 100].
double percentile(std::vector<double> values, double p);

/// Arithmetic mean; 0 for an empty vector.
double mean(const std::vector<double>& values);

/// Geometric mean of positive values; 0 for an empty vector.
double geomean(const std::vector<double>& values);

}  // namespace oar::util
