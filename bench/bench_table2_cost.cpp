// Table 2 reproduction: routing-cost comparison between the strongest
// algorithmic baseline ([14]-class Lin18Router) and the RL router on the
// randomly generated test subsets of Table 1.
//
// Paper scale: subsets T32..T512 with up to 50,000 layouts each (the
// baseline alone needed a 24 h budget).  Bench scale: the same generator at
// dimension scale 1/4 with tens of layouts per subset, so the binary
// finishes in about a minute on a laptop CPU.  EXPERIMENTS.md records the
// paper-vs-measured comparison.

#include "bench_common.hpp"

int main() {
  using namespace oar;

  auto selector = bench::bench_selector();
  core::RlRouter ours(selector);
  core::RlRouter ours_sweep(selector, core::RlRouterConfig{true});
  steiner::Lin18Router lin18(bench::bench_lin18_config());

  const auto subsets = gen::paper_test_subsets(/*scale=*/8);
  // Layout counts per subset, shaped like the paper's decreasing budgets.
  const std::vector<int> base_counts = {24, 16, 10, 8, 6, 4, 3};
  const double scale = bench::env_scale();

  std::printf("Table 2: routing-cost comparison ([14]-class baseline vs ours)\n");
  std::printf("(subset dims are the paper's divided by 8; counts scaled to a CPU budget)\n\n");
  std::printf("%-8s %4s %9s | %12s %12s %8s | %9s | %6s %6s | %12s %8s\n",
              "subset", "n", "HxV", "lin18 (a)", "ours (b)", "(a-b)/a", "avg.imp",
              "win%", "loss%", "ours+sweep", "(a-c)/a");
  bench::print_rule(120);

  for (std::size_t i = 0; i < subsets.size(); ++i) {
    const auto& subset = subsets[i];
    const int count = std::max(1, int(base_counts[i] * scale));
    util::Rng rng(0x7ab1e2 + std::uint64_t(i));
    bench::CostDuel duel;
    bench::CostDuel duel_sweep;
    for (int l = 0; l < count; ++l) {
      // Cap the per-layout layer count at 6 to keep the baseline budget sane.
      gen::TestSubsetSpec capped = subset;
      capped.max_m = 6;
      const hanan::HananGrid grid = gen::random_subset_grid(capped, rng);
      const auto base = lin18.route(grid);
      const auto mine = ours.route(grid);
      const auto swept = ours_sweep.route(grid);
      if (!base.connected || !mine.connected || !swept.connected) continue;
      duel.add(base.cost, mine.cost);
      duel_sweep.add(base.cost, swept.cost);
    }
    std::printf("%-8s %4zu %4dx%-4d | %12.0f %12.0f %7.3f%% | %8.3f%% | %5.1f%% %5.1f%% | %12.0f %7.3f%%\n",
                subset.name.c_str(), duel.base_cost.count(), subset.spec.h,
                subset.spec.v, duel.base_cost.mean(), duel.ours_cost.mean(),
                duel.diff_percent(), duel.avg_imp_percent(), duel.win_rate(),
                duel.loss_rate(), duel_sweep.ours_cost.mean(),
                duel_sweep.diff_percent());
  }
  std::printf("\npaper (full scale): diff 2.26%%..2.68%% in ours' favor, win rate"
              " 64.7%%..100%%\n");
  return 0;
}
