#pragma once

// Finite-difference gradient verification used by the test suite to prove
// every layer's hand-written backward pass against the numerical gradient.

#include <functional>

#include "nn/module.hpp"

namespace oar::nn {

struct GradCheckResult {
  double max_abs_error = 0.0;  // worst |analytic - numeric|
  double max_rel_error = 0.0;  // worst relative error among checked entries
  int violations = 0;          // entries failing the atol + rtol criterion
  bool ok = false;
};

/// Checks d(sum of weighted outputs)/d(input and parameters) of `module`
/// on `input` against central finite differences.  `loss_weights` must have
/// the module's output shape; the scalar objective is sum(w * output).
/// An entry passes when |analytic - numeric| <= atol + rtol * |numeric|
/// (allclose semantics — fp32 forward passes make pure relative checks
/// meaningless for near-zero gradients).  Entries sitting on ReLU kinks
/// (one-sided difference quotients disagree) are skipped.  At most
/// `max_entries` randomly chosen entries of each tensor are probed
/// (exhaustive checking of conv weights is too slow for CI-style tests).
GradCheckResult grad_check(Module& module, const Tensor& input,
                           const Tensor& loss_weights, util::Rng& rng,
                           double epsilon = 1e-3, double rtol = 5e-2,
                           int max_entries = 24, double atol = 2e-3);

}  // namespace oar::nn
