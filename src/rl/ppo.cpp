#include "rl/ppo.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "route/oarmst.hpp"
#include "util/timer.hpp"
#include "util/validate.hpp"

namespace oar::rl {

namespace {

struct Step {
  std::vector<Vertex> state_selected;  // before the action
  Vertex action = hanan::kInvalidVertex;
  double logp_old = 0.0;
  double value = 0.0;
  double reward = 0.0;
  double advantage = 0.0;
  double ret = 0.0;
};

struct Episode {
  hanan::HananGrid grid;
  std::vector<Step> steps;
  double episodic_return = 0.0;
};

/// Masked softmax over valid vertices.  Returns (vertex, prob, priority)
/// triples.
struct PolicyEntry {
  Vertex vertex;
  double prob;
  std::size_t priority;
};

std::vector<PolicyEntry> masked_softmax(const hanan::HananGrid& grid,
                                        const nn::Tensor& logits,
                                        const std::vector<Vertex>& selected) {
  std::unordered_set<Vertex> taken(selected.begin(), selected.end());
  std::vector<PolicyEntry> entries;
  double max_logit = -1e30;
  for (Vertex v = 0; v < grid.num_vertices(); ++v) {
    if (grid.is_blocked(v) || grid.is_pin(v) || taken.count(v)) continue;
    const auto p = std::size_t(grid.priority_of(v));
    entries.push_back({v, double(logits[std::int64_t(p)]), p});
    max_logit = std::max(max_logit, entries.back().prob);
  }
  double total = 0.0;
  for (auto& e : entries) {
    e.prob = std::exp(e.prob - max_logit);
    total += e.prob;
  }
  for (auto& e : entries) e.prob /= total;
  return entries;
}

}  // namespace

void PpoConfig::validate() const {
  util::check_field(episodes_per_iteration >= 1, "PpoConfig",
                    "episodes_per_iteration", "be >= 1",
                    episodes_per_iteration);
  util::check_field(update_epochs >= 1, "PpoConfig", "update_epochs",
                    "be >= 1", update_epochs);
  util::check_field(clip_epsilon > 0.0, "PpoConfig", "clip_epsilon",
                    "be positive", clip_epsilon);
  util::check_field(lr_policy > 0.0 && std::isfinite(lr_policy), "PpoConfig",
                    "lr_policy", "be finite and positive", lr_policy);
  util::check_field(lr_value > 0.0 && std::isfinite(lr_value), "PpoConfig",
                    "lr_value", "be finite and positive", lr_value);
  util::check_field(gamma > 0.0 && gamma <= 1.0, "PpoConfig", "gamma",
                    "be in (0, 1]", gamma);
  util::check_field(gae_lambda >= 0.0 && gae_lambda <= 1.0, "PpoConfig",
                    "gae_lambda", "be in [0, 1]", gae_lambda);
  util::check_field(entropy_coef >= 0.0, "PpoConfig", "entropy_coef",
                    "be non-negative", entropy_coef);
  util::check_field(grad_clip > 0.0, "PpoConfig", "grad_clip", "be positive",
                    grad_clip);
  util::check_field(min_pins >= 2, "PpoConfig", "min_pins", "be >= 2",
                    min_pins);
  util::check_field(max_pins >= min_pins, "PpoConfig", "max_pins",
                    "be >= min_pins", max_pins);
  util::check_field(obstacle_density >= 0.0 && obstacle_density < 1.0,
                    "PpoConfig", "obstacle_density", "be in [0, 1)",
                    obstacle_density);
}

PpoTrainer::PpoTrainer(SteinerSelector& selector, std::vector<LayoutSizeSpec> sizes,
                       PpoConfig config)
    : selector_(selector),
      sizes_(std::move(sizes)),
      config_(config),
      value_net_(nn::ValueNetConfig{7, 8, 16, config.seed ^ 0xbeefull}),
      policy_opt_(selector.net().parameters(), config.lr_policy),
      value_opt_(value_net_.parameters(), config.lr_value),
      rng_(config.seed) {
  config_.validate();
}

PpoIterationReport PpoTrainer::run_iteration() {
  util::Timer timer;
  PpoIterationReport report;
  report.iteration = iteration_++;

  // Keep the whole iteration — rollout included — on the training path so
  // logp_old and logp_new come from the same kernels and the importance
  // ratio starts at exactly 1.  Restored to inference mode on every exit.
  selector_.net().set_training(true);

  // ---- rollout ----
  // Pooled routing scratch shared by every per-step critic cost below.
  route::RouterScratch& scratch = route::local_router_scratch();
  std::vector<Episode> episodes;
  for (std::int32_t ep = 0; ep < config_.episodes_per_iteration; ++ep) {
    const LayoutSizeSpec& size =
        sizes_[std::size_t(rng_.uniform_int(0, std::int64_t(sizes_.size()) - 1))];
    const gen::RandomGridSpec spec = training_spec(
        size, config_.obstacle_density, config_.min_pins, config_.max_pins);
    Episode episode;
    episode.grid = gen::random_grid(spec, rng_);
    const hanan::HananGrid& grid = episode.grid;

    route::OarmstConfig raw_cfg;
    raw_cfg.remove_redundant_steiner = false;
    route::OarmstRouter raw_router(grid, raw_cfg);

    const double rc0 = std::max(raw_router.cost(grid.pins(), {}, &scratch), 1e-12);
    if (!std::isfinite(rc0)) continue;  // unroutable layout: no learning signal
    const std::int32_t budget =
        std::max<std::int32_t>(0, std::int32_t(grid.pins().size()) - 2);

    std::vector<Vertex> selected;
    double prev_cost = rc0;
    std::int32_t flat_run = 0;
    while (std::ssize(selected) < budget) {
      const nn::Tensor input = SteinerSelector::encode(grid, selected);
      const nn::Tensor logits = selector_.net().forward(input);
      const auto policy = masked_softmax(grid, logits, selected);
      if (policy.empty()) break;

      std::vector<double> weights(policy.size());
      for (std::size_t i = 0; i < policy.size(); ++i) weights[i] = policy[i].prob;
      const std::size_t pick = rng_.weighted_index(weights);

      Step step;
      step.state_selected = selected;
      step.action = policy[pick].vertex;
      step.logp_old = std::log(std::max(policy[pick].prob, 1e-12));
      step.value = double(value_net_.forward(input)[0]);

      selected.push_back(step.action);
      const double new_cost = raw_router.cost(grid.pins(), selected, &scratch);
      // A walled-off selection reports cost +inf (disconnected); feed the
      // policy a bounded penalty instead of -inf so GAE stays finite.
      step.reward = std::isfinite(new_cost) ? (prev_cost - new_cost) / rc0 : -1.0;
      episode.steps.push_back(std::move(step));
      episode.episodic_return += episode.steps.back().reward;

      // Terminal rules shared with the MCTS environments.
      if (new_cost > prev_cost * (1.0 + 1e-9)) break;
      if (std::abs(new_cost - prev_cost) <= prev_cost * 1e-9) {
        if (++flat_run >= 3) break;
      } else {
        flat_run = 0;
      }
      prev_cost = new_cost;
    }

    // GAE (terminal bootstrap value 0).
    double gae = 0.0;
    for (std::size_t i = episode.steps.size(); i-- > 0;) {
      Step& s = episode.steps[i];
      const double next_value =
          i + 1 < episode.steps.size() ? episode.steps[i + 1].value : 0.0;
      const double delta = s.reward + config_.gamma * next_value - s.value;
      gae = delta + config_.gamma * config_.gae_lambda * gae;
      s.advantage = gae;
      s.ret = s.advantage + s.value;
    }
    report.mean_return += episode.episodic_return;
    report.steps += std::int32_t(episode.steps.size());
    episodes.push_back(std::move(episode));
  }
  if (!episodes.empty()) report.mean_return /= double(episodes.size());

  // Advantage normalization across the batch.
  std::vector<Step*> all_steps;
  for (Episode& e : episodes) {
    for (Step& s : e.steps) all_steps.push_back(&s);
  }
  if (all_steps.empty()) {
    selector_.net().set_training(false);
    report.seconds = timer.seconds();
    return report;
  }
  double adv_mean = 0.0;
  for (const Step* s : all_steps) adv_mean += s->advantage;
  adv_mean /= double(all_steps.size());
  double adv_var = 0.0;
  for (const Step* s : all_steps) {
    adv_var += (s->advantage - adv_mean) * (s->advantage - adv_mean);
  }
  const double adv_std = std::sqrt(adv_var / double(all_steps.size())) + 1e-8;
  for (Step* s : all_steps) s->advantage = (s->advantage - adv_mean) / adv_std;

  // ---- PPO updates ----
  for (std::int32_t epoch = 0; epoch < config_.update_epochs; ++epoch) {
    policy_opt_.zero_grad();
    value_opt_.zero_grad();
    double policy_loss = 0.0, value_loss = 0.0;
    const float inv_n = 1.0f / float(all_steps.size());

    for (Episode& episode : episodes) {
      const hanan::HananGrid& grid = episode.grid;
      for (Step& s : episode.steps) {
        const nn::Tensor input = SteinerSelector::encode(grid, s.state_selected);

        // Policy gradient.
        const nn::Tensor logits = selector_.net().forward(input);
        const auto policy = masked_softmax(grid, logits, s.state_selected);
        double logp_new = 0.0, entropy = 0.0;
        std::size_t action_slot = policy.size();
        for (std::size_t i = 0; i < policy.size(); ++i) {
          const double p = std::max(policy[i].prob, 1e-12);
          entropy -= p * std::log(p);
          if (policy[i].vertex == s.action) {
            action_slot = i;
            logp_new = std::log(p);
          }
        }
        assert(action_slot < policy.size());
        const double ratio = std::exp(logp_new - s.logp_old);
        const double clipped = std::clamp(ratio, 1.0 - config_.clip_epsilon,
                                          1.0 + config_.clip_epsilon);
        const double surr_unclipped = ratio * s.advantage;
        const double surr_clipped = clipped * s.advantage;
        policy_loss += -std::min(surr_unclipped, surr_clipped) -
                       config_.entropy_coef * entropy;

        // dLoss/dlogits: surrogate term only flows when unclipped is the
        // active branch; entropy term always flows.
        nn::Tensor grad_logits(logits.shape());
        const bool pass_through = surr_unclipped <= surr_clipped;
        for (std::size_t i = 0; i < policy.size(); ++i) {
          const double p = std::max(policy[i].prob, 1e-12);
          double g = 0.0;
          if (pass_through) {
            const double dlogp =
                (i == action_slot ? 1.0 : 0.0) - policy[i].prob;
            g += -s.advantage * ratio * dlogp;
          }
          g += config_.entropy_coef * p * (std::log(p) + entropy);
          grad_logits[std::int64_t(policy[i].priority)] = float(g) * inv_n;
        }
        selector_.net().backward(grad_logits);

        // Value update.
        const nn::Tensor value = value_net_.forward(input);
        const double err = double(value[0]) - s.ret;
        value_loss += err * err;
        nn::Tensor grad_value({1});
        grad_value[0] = float(2.0 * err) * inv_n;
        value_net_.backward(grad_value);
      }
    }
    policy_opt_.clip_grad_norm(config_.grad_clip);
    value_opt_.clip_grad_norm(config_.grad_clip);
    policy_opt_.step();
    value_opt_.step();
    report.mean_policy_loss = policy_loss / double(all_steps.size());
    report.mean_value_loss = value_loss / double(all_steps.size());
  }

  selector_.net().set_training(false);
  report.seconds = timer.seconds();
  return report;
}

}  // namespace oar::rl
