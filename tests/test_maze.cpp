#include "route/maze.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "gen/random_layout.hpp"
#include "util/rng.hpp"

namespace oar::route {
namespace {

using hanan::HananGrid;

HananGrid unit_grid(std::int32_t h, std::int32_t v, std::int32_t m, double via = 1.0) {
  return HananGrid(h, v, m, std::vector<double>(std::size_t(h - 1), 1.0),
                   std::vector<double>(std::size_t(v - 1), 1.0), via);
}

/// Brute-force Bellman-Ford style relaxation for reference distances.
std::vector<double> reference_distances(const HananGrid& grid, Vertex source) {
  const auto n = std::size_t(grid.num_vertices());
  std::vector<double> dist(n, MazeRouter::kInf);
  if (!grid.is_blocked(source)) dist[std::size_t(source)] = 0.0;
  for (std::size_t pass = 0; pass < n; ++pass) {
    bool changed = false;
    for (Vertex u = 0; u < grid.num_vertices(); ++u) {
      if (dist[std::size_t(u)] == MazeRouter::kInf) continue;
      grid.for_each_neighbor(u, [&](Vertex nb, double w) {
        if (dist[std::size_t(u)] + w < dist[std::size_t(nb)] - 1e-12) {
          dist[std::size_t(nb)] = dist[std::size_t(u)] + w;
          changed = true;
        }
      });
    }
    if (!changed) break;
  }
  return dist;
}

TEST(Maze, StraightLineDistance) {
  const HananGrid grid = unit_grid(5, 1, 1);
  MazeRouter maze(grid);
  maze.run({grid.index(0, 0, 0)});
  EXPECT_DOUBLE_EQ(maze.dist(grid.index(4, 0, 0)), 4.0);
}

TEST(Maze, ManhattanOnOpenGrid) {
  const HananGrid grid = unit_grid(6, 6, 1);
  MazeRouter maze(grid);
  maze.run({grid.index(0, 0, 0)});
  EXPECT_DOUBLE_EQ(maze.dist(grid.index(5, 3, 0)), 8.0);
}

TEST(Maze, ViaCostCounts) {
  const HananGrid grid = unit_grid(2, 2, 3, 10.0);
  MazeRouter maze(grid);
  maze.run({grid.index(0, 0, 0)});
  EXPECT_DOUBLE_EQ(maze.dist(grid.index(0, 0, 2)), 20.0);
}

TEST(Maze, RoutesAroundBlockage) {
  HananGrid grid = unit_grid(3, 3, 1);
  grid.block_vertex(grid.index(1, 1, 0));
  MazeRouter maze(grid);
  maze.run({grid.index(0, 1, 0)});
  // Straight through the middle would be 2; the detour costs 4.
  EXPECT_DOUBLE_EQ(maze.dist(grid.index(2, 1, 0)), 4.0);
}

TEST(Maze, UnreachableTargetReportsInfinity) {
  HananGrid grid = unit_grid(3, 1, 1);
  grid.block_vertex(grid.index(1, 0, 0));
  MazeRouter maze(grid);
  maze.run({grid.index(0, 0, 0)});
  EXPECT_EQ(maze.dist(grid.index(2, 0, 0)), MazeRouter::kInf);
}

TEST(Maze, MultiSourceTakesNearest) {
  const HananGrid grid = unit_grid(9, 1, 1);
  MazeRouter maze(grid);
  maze.run({grid.index(0, 0, 0), grid.index(8, 0, 0)});
  EXPECT_DOUBLE_EQ(maze.dist(grid.index(6, 0, 0)), 2.0);
  EXPECT_DOUBLE_EQ(maze.dist(grid.index(2, 0, 0)), 2.0);
}

TEST(Maze, EarlyExitReturnsCheapestTarget) {
  const HananGrid grid = unit_grid(9, 1, 1);
  MazeRouter maze(grid);
  const Vertex t1 = grid.index(3, 0, 0), t2 = grid.index(7, 0, 0);
  const Vertex reached = maze.run({grid.index(0, 0, 0)}, {t1, t2});
  EXPECT_EQ(reached, t1);
}

TEST(Maze, PathEndpointsAndContinuity) {
  HananGrid grid = unit_grid(4, 4, 2, 2.0);
  grid.block_vertex(grid.index(1, 1, 0));
  MazeRouter maze(grid);
  const Vertex src = grid.index(0, 0, 0), dst = grid.index(3, 3, 1);
  maze.run({src}, {dst});
  const auto path = maze.path_to(dst);
  ASSERT_GE(path.size(), 2u);
  EXPECT_EQ(path.front(), src);
  EXPECT_EQ(path.back(), dst);
  double cost = 0.0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    cost += grid.cost_between(path[i], path[i + 1]);
  }
  EXPECT_DOUBLE_EQ(cost, maze.dist(dst));
}

TEST(Maze, ReusableAcrossRunsWithEpochReset) {
  const HananGrid grid = unit_grid(5, 5, 1);
  MazeRouter maze(grid);
  maze.run({grid.index(0, 0, 0)});
  EXPECT_DOUBLE_EQ(maze.dist(grid.index(4, 4, 0)), 8.0);
  maze.run({grid.index(4, 4, 0)});
  EXPECT_DOUBLE_EQ(maze.dist(grid.index(0, 0, 0)), 8.0);
  EXPECT_DOUBLE_EQ(maze.dist(grid.index(4, 4, 0)), 0.0);
}

TEST(Maze, BlockedSourceIsIgnored) {
  HananGrid grid = unit_grid(3, 1, 1);
  grid.block_vertex(grid.index(0, 0, 0));
  MazeRouter maze(grid);
  const Vertex reached = maze.run({grid.index(0, 0, 0)}, {grid.index(2, 0, 0)});
  EXPECT_EQ(reached, hanan::kInvalidVertex);
}

TEST(Maze, PathToReachedVertexSucceedsAndUnreachedThrows) {
  HananGrid grid = unit_grid(5, 1, 1);
  grid.block_vertex(grid.index(2, 0, 0));  // wall between h<2 and h>2
  MazeRouter maze(grid);
  maze.run({grid.index(0, 0, 0)});
  // Reached side: a proper path is returned.
  const auto path = maze.path_to(grid.index(1, 0, 0));
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path.front(), grid.index(0, 0, 0));
  EXPECT_EQ(path.back(), grid.index(1, 0, 0));
  // Walled-off side: must throw instead of walking stale parents forever
  // (asserts are compiled out in release builds).
  EXPECT_THROW(maze.path_to(grid.index(3, 0, 0)), std::logic_error);
  EXPECT_THROW(maze.path_to(grid.index(4, 0, 0)), std::logic_error);
}

TEST(Maze, PathToBeforeAnyRunThrows) {
  const HananGrid grid = unit_grid(3, 1, 1);
  MazeRouter maze(grid);
  EXPECT_THROW(maze.path_to(grid.index(1, 0, 0)), std::logic_error);
}

TEST(Maze, EpochWrapAroundResetsStampsCorrectly) {
  HananGrid grid = unit_grid(6, 1, 1);
  grid.block_vertex(grid.index(4, 0, 0));
  MazeRouter maze(grid);

  // Populate stamps at an ordinary epoch first so the wrap has stale state
  // to invalidate.
  maze.run({grid.index(0, 0, 0)});
  EXPECT_DOUBLE_EQ(maze.dist(grid.index(3, 0, 0)), 3.0);
  EXPECT_EQ(maze.dist(grid.index(5, 0, 0)), MazeRouter::kInf);

  // Force the counter to its maximum: the next begin() wraps to 0 and must
  // take the hard-reset branch.
  maze.debug_set_epoch(std::numeric_limits<std::uint32_t>::max());
  maze.run({grid.index(3, 0, 0)});
  EXPECT_DOUBLE_EQ(maze.dist(grid.index(0, 0, 0)), 3.0);
  EXPECT_DOUBLE_EQ(maze.dist(grid.index(3, 0, 0)), 0.0);
  // Stale pre-wrap stamps must not leak through as reached.
  EXPECT_EQ(maze.dist(grid.index(5, 0, 0)), MazeRouter::kInf);
  EXPECT_FALSE(maze.reached(grid.index(5, 0, 0)));
  EXPECT_THROW(maze.path_to(grid.index(5, 0, 0)), std::logic_error);

  // And the epoch machinery keeps working after the wrap.
  maze.run({grid.index(1, 0, 0)});
  EXPECT_DOUBLE_EQ(maze.dist(grid.index(3, 0, 0)), 2.0);
}

TEST(Maze, IncrementalContinuationMatchesFreshRuns) {
  const HananGrid grid = unit_grid(9, 1, 1);
  MazeRouter maze(grid);
  maze.begin({grid.index(0, 0, 0)});
  // First continuation: nearest of two targets.
  const Vertex t1 = grid.index(5, 0, 0), t2 = grid.index(8, 0, 0);
  EXPECT_EQ(maze.continue_run({t1, t2}), t1);
  EXPECT_DOUBLE_EQ(maze.dist(t1), 5.0);
  // Attach t1 as a zero-distance source and continue to t2: the frontier
  // is reused, and the distance reflects the enlarged source set.
  maze.add_source(t1);
  EXPECT_EQ(maze.continue_run({t2}), t2);
  EXPECT_DOUBLE_EQ(maze.dist(t2), 3.0);

  MazeRouter fresh(grid);
  fresh.run({grid.index(0, 0, 0), t1}, {t2});
  EXPECT_DOUBLE_EQ(fresh.dist(t2), maze.dist(t2));
}

TEST(Maze, ContinuationRediscoversAlreadySettledTarget) {
  // A vertex settled as a by-product of an earlier continuation must still
  // be returnable as the target of a later one (its heap entry was
  // consumed; the target-marking pass re-seeds it).
  const HananGrid grid = unit_grid(9, 1, 1);
  MazeRouter maze(grid);
  maze.begin({grid.index(0, 0, 0)});
  EXPECT_EQ(maze.continue_run({grid.index(4, 0, 0)}), grid.index(4, 0, 0));
  // Vertices 1..3 were settled on the way.  Ask for one of them now.
  EXPECT_EQ(maze.continue_run({grid.index(2, 0, 0)}), grid.index(2, 0, 0));
  EXPECT_DOUBLE_EQ(maze.dist(grid.index(2, 0, 0)), 2.0);
}

TEST(Maze, AddedSourceLowersSettledDistances)
{
  // After the frontier exhausted the line, a new source must re-open
  // settled vertices and lower their distances on continuation.
  const HananGrid grid = unit_grid(9, 1, 1);
  MazeRouter maze(grid);
  maze.begin({grid.index(0, 0, 0)});
  maze.continue_run({});  // exhaust: dist(v) == v
  EXPECT_DOUBLE_EQ(maze.dist(grid.index(8, 0, 0)), 8.0);
  maze.add_source(grid.index(8, 0, 0));
  maze.continue_run({});
  for (std::int32_t h = 0; h < 9; ++h) {
    EXPECT_DOUBLE_EQ(maze.dist(grid.index(h, 0, 0)), std::min(h, 8 - h)) << h;
  }
  // Paths follow the updated parents to the nearer source.
  const auto path = maze.path_to(grid.index(7, 0, 0));
  EXPECT_EQ(path.front(), grid.index(8, 0, 0));
}

TEST(Maze, RebindAcrossGridsKeepsResultsIndependent) {
  // Pooled reuse: one router serving grids of different sizes must not leak
  // stamped state between them.
  HananGrid big = unit_grid(7, 7, 2);
  HananGrid small = unit_grid(3, 3, 1);
  MazeRouter maze(big);
  maze.run({big.index(0, 0, 0)});
  EXPECT_DOUBLE_EQ(maze.dist(big.index(6, 6, 1)), 13.0);

  maze.bind(small);
  maze.run({small.index(2, 2, 0)});
  EXPECT_DOUBLE_EQ(maze.dist(small.index(0, 0, 0)), 4.0);

  maze.bind(big);
  maze.run({big.index(6, 6, 0)});
  EXPECT_DOUBLE_EQ(maze.dist(big.index(0, 0, 0)), 12.0);
}

class MazeRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MazeRandomTest, MatchesBruteForceOnRandomGrids) {
  util::Rng rng(GetParam());
  gen::RandomGridSpec spec;
  spec.h = 5;
  spec.v = 4;
  spec.m = 2;
  spec.min_pins = 2;
  spec.max_pins = 4;
  spec.min_obstacles = 2;
  spec.max_obstacles = 5;
  spec.min_edge_cost = 1;
  spec.max_edge_cost = 9;
  spec.ensure_routable = false;
  const HananGrid grid = gen::random_grid(spec, rng);

  const Vertex source = grid.pins().empty() ? 0 : grid.pins().front();
  if (grid.is_blocked(source)) return;
  MazeRouter maze(grid);
  maze.run({source});
  const auto reference = reference_distances(grid, source);
  for (Vertex v = 0; v < grid.num_vertices(); ++v) {
    if (reference[std::size_t(v)] == MazeRouter::kInf) {
      EXPECT_EQ(maze.dist(v), MazeRouter::kInf) << "vertex " << v;
    } else {
      EXPECT_NEAR(maze.dist(v), reference[std::size_t(v)], 1e-9) << "vertex " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MazeRandomTest,
                         ::testing::Range(std::uint64_t(0), std::uint64_t(12)));

}  // namespace
}  // namespace oar::route
