// Fig. 11 reproduction: ST-to-MST ratio vs training time for the three
// policy-optimization schemes on fixed-size layouts.
//
// Paper scale: 24x24x4 layouts, hours of training, 10K eval layouts per
// pin count.  Bench scale: 8x8x2 layouts, ~18 s per trainer, 16 eval
// layouts per range; the out-of-range eval uses 7-10 pins (paper: 7-12).
//
// Extra ablation rows (DESIGN.md Sec. 6): the terminal pruning rules of the
// combinatorial MCTS toggled off, to show their effect on sample time.

#include <cmath>
#include <thread>

#include "bench_training_curves.hpp"

int main() {
  using namespace oar;

  bench::CurveConfig cfg;
  cfg.figure_name = "Fig. 11";
  cfg.h = 8;
  cfg.v = 8;
  cfg.m = 2;
  cfg.out_min_pins = 7;
  cfg.out_max_pins = 10;
  bench::run_training_curves(cfg);

  // --- ablation: terminal pruning rules of combinatorial MCTS ---
  std::printf("\nablation: combinatorial-MCTS terminal rules (sample time, one"
              " stage of 4 layouts)\n");
  rl::TrainConfig train;
  train.sizes = {{cfg.h, cfg.v, cfg.m}};
  train.layouts_per_size = 4;
  train.epochs_per_stage = 1;
  train.augment_count = 1;
  train.mcts.iterations_per_move = 128;
  train.curriculum_stages = 0;
  train.seed = 0xab1a;

  for (const bool prune : {true, false}) {
    rl::SelectorConfig sel_cfg = core::pretrained_selector_config();
    sel_cfg.unet.seed = 0xad;
    rl::SteinerSelector selector(sel_cfg);
    rl::TrainConfig t = train;
    t.mcts.stop_on_cost_increase = prune;
    t.mcts.flat_cost_patience = prune ? 3 : 1000000;
    rl::CombTrainer trainer(selector, t);
    const auto report = trainer.run_stage();
    std::printf("  pruning %-3s : %.3f s/sample\n", prune ? "on" : "off",
                report.seconds_per_sample);
  }

  // --- fit-phase scaling: data-parallel fit_dataset ---
  // One stage-sized dataset, fitted from the same initial weights with 1,
  // 2, and 4 worker replicas.  The final-epoch loss must agree across
  // worker counts (the gradient reduction tree is keyed by batch position,
  // so updates are bitwise worker-count independent); the speedup column
  // needs >= 4 hardware cores to show the parallel win.
  std::printf("\nfit-phase scaling: serial vs data-parallel fit_dataset"
              " (%u hardware threads)\n", std::thread::hardware_concurrency());
  rl::Dataset fit_dataset_samples;
  {
    util::Rng gen_rng(0xf17);
    const gen::RandomGridSpec spec =
        rl::training_spec({cfg.h, cfg.v, cfg.m}, 0.10, 4, 6);
    for (int i = 0; i < 96; ++i) {
      rl::TrainingSample sample;
      sample.grid = gen::random_grid(spec, gen_rng);
      const auto n = std::size_t(sample.grid.num_vertices());
      sample.label.assign(n, 0.0f);
      sample.mask.assign(n, 1.0f);
      for (int k = 0; k < 4; ++k) {
        sample.label[std::size_t(gen_rng.uniform_int(0, std::int64_t(n) - 1))] = 1.0f;
      }
      fit_dataset_samples.add(std::move(sample));
    }
  }
  double serial_seconds = 0.0;
  double serial_loss = 0.0;
  for (const std::int32_t workers : {1, 2, 4}) {
    rl::SelectorConfig sel_cfg = core::pretrained_selector_config();
    sel_cfg.unet.seed = 0xf1;
    rl::SteinerSelector selector(sel_cfg);
    nn::Adam optimizer(selector.net().parameters(), 1e-3);
    util::Rng fit_rng(0xbeef);
    rl::FitOptions options;
    options.epochs = 2;
    options.batch_size = 16;
    options.grad_clip = 5.0;
    options.workers = workers;
    util::Timer timer;
    const double loss = rl::fit_dataset(selector, optimizer, fit_dataset_samples,
                                        options, fit_rng);
    const double seconds = timer.seconds();
    const double eval = rl::dataset_loss(selector, fit_dataset_samples, 16);
    if (workers == 1) {
      serial_seconds = seconds;
      serial_loss = loss;
    }
    std::printf("  workers %d : %6.2f s  speedup %.2fx  last-epoch loss %.6f"
                "  (|delta| vs serial %.2e)  eval loss %.6f\n",
                workers, seconds, serial_seconds / seconds, loss,
                std::abs(loss - serial_loss), eval);
  }
  return 0;
}
