#include "mcts/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "experience/warm_start.hpp"
#include "hanan/features.hpp"
#include "obs/metrics.hpp"
#include "util/timer.hpp"

namespace oar::mcts {

namespace {

struct ParallelObs {
  obs::Counter& episodes;
  obs::Counter& iterations;
  obs::Counter& simulations;
  obs::Counter& expansions;
  obs::Histogram& episode_seconds;
  obs::Counter& parallel_episodes;
  obs::Counter& vloss_reverts;
  obs::Counter& eval_waits;
};

ParallelObs& parallel_obs() {
  auto& reg = obs::MetricsRegistry::instance();
  // The first five names are shared with the serial CombMcts flush (the
  // registry is get-or-create), so trainer dashboards see one stream of
  // search metrics regardless of which engine produced the episode.
  static ParallelObs o{
      reg.counter("oar_mcts_episodes_total",
                  "Combinatorial MCTS search trees built (CombMcts::run)"),
      reg.counter("oar_mcts_iterations_total", "UCT iterations across all episodes"),
      reg.counter("oar_mcts_simulations_total",
                  "Leaf evaluations (critic or exact) across all episodes"),
      reg.counter("oar_mcts_expansions_total", "Node expansions across all episodes"),
      reg.histogram("oar_mcts_episode_seconds", obs::latency_buckets(),
                    "Wall time per CombMcts episode"),
      reg.counter("oar_mcts_parallel_episodes_total",
                  "Episodes searched by ParallelCombMcts"),
      reg.counter("oar_mcts_vloss_reverts_total",
                  "Virtual losses reverted during backup (== applied when quiescent)"),
      reg.counter("oar_mcts_eval_waits_total",
                  "Descents that waited on another worker's leaf evaluation"),
  };
  return o;
}

// Same tree statistics as the serial search plus the virtual-loss counter.
// `vloss` counts in-flight descents through this edge; it is stamped during
// selection and reverted during backup, and therefore ZERO whenever the
// tree is quiescent — at which point the (visits, total_value, child) triple
// is exactly what the serial Edge would hold.
struct PEdge {
  Vertex action = hanan::kInvalidVertex;
  double prior = 0.0;
  std::int64_t visits = 0;
  double total_value = 0.0;
  std::int32_t child = -1;  // node index, -1 until materialized
  std::int32_t vloss = 0;   // in-flight descents (virtual loss), >= 0
};

struct PNode {
  std::int32_t parent = -1;
  Vertex action = hanan::kInvalidVertex;  // action leading here
  std::int64_t action_priority = -1;
  std::int32_t level = 0;     // number of selected Steiner points
  std::int32_t flat_run = 0;  // consecutive flat-cost actions
  double cost = -1.0;         // exact raw state cost, -1 until computed
  bool expanded = false;
  bool terminal = false;
  // A worker has claimed this leaf and is evaluating it outside the tree
  // lock; other descents arriving here wait on eval_cv instead of
  // duplicating the (expensive) evaluation.
  bool eval_busy = false;
  std::vector<PEdge> edges;
};

struct Step {
  std::int32_t node;
  std::size_t edge;
};

// Per-worker private state: exact/critic evaluation (router scratch), the
// feature encoder, and reusable buffers.  Nothing here is shared, so the
// only synchronization in the search is the tree mutex + the EvalServer.
struct WorkerCtx {
  ActorCritic ac;
  hanan::FeatureCache fcache;
  std::vector<float> features;   // encoded leaf volume (EvalServer input)
  std::vector<double> fsp;       // EvalServer output, priority order
  std::vector<Vertex> selected;  // leaf state snapshot
  std::vector<Step> path;        // descent path of the current iteration

  WorkerCtx(rl::SteinerSelector& selector, const HananGrid& grid,
            std::size_t n_vertices, std::size_t in_numel)
      : ac(selector, grid) {
    features.resize(in_numel);
    fsp.assign(n_vertices, 0.0);
  }
};

}  // namespace

ParallelCombMcts::ParallelCombMcts(rl::SteinerSelector& selector,
                                   CombMctsConfig config,
                                   const experience::Store* experience)
    : selector_(selector),
      config_([](CombMctsConfig c) {
        c.validate();
        return c;
      }(std::move(config))),
      experience_(experience),
      workers_(config_.search_workers == 0
                   ? std::max<std::int32_t>(
                         1, std::int32_t(std::thread::hardware_concurrency()))
                   : config_.search_workers),
      // One worker can never have two requests in flight, so eval_batch > 1
      // would only add straggler-wait latency per leaf — clamp it to 1 (the
      // bitwise single-sample path either way).
      server_(selector,
              EvalServerConfig{workers_ == 1 ? 1 : config_.eval_batch,
                               config_.flush_us,
                               std::max<std::int32_t>(256, 2 * workers_)}) {}

CombMctsResult ParallelCombMcts::run(const HananGrid& grid,
                                     const SearchDeadline& deadline) {
  util::Timer timer;
  CombMctsResult result;
  const auto n_vertices = std::size_t(grid.num_vertices());
  result.label.assign(n_vertices, 0.0f);
  result.label_mask.assign(n_vertices, 0.0f);

  const std::int32_t budget =
      std::max<std::int32_t>(0, std::int32_t(grid.pins().size()) - 2);
  const std::size_t in_numel = std::size_t(hanan::kNumFeatureChannels) *
                               std::size_t(grid.h_dim()) *
                               std::size_t(grid.v_dim()) *
                               std::size_t(grid.m_dim());

  std::deque<WorkerCtx> ctxs;  // deque: WorkerCtx is neither movable nor copyable
  for (std::int32_t i = 0; i < workers_; ++i) {
    ctxs.emplace_back(selector_, grid, n_vertices, in_numel);
  }

  // Per-vertex selection statistics (eq. (3)), indexed by priority.
  std::vector<std::int64_t> n_sel(n_vertices, 0), n_opp(n_vertices, 0);

  // deque: stable node references across materialization (no re-fetch
  // dance around push_back like the serial vector-based tree needs).
  std::deque<PNode> nodes;
  nodes.emplace_back();  // root
  nodes[0].cost = ctxs[0].ac.exact_cost({});
  result.initial_cost = nodes[0].cost;
  result.final_cost = nodes[0].cost;
  result.best_cost = nodes[0].cost;

  const double rc0 = std::max(nodes[0].cost, 1e-12);
  if (!std::isfinite(nodes[0].cost)) nodes[0].terminal = true;
  if (budget == 0) nodes[0].terminal = true;

  auto value_of = [&](double cost) {
    return std::isfinite(cost) ? (rc0 - cost) / rc0 : -2.0;
  };

  // --- persistent-experience warm start (DESIGN.md §18) ---
  // Resolved single-threaded before any worker starts; applied at the
  // initial root's expansion commit under the tree lock.  Identical math
  // to the serial CombMcts, so the 1-worker bitwise anchor extends to
  // warm-started runs.
  experience::WarmStart warm;
  std::vector<Vertex> warm_best;  // floor combination, request space
  bool best_is_warm = false;      // the floor currently holds best_cost
  Vertex warm_first = hanan::kInvalidVertex;  // root edge to visit-seed
  double warm_seed_value = 0.0;
  if (config_.warm_start && experience_ != nullptr && !nodes[0].terminal) {
    warm = experience::lookup_warm_start(*experience_, grid);
    result.stats.warm_matches = warm.matches;
    result.stats.warm_started = !warm.empty();
    if (warm.exact && !warm.best.empty() && std::ssize(warm.best) <= budget) {
      const double floor_cost = ctxs[0].ac.exact_cost(warm.best);
      ++result.stats.simulations;
      warm_first = warm.best.front();
      warm_seed_value = value_of(floor_cost);
      if (floor_cost < result.best_cost) {
        result.best_cost = floor_cost;
        warm_best = warm.best;
        best_is_warm = true;
      }
    }
  }

  std::mutex tree_mu;
  std::condition_variable eval_cv;
  std::atomic<std::int32_t> tickets{0};
  std::exception_ptr first_error;
  std::int32_t root = 0;
  // Node achieving best_cost (tree lock).  Its exact cost was computed, so
  // the state it denotes is always a valid routed answer.
  std::int32_t best_node = 0;
  // Anytime bookkeeping: iterations fully completed (any worker), and
  // whether any worker observed the deadline as expired.
  std::atomic<std::int64_t> completed{0};
  std::atomic<bool> deadline_expired{false};

  // State of a node (tree lock must be held): path actions root -> node.
  auto state_of_into = [&](std::int32_t node, std::vector<Vertex>& out) {
    out.clear();
    for (std::int32_t cur = node; cur != 0; cur = nodes[std::size_t(cur)].parent) {
      out.push_back(nodes[std::size_t(cur)].action);
    }
    std::reverse(out.begin(), out.end());
  };

  // Terminal rules on snapshot values (paper Sec. 3.4); returns
  // (terminal, flat_run) exactly as CombMcts::mark_terminal_rules computes
  // them on the node in place.
  auto terminal_rules = [&](std::int32_t level, double cost, double parent_cost,
                            std::int32_t parent_flat_run, bool& terminal,
                            std::int32_t& flat_run) {
    if (level >= budget) terminal = true;
    if (config_.stop_on_cost_increase &&
        cost > parent_cost * (1.0 + config_.flat_eps)) {
      terminal = true;
    }
    if (std::abs(cost - parent_cost) <= parent_cost * config_.flat_eps) {
      flat_run = parent_flat_run + 1;
      if (flat_run >= config_.flat_cost_patience) terminal = true;
    } else {
      flat_run = 0;
    }
  };

  // One UCT iteration: descend under the tree lock, evaluate the leaf
  // outside it, commit + backup under the lock again.
  auto run_iteration = [&](WorkerCtx& ctx) {
    std::unique_lock<std::mutex> lock(tree_mu);
    std::int32_t cur = root;
    ctx.path.clear();

    // --- selection ---
    for (;;) {
      PNode& node = nodes[std::size_t(cur)];
      if (node.terminal) break;
      if (!node.expanded) {
        if (node.eval_busy) {
          // Another worker is evaluating this exact leaf: wait for its
          // result rather than duplicating the evaluation, then re-examine
          // (the node may now be expanded — descend into it — or terminal).
          ++result.stats.eval_waits;
          eval_cv.wait(lock, [&] { return !nodes[std::size_t(cur)].eval_busy; });
          continue;
        }
        break;  // fresh leaf: this worker claims it below
      }

      assert(!node.edges.empty());
      // Selection score over EFFECTIVE statistics (visits + vloss,
      // total_value - vloss): each in-flight descent counts as one visit
      // with the worst connected outcome, steering concurrent workers
      // apart.  With vloss == 0 everywhere the expressions below reduce —
      // bitwise, not just mathematically — to the serial CombMcts formulas.
      std::int64_t total_visits = 0;
      for (const PEdge& e : node.edges) total_visits += e.visits + e.vloss;
      const double sqrt_total = std::sqrt(double(total_visits));

      std::size_t best = 0;
      double best_score = -1e300;
      for (std::size_t i = 0; i < node.edges.size(); ++i) {
        const PEdge& e = node.edges[i];
        const std::int64_t n_eff = e.visits + e.vloss;
        double q;
        if (e.vloss == 0) {
          q = e.visits == 0 ? 0.0 : e.total_value / double(e.visits);
        } else {
          q = (e.total_value - double(e.vloss)) / double(n_eff);
        }
        const double u =
            config_.c_puct * e.prior * sqrt_total / (1.0 + double(n_eff));
        double score = q + u;
        if (total_visits == 0) score = e.prior;  // cold node: order by prior
        if (score > best_score) {
          best_score = score;
          best = i;
        }
      }

      // eq. (3) bookkeeping: every candidate gets an opportunity, the
      // chosen one a selection.
      for (const PEdge& e : node.edges) {
        ++n_opp[std::size_t(grid.priority_of(e.action))];
      }
      ++n_sel[std::size_t(grid.priority_of(node.edges[best].action))];

      ctx.path.push_back({cur, best});
      PEdge& edge = node.edges[best];
      edge.vloss += 1;
      ++result.stats.vloss_applied;
      if (edge.child < 0) {
        PNode child;
        child.parent = cur;
        child.action = edge.action;
        child.action_priority = grid.priority_of(edge.action);
        child.level = node.level + 1;
        edge.child = std::int32_t(nodes.size());
        nodes.push_back(std::move(child));
        ++result.stats.nodes;
      }
      cur = edge.child;
    }

    auto backup = [&](double value) {
      for (const Step& step : ctx.path) {
        PEdge& e = nodes[std::size_t(step.node)].edges[step.edge];
        e.vloss -= 1;
        ++result.stats.vloss_reverted;
        e.visits += 1;
        e.total_value += value;
      }
    };

    // --- terminal leaf: no evaluation needed, commit under the same lock.
    {
      PNode& leaf = nodes[std::size_t(cur)];
      if (leaf.terminal) {
        backup(value_of(leaf.cost));
        return;
      }
    }

    // --- claim the leaf and snapshot everything the evaluation reads.
    // Parent cost/flat_run are immutable by now: they were committed when
    // the parent itself was evaluated, strictly before any child existed.
    double leaf_cost, parent_cost = 0.0;
    std::int32_t leaf_level, leaf_flat_run, parent_flat_run = 0;
    std::int64_t leaf_action_priority;
    {
      PNode& leaf = nodes[std::size_t(cur)];
      leaf.eval_busy = true;
      leaf_cost = leaf.cost;
      leaf_level = leaf.level;
      leaf_flat_run = leaf.flat_run;
      leaf_action_priority = leaf.action_priority;
      if (leaf.parent >= 0) {
        const PNode& parent = nodes[std::size_t(leaf.parent)];
        parent_cost = parent.cost;
        parent_flat_run = parent.flat_run;
      }
      state_of_into(cur, ctx.selected);
    }
    lock.unlock();

    double value = 0.0;
    double cost = leaf_cost;
    bool terminal = false;
    bool expanded = false;
    std::int32_t flat_run = leaf_flat_run;
    const bool need_cost = leaf_cost < 0.0;
    std::vector<PEdge> new_edges;
    try {
      if (need_cost) {
        cost = ctx.ac.exact_cost(ctx.selected);
        terminal_rules(leaf_level, cost, parent_cost, parent_flat_run, terminal,
                       flat_run);
      }
      if (terminal) {
        value = value_of(cost);
      } else {
        // Expansion: fsp through the shared EvalServer (batch-of-one runs
        // the bitwise single-sample engine), then children from the actor
        // policy — all on worker-private state.  The run's guaranteed
        // first iteration submits without a deadline so the zero-slack
        // fallback can never be cancelled out from under it.
        ctx.fcache.encode_into(grid, ctx.selected, ctx.features.data());
        SearchDeadline eval_deadline;
        if (deadline && completed.load(std::memory_order_relaxed) > 0) {
          eval_deadline = deadline;
        }
        server_.submit(grid, ctx.features.data(), ctx.fsp, eval_deadline).get();
        auto policy = ctx.ac.policy(ctx.selected, leaf_action_priority, ctx.fsp);
        if (config_.max_children > 0 &&
            std::ssize(policy) > config_.max_children) {
          std::partial_sort(policy.begin(), policy.begin() + config_.max_children,
                            policy.end(), [](const auto& a, const auto& b) {
                              return a.second > b.second;
                            });
          policy.resize(std::size_t(config_.max_children));
          double total = 0.0;
          for (const auto& [v, p] : policy) total += p;
          if (total > 0.0) {
            for (auto& [v, p] : policy) p /= total;
          }
        }
        if (policy.empty()) {
          terminal = true;
          value = value_of(cost);
        } else {
          const double mix = config_.prior_uniform_mix;
          const double uniform = 1.0 / double(policy.size());
          new_edges.reserve(policy.size());
          for (const auto& [v, p] : policy) {
            PEdge e;
            e.action = v;
            e.prior = (1.0 - mix) * p + mix * uniform;
            new_edges.push_back(e);
          }
          expanded = true;
          const double predicted = config_.use_critic
                                       ? ctx.ac.critic_cost(ctx.selected, budget,
                                                            ctx.fsp)
                                       : cost;
          value = value_of(predicted);
        }
      }
    } catch (...) {
      // Release the claim and revert the stamped virtual losses (no visit,
      // no value) so waiters unblock and the tree stays consistent, then
      // let the worker loop surface the error.
      lock.lock();
      nodes[std::size_t(cur)].eval_busy = false;
      for (const Step& step : ctx.path) {
        PEdge& e = nodes[std::size_t(step.node)].edges[step.edge];
        e.vloss -= 1;
        ++result.stats.vloss_reverted;
      }
      lock.unlock();
      eval_cv.notify_all();
      throw;
    }

    // --- commit + backup ---
    lock.lock();
    {
      PNode& leaf = nodes[std::size_t(cur)];
      if (need_cost) {
        leaf.cost = cost;
        leaf.flat_run = flat_run;
        if (cost < result.best_cost) {
          result.best_cost = cost;
          best_node = cur;
          best_is_warm = false;
        }
      }
      if (terminal) leaf.terminal = true;
      if (expanded) {
        leaf.edges = std::move(new_edges);
        if (cur == 0 && !warm.empty()) {
          // Warm start at the initial root (expanded exactly once, by the
          // worker that claimed it): blend the experience prior and seed
          // the recorded first action — the serial CombMcts math verbatim.
          if (!warm.prior.empty()) {
            double mass = 0.0;
            for (const PEdge& e : leaf.edges) {
              mass +=
                  double(warm.prior[std::size_t(grid.priority_of(e.action))]);
            }
            if (mass > 0.0) {
              const double lam = config_.warm_start_weight;
              for (PEdge& e : leaf.edges) {
                const double p_exp =
                    double(warm.prior[std::size_t(grid.priority_of(e.action))]) /
                    mass;
                e.prior = (1.0 - lam) * e.prior + lam * p_exp;
              }
            }
          }
          if (warm_first != hanan::kInvalidVertex &&
              config_.warm_start_visits > 0) {
            for (PEdge& e : leaf.edges) {
              if (e.action == warm_first) {
                e.visits += config_.warm_start_visits;
                e.total_value +=
                    double(config_.warm_start_visits) * warm_seed_value;
                break;
              }
            }
          }
        }
        leaf.expanded = true;
        ++result.stats.expansions;
        ++result.stats.simulations;
      }
      leaf.eval_busy = false;
    }
    backup(value);
    lock.unlock();
    eval_cv.notify_all();
  };

  auto worker_fn = [&](WorkerCtx& ctx) {
    try {
      for (;;) {
        // Anytime control at iteration granularity.  The completed > 0
        // guard keeps the run's very first iteration alive even under an
        // already-expired deadline (the zero-slack fallback); concurrent
        // workers may each run one such iteration, which only strengthens
        // the fallback.
        if (deadline && completed.load(std::memory_order_relaxed) > 0 &&
            SearchClock::now() >= *deadline) {
          deadline_expired.store(true, std::memory_order_relaxed);
          tickets.store(0, std::memory_order_relaxed);
          break;
        }
        if (tickets.fetch_sub(1, std::memory_order_relaxed) <= 0) break;
        run_iteration(ctx);
        completed.fetch_add(1, std::memory_order_relaxed);
      }
    } catch (const EvalCancelled&) {
      // The EvalServer cancelled this worker's in-flight leaf evaluation
      // on the expired deadline.  run_iteration already reverted the
      // iteration's virtual losses and released the leaf claim; the
      // aborted iteration is simply not counted.
      deadline_expired.store(true, std::memory_order_relaxed);
      tickets.store(0, std::memory_order_relaxed);
    } catch (...) {
      std::lock_guard<std::mutex> lk(tree_mu);
      if (!first_error) first_error = std::current_exception();
      tickets.store(0, std::memory_order_relaxed);
    }
  };

  // Virtual-loss invariant: between root moves the tree is quiescent, so
  // every stamp must have been reverted.  Violations are real bugs (a lost
  // backup or a leaked claim), never timing noise — fail loudly.
  auto check_vloss_clean = [&] {
    for (const PNode& n : nodes) {
      for (const PEdge& e : n.edges) {
        if (e.vloss != 0) {
          throw std::logic_error(
              "ParallelCombMcts: virtual loss not reverted after move");
        }
      }
    }
    if (result.stats.vloss_applied != result.stats.vloss_reverted) {
      throw std::logic_error(
          "ParallelCombMcts: vloss applied/reverted counters diverged");
    }
  };

  while (!nodes[std::size_t(root)].terminal) {
    // --- alpha UCT iterations from the current root, K workers ---
    tickets.store(config_.iterations_per_move, std::memory_order_relaxed);
    std::vector<std::thread> threads;
    threads.reserve(std::size_t(workers_ - 1));
    for (std::int32_t i = 1; i < workers_; ++i) {
      threads.emplace_back([&, i] { worker_fn(ctxs[std::size_t(i)]); });
    }
    worker_fn(ctxs[0]);  // the caller is worker 0 (K == 1 never spawns)
    for (std::thread& t : threads) t.join();
    if (first_error) std::rethrow_exception(first_error);
    result.stats.iterations = completed.load(std::memory_order_relaxed);
    check_vloss_clean();
    if (deadline_expired.load(std::memory_order_relaxed)) {
      // Best-so-far is already recorded in best_node/best_cost; executing
      // further root moves would spend budget the caller no longer has.
      result.stats.deadline_hit = true;
      break;
    }

    // --- execute the most-visited root action (single-threaded again) ---
    PNode& root_node = nodes[std::size_t(root)];
    if (!root_node.expanded || root_node.edges.empty()) break;
    std::size_t best = 0;
    for (std::size_t i = 1; i < root_node.edges.size(); ++i) {
      if (root_node.edges[i].visits > root_node.edges[best].visits) best = i;
    }
    PEdge& chosen = root_node.edges[best];
    if (chosen.child < 0) break;  // never explored: nothing to execute
    root = chosen.child;
    ++result.stats.executed_moves;

    PNode& new_root = nodes[std::size_t(root)];
    if (new_root.cost < 0.0) {
      state_of_into(root, ctxs[0].selected);
      new_root.cost = ctxs[0].ac.exact_cost(ctxs[0].selected);
      bool terminal = false;
      terminal_rules(new_root.level, new_root.cost,
                     nodes[std::size_t(new_root.parent)].cost,
                     nodes[std::size_t(new_root.parent)].flat_run, terminal,
                     new_root.flat_run);
      if (terminal) new_root.terminal = true;
    }
    if (new_root.cost < result.best_cost) {
      result.best_cost = new_root.cost;
      best_node = root;
      best_is_warm = false;
    }
  }

  state_of_into(root, ctxs[0].selected);
  result.selected = ctxs[0].selected;
  if (best_is_warm) {
    result.best_selected = warm_best;
  } else {
    state_of_into(best_node, ctxs[0].selected);
    result.best_selected = ctxs[0].selected;
  }
  result.final_cost = nodes[std::size_t(root)].cost;

  // eq. (3): L_fsp(v) = n_sel / n_opp, in priority order.
  for (Vertex v = 0; v < grid.num_vertices(); ++v) {
    const auto p = std::size_t(grid.priority_of(v));
    if (!grid.is_blocked(v) && !grid.is_pin(v)) result.label_mask[p] = 1.0f;
    if (n_opp[p] > 0) {
      result.label[p] = float(double(n_sel[p]) / double(n_opp[p]));
    }
  }
  result.stats.seconds = timer.seconds();

  ParallelObs& o = parallel_obs();
  o.episodes.inc();
  o.parallel_episodes.inc();
  o.iterations.add(std::uint64_t(result.stats.iterations));
  o.simulations.add(std::uint64_t(result.stats.simulations));
  o.expansions.add(std::uint64_t(result.stats.expansions));
  o.vloss_reverts.add(std::uint64_t(result.stats.vloss_reverted));
  o.eval_waits.add(std::uint64_t(result.stats.eval_waits));
  o.episode_seconds.observe(result.stats.seconds);
  return result;
}

}  // namespace oar::mcts
