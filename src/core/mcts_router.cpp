#include "core/mcts_router.hpp"

#include <algorithm>

#include "mcts/parallel.hpp"
#include "route/oarmst.hpp"

namespace oar::core {

MctsRouter::MctsRouter(std::shared_ptr<rl::SteinerSelector> selector,
                       mcts::CombMctsConfig config,
                       std::shared_ptr<experience::Store> experience)
    : selector_(std::move(selector)),
      config_(config),
      experience_(std::move(experience)) {
  config_.validate();
}

route::OarmstResult MctsRouter::route(const hanan::HananGrid& grid) {
  return route(grid, std::nullopt);
}

route::OarmstResult MctsRouter::route(const hanan::HananGrid& grid,
                                      const mcts::SearchDeadline& deadline) {
  mcts::CombMctsConfig cfg = config_;
  cfg.iterations_per_move =
      mcts::scaled_iterations(config_.iterations_per_move, grid);

  mcts::CombMctsResult searched;
  if (cfg.search_workers != 1) {
    mcts::ParallelCombMcts search(*selector_, cfg, experience_.get());
    searched = search.run(grid, deadline);
  } else {
    mcts::CombMcts search(*selector_, cfg, experience_.get());
    searched = search.run(grid, deadline);
  }
  stats_ = searched.stats;

  // Final construction (removal ON, mirroring RlRouter): the search's raw
  // state costs keep redundant points visible, but the tree we hand back
  // should not contain them.  An expired deadline routes the best-so-far
  // combination (every candidate was exact-evaluated, so this is always a
  // valid routed state — the anytime invariant); a completed search keeps
  // the executed combination, preserving the unbounded behaviour bitwise.
  const std::vector<hanan::Vertex>& combination =
      searched.stats.deadline_hit ? searched.best_selected : searched.selected;
  route::OarmstRouter router(grid);
  route::RouterScratch& scratch = route::local_router_scratch();
  route::OarmstResult result = router.build(grid.pins(), combination, &scratch);

  // The executed combination is terminal-rule greedy; the plain no-Steiner
  // construction is free to compare against and keeps a degenerate search
  // from ever losing to "route the pins directly".
  if (!combination.empty()) {
    route::OarmstResult plain = router.build(grid.pins(), {}, &scratch);
    if (plain.connected && (!result.connected || plain.cost < result.cost)) {
      result = std::move(plain);
    }
  }

  // Feed the episode back: the routed tree plus the search's fsp labels
  // and best combination become a warm-start record for future searches on
  // this (or a near-miss) layout.
  if (experience_ && !experience_->config().read_only && result.connected) {
    experience_->put(experience::build_record(grid, result, searched.label,
                                              searched.best_selected));
  }
  return result;
}

}  // namespace oar::core
