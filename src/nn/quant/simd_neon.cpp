// NEON kernels for the int8 NHWC convolution primitives (contract in
// simd.hpp).  aarch64 only: NEON is baseline there, so runtime detection is
// trivial; with the v8.2 dot-product extension (__ARM_FEATURE_DOTPROD) the
// inner step is one sdot per (group, 4 output channels), otherwise a
// widening vmull_s8 / pairwise-add-long sequence.  Activations are <= 127,
// so reinterpreting them as int8 for sdot/vmull_s8 is value-preserving and
// every product fits int16 — exact integer arithmetic, bit-identical to the
// scalar reference.

#include "nn/quant/simd.hpp"

#if defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>

#include <cstring>

namespace oar::nn::simd {
namespace {

// acc4 lanes = 4 consecutive output channels.  a16 holds the broadcast
// 4-byte activation group repeated 4x; w16 the 4 channels' 4-byte weight
// blocks.
inline int32x4_t dp_neon(int32x4_t acc4, int8x16_t a16, int8x16_t w16) {
#if defined(__ARM_FEATURE_DOTPROD)
  return vdotq_s32(acc4, a16, w16);
#else
  // vmull low/high: 8 int16 products each (two channels' 4-products).
  // vpaddlq_s16 folds product pairs into int32 lanes; vpaddq_s32 folds the
  // remaining pairs so lane i is channel i's full 4-dot.
  const int16x8_t lo = vmull_s8(vget_low_s8(a16), vget_low_s8(w16));
  const int16x8_t hi = vmull_s8(vget_high_s8(a16), vget_high_s8(w16));
  const int32x4_t s = vpaddq_s32(vpaddlq_s16(lo), vpaddlq_s16(hi));
  return vaddq_s32(acc4, s);
#endif
}

inline int8x16_t broadcast_group_neon(const std::uint8_t* p) {
  std::uint32_t bits;
  std::memcpy(&bits, p, 4);
  return vreinterpretq_s8_u32(vdupq_n_u32(bits));
}

// One voxel's accumulation over the valid taps, vector over OC in blocks
// of 4 with a scalar tail.
inline void conv3_voxel_neon(const std::uint8_t* act, std::int32_t D1,
                             std::int32_t D2, std::int32_t ICp,
                             const std::int8_t* wp, std::int32_t OC,
                             std::int32_t o0, std::int32_t o1, std::int32_t o2,
                             std::int32_t k0_lo, std::int32_t k0_hi,
                             std::int32_t k1_lo, std::int32_t k1_hi,
                             std::int32_t k2_lo, std::int32_t k2_hi,
                             std::int32_t* out) {
  const std::int32_t G = ICp / 4;
  std::int32_t oc = 0;
  for (; oc + 4 <= OC; oc += 4) {
    int32x4_t acc4 = vdupq_n_s32(0);
    for (std::int32_t k0 = k0_lo; k0 <= k0_hi; ++k0) {
      for (std::int32_t k1 = k1_lo; k1 <= k1_hi; ++k1) {
        const std::uint8_t* arow =
            act + ((std::int64_t(o0 + k0 - 1) * D1 + (o1 + k1 - 1)) * D2 +
                   (o2 - 1)) *
                      ICp;
        for (std::int32_t k2 = k2_lo; k2 <= k2_hi; ++k2) {
          const std::uint8_t* a = arow + std::int64_t(k2) * ICp;
          const std::int8_t* w =
              wp + (std::int64_t((k0 * 3 + k1) * 3 + k2) * G * OC + oc) * 4;
          for (std::int32_t g = 0; g < G; ++g, w += std::int64_t(OC) * 4) {
            acc4 = dp_neon(acc4, broadcast_group_neon(a + 4 * g),
                           vld1q_s8(w));
          }
        }
      }
    }
    vst1q_s32(out + oc, acc4);
  }
  for (; oc < OC; ++oc) {
    std::int32_t s = 0;
    for (std::int32_t k0 = k0_lo; k0 <= k0_hi; ++k0) {
      for (std::int32_t k1 = k1_lo; k1 <= k1_hi; ++k1) {
        const std::uint8_t* arow =
            act + ((std::int64_t(o0 + k0 - 1) * D1 + (o1 + k1 - 1)) * D2 +
                   (o2 - 1)) *
                      ICp;
        for (std::int32_t k2 = k2_lo; k2 <= k2_hi; ++k2) {
          const std::uint8_t* a = arow + std::int64_t(k2) * ICp;
          const std::int8_t* w =
              wp + (std::int64_t((k0 * 3 + k1) * 3 + k2) * G * OC + oc) * 4;
          for (std::int32_t g = 0; g < G; ++g) {
            const std::uint8_t* ag = a + 4 * g;
            const std::int8_t* wo = w + std::int64_t(g) * OC * 4;
            s += std::int32_t(ag[0]) * wo[0] + std::int32_t(ag[1]) * wo[1] +
                 std::int32_t(ag[2]) * wo[2] + std::int32_t(ag[3]) * wo[3];
          }
        }
      }
    }
    out[oc] = s;
  }
}

void conv3_nhwc_neon(const std::uint8_t* act, std::int32_t D0, std::int32_t D1,
                     std::int32_t D2, std::int32_t ICp, const std::int8_t* wp,
                     std::int32_t OC, std::int32_t* acc) {
  std::int32_t* out = acc;
  for (std::int32_t o0 = 0; o0 < D0; ++o0) {
    const std::int32_t k0_lo = o0 > 0 ? 0 : 1;
    const std::int32_t k0_hi = o0 + 1 < D0 ? 2 : 1;
    for (std::int32_t o1 = 0; o1 < D1; ++o1) {
      const std::int32_t k1_lo = o1 > 0 ? 0 : 1;
      const std::int32_t k1_hi = o1 + 1 < D1 ? 2 : 1;
      for (std::int32_t o2 = 0; o2 < D2; ++o2, out += OC) {
        conv3_voxel_neon(act, D1, D2, ICp, wp, OC, o0, o1, o2, k0_lo, k0_hi,
                         k1_lo, k1_hi, o2 > 0 ? 0 : 1, o2 + 1 < D2 ? 2 : 1,
                         out);
      }
    }
  }
}

void conv1_nhwc_neon(const std::uint8_t* act, std::int64_t S, std::int32_t ICp,
                     const std::int8_t* wp, std::int32_t OC,
                     std::int32_t* acc) {
  const std::int32_t G = ICp / 4;
  for (std::int64_t v = 0; v < S; ++v) {
    const std::uint8_t* a = act + v * ICp;
    std::int32_t* out = acc + v * OC;
    std::int32_t oc = 0;
    for (; oc + 4 <= OC; oc += 4) {
      int32x4_t acc4 = vdupq_n_s32(0);
      const std::int8_t* w = wp + std::int64_t(oc) * 4;
      for (std::int32_t g = 0; g < G; ++g, w += std::int64_t(OC) * 4) {
        acc4 = dp_neon(acc4, broadcast_group_neon(a + 4 * g), vld1q_s8(w));
      }
      vst1q_s32(out + oc, acc4);
    }
    for (; oc < OC; ++oc) {
      std::int32_t s = 0;
      for (std::int32_t g = 0; g < G; ++g) {
        const std::uint8_t* ag = a + 4 * g;
        const std::int8_t* wo = wp + (std::int64_t(g) * OC + oc) * 4;
        s += std::int32_t(ag[0]) * wo[0] + std::int32_t(ag[1]) * wo[1] +
             std::int32_t(ag[2]) * wo[2] + std::int32_t(ag[3]) * wo[3];
      }
      out[oc] = s;
    }
  }
}

constexpr Kernels kNeonKernels{conv3_nhwc_neon, conv1_nhwc_neon};

}  // namespace

namespace detail {
const Kernels* neon_kernels() { return &kNeonKernels; }
}  // namespace detail

}  // namespace oar::nn::simd

#else  // !aarch64

namespace oar::nn::simd::detail {
const Kernels* neon_kernels() { return nullptr; }
}  // namespace oar::nn::simd::detail

#endif
