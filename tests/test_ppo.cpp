#include "rl/ppo.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace oar::rl {
namespace {

SelectorConfig tiny_selector() {
  SelectorConfig cfg;
  cfg.unet.base_channels = 4;
  cfg.unet.depth = 1;
  cfg.unet.seed = 202;
  return cfg;
}

PpoConfig tiny_ppo() {
  PpoConfig cfg;
  cfg.episodes_per_iteration = 4;
  cfg.update_epochs = 2;
  cfg.min_pins = 4;
  cfg.max_pins = 5;
  cfg.seed = 9;
  return cfg;
}

TEST(Ppo, IterationRunsAndReports) {
  SteinerSelector selector(tiny_selector());
  PpoTrainer trainer(selector, {{6, 6, 2}}, tiny_ppo());
  const PpoIterationReport report = trainer.run_iteration();
  EXPECT_EQ(report.iteration, 0);
  EXPECT_GT(report.steps, 0);
  EXPECT_TRUE(std::isfinite(report.mean_return));
  EXPECT_TRUE(std::isfinite(report.mean_policy_loss));
  EXPECT_TRUE(std::isfinite(report.mean_value_loss));
  EXPECT_GT(report.seconds, 0.0);
}

TEST(Ppo, IterationCounterAdvances) {
  SteinerSelector selector(tiny_selector());
  PpoTrainer trainer(selector, {{6, 6, 2}}, tiny_ppo());
  EXPECT_EQ(trainer.run_iteration().iteration, 0);
  EXPECT_EQ(trainer.run_iteration().iteration, 1);
}

TEST(Ppo, UpdatesPolicyAndValueWeights) {
  SteinerSelector selector(tiny_selector());
  PpoTrainer trainer(selector, {{6, 6, 2}}, tiny_ppo());
  std::vector<float> policy_before;
  for (auto* p : selector.net().parameters()) {
    for (std::int64_t i = 0; i < p->value.numel(); ++i) {
      policy_before.push_back(p->value[i]);
    }
  }
  std::vector<float> value_before;
  for (auto* p : trainer.value_net().parameters()) {
    for (std::int64_t i = 0; i < p->value.numel(); ++i) {
      value_before.push_back(p->value[i]);
    }
  }
  trainer.run_iteration();
  double policy_diff = 0.0, value_diff = 0.0;
  std::size_t k = 0;
  for (auto* p : selector.net().parameters()) {
    for (std::int64_t i = 0; i < p->value.numel(); ++i) {
      policy_diff += std::abs(double(p->value[i]) - policy_before[k++]);
    }
  }
  k = 0;
  for (auto* p : trainer.value_net().parameters()) {
    for (std::int64_t i = 0; i < p->value.numel(); ++i) {
      value_diff += std::abs(double(p->value[i]) - value_before[k++]);
    }
  }
  EXPECT_GT(policy_diff, 0.0);
  EXPECT_GT(value_diff, 0.0);
}

TEST(Ppo, ReturnsBoundedByNormalization) {
  // Episodic return is (rc0 - final)/rc0, so it must lie in (-inf, 1];
  // with the cost-increase stop it stays in a narrow sane band.
  SteinerSelector selector(tiny_selector());
  PpoConfig cfg = tiny_ppo();
  cfg.episodes_per_iteration = 8;
  PpoTrainer trainer(selector, {{6, 6, 2}}, cfg);
  const auto report = trainer.run_iteration();
  EXPECT_LE(report.mean_return, 1.0);
  EXPECT_GE(report.mean_return, -1.0);
}

}  // namespace
}  // namespace oar::rl
