#pragma once

// Process-global observability metrics (DESIGN.md §12).
//
// A MetricsRegistry maps names to three metric kinds:
//   Counter   — monotonically increasing u64 (events, items processed),
//   Gauge     — last-write-wins double (queue depth, arena bytes),
//   Histogram — fixed upper-bound buckets + sum/count (latencies, sizes).
//
// Hot-path cost model: every metric is striped across kShards cache-line-
// padded slots; a thread picks its slot once (hashed thread id cached in
// TLS) and increments it with a relaxed atomic add.  There is no lock, no
// false sharing between threads on different slots, and no merge work
// until someone scrapes — snapshot() sums the shards.  Totals are exact:
// two threads hashing to the same slot still combine through fetch_add.
//
// Handles are stable references: look a metric up once (registration takes
// the registry mutex), stash the Counter&/Histogram&, and increment
// lock-free forever after.  Instrumentation sites use a function-local
// static for this.
//
// Two off-switches:
//   * runtime  — set_enabled(false) turns every record into a checked
//     no-op (one relaxed bool load).  The benches use it to measure the
//     enabled-vs-disabled overhead inside one binary.
//   * compile-time — building with -DOARSMTRL_NO_METRICS compiles every
//     handle method to an empty inline body (kMetricsCompiled == false);
//     the registry still exists so call sites and exporters compile
//     unchanged, but snapshots are empty and no atomics are touched.

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace oar::obs {

#ifdef OARSMTRL_NO_METRICS
inline constexpr bool kMetricsCompiled = false;
#else
inline constexpr bool kMetricsCompiled = true;
#endif

#ifndef OARSMTRL_NO_METRICS
namespace detail {
extern std::atomic<bool> g_enabled;
}
/// Runtime kill-switch (default on).  Disabled metrics drop records but
/// keep their registered identity, so a scrape still lists every family.
/// One relaxed load on the hot path.
inline bool enabled() { return detail::g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on);
#else
inline bool enabled() { return false; }
inline void set_enabled(bool) {}
#endif

/// Scrape-side value of one metric, used by the exporters (obs/export.hpp).
struct CounterSample {
  std::string name;
  std::string help;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  std::string help;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  std::string help;
  /// Ascending finite upper bounds; an implicit +Inf bucket follows.
  std::vector<double> bounds;
  /// Per-bucket (non-cumulative) counts, size bounds.size() + 1.
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;  // total observations
  double sum = 0.0;         // sum of observed values
};

struct Snapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

#ifndef OARSMTRL_NO_METRICS

namespace detail {

inline constexpr std::size_t kShards = 16;  // power of two

/// This thread's shard slot: thread id hashed once, cached in TLS.
std::size_t shard_index();

struct alignas(64) PaddedU64 {
  std::atomic<std::uint64_t> v{0};
};

struct alignas(64) PaddedF64 {
  std::atomic<double> v{0.0};

  void add_relaxed(double x) {
    double cur = v.load(std::memory_order_relaxed);
    while (!v.compare_exchange_weak(cur, cur + x, std::memory_order_relaxed)) {
    }
  }
};

}  // namespace detail

class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (!enabled()) return;
    shards_[detail::shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  void inc() { add(1); }

  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  friend class MetricsRegistry;
  std::array<detail::PaddedU64, detail::kShards> shards_;
};

class Gauge {
 public:
  void set(double x) {
    if (!enabled()) return;
    value_.store(x, std::memory_order_relaxed);
  }
  void add(double x) {
    if (!enabled()) return;
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + x, std::memory_order_relaxed)) {
    }
  }

  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  std::atomic<double> value_{0.0};
};

class Histogram {
 public:
  void observe(double x) {
    if (!enabled()) return;
    Shard& shard = shards_[detail::shard_index()];
    shard.buckets[bucket_of(x)].v.fetch_add(1, std::memory_order_relaxed);
    shard.sum.add_relaxed(x);
  }

  const std::vector<double>& bounds() const { return bounds_; }
  std::uint64_t count() const;
  double sum() const;

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> bounds);

  std::size_t bucket_of(double x) const {
    // bounds_ has at most a few dozen entries; a linear scan beats a
    // branchy binary search at this size.  Prometheus "le" semantics:
    // x lands in the first bucket whose bound is >= x.
    std::size_t i = 0;
    while (i < bounds_.size() && x > bounds_[i]) ++i;
    return i;
  }

  struct Shard {
    std::vector<detail::PaddedU64> buckets;  // bounds_.size() + 1 (+Inf last)
    detail::PaddedF64 sum;
  };

  std::vector<double> bounds_;
  std::array<Shard, detail::kShards> shards_;
};

#else  // OARSMTRL_NO_METRICS — every handle is a no-op shell.

class Counter {
 public:
  void add(std::uint64_t = 1) {}
  void inc() {}
  std::uint64_t value() const { return 0; }
};

class Gauge {
 public:
  void set(double) {}
  void add(double) {}
  double value() const { return 0.0; }
};

class Histogram {
 public:
  void observe(double) {}
  const std::vector<double>& bounds() const {
    static const std::vector<double> empty;
    return empty;
  }
  std::uint64_t count() const { return 0; }
  double sum() const { return 0.0; }
};

#endif  // OARSMTRL_NO_METRICS

/// Default latency bucket ladder: 1 µs .. ~65 s, doubling (27 buckets).
std::vector<double> latency_buckets();

/// Small-integer bucket ladder for size-like histograms (1, 2, 4, .., 2^k).
std::vector<double> pow2_buckets(int max_exponent);

class MetricsRegistry {
 public:
  /// The process-global registry every subsystem records into.
  static MetricsRegistry& instance();

  /// Get-or-create.  The returned reference is stable for the registry's
  /// lifetime.  Re-registering an existing name returns the existing
  /// metric (first help string and bounds win); a name already bound to a
  /// different metric kind throws std::logic_error.
  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const std::string& help = "");

  /// Merges every shard into a point-in-time view, families sorted by
  /// name.  Counters scraped concurrently with increments are torn only
  /// across *distinct* metrics, never within one (each shard is summed
  /// with atomic loads).
  Snapshot snapshot() const;

  /// Zeroes every registered metric (keeps registrations).  Test/bench
  /// hook; never called by library code.
  void reset();

 private:
  MetricsRegistry() = default;

  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;  // ordered => deterministic export
};

}  // namespace oar::obs
