#include "chip/congestion.hpp"

#include <algorithm>
#include <cassert>

namespace oar::chip {

Dir edge_dir(const HananGrid& grid, Vertex a, Vertex b) {
  if (a > b) std::swap(a, b);
  const auto ca = grid.cell(a);
  const auto cb = grid.cell(b);
  if (cb.h == ca.h + 1 && cb.v == ca.v && cb.m == ca.m) return Dir::kPosX;
  if (cb.v == ca.v + 1 && cb.h == ca.h && cb.m == ca.m) return Dir::kPosY;
  assert(cb.m == ca.m + 1 && cb.h == ca.h && cb.v == ca.v);
  return Dir::kPosZ;
}

std::size_t edge_slot(const HananGrid& grid, Vertex a, Vertex b) {
  const Vertex lo = std::min(a, b);
  return std::size_t(lo) * 3 + std::size_t(edge_dir(grid, a, b));
}

CongestionMap::CongestionMap(const HananGrid& grid, std::int32_t capacity)
    : grid_(&grid), capacity_(capacity) {
  assert(capacity >= 1);
  const std::size_t slots = std::size_t(grid.num_vertices()) * 3;
  usage_.assign(slots, 0);
  history_.assign(slots, 0.0);
}

void CongestionMap::commit(const route::RouteTree& tree) {
  for (const auto& e : tree.edges()) {
    ++usage_[edge_slot(*grid_, e.a, e.b)];
  }
}

void CongestionMap::rip_up(const route::RouteTree& tree) {
  for (const auto& e : tree.edges()) {
    std::int32_t& u = usage_[edge_slot(*grid_, e.a, e.b)];
    assert(u > 0 && "rip_up without a matching commit");
    --u;
  }
}

std::int64_t CongestionMap::overflow() const {
  std::int64_t total = 0;
  for (const std::int32_t u : usage_) {
    if (u > capacity_) total += u - capacity_;
  }
  return total;
}

std::int64_t CongestionMap::overflowed_edges() const {
  std::int64_t n = 0;
  for (const std::int32_t u : usage_) n += u > capacity_;
  return n;
}

std::int64_t CongestionMap::total_usage() const {
  std::int64_t total = 0;
  for (const std::int32_t u : usage_) total += u;
  return total;
}

bool CongestionMap::tree_overflows(const route::RouteTree& tree) const {
  for (const auto& e : tree.edges()) {
    if (usage_[edge_slot(*grid_, e.a, e.b)] > capacity_) return true;
  }
  return false;
}

void CongestionMap::add_history(double increment) {
  assert(increment >= 0.0);
  for (std::size_t slot = 0; slot < usage_.size(); ++slot) {
    if (usage_[slot] > capacity_) history_[slot] += increment;
  }
}

double CongestionMap::base_edge_cost(std::size_t slot) const {
  const auto idx = Vertex(slot / 3);
  const auto c = grid_->cell(idx);
  switch (Dir(slot % 3)) {
    case Dir::kPosX: return grid_->x_step(c.h);
    case Dir::kPosY: return grid_->y_step(c.v);
    case Dir::kPosZ: return grid_->via_cost();
  }
  return 0.0;
}

bool CongestionMap::apply_to(HananGrid& grid, double present_factor) const {
  assert(&grid == grid_ ||
         (grid.num_vertices() == grid_->num_vertices() &&
          "overlay target must have the tracked grid's dimensions"));
  bias_.assign(usage_.size(), 0.0);
  bool any = false;
  for (std::size_t slot = 0; slot < usage_.size(); ++slot) {
    const std::int32_t over = usage_[slot] + 1 - capacity_;
    const double relative =
        present_factor * double(std::max(0, over)) + history_[slot];
    if (relative > 0.0) {
      bias_[slot] = base_edge_cost(slot) * relative;
      any = true;
    }
  }
  if (!any) return grid.set_edge_cost_biases({});
  return grid.set_edge_cost_biases(bias_);
}

bool CongestionMap::matches(
    const std::vector<const route::RouteTree*>& trees) const {
  std::vector<std::int32_t> recount(usage_.size(), 0);
  for (const route::RouteTree* tree : trees) {
    if (tree == nullptr) continue;
    for (const auto& e : tree->edges()) {
      ++recount[edge_slot(*grid_, e.a, e.b)];
    }
  }
  return recount == usage_;
}

}  // namespace oar::chip
