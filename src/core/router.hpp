#pragma once

// core::Router — the unified routing facade.
//
// The repository grew three entry points with different shapes:
//
//   * core::RlRouter / the RouterRegistry baselines: construct, then
//     route(const HananGrid&) synchronously,
//   * serve::RouterService: submit(shared_ptr<const HananGrid>) through the
//     micro-batcher + symmetry cache,
//   * geometric callers: build a HananGrid from a geom::Layout by hand
//     before either of the above.
//
// This facade folds them behind one call:
//
//   core::Router router({.engine = "rl-ours"});
//   core::RouteResult r = router.route(layout, net);
//   // r.result.tree, r.result.cost, r.obs (metrics snapshot)
//
// RouterOptions selects the engine by registry name ("lin08", "liu14",
// "lin18", "oracle", "rl-ours", ...) and, for the RL engine, whether calls
// go through serve::RouterService (micro-batching + result cache) or the
// direct single-shot RlRouter path.  Engines are constructed lazily on the
// first route() and reused across calls, so the facade is as cheap per call
// as the entry point it wraps.  The old entry points remain supported as
// the thin layers the facade dispatches to.
//
// Every RouteResult carries a point-in-time obs::Snapshot of the global
// metrics registry (disable with collect_obs = false), so callers get the
// cache hit rates / router epoch counts / latency histograms of the call
// they just made without touching obs:: directly.
//
// A Router instance is NOT thread safe; share a serve::RouterService (or
// give each thread its own facade) for concurrent routing.

#include <memory>
#include <string>

#include "chip/chip_router.hpp"
#include "chip/netlist.hpp"
#include "core/multi_net.hpp"
#include "core/rl_router.hpp"
#include "experience/store.hpp"
#include "mcts/comb_mcts.hpp"
#include "geom/layout.hpp"
#include "obs/metrics.hpp"
#include "serve/service.hpp"
#include "steiner/router_base.hpp"

namespace oar::core {

struct RouterOptions {
  /// Engine by RouterRegistry name.  "rl-ours" uses the bundled pretrained
  /// selector (quick-trained when the checkpoint is absent) and honors `rl`.
  std::string engine = "rl-ours";
  /// RL-engine knobs (prefix sweep); ignored by baseline engines.
  RlRouterConfig rl;
  /// Search-engine knobs for "rl-mcts" (iterations, search_workers /
  /// eval_batch / flush_us for the tree-parallel search); ignored by every
  /// other engine.
  mcts::CombMctsConfig mcts;
  /// Route through serve::RouterService (micro-batching + symmetry cache)
  /// instead of the direct single-shot path.  RL engine only.
  bool use_service = false;
  serve::RouterServiceConfig service;
  /// Persistent experience file (experience::Store disk tier) shared
  /// across the facade's paths.  The serving path uses it to back the
  /// symmetry cache, so exact hits survive process restarts; "rl-mcts"
  /// warm-starts its root from it when `mcts.warm_start` is on and appends
  /// every connected routed episode back (DESIGN.md §18).  Empty = no
  /// persistence — memory-only caching, the legacy behaviour.
  std::string experience_path;
  /// Open the experience file read-only: serve and warm-start from it,
  /// never append (e.g. sharing a golden store across replicas).
  bool experience_read_only = false;
  /// Full-chip negotiation knobs for route(grid, netlist).
  chip::ChipConfig chip;
  /// Per-call latency target in ms for single-net route(); 0 disables
  /// (DESIGN.md §16).  "rl-mcts" runs its search anytime against the
  /// deadline (best-so-far tree, deadline_hit in the result); the serving
  /// path stamps it on the request (urgency scheduling + admission
  /// control); every other engine just gets the reply flagged late.
  double deadline_ms = 0.0;
  /// Attach an obs::Snapshot of the global metrics registry to each result.
  bool collect_obs = true;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

struct RouteResult {
  /// The grid the tree is bound to (kept alive by the result).
  std::shared_ptr<const hanan::HananGrid> grid;
  route::OarmstResult result;
  /// Resolved engine name ("rl-ours+sweep" when the sweep is on, ...).
  std::string engine;
  /// True when the serving path answered from the symmetry cache.
  bool cache_hit = false;
  /// Which experience tier answered on the serving path: kMemory (LRU),
  /// kDisk (persistent file — a hit surviving a restart or deploy), or
  /// kMiss (freshly routed; always kMiss on the direct paths).
  /// cache_hit == (hit_tier != kMiss).
  experience::HitTier hit_tier = experience::HitTier::kMiss;
  /// Typed admission outcome of the serving path; always kOk on the
  /// direct paths.  An Overloaded value means result is empty.
  serve::ReplyStatus status = serve::ReplyStatus::kOk;
  /// False when the reply finished after the deadline_ms target (or was
  /// rejected at admission).
  bool deadline_met = true;
  /// True when an anytime "rl-mcts" search was truncated by the deadline
  /// (the tree is the best fully-evaluated combination so far).
  bool deadline_hit = false;
  double total_seconds = 0.0;
  /// Point-in-time metrics (empty when collect_obs is off).
  obs::Snapshot obs;

  double cost() const { return result.cost; }
  bool connected() const { return result.connected; }
};

/// Result of the full-chip entry: the chip::ChipResult plus the facade's
/// usual envelope (resolved engine name, wall time, metrics snapshot).
struct ChipRouteResult {
  chip::ChipResult result;
  std::string engine;
  double total_seconds = 0.0;
  /// Point-in-time metrics (empty when collect_obs is off).
  obs::Snapshot obs;

  bool success() const { return result.success; }
  double wirelength() const { return result.wirelength; }
  std::int64_t overflow() const { return result.overflow; }
};

class MctsRouter;

class Router {
 public:
  /// Validates `options` eagerly; engine construction is deferred to the
  /// first route() call.
  explicit Router(RouterOptions options = {});
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Geometric entry: builds the Hanan grid from `layout`, then adds the
  /// net's pins (vertex indices on that grid; empty = use the layout's own
  /// pins).  Throws std::invalid_argument on an out-of-range pin.
  RouteResult route(const geom::Layout& layout, const Net& net);

  /// Grid entry, pins already on the grid.  The const& overload copies the
  /// grid so the returned tree owns a stable binding.
  RouteResult route(const hanan::HananGrid& grid);
  RouteResult route(std::shared_ptr<const hanan::HananGrid> grid);

  /// Full-chip entry: negotiated rip-up & reroute of `netlist` on `grid`
  /// (chip::ChipRouter with options().chip, single-net searches through
  /// this facade's engine).  The grid must carry no pins of its own; the
  /// netlist must pass chip::Netlist::validate on it.  Always uses the
  /// direct engine path (the serving layer's symmetry cache is per single
  /// net, not per chip).
  ChipRouteResult route(const hanan::HananGrid& grid,
                        const chip::Netlist& netlist);

  const RouterOptions& options() const { return options_; }

  /// The lazily-created underlying service; nullptr until the first
  /// service-path route().  Exposed for metrics scrapes.
  serve::RouterService* service() { return service_.get(); }

  /// The lazily-opened experience store; nullptr until a route() needed it
  /// (and always when options().experience_path is empty).
  const std::shared_ptr<experience::Store>& experience() const {
    return experience_;
  }

 private:
  void ensure_engine();
  void ensure_service();
  std::shared_ptr<rl::SteinerSelector> shared_selector();
  /// Opens options_.experience_path on first use; nullptr when unset.
  std::shared_ptr<experience::Store> shared_experience();
  RouteResult finish(RouteResult out, double seconds);

  RouterOptions options_;
  std::shared_ptr<rl::SteinerSelector> selector_;
  std::shared_ptr<experience::Store> experience_;
  std::unique_ptr<steiner::Router> engine_;
  /// Typed view of engine_ when it is the "rl-mcts" MctsRouter (the only
  /// engine with an anytime deadline overload); nullptr otherwise.
  MctsRouter* mcts_engine_ = nullptr;
  std::unique_ptr<serve::RouterService> service_;
};

/// One-call convenience: route `net` on `layout` with a throwaway facade.
RouteResult route(const geom::Layout& layout, const Net& net,
                  RouterOptions options = {});

}  // namespace oar::core
