#pragma once

// Data augmentation (paper Sec. 3.6): every MCTS-labeled layout is expanded
// 16-fold — 4 rotations in the H-V plane x reflection across the y axis x
// reflection across the z (layer) axis.
//
// Augmentation operates on the *grid* (dims, step costs, blocked vertices,
// pins) and the label arrays together, then the feature encoder runs on the
// transformed grid.  This keeps the direction-dependent cost channels
// (right/left/up/down) automatically consistent — transforming encoded
// feature volumes directly would require error-prone channel permutations.

#include <array>

#include "hanan/hanan_grid.hpp"

namespace oar::rl {

using hanan::HananGrid;
using hanan::Vertex;

struct AugmentSpec {
  std::int32_t rotation = 0;  // quarter turns in the H-V plane (0..3)
  bool reflect_v = false;
  bool reflect_m = false;

  friend auto operator<=>(const AugmentSpec&, const AugmentSpec&) = default;
};

/// All 16 augmentation variants, identity first.
std::array<AugmentSpec, 16> all_augmentations();

/// Transformed copy of the grid.
HananGrid transform_grid(const HananGrid& grid, const AugmentSpec& spec);

/// Maps a vertex of `grid` to the corresponding vertex of
/// transform_grid(grid, spec).
Vertex transform_vertex(const HananGrid& grid, Vertex v, const AugmentSpec& spec);

/// Re-indexes a priority-order label array of `grid` into the transformed
/// grid's priority order.
std::vector<float> transform_label(const HananGrid& grid,
                                   const std::vector<float>& label,
                                   const AugmentSpec& spec);

}  // namespace oar::rl
