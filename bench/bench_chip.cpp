// Full-chip negotiated-routing benchmark (DESIGN.md §14): routes a random
// multi-net layout — the ISSUE acceptance case, a 32x32x8 grid with 28
// nets — through chip::ChipRouter over the lin08 engine and reports the
// negotiation trajectory (overflow per iteration), final wirelength/vias,
// and nets-per-second throughput.
//
// Correctness cross-checks are hard failures: the loop must converge to
// zero overflow within the iteration cap, every committed tree must
// validate over its net's pins and avoid obstacle vertices, and a
// from-scratch usage recount must match the committed trees exactly.
// Results go to stdout and BENCH_chip.json.  `--smoke` runs only the
// acceptance case; the full run adds a net-ordering-heuristic sweep.
// There is deliberately no timing assertion (CI machines are too noisy).

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "chip/chip_router.hpp"
#include "chip/congestion.hpp"
#include "gen/random_layout.hpp"
#include "gen/random_netlist.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "steiner/lin08.hpp"
#include "util/rng.hpp"

namespace {

using namespace oar;

hanan::HananGrid make_grid(std::int32_t dim, std::int32_t m,
                           std::uint64_t seed) {
  util::Rng rng(seed);
  gen::RandomGridSpec spec;
  spec.h = spec.v = dim;
  spec.m = m;
  spec.min_pins = spec.max_pins = 2;  // placeholder pins, cleared below
  spec.min_obstacles = spec.max_obstacles = std::max(1, dim * dim * m / 40);
  hanan::HananGrid grid = gen::random_grid(spec, rng);
  grid.clear_pins();  // the netlist brings the pins
  return grid;
}

/// Routes and cross-checks; any inconsistency is fatal.
chip::ChipResult route_checked(const hanan::HananGrid& grid,
                               const chip::Netlist& netlist,
                               const chip::ChipConfig& config,
                               const char* label) {
  steiner::Lin08Router engine;
  chip::ChipRouter chip_router(grid, config);
  chip::ChipResult result = chip_router.route(netlist, engine);

  if (!result.success) {
    std::fprintf(stderr,
                 "FATAL [%s]: negotiation did not converge (overflow %" PRId64
                 ", %d unrouted, %d iterations)\n",
                 label, result.overflow, result.failed, result.iterations_run);
    std::exit(1);
  }
  chip::CongestionMap recount(*result.grid, config.edge_capacity);
  std::vector<const route::RouteTree*> trees;
  for (std::size_t i = 0; i < result.nets.size(); ++i) {
    const chip::NetRoute& net = result.nets[i];
    if (const std::string problem = net.tree.validate(netlist.nets[i].pins);
        !problem.empty()) {
      std::fprintf(stderr, "FATAL [%s]: net %s tree invalid: %s\n", label,
                   net.name.c_str(), problem.c_str());
      std::exit(1);
    }
    for (const hanan::Vertex v : net.tree.vertices()) {
      if (result.grid->is_blocked(v)) {
        std::fprintf(stderr, "FATAL [%s]: net %s crosses obstacle vertex %d\n",
                     label, net.name.c_str(), v);
        std::exit(1);
      }
    }
    recount.commit(net.tree);
    trees.push_back(&net.tree);
  }
  if (recount.overflow() != 0 || !recount.matches(trees)) {
    std::fprintf(stderr,
                 "FATAL [%s]: usage recount disagrees with committed trees\n",
                 label);
    std::exit(1);
  }
  return result;
}

double nets_per_sec(const chip::ChipResult& result) {
  std::int64_t engine_calls = 0;
  for (const chip::NetRoute& net : result.nets) engine_calls += net.reroutes;
  return result.total_seconds > 0.0
             ? double(engine_calls) / result.total_seconds
             : 0.0;
}

const char* order_name(chip::NetOrder order) {
  switch (order) {
    case chip::NetOrder::kAsGiven: return "as-given";
    case chip::NetOrder::kHpwl: return "hpwl";
    case chip::NetOrder::kPinCount: return "pin-count";
    case chip::NetOrder::kBboxArea: return "bbox-area";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  // The acceptance case: 32x32x8, ~dim*dim*m/40 obstacles, 28 nets.
  const std::int32_t dim = 32, layers = 8, n_nets = 28;
  const hanan::HananGrid grid = make_grid(dim, layers, /*seed=*/17);

  util::Rng rng(43);
  gen::RandomNetlistSpec netlist_spec;
  netlist_spec.min_pins = 2;
  netlist_spec.max_pins = 5;
  const chip::Netlist netlist =
      gen::random_netlist(grid, n_nets, rng, netlist_spec);

  std::printf("bench_chip: %dx%dx%d grid, %d nets, %" PRId64 " pins%s\n", dim,
              dim, layers, n_nets, netlist.total_pins(),
              smoke ? " (smoke)" : "");

  chip::ChipConfig config;
  const chip::ChipResult result =
      route_checked(grid, netlist, config, "hpwl");

  std::printf("  converged      : %d iterations (cap %d)\n",
              result.iterations_run, config.max_iterations);
  std::printf("  wirelength     : %10.1f   vias %" PRId64 "\n",
              result.wirelength, result.via_count);
  std::printf("  nets/sec       : %10.1f   (%.3fs total)\n",
              nets_per_sec(result), result.total_seconds);
  std::printf("  overflow series:");
  for (const chip::IterationStats& it : result.iterations) {
    std::printf(" %" PRId64, it.overflow);
  }
  std::printf("\n");

  if (obs::kMetricsCompiled) {
    const std::string scrape = obs::scrape_prometheus();
    for (const char* family : {"oar_chip_runs_total", "oar_chip_last_overflow",
                               "oar_chip_nets_per_sec"}) {
      if (scrape.find(family) == std::string::npos) {
        std::fprintf(stderr, "FATAL: metrics scrape is missing %s\n", family);
        return 1;
      }
    }
  }

  // Full mode: how much the net ordering matters on the same problem.
  struct SweepRow {
    chip::NetOrder order;
    double wirelength;
    std::int32_t iterations;
  };
  std::vector<SweepRow> sweep;
  if (!smoke) {
    for (const chip::NetOrder order :
         {chip::NetOrder::kAsGiven, chip::NetOrder::kHpwl,
          chip::NetOrder::kPinCount, chip::NetOrder::kBboxArea}) {
      chip::ChipConfig cfg;
      cfg.order = order;
      const chip::ChipResult r =
          route_checked(grid, netlist, cfg, order_name(order));
      sweep.push_back({order, r.wirelength, r.iterations_run});
      std::printf("  order %-9s : wirelength %10.1f  iterations %d\n",
                  order_name(order), r.wirelength, r.iterations_run);
    }
  }

  if (std::FILE* f = std::fopen("BENCH_chip.json", "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"grid\": {\"h\": %d, \"v\": %d, \"m\": %d},\n"
                 "  \"nets\": %d,\n"
                 "  \"total_pins\": %" PRId64 ",\n"
                 "  \"smoke\": %s,\n"
                 "  \"iterations\": %d,\n"
                 "  \"iteration_cap\": %d,\n"
                 "  \"overflow_per_iteration\": [",
                 dim, dim, layers, n_nets, netlist.total_pins(),
                 smoke ? "true" : "false", result.iterations_run,
                 config.max_iterations);
    for (std::size_t i = 0; i < result.iterations.size(); ++i) {
      std::fprintf(f, "%s%" PRId64, i ? ", " : "",
                   result.iterations[i].overflow);
    }
    std::fprintf(f,
                 "],\n"
                 "  \"final_overflow\": %" PRId64 ",\n"
                 "  \"wirelength\": %.3f,\n"
                 "  \"via_count\": %" PRId64 ",\n"
                 "  \"nets_per_sec\": %.3f,\n"
                 "  \"total_seconds\": %.6f",
                 result.overflow, result.wirelength, result.via_count,
                 nets_per_sec(result), result.total_seconds);
    if (!sweep.empty()) {
      std::fprintf(f, ",\n  \"ordering_sweep\": {");
      for (std::size_t i = 0; i < sweep.size(); ++i) {
        std::fprintf(f, "%s\"%s\": {\"wirelength\": %.3f, \"iterations\": %d}",
                     i ? ", " : "", order_name(sweep[i].order),
                     sweep[i].wirelength, sweep[i].iterations);
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, ",\n  %s\n}\n", bench::machine_json().c_str());
    std::fclose(f);
    std::printf("  wrote BENCH_chip.json\n");
  } else {
    std::fprintf(stderr, "WARNING: could not write BENCH_chip.json\n");
  }
  return 0;
}
