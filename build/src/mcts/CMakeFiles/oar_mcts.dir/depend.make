# Empty dependencies file for oar_mcts.
# This may be replaced when dependencies are built.
