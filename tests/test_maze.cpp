#include "route/maze.hpp"

#include <gtest/gtest.h>

#include "gen/random_layout.hpp"
#include "util/rng.hpp"

namespace oar::route {
namespace {

using hanan::HananGrid;

HananGrid unit_grid(std::int32_t h, std::int32_t v, std::int32_t m, double via = 1.0) {
  return HananGrid(h, v, m, std::vector<double>(std::size_t(h - 1), 1.0),
                   std::vector<double>(std::size_t(v - 1), 1.0), via);
}

/// Brute-force Bellman-Ford style relaxation for reference distances.
std::vector<double> reference_distances(const HananGrid& grid, Vertex source) {
  const auto n = std::size_t(grid.num_vertices());
  std::vector<double> dist(n, MazeRouter::kInf);
  if (!grid.is_blocked(source)) dist[std::size_t(source)] = 0.0;
  for (std::size_t pass = 0; pass < n; ++pass) {
    bool changed = false;
    for (Vertex u = 0; u < grid.num_vertices(); ++u) {
      if (dist[std::size_t(u)] == MazeRouter::kInf) continue;
      grid.for_each_neighbor(u, [&](Vertex nb, double w) {
        if (dist[std::size_t(u)] + w < dist[std::size_t(nb)] - 1e-12) {
          dist[std::size_t(nb)] = dist[std::size_t(u)] + w;
          changed = true;
        }
      });
    }
    if (!changed) break;
  }
  return dist;
}

TEST(Maze, StraightLineDistance) {
  const HananGrid grid = unit_grid(5, 1, 1);
  MazeRouter maze(grid);
  maze.run({grid.index(0, 0, 0)});
  EXPECT_DOUBLE_EQ(maze.dist(grid.index(4, 0, 0)), 4.0);
}

TEST(Maze, ManhattanOnOpenGrid) {
  const HananGrid grid = unit_grid(6, 6, 1);
  MazeRouter maze(grid);
  maze.run({grid.index(0, 0, 0)});
  EXPECT_DOUBLE_EQ(maze.dist(grid.index(5, 3, 0)), 8.0);
}

TEST(Maze, ViaCostCounts) {
  const HananGrid grid = unit_grid(2, 2, 3, 10.0);
  MazeRouter maze(grid);
  maze.run({grid.index(0, 0, 0)});
  EXPECT_DOUBLE_EQ(maze.dist(grid.index(0, 0, 2)), 20.0);
}

TEST(Maze, RoutesAroundBlockage) {
  HananGrid grid = unit_grid(3, 3, 1);
  grid.block_vertex(grid.index(1, 1, 0));
  MazeRouter maze(grid);
  maze.run({grid.index(0, 1, 0)});
  // Straight through the middle would be 2; the detour costs 4.
  EXPECT_DOUBLE_EQ(maze.dist(grid.index(2, 1, 0)), 4.0);
}

TEST(Maze, UnreachableTargetReportsInfinity) {
  HananGrid grid = unit_grid(3, 1, 1);
  grid.block_vertex(grid.index(1, 0, 0));
  MazeRouter maze(grid);
  maze.run({grid.index(0, 0, 0)});
  EXPECT_EQ(maze.dist(grid.index(2, 0, 0)), MazeRouter::kInf);
}

TEST(Maze, MultiSourceTakesNearest) {
  const HananGrid grid = unit_grid(9, 1, 1);
  MazeRouter maze(grid);
  maze.run({grid.index(0, 0, 0), grid.index(8, 0, 0)});
  EXPECT_DOUBLE_EQ(maze.dist(grid.index(6, 0, 0)), 2.0);
  EXPECT_DOUBLE_EQ(maze.dist(grid.index(2, 0, 0)), 2.0);
}

TEST(Maze, EarlyExitReturnsCheapestTarget) {
  const HananGrid grid = unit_grid(9, 1, 1);
  MazeRouter maze(grid);
  const Vertex t1 = grid.index(3, 0, 0), t2 = grid.index(7, 0, 0);
  const Vertex reached = maze.run({grid.index(0, 0, 0)}, {t1, t2});
  EXPECT_EQ(reached, t1);
}

TEST(Maze, PathEndpointsAndContinuity) {
  HananGrid grid = unit_grid(4, 4, 2, 2.0);
  grid.block_vertex(grid.index(1, 1, 0));
  MazeRouter maze(grid);
  const Vertex src = grid.index(0, 0, 0), dst = grid.index(3, 3, 1);
  maze.run({src}, {dst});
  const auto path = maze.path_to(dst);
  ASSERT_GE(path.size(), 2u);
  EXPECT_EQ(path.front(), src);
  EXPECT_EQ(path.back(), dst);
  double cost = 0.0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    cost += grid.cost_between(path[i], path[i + 1]);
  }
  EXPECT_DOUBLE_EQ(cost, maze.dist(dst));
}

TEST(Maze, ReusableAcrossRunsWithEpochReset) {
  const HananGrid grid = unit_grid(5, 5, 1);
  MazeRouter maze(grid);
  maze.run({grid.index(0, 0, 0)});
  EXPECT_DOUBLE_EQ(maze.dist(grid.index(4, 4, 0)), 8.0);
  maze.run({grid.index(4, 4, 0)});
  EXPECT_DOUBLE_EQ(maze.dist(grid.index(0, 0, 0)), 8.0);
  EXPECT_DOUBLE_EQ(maze.dist(grid.index(4, 4, 0)), 0.0);
}

TEST(Maze, BlockedSourceIsIgnored) {
  HananGrid grid = unit_grid(3, 1, 1);
  grid.block_vertex(grid.index(0, 0, 0));
  MazeRouter maze(grid);
  const Vertex reached = maze.run({grid.index(0, 0, 0)}, {grid.index(2, 0, 0)});
  EXPECT_EQ(reached, hanan::kInvalidVertex);
}

class MazeRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MazeRandomTest, MatchesBruteForceOnRandomGrids) {
  util::Rng rng(GetParam());
  gen::RandomGridSpec spec;
  spec.h = 5;
  spec.v = 4;
  spec.m = 2;
  spec.min_pins = 2;
  spec.max_pins = 4;
  spec.min_obstacles = 2;
  spec.max_obstacles = 5;
  spec.min_edge_cost = 1;
  spec.max_edge_cost = 9;
  spec.ensure_routable = false;
  const HananGrid grid = gen::random_grid(spec, rng);

  const Vertex source = grid.pins().empty() ? 0 : grid.pins().front();
  if (grid.is_blocked(source)) return;
  MazeRouter maze(grid);
  maze.run({source});
  const auto reference = reference_distances(grid, source);
  for (Vertex v = 0; v < grid.num_vertices(); ++v) {
    if (reference[std::size_t(v)] == MazeRouter::kInf) {
      EXPECT_EQ(maze.dist(v), MazeRouter::kInf) << "vertex " << v;
    } else {
      EXPECT_NEAR(maze.dist(v), reference[std::size_t(v)], 1e-9) << "vertex " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MazeRandomTest,
                         ::testing::Range(std::uint64_t(0), std::uint64_t(12)));

}  // namespace
}  // namespace oar::route
