#pragma once

// Compatibility aliases: canonical layout hashing moved to
// experience/canonical.hpp when the experience store took ownership of the
// symmetry key (DESIGN.md §18).  Serving code keeps its historical
// serve:: spellings; new code should include the experience header.

#include "experience/canonical.hpp"

namespace oar::serve {

using hanan::HananGrid;
using hanan::Vertex;

using experience::CanonicalForm;
using experience::canonicalize;
using experience::has_edge_blocks;
using experience::inverse_vertex_map;
using experience::serialize_grid;

}  // namespace oar::serve
