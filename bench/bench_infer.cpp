// Single-sample inference throughput benchmark (DESIGN.md §11).  Replays
// the MCTS hot loop — one fsp query per tree expansion, same grid, varying
// Steiner selections — and compares:
//
//   reference: the selector in training mode (the seed's scalar forward
//              with full per-state feature re-encode and cache retention),
//   engine:    the selector in inference mode (tiled kernels, arena
//              temporaries, incremental FeatureCache patching).
//
// Every state's fsp is cross-checked between the two modes to a 1e-4
// relative tolerance; a mismatch is a hard failure.  A second section runs
// whole CombMcts episodes in both modes to show the end-to-end win.
// Results go to stdout and BENCH_infer.json.  `--smoke` shrinks the work
// for CI; like bench_route there is deliberately no timing assertion on
// the speedups.  A final section measures the observability tax (metrics
// kill-switch on vs off, min-of-N alternating rounds); in --smoke mode an
// overhead above 2% is a hard failure (the obs subsystem's acceptance
// bound).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "gen/random_layout.hpp"
#include "mcts/comb_mcts.hpp"
#include "nn/quant/simd.hpp"
#include "obs/metrics.hpp"
#include "rl/evaluate.hpp"
#include "rl/selector.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace oar;
using hanan::HananGrid;
using hanan::Vertex;

HananGrid make_grid(std::int32_t dim, std::int32_t m, std::int32_t pins,
                    std::uint64_t seed) {
  util::Rng rng(seed);
  gen::RandomGridSpec spec;
  spec.h = spec.v = dim;
  spec.m = m;
  spec.min_pins = spec.max_pins = pins;
  spec.min_obstacles = spec.max_obstacles = std::max(1, dim * dim * m / 40);
  return gen::random_grid(spec, rng);
}

/// MCTS-like states: 0..budget already-selected Steiner points per state.
std::vector<std::vector<Vertex>> make_states(const HananGrid& grid, int count,
                                             util::Rng& rng) {
  const int budget = std::max(1, int(grid.pins().size()) - 2);
  std::vector<std::vector<Vertex>> out;
  out.reserve(std::size_t(count));
  for (int i = 0; i < count; ++i) {
    std::vector<Vertex> sel;
    const int want = i % (budget + 1);
    while (std::ssize(sel) < want) {
      const auto v = Vertex(rng.uniform_int(0, grid.num_vertices() - 1));
      if (!grid.is_blocked(v) && !grid.is_pin(v) &&
          std::find(sel.begin(), sel.end(), v) == sel.end()) {
        sel.push_back(v);
      }
    }
    out.push_back(std::move(sel));
  }
  return out;
}

struct FspRun {
  double seconds = 0.0;
  std::vector<std::vector<double>> fsp;  // one per state (first rep)
};

FspRun run_fsp(rl::SteinerSelector& selector, const HananGrid& grid,
               const std::vector<std::vector<Vertex>>& states, int reps) {
  FspRun run;
  run.fsp.resize(states.size());
  std::vector<double> fsp;
  util::Timer timer;
  for (int rep = 0; rep < reps; ++rep) {
    for (std::size_t i = 0; i < states.size(); ++i) {
      selector.infer_fsp_into(grid, states[i], fsp);
      if (rep == 0) run.fsp[i] = fsp;
    }
  }
  run.seconds = timer.seconds();
  return run;
}

struct SizeReport {
  std::int32_t dim = 0, layers = 0;
  double ref_ips = 0.0;     // reference inferences/sec
  double engine_ips = 0.0;  // inference-engine inferences/sec
  double speedup = 0.0;
  double max_rel = 0.0;  // worst fsp disagreement
};

SizeReport bench_size(std::int32_t dim, std::int32_t layers, int state_count,
                      int reps_engine, int reps_ref) {
  SizeReport rep;
  rep.dim = dim;
  rep.layers = layers;

  const HananGrid grid = make_grid(dim, layers, /*pins=*/6, /*seed=*/17);
  util::Rng rng(41);
  const auto states = make_states(grid, state_count, rng);
  rl::SteinerSelector selector;  // default UNet: base 8, depth 2

  // Warm both paths (first-touch allocations, feature-cache base build).
  selector.net().set_training(true);
  (void)run_fsp(selector, grid, {states.front()}, 1);
  selector.net().set_training(false);
  (void)run_fsp(selector, grid, {states.front()}, 1);

  selector.net().set_training(true);
  const FspRun ref = run_fsp(selector, grid, states, reps_ref);
  selector.net().set_training(false);
  const FspRun engine = run_fsp(selector, grid, states, reps_engine);

  for (std::size_t i = 0; i < states.size(); ++i) {
    if (ref.fsp[i].size() != engine.fsp[i].size()) {
      std::fprintf(stderr, "FATAL: fsp size mismatch (state %zu)\n", i);
      std::exit(1);
    }
    for (std::size_t j = 0; j < ref.fsp[i].size(); ++j) {
      const double rel = std::abs(engine.fsp[i][j] - ref.fsp[i][j]) /
                         std::max(1.0, std::abs(ref.fsp[i][j]));
      rep.max_rel = std::max(rep.max_rel, rel);
      if (rel > 1e-4) {
        std::fprintf(stderr,
                     "FATAL: fsp disagreement (state %zu vertex %zu: %g vs %g)\n",
                     i, j, engine.fsp[i][j], ref.fsp[i][j]);
        std::exit(1);
      }
    }
  }

  rep.ref_ips =
      double(states.size()) * reps_ref / std::max(ref.seconds, 1e-12);
  rep.engine_ips =
      double(states.size()) * reps_engine / std::max(engine.seconds, 1e-12);
  rep.speedup = rep.engine_ips / std::max(rep.ref_ips, 1e-12);
  return rep;
}

struct MctsReport {
  double ref_eps = 0.0;     // episodes/sec, training-mode selector
  double engine_eps = 0.0;  // episodes/sec, inference-mode selector
  double speedup = 0.0;
};

MctsReport bench_mcts(int episodes) {
  MctsReport rep;
  mcts::CombMctsConfig cfg;
  cfg.iterations_per_move = 32;
  cfg.max_children = 8;

  // Two passes over the same layouts.  initial_cost comes from the exact
  // router (selector-independent), so it must match across modes exactly.
  std::vector<double> initial_costs;
  for (const bool training : {true, false}) {
    rl::SteinerSelector selector;
    selector.net().set_training(training);
    mcts::CombMcts search(selector, cfg);
    util::Timer timer;
    for (int e = 0; e < episodes; ++e) {
      const HananGrid grid = make_grid(16, 4, 5, 0x100 + std::uint64_t(e));
      const mcts::CombMctsResult result = search.run(grid);
      if (training) {
        initial_costs.push_back(result.initial_cost);
      } else if (result.initial_cost != initial_costs[std::size_t(e)]) {
        std::fprintf(stderr, "FATAL: episode %d initial cost drift\n", e);
        std::exit(1);
      }
    }
    const double eps = double(episodes) / std::max(timer.seconds(), 1e-12);
    (training ? rep.ref_eps : rep.engine_eps) = eps;
  }
  rep.speedup = rep.engine_eps / std::max(rep.ref_eps, 1e-12);
  return rep;
}

struct ObsOverhead {
  double off_ips = 0.0;
  double on_ips = 0.0;
  double overhead = 0.0;  // fractional slowdown with metrics recording
};

/// Inference-engine fsp loop with the metrics kill-switch off vs on,
/// min-of-N alternating rounds (the min filters scheduler noise).
ObsOverhead measure_obs_overhead(int state_count, int reps, int rounds) {
  const HananGrid grid = make_grid(16, 4, /*pins=*/6, /*seed=*/17);
  util::Rng rng(41);
  const auto states = make_states(grid, state_count, rng);
  rl::SteinerSelector selector;
  selector.net().set_training(false);
  (void)run_fsp(selector, grid, states, 1);  // warm arena + feature cache

  double best_off = 1e300, best_on = 1e300;
  for (int round = 0; round < rounds; ++round) {
    obs::set_enabled(false);
    best_off = std::min(best_off, run_fsp(selector, grid, states, reps).seconds);
    obs::set_enabled(true);
    best_on = std::min(best_on, run_fsp(selector, grid, states, reps).seconds);
  }
  obs::set_enabled(true);
  const double inferences = double(states.size()) * reps;
  ObsOverhead o;
  o.off_ips = inferences / std::max(best_off, 1e-12);
  o.on_ips = inferences / std::max(best_on, 1e-12);
  o.overhead = best_on / std::max(best_off, 1e-12) - 1.0;
  return o;
}

struct Int8Report {
  double fp32_ips = 0.0;    // inference-engine fp32 path
  double int8_ips = 0.0;    // quantized engine, incremental accumulator
  double speedup = 0.0;
  double agreement = 0.0;   // accuracy-gate top-k agreement
  double cost_ratio = 0.0;  // accuracy-gate routed-cost ratio
  bool gate_passed = false;
};

/// int8 engine vs the fp32 inference engine on the paper's largest size
/// (32x32x8), same MCTS-hot-loop replay as bench_size.  The accuracy gate
/// runs first on small layouts (routing 32x32x8 both ways would dominate
/// the budget) and a failure is FATAL: a quantized path that changes
/// selections is a broken artifact, not a slow one.
Int8Report bench_int8(int state_count, int reps, bool smoke) {
  Int8Report rep;

  rl::SteinerSelector selector;  // default UNet: base 8, depth 2
  selector.net().set_training(false);

  std::vector<hanan::HananGrid> gate_grids;
  for (std::uint64_t s = 0; s < 4; ++s) {
    gate_grids.push_back(make_grid(10, 2, 5, 0x900 + s));
  }
  const HananGrid big = make_grid(32, 8, /*pins=*/6, /*seed=*/17);
  {
    std::vector<const HananGrid*> cal;
    for (const auto& g : gate_grids) cal.push_back(&g);
    cal.push_back(&big);
    selector.calibrate_int8(cal);
  }
  const rl::Int8GateReport gate = rl::evaluate_int8_gate(selector, gate_grids);
  rep.agreement = gate.mean_agreement;
  rep.cost_ratio = gate.mean_cost_ratio;
  rep.gate_passed = gate.passed;
  if (!gate.passed) {
    std::fprintf(stderr,
                 "FATAL: int8 accuracy gate failed (agreement %.3f, cost "
                 "ratio %.4f over %d layouts)\n",
                 gate.mean_agreement, gate.mean_cost_ratio, gate.count);
    std::exit(1);
  }

  util::Rng rng(41);
  const auto states = make_states(big, state_count, rng);

  selector.set_precision(nn::InferConfig::Precision::kFp32);
  (void)run_fsp(selector, big, {states.front()}, 1);  // warm fp32 path
  const FspRun fp32 = run_fsp(selector, big, states, reps);

  selector.set_precision(nn::InferConfig::Precision::kInt8);
  (void)run_fsp(selector, big, {states.front()}, 1);  // warm accumulator
  const FspRun int8 = run_fsp(selector, big, states, reps);

  rep.fp32_ips = double(states.size()) * reps / std::max(fp32.seconds, 1e-12);
  rep.int8_ips = double(states.size()) * reps / std::max(int8.seconds, 1e-12);
  rep.speedup = rep.int8_ips / std::max(rep.fp32_ips, 1e-12);

  // The ISSUE's >= 3x acceptance bound is armed in full mode only (smoke
  // runs too few reps for a stable ratio) and only when a vector level is
  // live — the scalar lane checks correctness, not throughput.
  if (!smoke && nn::simd::dispatch_level() != nn::simd::Level::kScalar &&
      rep.speedup < 3.0) {
    std::fprintf(stderr, "FATAL: int8 speedup %.2fx below the 3x bound\n",
                 rep.speedup);
    std::exit(1);
  }
  return rep;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  std::printf("bench_infer: single-sample fsp inference, reference (training-"
              "mode scalar path) vs inference engine%s\n",
              smoke ? " (smoke)" : "");

  // The reference path is much slower, so it gets fewer reps; throughput is
  // normalized per inference either way.
  const int states = smoke ? 6 : 16;
  const int reps_engine = smoke ? 4 : 24;
  const int reps_ref = smoke ? 1 : 3;

  const SizeReport small = bench_size(16, 4, states, reps_engine, reps_ref);
  std::printf("  16x16x4 : reference %8.1f inf/s | engine %9.1f inf/s | "
              "%5.2fx | max rel %.2e\n",
              small.ref_ips, small.engine_ips, small.speedup, small.max_rel);

  const SizeReport large = bench_size(32, 8, states, reps_engine, reps_ref);
  std::printf("  32x32x8 : reference %8.1f inf/s | engine %9.1f inf/s | "
              "%5.2fx | max rel %.2e\n",
              large.ref_ips, large.engine_ips, large.speedup, large.max_rel);

  const MctsReport mcts_rep = bench_mcts(smoke ? 2 : 6);
  std::printf("  CombMcts 16x16x4: reference %6.2f episodes/s | engine "
              "%6.2f episodes/s | %5.2fx\n",
              mcts_rep.ref_eps, mcts_rep.engine_eps, mcts_rep.speedup);

  const Int8Report int8 = bench_int8(states, reps_engine, smoke);
  std::printf("  int8 32x32x8    : fp32 %9.1f inf/s | int8 %9.1f inf/s | "
              "%5.2fx (%s) | gate: agreement %.3f, cost ratio %.4f\n",
              int8.fp32_ips, int8.int8_ips, int8.speedup,
              nn::simd::level_name(nn::simd::dispatch_level()),
              int8.agreement, int8.cost_ratio);

  const ObsOverhead obs_tax =
      measure_obs_overhead(states, reps_engine, /*rounds=*/5);
  std::printf("  obs overhead    : %6.2f%% (metrics on %.1f vs off %.1f "
              "inf/s, min of 5)%s\n",
              100.0 * obs_tax.overhead, obs_tax.on_ips, obs_tax.off_ips,
              obs::kMetricsCompiled ? "" : " [compiled out]");
  if (smoke && obs::kMetricsCompiled && obs_tax.overhead > 0.02) {
    std::fprintf(stderr,
                 "FATAL: metrics overhead %.2f%% exceeds the 2%% budget\n",
                 100.0 * obs_tax.overhead);
    return 1;
  }

  if (std::FILE* f = std::fopen("BENCH_infer.json", "w")) {
    std::fprintf(
        f,
        "{\n"
        "  \"sizes\": [\n"
        "    {\"h\": 16, \"v\": 16, \"m\": 4, \"reference_ips\": %.1f,\n"
        "     \"engine_ips\": %.1f, \"speedup\": %.3f, \"max_rel\": %.3e},\n"
        "    {\"h\": 32, \"v\": 32, \"m\": 8, \"reference_ips\": %.1f,\n"
        "     \"engine_ips\": %.1f, \"speedup\": %.3f, \"max_rel\": %.3e}\n"
        "  ],\n"
        "  \"comb_mcts\": {\"h\": 16, \"v\": 16, \"m\": 4,\n"
        "    \"reference_eps\": %.3f, \"engine_eps\": %.3f, \"speedup\": %.3f},\n"
        "  \"obs_overhead_fraction\": %.6f,\n"
        "  %s,\n"
        "  \"smoke\": %s\n"
        "}\n",
        small.ref_ips, small.engine_ips, small.speedup, small.max_rel,
        large.ref_ips, large.engine_ips, large.speedup, large.max_rel,
        mcts_rep.ref_eps, mcts_rep.engine_eps, mcts_rep.speedup,
        obs_tax.overhead, bench::machine_json().c_str(),
        smoke ? "true" : "false");
    std::fclose(f);
    std::printf("  wrote BENCH_infer.json\n");
  }
  if (std::FILE* f = std::fopen("BENCH_infer_int8.json", "w")) {
    std::fprintf(
        f,
        "{\n"
        "  \"size\": {\"h\": 32, \"v\": 32, \"m\": 8},\n"
        "  \"fp32_ips\": %.1f,\n"
        "  \"int8_ips\": %.1f,\n"
        "  \"speedup\": %.3f,\n"
        "  \"gate\": {\"agreement\": %.4f, \"cost_ratio\": %.5f, "
        "\"passed\": %s},\n"
        "  %s,\n"
        "  \"smoke\": %s\n"
        "}\n",
        int8.fp32_ips, int8.int8_ips, int8.speedup, int8.agreement,
        int8.cost_ratio, int8.gate_passed ? "true" : "false",
        bench::machine_json().c_str(), smoke ? "true" : "false");
    std::fclose(f);
    std::printf("  wrote BENCH_infer_int8.json\n");
  }
  return 0;
}
