#pragma once

// PPO baseline (paper Sec. 4.2): a sequential Steiner-point selector
// trained with the clipped-surrogate proximal policy optimization of
// Schulman et al. [21].
//
// The policy reuses the same U-Net backbone: its per-vertex logits, masked
// to valid vertices and soft-maxed, form the step policy.  A separate
// size-agnostic ValueNet (residual trunk + global pooling) is the critic.
// Episodes follow the same environment as the MCTS trainers: place one
// Steiner point per step, stop on the terminal rules, reward is the
// normalized routing-cost reduction.

#include "gen/random_layout.hpp"
#include "nn/optim.hpp"
#include "nn/value_net.hpp"
#include "rl/selector.hpp"
#include "rl/trainer.hpp"

namespace oar::rl {

struct PpoConfig {
  std::int32_t episodes_per_iteration = 16;
  std::int32_t update_epochs = 4;
  double clip_epsilon = 0.2;
  double lr_policy = 1e-3;
  double lr_value = 1e-3;
  double gamma = 1.0;
  double gae_lambda = 0.95;
  double entropy_coef = 0.01;
  double grad_clip = 5.0;
  std::int32_t min_pins = 3;
  std::int32_t max_pins = 6;
  double obstacle_density = 0.10;
  std::uint64_t seed = 7;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

struct PpoIterationReport {
  std::int32_t iteration = 0;
  double mean_return = 0.0;      // mean episodic normalized cost reduction
  double mean_policy_loss = 0.0;
  double mean_value_loss = 0.0;
  std::int32_t steps = 0;
  double seconds = 0.0;
};

class PpoTrainer {
 public:
  PpoTrainer(SteinerSelector& selector, std::vector<LayoutSizeSpec> sizes,
             PpoConfig config = {});

  PpoIterationReport run_iteration();

  nn::ValueNet& value_net() { return value_net_; }

 private:
  SteinerSelector& selector_;
  std::vector<LayoutSizeSpec> sizes_;
  PpoConfig config_;
  nn::ValueNet value_net_;
  nn::Adam policy_opt_;
  nn::Adam value_opt_;
  util::Rng rng_;
  std::int32_t iteration_ = 0;
};

}  // namespace oar::rl
