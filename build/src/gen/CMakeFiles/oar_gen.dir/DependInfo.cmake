
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/grid_io.cpp" "src/gen/CMakeFiles/oar_gen.dir/grid_io.cpp.o" "gcc" "src/gen/CMakeFiles/oar_gen.dir/grid_io.cpp.o.d"
  "/root/repo/src/gen/public_benchmarks.cpp" "src/gen/CMakeFiles/oar_gen.dir/public_benchmarks.cpp.o" "gcc" "src/gen/CMakeFiles/oar_gen.dir/public_benchmarks.cpp.o.d"
  "/root/repo/src/gen/random_layout.cpp" "src/gen/CMakeFiles/oar_gen.dir/random_layout.cpp.o" "gcc" "src/gen/CMakeFiles/oar_gen.dir/random_layout.cpp.o.d"
  "/root/repo/src/gen/svg.cpp" "src/gen/CMakeFiles/oar_gen.dir/svg.cpp.o" "gcc" "src/gen/CMakeFiles/oar_gen.dir/svg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/route/CMakeFiles/oar_route.dir/DependInfo.cmake"
  "/root/repo/build/src/hanan/CMakeFiles/oar_hanan.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/oar_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/oar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
