#pragma once

// Stage-based training of the Steiner-point selector with combinatorial
// MCTS (paper Sec. 3.5-3.6, Figs. 8-9).
//
// One stage: generate labeled samples by running combinatorial MCTS on
// fresh random layouts of every configured size, augment 16-fold, then fit
// the selector with BCE for a few epochs of same-size batches.  The first
// `curriculum_stages` stages use curriculum learning — pin counts grow from
// 3 upward and the leaf value function uses the exact routing cost instead
// of the critic (whose predictions are still rough early on).
//
// The fit phase is data parallel: each mini-batch is sharded across
// per-worker SteinerSelector replicas, every worker accumulates gradients
// locally, and the partial gradients are tree-reduced into the master
// optimizer before clip/step.  The reduction tree is keyed by batch
// position (not worker id), so the serial and parallel paths apply
// bitwise-identical updates.  Training is fully deterministic for a fixed
// seed regardless of the worker count, and CombTrainer
// can checkpoint its complete state (weights, Adam moments, RNG stream,
// stage index) atomically after every stage and resume mid-schedule.

#include <functional>
#include <memory>
#include <vector>

#include "experience/store.hpp"
#include "gen/random_layout.hpp"
#include "mcts/comb_mcts.hpp"
#include "nn/optim.hpp"
#include "rl/dataset.hpp"
#include "rl/selector.hpp"
#include "util/thread_pool.hpp"

namespace oar::rl {

struct LayoutSizeSpec {
  std::int32_t h = 16, v = 16, m = 4;
};

struct TrainConfig {
  /// Mixed-size schedule (paper: {16,24,32}^2 x {4,6,8,10}; scale down for
  /// CPU budgets).
  std::vector<LayoutSizeSpec> sizes = {{10, 10, 2}, {12, 12, 3}};
  std::int32_t layouts_per_size = 8;  // per stage (paper: 1000)
  std::int32_t stages = 4;            // paper: 32
  std::int32_t epochs_per_stage = 4;  // paper: 4
  std::int32_t batch_size = 16;       // paper: 256
  double lr = 1e-3;
  double grad_clip = 5.0;
  bool augment = true;
  std::int32_t augment_count = 16;  // how many of the 16 variants to keep
  mcts::CombMctsConfig mcts;
  std::int32_t curriculum_stages = 2;  // paper: 4
  std::int32_t min_pins = 3;
  std::int32_t max_pins = 6;
  /// Expected fraction of blocked vertices (converted to 1x3/1x4 runs).
  double obstacle_density = 0.10;
  std::uint64_t seed = 42;
  std::int32_t threads = 0;  // sample-generation workers; 0 = hardware
  /// Data-parallel fit replicas; 0 inherits the `threads` policy.  The
  /// resulting weights are bitwise independent of the worker count (see
  /// ParallelFitter), so this is purely a throughput knob.
  std::int32_t fit_workers = 0;
  /// Non-empty: train() writes an atomic checkpoint here after every stage
  /// (see nn/serialize), and load_checkpoint()/try_resume() continue a
  /// killed run mid-schedule.
  std::string checkpoint_path;
  /// Non-empty: every MCTS-labelled episode is appended to this persistent
  /// experience file (experience::Store, DESIGN.md §18) — routed tree, fsp
  /// labels, best combination — so later searches and the serving layer
  /// can warm-start from the training run's accumulated experience.
  std::string experience_path;
  /// After the last stage, calibrate the int8 engine on freshly generated
  /// layouts and run the accuracy gate (the selector falls back to fp32 if
  /// it fails) — the trained artifact then serves quantized by default.
  bool calibrate_int8 = false;
  /// Calibration layouts generated per configured size.
  std::int32_t int8_calibration_layouts = 4;

  /// Throws std::invalid_argument naming the offending field (also
  /// validates the nested `mcts` config).
  void validate() const;
};

struct StageReport {
  std::int32_t stage = 0;
  std::int32_t raw_samples = 0;      // MCTS-labeled layouts
  std::int32_t train_samples = 0;    // after augmentation
  std::int32_t experience_appends = 0;  // episodes persisted to the store
  double mean_loss = 0.0;            // BCE over the stage's last epoch
  double mean_mcts_st_mst = 0.0;     // search-tree quality during generation
  double sample_gen_seconds = 0.0;
  double train_seconds = 0.0;
  double seconds_per_sample = 0.0;   // MCTS sample-generation time
};

/// Derives the paper-style random-layout spec for one training size.
gen::RandomGridSpec training_spec(const LayoutSizeSpec& size, double obstacle_density,
                                  std::int32_t min_pins, std::int32_t max_pins);

/// Knobs of one fit_dataset call (shared by the combinatorial and
/// sequential trainers and the benches).
struct FitOptions {
  std::int32_t epochs = 1;
  std::size_t batch_size = 16;
  double grad_clip = 5.0;
  /// Data-parallel worker replicas; <= 1 runs the serial path.
  std::int32_t workers = 1;
  /// Optional shared pool; when null and workers > 1 a temporary pool is
  /// created for the duration of the call.
  util::ThreadPool* pool = nullptr;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

/// Shards mini-batches across per-worker selector replicas.  Worker w
/// forward/backwards its contiguous shard on its own replica (the network
/// caches are not thread safe, so the gradient path stays per-sample;
/// Module::forward_batch is inference-only) and snapshots each sample's
/// gradient into a per-batch-position buffer.  The buffers are then merged
/// pairwise — a binary tree reduction keyed by batch position, NOT by
/// worker id — and the root is added into the master's parameter
/// gradients.  Because the addition tree depends only on the batch size,
/// the accumulated gradient (and therefore every Adam update) is bitwise
/// identical for any worker count; without this invariant, float
/// reassociation noise near zero-gradient entries gets amplified by Adam's
/// m/sqrt(v) normalization into visible weight divergence.  Replica
/// weights are re-synced from the master lazily after every optimizer
/// step.
class ParallelFitter {
 public:
  /// `workers` is clamped to >= 1; `pool` may be null iff workers == 1.
  ParallelFitter(SteinerSelector& master, std::int32_t workers,
                 util::ThreadPool* pool);

  /// Adds the gradient of the batch-mean masked BCE over `batch` into the
  /// master's parameter gradients (callers zero them first, e.g. via
  /// Optimizer::zero_grad) and returns the per-sample-summed batch loss.
  double accumulate_batch(const Dataset& dataset,
                          const std::vector<std::size_t>& batch);

  /// Must be called after every optimizer step: marks replica weights
  /// stale so the next batch re-syncs them from the master.
  void notify_weights_changed() { weights_dirty_ = true; }

  std::int32_t workers() const { return workers_; }

 private:
  void sync_replicas();
  /// Runs `fn(0..count-1)` on the pool when one is attached, else inline.
  void run_indexed(std::size_t count, const std::function<void(std::size_t)>& fn);
  static double backprop_sample(SteinerSelector& selector,
                                const TrainingSample& sample, float inv_batch);

  SteinerSelector& master_;
  util::ThreadPool* pool_;
  std::int32_t workers_;
  std::vector<nn::Parameter*> master_params_;
  std::vector<std::unique_ptr<SteinerSelector>> replicas_;  // workers_ compute clones
  std::vector<std::vector<nn::Parameter*>> replica_params_;
  std::vector<std::vector<nn::Tensor>> sample_grads_;  // per batch position
  std::vector<double> sample_loss_;
  bool weights_dirty_ = true;
};

/// Supervised fit shared by the combinatorial and sequential trainers:
/// runs `options.epochs` epochs of same-size batches with masked BCE,
/// sharding each batch across `options.workers` replicas; returns the mean
/// loss of the final epoch.
double fit_dataset(SteinerSelector& selector, nn::Adam& optimizer,
                   const Dataset& dataset, const FitOptions& options,
                   util::Rng& rng);

/// Serial convenience overload (workers = 1), kept for existing callers.
double fit_dataset(SteinerSelector& selector, nn::Adam& optimizer,
                   const Dataset& dataset, std::int32_t epochs,
                   std::size_t batch_size, double grad_clip, util::Rng& rng);

/// Mean masked BCE over the whole dataset without touching gradients or
/// RNG state.  Stacks each same-size batch through Module::forward_batch
/// (the batched inference kernels), so it is cheap enough to run every
/// stage; it clobbers the single-sample forward caches, so call it between
/// training steps, never between a forward and its backward.
double dataset_loss(SteinerSelector& selector, const Dataset& dataset,
                    std::size_t batch_size);

class CombTrainer {
 public:
  CombTrainer(SteinerSelector& selector, TrainConfig config);

  /// Runs the next stage (sample generation + fit) and returns its report.
  StageReport run_stage();

  /// Runs every remaining stage (stage_index() .. stages-1), writing an
  /// atomic checkpoint after each one when config().checkpoint_path is set.
  std::vector<StageReport> train();

  /// Writes selector weights + Adam moments + RNG stream + stage index to
  /// `path` atomically (temp file + rename).
  bool save_checkpoint(const std::string& path);

  /// Restores state saved by save_checkpoint; on success the next
  /// run_stage() continues exactly where the checkpointed run would have.
  /// Returns false (leaving the trainer untouched) on a missing, truncated,
  /// corrupt, or architecture-mismatched file.
  bool load_checkpoint(const std::string& path);

  /// Loads config().checkpoint_path if it exists; returns true when
  /// training will resume mid-schedule.
  bool try_resume();

  std::int32_t stage_index() const { return stage_index_; }
  const TrainConfig& config() const { return config_; }

 private:
  SteinerSelector& selector_;
  TrainConfig config_;
  nn::Adam optimizer_;
  util::Rng rng_;
  std::int32_t stage_index_ = 0;
  /// Open when config_.experience_path is set; episodes append after each
  /// stage's sample generation (single writer, batched flushes).
  std::unique_ptr<experience::Store> experience_;
};

}  // namespace oar::rl
