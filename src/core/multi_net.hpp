#pragma once

// Multi-net routing on one Hanan grid.
//
// The paper's problem statement motivates ML-OARSMT with layouts where
// "macros, routing blockages, or pre-routed wires are often encountered":
// this utility routes a list of nets sequentially with any single-net
// router; after each net is routed, its wires become blockages for the
// following nets (the standard sequential global-routing scheme).  Nets can
// be ordered as given or shortest-first (fewer pins / smaller bounding
// volume first, which empirically reduces blocking).

#include <memory>
#include <vector>

#include "steiner/router_base.hpp"

namespace oar::core {

struct Net {
  std::string name;
  std::vector<hanan::Vertex> pins;
};

struct NetResult {
  std::string name;
  route::OarmstResult result;
  /// The per-net grid (original blockages + earlier nets' wires) the
  /// result was routed on; result.tree is bound to it.
  std::shared_ptr<hanan::HananGrid> grid;
  bool routed = false;  // false: unroutable given earlier nets' blockages
};

enum class NetOrder { kAsGiven, kSmallestFirst };

struct MultiNetSummary {
  std::vector<NetResult> nets;
  double total_cost = 0.0;
  int routed = 0;
  int failed = 0;
};

/// Routes `nets` on a copy of `grid` using `router`.  Each routed net's
/// tree vertices are blocked before the next net is attempted (pins of
/// not-yet-routed nets are never blocked; a net whose pins were swallowed
/// by earlier wires reports routed = false).
MultiNetSummary route_nets(const hanan::HananGrid& grid,
                           const std::vector<Net>& nets,
                           steiner::Router& router,
                           NetOrder order = NetOrder::kAsGiven);

}  // namespace oar::core
