#pragma once

// Stage-based training of the Steiner-point selector with combinatorial
// MCTS (paper Sec. 3.5-3.6, Figs. 8-9).
//
// One stage: generate labeled samples by running combinatorial MCTS on
// fresh random layouts of every configured size, augment 16-fold, then fit
// the selector with BCE for a few epochs of same-size batches.  The first
// `curriculum_stages` stages use curriculum learning — pin counts grow from
// 3 upward and the leaf value function uses the exact routing cost instead
// of the critic (whose predictions are still rough early on).

#include <vector>

#include "gen/random_layout.hpp"
#include "mcts/comb_mcts.hpp"
#include "nn/optim.hpp"
#include "rl/dataset.hpp"
#include "rl/selector.hpp"

namespace oar::rl {

struct LayoutSizeSpec {
  std::int32_t h = 16, v = 16, m = 4;
};

struct TrainConfig {
  /// Mixed-size schedule (paper: {16,24,32}^2 x {4,6,8,10}; scale down for
  /// CPU budgets).
  std::vector<LayoutSizeSpec> sizes = {{10, 10, 2}, {12, 12, 3}};
  std::int32_t layouts_per_size = 8;  // per stage (paper: 1000)
  std::int32_t stages = 4;            // paper: 32
  std::int32_t epochs_per_stage = 4;  // paper: 4
  std::int32_t batch_size = 16;       // paper: 256
  double lr = 1e-3;
  double grad_clip = 5.0;
  bool augment = true;
  std::int32_t augment_count = 16;  // how many of the 16 variants to keep
  mcts::CombMctsConfig mcts;
  std::int32_t curriculum_stages = 2;  // paper: 4
  std::int32_t min_pins = 3;
  std::int32_t max_pins = 6;
  /// Expected fraction of blocked vertices (converted to 1x3/1x4 runs).
  double obstacle_density = 0.10;
  std::uint64_t seed = 42;
  std::int32_t threads = 0;  // sample-generation workers; 0 = hardware
};

struct StageReport {
  std::int32_t stage = 0;
  std::int32_t raw_samples = 0;      // MCTS-labeled layouts
  std::int32_t train_samples = 0;    // after augmentation
  double mean_loss = 0.0;            // BCE over the stage's last epoch
  double mean_mcts_st_mst = 0.0;     // search-tree quality during generation
  double sample_gen_seconds = 0.0;
  double train_seconds = 0.0;
  double seconds_per_sample = 0.0;   // MCTS sample-generation time
};

/// Derives the paper-style random-layout spec for one training size.
gen::RandomGridSpec training_spec(const LayoutSizeSpec& size, double obstacle_density,
                                  std::int32_t min_pins, std::int32_t max_pins);

/// Supervised fit shared by the combinatorial and sequential trainers:
/// runs `epochs` epochs of same-size batches with masked BCE; returns the
/// mean loss of the final epoch.
double fit_dataset(SteinerSelector& selector, nn::Adam& optimizer,
                   const Dataset& dataset, std::int32_t epochs,
                   std::size_t batch_size, double grad_clip, util::Rng& rng);

class CombTrainer {
 public:
  CombTrainer(SteinerSelector& selector, TrainConfig config);

  /// Runs the next stage (sample generation + fit) and returns its report.
  StageReport run_stage();

  /// Runs all configured stages.
  std::vector<StageReport> train();

  std::int32_t stage_index() const { return stage_index_; }
  const TrainConfig& config() const { return config_; }

 private:
  SteinerSelector& selector_;
  TrainConfig config_;
  nn::Adam optimizer_;
  util::Rng rng_;
  std::int32_t stage_index_ = 0;
};

}  // namespace oar::rl
