#include "gen/public_benchmarks.hpp"

#include <algorithm>
#include <stdexcept>

#include "gen/random_layout.hpp"

namespace oar::gen {

std::vector<PublicBenchmarkInfo> public_benchmark_table() {
  // Table 4 of the paper.
  return {
      {"rt1", 45, 44, 10, 25, 10},
      {"rt2", 136, 131, 10, 100, 20},
      {"rt3", 294, 285, 10, 250, 50},
      {"rt4", 458, 449, 10, 500, 50},
      {"rt5", 702, 707, 4, 1000, 1000},
      {"ind1", 33, 28, 4, 50, 6},
      {"ind2", 83, 191, 5, 200, 85},
      {"ind3", 221, 223, 9, 250, 13},
  };
}

PublicBenchmarkInfo scaled_info(const PublicBenchmarkInfo& info, std::int32_t scale) {
  if (scale <= 1) return info;
  PublicBenchmarkInfo s = info;
  s.h = std::max(8, info.h / scale);
  s.v = std::max(8, info.v / scale);
  const auto area_ratio = std::max<std::int64_t>(
      1, (std::int64_t(info.h) * info.v) / (std::int64_t(s.h) * s.v));
  s.pins = std::max<std::int32_t>(3, std::int32_t(info.pins / area_ratio));
  s.obstacles = std::max<std::int32_t>(1, std::int32_t(info.obstacles / area_ratio));
  return s;
}

hanan::HananGrid make_public_benchmark(const PublicBenchmarkInfo& info,
                                       std::int32_t scale) {
  const PublicBenchmarkInfo s = scaled_info(info, scale);

  // Deterministic seed from the benchmark name.
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;
  for (char c : info.name) seed = seed * 131 + std::uint64_t(std::uint8_t(c));
  util::Rng rng(seed);

  RandomGridSpec spec;
  spec.h = s.h;
  spec.v = s.v;
  spec.m = s.m;
  spec.min_pins = spec.max_pins = s.pins;
  spec.min_obstacles = spec.max_obstacles = s.obstacles;
  // Public benchmarks have physical rectangular blockages larger than the
  // paper's tiny training obstacles; use runs of 2..6 cells.
  spec.min_obstacle_len = 2;
  spec.max_obstacle_len = 6;
  // Table 4 uses via cost 3; uniform unit geometry (published benchmarks
  // report plain wirelength).
  spec.min_edge_cost = spec.max_edge_cost = 1;
  spec.min_via_cost = spec.max_via_cost = 3.0;
  return random_grid(spec, rng);
}

PublicBenchmarkInfo public_benchmark_info(const std::string& name) {
  for (const auto& info : public_benchmark_table()) {
    if (info.name == name) return info;
  }
  throw std::out_of_range("unknown public benchmark: " + name);
}

}  // namespace oar::gen
