#include "nn/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace oar::nn {

namespace {
std::int64_t shape_numel(const std::vector<std::int32_t>& shape) {
  std::int64_t n = 1;
  for (std::int32_t d : shape) {
    assert(d > 0);
    n *= d;
  }
  return n;
}
}  // namespace

Tensor::Tensor(std::vector<std::int32_t> shape, float fill_value)
    : shape_(std::move(shape)), data_(std::size_t(shape_numel(shape_)), fill_value) {}

Tensor Tensor::randn(std::vector<std::int32_t> shape, util::Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = float(rng.normal(0.0, stddev));
  return t;
}

Tensor Tensor::from(const std::vector<float>& values) {
  Tensor t({std::int32_t(values.size())});
  t.data_ = values;
  return t;
}

Tensor Tensor::reshaped(std::vector<std::int32_t> new_shape) const {
  assert(shape_numel(new_shape) == numel());
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.data_ = data_;
  return t;
}

void Tensor::reset_shape(const std::vector<std::int32_t>& shape) {
  // Skip the assignment when the shape already matches: vector copy-assign
  // reuses capacity, but the equality check keeps the warmed-up steady
  // state trivially allocation-free.
  if (shape_ != shape) shape_ = shape;
  data_.resize(std::size_t(shape_numel(shape_)));
}

void Tensor::reset_shape(std::initializer_list<std::int32_t> shape) {
  if (!std::equal(shape_.begin(), shape_.end(), shape.begin(), shape.end())) {
    shape_.assign(shape.begin(), shape.end());
  }
  std::int64_t n = 1;
  for (std::int32_t d : shape_) {
    assert(d > 0);
    n *= d;
  }
  data_.resize(std::size_t(n));
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

Tensor& Tensor::operator+=(const Tensor& o) {
  assert(shape_ == o.shape_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& o) {
  assert(shape_ == o.shape_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float s) {
  for (auto& v : data_) v *= s;
  return *this;
}

void Tensor::axpy(float alpha, const Tensor& o) {
  assert(shape_ == o.shape_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * o.data_[i];
}

double Tensor::sum() const {
  double s = 0.0;
  for (float v : data_) s += v;
  return s;
}

double Tensor::mean() const { return data_.empty() ? 0.0 : sum() / double(data_.size()); }

float Tensor::max_value() const {
  assert(!data_.empty());
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::min_value() const {
  assert(!data_.empty());
  return *std::min_element(data_.begin(), data_.end());
}

std::int64_t Tensor::argmax() const {
  assert(!data_.empty());
  return std::int64_t(std::max_element(data_.begin(), data_.end()) - data_.begin());
}

double Tensor::norm() const {
  double s = 0.0;
  for (float v : data_) s += double(v) * v;
  return std::sqrt(s);
}

std::string Tensor::shape_string() const {
  std::ostringstream os;
  os << "(";
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << ",";
    os << shape_[i];
  }
  os << ")";
  return os.str();
}

std::size_t Tensor::flat(std::initializer_list<std::int32_t> idx) const {
  assert(std::int32_t(idx.size()) == dim());
  std::size_t off = 0;
  std::size_t d = 0;
  for (std::int32_t i : idx) {
    assert(i >= 0 && i < shape_[d]);
    off = off * std::size_t(shape_[d]) + std::size_t(i);
    ++d;
  }
  return off;
}

Tensor operator+(const Tensor& a, const Tensor& b) {
  Tensor r = a;
  r += b;
  return r;
}

Tensor operator-(const Tensor& a, const Tensor& b) {
  Tensor r = a;
  r -= b;
  return r;
}

Tensor operator*(const Tensor& a, float s) {
  Tensor r = a;
  r *= s;
  return r;
}

}  // namespace oar::nn
