#pragma once

// RouterService: the production-facing serving layer over the RL router.
//
// Clients submit routing requests (a Hanan-grid layout with pins, plus an
// optional deadline) onto a thread-safe queue and receive a future.  A
// dedicated batcher thread groups same-shape requests into micro-batches of
// up to `max_batch`, waiting at most `batch_wait_ms` for stragglers, then:
//
//   1. encodes every layout and runs ONE batched U-Net pass
//      (serve/batched_selector.hpp) for the whole micro-batch,
//   2. fans the per-net top-k selection + OARMST construction out across a
//      util::ThreadPool,
//   3. fulfils each request's promise, recording per-stage latencies in
//      ServiceMetrics.
//
// Results are memoized in an LRU cache keyed by the canonical layout hash
// (serve/canonical.hpp), so a request equal to a previous one *up to the 16
// augmentation symmetries* is answered synchronously from submit() without
// touching the network.  Cached trees are stored in canonical vertex space
// and mapped back through the request's symmetry on a hit.
//
// With max_batch == 1 the service degrades to the legacy single-sample
// router path — that configuration is the baseline the serve bench compares
// micro-batching against.

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "route/oarmst.hpp"
#include "serve/canonical.hpp"
#include "serve/metrics.hpp"
#include "serve/result_cache.hpp"
#include "rl/selector.hpp"
#include "util/thread_pool.hpp"

namespace oar::serve {

using Clock = std::chrono::steady_clock;

struct RouteRequest {
  /// Layout + pins.  Shared ownership: the reply's tree stays bound to it.
  std::shared_ptr<const HananGrid> grid;
  /// Optional completion deadline; a reply finishing later is flagged.
  std::optional<Clock::time_point> deadline;
};

struct RouteReply {
  /// The grid the result's tree is bound to (same object as the request's).
  std::shared_ptr<const HananGrid> grid;
  route::OarmstResult result;
  bool cache_hit = false;
  /// False when the reply finished after the request's deadline.
  bool deadline_met = true;
  double queue_seconds = 0.0;
  double inference_seconds = 0.0;
  double routing_seconds = 0.0;
  double total_seconds = 0.0;
};

struct RouterServiceConfig {
  /// Maximum micro-batch size; 1 disables batching (legacy path).
  std::size_t max_batch = 8;
  /// How long the batcher waits for same-shape stragglers.
  double batch_wait_ms = 2.0;
  /// LRU entries; 0 disables the cache.
  std::size_t cache_capacity = 256;
  /// Worker threads for encode/routing fan-out; 0 = hardware concurrency.
  std::size_t worker_threads = 0;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

class RouterService {
 public:
  explicit RouterService(std::shared_ptr<rl::SteinerSelector> selector,
                         RouterServiceConfig config = {});
  /// Drains the queue (every submitted future still completes), then stops.
  ~RouterService();

  RouterService(const RouterService&) = delete;
  RouterService& operator=(const RouterService&) = delete;

  /// Enqueue a request.  Cache hits resolve before submit() returns.
  std::future<RouteReply> submit(RouteRequest request);

  /// Synchronous convenience wrapper.
  RouteReply route(std::shared_ptr<const HananGrid> grid);

  const RouterServiceConfig& config() const { return config_; }
  ServiceMetrics& metrics() { return metrics_; }
  std::size_t cache_size() const { return cache_.size(); }

  /// Point-in-time export of the process-global obs::MetricsRegistry in
  /// Prometheus exposition format / JSON.  Contains this service's
  /// families (request latency, batch occupancy, symmetry-cache hits) and
  /// every lower layer's (MazeRouter epochs, inference arena, ...);
  /// liveness gauges (queue depth, cache entries) are refreshed first.
  std::string scrape_prometheus();
  std::string scrape_json();

 private:
  struct Pending {
    RouteRequest request;
    std::promise<RouteReply> promise;
    CanonicalForm canon;
    Clock::time_point enqueued;
  };

  void batcher_loop();
  /// Blocks for work; empty result means "stopping and drained".
  std::vector<Pending> take_batch();
  void process_batch(std::vector<Pending> batch);
  /// Builds a reply from a cache entry (maps canonical -> request space).
  RouteReply replay_cached(const RouteRequest& request, const CanonicalForm& canon,
                           const CachedRoute& cached) const;

  RouterServiceConfig config_;
  std::shared_ptr<rl::SteinerSelector> selector_;
  ResultCache cache_;
  ServiceMetrics metrics_;
  util::ThreadPool pool_;

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stopping_ = false;
  std::thread batcher_;
};

}  // namespace oar::serve
