#pragma once

// Training samples and the size-bucketed dataset (paper Fig. 9): every
// batch contains samples of one layout size only; an epoch walks all
// batches of all sizes.

#include <map>
#include <tuple>
#include <vector>

#include "hanan/hanan_grid.hpp"
#include "util/rng.hpp"

namespace oar::rl {

using hanan::HananGrid;
using hanan::Vertex;

/// One supervised sample for the Steiner-point selector.
struct TrainingSample {
  HananGrid grid;
  /// Already-selected Steiner points encoded as pins (sequential agents;
  /// empty for combinatorial samples, whose input is the initial layout).
  std::vector<Vertex> extra_pins;
  /// Target L_fsp (or visit distribution) per vertex, priority order.
  std::vector<float> label;
  /// BCE weight per vertex (0 on pins/obstacles), priority order.
  std::vector<float> mask;
};

class Dataset {
 public:
  void add(TrainingSample sample);
  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  void clear();

  /// Shuffled same-size batches covering every sample once (one epoch).
  /// Each batch is a list of indices into samples().
  std::vector<std::vector<std::size_t>> epoch_batches(std::size_t batch_size,
                                                      util::Rng& rng) const;

  /// Deterministic (unshuffled) same-size batches covering every sample
  /// once, in size-bucket then insertion order.  Used by evaluation paths
  /// (e.g. dataset_loss) that stack each batch through forward_batch and
  /// must not consume RNG state.
  std::vector<std::vector<std::size_t>> ordered_batches(std::size_t batch_size) const;

  const TrainingSample& sample(std::size_t i) const { return samples_[i]; }

  /// Number of distinct layout sizes present.
  std::size_t num_sizes() const { return by_size_.size(); }

 private:
  using SizeKey = std::tuple<std::int32_t, std::int32_t, std::int32_t>;
  std::vector<TrainingSample> samples_;
  std::map<SizeKey, std::vector<std::size_t>> by_size_;
};

}  // namespace oar::rl
