#pragma once

// Stage trainer for the AlphaGo-like baseline (paper Sec. 4.2): identical
// schedule to CombTrainer but samples come from the conventional sequential
// MCTS — one training sample per executed move, labeled with the root
// visit-count distribution.

#include "mcts/seq_mcts.hpp"
#include "rl/trainer.hpp"

namespace oar::rl {

class SeqTrainer {
 public:
  SeqTrainer(SteinerSelector& selector, TrainConfig config);

  StageReport run_stage();
  std::vector<StageReport> train();

  std::int32_t stage_index() const { return stage_index_; }

 private:
  SteinerSelector& selector_;
  TrainConfig config_;
  nn::Adam optimizer_;
  util::Rng rng_;
  std::int32_t stage_index_ = 0;
};

}  // namespace oar::rl
