// Quickstart: describe a physical multi-layer layout, derive its 3D Hanan
// grid graph, and route it with an algorithmic baseline and the RL router.
//
//   ./examples/quickstart
//
// Demonstrates the complete Fig.-2 flow of the paper on a small example.

#include <cstdio>

#include "core/oarsmtrl.hpp"

int main() {
  using namespace oar;

  // A 200x200 layout with 3 routing layers and via cost 4.
  geom::Layout layout(200, 200, 3, 4.0);
  layout.add_pin(10, 10, 0);
  layout.add_pin(180, 30, 1);
  layout.add_pin(30, 170, 2);
  layout.add_pin(160, 160, 0);
  layout.add_pin(100, 90, 1);
  // A macro on layer 0 and a routing blockage on layer 1.
  layout.add_obstacle(geom::Rect(60, 60, 130, 130), 0);
  layout.add_obstacle(geom::Rect(90, 10, 120, 60), 1);

  if (const std::string problems = layout.validate(); !problems.empty()) {
    std::printf("invalid layout: %s\n", problems.c_str());
    return 1;
  }

  // Physical layout -> 3D Hanan grid graph (Sec. 2.2 of the paper).
  const hanan::HananGrid grid = hanan::HananGrid::from_layout(layout);
  std::printf("Hanan graph: %d x %d x %d (%lld vertices), %zu pins, %.1f%% blocked\n",
              grid.h_dim(), grid.v_dim(), grid.m_dim(),
              static_cast<long long>(grid.num_vertices()), grid.pins().size(),
              100.0 * grid.blocked_ratio());

  // Algorithmic baseline: the strongest previous router ([14]-class).
  steiner::Lin18Router lin18;
  const route::OarmstResult base = lin18.route(grid);
  std::printf("lin18 baseline : cost %.1f, %zu Steiner points, %zu tree edges\n",
              base.cost, base.kept_steiner.size(), base.tree.num_edges());

  // RL router: one selector inference + OARMST (paper Fig. 2).  Loads the
  // bundled checkpoint, or quick-trains a tiny selector if it is missing.
  auto selector = core::load_or_train_pretrained(/*fallback_stages=*/2);
  core::RlRouter rl_router(selector);
  const route::OarmstResult ours = rl_router.route(grid);
  std::printf("RL router      : cost %.1f, %zu Steiner points, %zu tree edges\n",
              ours.cost, ours.kept_steiner.size(), ours.tree.num_edges());
  std::printf("  selection %.3f ms, total %.3f ms (one network inference)\n",
              rl_router.last_timing().select_seconds * 1e3,
              rl_router.last_timing().total_seconds * 1e3);

  // Every produced tree is checkable: connected, obstacle-free, acyclic.
  const std::string report = ours.tree.validate(grid.pins());
  std::printf("tree validation: %s\n", report.empty() ? "OK" : report.c_str());
  return report.empty() ? 0 : 1;
}
