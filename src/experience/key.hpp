#pragma once

// Typed experience key.  A CanonicalKey wraps the canonical grid
// serialization (canonical.hpp) together with its fnv1a64 digest so hash
// containers never re-scan the bytes, and so API signatures distinguish
// "canonical symmetry key" from any other std::string.  Construct through
// CanonicalKey::of() / from_bytes(); the digest is always derived from the
// bytes, never caller-supplied.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "experience/canonical.hpp"
#include "util/hash.hpp"

namespace oar::experience {

class CanonicalKey {
 public:
  CanonicalKey() = default;

  /// Key of a layout: canonicalizes `grid` over the 16-way symmetry orbit.
  static CanonicalKey of(const HananGrid& grid) {
    return CanonicalKey(canonicalize(grid).key);
  }

  /// Key from an already-canonical byte string (e.g. CanonicalForm::key).
  static CanonicalKey from_bytes(std::string bytes) {
    return CanonicalKey(std::move(bytes));
  }

  const std::string& bytes() const { return bytes_; }
  std::uint64_t hash() const { return hash_; }
  bool empty() const { return bytes_.empty(); }

  friend bool operator==(const CanonicalKey& a, const CanonicalKey& b) {
    return a.hash_ == b.hash_ && a.bytes_ == b.bytes_;
  }

 private:
  explicit CanonicalKey(std::string bytes)
      : bytes_(std::move(bytes)), hash_(util::fnv1a64(bytes_)) {}

  std::string bytes_;
  std::uint64_t hash_ = util::fnv1a64(std::string_view{});
};

struct KeyHash {
  std::size_t operator()(const CanonicalKey& k) const {
    return std::size_t(k.hash());
  }
};

}  // namespace oar::experience
