// Macro-blockage scenario: the multi-layer capability that makes ML-OARSMT
// "closer to a real routing problem" (paper Sec. 1).  A large macro blocks
// most of layer 0; the routers must climb through vias to connect pins that
// sit on opposite sides of it.  Compares all three algorithmic baselines
// and the RL router, and shows via usage per tree.

#include <cstdio>

#include "core/oarsmtrl.hpp"

namespace {

int count_vias(const oar::hanan::HananGrid& grid, const oar::route::RouteTree& tree) {
  int vias = 0;
  for (const auto& e : tree.edges()) {
    if (grid.cell(e.a).m != grid.cell(e.b).m) ++vias;
  }
  return vias;
}

}  // namespace

int main() {
  using namespace oar;

  // 300x300 layout, 4 layers, via cost 5.
  geom::Layout layout(300, 300, 4, 5.0);
  // A macro covering the center of layer 0 and a smaller one on layer 1.
  layout.add_obstacle(geom::Rect(60, 40, 240, 260), 0);
  layout.add_obstacle(geom::Rect(120, 100, 200, 200), 1);
  // Pins around and on top of the macro.
  layout.add_pin(10, 150, 0);
  layout.add_pin(290, 150, 0);
  layout.add_pin(150, 10, 0);
  layout.add_pin(150, 290, 0);
  layout.add_pin(150, 150, 2);  // above the macro
  layout.add_pin(80, 80, 3);

  if (const std::string problems = layout.validate(); !problems.empty()) {
    std::printf("invalid layout: %s\n", problems.c_str());
    return 1;
  }
  const hanan::HananGrid grid = hanan::HananGrid::from_layout(layout);
  std::printf("Hanan graph %dx%dx%d, %zu pins, obstacle ratio %.1f%%\n\n",
              grid.h_dim(), grid.v_dim(), grid.m_dim(), grid.pins().size(),
              100.0 * layout.obstacle_ratio());

  steiner::Lin08Router lin08;
  steiner::Liu14Router liu14;
  steiner::Lin18Router lin18;
  auto selector = core::load_or_train_pretrained(2);
  core::RlRouter rl_router(selector);

  std::printf("%-10s %10s %8s %6s %9s\n", "router", "cost", "edges", "vias",
              "steiner");
  std::vector<steiner::Router*> routers{&lin08, &liu14, &lin18, &rl_router};
  for (steiner::Router* router : routers) {
    const auto result = router->route(grid);
    if (!result.connected) {
      std::printf("%-10s %10s\n", router->name().c_str(), "UNROUTABLE");
      continue;
    }
    const std::string check = result.tree.validate(grid.pins());
    std::printf("%-10s %10.1f %8zu %6d %9zu%s\n", router->name().c_str(), result.cost,
                result.tree.num_edges(), count_vias(grid, result.tree),
                result.kept_steiner.size(), check.empty() ? "" : "  INVALID!");
  }

  std::printf("\nEvery tree detours through upper layers: the macro leaves no"
              " same-layer path\nbetween the west and east pins.\n");
  return 0;
}
