file(REMOVE_RECURSE
  "CMakeFiles/test_nn.dir/test_loss_optim.cpp.o"
  "CMakeFiles/test_nn.dir/test_loss_optim.cpp.o.d"
  "CMakeFiles/test_nn.dir/test_nn_layers.cpp.o"
  "CMakeFiles/test_nn.dir/test_nn_layers.cpp.o.d"
  "CMakeFiles/test_nn.dir/test_tensor.cpp.o"
  "CMakeFiles/test_nn.dir/test_tensor.cpp.o.d"
  "CMakeFiles/test_nn.dir/test_unet.cpp.o"
  "CMakeFiles/test_nn.dir/test_unet.cpp.o.d"
  "test_nn"
  "test_nn.pdb"
  "test_nn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
