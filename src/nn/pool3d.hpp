#pragma once

// Spatial resampling for the U-Net: 2x max pooling with ceil semantics (so
// odd and very small dimensions — e.g. 4..10 routing layers — survive the
// encoder) and nearest-neighbor upsampling to an explicit target size (so
// the decoder output always matches its skip connection exactly, whatever
// the input dimensions were).  Both are required for the paper's
// arbitrary-size property.

#include "nn/module.hpp"

namespace oar::nn {

class MaxPool3d : public Module {
 public:
  /// kernel = stride = 2, ceil mode: output dim = ceil(D / 2).
  MaxPool3d() = default;

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  /// (N, C, D0, D1, D2) -> (N, C, ceil/2 dims); no argmax bookkeeping.
  Tensor forward_batch(const Tensor& input) override;

  static std::int32_t out_dim(std::int32_t d) { return (d + 1) / 2; }

  /// Single-sample inference kernel: pools the (C, D0, D1, D2) volume at
  /// `in` into the (C, out_dim...) buffer at `out`; no argmax bookkeeping.
  void infer_into(const float* in, std::int32_t C, std::int32_t D0,
                  std::int32_t D1, std::int32_t D2, float* out) const;

 private:
  std::vector<std::int64_t> argmax_;  // flat input index per output element
  std::vector<std::int32_t> in_shape_;
};

class UpsampleNearest3d : public Module {
 public:
  /// Target spatial size must be set (per call) before forward().
  void set_target(std::int32_t d0, std::int32_t d1, std::int32_t d2) {
    t0_ = d0;
    t1_ = d1;
    t2_ = d2;
  }

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

  /// Single-sample inference kernel: upsamples the (C, D0, D1, D2) volume
  /// at `in` to the (C, t0, t1, t2) target size at `out`.  The U-Net's
  /// inference path points `out` at the first C channels of the concat
  /// buffer, fusing away the separate concatenation pass.
  void infer_into(const float* in, std::int32_t C, std::int32_t D0,
                  std::int32_t D1, std::int32_t D2, float* out) const;

 private:
  std::int32_t t0_ = 0, t1_ = 0, t2_ = 0;
  std::vector<std::int32_t> in_shape_;
};

}  // namespace oar::nn
