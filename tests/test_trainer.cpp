#include "rl/trainer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rl/seq_trainer.hpp"

namespace oar::rl {
namespace {

SelectorConfig tiny_selector() {
  SelectorConfig cfg;
  cfg.unet.base_channels = 4;
  cfg.unet.depth = 1;
  cfg.unet.seed = 101;
  return cfg;
}

TrainConfig tiny_train() {
  TrainConfig cfg;
  cfg.sizes = {{6, 6, 2}};
  cfg.layouts_per_size = 2;
  cfg.stages = 1;
  cfg.epochs_per_stage = 1;
  cfg.batch_size = 8;
  cfg.augment_count = 4;
  cfg.mcts.iterations_per_move = 12;
  cfg.curriculum_stages = 1;
  cfg.min_pins = 3;
  cfg.max_pins = 4;
  cfg.threads = 2;
  return cfg;
}

TEST(TrainingSpec, ConvertsDensityToObstacleRuns) {
  const auto spec = training_spec({16, 16, 4}, 0.10, 3, 6);
  EXPECT_EQ(spec.h, 16);
  EXPECT_EQ(spec.m, 4);
  EXPECT_EQ(spec.min_pins, 3);
  EXPECT_EQ(spec.max_pins, 6);
  // 10% of 1024 cells / 3.5 mean length ~= 29 runs.
  EXPECT_NEAR(spec.max_obstacles, 29, 3);
  EXPECT_GE(spec.min_obstacles, 1);
  EXPECT_LE(spec.min_obstacles, spec.max_obstacles);
}

TEST(CombTrainerTest, StageProducesSamplesAndFiniteLoss) {
  SteinerSelector selector(tiny_selector());
  CombTrainer trainer(selector, tiny_train());
  const StageReport report = trainer.run_stage();
  EXPECT_EQ(report.stage, 0);
  EXPECT_EQ(report.raw_samples, 2);
  EXPECT_EQ(report.train_samples, 8);  // 2 layouts x 4 augmentations
  EXPECT_TRUE(std::isfinite(report.mean_loss));
  EXPECT_GT(report.mean_loss, 0.0);
  EXPECT_GT(report.sample_gen_seconds, 0.0);
  EXPECT_EQ(trainer.stage_index(), 1);
}

TEST(CombTrainerTest, TrainingChangesWeights) {
  SteinerSelector selector(tiny_selector());
  std::vector<float> before;
  for (auto* p : selector.net().parameters()) {
    for (std::int64_t i = 0; i < p->value.numel(); ++i) before.push_back(p->value[i]);
  }
  CombTrainer trainer(selector, tiny_train());
  trainer.run_stage();
  double diff = 0.0;
  std::size_t k = 0;
  for (auto* p : selector.net().parameters()) {
    for (std::int64_t i = 0; i < p->value.numel(); ++i) {
      diff += std::abs(double(p->value[i]) - before[k++]);
    }
  }
  EXPECT_GT(diff, 0.0);
}

TEST(CombTrainerTest, LossDecreasesWhenRefittingSameData) {
  // Supervised sanity: refitting the same dataset for several epochs
  // reduces the masked BCE.
  SteinerSelector selector(tiny_selector());
  util::Rng rng(5);
  Dataset dataset;
  gen::RandomGridSpec spec = training_spec({6, 6, 2}, 0.10, 4, 4);
  for (int i = 0; i < 4; ++i) {
    TrainingSample sample;
    sample.grid = gen::random_grid(spec, rng);
    const auto n = std::size_t(sample.grid.num_vertices());
    sample.label.assign(n, 0.0f);
    sample.mask.assign(n, 1.0f);
    // Synthetic target: mark two fixed vertices.
    sample.label[n / 3] = 1.0f;
    sample.label[n / 2] = 1.0f;
    dataset.add(std::move(sample));
  }
  nn::Adam opt(selector.net().parameters(), 3e-3);
  const double first = fit_dataset(selector, opt, dataset, 1, 4, 5.0, rng);
  double last = first;
  for (int e = 0; e < 6; ++e) last = fit_dataset(selector, opt, dataset, 1, 4, 5.0, rng);
  EXPECT_LT(last, first);
}

TEST(CombTrainerTest, FixedSeedRunsAreBitwiseReproducible) {
  // Samples are stored by job index, not thread-completion order, so two
  // runs with the same seed and worker count must produce identical
  // weights even with parallel generation (threads=2) and a parallel fit.
  const auto run_once = []() {
    SteinerSelector selector(tiny_selector());
    TrainConfig cfg = tiny_train();
    cfg.sizes = {{6, 6, 2}, {5, 7, 1}};  // multiple jobs to race
    cfg.layouts_per_size = 3;
    CombTrainer trainer(selector, cfg);
    trainer.run_stage();
    std::vector<float> weights;
    for (auto* p : selector.net().parameters()) {
      for (std::int64_t i = 0; i < p->value.numel(); ++i) {
        weights.push_back(p->value[i]);
      }
    }
    return weights;
  };
  const auto first = run_once();
  const auto second = run_once();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    ASSERT_EQ(first[i], second[i]) << "weight " << i;
  }
}

TEST(SeqTrainerTest, StageProducesPerMoveSamples) {
  SteinerSelector selector(tiny_selector());
  TrainConfig cfg = tiny_train();
  cfg.min_pins = 4;
  cfg.max_pins = 4;  // guarantees at least one executed move per layout
  SeqTrainer trainer(selector, cfg);
  const StageReport report = trainer.run_stage();
  EXPECT_EQ(report.raw_samples, 2);
  // Each layout contributes >= 1 move sample, each augmented 4x.
  EXPECT_GE(report.train_samples, 8);
  EXPECT_TRUE(std::isfinite(report.mean_loss));
}

TEST(CombTrainerTest, MultiSizeStageKeepsSizesSeparate) {
  SteinerSelector selector(tiny_selector());
  TrainConfig cfg = tiny_train();
  cfg.sizes = {{6, 6, 2}, {5, 7, 1}};
  CombTrainer trainer(selector, cfg);
  const StageReport report = trainer.run_stage();
  EXPECT_EQ(report.raw_samples, 4);  // 2 layouts per size
  EXPECT_EQ(report.train_samples, 16);
}

}  // namespace
}  // namespace oar::rl
