#include "nn/inference.hpp"

namespace oar::nn {

Tensor& InferenceScratch::next_slot() {
  if (used_ == slots_.size()) {
    slots_.push_back(std::make_unique<Tensor>());
    ++grow_events_;
  }
  return *slots_[used_++];
}

Tensor& InferenceScratch::push(const std::vector<std::int32_t>& shape) {
  Tensor& t = next_slot();
  const std::size_t cap = t.raw().capacity();
  t.reset_shape(shape);
  if (t.raw().capacity() != cap) ++grow_events_;
  return t;
}

Tensor& InferenceScratch::push(std::initializer_list<std::int32_t> shape) {
  Tensor& t = next_slot();
  const std::size_t cap = t.raw().capacity();
  t.reset_shape(shape);
  if (t.raw().capacity() != cap) ++grow_events_;
  return t;
}

float* InferenceScratch::ensure(std::vector<float>& v, std::size_t n) {
  if (v.capacity() < n) ++grow_events_;
  if (v.size() < n) v.resize(n);
  return v.data();
}

InferenceScratch& local_inference_scratch() {
  static thread_local InferenceScratch scratch;
  return scratch;
}

}  // namespace oar::nn
