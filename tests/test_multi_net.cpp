#include "core/multi_net.hpp"

#include <gtest/gtest.h>

#include "steiner/lin08.hpp"

namespace oar::core {
namespace {

hanan::HananGrid open_grid(std::int32_t h, std::int32_t v, std::int32_t m) {
  return hanan::HananGrid(h, v, m, std::vector<double>(std::size_t(h - 1), 1.0),
                          std::vector<double>(std::size_t(v - 1), 1.0), 1.5);
}

TEST(MultiNet, RoutesIndependentNets) {
  const auto grid = open_grid(8, 8, 2);
  std::vector<Net> nets = {
      {"a", {grid.index(0, 0, 0), grid.index(7, 0, 0)}},
      {"b", {grid.index(0, 7, 0), grid.index(7, 7, 0)}},
  };
  steiner::Lin08Router router;
  const auto summary = route_nets(grid, nets, router);
  EXPECT_EQ(summary.routed, 2);
  EXPECT_EQ(summary.failed, 0);
  EXPECT_DOUBLE_EQ(summary.total_cost, 14.0);
  for (const auto& net : summary.nets) {
    EXPECT_TRUE(net.routed);
    EXPECT_EQ(net.result.tree.validate({}), "");
  }
}

TEST(MultiNet, RoutedWiresBlockLaterNets) {
  // Net a routes along the only free row of layer 0; net b must detour
  // through layer 1.
  auto grid = open_grid(5, 3, 2);
  for (std::int32_t h = 0; h < 5; ++h) {
    if (h != 2) {
      grid.block_vertex(grid.index(h, 0, 0));
      grid.block_vertex(grid.index(h, 2, 0));
    }
  }
  std::vector<Net> nets = {
      {"a", {grid.index(0, 1, 0), grid.index(4, 1, 0)}},   // takes row 1
      {"b", {grid.index(2, 0, 0), grid.index(2, 2, 0)}},   // must cross row 1
  };
  steiner::Lin08Router router;
  const auto summary = route_nets(grid, nets, router);
  ASSERT_EQ(summary.routed, 2);
  // Net b's tree must use layer 1 (vias) because row 1 of layer 0 is taken.
  bool uses_layer1 = false;
  for (const auto v : summary.nets[1].result.tree.vertices()) {
    if (grid.cell(v).m == 1) uses_layer1 = true;
  }
  EXPECT_TRUE(uses_layer1);
}

TEST(MultiNet, ReportsUnroutableNet) {
  // Single layer: net a's wire walls off net b completely.
  auto grid = open_grid(5, 5, 1);
  std::vector<Net> nets = {
      {"wall", {grid.index(2, 0, 0), grid.index(2, 4, 0)}},
      {"cross", {grid.index(0, 2, 0), grid.index(4, 2, 0)}},
  };
  steiner::Lin08Router router;
  const auto summary = route_nets(grid, nets, router);
  EXPECT_EQ(summary.routed, 1);
  EXPECT_EQ(summary.failed, 1);
  EXPECT_TRUE(summary.nets[0].routed);
  EXPECT_FALSE(summary.nets[1].routed);
}

TEST(MultiNet, SmallestFirstOrderChangesSequence) {
  const auto grid = open_grid(10, 10, 2);
  std::vector<Net> nets = {
      {"big", {grid.index(0, 0, 0), grid.index(9, 9, 0), grid.index(0, 9, 0)}},
      {"small", {grid.index(4, 4, 1), grid.index(5, 4, 1)}},
  };
  steiner::Lin08Router router;
  const auto as_given = route_nets(grid, nets, router, NetOrder::kAsGiven);
  const auto smallest = route_nets(grid, nets, router, NetOrder::kSmallestFirst);
  ASSERT_EQ(as_given.nets.size(), 2u);
  ASSERT_EQ(smallest.nets.size(), 2u);
  EXPECT_EQ(as_given.nets[0].name, "big");
  EXPECT_EQ(smallest.nets[0].name, "small");
  EXPECT_EQ(smallest.routed, 2);
}

TEST(MultiNet, PinSwallowedByEarlierWireFailsCleanly) {
  auto grid = open_grid(5, 1, 1);
  std::vector<Net> nets = {
      {"a", {grid.index(0, 0, 0), grid.index(4, 0, 0)}},
      // Pin sits in the middle of net a's wire.
      {"b", {grid.index(2, 0, 0), grid.index(3, 0, 0)}},
  };
  steiner::Lin08Router router;
  const auto summary = route_nets(grid, nets, router);
  EXPECT_TRUE(summary.nets[0].routed);
  EXPECT_FALSE(summary.nets[1].routed);
}

TEST(MultiNet, EmptyNetListAndEmptyPins) {
  const auto grid = open_grid(4, 4, 1);
  steiner::Lin08Router router;
  EXPECT_EQ(route_nets(grid, {}, router).nets.size(), 0u);
  const auto summary = route_nets(grid, {{"empty", {}}}, router);
  EXPECT_EQ(summary.failed, 1);
}

}  // namespace
}  // namespace oar::core
