
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/steiner/baselines.cpp" "src/steiner/CMakeFiles/oar_steiner.dir/baselines.cpp.o" "gcc" "src/steiner/CMakeFiles/oar_steiner.dir/baselines.cpp.o.d"
  "/root/repo/src/steiner/candidates.cpp" "src/steiner/CMakeFiles/oar_steiner.dir/candidates.cpp.o" "gcc" "src/steiner/CMakeFiles/oar_steiner.dir/candidates.cpp.o.d"
  "/root/repo/src/steiner/oracle.cpp" "src/steiner/CMakeFiles/oar_steiner.dir/oracle.cpp.o" "gcc" "src/steiner/CMakeFiles/oar_steiner.dir/oracle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/route/CMakeFiles/oar_route.dir/DependInfo.cmake"
  "/root/repo/build/src/hanan/CMakeFiles/oar_hanan.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/oar_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/oar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
