#pragma once

// Umbrella header: the public API of the oarsmtrl library.
//
// Quick tour (see examples/quickstart.cpp):
//   geom::Layout            — physical problem description
//   hanan::HananGrid        — 3D Hanan grid graph (from_layout or direct)
//   route::OarmstRouter     — OARMST construction over pins + Steiner points
//   steiner::{Lin08,Liu14,Lin18}Router — algorithmic baselines
//   rl::SteinerSelector     — the 3D-U-Net Steiner-point selector
//   rl::CombTrainer         — combinatorial-MCTS training pipeline
//   core::Router            — unified facade over every entry point
//                             (route(Layout, Net) -> RouteResult + metrics)
//   chip::ChipRouter        — full-chip multi-net negotiated rip-up &
//                             reroute (route(grid, Netlist) on the facade,
//                             see examples/chip_demo.cpp)
//   chip::Netlist           — named multi-pin nets + text file format
//   core::RlRouter          — the trained RL ML-OARSMT router
//   core::pretrained_*      — bundled tiny checkpoint helpers
//   serve::RouterService    — micro-batching + result-cache serving layer
//                             (see examples/serve_demo.cpp)
//   obs::MetricsRegistry    — process-global counters/gauges/histograms,
//                             Prometheus + JSON exporters (obs/export.hpp)

#include "chip/chip_router.hpp"
#include "chip/congestion.hpp"
#include "chip/netlist.hpp"
#include "chip/ordering.hpp"
#include "core/multi_net.hpp"
#include "core/pretrained.hpp"
#include "core/registry.hpp"
#include "core/rl_router.hpp"
#include "core/router.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "gen/grid_io.hpp"
#include "gen/public_benchmarks.hpp"
#include "gen/svg.hpp"
#include "gen/random_layout.hpp"
#include "gen/random_netlist.hpp"
#include "geom/layout.hpp"
#include "hanan/features.hpp"
#include "hanan/hanan_grid.hpp"
#include "mcts/comb_mcts.hpp"
#include "mcts/seq_mcts.hpp"
#include "rl/evaluate.hpp"
#include "rl/ppo.hpp"
#include "rl/selector.hpp"
#include "rl/seq_trainer.hpp"
#include "rl/trainer.hpp"
#include "route/astar.hpp"
#include "route/oarmst.hpp"
#include "serve/canonical.hpp"
#include "serve/metrics.hpp"
#include "serve/result_cache.hpp"
#include "serve/service.hpp"
#include "steiner/lin08.hpp"
#include "steiner/oracle.hpp"
#include "steiner/lin18.hpp"
#include "steiner/liu14.hpp"
