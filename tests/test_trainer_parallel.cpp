// Training-correctness battery for the data-parallel fit engine: serial and
// parallel fit_dataset must apply equivalent updates, and the tree-reduced
// gradients must match a hand-summed per-sample reference.

#include <gtest/gtest.h>

#include <cmath>

#include "nn/gradcheck.hpp"
#include "rl/trainer.hpp"

namespace oar::rl {
namespace {

SelectorConfig tiny_selector() {
  SelectorConfig cfg;
  cfg.unet.base_channels = 4;
  cfg.unet.depth = 1;
  cfg.unet.seed = 101;
  return cfg;
}

Dataset synthetic_dataset(int samples, std::uint64_t seed) {
  util::Rng rng(seed);
  Dataset dataset;
  const gen::RandomGridSpec spec = training_spec({6, 6, 2}, 0.10, 4, 4);
  for (int i = 0; i < samples; ++i) {
    TrainingSample sample;
    sample.grid = gen::random_grid(spec, rng);
    const auto n = std::size_t(sample.grid.num_vertices());
    sample.label.assign(n, 0.0f);
    sample.mask.assign(n, 1.0f);
    sample.label[n / 3] = 1.0f;
    sample.label[n / 2] = 1.0f;
    dataset.add(std::move(sample));
  }
  return dataset;
}

std::vector<float> flatten_weights(SteinerSelector& selector) {
  std::vector<float> out;
  for (auto* p : selector.net().parameters()) {
    for (std::int64_t i = 0; i < p->value.numel(); ++i) out.push_back(p->value[i]);
  }
  return out;
}

std::vector<float> flatten_grads(SteinerSelector& selector) {
  std::vector<float> out;
  for (auto* p : selector.net().parameters()) {
    for (std::int64_t i = 0; i < p->grad.numel(); ++i) out.push_back(p->grad[i]);
  }
  return out;
}

class ParallelFitWorkersTest : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(ParallelFitWorkersTest, MatchesSerialWeightsWithin1e6) {
  const std::int32_t workers = GetParam();
  const Dataset dataset = synthetic_dataset(8, 3);

  SteinerSelector serial(tiny_selector());
  SteinerSelector parallel(tiny_selector());
  nn::Adam opt_serial(serial.net().parameters(), 3e-3);
  nn::Adam opt_parallel(parallel.net().parameters(), 3e-3);
  util::Rng rng_serial(7);
  util::Rng rng_parallel(7);

  const double loss_serial =
      fit_dataset(serial, opt_serial, dataset, 2, 4, 5.0, rng_serial);

  FitOptions options;
  options.epochs = 2;
  options.batch_size = 4;
  options.grad_clip = 5.0;
  options.workers = workers;
  const double loss_parallel =
      fit_dataset(parallel, opt_parallel, dataset, options, rng_parallel);

  EXPECT_NEAR(loss_parallel, loss_serial, 1e-6);
  const auto ws = flatten_weights(serial);
  const auto wp = flatten_weights(parallel);
  ASSERT_EQ(ws.size(), wp.size());
  double max_diff = 0.0;
  for (std::size_t i = 0; i < ws.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(double(ws[i]) - double(wp[i])));
  }
  EXPECT_LT(max_diff, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Workers, ParallelFitWorkersTest,
                         ::testing::Values(1, 2, 4));

TEST(ParallelFitTest, GradientReductionMatchesHandSummedReference) {
  const Dataset dataset = synthetic_dataset(4, 9);
  const std::vector<std::size_t> batch = {0, 1, 2, 3};

  // Hand-summed reference: per-sample gradients (batch of one, so the
  // 1/|batch| scale is 1), averaged afterwards.
  SteinerSelector selector(tiny_selector());
  std::vector<double> reference;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    selector.net().zero_grad();
    ParallelFitter single(selector, 1, nullptr);
    single.accumulate_batch(dataset, {batch[i]});
    const auto grads = flatten_grads(selector);
    if (reference.empty()) reference.assign(grads.size(), 0.0);
    for (std::size_t j = 0; j < grads.size(); ++j) {
      reference[j] += double(grads[j]) / double(batch.size());
    }
  }

  // Tree-reduced gradients from four workers over the same batch.
  util::ThreadPool pool(4);
  selector.net().zero_grad();
  ParallelFitter fitter(selector, 4, &pool);
  fitter.accumulate_batch(dataset, batch);
  const auto reduced = flatten_grads(selector);
  ASSERT_EQ(reduced.size(), reference.size());
  for (std::size_t j = 0; j < reduced.size(); ++j) {
    EXPECT_NEAR(double(reduced[j]), reference[j], 1e-5) << "grad entry " << j;
  }
}

TEST(ParallelFitTest, PerSampleGradientsPassGradCheck) {
  // The hand-summed reference above is only meaningful if the per-sample
  // analytic gradient is itself correct; prove it against central finite
  // differences.  The probe keeps the encoder's exact tensor shape but is
  // filled with randn values: the raw 0/1 feature planes are numerically
  // degenerate (constant channels give near-zero GroupNorm variance, tied
  // max-pool branches), so fp32 difference quotients are meaningless on
  // them.  Same epsilon/rtol as the UNet gradcheck in test_unet.cpp.
  SteinerSelector selector(tiny_selector());
  const Dataset dataset = synthetic_dataset(1, 13);
  const TrainingSample& sample = dataset.sample(0);
  const nn::Tensor encoded =
      SteinerSelector::encode(sample.grid, sample.extra_pins);
  util::Rng rng(21);
  const nn::Tensor input = nn::Tensor::randn(encoded.shape(), rng);
  nn::Tensor loss_weights = nn::Tensor::randn(
      {1, sample.grid.h_dim(), sample.grid.v_dim(), sample.grid.m_dim()}, rng);
  const auto result =
      nn::grad_check(selector.net(), input, loss_weights, rng, 1e-2, 8e-2, 12);
  EXPECT_TRUE(result.ok) << "max_abs_error=" << result.max_abs_error
                         << " violations=" << result.violations;
}

TEST(ParallelFitTest, DatasetLossAgreesWithSerialEvaluation) {
  // dataset_loss stacks batches through forward_batch; it must agree with
  // the per-sample loss the training loop reports on an untouched network.
  const Dataset dataset = synthetic_dataset(6, 17);
  SteinerSelector selector(tiny_selector());
  const double batched = dataset_loss(selector, dataset, 4);

  // Per-sample reference via a zero-step "fit": accumulate loss only.
  SteinerSelector reference(tiny_selector());
  reference.net().zero_grad();
  ParallelFitter fitter(reference, 1, nullptr);
  double total = 0.0;
  std::size_t batches = 0;
  for (const auto& batch : dataset.ordered_batches(4)) {
    total += fitter.accumulate_batch(dataset, batch) / double(batch.size());
    ++batches;
  }
  EXPECT_NEAR(batched, total / double(batches), 1e-5);
}

}  // namespace
}  // namespace oar::rl
