#pragma once

// RouterService: the production-facing serving layer over the RL router.
//
// Clients submit routing requests (a Hanan-grid layout with pins, plus an
// optional deadline) onto a thread-safe queue and receive a future.  A
// dedicated batcher thread groups same-shape requests into micro-batches of
// up to `max_batch`, waiting at most `batch_wait_ms` for stragglers, then:
//
//   1. encodes every layout and runs ONE batched U-Net pass
//      (serve/batched_selector.hpp) for the whole micro-batch,
//   2. fans the per-net top-k selection + OARMST construction out across a
//      util::ThreadPool,
//   3. fulfils each request's promise, recording per-stage latencies in
//      ServiceMetrics.
//
// Results are memoized in a tiered experience::Store keyed by the
// canonical layout hash (experience/canonical.hpp), so a request equal to
// a previous one *up to the 16 augmentation symmetries* is answered
// synchronously from submit() without touching the network — from the
// in-memory LRU tier, or, when RouterServiceConfig::experience_path is
// set, from the persistent disk tier, which means exact hits survive
// process restarts and deploys.  Stored trees live in canonical vertex
// space and are mapped back through the request's symmetry on a hit; the
// answering tier is reported in RouteReply::hit_tier.
//
// With max_batch == 1 the service degrades to the legacy single-sample
// router path — that configuration is the baseline the serve bench compares
// micro-batching against.
//
// SLO-aware serving (DESIGN.md §16): every request carries an *effective
// deadline* — its own, or submit-time + SloConfig::default_deadline_ms.
// The batcher pops the most-urgent shape group first (earliest effective
// deadline; FIFO among deadline-less requests) instead of strict FIFO, and
// caps the straggler wait at the leader's deadline so a zero-slack request
// never waits for company.  Admission control turns the queue from
// unbounded to bounded: a full queue or a hopeless deadline resolves the
// future *immediately* with a typed Overloaded reply (ReplyStatus) instead
// of blocking forever or serving a result nobody will use.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "experience/store.hpp"
#include "route/oarmst.hpp"
#include "serve/canonical.hpp"
#include "serve/metrics.hpp"
#include "rl/selector.hpp"
#include "util/thread_pool.hpp"

namespace oar::serve {

using Clock = std::chrono::steady_clock;

struct RouteRequest {
  /// Layout + pins.  Shared ownership: the reply's tree stays bound to it.
  std::shared_ptr<const HananGrid> grid;
  /// Optional completion deadline; a reply finishing later is flagged.
  /// Requests without one inherit SloConfig::default_deadline_ms.
  std::optional<Clock::time_point> deadline;
};

/// Typed admission outcome.  kOk replies carry a routed result; the
/// Overloaded rejections carry an empty result and resolve synchronously
/// inside submit() — admission control never blocks the caller.
enum class ReplyStatus : int {
  kOk = 0,
  /// Rejected: the admission queue held SloConfig::max_queue_depth
  /// requests already.
  kOverloadedQueueFull,
  /// Rejected: the request's effective deadline was hopeless at submit
  /// (slack below SloConfig::min_slack_ms with reject_hopeless on).
  kOverloadedHopelessDeadline,
};

const char* reply_status_name(ReplyStatus status);

struct RouteReply {
  /// The grid the result's tree is bound to (same object as the request's).
  std::shared_ptr<const HananGrid> grid;
  route::OarmstResult result;
  /// kOk for served replies; an Overloaded value for admission rejections
  /// (result is then empty and deadline_met is false).
  ReplyStatus status = ReplyStatus::kOk;
  bool cache_hit = false;
  /// Which experience tier answered: kMemory (LRU), kDisk (persistent
  /// file, survives restarts), or kMiss (freshly routed).  cache_hit ==
  /// (hit_tier != kMiss).
  experience::HitTier hit_tier = experience::HitTier::kMiss;
  /// False when the reply finished after the request's effective deadline
  /// (or was rejected at admission).
  bool deadline_met = true;
  double queue_seconds = 0.0;
  double inference_seconds = 0.0;
  double routing_seconds = 0.0;
  double total_seconds = 0.0;

  bool overloaded() const { return status != ReplyStatus::kOk; }
};

/// Latency-SLO policy (DESIGN.md §16).  Defaults preserve the legacy
/// behaviour exactly: no default deadline, unbounded queue, late requests
/// served and flagged rather than rejected.
struct SloConfig {
  /// Default per-request latency target in ms, applied at submit() to
  /// requests that carry no explicit deadline.  0 disables (no deadline).
  double default_deadline_ms = 0.0;
  /// Admission bound on queued requests; a submit() finding this many
  /// waiting resolves immediately with kOverloadedQueueFull.  0 = unbounded.
  std::size_t max_queue_depth = 0;
  /// When true, a request whose effective deadline leaves less than
  /// min_slack_ms of slack at submit() is rejected with
  /// kOverloadedHopelessDeadline instead of queued (it cannot be served in
  /// time; serving it anyway would also delay feasible requests).
  bool reject_hopeless = false;
  /// Slack floor for reject_hopeless, in ms.  0 rejects only requests
  /// whose deadline has already passed.
  double min_slack_ms = 0.0;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

struct RouterServiceConfig {
  /// Maximum micro-batch size; 1 disables batching (legacy path).
  std::size_t max_batch = 8;
  /// How long the batcher waits for same-shape stragglers.  0 means zero
  /// waiting: the batcher harvests what is queued and dispatches without
  /// ever entering a timed wait.
  double batch_wait_ms = 2.0;
  /// Memory-tier LRU entries; 0 disables the memory tier.
  std::size_t cache_capacity = 256;
  /// Persistent experience file backing the cache (experience::Store disk
  /// tier).  Empty = memory-only, the legacy behaviour; set, exact hits
  /// survive process restarts.  Ignored when a Store is injected.
  std::string experience_path;
  /// Open the experience file read-only: serve from it, never append.
  bool experience_read_only = false;
  /// Appends buffered before the disk tier flushes (single-writer append
  /// batching); 0 defers to shutdown.
  std::size_t experience_flush_batch = 16;
  /// Worker threads for encode/routing fan-out; 0 = hardware concurrency.
  std::size_t worker_threads = 0;
  /// Latency-SLO policy (deadlines, admission control).
  SloConfig slo;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

namespace detail {

/// The urgency rule shared by the batcher and its tests: earliest
/// effective deadline first; requests without a deadline are least urgent;
/// ties (including the all-deadline-less case) resolve FIFO, i.e. to the
/// lowest index.  `deadline_of(*it)` must yield a
/// std::optional<Clock::time_point>.
template <typename It, typename DeadlineOf>
It most_urgent(It first, It last, DeadlineOf&& deadline_of) {
  It best = first;
  for (It it = first; it != last; ++it) {
    const std::optional<Clock::time_point>& cand = deadline_of(*it);
    const std::optional<Clock::time_point>& cur = deadline_of(*best);
    if (cand && (!cur || *cand < *cur)) best = it;
  }
  return best;
}

}  // namespace detail

/// Index of the most urgent entry under the batcher's scheduling rule
/// (exposed so scheduling is deterministically testable).
std::size_t most_urgent_index(
    const std::vector<std::optional<Clock::time_point>>& deadlines);

class RouterService {
 public:
  explicit RouterService(std::shared_ptr<rl::SteinerSelector> selector,
                         RouterServiceConfig config = {});
  /// Shares an externally-owned experience store (e.g. one also feeding
  /// MCTS warm starts).  config.cache_capacity / experience_* are then
  /// ignored — the store's own tiers apply.
  RouterService(std::shared_ptr<rl::SteinerSelector> selector,
                RouterServiceConfig config,
                std::shared_ptr<experience::Store> store);
  /// Drains the queue (every submitted future still completes), then stops.
  ~RouterService();

  RouterService(const RouterService&) = delete;
  RouterService& operator=(const RouterService&) = delete;

  /// Enqueue a request.  Cache hits resolve before submit() returns.
  std::future<RouteReply> submit(RouteRequest request);

  /// Synchronous convenience wrapper.
  RouteReply route(std::shared_ptr<const HananGrid> grid);

  const RouterServiceConfig& config() const { return config_; }
  ServiceMetrics& metrics() { return metrics_; }
  /// Entries resident in the memory tier (the legacy cache-size view).
  std::size_t cache_size() const { return store_->memory_entries(); }
  /// The tiered experience store backing result memoization.
  experience::Store& experience() { return *store_; }
  const std::shared_ptr<experience::Store>& experience_ptr() const {
    return store_;
  }

  /// Times the batcher entered a timed straggler wait (cv wait_until).
  /// With batch_wait_ms == 0 this stays at zero — the regression hook for
  /// the zero-wait short-circuit.
  std::uint64_t timed_waits() const {
    return timed_waits_.load(std::memory_order_relaxed);
  }

  /// Point-in-time export of the process-global obs::MetricsRegistry in
  /// Prometheus exposition format / JSON.  Contains this service's
  /// families (request latency, batch occupancy, symmetry-cache hits) and
  /// every lower layer's (MazeRouter epochs, inference arena, ...);
  /// liveness gauges (queue depth, cache entries) are refreshed first.
  std::string scrape_prometheus();
  std::string scrape_json();

 private:
  struct Pending {
    RouteRequest request;
    std::promise<RouteReply> promise;
    CanonicalForm canon;
    Clock::time_point enqueued;
    /// Effective deadline: the request's own, else submit-time +
    /// SloConfig::default_deadline_ms (nullopt when neither applies).
    std::optional<Clock::time_point> deadline;
  };

  struct Batch {
    std::vector<Pending> items;
    /// When the leader left the queue — the start of batch assembly.
    Clock::time_point popped;
  };

  void batcher_loop();
  /// Blocks for work; an empty batch means "stopping and drained".
  Batch take_batch();
  void process_batch(Batch batch);
  /// Refreshes the liveness + percentile gauges ahead of a scrape.
  void refresh_gauges();
  /// Builds a reply from a stored record (maps canonical -> request space).
  RouteReply replay_cached(const RouteRequest& request, const CanonicalForm& canon,
                           const experience::ExperienceRecord& cached) const;
  /// True when some tier can answer (memory capacity > 0 or a disk tier).
  bool caching_enabled() const;

  RouterServiceConfig config_;
  std::shared_ptr<rl::SteinerSelector> selector_;
  std::shared_ptr<experience::Store> store_;
  ServiceMetrics metrics_;
  util::ThreadPool pool_;

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stopping_ = false;
  std::atomic<std::uint64_t> timed_waits_{0};
  std::thread batcher_;
};

}  // namespace oar::serve
