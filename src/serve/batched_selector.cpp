#include "serve/batched_selector.hpp"

#include <cassert>

#include "hanan/features.hpp"
#include "nn/activations.hpp"

namespace oar::serve {

std::vector<std::vector<double>> batched_fsp(rl::SteinerSelector& selector,
                                             const std::vector<const HananGrid*>& grids,
                                             util::ThreadPool* pool) {
  if (grids.empty()) return {};
  if (grids.size() == 1) return {selector.infer_fsp(*grids[0])};

  if (selector.int8_active()) {
    // The int8 engine is single-sample: loop instead of stacking.  Each
    // grid rebuilds the first-layer accumulator once (different grids
    // can't share a base), which the integer forward still amortizes.
    std::vector<std::vector<double>> fsp(grids.size());
    for (std::size_t i = 0; i < grids.size(); ++i) {
      fsp[i] = selector.infer_fsp(*grids[i]);
    }
    return fsp;
  }

  const std::int32_t N = std::int32_t(grids.size());
  const std::int32_t H = grids[0]->h_dim();
  const std::int32_t V = grids[0]->v_dim();
  const std::int32_t M = grids[0]->m_dim();
  const std::int32_t C = selector.config().unet.in_channels;
  for (const HananGrid* g : grids) {
    assert(g->h_dim() == H && g->v_dim() == V && g->m_dim() == M);
    (void)g;
  }

  assert(C == hanan::kNumFeatureChannels);
  nn::Tensor input({N, C, H, V, M});
  const std::int64_t sample = std::int64_t(C) * H * V * M;
  // Features go straight into each sample's slice of the stacked input —
  // no intermediate per-grid tensor.
  const auto encode_one = [&](std::size_t i) {
    hanan::encode_features_into(*grids[i], {},
                                input.data() + std::int64_t(i) * sample);
  };
  if (pool != nullptr && pool->size() > 1) {
    pool->parallel_for(grids.size(), encode_one);
  } else {
    for (std::size_t i = 0; i < grids.size(); ++i) encode_one(i);
  }

  // One batched pass; logits arrive as (N, 1, H, V, M) and the flat
  // (h, v, m) order of a sample IS the selection-priority order.
  const nn::Tensor logits = selector.net().forward_batch(input);
  const std::int64_t per = logits.numel() / N;

  std::vector<std::vector<double>> fsp(grids.size());
  for (std::int32_t i = 0; i < N; ++i) {
    fsp[std::size_t(i)].resize(std::size_t(per));
    nn::sigmoid_into(logits.data() + std::int64_t(i) * per, per,
                     fsp[std::size_t(i)].data());
  }
  return fsp;
}

}  // namespace oar::serve
