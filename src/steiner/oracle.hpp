#pragma once

// Oracle Steiner-point selector: exhaustive search over all subsets of
// valid vertices (up to a configurable subset size), routing each with the
// OARMST router and keeping the cheapest tree.
//
// This is what a *perfect* selector would achieve within the paper's
// Steiner-point-based framework, so it serves two purposes:
//  * ground truth for tests (every heuristic/learned router must be >= the
//    oracle cost, and equal it on instances the oracle fully enumerates);
//  * the headroom ablation (how much of the oracle gap the RL selector and
//    the algorithmic baselines close — see bench_oracle_headroom).
// Exponential, so only usable on small grids / subset sizes; evaluation is
// capped and the best-so-far is returned when the cap is reached.

#include "steiner/router_base.hpp"

namespace oar::steiner {

struct OracleConfig {
  /// Largest Steiner subset enumerated (also capped at n-2).
  std::int32_t max_steiner = 2;
  /// Hard cap on OARMST evaluations; 0 = unlimited.
  std::int64_t max_evaluations = 200000;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

class OracleRouter : public Router {
 public:
  explicit OracleRouter(OracleConfig config = {}) : config_(config) {
    config_.validate();
  }

  std::string name() const override { return "oracle"; }
  route::OarmstResult route(const HananGrid& grid) override;

  /// Number of OARMST evaluations spent by the last route() call.
  std::int64_t last_evaluations() const { return last_evaluations_; }
  /// True when the last route() enumerated every subset within
  /// config.max_steiner (i.e. was not truncated by max_evaluations).
  bool last_exhaustive() const { return last_exhaustive_; }

 private:
  OracleConfig config_;
  std::int64_t last_evaluations_ = 0;
  bool last_exhaustive_ = true;
};

}  // namespace oar::steiner
