#pragma once

// Text exporters over an obs::Snapshot (DESIGN.md §12).
//
//   to_prometheus — Prometheus exposition format 0.0.4: HELP/TYPE headers,
//     histograms as cumulative `_bucket{le="..."}` series plus `_sum` and
//     `_count`.  Scrapeable by any Prometheus-compatible collector.
//   to_json — one flat JSON object keyed by metric name; histograms carry
//     their bounds, per-bucket counts, sum and count.  The bench/service
//     snapshot artifact format.
//
// Both are deterministic for a given snapshot (families sorted by name,
// fixed float formatting), which is what the golden-file tests pin down.

#include <string>

#include "obs/metrics.hpp"

namespace oar::obs {

std::string to_prometheus(const Snapshot& snapshot);
std::string to_json(const Snapshot& snapshot);

/// Prometheus-style quantile estimate over a histogram sample: walks the
/// cumulative bucket counts to the one containing the q-th observation and
/// interpolates linearly inside it (each bucket's observations assumed
/// uniform).  `q` is in [0, 1] and is clamped.  The open +Inf bucket has no
/// upper bound, so a quantile landing there returns the last finite bound —
/// a deliberate under-estimate, same as Prometheus' histogram_quantile.
/// An empty histogram returns 0.
double histogram_quantile(const HistogramSample& sample, double q);

/// Convenience: exports of the process-global registry.
std::string scrape_prometheus();
std::string scrape_json();

/// Writes `text` to `path` (atomically via temp + rename is overkill for
/// diagnostics; this is a plain write).  Returns false when the file
/// cannot be opened.
bool write_text_file(const std::string& path, const std::string& text);

}  // namespace oar::obs
