// Anytime-search battery (DESIGN.md §16).
//
// The contract under test: with a deadline, run() stops claiming iterations
// once it has passed, but ALWAYS returns a valid critic-completed
// best-so-far state —
//   1. an already-expired deadline gets the one-iteration fallback (the
//      search never returns an empty tree),
//   2. best_selected routes to a connected OARMST whenever the deadline
//      fires mid-search,
//   3. a deadline that never fires leaves the run bitwise identical to the
//      unbounded one (serial, and serial vs 1-worker parallel),
//   4. the MctsRouter facade surfaces deadline_hit and still hands back a
//      connected tree.

#include <chrono>
#include <vector>

#include <gtest/gtest.h>

#include "core/mcts_router.hpp"
#include "gen/random_layout.hpp"
#include "mcts/parallel.hpp"
#include "route/oarmst.hpp"

namespace oar::mcts {
namespace {

rl::SelectorConfig tiny_config() {
  rl::SelectorConfig cfg;
  cfg.unet.base_channels = 4;
  cfg.unet.depth = 1;
  cfg.unet.seed = 33;
  return cfg;
}

HananGrid test_grid(std::uint64_t seed, std::int32_t pins = 4) {
  util::Rng rng(seed);
  gen::RandomGridSpec spec;
  spec.h = 6;
  spec.v = 6;
  spec.m = 2;
  spec.min_pins = pins;
  spec.max_pins = pins;
  spec.min_obstacles = 2;
  spec.max_obstacles = 4;
  spec.min_edge_cost = 1;
  spec.max_edge_cost = 10;
  return gen::random_grid(spec, rng);
}

CombMctsConfig quick_config(std::int32_t workers) {
  CombMctsConfig cfg;
  cfg.iterations_per_move = 24;
  cfg.use_critic = true;
  cfg.search_workers = workers;
  cfg.flush_us = 50;
  return cfg;
}

SearchDeadline expired_deadline() {
  return SearchClock::now() - std::chrono::milliseconds(5);
}

SearchDeadline far_deadline() {
  return SearchClock::now() + std::chrono::minutes(10);
}

void expect_bitwise_equal(const CombMctsResult& a, const CombMctsResult& b) {
  EXPECT_EQ(a.initial_cost, b.initial_cost);
  EXPECT_EQ(a.final_cost, b.final_cost);
  EXPECT_EQ(a.best_cost, b.best_cost);
  EXPECT_EQ(a.selected, b.selected);
  EXPECT_EQ(a.best_selected, b.best_selected);
  ASSERT_EQ(a.label.size(), b.label.size());
  for (std::size_t i = 0; i < a.label.size(); ++i) {
    EXPECT_EQ(a.label[i], b.label[i]) << "label diverges at priority " << i;
  }
  EXPECT_EQ(a.label_mask, b.label_mask);
  EXPECT_EQ(a.stats.iterations, b.stats.iterations);
  EXPECT_EQ(a.stats.expansions, b.stats.expansions);
  EXPECT_EQ(a.stats.simulations, b.stats.simulations);
  EXPECT_EQ(a.stats.nodes, b.stats.nodes);
  EXPECT_EQ(a.stats.executed_moves, b.stats.executed_moves);
}

/// The anytime invariant: the returned combination routes to a connected
/// tree (every best_selected entry was exact-evaluated by the search).
void expect_routes_connected(const HananGrid& grid,
                             const std::vector<Vertex>& combination) {
  route::OarmstRouter router(grid);
  const route::OarmstResult built =
      router.build(grid.pins(), combination, &route::local_router_scratch());
  EXPECT_TRUE(built.connected);
}

TEST(CombMctsAnytime, ExpiredDeadlineGetsOneIterationFallback) {
  rl::SteinerSelector selector(tiny_config());
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const HananGrid grid = test_grid(seed, 5);
    CombMcts search(selector, quick_config(1));
    const CombMctsResult res = search.run(grid, expired_deadline());
    EXPECT_TRUE(res.stats.deadline_hit);
    // Zero slack still buys exactly one iteration — never an empty result.
    EXPECT_EQ(res.stats.iterations, 1);
    EXPECT_EQ(res.stats.executed_moves, 0);
    expect_routes_connected(grid, res.best_selected);
  }
}

TEST(CombMctsAnytime, FarDeadlineBitwiseMatchesUnbounded) {
  rl::SteinerSelector selector(tiny_config());
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const HananGrid grid = test_grid(seed, 5);
    CombMcts unbounded(selector, quick_config(1));
    const CombMctsResult a = unbounded.run(grid);
    CombMcts bounded(selector, quick_config(1));
    const CombMctsResult b = bounded.run(grid, far_deadline());
    EXPECT_FALSE(b.stats.deadline_hit);
    expect_bitwise_equal(a, b);
  }
}

TEST(CombMctsAnytime, BestSelectedAlwaysRoutesConnected) {
  // Whatever the deadline, best_selected must stay a routable combination.
  rl::SteinerSelector selector(tiny_config());
  const HananGrid grid = test_grid(21, 5);
  CombMcts search(selector, quick_config(1));
  const CombMctsResult res = search.run(grid);
  EXPECT_FALSE(res.stats.deadline_hit);
  expect_routes_connected(grid, res.best_selected);
}

TEST(ParallelCombMctsAnytime, SingleWorkerFarDeadlineBitwiseSerial) {
  // Satellite gate: serial vs 1-worker parallel stay bitwise identical
  // when the deadline never fires.
  rl::SteinerSelector selector(tiny_config());
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const HananGrid grid = test_grid(seed, 5);
    CombMcts serial(selector, quick_config(1));
    const CombMctsResult a = serial.run(grid);
    ParallelCombMcts parallel(selector, quick_config(1));
    const CombMctsResult b = parallel.run(grid, far_deadline());
    EXPECT_FALSE(b.stats.deadline_hit);
    expect_bitwise_equal(a, b);
    EXPECT_EQ(b.stats.vloss_applied, b.stats.vloss_reverted);
  }
}

TEST(ParallelCombMctsAnytime, ExpiredDeadlineReturnsValidTree) {
  rl::SteinerSelector selector(tiny_config());
  for (std::int32_t workers : {1, 2, 4}) {
    SCOPED_TRACE("workers " + std::to_string(workers));
    ParallelCombMcts search(selector, quick_config(workers));
    const HananGrid grid = test_grid(5, 5);
    const CombMctsResult res = search.run(grid, expired_deadline());
    EXPECT_TRUE(res.stats.deadline_hit);
    // The zero-slack fallback: at least one completed iteration.
    EXPECT_GE(res.stats.iterations, 1);
    EXPECT_EQ(res.stats.vloss_applied, res.stats.vloss_reverted);
    expect_routes_connected(grid, res.best_selected);
  }
}

TEST(ParallelCombMctsAnytime, MidSearchDeadlineStillCompletes) {
  // A deadline a few ms out lands mid-search (or not at all on a fast
  // machine); either way the result must be a valid evaluated state.
  rl::SteinerSelector selector(tiny_config());
  ParallelCombMcts search(selector, quick_config(2));
  const HananGrid grid = test_grid(9, 5);
  const SearchDeadline deadline =
      SearchClock::now() + std::chrono::milliseconds(2);
  const CombMctsResult res = search.run(grid, deadline);
  EXPECT_GE(res.stats.iterations, 1);
  expect_routes_connected(grid, res.best_selected);
}

TEST(MctsRouterEngine, AnytimeRouteStaysValidAndFlags) {
  auto shared = std::make_shared<rl::SteinerSelector>(tiny_config());
  for (std::int32_t workers : {1, 2}) {
    SCOPED_TRACE("workers " + std::to_string(workers));
    core::MctsRouter router(shared, quick_config(workers));
    const HananGrid grid = test_grid(13, 5);
    const route::OarmstResult res = router.route(grid, expired_deadline());
    EXPECT_TRUE(router.last_stats().deadline_hit);
    EXPECT_TRUE(res.connected);
  }
}

TEST(MctsRouterEngine, AnytimeFarDeadlineMatchesPlainRoute) {
  auto shared = std::make_shared<rl::SteinerSelector>(tiny_config());
  core::MctsRouter a(shared, quick_config(1));
  core::MctsRouter b(shared, quick_config(1));
  const HananGrid grid = test_grid(17, 5);
  const route::OarmstResult plain = a.route(grid);
  const route::OarmstResult timed = b.route(grid, far_deadline());
  EXPECT_FALSE(b.last_stats().deadline_hit);
  EXPECT_EQ(plain.cost, timed.cost);
  EXPECT_EQ(plain.connected, timed.connected);
}

}  // namespace
}  // namespace oar::mcts
