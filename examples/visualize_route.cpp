// Route a layout with several routers and dump SVG renderings plus the
// layout itself in the text format, so results can be inspected visually
// and replayed.
//
// Usage: visualize_route [seed] [output_dir]
//   defaults: seed 42, output_dir "." — writes layout.oargrid and one
//   <router>.svg per router.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/oarsmtrl.hpp"

int main(int argc, char** argv) {
  using namespace oar;

  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  const std::string dir = argc > 2 ? argv[2] : ".";

  util::Rng rng(seed);
  gen::RandomGridSpec spec;
  spec.h = 14;
  spec.v = 14;
  spec.m = 2;
  spec.min_pins = 6;
  spec.max_pins = 8;
  spec.min_obstacles = 10;
  spec.max_obstacles = 16;
  spec.min_edge_cost = 1;
  spec.max_edge_cost = 4;
  const hanan::HananGrid grid = gen::random_grid(spec, rng);

  const std::string layout_path = dir + "/layout.oargrid";
  if (!gen::save_grid(grid, layout_path)) {
    std::printf("failed to write %s\n", layout_path.c_str());
    return 1;
  }
  std::printf("layout: %dx%dx%d, %zu pins -> %s\n", grid.h_dim(), grid.v_dim(),
              grid.m_dim(), grid.pins().size(), layout_path.c_str());

  auto& registry = core::RouterRegistry::instance();
  for (const std::string& name : {std::string("lin08"), std::string("lin18"),
                                  std::string("rl-ours")}) {
    auto router = registry.create(name);
    const auto result = router->route(grid);
    if (!result.connected) {
      std::printf("%-8s UNROUTABLE\n", name.c_str());
      continue;
    }
    const std::string svg_path = dir + "/" + name + ".svg";
    gen::save_svg(svg_path, grid, &result.tree, result.kept_steiner);
    std::printf("%-8s cost %8.1f, %2zu Steiner pts -> %s\n", name.c_str(),
                result.cost, result.kept_steiner.size(), svg_path.c_str());
  }
  return 0;
}
