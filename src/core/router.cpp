#include "core/router.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "core/mcts_router.hpp"
#include "core/pretrained.hpp"
#include "core/registry.hpp"
#include "util/timer.hpp"

namespace oar::core {

void RouterOptions::validate() const {
  if (engine.empty() || !RouterRegistry::instance().contains(engine)) {
    throw std::invalid_argument(
        "RouterOptions.engine must name a registered router (got '" + engine +
        "'); see RouterRegistry::names()");
  }
  if (use_service && engine != "rl-ours") {
    throw std::invalid_argument(
        "RouterOptions.use_service requires engine 'rl-ours' (got '" + engine +
        "'); the serving layer batches through the RL selector");
  }
  if (!(deadline_ms >= 0.0) || !std::isfinite(deadline_ms)) {
    throw std::invalid_argument(
        "RouterOptions.deadline_ms must be finite and non-negative (0 "
        "disables) (got " +
        std::to_string(deadline_ms) + ")");
  }
  if (experience_read_only && experience_path.empty()) {
    throw std::invalid_argument(
        "RouterOptions.experience_read_only requires experience_path to "
        "name an existing experience file");
  }
  rl.validate();
  mcts.validate();
  service.validate();
  chip.validate();
}

Router::Router(RouterOptions options) : options_(std::move(options)) {
  options_.validate();
}

Router::~Router() = default;

std::shared_ptr<rl::SteinerSelector> Router::shared_selector() {
  if (!selector_) selector_ = load_or_train_pretrained();
  return selector_;
}

std::shared_ptr<experience::Store> Router::shared_experience() {
  if (options_.experience_path.empty()) return nullptr;
  if (!experience_) {
    experience::StoreConfig sc;
    sc.memory_capacity = options_.service.cache_capacity;
    sc.path = options_.experience_path;
    sc.read_only = options_.experience_read_only;
    sc.flush_batch = options_.service.experience_flush_batch;
    experience_ = std::make_shared<experience::Store>(sc);
  }
  return experience_;
}

void Router::ensure_engine() {
  if (engine_) return;
  if (options_.engine == "rl-ours") {
    // Constructed directly (not via the registry) so options_.rl applies.
    engine_ = std::make_unique<RlRouter>(shared_selector(), options_.rl);
  } else if (options_.engine == "rl-mcts") {
    // Constructed directly so options_.mcts (iterations, search_workers,
    // eval_batch, flush_us, warm_start) applies; the shared experience
    // store (when configured) feeds warm starts and collects episodes.
    auto mcts_router = std::make_unique<MctsRouter>(
        shared_selector(), options_.mcts, shared_experience());
    mcts_engine_ = mcts_router.get();
    engine_ = std::move(mcts_router);
  } else {
    engine_ = RouterRegistry::instance().create(options_.engine);
  }
  if (!engine_) {
    throw std::runtime_error("core::Router: registry failed to create '" +
                             options_.engine + "'");
  }
}

void Router::ensure_service() {
  if (!service_) {
    if (std::shared_ptr<experience::Store> store = shared_experience()) {
      service_ = std::make_unique<serve::RouterService>(
          shared_selector(), options_.service, std::move(store));
    } else {
      service_ = std::make_unique<serve::RouterService>(shared_selector(),
                                                        options_.service);
    }
  }
}

RouteResult Router::finish(RouteResult out, double seconds) {
  out.total_seconds = seconds;
  if (options_.collect_obs) {
    out.obs = obs::MetricsRegistry::instance().snapshot();
  }
  return out;
}

RouteResult Router::route(const geom::Layout& layout, const Net& net) {
  auto grid =
      std::make_shared<hanan::HananGrid>(hanan::HananGrid::from_layout(layout));
  for (hanan::Vertex p : net.pins) {
    if (p < 0 || p >= grid->num_vertices()) {
      throw std::invalid_argument("core::Router: net '" + net.name + "' pin " +
                                  std::to_string(p) +
                                  " is outside the layout's Hanan grid (" +
                                  std::to_string(grid->num_vertices()) +
                                  " vertices)");
    }
    grid->add_pin(p);
  }
  return route(std::shared_ptr<const hanan::HananGrid>(std::move(grid)));
}

RouteResult Router::route(const hanan::HananGrid& grid) {
  return route(std::make_shared<const hanan::HananGrid>(grid));
}

RouteResult Router::route(std::shared_ptr<const hanan::HananGrid> grid) {
  util::Timer timer;
  RouteResult out;
  out.grid = grid;

  mcts::SearchDeadline deadline;
  if (options_.deadline_ms > 0.0) {
    deadline = mcts::SearchClock::now() +
               std::chrono::duration_cast<mcts::SearchClock::duration>(
                   std::chrono::duration<double, std::milli>(
                       options_.deadline_ms));
  }

  if (options_.use_service) {
    ensure_service();
    serve::RouteReply reply =
        service_->submit(serve::RouteRequest{std::move(grid), deadline}).get();
    out.grid = std::move(reply.grid);
    out.result = std::move(reply.result);
    out.cache_hit = reply.cache_hit;
    out.hit_tier = reply.hit_tier;
    out.status = reply.status;
    out.deadline_met = reply.deadline_met;
    out.engine = "rl-ours@service";
  } else {
    ensure_engine();
    if (deadline && mcts_engine_) {
      out.result = mcts_engine_->route(*out.grid, deadline);
      out.deadline_hit = mcts_engine_->last_stats().deadline_hit;
    } else {
      out.result = engine_->route(*out.grid);
    }
    out.engine = engine_->name();
    if (deadline && mcts::SearchClock::now() > *deadline) {
      out.deadline_met = false;
    }
  }
  return finish(std::move(out), timer.seconds());
}

ChipRouteResult Router::route(const hanan::HananGrid& grid,
                              const chip::Netlist& netlist) {
  util::Timer timer;
  ensure_engine();
  chip::ChipRouter chip_router(grid, options_.chip);
  ChipRouteResult out;
  out.result = chip_router.route(netlist, *engine_);
  out.engine = engine_->name();
  out.total_seconds = timer.seconds();
  if (options_.collect_obs) {
    out.obs = obs::MetricsRegistry::instance().snapshot();
  }
  return out;
}

RouteResult route(const geom::Layout& layout, const Net& net,
                  RouterOptions options) {
  Router router(std::move(options));
  return router.route(layout, net);
}

}  // namespace oar::core
