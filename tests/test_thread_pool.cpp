#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace oar::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto f1 = pool.submit([] { return 21 * 2; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroCount) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ManySmallTasks) {
  ThreadPool pool(8);
  std::atomic<long> total{0};
  pool.parallel_for(1000, [&](std::size_t i) { total += long(i); });
  EXPECT_EQ(total.load(), 999L * 1000 / 2);
}

}  // namespace
}  // namespace oar::util
