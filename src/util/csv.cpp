#include "util/csv.hpp"

namespace oar::util {

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : out_(path) {
  row(header);
}

std::string CsvWriter::escape(const std::string& value) {
  if (value.find_first_of(",\"\n") == std::string::npos) return value;
  std::string escaped = "\"";
  for (char c : value) {
    if (c == '"') escaped += '"';
    escaped += c;
  }
  escaped += '"';
  return escaped;
}

void CsvWriter::row(const std::vector<std::string>& values) {
  if (!out_) return;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(values[i]);
  }
  out_ << '\n';
}

}  // namespace oar::util
