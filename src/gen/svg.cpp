#include "gen/svg.hpp"

#include <fstream>
#include <sstream>
#include <unordered_set>

namespace oar::gen {

namespace {

struct PanelGeometry {
  double cell, margin, gap, panel_w, panel_h;

  double x(std::int32_t layer, std::int32_t h) const {
    return margin + double(layer) * (panel_w + gap) + double(h) * cell + cell / 2;
  }
  double y(std::int32_t v_dim, std::int32_t v) const {
    // SVG y grows downward; flip so that v grows upward like a floorplan.
    return margin + double(v_dim - 1 - v) * cell + cell / 2;
  }
};

}  // namespace

std::string render_svg(const hanan::HananGrid& grid, const route::RouteTree* tree,
                       const std::vector<hanan::Vertex>& steiner_points,
                       const SvgOptions& options) {
  const std::int32_t H = grid.h_dim(), V = grid.v_dim(), M = grid.m_dim();
  PanelGeometry g{options.cell_size, options.margin, options.layer_gap,
                  double(H) * options.cell_size, double(V) * options.cell_size};
  const double width = 2 * g.margin + double(M) * g.panel_w + double(M - 1) * g.gap;
  const double height = 2 * g.margin + g.panel_h + 16.0;

  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width
      << "\" height=\"" << height << "\">\n";
  svg << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";

  // Panels: frame, optional grid lines, obstacles.
  for (std::int32_t m = 0; m < M; ++m) {
    const double px = g.margin + double(m) * (g.panel_w + g.gap);
    svg << "<rect x=\"" << px << "\" y=\"" << g.margin << "\" width=\"" << g.panel_w
        << "\" height=\"" << g.panel_h
        << "\" fill=\"none\" stroke=\"#999\" stroke-width=\"1\"/>\n";
    svg << "<text x=\"" << px + 4 << "\" y=\"" << g.margin + g.panel_h + 14
        << "\" font-size=\"12\" fill=\"#333\">layer " << m << "</text>\n";
    if (options.draw_grid_lines) {
      svg << "<g stroke=\"#eee\" stroke-width=\"0.5\">\n";
      for (std::int32_t h = 0; h < H; ++h) {
        const double x = g.x(m, h);
        svg << "<line x1=\"" << x << "\" y1=\"" << g.margin << "\" x2=\"" << x
            << "\" y2=\"" << g.margin + g.panel_h << "\"/>\n";
      }
      for (std::int32_t v = 0; v < V; ++v) {
        const double y = g.y(V, v);
        svg << "<line x1=\"" << px << "\" y1=\"" << y << "\" x2=\"" << px + g.panel_w
            << "\" y2=\"" << y << "\"/>\n";
      }
      svg << "</g>\n";
    }
  }

  // Obstacles.
  svg << "<g fill=\"#bbb\">\n";
  for (hanan::Vertex idx = 0; idx < grid.num_vertices(); ++idx) {
    if (!grid.is_blocked(idx)) continue;
    const auto c = grid.cell(idx);
    svg << "<rect x=\"" << g.x(c.m, c.h) - g.cell * 0.4 << "\" y=\""
        << g.y(V, c.v) - g.cell * 0.4 << "\" width=\"" << g.cell * 0.8
        << "\" height=\"" << g.cell * 0.8 << "\"/>\n";
  }
  svg << "</g>\n";

  // Tree edges.
  if (tree != nullptr) {
    svg << "<g stroke=\"" << options.wire_color << "\" stroke-width=\"2\">\n";
    for (const auto& e : tree->edges()) {
      const auto a = grid.cell(e.a);
      const auto b = grid.cell(e.b);
      if (a.m == b.m) {
        svg << "<line x1=\"" << g.x(a.m, a.h) << "\" y1=\"" << g.y(V, a.v)
            << "\" x2=\"" << g.x(b.m, b.h) << "\" y2=\"" << g.y(V, b.v) << "\"/>\n";
      }
    }
    svg << "</g>\n<g fill=\"" << options.via_color << "\">\n";
    for (const auto& e : tree->edges()) {
      const auto a = grid.cell(e.a);
      const auto b = grid.cell(e.b);
      if (a.m == b.m) continue;
      for (const auto& c : {a, b}) {
        svg << "<rect x=\"" << g.x(c.m, c.h) - 3 << "\" y=\"" << g.y(V, c.v) - 3
            << "\" width=\"6\" height=\"6\"/>\n";
      }
    }
    svg << "</g>\n";
  }

  // Steiner points and pins on top.
  svg << "<g fill=\"" << options.steiner_color << "\">\n";
  for (hanan::Vertex s : steiner_points) {
    const auto c = grid.cell(s);
    svg << "<circle cx=\"" << g.x(c.m, c.h) << "\" cy=\"" << g.y(V, c.v)
        << "\" r=\"4\"/>\n";
  }
  svg << "</g>\n<g fill=\"black\">\n";
  for (hanan::Vertex p : grid.pins()) {
    const auto c = grid.cell(p);
    svg << "<circle cx=\"" << g.x(c.m, c.h) << "\" cy=\"" << g.y(V, c.v)
        << "\" r=\"3.5\"/>\n";
  }
  svg << "</g>\n</svg>\n";
  return svg.str();
}

bool save_svg(const std::string& path, const hanan::HananGrid& grid,
              const route::RouteTree* tree,
              const std::vector<hanan::Vertex>& steiner_points,
              const SvgOptions& options) {
  std::ofstream out(path);
  if (!out) return false;
  out << render_svg(grid, tree, steiner_points, options);
  return bool(out);
}

}  // namespace oar::gen
