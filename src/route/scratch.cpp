#include "route/scratch.hpp"

#include "obs/metrics.hpp"

namespace oar::route {

RouterScratch& local_router_scratch() {
  thread_local RouterScratch scratch;
  thread_local const bool counted = [] {
    obs::MetricsRegistry::instance()
        .counter("oar_route_scratch_created_total",
                 "Per-thread RouterScratch pools created (each amortizes "
                 "O(V) maze arrays across every later build on its thread)")
        .inc();
    return true;
  }();
  (void)counted;
  return scratch;
}

}  // namespace oar::route
