#include "chip/chip_router.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "util/timer.hpp"
#include "util/validate.hpp"

namespace oar::chip {

namespace {

// Registered once, incremented lock-free ever after (DESIGN.md §12).
struct ChipObs {
  obs::Counter& runs;
  obs::Counter& nets_routed;
  obs::Counter& ripups;
  obs::Counter& iterations;
  obs::Gauge& last_overflow;
  obs::Gauge& last_wirelength;
  obs::Gauge& last_vias;
  obs::Gauge& last_iterations;
  obs::Gauge& nets_per_sec;
  obs::Histogram& net_seconds;
  obs::Histogram& iteration_overflow;
};

ChipObs& chip_obs() {
  auto& reg = obs::MetricsRegistry::instance();
  static ChipObs o{
      reg.counter("oar_chip_runs_total", "Full-chip netlist routing runs"),
      reg.counter("oar_chip_nets_routed_total",
                  "Single-net engine invocations by the negotiation loop"),
      reg.counter("oar_chip_ripups_total",
                  "Committed nets ripped up for rerouting"),
      reg.counter("oar_chip_iterations_total",
                  "Negotiation iterations executed"),
      reg.gauge("oar_chip_last_overflow",
                "Final edge-capacity overflow of the last run (0 = legal)"),
      reg.gauge("oar_chip_last_wirelength",
                "Final committed base-cost wirelength of the last run"),
      reg.gauge("oar_chip_last_vias",
                "Final committed via-edge count of the last run"),
      reg.gauge("oar_chip_last_iterations",
                "Negotiation iterations used by the last run"),
      reg.gauge("oar_chip_nets_per_sec",
                "Net routes per second over the last run"),
      reg.histogram("oar_chip_net_route_seconds", obs::latency_buckets(),
                    "Latency of one single-net engine call"),
      reg.histogram("oar_chip_iteration_overflow", obs::pow2_buckets(20),
                    "Edge-capacity overflow after each negotiation iteration"),
  };
  return o;
}

}  // namespace

void ChipConfig::validate() const {
  util::check_field(max_iterations >= 1, "ChipConfig", "max_iterations",
                    "be >= 1", max_iterations);
  util::check_field(edge_capacity >= 1, "ChipConfig", "edge_capacity",
                    "be >= 1", edge_capacity);
  util::check_field(present_factor >= 0.0, "ChipConfig", "present_factor",
                    "be >= 0", present_factor);
  util::check_field(present_growth >= 1.0, "ChipConfig", "present_growth",
                    "be >= 1", present_growth);
  util::check_field(history_increment >= 0.0, "ChipConfig",
                    "history_increment", "be >= 0", history_increment);
}

double tree_wirelength(const HananGrid& grid, const route::RouteTree& tree) {
  double total = 0.0;
  for (const auto& e : tree.edges()) total += grid.base_cost_between(e.a, e.b);
  return total;
}

std::int32_t tree_vias(const HananGrid& grid, const route::RouteTree& tree) {
  std::int32_t vias = 0;
  for (const auto& e : tree.edges()) {
    if (edge_dir(grid, e.a, e.b) == Dir::kPosZ) ++vias;
  }
  return vias;
}

ChipRouter::ChipRouter(const HananGrid& grid, ChipConfig config)
    : template_grid_(grid), config_(std::move(config)) {
  config_.validate();
  if (!template_grid_.pins().empty()) {
    throw std::invalid_argument(
        "ChipRouter grid must not carry pins of its own (each net brings "
        "its pins; got " +
        std::to_string(template_grid_.pins().size()) + " grid pins)");
  }
}

ChipResult ChipRouter::route(const Netlist& netlist, steiner::Router& engine) {
  if (const std::string problem = netlist.validate(template_grid_);
      !problem.empty()) {
    throw std::invalid_argument(problem);
  }

  util::Timer total_timer;
  ChipObs& ob = chip_obs();
  ob.runs.inc();

  // Fresh working grid per run so earlier results stay bound to theirs.
  auto grid = std::make_shared<HananGrid>(template_grid_);
  const std::size_t n = netlist.nets.size();
  CongestionMap congestion(*grid, config_.edge_capacity);
  const std::vector<std::size_t> sequence =
      order_nets(*grid, netlist.nets, config_.order, config_.order_key);

  std::vector<route::RouteTree> trees(n);
  std::vector<char> committed(n, 0);
  // Congestion never removes edges, so reachability is static: a net that
  // fails to connect once can never connect and is not retried.
  std::vector<char> unroutable(n, 0);
  std::vector<std::int32_t> reroutes(n, 0);
  std::int64_t engine_calls = 0;

  ChipResult result;
  double present = config_.present_factor;

  for (std::int32_t iter = 0; iter < config_.max_iterations; ++iter) {
    util::Timer iter_timer;
    std::int32_t rerouted = 0;
    for (const std::size_t idx : sequence) {
      const Net& net = netlist.nets[idx];
      if (unroutable[idx]) continue;
      const bool contested =
          committed[idx] && congestion.tree_overflows(trees[idx]);
      const bool reroute = iter == 0 || !committed[idx] ||
                           !config_.reroute_only_overflowed || contested;
      if (!reroute) continue;

      if (committed[idx]) {
        congestion.rip_up(trees[idx]);
        committed[idx] = 0;
        ob.ripups.inc();
      }
      // Price the layout as this net would find it: everyone else's usage
      // plus accrued history.  The overlay write bumps revision() so the
      // engine's maze/feature caches rebuild exactly when costs changed.
      congestion.apply_to(*grid, present);
      grid->clear_pins();
      for (const Vertex p : net.pins) grid->add_pin(p);

      util::Timer net_timer;
      route::OarmstResult routed = engine.route(*grid);
      ob.net_seconds.observe(net_timer.seconds());
      ob.nets_routed.inc();
      ++engine_calls;
      ++reroutes[idx];
      ++rerouted;

      if (routed.connected) {
        trees[idx] = std::move(routed.tree);
        congestion.commit(trees[idx]);
        committed[idx] = 1;
      } else {
        trees[idx] = route::RouteTree(grid.get());
        unroutable[idx] = 1;
      }
    }

    result.iterations_run = iter + 1;
    ob.iterations.inc();

    const std::int64_t overflow = congestion.overflow();
    double committed_wl = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (committed[i]) committed_wl += tree_wirelength(*grid, trees[i]);
    }
    result.iterations.push_back(IterationStats{
        iter, overflow, congestion.overflowed_edges(), rerouted, present,
        committed_wl, iter_timer.seconds()});
    ob.iteration_overflow.observe(double(overflow));

    const bool all_routed =
        std::all_of(committed.begin(), committed.end(),
                    [](char c) { return c != 0; });
    if (overflow == 0 && all_routed) break;
    // No overflow left but some net is unroutable even on the bare grid:
    // more negotiation cannot help, stop instead of burning the cap.
    if (overflow == 0 && rerouted == 0) break;

    congestion.add_history(config_.history_increment);
    present *= config_.present_growth;
  }

  // Hand back a quiescent grid: no pins, no overlay — RouteTree::cost()
  // on the final trees is then the base (physical) cost.
  grid->clear_pins();
  grid->clear_edge_cost_biases();

  result.nets.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    NetRoute net_route;
    net_route.name = netlist.nets[i].name;
    net_route.tree = std::move(trees[i]);
    net_route.tree.rebind_grid(grid.get());
    net_route.reroutes = reroutes[i];
    net_route.routed = committed[i] != 0;
    if (net_route.routed) {
      net_route.wirelength = tree_wirelength(*grid, net_route.tree);
      net_route.vias = tree_vias(*grid, net_route.tree);
      result.wirelength += net_route.wirelength;
      result.via_count += net_route.vias;
      ++result.routed;
    } else {
      ++result.failed;
    }
    result.nets.push_back(std::move(net_route));
  }
  result.overflow = congestion.overflow();
  result.success = result.failed == 0 && result.overflow == 0;
  result.grid = std::move(grid);
  result.total_seconds = total_timer.seconds();

  ob.last_overflow.set(double(result.overflow));
  ob.last_wirelength.set(result.wirelength);
  ob.last_vias.set(double(result.via_count));
  ob.last_iterations.set(double(result.iterations_run));
  ob.nets_per_sec.set(result.total_seconds > 0.0
                          ? double(engine_calls) / result.total_seconds
                          : 0.0);
  return result;
}

}  // namespace oar::chip
