#include "nn/quant/simd.hpp"

#include <cstdlib>
#include <cstring>

#include "util/logging.hpp"

namespace oar::nn::simd {

// ---------------------------------------------------------------------------
// Scalar reference kernels.  Every vector level must reproduce these int32
// accumulators bit for bit (integer arithmetic only — see simd.hpp).
// ---------------------------------------------------------------------------

namespace {

void conv3_nhwc_scalar(const std::uint8_t* act, std::int32_t D0, std::int32_t D1,
                       std::int32_t D2, std::int32_t ICp, const std::int8_t* wp,
                       std::int32_t OC, std::int32_t* acc) {
  const std::int32_t G = ICp / 4;
  std::int32_t* out = acc;
  for (std::int32_t o0 = 0; o0 < D0; ++o0) {
    for (std::int32_t o1 = 0; o1 < D1; ++o1) {
      for (std::int32_t o2 = 0; o2 < D2; ++o2, out += OC) {
        for (std::int32_t oc = 0; oc < OC; ++oc) out[oc] = 0;
        for (std::int32_t k0 = 0; k0 < 3; ++k0) {
          const std::int32_t z0 = o0 + k0 - 1;
          if (z0 < 0 || z0 >= D0) continue;
          for (std::int32_t k1 = 0; k1 < 3; ++k1) {
            const std::int32_t z1 = o1 + k1 - 1;
            if (z1 < 0 || z1 >= D1) continue;
            for (std::int32_t k2 = 0; k2 < 3; ++k2) {
              const std::int32_t z2 = o2 + k2 - 1;
              if (z2 < 0 || z2 >= D2) continue;
              const std::uint8_t* a =
                  act + (std::int64_t(z0) * D1 + z1) * D2 * ICp +
                  std::int64_t(z2) * ICp;
              const std::int32_t tap = (k0 * 3 + k1) * 3 + k2;
              const std::int8_t* w =
                  wp + std::int64_t(tap) * G * OC * 4;
              for (std::int32_t g = 0; g < G; ++g) {
                const std::uint8_t* ag = a + 4 * g;
                const std::int8_t* wg = w + std::int64_t(g) * OC * 4;
                for (std::int32_t oc = 0; oc < OC; ++oc) {
                  const std::int8_t* wo = wg + oc * 4;
                  out[oc] += std::int32_t(ag[0]) * wo[0] +
                             std::int32_t(ag[1]) * wo[1] +
                             std::int32_t(ag[2]) * wo[2] +
                             std::int32_t(ag[3]) * wo[3];
                }
              }
            }
          }
        }
      }
    }
  }
}

void conv1_nhwc_scalar(const std::uint8_t* act, std::int64_t S, std::int32_t ICp,
                       const std::int8_t* wp, std::int32_t OC,
                       std::int32_t* acc) {
  const std::int32_t G = ICp / 4;
  for (std::int64_t v = 0; v < S; ++v) {
    const std::uint8_t* a = act + v * ICp;
    std::int32_t* out = acc + v * OC;
    for (std::int32_t oc = 0; oc < OC; ++oc) out[oc] = 0;
    for (std::int32_t g = 0; g < G; ++g) {
      const std::uint8_t* ag = a + 4 * g;
      const std::int8_t* wg = wp + std::int64_t(g) * OC * 4;
      for (std::int32_t oc = 0; oc < OC; ++oc) {
        const std::int8_t* wo = wg + oc * 4;
        out[oc] += std::int32_t(ag[0]) * wo[0] + std::int32_t(ag[1]) * wo[1] +
                   std::int32_t(ag[2]) * wo[2] + std::int32_t(ag[3]) * wo[3];
      }
    }
  }
}

constexpr Kernels kScalarKernels{conv3_nhwc_scalar, conv1_nhwc_scalar};

}  // namespace

// Vector kernel tables, defined in simd_x86.cpp / simd_neon.cpp.  Null on
// platforms where the TU compiles empty.
namespace detail {
const Kernels* avx2_kernels();      // simd_x86.cpp
const Kernels* avx2_vnni_kernels();  // simd_x86.cpp
const Kernels* neon_kernels();       // simd_neon.cpp
}  // namespace detail

const char* level_name(Level level) {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kAvx2: return "avx2";
    case Level::kAvx2Vnni: return "avx2+vnni";
    case Level::kNeon: return "neon";
  }
  return "unknown";
}

const Kernels* kernels_for(Level level) {
  switch (level) {
    case Level::kScalar: return &kScalarKernels;
    case Level::kAvx2: return detail::avx2_kernels();
    case Level::kAvx2Vnni: return detail::avx2_vnni_kernels();
    case Level::kNeon: return detail::neon_kernels();
  }
  return nullptr;
}

bool level_supported(Level level) { return kernels_for(level) != nullptr; }

namespace {

bool env_truthy(const char* v) {
  return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

Level best_level(bool has_avx2, bool has_vnni, bool has_neon) {
  if (has_neon) return Level::kNeon;
  if (has_vnni) return Level::kAvx2Vnni;
  if (has_avx2) return Level::kAvx2;
  return Level::kScalar;
}

struct Chosen {
  Level level = Level::kScalar;
  bool forced_scalar = false;
};

Chosen choose_once() {
  Chosen c;
  const bool has_avx2 = level_supported(Level::kAvx2);
  const bool has_vnni = level_supported(Level::kAvx2Vnni);
  const bool has_neon = level_supported(Level::kNeon);
  const char* force = std::getenv("OARSMTRL_FORCE_SCALAR");
  c.forced_scalar = env_truthy(force);
  c.level = choose_level(force, std::getenv("OARSMTRL_SIMD"), has_avx2,
                         has_vnni, has_neon);
  util::log_info("nn::simd dispatch: ", level_name(c.level),
                 c.forced_scalar ? " (OARSMTRL_FORCE_SCALAR)" : "");
  return c;
}

const Chosen& chosen() {
  static const Chosen c = choose_once();
  return c;
}

}  // namespace

Level choose_level(const char* force_scalar_env, const char* simd_env,
                   bool has_avx2, bool has_vnni, bool has_neon) {
  if (env_truthy(force_scalar_env)) return Level::kScalar;
  if (simd_env != nullptr && simd_env[0] != '\0') {
    if (std::strcmp(simd_env, "scalar") == 0) return Level::kScalar;
    if (std::strcmp(simd_env, "avx2") == 0 && has_avx2) return Level::kAvx2;
    if (std::strcmp(simd_env, "vnni") == 0 && has_vnni) return Level::kAvx2Vnni;
    if (std::strcmp(simd_env, "neon") == 0 && has_neon) return Level::kNeon;
    // Unknown or unsupported request: fall through to the best level.
  }
  return best_level(has_avx2, has_vnni, has_neon);
}

Level dispatch_level() { return chosen().level; }

bool force_scalar_active() { return chosen().forced_scalar; }

const Kernels& dispatch() { return *kernels_for(dispatch_level()); }

}  // namespace oar::nn::simd
