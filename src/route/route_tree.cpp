#include "route/route_tree.hpp"

#include <algorithm>
#include <cassert>
#include <queue>
#include <sstream>

namespace oar::route {

bool RouteTree::add_edge(Vertex a, Vertex b) {
  assert(a != b);
  if (a > b) std::swap(a, b);
  if (!edge_keys_.insert(key(a, b)).second) return false;
  edges_.push_back(GridEdge{a, b});
  ++degree_[a];
  ++degree_[b];
  return true;
}

void RouteTree::add_path(const std::vector<Vertex>& path) {
  for (std::size_t i = 0; i + 1 < path.size(); ++i) add_edge(path[i], path[i + 1]);
}

int RouteTree::degree(Vertex v) const {
  const auto it = degree_.find(v);
  return it == degree_.end() ? 0 : it->second;
}

double RouteTree::cost() const {
  assert(grid_ != nullptr);
  double total = 0.0;
  for (const auto& e : edges_) total += grid_->cost_between(e.a, e.b);
  return total;
}

std::vector<Vertex> RouteTree::vertices() const {
  std::vector<Vertex> vs;
  vs.reserve(degree_.size());
  for (const auto& [v, _] : degree_) vs.push_back(v);
  std::sort(vs.begin(), vs.end());
  return vs;
}

std::string RouteTree::validate(const std::vector<Vertex>& terminals) const {
  std::ostringstream problems;
  assert(grid_ != nullptr);

  // Every edge must connect adjacent, usable vertices.
  for (const auto& e : edges_) {
    const auto ca = grid_->cell(e.a);
    const auto cb = grid_->cell(e.b);
    const int dh = std::abs(ca.h - cb.h), dv = std::abs(ca.v - cb.v),
              dm = std::abs(ca.m - cb.m);
    if (dh + dv + dm != 1) problems << "non-adjacent edge; ";
    if (grid_->is_blocked(e.a) || grid_->is_blocked(e.b)) {
      problems << "edge touches blocked vertex; ";
    }
    const Vertex lo = std::min(e.a, e.b);
    hanan::Dir dir = hanan::Dir::kPosX;
    if (dv == 1) dir = hanan::Dir::kPosY;
    if (dm == 1) dir = hanan::Dir::kPosZ;
    if (!grid_->edge_usable(lo, dir)) problems << "unusable edge in tree; ";
  }

  if (terminals.empty()) return problems.str();

  // Connectivity: BFS over tree edges from the first terminal.
  std::unordered_map<Vertex, std::vector<Vertex>> adj;
  for (const auto& e : edges_) {
    adj[e.a].push_back(e.b);
    adj[e.b].push_back(e.a);
  }
  std::unordered_set<Vertex> seen;
  std::queue<Vertex> frontier;
  frontier.push(terminals.front());
  seen.insert(terminals.front());
  while (!frontier.empty()) {
    const Vertex u = frontier.front();
    frontier.pop();
    for (Vertex nb : adj[u]) {
      if (seen.insert(nb).second) frontier.push(nb);
    }
  }
  for (Vertex t : terminals) {
    if (!seen.count(t)) problems << "terminal unreached; ";
  }

  // Acyclic: |E| == |V| - 1 for a connected tree over its touched vertices.
  if (!edges_.empty() && seen.size() == degree_.size() &&
      edges_.size() != degree_.size() - 1) {
    problems << "cycle detected (|E| != |V|-1); ";
  }
  return problems.str();
}

}  // namespace oar::route
