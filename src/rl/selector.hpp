#pragma once

// The Steiner-point selector: the paper's agent (Sec. 3.1, 3.3).
//
// Wraps the 3D Residual U-Net: encodes a Hanan-grid layout (plus any
// already-selected Steiner points, treated as pins) into the 7-channel
// feature volume, runs one inference, and returns the per-vertex *final
// selected probability* fsp(v) after the sigmoid.  Probabilities are
// returned in selection-priority order — flat index (h*V + v)*M + m, the
// lexicographic (h, v, m) order the combinatorial MCTS uses — so
// fsp[grid.priority_of(vertex)] is the probability of `vertex`.

#include <memory>
#include <string>
#include <vector>

#include "hanan/features.hpp"
#include "nn/quant/quantize.hpp"
#include "nn/unet3d.hpp"

namespace oar::rl {

using hanan::HananGrid;
using hanan::Vertex;

struct SelectorConfig {
  nn::UNet3dConfig unet;
  /// Inference-path settings (precision + int8 accuracy-gate thresholds).
  nn::InferConfig infer;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const {
    unet.validate();
    infer.validate();
  }
};

class SteinerSelector {
 public:
  /// A fresh selector starts in inference mode (net().training() false):
  /// fsp queries run the single-sample inference engine (tiled kernels,
  /// arena temporaries, incremental feature cache — DESIGN.md §11).
  /// Gradient consumers (fit_dataset, PPO updates, gradcheck) switch the
  /// net to training mode for the duration of the pass and restore it.
  explicit SteinerSelector(SelectorConfig config = {});
  ~SteinerSelector();
  SteinerSelector(SteinerSelector&&) = default;
  SteinerSelector& operator=(SteinerSelector&&) = default;

  /// Encode a layout (with optional extra pins) as the network input.
  static nn::Tensor encode(const HananGrid& grid,
                           const std::vector<Vertex>& extra_pins = {});

  /// fsp(v) for every vertex, in priority order.  One network inference.
  std::vector<double> infer_fsp(const HananGrid& grid,
                                const std::vector<Vertex>& extra_pins = {});

  /// Allocation-free variant for the MCTS hot loop: writes fsp into the
  /// caller's buffer (resized to the vertex count).  In inference mode the
  /// features go straight into an arena input tensor (patched from the
  /// FeatureCache), the net runs infer(), and the sigmoid readout is one
  /// bulk pass — zero heap allocations once warm.  In training mode it
  /// falls back to the reference encode + forward path.
  void infer_fsp_into(const HananGrid& grid, const std::vector<Vertex>& extra_pins,
                      std::vector<double>& out);

  /// Select the `k` valid vertices with the highest fsp (valid: not a pin,
  /// not blocked, not in `extra_pins`).  This is the paper's top-(n-2)
  /// selection (Fig. 2).
  std::vector<Vertex> select_steiner_points(const HananGrid& grid, std::int32_t k,
                                            const std::vector<Vertex>& extra_pins = {});

  /// Same but from a precomputed fsp array (avoids re-inferring).
  static std::vector<Vertex> top_k_valid(const HananGrid& grid,
                                         const std::vector<double>& fsp,
                                         std::int32_t k,
                                         const std::vector<Vertex>& extra_pins);

  nn::UNet3d& net() { return net_; }
  const SelectorConfig& config() const { return config_; }
  hanan::FeatureCache& feature_cache() { return features_; }

  // --- int8 inference path (DESIGN.md §17) ------------------------------
  /// Calibrate the quantized engine on representative layouts (encoded
  /// without extra pins) and switch the precision to kInt8.  Throws
  /// std::invalid_argument on an empty sample set.
  void calibrate_int8(const std::vector<const HananGrid*>& grids);
  /// The quantized engine, or nullptr before calibration / after a weight
  /// reload invalidated the pack.
  nn::quant::QuantizedUNet3d* int8_engine() { return int8_.get(); }
  /// True when fsp queries are served by the int8 engine (pack present,
  /// precision kInt8, net in inference mode).
  bool int8_active() const;
  /// Flip the precision without touching the pack (the accuracy gate's
  /// fallback calls this with kFp32).
  void set_precision(nn::InferConfig::Precision p);
  /// int8 forward straight from a channel-major feature volume — the
  /// EvalServer / BatchedSelector entry point (they encode features
  /// themselves).  Requires int8_engine() != nullptr.
  void infer_fsp_from_features(const float* features, std::int32_t H,
                               std::int32_t V, std::int32_t M,
                               std::vector<double>& out);

  bool save(const std::string& path);
  /// load / copy_weights_from drop the int8 pack (weights changed); the
  /// engine silently serves fp32 until the next calibrate_int8().
  bool load(const std::string& path);
  void copy_weights_from(SteinerSelector& other);

 private:
  struct Int8Accum;  // grid-keyed first-layer accumulator cache

  void infer_fsp_int8(const HananGrid& grid,
                      const std::vector<Vertex>& extra_pins,
                      std::vector<double>& out);

  SelectorConfig config_;
  nn::UNet3d net_;
  hanan::FeatureCache features_;  // single-entry (grid, revision) base cache
  std::unique_ptr<nn::quant::QuantizedUNet3d> int8_;
  std::unique_ptr<Int8Accum> accum_;
};

}  // namespace oar::rl
