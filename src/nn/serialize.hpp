#pragma once

// Binary checkpointing of module parameters.
//
// Format: magic "OARNN1\n", int32 parameter count, then per parameter:
// int32 name length + bytes, int32 rank, int32 dims..., float32 data.
// Loading verifies that names and shapes match the module being restored.

#include <string>

#include "nn/module.hpp"

namespace oar::nn {

/// Writes all parameters of `module` to `path`.  Returns false on I/O error.
bool save_parameters(Module& module, const std::string& path);

/// Restores parameters saved by save_parameters.  Returns false on I/O
/// error or any name/shape mismatch (module left unchanged on mismatch of
/// the header; partially written on later mismatch — callers treat false as
/// fatal).
bool load_parameters(Module& module, const std::string& path);

/// Copies parameter values from `src` into `dst` (identical architectures
/// required; asserts on shape mismatch).  Used to clone a selector per
/// worker thread for parallel sample generation.
void copy_parameters(Module& dst, Module& src);

}  // namespace oar::nn
