#pragma once

// Shared config-validation helpers.  Every *Config::validate() in the
// repository reports failures through check_field(), so the message format
// is uniform and greppable:
//
//   <Struct>.<field> must <requirement> (got <value>)
//
// validate() is called by the consuming constructor (Liu14Router,
// RouterService, CombTrainer, ...), so a bad value fails fast at the API
// boundary with the offending field named, instead of surfacing as an
// assert or silent misbehavior deep in the stack.

#include <sstream>
#include <stdexcept>
#include <string>

namespace oar::util {

template <typename T>
[[noreturn]] void fail_field(const char* struct_name, const char* field,
                             const char* requirement, const T& got) {
  std::ostringstream oss;
  oss << struct_name << "." << field << " must " << requirement << " (got "
      << got << ")";
  throw std::invalid_argument(oss.str());
}

/// Throws std::invalid_argument naming the offending field when !ok.
template <typename T>
void check_field(bool ok, const char* struct_name, const char* field,
                 const char* requirement, const T& got) {
  if (!ok) fail_field(struct_name, field, requirement, got);
}

}  // namespace oar::util
