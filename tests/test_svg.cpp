#include "gen/svg.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "gen/random_layout.hpp"
#include "route/oarmst.hpp"

namespace oar::gen {
namespace {

using hanan::HananGrid;

HananGrid sample_grid() {
  util::Rng rng(7);
  RandomGridSpec spec;
  spec.h = 6;
  spec.v = 6;
  spec.m = 2;
  spec.min_pins = 4;
  spec.max_pins = 4;
  spec.min_obstacles = 3;
  spec.max_obstacles = 5;
  return random_grid(spec, rng);
}

TEST(Svg, ProducesWellFormedDocument) {
  const HananGrid grid = sample_grid();
  const std::string svg = render_svg(grid);
  EXPECT_EQ(svg.find("<svg"), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // One panel label per layer.
  EXPECT_NE(svg.find("layer 0"), std::string::npos);
  EXPECT_NE(svg.find("layer 1"), std::string::npos);
  EXPECT_EQ(svg.find("layer 2"), std::string::npos);
}

TEST(Svg, DrawsAllPins) {
  const HananGrid grid = sample_grid();
  const std::string svg = render_svg(grid);
  std::size_t circles = 0, pos = 0;
  while ((pos = svg.find("<circle", pos)) != std::string::npos) {
    ++circles;
    pos += 7;
  }
  EXPECT_EQ(circles, grid.pins().size());  // no Steiner points passed
}

TEST(Svg, DrawsTreeEdgesAndVias) {
  const HananGrid grid = sample_grid();
  route::OarmstRouter router(grid);
  const auto result = router.build(grid.pins());
  ASSERT_TRUE(result.connected);
  const std::string svg =
      render_svg(grid, &result.tree, result.kept_steiner);
  // Wire color appears when in-plane edges exist.
  SvgOptions options;
  EXPECT_NE(svg.find(options.wire_color), std::string::npos);
}

TEST(Svg, SteinerPointsUseDistinctColor) {
  const HananGrid grid = sample_grid();
  hanan::Vertex sp = hanan::kInvalidVertex;
  for (hanan::Vertex v = 0; v < grid.num_vertices(); ++v) {
    if (!grid.is_pin(v) && !grid.is_blocked(v)) {
      sp = v;
      break;
    }
  }
  const std::string svg = render_svg(grid, nullptr, {sp});
  SvgOptions options;
  EXPECT_NE(svg.find(options.steiner_color), std::string::npos);
}

TEST(Svg, SaveWritesFile) {
  const std::string path = ::testing::TempDir() + "/layout.svg";
  const HananGrid grid = sample_grid();
  ASSERT_TRUE(save_svg(path, grid));
  std::ifstream in(path);
  ASSERT_TRUE(bool(in));
  std::string first_line;
  std::getline(in, first_line);
  EXPECT_NE(first_line.find("<svg"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Svg, GridLinesToggle) {
  const HananGrid grid = sample_grid();
  SvgOptions with, without;
  without.draw_grid_lines = false;
  EXPECT_GT(render_svg(grid, nullptr, {}, with).size(),
            render_svg(grid, nullptr, {}, without).size());
}

}  // namespace
}  // namespace oar::gen
