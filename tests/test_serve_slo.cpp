// SLO-aware serving battery (DESIGN.md §16): admission control, urgency
// scheduling, deadline stamping, and the three batching/metrics bugfix
// regressions —
//   * take_batch's assembly stage is measured, not hard-coded zero,
//   * batch_wait_ms == 0 never enters a timed wait (timed_waits() hook),
//   * the queue-depth gauge is refreshed at every mutation point.
// Suite names contain "RouterService" on purpose: the CI ThreadSanitizer
// lane selects its battery by that substring.

#include "serve/service.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "gen/random_layout.hpp"
#include "serve/metrics.hpp"

namespace oar::serve {
namespace {

rl::SelectorConfig tiny_config() {
  rl::SelectorConfig cfg;
  cfg.unet.in_channels = 7;
  cfg.unet.base_channels = 4;
  cfg.unet.depth = 1;
  cfg.unet.seed = 11;
  return cfg;
}

std::shared_ptr<rl::SteinerSelector> tiny_selector() {
  return std::make_shared<rl::SteinerSelector>(tiny_config());
}

std::shared_ptr<const HananGrid> grid_of_shape(std::int32_t h, std::int32_t v,
                                               std::int32_t m,
                                               std::uint64_t seed = 4) {
  util::Rng rng(seed);
  gen::RandomGridSpec spec;
  spec.h = h;
  spec.v = v;
  spec.m = m;
  spec.min_pins = 4;
  spec.max_pins = 4;
  spec.min_obstacles = 2;
  spec.max_obstacles = 2;
  return std::make_shared<const HananGrid>(gen::random_grid(spec, rng));
}

std::shared_ptr<const HananGrid> small_grid(std::uint64_t seed = 4) {
  return grid_of_shape(6, 6, 2, seed);
}

Clock::time_point in_ms(double ms) {
  return Clock::now() + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double, std::milli>(ms));
}

TEST(RouterServiceSlo, MostUrgentIndexRule) {
  // Empty and all-deadline-less pick index 0 (FIFO).
  EXPECT_EQ(most_urgent_index({}), 0u);
  EXPECT_EQ(most_urgent_index({std::nullopt, std::nullopt}), 0u);

  const Clock::time_point t0 = Clock::now();
  const Clock::time_point t1 = t0 + std::chrono::milliseconds(10);
  const Clock::time_point t2 = t0 + std::chrono::milliseconds(20);

  // Earliest deadline wins over FIFO order.
  EXPECT_EQ(most_urgent_index({t2, t1, t0}), 2u);
  EXPECT_EQ(most_urgent_index({std::nullopt, t2, t1}), 2u);
  // Any deadline beats no deadline.
  EXPECT_EQ(most_urgent_index({std::nullopt, t2, std::nullopt}), 1u);
  // Deadline ties resolve FIFO (lowest index).
  EXPECT_EQ(most_urgent_index({t1, t1, t0 + std::chrono::milliseconds(30)}),
            0u);
}

TEST(RouterServiceSlo, SloConfigValidates) {
  SloConfig ok;
  EXPECT_NO_THROW(ok.validate());
  SloConfig bad = ok;
  bad.default_deadline_ms = -1.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.min_slack_ms = -0.5;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(RouterServiceSlo, ZeroBatchWaitNeverEntersTimedWait) {
  RouterServiceConfig cfg;
  cfg.max_batch = 8;
  cfg.batch_wait_ms = 0.0;  // the short-circuit under test
  cfg.cache_capacity = 0;
  RouterService service(tiny_selector(), cfg);
  std::vector<std::future<RouteReply>> futures;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    futures.push_back(
        service.submit(RouteRequest{small_grid(seed), std::nullopt}));
  }
  for (auto& f : futures) EXPECT_TRUE(f.get().result.connected);
  EXPECT_EQ(service.timed_waits(), 0u);
}

TEST(RouterServiceSlo, NonzeroBatchWaitDoesTimedWait) {
  // Control for the short-circuit: a lone request with a straggler window
  // must enter exactly the timed wait the zero-wait path skips.
  RouterServiceConfig cfg;
  cfg.max_batch = 8;
  cfg.batch_wait_ms = 30.0;
  cfg.cache_capacity = 0;
  RouterService service(tiny_selector(), cfg);
  EXPECT_TRUE(service.route(small_grid()).result.connected);
  EXPECT_GE(service.timed_waits(), 1u);
}

TEST(RouterServiceSlo, BatchAssemblyStageIsMeasured) {
  // Regression: kBatchAssembly used to be recorded as a hard-coded 0.0.
  // A lone request with a 50ms straggler window must show the window in
  // the assembly stage (pop -> dispatch interval).
  RouterServiceConfig cfg;
  cfg.max_batch = 8;
  cfg.batch_wait_ms = 50.0;
  cfg.cache_capacity = 0;
  RouterService service(tiny_selector(), cfg);
  EXPECT_TRUE(service.route(small_grid()).result.connected);

  const MetricsSnapshot snap = service.metrics().snapshot();
  const StageSummary& assembly =
      snap.stages[std::size_t(Stage::kBatchAssembly)];
  ASSERT_EQ(assembly.count, 1u);
  // Scheduler jitter can stretch the window but never shrink it below
  // ~the configured wait; 25ms rules out the old 0.0 without flaking.
  EXPECT_GE(assembly.mean_ms, 25.0);
}

TEST(RouterServiceSlo, DeadlineCapsStragglerWait) {
  // A leader with near-zero slack must not sit out the full straggler
  // window: the wait is capped at its deadline.
  RouterServiceConfig cfg;
  cfg.max_batch = 8;
  cfg.batch_wait_ms = 500.0;
  cfg.cache_capacity = 0;
  RouterService service(tiny_selector(), cfg);
  const auto t0 = Clock::now();
  const RouteReply reply =
      service.submit(RouteRequest{small_grid(), in_ms(10.0)}).get();
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  EXPECT_TRUE(reply.result.connected);
  EXPECT_LT(elapsed_ms, 400.0);  // well under the 500ms window
}

TEST(RouterServiceSlo, DefaultDeadlineIsStampedAndFlagged) {
  // A service-level default deadline applies to requests without their
  // own; an (unmeetable) default must flag the reply late but still serve
  // it — reject_hopeless stays off by default.
  RouterServiceConfig cfg;
  cfg.max_batch = 1;
  cfg.cache_capacity = 0;
  cfg.slo.default_deadline_ms = 1e-3;
  RouterService service(tiny_selector(), cfg);
  const RouteReply reply = service.route(small_grid());
  EXPECT_EQ(reply.status, ReplyStatus::kOk);
  EXPECT_TRUE(reply.result.connected);
  EXPECT_FALSE(reply.deadline_met);
  EXPECT_GE(service.metrics().snapshot().deadline_misses, 1u);
}

TEST(RouterServiceSlo, HopelessDeadlineRejectsTyped) {
  RouterServiceConfig cfg;
  cfg.max_batch = 1;
  cfg.cache_capacity = 0;
  cfg.slo.reject_hopeless = true;
  RouterService service(tiny_selector(), cfg);
  const RouteReply reply =
      service.submit(RouteRequest{small_grid(), in_ms(-5.0)}).get();
  EXPECT_EQ(reply.status, ReplyStatus::kOverloadedHopelessDeadline);
  EXPECT_TRUE(reply.overloaded());
  EXPECT_FALSE(reply.deadline_met);
  EXPECT_FALSE(reply.result.connected);
  EXPECT_EQ(service.metrics().snapshot().rejected_hopeless, 1u);
  // A request with healthy slack is admitted and served.
  const RouteReply ok =
      service.submit(RouteRequest{small_grid(), in_ms(60000.0)}).get();
  EXPECT_EQ(ok.status, ReplyStatus::kOk);
  EXPECT_TRUE(ok.result.connected);
}

TEST(RouterServiceSlo, QueueFullRejectsTyped) {
  // Deterministic overload: the batcher is pinned in a long straggler wait
  // on shape A, so differently-shaped submissions accumulate in the queue
  // until the admission bound trips.
  RouterServiceConfig cfg;
  cfg.max_batch = 8;
  cfg.batch_wait_ms = 300.0;
  cfg.cache_capacity = 0;
  cfg.slo.max_queue_depth = 2;
  RouterService service(tiny_selector(), cfg);

  // Pin the batcher: lone 6x6x2 leader waits 300ms for same-shape company.
  auto pin = service.submit(RouteRequest{small_grid(), std::nullopt});
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // Different shape: queued behind the pinned batch, never harvested.
  auto q1 = service.submit(RouteRequest{grid_of_shape(5, 5, 1, 7), std::nullopt});
  auto q2 = service.submit(RouteRequest{grid_of_shape(5, 5, 1, 8), std::nullopt});
  auto q3 = service.submit(RouteRequest{grid_of_shape(5, 5, 1, 9), std::nullopt});

  // The third must already be resolved, typed, and empty.
  ASSERT_EQ(q3.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  const RouteReply rejected = q3.get();
  EXPECT_EQ(rejected.status, ReplyStatus::kOverloadedQueueFull);
  EXPECT_FALSE(rejected.deadline_met);
  EXPECT_FALSE(rejected.result.connected);
  EXPECT_EQ(service.metrics().snapshot().rejected_queue_full, 1u);

  // Every admitted request is still served as a valid tree.
  EXPECT_TRUE(pin.get().result.connected);
  EXPECT_TRUE(q1.get().result.connected);
  EXPECT_TRUE(q2.get().result.connected);
}

TEST(RouterServiceSlo, UrgentRequestIsScheduledFirst) {
  // While the batcher is pinned on shape A, enqueue a deadline-less
  // request then a later, urgent one (different shapes, so they land in
  // separate batches).  Urgency scheduling pops the later, urgent request
  // first: its queue wait must come out shorter.
  RouterServiceConfig cfg;
  cfg.max_batch = 8;
  cfg.batch_wait_ms = 300.0;
  cfg.cache_capacity = 0;
  RouterService service(tiny_selector(), cfg);

  auto pin = service.submit(RouteRequest{small_grid(), std::nullopt});
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  auto relaxed =
      service.submit(RouteRequest{grid_of_shape(5, 5, 1, 7), std::nullopt});
  auto urgent = service.submit(
      RouteRequest{grid_of_shape(4, 4, 2, 8), in_ms(60000.0)});

  const RouteReply relaxed_reply = relaxed.get();
  const RouteReply urgent_reply = urgent.get();
  EXPECT_TRUE(pin.get().result.connected);
  EXPECT_TRUE(relaxed_reply.result.connected);
  EXPECT_TRUE(urgent_reply.result.connected);
  // Submitted later but popped earlier => strictly less queue wait.
  EXPECT_LT(urgent_reply.queue_seconds, relaxed_reply.queue_seconds);
}

TEST(RouterServiceSlo, ScrapeCarriesSloFamilies) {
  RouterServiceConfig cfg;
  cfg.max_batch = 1;
  cfg.cache_capacity = 0;
  cfg.slo.default_deadline_ms = 60000.0;
  RouterService service(tiny_selector(), cfg);
  EXPECT_TRUE(service.route(small_grid()).result.connected);

  const std::string prom = service.scrape_prometheus();
  EXPECT_NE(prom.find("oar_serve_slo_deadline_misses_total"), std::string::npos);
  EXPECT_NE(prom.find("oar_serve_slo_rejected_queue_full_total"),
            std::string::npos);
  EXPECT_NE(prom.find("oar_serve_slo_rejected_hopeless_total"),
            std::string::npos);
  EXPECT_NE(prom.find("oar_serve_slo_slack_seconds"), std::string::npos);
  EXPECT_NE(prom.find("oar_serve_slo_p50_latency_seconds"), std::string::npos);
  EXPECT_NE(prom.find("oar_serve_slo_p99_latency_seconds"), std::string::npos);
}

}  // namespace
}  // namespace oar::serve
