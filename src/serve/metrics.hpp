#pragma once

// Per-stage serving metrics: request counters plus latency distributions
// for every pipeline stage (queue wait, batch assembly, inference, OARMST
// routing, end-to-end).  Aggregation rides on util::RunningStats; the
// percentiles come from util::percentile over the retained samples.  A
// snapshot() is cheap enough to take mid-run and dump_csv() writes the
// bench-standard machine-readable table.

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/stats.hpp"

namespace oar::serve {

enum class Stage : int {
  kQueueWait = 0,   // submit -> popped into a batch
  kBatchAssembly,   // batch leader popped -> features stacked
  kInference,       // batched U-Net pass (per batch)
  kRouting,         // per-net OARMST fan-out (per batch)
  kTotal,           // submit -> reply ready (per request)
};
constexpr int kNumStages = 5;

const char* stage_name(Stage stage);

struct StageSummary {
  std::size_t count = 0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

struct MetricsSnapshot {
  std::uint64_t requests = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t batches = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_hopeless = 0;
  double mean_batch_size = 0.0;
  std::array<StageSummary, kNumStages> stages;

  double cache_hit_rate() const {
    return requests == 0 ? 0.0 : double(cache_hits) / double(requests);
  }
};

class ServiceMetrics {
 public:
  void record_stage(Stage stage, double seconds);
  void add_request();
  void add_cache_hit();
  void add_batch(std::size_t batch_size);
  void add_deadline_miss();
  void add_rejected_queue_full();
  void add_rejected_hopeless();

  MetricsSnapshot snapshot() const;

  /// One row per stage (count/mean/percentiles in ms) followed by the
  /// counter rows.  Returns false when the file cannot be opened.
  bool dump_csv(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  std::array<util::RunningStats, kNumStages> stats_;
  std::array<std::vector<double>, kNumStages> samples_;
  util::RunningStats batch_sizes_;
  std::uint64_t requests_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t deadline_misses_ = 0;
  std::uint64_t rejected_queue_full_ = 0;
  std::uint64_t rejected_hopeless_ = 0;
};

}  // namespace oar::serve
