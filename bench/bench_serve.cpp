// Serving-layer acceptance bench: micro-batched throughput and result-cache
// speedup over 64 random 16x16x4 layouts (the paper's training-size grids),
// plus the SLO phase (DESIGN.md §16).
//
// Three phases, each against a fresh RouterService:
//   1. baseline  — max_batch = 1, cache off (the legacy per-request path),
//   2. batched   — max_batch = 8, cache off (one U-Net pass per micro-batch),
//   3. cached    — max_batch = 8, cache on; a cold pass then a 100%-hit rerun.
//
// Acceptance: batched >= 2x baseline throughput, rerun >= 10x cold pass.
// `--smoke` shrinks the sweep and reports the ratios without gating the
// exit code on them (CI runners have too few cores for the batching win).
// Per-stage latency percentiles land in bench_serve_metrics.csv; the final
// service's obs scrape lands in BENCH_serve_metrics.prom / .json (the
// artifact CI uploads — a real snapshot of every layer's metric families).
//
// Phase 4 (SLO) has two parts, both landing in BENCH_serve_slo.json:
//   4a. quality-vs-deadline — the anytime "rl-mcts" search on 32x32x8
//       layouts (smoke: 12x12x2) across a deadline ladder: cost ratio vs
//       the unbounded search, deadline-hit rate, realized latency.  Every
//       returned tree must be connected — the anytime invariant is a hard
//       gate even in smoke.
//   4b. sustained QPS — open-loop arrivals at half the calibrated serial
//       capacity against an admission-controlled service (bounded queue,
//       reject_hopeless).  Every reply must be a valid routed tree or a
//       typed Overloaded rejection (hard gate); full mode additionally
//       gates >= 95% deadline compliance among admitted requests.

#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/mcts_router.hpp"
#include "gen/random_layout.hpp"
#include "obs/export.hpp"
#include "serve/service.hpp"
#include "util/rng.hpp"

namespace {

using namespace oar;

std::vector<std::shared_ptr<const hanan::HananGrid>> make_layouts(
    std::size_t count) {
  gen::RandomGridSpec spec;  // defaults: 16x16x4, 3..6 pins
  util::Rng rng(20240805);
  std::vector<std::shared_ptr<const hanan::HananGrid>> grids;
  grids.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    grids.push_back(
        std::make_shared<const hanan::HananGrid>(gen::random_grid(spec, rng)));
  }
  return grids;
}

/// Submits every layout up front (a deep queue, as a loaded server sees) and
/// waits for all replies; returns the wall seconds for the whole sweep.
double run_sweep(serve::RouterService& service,
                 const std::vector<std::shared_ptr<const hanan::HananGrid>>& grids) {
  util::Timer timer;
  std::vector<std::future<serve::RouteReply>> replies;
  replies.reserve(grids.size());
  for (const auto& grid : grids) {
    replies.push_back(service.submit(serve::RouteRequest{grid, std::nullopt}));
  }
  for (auto& reply : replies) reply.get();
  return timer.seconds();
}

std::vector<std::shared_ptr<const hanan::HananGrid>> make_slo_layouts(
    std::size_t count, bool smoke) {
  gen::RandomGridSpec spec;
  if (smoke) {
    spec.h = 12, spec.v = 12, spec.m = 2;
    spec.min_obstacles = 8, spec.max_obstacles = 16;
  } else {
    spec.h = 32, spec.v = 32, spec.m = 8;  // the acceptance size
    spec.min_obstacles = 64, spec.max_obstacles = 128;
  }
  util::Rng rng(20260809);
  std::vector<std::shared_ptr<const hanan::HananGrid>> grids;
  grids.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    grids.push_back(
        std::make_shared<const hanan::HananGrid>(gen::random_grid(spec, rng)));
  }
  return grids;
}

struct AnytimePoint {
  double deadline_ms = 0.0;
  double mean_cost = 0.0;
  double cost_ratio = 1.0;  // vs the unbounded search (lower = better)
  double hit_rate = 0.0;    // fraction of runs truncated by the deadline
  double mean_elapsed_ms = 0.0;
};

struct SustainedResult {
  double qps = 0.0;
  double deadline_ms = 0.0;
  std::size_t requests = 0;
  std::size_t admitted = 0;
  std::size_t rejected_queue_full = 0;
  std::size_t rejected_hopeless = 0;
  std::size_t deadline_met = 0;
  double compliance = 0.0;  // deadline_met / admitted
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

bool write_slo_json(const char* path, bool smoke, double unbounded_cost,
                    const std::vector<AnytimePoint>& curve,
                    const SustainedResult& sus) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"anytime\": {\n");
  std::fprintf(f, "    \"unbounded_mean_cost\": %.6f,\n", unbounded_cost);
  std::fprintf(f, "    \"curve\": [\n");
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const AnytimePoint& p = curve[i];
    std::fprintf(f,
                 "      {\"deadline_ms\": %.3f, \"mean_cost\": %.6f, "
                 "\"cost_ratio\": %.6f, \"deadline_hit_rate\": %.4f, "
                 "\"mean_elapsed_ms\": %.3f}%s\n",
                 p.deadline_ms, p.mean_cost, p.cost_ratio, p.hit_rate,
                 p.mean_elapsed_ms, i + 1 < curve.size() ? "," : "");
  }
  std::fprintf(f, "    ]\n  },\n");
  std::fprintf(f, "  \"sustained\": {\n");
  std::fprintf(f, "    \"qps\": %.2f,\n    \"deadline_ms\": %.3f,\n",
               sus.qps, sus.deadline_ms);
  std::fprintf(f, "    \"requests\": %zu,\n    \"admitted\": %zu,\n",
               sus.requests, sus.admitted);
  std::fprintf(f,
               "    \"rejected_queue_full\": %zu,\n"
               "    \"rejected_hopeless\": %zu,\n",
               sus.rejected_queue_full, sus.rejected_hopeless);
  std::fprintf(f, "    \"deadline_met\": %zu,\n    \"compliance\": %.4f,\n",
               sus.deadline_met, sus.compliance);
  std::fprintf(f, "    \"p50_ms\": %.3f,\n    \"p99_ms\": %.3f\n", sus.p50_ms,
               sus.p99_ms);
  std::fprintf(f, "  },\n  %s\n}\n", bench::machine_json().c_str());
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::size_t kLayouts = smoke ? 24 : 64;
  auto selector = bench::bench_selector();
  const auto grids = make_layouts(kLayouts);

  std::printf("bench_serve: %zu random 16x16x4 layouts%s\n\n", kLayouts,
              smoke ? " (smoke)" : "");

  // Phase 1: batch-size-1 baseline (legacy single-sample inference path).
  double base_seconds = 0.0;
  {
    serve::RouterServiceConfig cfg;
    cfg.max_batch = 1;
    cfg.cache_capacity = 0;
    serve::RouterService service(selector, cfg);
    base_seconds = run_sweep(service, grids);
  }
  const double base_rps = double(kLayouts) / base_seconds;
  std::printf("baseline   (batch=1):  %7.3fs  %6.1f req/s\n", base_seconds,
              base_rps);

  // Phase 2: micro-batched, cache still off so every request infers.
  double batch_seconds = 0.0;
  double mean_batch = 0.0;
  {
    serve::RouterServiceConfig cfg;
    cfg.max_batch = 8;
    cfg.cache_capacity = 0;
    serve::RouterService service(selector, cfg);
    batch_seconds = run_sweep(service, grids);
    mean_batch = service.metrics().snapshot().mean_batch_size;
  }
  const double batch_rps = double(kLayouts) / batch_seconds;
  const double speedup = base_seconds / batch_seconds;
  std::printf("batched    (batch=8):  %7.3fs  %6.1f req/s   mean batch %.1f\n",
              batch_seconds, batch_rps, mean_batch);
  std::printf("micro-batching speedup: %.2fx  [%s] (need >= 2x)\n\n", speedup,
              speedup >= 2.0 ? "PASS" : "FAIL");

  // Phase 3: cache on — cold sweep populates, identical rerun must be hits.
  double cold_seconds = 0.0, warm_seconds = 0.0, hit_rate = 0.0;
  {
    serve::RouterServiceConfig cfg;
    cfg.max_batch = 8;
    cfg.cache_capacity = 2 * kLayouts;
    serve::RouterService service(selector, cfg);
    cold_seconds = run_sweep(service, grids);
    warm_seconds = run_sweep(service, grids);
    const auto snap = service.metrics().snapshot();
    hit_rate = snap.cache_hit_rate();
    service.metrics().dump_csv("bench_serve_metrics.csv");
    if (obs::write_text_file("BENCH_serve_metrics.prom",
                             service.scrape_prometheus()) &&
        obs::write_text_file("BENCH_serve_metrics.json",
                             service.scrape_json())) {
      std::printf("obs scrape -> BENCH_serve_metrics.prom / .json\n\n");
    }
  }
  const double cache_speedup = cold_seconds / warm_seconds;
  std::printf("cache cold:            %7.3fs\n", cold_seconds);
  std::printf("cache rerun:           %7.3fs   overall hit rate %.0f%%\n",
              warm_seconds, 100.0 * hit_rate);
  std::printf("cache speedup: %.1fx  [%s] (need >= 10x)\n\n", cache_speedup,
              cache_speedup >= 10.0 ? "PASS" : "FAIL");

  std::printf("per-stage latency histograms -> bench_serve_metrics.csv\n\n");

  // Phase 4a: quality-vs-deadline curve of the anytime search.
  bool slo_valid = true;
  std::vector<AnytimePoint> curve;
  double unbounded_cost = 0.0;
  {
    const std::size_t kSloLayouts = smoke ? 2 : 4;
    const auto slo_grids = make_slo_layouts(kSloLayouts, smoke);
    mcts::CombMctsConfig mcfg;
    mcfg.iterations_per_move = smoke ? 8 : 24;
    core::MctsRouter router(selector, mcfg);

    util::RunningStats unbounded;
    for (const auto& g : slo_grids) {
      const route::OarmstResult res = router.route(*g);
      if (!res.connected) slo_valid = false;
      unbounded.add(res.cost);
    }
    unbounded_cost = unbounded.mean();
    std::printf("anytime %s: unbounded mean cost %.1f\n",
                smoke ? "12x12x2" : "32x32x8", unbounded_cost);

    // The smallest rung sits below the unbounded search time so the
    // deadline-hit path is exercised even on the small smoke grids.
    const std::vector<double> ladder =
        smoke ? std::vector<double>{0.2, 2.0, 10.0}
              : std::vector<double>{5.0, 10.0, 25.0, 50.0, 100.0};
    for (double dms : ladder) {
      AnytimePoint p;
      p.deadline_ms = dms;
      util::RunningStats cost, elapsed;
      int hits = 0;
      for (const auto& g : slo_grids) {
        const mcts::SearchDeadline deadline =
            mcts::SearchClock::now() +
            std::chrono::duration_cast<mcts::SearchClock::duration>(
                std::chrono::duration<double, std::milli>(dms));
        util::Timer t;
        const route::OarmstResult res = router.route(*g, deadline);
        elapsed.add(t.seconds() * 1e3);
        // The anytime invariant is a hard gate: an expired deadline must
        // still yield a valid routed tree.
        if (!res.connected) slo_valid = false;
        if (router.last_stats().deadline_hit) ++hits;
        cost.add(res.cost);
      }
      p.mean_cost = cost.mean();
      p.cost_ratio = unbounded_cost > 0.0 ? p.mean_cost / unbounded_cost : 1.0;
      p.hit_rate = double(hits) / double(kSloLayouts);
      p.mean_elapsed_ms = elapsed.mean();
      curve.push_back(p);
      std::printf(
          "  deadline %6.1fms: cost ratio %.4f  hit rate %3.0f%%  "
          "elapsed %7.1fms\n",
          p.deadline_ms, p.cost_ratio, 100.0 * p.hit_rate, p.mean_elapsed_ms);
    }
  }

  // Phase 4b: sustained open-loop QPS against admission control.
  SustainedResult sus;
  {
    // Calibrate the per-request service time at the acceptance size.
    const std::size_t kCal = smoke ? 4 : 8;
    const auto cal_grids = make_slo_layouts(kCal, smoke);
    double mean_latency = 0.0;
    {
      serve::RouterServiceConfig cfg;
      cfg.max_batch = 1;
      cfg.cache_capacity = 0;
      serve::RouterService service(selector, cfg);
      util::Timer t;
      for (const auto& g : cal_grids) service.route(g);
      mean_latency = t.seconds() / double(kCal);
    }
    sus.deadline_ms = std::max(6.0 * mean_latency * 1e3, 10.0);
    sus.qps = 0.5 / mean_latency;  // half the serial capacity
    sus.requests = smoke ? 32 : 128;

    const auto arrival_grids = make_slo_layouts(sus.requests, smoke);
    serve::RouterServiceConfig cfg;
    cfg.max_batch = 8;
    cfg.cache_capacity = 0;
    cfg.slo.default_deadline_ms = sus.deadline_ms;
    cfg.slo.max_queue_depth = 32;
    cfg.slo.reject_hopeless = true;
    serve::RouterService service(selector, cfg);

    std::vector<std::future<serve::RouteReply>> futures;
    futures.reserve(sus.requests);
    const auto interval = std::chrono::duration_cast<serve::Clock::duration>(
        std::chrono::duration<double>(1.0 / sus.qps));
    auto next = serve::Clock::now();
    for (std::size_t i = 0; i < sus.requests; ++i) {
      std::this_thread::sleep_until(next);
      next += interval;
      futures.push_back(
          service.submit(serve::RouteRequest{arrival_grids[i], std::nullopt}));
    }

    std::vector<double> latencies_ms;
    latencies_ms.reserve(sus.requests);
    for (auto& fut : futures) {
      serve::RouteReply reply = fut.get();
      if (reply.overloaded()) {
        // A rejection must be typed and empty — never a half-built tree.
        if (reply.result.connected) slo_valid = false;
        if (reply.status == serve::ReplyStatus::kOverloadedQueueFull) {
          ++sus.rejected_queue_full;
        } else {
          ++sus.rejected_hopeless;
        }
        continue;
      }
      ++sus.admitted;
      // Every admitted request must come back as a valid routed tree.
      if (!reply.result.connected) slo_valid = false;
      if (reply.deadline_met) ++sus.deadline_met;
      latencies_ms.push_back(reply.total_seconds * 1e3);
    }
    sus.compliance =
        sus.admitted == 0 ? 0.0 : double(sus.deadline_met) / double(sus.admitted);
    if (!latencies_ms.empty()) {
      sus.p50_ms = util::percentile(latencies_ms, 50.0);
      sus.p99_ms = util::percentile(latencies_ms, 99.0);
    }
    std::printf(
        "\nsustained: %.1f req/s, deadline %.1fms, %zu requests -> "
        "%zu admitted, %zu rejected (queue), %zu rejected (hopeless)\n",
        sus.qps, sus.deadline_ms, sus.requests, sus.admitted,
        sus.rejected_queue_full, sus.rejected_hopeless);
    std::printf(
        "compliance %.1f%%  [%s] (need >= 95%% in full mode)   "
        "p50 %.1fms  p99 %.1fms\n",
        100.0 * sus.compliance, sus.compliance >= 0.95 ? "PASS" : "FAIL",
        sus.p50_ms, sus.p99_ms);
  }

  if (write_slo_json("BENCH_serve_slo.json", smoke, unbounded_cost, curve,
                     sus)) {
    std::printf("SLO curve -> BENCH_serve_slo.json\n");
  }
  if (!slo_valid) {
    // Hard gate in every mode: a reply was neither a valid routed tree nor
    // a typed Overloaded rejection.
    std::printf("SLO validity: FAIL\n");
    return 1;
  }
  std::printf("SLO validity: PASS (every reply valid or typed-rejected)\n");

  if (smoke) return 0;  // ratios are informational on small machines
  return (speedup >= 2.0 && cache_speedup >= 10.0 && sus.compliance >= 0.95)
             ? 0
             : 1;
}
