#pragma once

// Actor and critic built on top of the Steiner-point selector (paper
// Sec. 3.4, Fig. 5).
//
// The selector outputs the *final selected probability* fsp(v) of every
// vertex — a multi-label map whose sum exceeds 1 — which cannot directly be
// a step policy.  The actor converts it (eq. (1)): a valid vertex u (after
// the last selected point w in priority order) gets weighted probability
//     p'(u) = fsp(u) * prod_{w < v < u, v valid} (1 - fsp(v)),
// normalized over all valid u.  The critic estimates the final routing
// cost of a partial state by completing the selection with the selector's
// top-(budget - selected) vertices and running the OARMST router.

#include <utility>
#include <vector>

#include "route/oarmst.hpp"
#include "rl/selector.hpp"

namespace oar::mcts {

using hanan::HananGrid;
using hanan::Vertex;

class ActorCritic {
 public:
  /// `grid` must outlive the ActorCritic.  The critic's router uses
  /// tree-vertex attachment and redundant-Steiner removal, mirroring the
  /// final inference flow of Fig. 2.
  ActorCritic(rl::SteinerSelector& selector, const HananGrid& grid);

  /// One selector inference for the state (selected points become pins).
  std::vector<double> fsp(const std::vector<Vertex>& selected);

  /// Same, into a caller-owned buffer.  With the selector in its default
  /// inference mode this is the fully allocation-free fast path: features
  /// are patched from the selector's FeatureCache into its arena input,
  /// the tiled single-sample engine runs, and the sigmoid readout lands in
  /// `out` (DESIGN.md §11).  One ActorCritic per search thread keeps the
  /// selector's arena and cache single-threaded, matching the scratch
  /// ownership note below.
  void fsp_into(const std::vector<Vertex>& selected, std::vector<double>& out);

  /// Action policy per eq. (1).  `last_priority` is the selection priority
  /// of the most recently placed Steiner point (-1 at the root).  Valid
  /// vertices: priority > last_priority, not a pin/obstacle/already
  /// selected.  Returns (vertex, normalized probability) pairs in priority
  /// order; empty when no valid action exists.
  std::vector<std::pair<Vertex, double>> policy(
      const std::vector<Vertex>& selected, std::int64_t last_priority,
      const std::vector<double>& fsp_map) const;

  /// Critic estimate (Fig. 5, orange box): complete the state to
  /// `steiner_budget` points using the top-fsp valid vertices, route, and
  /// return the resulting total cost.
  double critic_cost(const std::vector<Vertex>& selected, std::int32_t steiner_budget,
                     const std::vector<double>& fsp_map) const;

  /// Exact routing cost of a state (no completion): OARMST over
  /// pins + selected, *without* redundant-point removal so that a useless
  /// point shows up as a cost increase (used for terminal criteria and the
  /// curriculum's exact value function).
  ///
  /// Both cost functions return +infinity when the terminal set cannot be
  /// fully connected (e.g. a selected point walled off by obstacles), so a
  /// disconnected state can never be ranked above a connected one.
  double exact_cost(const std::vector<Vertex>& selected) const;

  const HananGrid& grid() const { return grid_; }

 private:
  rl::SteinerSelector& selector_;
  const HananGrid& grid_;
  route::OarmstRouter final_router_;  // removal on (critic / final flow)
  route::OarmstRouter raw_router_;    // removal off (state costs)
  // One ActorCritic serves one search thread (the selector's forward cache
  // is not thread safe either), so it owns its routing scratch instead of
  // allocating O(V) maze arrays per critic call.  mutable: scratch reuse
  // does not change observable state of the const cost functions.
  mutable route::RouterScratch scratch_;
};

}  // namespace oar::mcts
