#include "hanan/hanan_grid.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <sstream>

namespace oar::hanan {

std::uint64_t HananGrid::next_revision() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

HananGrid::HananGrid(std::int32_t H, std::int32_t V, std::int32_t M,
                     std::vector<double> x_step, std::vector<double> y_step,
                     double via_cost, std::vector<std::uint8_t> blocked,
                     std::vector<Vertex> pins)
    : h_(H),
      v_(V),
      m_(M),
      x_step_(std::move(x_step)),
      y_step_(std::move(y_step)),
      via_cost_(via_cost) {
  assert(H >= 1 && V >= 1 && M >= 1);
  assert(std::ssize(x_step_) == H - 1);
  assert(std::ssize(y_step_) == V - 1);
  const auto n = std::size_t(num_vertices());
  if (blocked.empty()) {
    blocked_.assign(n, 0);
  } else {
    assert(blocked.size() == n);
    blocked_ = std::move(blocked);
  }
  edge_block_.assign(n, 0);
  pin_mask_.assign(n, 0);
  for (Vertex p : pins) add_pin(p);
}

void HananGrid::add_pin(Vertex idx) {
  assert(idx >= 0 && idx < num_vertices());
  assert(!is_blocked(idx));
  if (pin_mask_[std::size_t(idx)]) return;
  pin_mask_[std::size_t(idx)] = 1;
  pins_.push_back(idx);
  revision_ = next_revision();
}

void HananGrid::clear_pins() {
  if (pins_.empty()) return;
  for (Vertex p : pins_) pin_mask_[std::size_t(p)] = 0;
  pins_.clear();
  revision_ = next_revision();
}

void HananGrid::block_vertex(Vertex idx) {
  assert(idx >= 0 && idx < num_vertices());
  assert(!is_pin(idx));
  blocked_[std::size_t(idx)] = 1;
  revision_ = next_revision();
}

void HananGrid::block_edge(Vertex idx, Dir dir) {
  assert(idx >= 0 && idx < num_vertices());
  edge_block_[std::size_t(idx)] |= std::uint8_t(1u << std::uint8_t(dir));
  revision_ = next_revision();
}

bool HananGrid::edge_usable(Vertex idx, Dir dir) const {
  const Cell c = cell(idx);
  Vertex other;
  switch (dir) {
    case Dir::kPosX:
      if (c.h + 1 >= h_) return false;
      other = idx + 1;
      break;
    case Dir::kPosY:
      if (c.v + 1 >= v_) return false;
      other = idx + h_;
      break;
    case Dir::kPosZ:
      if (c.m + 1 >= m_) return false;
      other = idx + Vertex(h_) * v_;
      break;
    default:
      return false;
  }
  if (blocked_[std::size_t(idx)] || blocked_[std::size_t(other)]) return false;
  return (edge_block_[std::size_t(idx)] & (1u << std::uint8_t(dir))) == 0;
}

void HananGrid::set_edge_cost_bias(Vertex idx, Dir dir, double bias) {
  assert(idx >= 0 && idx < num_vertices());
  assert(bias >= 0.0);
  if (edge_bias_.empty()) {
    if (bias == 0.0) return;
    edge_bias_.assign(std::size_t(num_vertices()) * 3, 0.0);
  }
  double& slot = edge_bias_[std::size_t(idx) * 3 + std::size_t(dir)];
  if (slot == bias) return;
  slot = bias;
  revision_ = next_revision();
}

bool HananGrid::set_edge_cost_biases(std::vector<double> bias) {
  assert(bias.empty() || bias.size() == std::size_t(num_vertices()) * 3);
  if (bias == edge_bias_) return false;
  // An all-zero overlay is the same cost function as no overlay at all;
  // normalize to empty so the unbiased fast paths stay in effect.
  if (!bias.empty() &&
      std::all_of(bias.begin(), bias.end(), [](double b) { return b == 0.0; })) {
    if (edge_bias_.empty()) return false;
    bias.clear();
  }
  edge_bias_ = std::move(bias);
  revision_ = next_revision();
  return true;
}

void HananGrid::clear_edge_cost_biases() {
  if (edge_bias_.empty()) return;
  edge_bias_.clear();
  revision_ = next_revision();
}

double HananGrid::edge_cost(Vertex idx, Dir dir) const {
  const Cell c = cell(idx);
  double cost = 0.0;
  switch (dir) {
    case Dir::kPosX: cost = x_step_[std::size_t(c.h)]; break;
    case Dir::kPosY: cost = y_step_[std::size_t(c.v)]; break;
    case Dir::kPosZ: cost = via_cost_; break;
  }
  return cost + edge_cost_bias(idx, dir);
}

double HananGrid::base_cost_between(Vertex a, Vertex b) const {
  if (a > b) std::swap(a, b);
  const Vertex diff = b - a;
  const Cell ca = cell(a);
  if (diff == 1 && h_ > 1) {
    assert(ca.h + 1 < h_);
    return x_step_[std::size_t(ca.h)];
  }
  if (diff == h_ && v_ > 1) {
    assert(ca.v + 1 < v_);
    return y_step_[std::size_t(ca.v)];
  }
  assert(diff == Vertex(h_) * v_);
  (void)ca;
  return via_cost_;
}

double HananGrid::cost_between(Vertex a, Vertex b) const {
  if (a > b) std::swap(a, b);
  const double base = base_cost_between(a, b);
  if (edge_bias_.empty()) return base;
  const Vertex diff = b - a;
  Dir dir = Dir::kPosZ;
  if (diff == 1 && h_ > 1) dir = Dir::kPosX;
  else if (diff == h_ && v_ > 1) dir = Dir::kPosY;
  return base + edge_cost_bias(a, dir);
}

double HananGrid::blocked_ratio() const {
  if (blocked_.empty()) return 0.0;
  std::int64_t n = 0;
  for (auto b : blocked_) n += b != 0;
  return double(n) / double(blocked_.size());
}

std::string HananGrid::validate() const {
  std::ostringstream problems;
  if (h_ < 1 || v_ < 1 || m_ < 1) problems << "non-positive dims; ";
  for (double s : x_step_) {
    if (s <= 0.0) problems << "non-positive x step; ";
  }
  for (double s : y_step_) {
    if (s <= 0.0) problems << "non-positive y step; ";
  }
  if (via_cost_ < 0.0) problems << "negative via cost; ";
  if (!edge_bias_.empty() && edge_bias_.size() != std::size_t(num_vertices()) * 3) {
    problems << "edge bias overlay size mismatch; ";
  }
  for (double b : edge_bias_) {
    if (!(b >= 0.0)) {  // also catches NaN
      problems << "negative or NaN edge cost bias; ";
      break;
    }
  }
  for (Vertex p : pins_) {
    if (p < 0 || p >= num_vertices()) problems << "pin index out of range; ";
    else if (is_blocked(p)) problems << "pin on blocked vertex; ";
  }
  return problems.str();
}

HananGrid HananGrid::from_layout(const geom::Layout& layout) {
  // 1. Consolidate all objects onto one layer and collect the x / y cuts.
  std::vector<double> xs, ys;
  for (const auto& pin : layout.pins()) {
    xs.push_back(pin.x);
    ys.push_back(pin.y);
  }
  for (const auto& o : layout.obstacles()) {
    xs.push_back(o.rect.lo.x);
    xs.push_back(o.rect.hi.x);
    ys.push_back(o.rect.lo.y);
    ys.push_back(o.rect.hi.y);
  }
  auto dedupe = [](std::vector<double>& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
    if (v.empty()) v.push_back(0.0);
  };
  dedupe(xs);
  dedupe(ys);

  const auto H = std::int32_t(xs.size());
  const auto V = std::int32_t(ys.size());
  const auto M = layout.num_layers();
  std::vector<double> x_step(std::size_t(std::max(0, H - 1)));
  std::vector<double> y_step(std::size_t(std::max(0, V - 1)));
  for (std::int32_t i = 0; i + 1 < H; ++i) x_step[std::size_t(i)] = xs[std::size_t(i + 1)] - xs[std::size_t(i)];
  for (std::int32_t j = 0; j + 1 < V; ++j) y_step[std::size_t(j)] = ys[std::size_t(j + 1)] - ys[std::size_t(j)];

  HananGrid grid(H, V, M, std::move(x_step), std::move(y_step), layout.via_cost());
  grid.x_cuts_ = xs;
  grid.y_cuts_ = ys;

  auto cut_index = [](const std::vector<double>& cuts, double value) {
    const auto it = std::lower_bound(cuts.begin(), cuts.end(), value);
    return std::int32_t(it - cuts.begin());
  };

  // 2. Relocate each obstacle onto its original layer: block vertices whose
  //    coordinate is strictly inside the obstacle, and block boundary-to-
  //    boundary edges whose open segment crosses the interior.
  for (const auto& o : layout.obstacles()) {
    const std::int32_t hi_lo = cut_index(xs, o.rect.lo.x);
    const std::int32_t hi_hi = cut_index(xs, o.rect.hi.x);
    const std::int32_t vi_lo = cut_index(ys, o.rect.lo.y);
    const std::int32_t vi_hi = cut_index(ys, o.rect.hi.y);
    // Strict interior vertices.
    for (std::int32_t h = hi_lo + 1; h < hi_hi; ++h) {
      for (std::int32_t v = vi_lo + 1; v < vi_hi; ++v) {
        const Vertex idx = grid.index(h, v, o.layer);
        if (!grid.is_pin(idx)) grid.block_vertex(idx);
      }
    }
    // Horizontal edges crossing the interior at a row strictly inside.
    for (std::int32_t v = vi_lo + 1; v < vi_hi; ++v) {
      for (std::int32_t h = hi_lo; h < hi_hi; ++h) {
        grid.block_edge(grid.index(h, v, o.layer), Dir::kPosX);
      }
    }
    // Vertical edges crossing the interior at a column strictly inside.
    for (std::int32_t h = hi_lo + 1; h < hi_hi; ++h) {
      for (std::int32_t v = vi_lo; v < vi_hi; ++v) {
        grid.block_edge(grid.index(h, v, o.layer), Dir::kPosY);
      }
    }
  }

  // 3. Relocate pins.
  for (const auto& pin : layout.pins()) {
    grid.add_pin(grid.index(cut_index(xs, pin.x), cut_index(ys, pin.y), pin.layer));
  }
  return grid;
}

}  // namespace oar::hanan
