#pragma once

// Tree-parallel combinatorial MCTS (DESIGN.md §15).
//
// ParallelCombMcts runs the exact search of CombMcts (same UCT math, same
// eq.-(3) label bookkeeping, same terminal rules) with K workers descending
// ONE shared tree concurrently:
//
//   * Virtual loss: each descent stamps an integer virtual loss on every
//     edge it traverses (one pessimistic phantom visit: effective visits
//     n+vl, effective value sum W-vl) and reverts it during backup.
//     Concurrent workers therefore spread over different subtrees instead
//     of piling onto the current argmax.  The bookkeeping is kept as a
//     separate per-edge counter — never folded into visits/value — so a
//     fully reverted tree is BITWISE the tree the serial search builds,
//     and with a single worker (virtual losses never observed non-zero)
//     every selection computes the serial floating-point expressions
//     verbatim: `search_workers = 1` is bitwise-identical to CombMcts.
//   * Leaf inference goes through a shared EvalServer: the worker encodes
//     the state's feature volume with its private hanan::FeatureCache,
//     submits it, and blocks on the future while the drain thread fuses
//     same-shape requests into one batched forward.  Exact state costs and
//     critic completions (maze/OARMST work) stay on the worker's own
//     ActorCritic + RouterScratch.
//   * Tree mutations (selection bookkeeping, expansion commit, backup) are
//     serialized by one tree mutex; evaluations — ~all of the wall time —
//     run outside it.  A worker reaching a leaf that another worker is
//     already evaluating waits for that result instead of duplicating the
//     evaluation (stats.eval_waits counts these).
//
// After every root move the search self-checks the virtual-loss invariant
// (every edge back to zero, applied == reverted) and throws on violation.
//
// Labels: at K > 1 the iteration *interleaving* depends on thread timing,
// so n_sel/n_opp — and therefore L_fsp — are distribution-equivalent to
// the serial labels, not bitwise-equal (tests/test_mcts_parallel.cpp gates
// the equivalence; DESIGN.md §15 explains why this is inherent).

#include <cstdint>

#include "mcts/comb_mcts.hpp"
#include "mcts/eval_server.hpp"

namespace oar::mcts {

class ParallelCombMcts {
 public:
  /// Uses CombMctsConfig's search_workers / eval_batch / flush_us knobs.
  /// The selector must outlive the search and, while run() executes, is
  /// used exclusively by the EvalServer drain thread.  `experience`
  /// (optional, must outlive the search) feeds the warm-start lookup,
  /// consulted only when config.warm_start is on — the same root seeding
  /// as the serial CombMcts, applied under the tree lock at the initial
  /// root's expansion commit.
  ParallelCombMcts(rl::SteinerSelector& selector, CombMctsConfig config = {},
                   const experience::Store* experience = nullptr);

  /// Same contract as CombMcts::run, including the anytime mode: with a
  /// `deadline`, workers stop claiming iterations once it has passed (the
  /// first iteration of the run is always executed — the zero-slack
  /// fallback), in-flight leaf evaluations past the deadline are cancelled
  /// through the EvalServer and their virtual losses reverted, and the
  /// result's best_selected is the best fully-evaluated state.  A run
  /// whose deadline never fires is bitwise identical to the unbounded run
  /// at search_workers == 1.  May be called repeatedly (the EvalServer
  /// persists across episodes).
  CombMctsResult run(const HananGrid& grid,
                     const SearchDeadline& deadline = std::nullopt);

  /// Resolved worker count (search_workers == 0 -> hardware concurrency).
  std::int32_t workers() const { return workers_; }

  /// The shared inference server (test/diagnostic hook).
  EvalServer& eval_server() { return server_; }

 private:
  rl::SteinerSelector& selector_;
  CombMctsConfig config_;
  const experience::Store* experience_;
  std::int32_t workers_;
  EvalServer server_;
};

}  // namespace oar::mcts
