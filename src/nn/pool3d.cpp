#include "nn/pool3d.hpp"

#include <algorithm>
#include <limits>

namespace oar::nn {

Tensor MaxPool3d::forward(const Tensor& input) {
  assert(input.dim() == 4);
  const std::int32_t C = input.shape(0), D0 = input.shape(1), D1 = input.shape(2),
                     D2 = input.shape(3);
  const std::int32_t O0 = out_dim(D0), O1 = out_dim(D1), O2 = out_dim(D2);
  if (!training()) {
    Tensor out({C, O0, O1, O2});
    infer_into(input.data(), C, D0, D1, D2, out.data());
    return out;
  }
  in_shape_ = input.shape();

  Tensor out({C, O0, O1, O2});
  argmax_.assign(std::size_t(out.numel()), 0);

  const float* x = input.data();
  float* y = out.data();
  std::int64_t oi = 0;
  for (std::int32_t c = 0; c < C; ++c) {
    const std::int64_t cbase = std::int64_t(c) * D0 * D1 * D2;
    for (std::int32_t o0 = 0; o0 < O0; ++o0) {
      for (std::int32_t o1 = 0; o1 < O1; ++o1) {
        for (std::int32_t o2 = 0; o2 < O2; ++o2, ++oi) {
          float best = -std::numeric_limits<float>::infinity();
          std::int64_t best_idx = -1;
          for (std::int32_t z0 = o0 * 2; z0 < std::min(D0, o0 * 2 + 2); ++z0) {
            for (std::int32_t z1 = o1 * 2; z1 < std::min(D1, o1 * 2 + 2); ++z1) {
              for (std::int32_t z2 = o2 * 2; z2 < std::min(D2, o2 * 2 + 2); ++z2) {
                const std::int64_t idx =
                    cbase + (std::int64_t(z0) * D1 + z1) * D2 + z2;
                if (x[idx] > best) {
                  best = x[idx];
                  best_idx = idx;
                }
              }
            }
          }
          y[oi] = best;
          argmax_[std::size_t(oi)] = best_idx;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool3d::forward_batch(const Tensor& input) {
  assert(input.dim() == 5);
  const std::int32_t N = input.shape(0), C = input.shape(1), D0 = input.shape(2),
                     D1 = input.shape(3), D2 = input.shape(4);
  const std::int32_t O0 = out_dim(D0), O1 = out_dim(D1), O2 = out_dim(D2);

  Tensor out({N, C, O0, O1, O2});
  const float* x = input.data();
  float* y = out.data();
  std::int64_t oi = 0;
  for (std::int64_t nc = 0; nc < std::int64_t(N) * C; ++nc) {
    const std::int64_t cbase = nc * D0 * D1 * D2;
    for (std::int32_t o0 = 0; o0 < O0; ++o0) {
      for (std::int32_t o1 = 0; o1 < O1; ++o1) {
        for (std::int32_t o2 = 0; o2 < O2; ++o2, ++oi) {
          float best = -std::numeric_limits<float>::infinity();
          for (std::int32_t z0 = o0 * 2; z0 < std::min(D0, o0 * 2 + 2); ++z0) {
            for (std::int32_t z1 = o1 * 2; z1 < std::min(D1, o1 * 2 + 2); ++z1) {
              for (std::int32_t z2 = o2 * 2; z2 < std::min(D2, o2 * 2 + 2); ++z2) {
                best = std::max(best,
                                x[cbase + (std::int64_t(z0) * D1 + z1) * D2 + z2]);
              }
            }
          }
          y[oi] = best;
        }
      }
    }
  }
  return out;
}

void MaxPool3d::infer_into(const float* in, std::int32_t C, std::int32_t D0,
                           std::int32_t D1, std::int32_t D2, float* out) const {
  const std::int32_t O0 = out_dim(D0), O1 = out_dim(D1), O2 = out_dim(D2);
  std::int64_t oi = 0;
  for (std::int32_t c = 0; c < C; ++c) {
    const std::int64_t cbase = std::int64_t(c) * D0 * D1 * D2;
    for (std::int32_t o0 = 0; o0 < O0; ++o0) {
      for (std::int32_t o1 = 0; o1 < O1; ++o1) {
        for (std::int32_t o2 = 0; o2 < O2; ++o2, ++oi) {
          float best = -std::numeric_limits<float>::infinity();
          for (std::int32_t z0 = o0 * 2; z0 < std::min(D0, o0 * 2 + 2); ++z0) {
            for (std::int32_t z1 = o1 * 2; z1 < std::min(D1, o1 * 2 + 2); ++z1) {
              for (std::int32_t z2 = o2 * 2; z2 < std::min(D2, o2 * 2 + 2); ++z2) {
                best = std::max(best,
                                in[cbase + (std::int64_t(z0) * D1 + z1) * D2 + z2]);
              }
            }
          }
          out[oi] = best;
        }
      }
    }
  }
}

Tensor MaxPool3d::backward(const Tensor& grad_output) {
  assert(training());  // inference-mode forward retains nothing
  assert(!in_shape_.empty());
  Tensor grad_input(in_shape_);
  const float* go = grad_output.data();
  float* gi = grad_input.data();
  for (std::size_t i = 0; i < argmax_.size(); ++i) {
    gi[argmax_[i]] += go[i];
  }
  return grad_input;
}

Tensor UpsampleNearest3d::forward(const Tensor& input) {
  assert(input.dim() == 4);
  assert(t0_ > 0 && t1_ > 0 && t2_ > 0);
  const std::int32_t C = input.shape(0), D0 = input.shape(1), D1 = input.shape(2),
                     D2 = input.shape(3);
  if (training()) in_shape_ = input.shape();

  Tensor out({C, t0_, t1_, t2_});
  infer_into(input.data(), C, D0, D1, D2, out.data());
  return out;
}

void UpsampleNearest3d::infer_into(const float* in, std::int32_t C,
                                   std::int32_t D0, std::int32_t D1,
                                   std::int32_t D2, float* out) const {
  assert(t0_ > 0 && t1_ > 0 && t2_ > 0);
  std::int64_t oi = 0;
  for (std::int32_t c = 0; c < C; ++c) {
    const std::int64_t cbase = std::int64_t(c) * D0 * D1 * D2;
    for (std::int32_t o0 = 0; o0 < t0_; ++o0) {
      const std::int32_t z0 = std::min(D0 - 1, std::int32_t(std::int64_t(o0) * D0 / t0_));
      for (std::int32_t o1 = 0; o1 < t1_; ++o1) {
        const std::int32_t z1 = std::min(D1 - 1, std::int32_t(std::int64_t(o1) * D1 / t1_));
        for (std::int32_t o2 = 0; o2 < t2_; ++o2, ++oi) {
          const std::int32_t z2 =
              std::min(D2 - 1, std::int32_t(std::int64_t(o2) * D2 / t2_));
          out[oi] = in[cbase + (std::int64_t(z0) * D1 + z1) * D2 + z2];
        }
      }
    }
  }
}

Tensor UpsampleNearest3d::backward(const Tensor& grad_output) {
  assert(training());  // inference-mode forward retains nothing
  assert(!in_shape_.empty());
  const std::int32_t C = in_shape_[0], D0 = in_shape_[1], D1 = in_shape_[2],
                     D2 = in_shape_[3];
  Tensor grad_input(in_shape_);
  const float* go = grad_output.data();
  float* gi = grad_input.data();
  std::int64_t oi = 0;
  for (std::int32_t c = 0; c < C; ++c) {
    const std::int64_t cbase = std::int64_t(c) * D0 * D1 * D2;
    for (std::int32_t o0 = 0; o0 < t0_; ++o0) {
      const std::int32_t z0 = std::min(D0 - 1, std::int32_t(std::int64_t(o0) * D0 / t0_));
      for (std::int32_t o1 = 0; o1 < t1_; ++o1) {
        const std::int32_t z1 = std::min(D1 - 1, std::int32_t(std::int64_t(o1) * D1 / t1_));
        for (std::int32_t o2 = 0; o2 < t2_; ++o2, ++oi) {
          const std::int32_t z2 =
              std::min(D2 - 1, std::int32_t(std::int64_t(o2) * D2 / t2_));
          gi[cbase + (std::int64_t(z0) * D1 + z1) * D2 + z2] += go[oi];
        }
      }
    }
  }
  return grad_input;
}

}  // namespace oar::nn
