file(REMOVE_RECURSE
  "CMakeFiles/macro_blockage.dir/macro_blockage.cpp.o"
  "CMakeFiles/macro_blockage.dir/macro_blockage.cpp.o.d"
  "macro_blockage"
  "macro_blockage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/macro_blockage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
