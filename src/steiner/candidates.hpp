#pragma once

// Steiner-point candidate generation shared by the algorithmic baselines.
//
// Candidates are classic Hanan corner points: for close terminal pairs
// (a, b), the two rectilinear corners (a.h, b.v) and (b.h, a.v) on both
// terminals' layers, plus the pair midpoint cell.  Candidates are ranked by
// an obstacle-blind geometric centrality score (cheap), and the exact gain
// of only the top few is evaluated by the callers with a full OARMST
// rebuild (expensive).

#include <vector>

#include "hanan/hanan_grid.hpp"

namespace oar::steiner {

using hanan::HananGrid;
using hanan::Vertex;

/// Obstacle-blind separable distance oracle over the Hanan grid: distance
/// between two cells is the sum of the step costs between their columns and
/// rows plus via cost times the layer difference.
class DistanceOracle {
 public:
  explicit DistanceOracle(const HananGrid& grid);

  double operator()(Vertex a, Vertex b) const;

 private:
  const HananGrid& grid_;
  std::vector<double> x_prefix_;  // x_prefix_[h] = sum of x steps before column h
  std::vector<double> y_prefix_;
};

/// Ranked candidate list (best first).  Excludes blocked vertices, pins and
/// `exclude` entries; deduplicated; at most `max_candidates` entries.
std::vector<Vertex> corner_candidates(const HananGrid& grid,
                                      const std::vector<Vertex>& terminals,
                                      int neighbors_per_terminal,
                                      int max_candidates,
                                      const std::vector<Vertex>& exclude = {});

}  // namespace oar::steiner
