file(REMOVE_RECURSE
  "CMakeFiles/oarsmt_cli.dir/oarsmt_cli.cpp.o"
  "CMakeFiles/oarsmt_cli.dir/oarsmt_cli.cpp.o.d"
  "oarsmt_cli"
  "oarsmt_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oarsmt_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
