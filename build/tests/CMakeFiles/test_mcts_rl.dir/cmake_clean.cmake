file(REMOVE_RECURSE
  "CMakeFiles/test_mcts_rl.dir/test_actor_critic.cpp.o"
  "CMakeFiles/test_mcts_rl.dir/test_actor_critic.cpp.o.d"
  "CMakeFiles/test_mcts_rl.dir/test_augment.cpp.o"
  "CMakeFiles/test_mcts_rl.dir/test_augment.cpp.o.d"
  "CMakeFiles/test_mcts_rl.dir/test_comb_mcts.cpp.o"
  "CMakeFiles/test_mcts_rl.dir/test_comb_mcts.cpp.o.d"
  "CMakeFiles/test_mcts_rl.dir/test_dataset.cpp.o"
  "CMakeFiles/test_mcts_rl.dir/test_dataset.cpp.o.d"
  "CMakeFiles/test_mcts_rl.dir/test_selector.cpp.o"
  "CMakeFiles/test_mcts_rl.dir/test_selector.cpp.o.d"
  "CMakeFiles/test_mcts_rl.dir/test_seq_mcts.cpp.o"
  "CMakeFiles/test_mcts_rl.dir/test_seq_mcts.cpp.o.d"
  "test_mcts_rl"
  "test_mcts_rl.pdb"
  "test_mcts_rl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mcts_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
