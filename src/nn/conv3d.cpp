#include "nn/conv3d.hpp"

#include <cmath>

#include "nn/inference.hpp"

namespace oar::nn {

Conv3d::Conv3d(std::int32_t in_channels, std::int32_t out_channels,
               std::int32_t kernel, util::Rng& rng, std::int32_t padding)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      padding_(padding < 0 ? kernel / 2 : padding) {
  assert(kernel % 2 == 1);
  const float stddev =
      std::sqrt(2.0f / (float(in_channels) * float(kernel) * float(kernel) * float(kernel)));
  weight_ = Parameter(
      "conv.weight",
      Tensor::randn({out_channels, in_channels, kernel, kernel, kernel}, rng, stddev));
  bias_ = Parameter("conv.bias", Tensor({out_channels}));
}

void Conv3d::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&weight_);
  out.push_back(&bias_);
}

Tensor Conv3d::forward(const Tensor& input) {
  assert(input.dim() == 4);
  assert(input.shape(0) == in_channels_);

  const std::int32_t D0 = input.shape(1), D1 = input.shape(2), D2 = input.shape(3);
  const std::int32_t O0 = D0 + 2 * padding_ - kernel_ + 1;
  const std::int32_t O1 = D1 + 2 * padding_ - kernel_ + 1;
  const std::int32_t O2 = D2 + 2 * padding_ - kernel_ + 1;
  assert(O0 > 0 && O1 > 0 && O2 > 0);

  if (!training()) {
    Tensor out({out_channels_, O0, O1, O2});
    infer_into(input.data(), D0, D1, D2, local_inference_scratch(), out.data());
    return out;
  }
  input_ = input;

  Tensor out({out_channels_, O0, O1, O2});
  const float* in = input.data();
  const float* w = weight_.value.data();
  float* o = out.data();

  const std::int64_t in_plane = std::int64_t(D1) * D2;
  const std::int64_t in_chan = std::int64_t(D0) * in_plane;
  const std::int64_t out_plane = std::int64_t(O1) * O2;
  const std::int64_t out_chan = std::int64_t(O0) * out_plane;
  const std::int64_t w_k3 = std::int64_t(kernel_) * kernel_ * kernel_;
  const std::int64_t w_chan = std::int64_t(in_channels_) * w_k3;

  for (std::int32_t oc = 0; oc < out_channels_; ++oc) {
    const float b = bias_.value[oc];
    float* obase = o + oc * out_chan;
    for (std::int64_t i = 0; i < out_chan; ++i) obase[i] = b;
    for (std::int32_t ic = 0; ic < in_channels_; ++ic) {
      const float* ibase = in + ic * in_chan;
      const float* wbase = w + oc * w_chan + ic * w_k3;
      for (std::int32_t k0 = 0; k0 < kernel_; ++k0) {
        for (std::int32_t k1 = 0; k1 < kernel_; ++k1) {
          for (std::int32_t k2 = 0; k2 < kernel_; ++k2) {
            const float wv = wbase[(std::int64_t(k0) * kernel_ + k1) * kernel_ + k2];
            if (wv == 0.0f) continue;
            // Valid output range so that the input index stays in bounds.
            const std::int32_t i0_lo = std::max(0, padding_ - k0);
            const std::int32_t i0_hi = std::min(O0, D0 + padding_ - k0);
            const std::int32_t i1_lo = std::max(0, padding_ - k1);
            const std::int32_t i1_hi = std::min(O1, D1 + padding_ - k1);
            const std::int32_t i2_lo = std::max(0, padding_ - k2);
            const std::int32_t i2_hi = std::min(O2, D2 + padding_ - k2);
            for (std::int32_t o0 = i0_lo; o0 < i0_hi; ++o0) {
              const std::int32_t z0 = o0 + k0 - padding_;
              for (std::int32_t o1 = i1_lo; o1 < i1_hi; ++o1) {
                const std::int32_t z1 = o1 + k1 - padding_;
                const float* irow = ibase + std::int64_t(z0) * in_plane +
                                    std::int64_t(z1) * D2 + (i2_lo + k2 - padding_);
                float* orow = obase + std::int64_t(o0) * out_plane +
                              std::int64_t(o1) * O2 + i2_lo;
                const std::int32_t len = i2_hi - i2_lo;
                for (std::int32_t t = 0; t < len; ++t) orow[t] += wv * irow[t];
              }
            }
          }
        }
      }
    }
  }
  return out;
}

Tensor Conv3d::backward(const Tensor& grad_output) {
  assert(training());  // inference-mode forward retains nothing
  assert(input_.defined());
  const std::int32_t D0 = input_.shape(1), D1 = input_.shape(2), D2 = input_.shape(3);
  const std::int32_t O0 = grad_output.shape(1), O1 = grad_output.shape(2),
                     O2 = grad_output.shape(3);
  assert(grad_output.shape(0) == out_channels_);

  Tensor grad_input(input_.shape());
  const float* in = input_.data();
  const float* go = grad_output.data();
  const float* w = weight_.value.data();
  float* gw = weight_.grad.data();
  float* gb = bias_.grad.data();
  float* gi = grad_input.data();

  const std::int64_t in_plane = std::int64_t(D1) * D2;
  const std::int64_t in_chan = std::int64_t(D0) * in_plane;
  const std::int64_t out_plane = std::int64_t(O1) * O2;
  const std::int64_t out_chan = std::int64_t(O0) * out_plane;
  const std::int64_t w_k3 = std::int64_t(kernel_) * kernel_ * kernel_;
  const std::int64_t w_chan = std::int64_t(in_channels_) * w_k3;

  for (std::int32_t oc = 0; oc < out_channels_; ++oc) {
    const float* gobase = go + oc * out_chan;
    // Bias gradient: sum of output gradients of this channel.
    double gbs = 0.0;
    for (std::int64_t i = 0; i < out_chan; ++i) gbs += gobase[i];
    gb[oc] += float(gbs);

    for (std::int32_t ic = 0; ic < in_channels_; ++ic) {
      const float* ibase = in + ic * in_chan;
      float* gibase = gi + ic * in_chan;
      const float* wbase = w + oc * w_chan + ic * w_k3;
      float* gwbase = gw + oc * w_chan + ic * w_k3;
      for (std::int32_t k0 = 0; k0 < kernel_; ++k0) {
        for (std::int32_t k1 = 0; k1 < kernel_; ++k1) {
          for (std::int32_t k2 = 0; k2 < kernel_; ++k2) {
            const std::int64_t widx = (std::int64_t(k0) * kernel_ + k1) * kernel_ + k2;
            const float wv = wbase[widx];
            double gws = 0.0;
            const std::int32_t i0_lo = std::max(0, padding_ - k0);
            const std::int32_t i0_hi = std::min(O0, D0 + padding_ - k0);
            const std::int32_t i1_lo = std::max(0, padding_ - k1);
            const std::int32_t i1_hi = std::min(O1, D1 + padding_ - k1);
            const std::int32_t i2_lo = std::max(0, padding_ - k2);
            const std::int32_t i2_hi = std::min(O2, D2 + padding_ - k2);
            for (std::int32_t o0 = i0_lo; o0 < i0_hi; ++o0) {
              const std::int32_t z0 = o0 + k0 - padding_;
              for (std::int32_t o1 = i1_lo; o1 < i1_hi; ++o1) {
                const std::int32_t z1 = o1 + k1 - padding_;
                const float* irow = ibase + std::int64_t(z0) * in_plane +
                                    std::int64_t(z1) * D2 + (i2_lo + k2 - padding_);
                float* girow = gibase + std::int64_t(z0) * in_plane +
                               std::int64_t(z1) * D2 + (i2_lo + k2 - padding_);
                const float* gorow = gobase + std::int64_t(o0) * out_plane +
                                     std::int64_t(o1) * O2 + i2_lo;
                const std::int32_t len = i2_hi - i2_lo;
                for (std::int32_t t = 0; t < len; ++t) {
                  gws += double(gorow[t]) * irow[t];
                  girow[t] += wv * gorow[t];
                }
              }
            }
            gwbase[widx] += float(gws);
          }
        }
      }
    }
  }
  return grad_input;
}

}  // namespace oar::nn
