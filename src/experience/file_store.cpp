#include "experience/file_store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <stdexcept>

#include "util/hash.hpp"

namespace oar::experience {

namespace {

constexpr char kMagic[] = "OAREXP1\n";     // 8 bytes, no NUL on disk
constexpr std::size_t kMagicLen = 8;
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderLen = kMagicLen + 4 + 4;  // magic|version|reserved
constexpr std::uint32_t kFrameMagic = 0x52505845u;     // "EXPR" little-endian
constexpr std::size_t kFrameHead = 4 + 8;              // magic | payload_len
constexpr std::size_t kFrameTail = 8;                  // fnv1a64(payload)
// Frame-length ceiling mirrors the checkpoint loader's corrupt-length guard.
constexpr std::uint64_t kMaxPayloadBytes = 1ull << 33;

template <typename T>
T load_pod(const char* p) {
  T v{};
  std::memcpy(&v, p, sizeof(T));
  return v;
}

template <typename T>
void put_pod(std::string& out, const T& v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(T));
}

void write_all(int fd, const char* data, std::size_t n, const char* what) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("experience::FileStore: write failed (") +
                               what + "): " + std::strerror(errno));
    }
    data += w;
    n -= std::size_t(w);
  }
}

std::string header_bytes() {
  std::string h(kMagic, kMagicLen);
  put_pod(h, kVersion);
  put_pod(h, std::uint32_t{0});
  return h;
}

}  // namespace

FileStore::FileStore(std::string path, bool read_only)
    : path_(std::move(path)), read_only_(read_only) {
  std::unique_lock lock(mu_);
  open_and_map();
  stats_.recovered = stats_.records;
}

FileStore::~FileStore() {
  try {
    flush();
  } catch (...) {
    // Destructor flush is best-effort; data already put() remains readable
    // in this process and the next open recovers the flushed prefix.
  }
  std::unique_lock lock(mu_);
  unmap();
  if (fd_ >= 0) ::close(fd_);
}

void FileStore::open_and_map() {
  const int flags = read_only_ ? O_RDONLY : (O_RDWR | O_CREAT | O_APPEND);
  fd_ = ::open(path_.c_str(), flags, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("experience::FileStore: cannot open '" + path_ +
                             "': " + std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd_, &st) != 0) {
    throw std::runtime_error("experience::FileStore: fstat failed on '" +
                             path_ + "': " + std::strerror(errno));
  }
  if (st.st_size == 0 && !read_only_) {
    const std::string h = header_bytes();
    write_all(fd_, h.data(), h.size(), "header");
    ::fdatasync(fd_);
    st.st_size = off_t(h.size());
  }

  if (st.st_size == 0) {
    // Read-only view of a not-yet-created store: empty, not an error.
    mapped_len_ = kHeaderLen;
    stats_.file_bytes = 0;
    return;
  }
  if (std::size_t(st.st_size) < kHeaderLen) {
    throw std::runtime_error("experience::FileStore: '" + path_ +
                             "' is too short to be an OAREXP1 file");
  }

  void* p = ::mmap(nullptr, std::size_t(st.st_size), PROT_READ, MAP_PRIVATE,
                   fd_, 0);
  if (p == MAP_FAILED) {
    throw std::runtime_error("experience::FileStore: mmap failed on '" +
                             path_ + "': " + std::strerror(errno));
  }
  map_ = static_cast<const char*>(p);
  map_len_ = std::uint64_t(st.st_size);
  mapped_len_ = map_len_;
  stats_.file_bytes = map_len_;

  if (std::memcmp(map_, kMagic, kMagicLen) != 0) {
    unmap();
    throw std::runtime_error("experience::FileStore: '" + path_ +
                             "' is not an OAREXP1 experience file");
  }
  const std::uint32_t version = load_pod<std::uint32_t>(map_ + kMagicLen);
  if (version != kVersion) {
    unmap();
    throw std::runtime_error("experience::FileStore: '" + path_ +
                             "' has unsupported version " +
                             std::to_string(version));
  }
  const std::uint64_t good_end = scan_region(map_, kHeaderLen, map_len_);
  if (good_end < map_len_ && !read_only_) {
    // Truncate the torn tail before appending: O_APPEND would otherwise
    // write new frames *after* the tear, where no future open could reach
    // them.  Remap so the mapping length matches the file again.
    if (::ftruncate(fd_, off_t(good_end)) != 0) {
      throw std::runtime_error("experience::FileStore: ftruncate failed on '" +
                               path_ + "': " + std::strerror(errno));
    }
    ::munmap(const_cast<char*>(map_), std::size_t(map_len_));
    map_len_ = good_end;
    mapped_len_ = good_end;
    stats_.file_bytes = good_end;
    void* remap = ::mmap(nullptr, std::size_t(map_len_), PROT_READ,
                         MAP_PRIVATE, fd_, 0);
    if (remap == MAP_FAILED) {
      map_ = nullptr;
      map_len_ = 0;
      throw std::runtime_error("experience::FileStore: remap failed on '" +
                               path_ + "': " + std::strerror(errno));
    }
    map_ = static_cast<const char*>(remap);
  }
}

void FileStore::unmap() {
  if (map_ != nullptr) {
    ::munmap(const_cast<char*>(map_), std::size_t(map_len_));
    map_ = nullptr;
    map_len_ = 0;
  }
}

std::uint64_t FileStore::scan_region(const char* data, std::uint64_t begin,
                                     std::uint64_t end) {
  std::uint64_t off = begin;
  while (off + kFrameHead + kFrameTail <= end) {
    if (load_pod<std::uint32_t>(data + off) != kFrameMagic) break;
    const std::uint64_t len = load_pod<std::uint64_t>(data + off + 4);
    if (len > kMaxPayloadBytes ||
        len > end - off - kFrameHead - kFrameTail) {
      break;
    }
    const char* payload = data + off + kFrameHead;
    const std::uint64_t sum =
        load_pod<std::uint64_t>(payload + len);
    if (util::fnv1a64(payload, std::size_t(len)) != sum) break;

    const Loc loc{off + kFrameHead, len};
    CanonicalKey key;
    ExperienceRecord rec;
    if (!parse_at(loc, &key, &rec)) break;  // fail-closed on record bytes
    index_payload(loc);
    off += kFrameHead + len + kFrameTail;
  }
  // Anything between the first bad frame and EOF is a torn tail (or
  // corruption): recovered records end here, the rest is dropped.
  stats_.tail_lost_bytes += end - off;
  return off;
}

const char* FileStore::at(std::uint64_t offset) const {
  if (offset < mapped_len_) return map_ + offset;
  return overlay_.data() + (offset - mapped_len_);
}

bool FileStore::parse_at(const Loc& loc, CanonicalKey* key,
                         ExperienceRecord* rec) const {
  const char* p = at(loc.offset);
  if (loc.len < 4) return false;
  const std::uint32_t key_len = load_pod<std::uint32_t>(p);
  if (key_len == 0 || std::uint64_t(key_len) + 4 > loc.len) return false;
  if (key != nullptr) {
    *key = CanonicalKey::from_bytes(std::string(p + 4, key_len));
  }
  if (rec != nullptr) {
    if (!deserialize_record(p + 4 + key_len,
                            std::size_t(loc.len - 4 - key_len), *rec)) {
      return false;
    }
  }
  return true;
}

void FileStore::index_payload(const Loc& loc) {
  CanonicalKey key;
  ExperienceRecord rec;
  if (!parse_at(loc, &key, &rec)) return;
  auto [it, inserted] = index_.try_emplace(key, loc);
  if (!inserted) {
    stats_.dead_bytes += it->second.len + kFrameHead + kFrameTail;
    it->second = loc;
  } else {
    ++stats_.records;
  }
  if (rec.has_warm_start()) {
    base_index_[util::fnv1a64(rec.base_key)].push_back(loc);
  }
}

bool FileStore::get(const CanonicalKey& key, ExperienceRecord& out) const {
  std::shared_lock lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  return parse_at(it->second, nullptr, &out);
}

std::vector<ExperienceRecord> FileStore::match_base(std::string_view base_key,
                                                    std::size_t limit) const {
  std::vector<ExperienceRecord> out;
  if (limit == 0) return out;
  std::shared_lock lock(mu_);
  const auto it = base_index_.find(util::fnv1a64(base_key));
  if (it == base_index_.end()) return out;
  // Newest last in the index; return newest first.
  for (auto loc = it->second.rbegin();
       loc != it->second.rend() && out.size() < limit; ++loc) {
    ExperienceRecord rec;
    if (parse_at(*loc, nullptr, &rec) && rec.base_key == base_key) {
      out.push_back(std::move(rec));
    }
  }
  return out;
}

void FileStore::put(const CanonicalKey& key, const ExperienceRecord& rec) {
  if (read_only_ || key.empty()) return;
  std::string payload;
  payload.reserve(4 + key.bytes().size() + 256);
  put_pod(payload, std::uint32_t(key.bytes().size()));
  payload.append(key.bytes());
  payload.append(serialize_record(rec));

  std::unique_lock lock(mu_);
  const std::uint64_t offset =
      mapped_len_ + overlay_.size() + kFrameHead;
  put_pod(overlay_, kFrameMagic);
  put_pod(overlay_, std::uint64_t(payload.size()));
  overlay_.append(payload);
  put_pod(overlay_, util::fnv1a64(payload));
  index_payload(Loc{offset, payload.size()});
  ++stats_.appended;
  stats_.pending_bytes = overlay_.size() - flushed_overlay_;
}

void FileStore::flush() {
  std::unique_lock lock(mu_);
  if (read_only_ || fd_ < 0) return;
  const std::size_t n = overlay_.size() - flushed_overlay_;
  if (n == 0) return;
  write_all(fd_, overlay_.data() + flushed_overlay_, n, "frames");
  ::fdatasync(fd_);
  flushed_overlay_ = overlay_.size();
  stats_.file_bytes += n;
  stats_.pending_bytes = 0;
  ++stats_.flushes;
}

void FileStore::compact() {
  flush();
  std::unique_lock lock(mu_);
  if (read_only_ || fd_ < 0) return;

  // Live frames ordered by file position, so compaction is deterministic
  // and preserves relative age (base_index recency survives the rewrite).
  std::vector<Loc> live;
  live.reserve(index_.size());
  for (const auto& [key, loc] : index_) live.push_back(loc);
  std::sort(live.begin(), live.end(),
            [](const Loc& a, const Loc& b) { return a.offset < b.offset; });

  const std::string tmp_path = path_ + ".tmp";
  const int tmp_fd =
      ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (tmp_fd < 0) {
    throw std::runtime_error("experience::FileStore: cannot create '" +
                             tmp_path + "': " + std::strerror(errno));
  }
  try {
    const std::string h = header_bytes();
    write_all(tmp_fd, h.data(), h.size(), "compact header");
    for (const Loc& loc : live) {
      // Copy the whole frame verbatim; the checksum is content-addressed,
      // so it stays valid at its new offset.
      write_all(tmp_fd, at(loc.offset - kFrameHead),
                std::size_t(kFrameHead + loc.len + kFrameTail),
                "compact frame");
    }
    ::fdatasync(tmp_fd);
  } catch (...) {
    ::close(tmp_fd);
    std::remove(tmp_path.c_str());
    throw;
  }
  ::close(tmp_fd);
  if (std::rename(tmp_path.c_str(), path_.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    throw std::runtime_error("experience::FileStore: rename '" + tmp_path +
                             "' -> '" + path_ + "' failed: " +
                             std::strerror(errno));
  }

  // Remap and reindex against the rewritten file.
  unmap();
  ::close(fd_);
  fd_ = -1;
  overlay_.clear();
  flushed_overlay_ = 0;
  index_.clear();
  base_index_.clear();
  const FileStoreStats kept = stats_;
  stats_ = FileStoreStats{};
  open_and_map();
  stats_.recovered = kept.recovered;
  stats_.appended = kept.appended;
  stats_.flushes = kept.flushes;
  stats_.compactions = kept.compactions + 1;
  stats_.tail_lost_bytes = kept.tail_lost_bytes;
}

std::size_t FileStore::size() const {
  std::shared_lock lock(mu_);
  return index_.size();
}

FileStoreStats FileStore::stats() const {
  std::shared_lock lock(mu_);
  return stats_;
}

}  // namespace oar::experience
