#include "experience/record.hpp"

#include <algorithm>
#include <cstring>
#include <limits>

namespace oar::experience {

namespace {

// Serialization element-count ceiling: a corrupt length field must never
// trigger a giant allocation.  The largest grids in the repo are a few
// hundred thousand vertices; 1<<26 leaves two orders of headroom.
constexpr std::uint32_t kMaxElems = 1u << 26;

constexpr std::uint32_t kRecordVersion = 1;

void put_u32(std::string& out, std::uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void put_i32(std::string& out, std::int32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void put_f64(std::string& out, double v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

/// Bounds-checked little-endian cursor over an untrusted byte range.
struct Reader {
  const char* p;
  std::size_t left;
  bool ok = true;

  template <typename T>
  T pod() {
    T v{};
    if (left < sizeof(T)) {
      ok = false;
      return v;
    }
    std::memcpy(&v, p, sizeof(T));
    p += sizeof(T);
    left -= sizeof(T);
    return v;
  }

  /// Element count with the sanity ceiling applied.
  std::uint32_t count() {
    const std::uint32_t n = pod<std::uint32_t>();
    if (n > kMaxElems) ok = false;
    return ok ? n : 0;
  }

  bool bytes(std::string& out, std::size_t n) {
    if (left < n) {
      ok = false;
      return false;
    }
    out.assign(p, n);
    p += n;
    left -= n;
    return true;
  }
};

}  // namespace

std::string serialize_record(const ExperienceRecord& rec) {
  std::string out;
  out.reserve(64 + rec.edges.size() * 8 + rec.steiner.size() * 4 +
              rec.base_key.size() + rec.pins_base.size() * 4 +
              rec.best_base.size() * 4 + rec.fsp_base.size() * 4);
  put_u32(out, kRecordVersion);
  put_i32(out, rec.h);
  put_i32(out, rec.v);
  put_i32(out, rec.m);
  out.push_back(rec.connected ? 1 : 0);
  out.push_back(rec.has_warm_start() ? 1 : 0);
  put_f64(out, rec.cost);
  put_u32(out, std::uint32_t(rec.edges.size()));
  for (const route::GridEdge& e : rec.edges) {
    put_i32(out, e.a);
    put_i32(out, e.b);
  }
  put_u32(out, std::uint32_t(rec.steiner.size()));
  for (const Vertex v : rec.steiner) put_i32(out, v);
  if (rec.has_warm_start()) {
    put_u32(out, std::uint32_t(rec.base_key.size()));
    out.append(rec.base_key);
    put_u32(out, std::uint32_t(rec.pins_base.size()));
    for (const Vertex v : rec.pins_base) put_i32(out, v);
    put_u32(out, std::uint32_t(rec.best_base.size()));
    for (const Vertex v : rec.best_base) put_i32(out, v);
    put_u32(out, std::uint32_t(rec.fsp_base.size()));
    for (const float f : rec.fsp_base) {
      out.append(reinterpret_cast<const char*>(&f), sizeof(f));
    }
  }
  return out;
}

bool deserialize_record(const char* data, std::size_t n,
                        ExperienceRecord& out) {
  Reader r{data, n};
  const std::uint32_t version = r.pod<std::uint32_t>();
  if (!r.ok || version != kRecordVersion) return false;
  out = ExperienceRecord{};
  out.h = r.pod<std::int32_t>();
  out.v = r.pod<std::int32_t>();
  out.m = r.pod<std::int32_t>();
  const char connected = r.pod<char>();
  const char has_warm = r.pod<char>();
  if (!r.ok || (connected & ~1) || (has_warm & ~1)) return false;
  out.connected = connected != 0;
  out.cost = r.pod<double>();

  std::uint32_t cnt = r.count();
  out.edges.resize(cnt);
  for (std::uint32_t i = 0; i < cnt && r.ok; ++i) {
    out.edges[i].a = r.pod<std::int32_t>();
    out.edges[i].b = r.pod<std::int32_t>();
  }
  cnt = r.count();
  out.steiner.resize(r.ok ? cnt : 0);
  for (std::uint32_t i = 0; i < cnt && r.ok; ++i) {
    out.steiner[i] = r.pod<std::int32_t>();
  }

  if (has_warm) {
    const std::uint32_t key_len = r.count();
    if (!r.ok || key_len == 0 || !r.bytes(out.base_key, key_len)) return false;
    cnt = r.count();
    out.pins_base.resize(r.ok ? cnt : 0);
    for (std::uint32_t i = 0; i < cnt && r.ok; ++i) {
      out.pins_base[i] = r.pod<std::int32_t>();
    }
    cnt = r.count();
    out.best_base.resize(r.ok ? cnt : 0);
    for (std::uint32_t i = 0; i < cnt && r.ok; ++i) {
      out.best_base[i] = r.pod<std::int32_t>();
    }
    cnt = r.count();
    out.fsp_base.resize(r.ok ? cnt : 0);
    for (std::uint32_t i = 0; i < cnt && r.ok; ++i) {
      out.fsp_base[i] = r.pod<float>();
    }
  }
  return r.ok && r.left == 0;
}

CanonicalForm base_canonical(const HananGrid& grid) {
  HananGrid base = grid;
  base.clear_pins();
  return canonicalize(base);
}

KeyedRecord build_record(const HananGrid& grid, const CanonicalForm& canon,
                         const route::OarmstResult& result,
                         const std::vector<float>& fsp_priority,
                         const std::vector<Vertex>& best) {
  KeyedRecord kr;
  kr.key = CanonicalKey::from_bytes(canon.key);

  ExperienceRecord& rec = kr.record;
  const bool swapped = (canon.spec.rotation % 2) != 0;
  rec.h = swapped ? grid.v_dim() : grid.h_dim();
  rec.v = swapped ? grid.h_dim() : grid.v_dim();
  rec.m = grid.m_dim();
  rec.cost = result.cost;
  rec.connected = result.connected;
  rec.edges.reserve(result.tree.edges().size());
  for (const route::GridEdge& e : result.tree.edges()) {
    rec.edges.push_back(
        route::GridEdge{rl::transform_vertex(grid, e.a, canon.spec),
                        rl::transform_vertex(grid, e.b, canon.spec)});
  }
  rec.steiner.reserve(result.kept_steiner.size());
  for (const Vertex v : result.kept_steiner) {
    rec.steiner.push_back(rl::transform_vertex(grid, v, canon.spec));
  }

  // Warm-start payload: sound only when the full key really ranged over the
  // symmetry orbit (otherwise base-space matching would alias distinct
  // edge-block / bias states).
  if (canon.symmetric && !grid.pins().empty()) {
    HananGrid base = grid;
    base.clear_pins();
    const CanonicalForm bf = canonicalize(base);
    rec.base_key = bf.key;
    rec.pins_base.reserve(grid.pins().size());
    for (const Vertex p : grid.pins()) {
      rec.pins_base.push_back(rl::transform_vertex(base, p, bf.spec));
    }
    std::sort(rec.pins_base.begin(), rec.pins_base.end());
    rec.best_base.reserve(best.size());
    for (const Vertex v : best) {
      rec.best_base.push_back(rl::transform_vertex(base, v, bf.spec));
    }
    std::sort(rec.best_base.begin(), rec.best_base.end());
    if (!fsp_priority.empty() &&
        fsp_priority.size() == std::size_t(grid.num_vertices())) {
      rec.fsp_base.assign(std::size_t(grid.num_vertices()), 0.0f);
      for (Vertex v = 0; v < grid.num_vertices(); ++v) {
        rec.fsp_base[std::size_t(rl::transform_vertex(base, v, bf.spec))] =
            fsp_priority[std::size_t(grid.priority_of(v))];
      }
    }
  }
  return kr;
}

KeyedRecord build_record(const HananGrid& grid,
                         const route::OarmstResult& result,
                         const std::vector<float>& fsp_priority,
                         const std::vector<Vertex>& best) {
  return build_record(grid, canonicalize(grid), result, fsp_priority, best);
}

}  // namespace oar::experience
