#include "rl/selector.hpp"

#include <algorithm>
#include <unordered_set>

#include "nn/activations.hpp"
#include "nn/serialize.hpp"

namespace oar::rl {

SteinerSelector::SteinerSelector(SelectorConfig config)
    : config_(config), net_(config.unet) {
  // Selectors are inference objects first: MCTS, serving and evaluation
  // all query fsp and never backprop.  Training passes flip the mode
  // explicitly (and restore it when done).
  net_.set_training(false);
}

nn::Tensor SteinerSelector::encode(const HananGrid& grid,
                                   const std::vector<Vertex>& extra_pins) {
  nn::Tensor input(
      {hanan::kNumFeatureChannels, grid.h_dim(), grid.v_dim(), grid.m_dim()});
  hanan::encode_features_into(grid, extra_pins, input.data());
  return input;
}

void SteinerSelector::infer_fsp_into(const HananGrid& grid,
                                     const std::vector<Vertex>& extra_pins,
                                     std::vector<double>& out) {
  if (!net_.training()) {
    nn::InferenceScratch& arena = net_.inference_scratch();
    arena.rewind();  // infer() never rewinds, so the input slot survives
    nn::Tensor& input = arena.push(
        {hanan::kNumFeatureChannels, grid.h_dim(), grid.v_dim(), grid.m_dim()});
    features_.encode_into(grid, extra_pins, input.data());
    const nn::Tensor& logits = net_.infer(input);  // (1, H, V, M)
    out.resize(std::size_t(logits.numel()));
    nn::sigmoid_into(logits.data(), logits.numel(), out.data());
    return;
  }
  // Reference path (training mode): full re-encode + scalar forward.  Also
  // the baseline bench_infer measures the fast path against.
  const nn::Tensor input = encode(grid, extra_pins);
  const nn::Tensor logits = net_.forward(input);
  out.resize(std::size_t(logits.numel()));
  nn::sigmoid_into(logits.data(), logits.numel(), out.data());
}

std::vector<double> SteinerSelector::infer_fsp(const HananGrid& grid,
                                               const std::vector<Vertex>& extra_pins) {
  std::vector<double> fsp;
  infer_fsp_into(grid, extra_pins, fsp);
  return fsp;
}

std::vector<Vertex> SteinerSelector::top_k_valid(const HananGrid& grid,
                                                 const std::vector<double>& fsp,
                                                 std::int32_t k,
                                                 const std::vector<Vertex>& extra_pins) {
  if (k <= 0) return {};
  std::unordered_set<Vertex> banned(extra_pins.begin(), extra_pins.end());
  std::vector<std::pair<double, Vertex>> scored;
  scored.reserve(std::size_t(grid.num_vertices()));
  for (Vertex v = 0; v < grid.num_vertices(); ++v) {
    if (grid.is_blocked(v) || grid.is_pin(v) || banned.count(v)) continue;
    scored.emplace_back(fsp[std::size_t(grid.priority_of(v))], v);
  }
  const std::size_t take = std::min<std::size_t>(std::size_t(k), scored.size());
  std::partial_sort(scored.begin(), scored.begin() + std::ptrdiff_t(take), scored.end(),
                    [](const auto& a, const auto& b) {
                      return a.first > b.first || (a.first == b.first && a.second < b.second);
                    });
  std::vector<Vertex> out;
  out.reserve(take);
  for (std::size_t i = 0; i < take; ++i) out.push_back(scored[i].second);
  return out;
}

std::vector<Vertex> SteinerSelector::select_steiner_points(
    const HananGrid& grid, std::int32_t k, const std::vector<Vertex>& extra_pins) {
  const std::vector<double> fsp = infer_fsp(grid, extra_pins);
  return top_k_valid(grid, fsp, k, extra_pins);
}

bool SteinerSelector::save(const std::string& path) {
  return nn::save_parameters(net_, path);
}

bool SteinerSelector::load(const std::string& path) {
  return nn::load_parameters(net_, path);
}

void SteinerSelector::copy_weights_from(SteinerSelector& other) {
  nn::copy_parameters(net_, other.net_);
}

}  // namespace oar::rl
