#pragma once

// Axis-aligned rectangles.  Obstacles are closed rectangles [lo.x, hi.x] x
// [lo.y, hi.y]; routing may touch the boundary but not cross the open
// interior, matching the usual OARSMT convention that wires can hug
// blockage edges.

#include <algorithm>
#include <cassert>

#include "geom/point.hpp"

namespace oar::geom {

struct Rect {
  Point2 lo;
  Point2 hi;

  Rect() = default;
  Rect(Point2 lo_, Point2 hi_) : lo(lo_), hi(hi_) {
    assert(lo.x <= hi.x && lo.y <= hi.y);
  }
  Rect(std::int32_t x0, std::int32_t y0, std::int32_t x1, std::int32_t y1)
      : Rect(Point2{x0, y0}, Point2{x1, y1}) {}

  friend auto operator<=>(const Rect&, const Rect&) = default;

  std::int32_t width() const { return hi.x - lo.x; }
  std::int32_t height() const { return hi.y - lo.y; }
  std::int64_t area() const { return std::int64_t(width()) * height(); }

  /// Point inside the closed rectangle (boundary included).
  bool contains(const Point2& p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }

  /// Point strictly inside the open interior (boundary excluded).
  bool strictly_contains(const Point2& p) const {
    return p.x > lo.x && p.x < hi.x && p.y > lo.y && p.y < hi.y;
  }

  /// Closed rectangles share at least a point.
  bool intersects(const Rect& o) const {
    return lo.x <= o.hi.x && o.lo.x <= hi.x && lo.y <= o.hi.y && o.lo.y <= hi.y;
  }

  /// Open interiors overlap (touching boundaries do not count).
  bool interior_intersects(const Rect& o) const {
    return lo.x < o.hi.x && o.lo.x < hi.x && lo.y < o.hi.y && o.lo.y < hi.y;
  }

  /// Smallest rectangle covering both.
  Rect united(const Rect& o) const {
    return Rect(Point2{std::min(lo.x, o.lo.x), std::min(lo.y, o.lo.y)},
                Point2{std::max(hi.x, o.hi.x), std::max(hi.y, o.hi.y)});
  }
};

}  // namespace oar::geom
