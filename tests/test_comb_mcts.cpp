#include "mcts/comb_mcts.hpp"

#include <gtest/gtest.h>

#include "gen/random_layout.hpp"
#include "mcts/seq_mcts.hpp"

namespace oar::mcts {
namespace {

rl::SelectorConfig tiny_config() {
  rl::SelectorConfig cfg;
  cfg.unet.base_channels = 4;
  cfg.unet.depth = 1;
  cfg.unet.seed = 33;
  return cfg;
}

HananGrid test_grid(std::uint64_t seed, std::int32_t pins = 4) {
  util::Rng rng(seed);
  gen::RandomGridSpec spec;
  spec.h = 6;
  spec.v = 6;
  spec.m = 2;
  spec.min_pins = pins;
  spec.max_pins = pins;
  spec.min_obstacles = 2;
  spec.max_obstacles = 4;
  spec.min_edge_cost = 1;
  spec.max_edge_cost = 10;
  return gen::random_grid(spec, rng);
}

CombMctsConfig quick_config() {
  CombMctsConfig cfg;
  cfg.iterations_per_move = 24;
  cfg.use_critic = true;
  return cfg;
}

TEST(CombMcts, LabelShapeAndRange) {
  rl::SteinerSelector selector(tiny_config());
  const HananGrid grid = test_grid(1);
  CombMcts search(selector, quick_config());
  const CombMctsResult result = search.run(grid);
  EXPECT_EQ(std::int64_t(result.label.size()), grid.num_vertices());
  for (float l : result.label) {
    EXPECT_GE(l, 0.0f);
    EXPECT_LE(l, 1.0f);
  }
}

TEST(CombMcts, MaskZeroOnPinsAndObstacles) {
  rl::SteinerSelector selector(tiny_config());
  const HananGrid grid = test_grid(2);
  CombMcts search(selector, quick_config());
  const CombMctsResult result = search.run(grid);
  for (Vertex v = 0; v < grid.num_vertices(); ++v) {
    const auto p = std::size_t(grid.priority_of(v));
    if (grid.is_pin(v) || grid.is_blocked(v)) {
      EXPECT_FLOAT_EQ(result.label_mask[p], 0.0f);
      EXPECT_FLOAT_EQ(result.label[p], 0.0f);
    } else {
      EXPECT_FLOAT_EQ(result.label_mask[p], 1.0f);
    }
  }
}

TEST(CombMcts, SelectedRespectsBudgetAndValidity) {
  rl::SteinerSelector selector(tiny_config());
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const HananGrid grid = test_grid(seed, 5);
    CombMcts search(selector, quick_config());
    const CombMctsResult result = search.run(grid);
    EXPECT_LE(std::int64_t(result.selected.size()),
              std::int64_t(grid.pins().size()) - 2);
    for (Vertex v : result.selected) {
      EXPECT_FALSE(grid.is_pin(v));
      EXPECT_FALSE(grid.is_blocked(v));
    }
  }
}

TEST(CombMcts, SelectedIsStrictlyPriorityIncreasing) {
  // The compacted action space: executed Steiner points must come out in
  // strictly increasing selection priority (unique combination property).
  rl::SteinerSelector selector(tiny_config());
  for (std::uint64_t seed = 10; seed <= 15; ++seed) {
    const HananGrid grid = test_grid(seed, 6);
    CombMcts search(selector, quick_config());
    const CombMctsResult result = search.run(grid);
    for (std::size_t i = 1; i < result.selected.size(); ++i) {
      EXPECT_GT(grid.priority_of(result.selected[i]),
                grid.priority_of(result.selected[i - 1]));
    }
  }
}

TEST(CombMcts, TwoPinLayoutTerminatesImmediately) {
  rl::SteinerSelector selector(tiny_config());
  const HananGrid grid = test_grid(3, 2);
  CombMcts search(selector, quick_config());
  const CombMctsResult result = search.run(grid);
  EXPECT_TRUE(result.selected.empty());
  EXPECT_DOUBLE_EQ(result.final_cost, result.initial_cost);
  EXPECT_EQ(result.stats.iterations, 0);
  for (float l : result.label) EXPECT_FLOAT_EQ(l, 0.0f);
}

TEST(CombMcts, StatsArePopulated) {
  rl::SteinerSelector selector(tiny_config());
  const HananGrid grid = test_grid(4, 5);
  CombMcts search(selector, quick_config());
  const CombMctsResult result = search.run(grid);
  EXPECT_GT(result.stats.iterations, 0);
  EXPECT_GT(result.stats.expansions, 0);
  EXPECT_GT(result.stats.simulations, 0);
  EXPECT_GE(result.stats.seconds, 0.0);
  EXPECT_GT(result.initial_cost, 0.0);
}

TEST(CombMcts, CurriculumModeRunsWithoutCritic) {
  rl::SteinerSelector selector(tiny_config());
  const HananGrid grid = test_grid(5, 4);
  CombMctsConfig cfg = quick_config();
  cfg.use_critic = false;
  CombMcts search(selector, cfg);
  const CombMctsResult result = search.run(grid);
  EXPECT_GT(result.stats.iterations, 0);
}

TEST(CombMcts, MaxChildrenLimitsBranching) {
  rl::SteinerSelector selector(tiny_config());
  const HananGrid grid = test_grid(6, 5);
  CombMctsConfig cfg = quick_config();
  cfg.max_children = 4;
  CombMcts limited(selector, cfg);
  const CombMctsResult lr = limited.run(grid);
  CombMcts full(selector, quick_config());
  const CombMctsResult fr = full.run(grid);
  // Fewer children => fewer nodes for the same iteration budget.
  EXPECT_LE(lr.stats.nodes, fr.stats.nodes);
}

TEST(CombMcts, CompactedSearchVsSequentialNodeCount) {
  // The paper's search-efficiency claim: with the same iteration budget,
  // the priority-ordered combinatorial tree expands fewer nodes than the
  // unordered tree would need for the same coverage.  We check the weaker
  // per-node branching property: children only have higher priorities.
  rl::SteinerSelector selector(tiny_config());
  const HananGrid grid = test_grid(7, 6);
  CombMcts search(selector, quick_config());
  const CombMctsResult result = search.run(grid);
  EXPECT_GT(result.stats.nodes, 0);
}

TEST(CombMcts, LabelPositiveSomewhereOnMultiPinLayouts) {
  rl::SteinerSelector selector(tiny_config());
  const HananGrid grid = test_grid(8, 6);
  CombMcts search(selector, quick_config());
  const CombMctsResult result = search.run(grid);
  double total = 0.0;
  for (float l : result.label) total += l;
  EXPECT_GT(total, 0.0);
}


TEST(CombMcts, BestCostNeverAboveInitial) {
  rl::SteinerSelector selector(tiny_config());
  for (std::uint64_t seed = 20; seed <= 26; ++seed) {
    const HananGrid grid = test_grid(seed, 5);
    CombMcts search(selector, quick_config());
    const CombMctsResult result = search.run(grid);
    EXPECT_LE(result.best_cost, result.initial_cost + 1e-9);
  }
}

TEST(CombMcts, SearchTreeSmallerThanSequentialOnAggregate) {
  // The paper's search-efficiency claim (Sec. 4.2): the priority-ordered
  // combinatorial tree expands fewer nodes than the unordered conventional
  // tree under the same iteration budget, because permutations of one
  // combination collapse into a single path.
  rl::SteinerSelector selector(tiny_config());
  std::int64_t comb_nodes = 0, seq_nodes = 0;
  for (std::uint64_t seed = 30; seed <= 37; ++seed) {
    const HananGrid grid = test_grid(seed, 6);
    CombMctsConfig cfg = quick_config();
    cfg.iterations_per_move = 48;
    CombMcts comb(selector, cfg);
    comb_nodes += comb.run(grid).stats.nodes;
    SeqMcts seq(selector, cfg);
    seq_nodes += seq.run(grid).stats.nodes;
  }
  EXPECT_LE(comb_nodes, seq_nodes);
}

TEST(CombMcts, PriorUniformMixKeepsDistantActionsReachable) {
  // Without mixing, eq. (1) assigns a vanishing prior to the highest-
  // priority-index vertices; the mixed prior must stay above the floor.
  rl::SteinerSelector selector(tiny_config());
  const HananGrid grid = test_grid(40, 4);
  ActorCritic ac(selector, grid);
  const auto fsp = ac.fsp({});
  const auto policy = ac.policy({}, -1, fsp);
  ASSERT_FALSE(policy.empty());
  CombMctsConfig cfg;
  const double floor = cfg.prior_uniform_mix / double(policy.size());
  // Simulate the expansion mixing and check the last (lowest-prior) action.
  double min_mixed = 1.0;
  for (const auto& [v, p] : policy) {
    min_mixed = std::min(min_mixed,
                         (1.0 - cfg.prior_uniform_mix) * p +
                             cfg.prior_uniform_mix / double(policy.size()));
  }
  EXPECT_GE(min_mixed, floor - 1e-12);
}

}  // namespace
}  // namespace oar::mcts
