file(REMOVE_RECURSE
  "liboar_steiner.a"
)
