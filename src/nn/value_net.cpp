#include "nn/value_net.hpp"

#include "util/validate.hpp"

namespace oar::nn {

void ValueNetConfig::validate() const {
  util::check_field(in_channels >= 1, "ValueNetConfig", "in_channels",
                    "be >= 1", in_channels);
  util::check_field(channels >= 1, "ValueNetConfig", "channels", "be >= 1",
                    channels);
  util::check_field(hidden >= 1, "ValueNetConfig", "hidden", "be >= 1", hidden);
}

ValueNet::ValueNet(ValueNetConfig config) : config_(config) {
  config_.validate();
  util::Rng rng(config_.seed);
  block1_ = std::make_unique<ResidualBlock3d>(config_.in_channels, config_.channels, rng);
  block2_ = std::make_unique<ResidualBlock3d>(config_.channels, config_.channels, rng);
  fc1_ = std::make_unique<Linear>(config_.channels, config_.hidden, rng);
  fc2_ = std::make_unique<Linear>(config_.hidden, 1, rng);
}

void ValueNet::collect_parameters(std::vector<Parameter*>& out) {
  block1_->collect_parameters(out);
  block2_->collect_parameters(out);
  fc1_->collect_parameters(out);
  fc2_->collect_parameters(out);
}

void ValueNet::set_training(bool training) {
  Module::set_training(training);
  block1_->set_training(training);
  block2_->set_training(training);
}

Tensor ValueNet::forward(const Tensor& input) {
  Tensor x = block1_->forward(input);
  x = block2_->forward(x);
  x = gap_.forward(x);
  x = fc1_->forward(x);
  x = relu_.forward(x);
  return fc2_->forward(x);
}

Tensor ValueNet::backward(const Tensor& grad_output) {
  Tensor g = fc2_->backward(grad_output);
  g = relu_.backward(g);
  g = fc1_->backward(g);
  g = gap_.backward(g);
  g = block2_->backward(g);
  return block1_->backward(g);
}

}  // namespace oar::nn
