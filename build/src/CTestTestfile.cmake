# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("geom")
subdirs("hanan")
subdirs("route")
subdirs("steiner")
subdirs("nn")
subdirs("mcts")
subdirs("rl")
subdirs("gen")
subdirs("core")
