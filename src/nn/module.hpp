#pragma once

// Module protocol for the manual-backprop DL library.
//
// Modules process ONE sample at a time (no batch axis) on the training
// path; batching is done by the trainer, which runs forward/backward per
// sample and accumulates parameter gradients before an optimizer step.
// This matches the paper's same-size batches while keeping every layer's
// backward simple and easy to verify with finite differences.  A module
// caches whatever it needs in forward(); backward(grad_out) must be called
// after the matching forward.
//
// For inference there is additionally ONE public batched API:
// forward_batch() takes a tensor with a leading batch dimension (N, ...)
// and returns the stacked outputs (N, ...).  The base-class default loops
// forward() over the samples, so every module is batch-callable; hot
// modules (Conv3d) override it with genuinely batched kernels.  The
// serving layer (src/serve) feeds micro-batches through this path.
// forward_batch() clobbers the single-sample caches, so backward() must
// not be called after it.
//
// set_training(false) switches forward() itself onto the single-sample
// inference engine (DESIGN.md §11): tiled kernels from conv3d_batch.cpp,
// temporaries from an InferenceScratch arena, and NO activation retention —
// so backward() must not be called until set_training(true) has been
// restored and a fresh training forward has run.  Layers assert training()
// at the top of backward() to fail fast on stale caches.

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.hpp"

namespace oar::nn {

/// Learnable tensor plus its gradient accumulator.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;

  Parameter() = default;
  Parameter(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}
};

/// dst.grad += src.grad, element-wise over two parameter lists of the same
/// architecture.  One reduction step of the data-parallel trainer: each
/// worker replica accumulates gradients locally, then replicas are merged
/// pairwise (tree reduction) into the master parameter list.
inline void accumulate_gradients(const std::vector<Parameter*>& dst,
                                 const std::vector<Parameter*>& src) {
  assert(dst.size() == src.size());
  for (std::size_t i = 0; i < dst.size(); ++i) {
    assert(dst[i]->grad.shape() == src[i]->grad.shape());
    dst[i]->grad += src[i]->grad;
  }
}

class Module {
 public:
  virtual ~Module() = default;

  /// Computes the output and caches activations needed for backward().
  virtual Tensor forward(const Tensor& input) = 0;

  /// Given dLoss/dOutput, accumulates parameter gradients and returns
  /// dLoss/dInput.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Batched inference over (N, <sample shape>) -> (N, <output shape>).
  /// Inference-only: invalidates the caches backward() relies on.
  virtual Tensor forward_batch(const Tensor& input);

  /// Appends raw pointers to this module's (and submodules') parameters.
  virtual void collect_parameters(std::vector<Parameter*>& out) { (void)out; }

  std::vector<Parameter*> parameters() {
    std::vector<Parameter*> out;
    collect_parameters(out);
    return out;
  }

  std::int64_t num_parameters() {
    std::int64_t n = 0;
    for (Parameter* p : parameters()) n += p->value.numel();
    return n;
  }

  void zero_grad() {
    for (Parameter* p : parameters()) p->grad.zero();
  }

  virtual void set_training(bool training) { training_ = training; }
  bool training() const { return training_; }

 protected:
  bool training_ = true;
};

inline Tensor Module::forward_batch(const Tensor& input) {
  assert(input.dim() >= 2 && input.shape(0) > 0);
  const std::int32_t n = input.shape(0);
  const std::vector<std::int32_t> sample_shape(input.shape().begin() + 1,
                                               input.shape().end());
  Tensor sample(sample_shape);
  const std::int64_t stride = sample.numel();
  Tensor out;
  for (std::int32_t i = 0; i < n; ++i) {
    std::copy(input.data() + i * stride, input.data() + (i + 1) * stride,
              sample.data());
    const Tensor y = forward(sample);
    if (i == 0) {
      std::vector<std::int32_t> out_shape{n};
      out_shape.insert(out_shape.end(), y.shape().begin(), y.shape().end());
      out = Tensor(std::move(out_shape));
    }
    std::copy(y.data(), y.data() + y.numel(), out.data() + i * y.numel());
  }
  return out;
}

}  // namespace oar::nn
