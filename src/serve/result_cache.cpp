#include "serve/result_cache.hpp"

namespace oar::serve {

std::optional<CachedRoute> ResultCache::get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void ResultCache::put(const std::string& key, CachedRoute value) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(value));
  index_.emplace(key, lru_.begin());
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

void ResultCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
}

}  // namespace oar::serve
