#pragma once

// Shared infrastructure for the table/figure reproduction binaries.
//
// Every bench binary is a plain executable that regenerates one table or
// figure of the paper (scaled to a CPU-minute budget; EXPERIMENTS.md maps
// paper scale -> bench scale) and prints the same rows/series the paper
// reports.  Environment knobs:
//   OARSMTRL_MODEL        — selector checkpoint path (default models/pretrained.bin)
//   OARSMTRL_BENCH_SCALE  — extra workload multiplier (default 1; >1 = more layouts)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/oarsmtrl.hpp"
#include "nn/quant/simd.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace oar::bench {

/// `"machine": {...}` JSON fragment (no trailing comma) identifying the
/// host every BENCH_*.json was produced on: the SIMD level the runtime
/// dispatcher picked (so int8 numbers are comparable across machines),
/// hardware threads, and whether OARSMTRL_FORCE_SCALAR pinned the run.
inline std::string machine_json() {
  std::string s = "\"machine\": {\"isa\": \"";
  s += nn::simd::level_name(nn::simd::dispatch_level());
  s += "\", \"cores\": ";
  s += std::to_string(std::max(1u, std::thread::hardware_concurrency()));
  s += ", \"forced_scalar\": ";
  s += nn::simd::force_scalar_active() ? "true" : "false";
  s += "}";
  return s;
}

inline double env_scale() {
  if (const char* s = std::getenv("OARSMTRL_BENCH_SCALE"); s != nullptr) {
    const double v = std::atof(s);
    if (v > 0.0) return v;
  }
  return 1.0;
}

inline std::shared_ptr<rl::SteinerSelector> bench_selector() {
  // Benches must never train for minutes: fall back to 2 quick stages.
  return core::load_or_train_pretrained(/*fallback_stages=*/2);
}

/// Cheaper Lin18 configuration so the strongest baseline fits the bench
/// budget on the larger scaled subsets.
inline steiner::Lin18Config bench_lin18_config() {
  steiner::Lin18Config cfg;
  cfg.max_evaluations_per_round = 12;
  cfg.neighbors_per_terminal = 3;
  cfg.max_rounds = 12;
  return cfg;
}

inline steiner::Liu14Config bench_liu14_config() {
  steiner::Liu14Config cfg;
  cfg.max_evaluations = 16;
  cfg.neighbors_per_terminal = 3;
  return cfg;
}

inline void print_rule(int width = 96) {
  for (int i = 0; i < width; ++i) std::fputc('-', stdout);
  std::fputc('\n', stdout);
}

/// Win/loss bookkeeping for Table 2.
struct CostDuel {
  util::RunningStats base_cost;
  util::RunningStats ours_cost;
  util::RunningStats improvement_ratio;  // per-layout (base - ours) / base
  int wins = 0, losses = 0, ties = 0;

  void add(double base, double ours) {
    base_cost.add(base);
    ours_cost.add(ours);
    if (base > 0.0) improvement_ratio.add((base - ours) / base);
    const double eps = 1e-9 * std::max(base, ours);
    if (ours < base - eps) ++wins;
    else if (ours > base + eps) ++losses;
    else ++ties;
  }

  double diff_percent() const {
    return base_cost.mean() > 0.0
               ? 100.0 * (base_cost.mean() - ours_cost.mean()) / base_cost.mean()
               : 0.0;
  }
  double avg_imp_percent() const { return 100.0 * improvement_ratio.mean(); }
  double win_rate() const {
    const int n = wins + losses + ties;
    return n == 0 ? 0.0 : 100.0 * wins / n;
  }
  double loss_rate() const {
    const int n = wins + losses + ties;
    return n == 0 ? 0.0 : 100.0 * losses / n;
  }
};

}  // namespace oar::bench
