#pragma once

// Full-chip multi-net router: PathFinder-style negotiated rip-up & reroute
// over one shared HananGrid (DESIGN.md §14).
//
// Iteration 0 routes every net in heuristic order on the bare grid plus a
// congestion cost overlay (chip/congestion.hpp) that reflects the nets
// committed so far.  Each later iteration escalates the present-congestion
// factor, accrues history cost on every over-capacity edge, and rips up &
// reroutes contested nets until no edge is over capacity or the iteration
// cap is hit.  Committed routes are *soft* obstacles throughout — edges
// stay usable, they just get more expensive — so any net routable alone
// stays routable in the full-chip problem and the loop can always trade
// wirelength for overflow.
//
// The single-net engine is pluggable (any steiner::Router — the baselines
// or the RL router); the engine sees the shared grid with exactly the
// active net's pins and the current overlay.  Every overlay write bumps
// HananGrid::revision(), which is the contract that keeps MazeRouter's CSR
// adjacency cache and the RL feature cache coherent across rip-ups: a
// reroute under unchanged congestion re-uses the cached adjacency, a
// changed overlay rebuilds it (DESIGN.md §10/§14).

#include <memory>
#include <string>
#include <vector>

#include "chip/congestion.hpp"
#include "chip/netlist.hpp"
#include "chip/ordering.hpp"
#include "steiner/router_base.hpp"

namespace oar::chip {

struct ChipConfig {
  /// Routing order for iteration 0 (and for reroutes within an iteration).
  NetOrder order = NetOrder::kHpwl;
  /// Custom ordering key; overrides `order` when set.
  OrderKeyFn order_key;
  /// Negotiation iteration cap (>= 1).  Iteration 0 is the initial pass.
  std::int32_t max_iterations = 40;
  /// Per-edge net capacity (>= 1).
  std::int32_t edge_capacity = 1;
  /// Present-congestion multiplier of iteration 0 and its per-iteration
  /// growth (PathFinder's pres_fac schedule): iteration k routes with
  /// present_factor * present_growth^k.  A small initial factor lets nets
  /// take cheap detours around fresh congestion immediately while still
  /// claiming contested edges that matter; escalation then forces the
  /// remaining conflicts apart.
  double present_factor = 0.5;
  double present_growth = 1.6;
  /// History added to every over-capacity edge after each iteration.
  double history_increment = 0.4;
  /// Later iterations rip up only nets crossing over-capacity edges
  /// (false: rip up and reroute everything every iteration).
  bool reroute_only_overflowed = true;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

/// Final committed route of one net (netlist order).
struct NetRoute {
  std::string name;
  route::RouteTree tree;
  /// Base-cost (unbiased) wirelength of the committed tree.
  double wirelength = 0.0;
  std::int32_t vias = 0;
  /// Times this net was routed across all iterations (1 = never ripped).
  std::int32_t reroutes = 0;
  bool routed = false;
};

/// Per-iteration negotiation telemetry (BENCH_chip.json's series).
struct IterationStats {
  std::int32_t iteration = 0;
  std::int64_t overflow = 0;          // after the iteration's reroutes
  std::int64_t overflowed_edges = 0;
  std::int32_t rerouted_nets = 0;
  double present_factor = 0.0;
  double wirelength = 0.0;            // committed base wirelength
  double seconds = 0.0;
};

struct ChipResult {
  /// The shared grid the final trees are bound to (pins and overlay
  /// cleared, so RouteTree::cost() is the base cost).  Kept alive here.
  std::shared_ptr<const HananGrid> grid;
  std::vector<NetRoute> nets;          // netlist order
  std::vector<IterationStats> iterations;
  std::int64_t overflow = 0;           // final
  double wirelength = 0.0;             // final committed base wirelength
  std::int64_t via_count = 0;
  std::int32_t iterations_run = 0;
  std::int32_t routed = 0;
  std::int32_t failed = 0;
  /// True when every net routed and the final overflow is zero.
  bool success = false;
  double total_seconds = 0.0;
};

/// Base-cost wirelength of a tree (sums HananGrid::base_cost_between).
double tree_wirelength(const HananGrid& grid, const route::RouteTree& tree);
/// Number of via (layer-crossing) edges in a tree.
std::int32_t tree_vias(const HananGrid& grid, const route::RouteTree& tree);

class ChipRouter {
 public:
  /// Copies `grid` as the shared working layout; the template grid must
  /// carry no pins of its own (each net brings its pins).  Validates
  /// `config` eagerly.
  ChipRouter(const HananGrid& grid, ChipConfig config = {});

  /// Routes the whole netlist through `engine`.  Throws
  /// std::invalid_argument when Netlist::validate(grid) reports a problem.
  ChipResult route(const Netlist& netlist, steiner::Router& engine);

  const ChipConfig& config() const { return config_; }

 private:
  HananGrid template_grid_;  // copied into a fresh working grid per route()
  ChipConfig config_;
};

}  // namespace oar::chip
