#pragma once

// Random netlist generation for full-chip routing tests and benchmarks.
//
// Pins are sampled without overlap: no vertex serves as a pin of two nets
// (or twice within one net), and blocked vertices and the grid's own pins
// are never used — so a generated netlist always passes
// chip::Netlist::validate on its grid.  With ensure_routable, each net's
// pins are additionally checked mutually reachable by a maze flood on the
// bare grid and resampled otherwise, which (because congestion never
// removes edges) guarantees the negotiated full-chip loop can route every
// net.

#include "chip/netlist.hpp"
#include "util/rng.hpp"
#include "util/validate.hpp"

namespace oar::gen {

struct RandomNetlistSpec {
  std::int32_t min_pins = 2;
  std::int32_t max_pins = 4;
  /// Resample a net whose pins cannot all reach each other on the bare
  /// grid (maze check).
  bool ensure_routable = true;
  /// Sampling attempts per net before giving up (throws std::runtime_error
  /// — the grid is too full for the requested netlist).
  std::int32_t max_attempts_per_net = 64;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const {
    util::check_field(min_pins >= 2, "RandomNetlistSpec", "min_pins",
                      "be >= 2", min_pins);
    util::check_field(max_pins >= min_pins, "RandomNetlistSpec", "max_pins",
                      "be >= min_pins", max_pins);
    util::check_field(max_attempts_per_net >= 1, "RandomNetlistSpec",
                      "max_attempts_per_net", "be >= 1", max_attempts_per_net);
  }
};

/// `n_nets` random nets ("n0", "n1", ...) with non-overlapping pins on the
/// unblocked vertices of `grid`.
chip::Netlist random_netlist(const hanan::HananGrid& grid, std::int32_t n_nets,
                             util::Rng& rng, RandomNetlistSpec spec = {});

}  // namespace oar::gen
