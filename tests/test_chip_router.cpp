#include "chip/chip_router.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "chip/congestion.hpp"
#include "core/router.hpp"
#include "gen/random_layout.hpp"
#include "gen/random_netlist.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "steiner/lin08.hpp"

namespace oar::chip {
namespace {

HananGrid open_grid(std::int32_t h, std::int32_t v, std::int32_t m) {
  return HananGrid(h, v, m, std::vector<double>(std::size_t(h - 1), 1.0),
                   std::vector<double>(std::size_t(v - 1), 1.0), 1.5);
}

/// Recounts usage from the committed trees and checks every edge is within
/// capacity and every tree is a valid routing of its net.
void expect_consistent(const ChipResult& result, const Netlist& netlist,
                       std::int32_t capacity = 1) {
  CongestionMap recount(*result.grid, capacity);
  std::vector<const route::RouteTree*> trees;
  for (std::size_t i = 0; i < result.nets.size(); ++i) {
    const NetRoute& net = result.nets[i];
    ASSERT_TRUE(net.routed) << net.name;
    EXPECT_EQ(net.tree.validate(netlist.nets[i].pins), "") << net.name;
    for (const Vertex v : net.tree.vertices()) {
      EXPECT_FALSE(result.grid->is_blocked(v)) << net.name;
    }
    recount.commit(net.tree);
    trees.push_back(&net.tree);
  }
  EXPECT_EQ(recount.overflow(), 0);
  EXPECT_TRUE(recount.matches(trees));
}

TEST(ChipRouter, TwoNetContentionConvergesToDisjointRoutes) {
  // 4x2 single-layer grid.  Both nets want the bottom row: a spans it,
  // b sits in its middle.  The overflow-free optimum detours one of them
  // through the top row; either way the total wirelength is 6.
  const auto grid = open_grid(4, 2, 1);
  Netlist netlist;
  netlist.nets.push_back({"a", {grid.index(0, 0, 0), grid.index(3, 0, 0)}});
  netlist.nets.push_back({"b", {grid.index(1, 0, 0), grid.index(2, 0, 0)}});

  steiner::Lin08Router engine;
  ChipConfig config;
  config.max_iterations = 20;
  ChipRouter chip_router(grid, config);
  const ChipResult result = chip_router.route(netlist, engine);

  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.overflow, 0);
  EXPECT_EQ(result.routed, 2);
  EXPECT_EQ(result.failed, 0);
  EXPECT_DOUBLE_EQ(result.wirelength, 6.0);
  expect_consistent(result, netlist);

  // Per-iteration telemetry: the series ends at zero overflow.
  ASSERT_FALSE(result.iterations.empty());
  EXPECT_EQ(result.iterations.back().overflow, 0);
  EXPECT_EQ(result.iterations_run, std::int32_t(result.iterations.size()));
}

TEST(ChipRouter, SecondRouteDoesNotDisturbFirstResult) {
  const auto grid = open_grid(4, 2, 1);
  Netlist netlist;
  netlist.nets.push_back({"a", {grid.index(0, 0, 0), grid.index(3, 0, 0)}});
  netlist.nets.push_back({"b", {grid.index(1, 0, 0), grid.index(2, 0, 0)}});

  steiner::Lin08Router engine;
  ChipRouter chip_router(grid);
  const ChipResult first = chip_router.route(netlist, engine);
  const double wl = first.wirelength;
  const ChipResult second = chip_router.route(netlist, engine);
  // Each result owns its grid; the first result's trees still validate.
  EXPECT_NE(first.grid.get(), second.grid.get());
  expect_consistent(first, netlist);
  EXPECT_DOUBLE_EQ(first.wirelength, wl);
  EXPECT_DOUBLE_EQ(second.wirelength, wl);
}

TEST(ChipRouter, FinalGridIsQuiescent) {
  const auto grid = open_grid(4, 2, 1);
  Netlist netlist;
  netlist.nets.push_back({"a", {grid.index(0, 0, 0), grid.index(3, 0, 0)}});
  netlist.nets.push_back({"b", {grid.index(1, 0, 0), grid.index(2, 0, 0)}});
  steiner::Lin08Router engine;
  const ChipResult result = ChipRouter(grid).route(netlist, engine);
  EXPECT_TRUE(result.grid->pins().empty());
  EXPECT_FALSE(result.grid->has_edge_cost_bias());
  // With the overlay cleared, RouteTree::cost() is the base wirelength.
  double total = 0.0;
  for (const NetRoute& net : result.nets) total += net.tree.cost();
  EXPECT_DOUBLE_EQ(total, result.wirelength);
}

TEST(ChipRouter, RejectsNetlistProblemsNamingTheNet) {
  auto grid = open_grid(4, 4, 1);
  grid.block_vertex(grid.index(2, 2, 0));
  Netlist netlist;
  netlist.nets.push_back({"clk", {grid.index(0, 0, 0), grid.index(2, 2, 0)}});
  steiner::Lin08Router engine;
  ChipRouter chip_router(grid);
  try {
    chip_router.route(netlist, engine);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("nets[\"clk\"]"), std::string::npos) << what;
    EXPECT_NE(what.find("blocked"), std::string::npos) << what;
  }
}

TEST(ChipRouter, RejectsTemplateGridWithPins) {
  auto grid = open_grid(4, 4, 1);
  grid.add_pin(grid.index(0, 0, 0));
  EXPECT_THROW(ChipRouter{grid}, std::invalid_argument);
}

TEST(ChipRouter, ReportsUnroutableNetWithoutLivelock) {
  // The middle column is fully blocked on the only layer: net "cross"
  // cannot exist.  The loop must stop early, not burn the iteration cap.
  auto grid = open_grid(5, 3, 1);
  for (std::int32_t v = 0; v < 3; ++v) grid.block_vertex(grid.index(2, v, 0));
  Netlist netlist;
  netlist.nets.push_back({"left", {grid.index(0, 0, 0), grid.index(1, 2, 0)}});
  netlist.nets.push_back({"cross", {grid.index(1, 1, 0), grid.index(3, 1, 0)}});
  steiner::Lin08Router engine;
  ChipConfig config;
  config.max_iterations = 40;
  const ChipResult result = ChipRouter(grid, config).route(netlist, engine);
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.routed, 1);
  EXPECT_EQ(result.failed, 1);
  EXPECT_FALSE(result.nets[1].routed);
  EXPECT_LT(result.iterations_run, config.max_iterations);
}

TEST(ChipRouter, RandomChipConvergesAndValidates) {
  util::Rng rng(7);
  gen::RandomGridSpec spec;
  spec.h = 16;
  spec.v = 16;
  spec.m = 4;
  spec.min_obstacles = 20;
  spec.max_obstacles = 20;
  auto grid = gen::random_grid(spec, rng);
  grid.clear_pins();  // the netlist brings the pins

  const auto netlist = gen::random_netlist(grid, 10, rng);
  EXPECT_EQ(netlist.validate(grid), "");

  steiner::Lin08Router engine;
  const ChipResult result = ChipRouter(grid).route(netlist, engine);
  EXPECT_TRUE(result.success) << "overflow " << result.overflow << " failed "
                              << result.failed;
  expect_consistent(result, netlist);
  EXPECT_GT(result.wirelength, 0.0);
  EXPECT_GE(result.iterations_run, 1);
}

TEST(ChipOrdering, HpwlAndCustomKeys) {
  const auto grid = open_grid(8, 8, 2);
  std::vector<Net> nets = {
      {"big", {grid.index(0, 0, 0), grid.index(7, 7, 1)}},
      {"small", {grid.index(3, 3, 0), grid.index(4, 3, 0)}},
      {"mid", {grid.index(0, 0, 0), grid.index(3, 2, 0)}},
  };
  // HPWL: small (1) < mid (5) < big (7 + 7 + 1.5).
  EXPECT_DOUBLE_EQ(net_hpwl(grid, nets[1]), 1.0);
  EXPECT_DOUBLE_EQ(net_hpwl(grid, nets[2]), 5.0);
  EXPECT_DOUBLE_EQ(net_hpwl(grid, nets[0]), 15.5);
  EXPECT_DOUBLE_EQ(net_bbox_area(grid, nets[0]), 49.0);

  const auto hpwl = order_nets(grid, nets, NetOrder::kHpwl);
  EXPECT_EQ(hpwl, (std::vector<std::size_t>{1, 2, 0}));
  const auto as_given = order_nets(grid, nets, NetOrder::kAsGiven);
  EXPECT_EQ(as_given, (std::vector<std::size_t>{0, 1, 2}));
  // Custom key overrides the enum: biggest first.
  const auto custom = order_nets(
      grid, nets, NetOrder::kHpwl,
      [](const HananGrid& g, const Net& n) { return -net_hpwl(g, n); });
  EXPECT_EQ(custom, (std::vector<std::size_t>{0, 2, 1}));
}

TEST(ChipOrdering, PinCountBreaksTiesByHpwl) {
  const auto grid = open_grid(8, 8, 1);
  std::vector<Net> nets = {
      {"threepin",
       {grid.index(0, 0, 0), grid.index(1, 0, 0), grid.index(2, 0, 0)}},
      {"long2", {grid.index(0, 7, 0), grid.index(7, 7, 0)}},
      {"short2", {grid.index(5, 5, 0), grid.index(6, 5, 0)}},
  };
  const auto order = order_nets(grid, nets, NetOrder::kPinCount);
  EXPECT_EQ(order, (std::vector<std::size_t>{2, 1, 0}));
}

TEST(ChipFacade, RoutesNetlistThroughCoreRouter) {
  const auto grid = open_grid(6, 6, 2);
  Netlist netlist;
  netlist.nets.push_back({"a", {grid.index(0, 0, 0), grid.index(5, 0, 0)}});
  netlist.nets.push_back({"b", {grid.index(0, 5, 0), grid.index(5, 5, 1)}});

  core::RouterOptions options;
  options.engine = "lin08";
  core::Router router(options);
  const core::ChipRouteResult result = router.route(grid, netlist);
  EXPECT_TRUE(result.success());
  EXPECT_EQ(result.engine, "lin08");
  EXPECT_EQ(result.overflow(), 0);
  EXPECT_GT(result.wirelength(), 0.0);
  EXPECT_GT(result.total_seconds, 0.0);
  if (obs::kMetricsCompiled) {
    EXPECT_FALSE(result.obs.counters.empty());
  }
}

TEST(ChipFacade, OptionsValidateChipConfig) {
  core::RouterOptions options;
  options.engine = "lin08";
  options.chip.max_iterations = 0;
  EXPECT_THROW(core::Router{std::move(options)}, std::invalid_argument);
}

TEST(ChipObs, ScrapeExposesChipFamilies) {
  if (!obs::kMetricsCompiled) GTEST_SKIP() << "built with OARSMTRL_NO_METRICS";
  const auto grid = open_grid(4, 2, 1);
  Netlist netlist;
  netlist.nets.push_back({"a", {grid.index(0, 0, 0), grid.index(3, 0, 0)}});
  netlist.nets.push_back({"b", {grid.index(1, 0, 0), grid.index(2, 0, 0)}});
  steiner::Lin08Router engine;
  const ChipResult result = ChipRouter(grid).route(netlist, engine);
  ASSERT_TRUE(result.success);

  const std::string scrape = obs::scrape_prometheus();
  for (const char* family :
       {"oar_chip_runs_total", "oar_chip_nets_routed_total",
        "oar_chip_iterations_total", "oar_chip_last_overflow",
        "oar_chip_last_wirelength", "oar_chip_nets_per_sec",
        "oar_chip_net_route_seconds", "oar_chip_iteration_overflow"}) {
    EXPECT_NE(scrape.find(family), std::string::npos) << family;
  }
  const std::string json = obs::scrape_json();
  EXPECT_NE(json.find("\"oar_chip_runs_total\""), std::string::npos);
}

TEST(ChipConfigValidate, RejectsBadKnobs) {
  ChipConfig config;
  config.edge_capacity = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = {};
  config.present_growth = 0.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = {};
  config.history_increment = -1.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = {};
  EXPECT_NO_THROW(config.validate());
}

}  // namespace
}  // namespace oar::chip
