# Empty dependencies file for oar_hanan.
# This may be replaced when dependencies are built.
