#pragma once

// Text serialization of Hanan-grid layouts.
//
// A simple line-oriented format so users can persist generated workloads,
// exchange failing cases, and run the routers on externally produced
// layouts (e.g. converted public benchmarks):
//
//   oargrid 1
//   dims H V M
//   via <cost>
//   xsteps s0 s1 ... s(H-2)
//   ysteps s0 s1 ... s(V-2)
//   pins (h v m)*
//   blocked (h v m)*          # repeated lines allowed for both sections
//   end
//
// Lines starting with '#' are comments.  Writing is lossless for grid-world
// layouts (geometric cut coordinates are not preserved).

#include <iosfwd>
#include <optional>
#include <string>

#include "hanan/hanan_grid.hpp"

namespace oar::gen {

/// Serializes `grid` to the text format.  Returns false on I/O failure.
bool write_grid(const hanan::HananGrid& grid, std::ostream& out);
bool save_grid(const hanan::HananGrid& grid, const std::string& path);

/// Parses a grid from the text format.  Returns std::nullopt and fills
/// `error` (when non-null) on malformed input.
std::optional<hanan::HananGrid> read_grid(std::istream& in,
                                          std::string* error = nullptr);
std::optional<hanan::HananGrid> load_grid(const std::string& path,
                                          std::string* error = nullptr);

}  // namespace oar::gen
