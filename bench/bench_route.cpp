// Routing-core throughput benchmark for the incremental maze-Prim router
// (DESIGN.md §10).  Replays the MCTS critic loop — many OARMST builds over
// the same grid with varying Steiner selections — and compares:
//
//   legacy:       faithful reimplementation of the pre-incremental core
//                 (fresh router arrays per build, heap + sorted-target copy
//                 per Prim iteration, hash-set tree membership, full
//                 re-flood every iteration) — the real "before" number,
//   from-scratch: today's pooled/epoch-stamped core with frontier reuse
//                 disabled (isolates the win of frontier reuse alone),
//   incremental:  frontier-continuing search through the pooled
//                 thread-local scratch (what ActorCritic now does).
//
// Every build's cost is cross-checked across all three modes; a mismatch is
// a hard failure.  Results go to stdout and BENCH_route.json.  `--smoke`
// shrinks the repetition count for CI; there is deliberately no timing
// assertion on the speedups (CI machines are too noisy for a speedup gate).
//
// A final section measures the observability tax: the incremental hot loop
// with the metrics kill-switch on vs off, min-of-N alternating rounds.  In
// --smoke mode an overhead above 2% is a hard failure (the obs subsystem's
// acceptance bound); min-of-N makes the estimate robust to scheduler noise.

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "bench_common.hpp"
#include "gen/random_layout.hpp"
#include "obs/metrics.hpp"
#include "route/oarmst.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace oar;

// ---------------------------------------------------------------------------
// Legacy routing core: line-for-line behavior of the pre-incremental
// implementation.  Kept here (not in src/) purely as the benchmark baseline.
// ---------------------------------------------------------------------------
namespace legacy {

using hanan::HananGrid;
using hanan::Vertex;
constexpr double kInf = route::MazeRouter::kInf;

class MazeRouter {
 public:
  explicit MazeRouter(const HananGrid& grid) : grid_(grid) {
    const auto n = std::size_t(grid.num_vertices());
    dist_.assign(n, kInf);
    parent_.assign(n, hanan::kInvalidVertex);
    epoch_.assign(n, 0);
    settled_.assign(n, 0);
  }

  Vertex run(const std::vector<Vertex>& sources,
             const std::vector<Vertex>& targets) {
    ++current_epoch_;
    using Entry = std::pair<double, Vertex>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    for (Vertex s : sources) {
      if (grid_.is_blocked(s)) continue;
      if (stamped(s) && dist_[std::size_t(s)] <= 0.0) continue;
      dist_[std::size_t(s)] = 0.0;
      parent_[std::size_t(s)] = s;
      epoch_[std::size_t(s)] = current_epoch_;
      heap.emplace(0.0, s);
    }
    std::vector<Vertex> sorted_targets(targets);
    std::sort(sorted_targets.begin(), sorted_targets.end());
    while (!heap.empty()) {
      const auto [d, u] = heap.top();
      heap.pop();
      if (!stamped(u) || d > dist_[std::size_t(u)]) continue;
      if (settled_[std::size_t(u)] == current_epoch_) continue;
      settled_[std::size_t(u)] = current_epoch_;
      if (!sorted_targets.empty() &&
          std::binary_search(sorted_targets.begin(), sorted_targets.end(), u)) {
        return u;
      }
      grid_.for_each_neighbor(u, [&](Vertex nb, double w) {
        const double nd = d + w;
        if (!stamped(nb) || nd < dist_[std::size_t(nb)]) {
          dist_[std::size_t(nb)] = nd;
          parent_[std::size_t(nb)] = u;
          epoch_[std::size_t(nb)] = current_epoch_;
          heap.emplace(nd, nb);
        }
      });
    }
    return hanan::kInvalidVertex;
  }

  double dist(Vertex v) const { return stamped(v) ? dist_[std::size_t(v)] : kInf; }

  std::vector<Vertex> path_to(Vertex v) const {
    std::vector<Vertex> path;
    for (Vertex cur = v;; cur = parent_[std::size_t(cur)]) {
      path.push_back(cur);
      if (parent_[std::size_t(cur)] == cur) break;
    }
    std::reverse(path.begin(), path.end());
    return path;
  }

 private:
  bool stamped(Vertex v) const { return epoch_[std::size_t(v)] == current_epoch_; }

  const HananGrid& grid_;
  std::vector<double> dist_;
  std::vector<Vertex> parent_;
  std::vector<std::uint32_t> epoch_, settled_;
  std::uint32_t current_epoch_ = 0;
};

route::OarmstResult build_once(const HananGrid& grid,
                               const std::vector<Vertex>& terminals) {
  route::OarmstResult result;
  result.tree = route::RouteTree(&grid);
  result.connected = true;
  if (terminals.empty()) return result;

  MazeRouter maze(grid);
  std::vector<Vertex> tree_vertices{terminals.front()};
  std::unordered_set<Vertex> in_tree{terminals.front()};
  std::vector<Vertex> remaining(terminals.begin() + 1, terminals.end());
  remaining.erase(
      std::remove(remaining.begin(), remaining.end(), terminals.front()),
      remaining.end());

  while (!remaining.empty()) {
    const Vertex reached = maze.run(tree_vertices, remaining);
    if (reached == hanan::kInvalidVertex) {
      result.connected = false;
      break;
    }
    const std::vector<Vertex> path = maze.path_to(reached);
    result.tree.add_path(path);
    for (Vertex v : path) {
      if (in_tree.insert(v).second) tree_vertices.push_back(v);
    }
    remaining.erase(std::remove(remaining.begin(), remaining.end(), reached),
                    remaining.end());
  }
  result.cost = result.connected ? result.tree.cost() : kInf;
  return result;
}

double critic_cost(const HananGrid& grid, const std::vector<Vertex>& pins,
                   const std::vector<Vertex>& steiner_points) {
  std::unordered_set<Vertex> pin_set(pins.begin(), pins.end());
  std::vector<Vertex> steiner;
  std::unordered_set<Vertex> seen;
  for (Vertex s : steiner_points) {
    if (s < 0 || s >= grid.num_vertices()) continue;
    if (grid.is_blocked(s) || pin_set.count(s)) continue;
    if (seen.insert(s).second) steiner.push_back(s);
  }
  std::vector<Vertex> terminals(pins.begin(), pins.end());
  terminals.insert(terminals.end(), steiner.begin(), steiner.end());

  route::OarmstResult result = build_once(grid, terminals);
  result.kept_steiner = steiner;
  if (steiner.empty()) return result.cost;
  for (int pass = 0; pass < 8; ++pass) {
    std::vector<Vertex> kept;
    for (Vertex s : result.kept_steiner) {
      if (result.tree.degree(s) >= 3) kept.push_back(s);
    }
    if (kept.size() == result.kept_steiner.size()) break;
    std::vector<Vertex> new_terminals(pins.begin(), pins.end());
    new_terminals.insert(new_terminals.end(), kept.begin(), kept.end());
    route::OarmstResult rebuilt = build_once(grid, new_terminals);
    rebuilt.kept_steiner = std::move(kept);
    result = std::move(rebuilt);
    if (result.kept_steiner.empty()) break;
  }
  return result.cost;
}

}  // namespace legacy

hanan::HananGrid make_grid(std::int32_t dim, std::int32_t m, std::int32_t pins,
                           std::uint64_t seed) {
  util::Rng rng(seed);
  gen::RandomGridSpec spec;
  spec.h = spec.v = dim;
  spec.m = m;
  spec.min_pins = spec.max_pins = pins;
  spec.min_obstacles = spec.max_obstacles = std::max(1, dim * dim * m / 40);
  return gen::random_grid(spec, rng);
}

// Steiner selections as the critic loop evaluates them.  CombMcts always
// completes a node's selection up to the full budget of |pins| - 2 points
// with top-fsp picks before routing (actor_critic.cpp / comb_mcts.cpp), so
// every critic call routes pins + budget steiner candidates.
std::vector<std::vector<hanan::Vertex>> make_selections(
    const hanan::HananGrid& grid, int count, util::Rng& rng) {
  const int budget = std::max(0, int(grid.pins().size()) - 2);
  std::vector<std::vector<hanan::Vertex>> out;
  out.reserve(std::size_t(count));
  for (int i = 0; i < count; ++i) {
    std::vector<hanan::Vertex> sel;
    const int want = budget;
    while (std::ssize(sel) < want) {
      const auto v = hanan::Vertex(rng.uniform_int(0, grid.num_vertices() - 1));
      if (!grid.is_blocked(v) && !grid.is_pin(v)) sel.push_back(v);
    }
    out.push_back(std::move(sel));
  }
  return out;
}

enum class Mode { kLegacy, kFromScratch, kIncremental };

struct Run {
  double seconds = 0.0;
  std::vector<double> costs;
};

Run run_builds(const hanan::HananGrid& grid, Mode mode,
               const std::vector<std::vector<hanan::Vertex>>& selections,
               int reps) {
  route::OarmstConfig cfg;
  cfg.incremental = mode == Mode::kIncremental;
  const route::OarmstRouter router(grid, cfg);
  Run run;
  run.costs.reserve(selections.size());
  util::Timer timer;
  for (int rep = 0; rep < reps; ++rep) {
    for (std::size_t i = 0; i < selections.size(); ++i) {
      const double cost =
          mode == Mode::kLegacy
              ? legacy::critic_cost(grid, grid.pins(), selections[i])
              : router.cost(grid.pins(), selections[i]);  // pooled scratch
      if (rep == 0) {
        run.costs.push_back(cost);
      } else if (cost != run.costs[i]) {
        std::fprintf(stderr, "FATAL: cost drift across reps (sel %zu)\n", i);
        std::exit(1);
      }
    }
  }
  run.seconds = timer.seconds();
  return run;
}

struct ObsOverhead {
  double off_bps = 0.0;  // metrics kill-switch off
  double on_bps = 0.0;   // metrics recording (the default)
  double overhead = 0.0; // fractional slowdown of on vs off
};

/// Minimum-of-N alternating A/B rounds: the min filters out scheduler and
/// frequency-scaling noise, alternation keeps cache/allocator state fair.
/// The side measured first swaps every round — a monotone frequency drift
/// (e.g. the CPU throttling down after a long test-suite run) otherwise
/// biases whichever side consistently samples later, and the min cannot
/// filter a drift that touches every round the same way.
ObsOverhead measure_obs_overhead(
    const hanan::HananGrid& grid,
    const std::vector<std::vector<hanan::Vertex>>& selections, int reps,
    int rounds) {
  const double total_builds = double(selections.size()) * reps;
  run_builds(grid, Mode::kIncremental, selections, reps);  // warmup, unmeasured
  double best_off = 1e300, best_on = 1e300;
  for (int round = 0; round < rounds; ++round) {
    const bool off_first = (round % 2) == 0;
    for (int side = 0; side < 2; ++side) {
      const bool measure_off = off_first == (side == 0);
      oar::obs::set_enabled(!measure_off);
      const double s =
          run_builds(grid, Mode::kIncremental, selections, reps).seconds;
      (measure_off ? best_off : best_on) =
          std::min(measure_off ? best_off : best_on, s);
    }
  }
  oar::obs::set_enabled(true);
  ObsOverhead o;
  o.off_bps = total_builds / std::max(best_off, 1e-12);
  o.on_bps = total_builds / std::max(best_on, 1e-12);
  o.overhead = best_on / std::max(best_off, 1e-12) - 1.0;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const std::int32_t dim = 32, layers = 8, pins = 6;
  const int selections_count = smoke ? 8 : 24;
  const int reps = smoke ? 2 : 10;

  const hanan::HananGrid grid = make_grid(dim, layers, pins, /*seed=*/11);
  util::Rng rng(29);
  const auto selections = make_selections(grid, selections_count, rng);

  std::printf("bench_route: %dx%dx%d grid, %d pins, %zu selections x %d reps%s\n",
              dim, dim, layers, pins, selections.size(), reps,
              smoke ? " (smoke)" : "");

  // Warm every code path once so allocator state is comparable.
  for (const Mode m : {Mode::kLegacy, Mode::kFromScratch, Mode::kIncremental}) {
    (void)run_builds(grid, m, {selections.front()}, 1);
  }

  const Run legacy_run = run_builds(grid, Mode::kLegacy, selections, reps);
  const Run scratch_run = run_builds(grid, Mode::kFromScratch, selections, reps);
  const Run inc_run = run_builds(grid, Mode::kIncremental, selections, reps);

  // Incremental and from-scratch must agree bitwise (DESIGN.md §10).  The
  // legacy core picks equal-cost shortest paths by heap pop order rather
  // than the canonical min-parent-id tie-break, so its trees may differ in
  // shape on ties; its costs must still be within a small tolerance.
  double max_legacy_rel = 0.0;
  for (std::size_t i = 0; i < selections.size(); ++i) {
    if (scratch_run.costs[i] != inc_run.costs[i]) {
      std::fprintf(stderr, "FATAL: incremental/from-scratch mismatch (sel %zu: %f vs %f)\n",
                   i, scratch_run.costs[i], inc_run.costs[i]);
      return 1;
    }
    const double rel = std::abs(legacy_run.costs[i] - inc_run.costs[i]) /
                       std::max(legacy_run.costs[i], 1.0);
    max_legacy_rel = std::max(max_legacy_rel, rel);
    if (rel > 0.05) {
      std::fprintf(stderr, "FATAL: legacy cost diverges (sel %zu: %f vs %f)\n",
                   i, legacy_run.costs[i], inc_run.costs[i]);
      return 1;
    }
  }

  const double total_builds = double(selections.size()) * reps;
  const double legacy_bps = total_builds / std::max(legacy_run.seconds, 1e-12);
  const double scratch_bps = total_builds / std::max(scratch_run.seconds, 1e-12);
  const double inc_bps = total_builds / std::max(inc_run.seconds, 1e-12);
  const double speedup = inc_bps / std::max(legacy_bps, 1e-12);

  std::printf("  legacy core    : %10.1f builds/sec   (pre-incremental router)\n",
              legacy_bps);
  std::printf("  pooled scratch : %10.1f builds/sec   (frontier reuse off)\n",
              scratch_bps);
  std::printf("  incremental    : %10.1f builds/sec\n", inc_bps);
  std::printf("  speedup        : %10.2fx vs legacy\n", speedup);
  std::printf("  cost agreement : incremental == from-scratch bitwise; "
              "legacy within %.3f%% (tie-breaks)\n",
              100.0 * max_legacy_rel);

  const ObsOverhead obs_tax =
      measure_obs_overhead(grid, selections, reps, /*rounds=*/5);
  std::printf("  obs overhead   : %10.2f%% (metrics on %0.1f vs off %0.1f "
              "builds/sec, min of 5)%s\n",
              100.0 * obs_tax.overhead, obs_tax.on_bps, obs_tax.off_bps,
              obs::kMetricsCompiled ? "" : " [compiled out]");
  if (smoke && obs::kMetricsCompiled && obs_tax.overhead > 0.02) {
    std::fprintf(stderr,
                 "FATAL: metrics overhead %.2f%% exceeds the 2%% budget\n",
                 100.0 * obs_tax.overhead);
    return 1;
  }

  if (std::FILE* f = std::fopen("BENCH_route.json", "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"grid\": {\"h\": %d, \"v\": %d, \"m\": %d},\n"
                 "  \"pins\": %d,\n"
                 "  \"selections\": %zu,\n"
                 "  \"reps\": %d,\n"
                 "  \"smoke\": %s,\n"
                 "  \"legacy_builds_per_sec\": %.3f,\n"
                 "  \"pooled_scratch_builds_per_sec\": %.3f,\n"
                 "  \"incremental_builds_per_sec\": %.3f,\n"
                 "  \"speedup_vs_legacy\": %.4f,\n"
                 "  \"max_legacy_cost_rel_diff\": %.6f,\n"
                 "  \"obs_overhead_fraction\": %.6f,\n"
                 "  %s\n"
                 "}\n",
                 dim, dim, layers, pins, selections.size(), reps,
                 smoke ? "true" : "false", legacy_bps, scratch_bps, inc_bps,
                 speedup, max_legacy_rel, obs_tax.overhead,
                 bench::machine_json().c_str());
    std::fclose(f);
    std::printf("  wrote BENCH_route.json\n");
  } else {
    std::fprintf(stderr, "WARNING: could not write BENCH_route.json\n");
  }
  return 0;
}
