#include "route/oarmst.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gen/random_layout.hpp"
#include "steiner/router_base.hpp"

namespace oar::route {
namespace {

HananGrid unit_grid(std::int32_t h, std::int32_t v, std::int32_t m, double via = 1.0) {
  return HananGrid(h, v, m, std::vector<double>(std::size_t(h - 1), 1.0),
                   std::vector<double>(std::size_t(v - 1), 1.0), via);
}

TEST(Oarmst, TwoPinsStraightLine) {
  HananGrid grid = unit_grid(5, 1, 1);
  grid.add_pin(grid.index(0, 0, 0));
  grid.add_pin(grid.index(4, 0, 0));
  OarmstRouter router(grid);
  const auto result = router.build(grid.pins());
  EXPECT_TRUE(result.connected);
  EXPECT_DOUBLE_EQ(result.cost, 4.0);
  EXPECT_EQ(result.tree.validate(grid.pins()), "");
}

TEST(Oarmst, SteinerPointEnablesSharing) {
  // Three pins in a T: explicit Steiner point at the junction saves length.
  HananGrid grid = unit_grid(3, 3, 1);
  grid.add_pin(grid.index(0, 2, 0));
  grid.add_pin(grid.index(2, 2, 0));
  grid.add_pin(grid.index(1, 0, 0));
  OarmstRouter router(grid);
  const Vertex junction = grid.index(1, 2, 0);
  const auto with_sp = router.build(grid.pins(), {junction});
  EXPECT_TRUE(with_sp.connected);
  EXPECT_DOUBLE_EQ(with_sp.cost, 4.0);  // optimal Steiner tree
  // The junction has degree 3 and is kept as irredundant.
  EXPECT_EQ(with_sp.kept_steiner, std::vector<Vertex>{junction});
  EXPECT_EQ(with_sp.tree.degree(junction), 3);
}

TEST(Oarmst, RedundantSteinerPointRemoved) {
  HananGrid grid = unit_grid(5, 1, 1);
  grid.add_pin(grid.index(0, 0, 0));
  grid.add_pin(grid.index(4, 0, 0));
  // A Steiner point on the direct path has degree 2 -> redundant.
  const auto result = OarmstRouter(grid).build(grid.pins(), {grid.index(2, 0, 0)});
  EXPECT_TRUE(result.kept_steiner.empty());
  EXPECT_DOUBLE_EQ(result.cost, 4.0);
}

TEST(Oarmst, RedundantRemovalCanBeDisabled) {
  HananGrid grid = unit_grid(5, 1, 1);
  grid.add_pin(grid.index(0, 0, 0));
  grid.add_pin(grid.index(4, 0, 0));
  OarmstConfig cfg;
  cfg.remove_redundant_steiner = false;
  const auto result = OarmstRouter(grid, cfg).build(grid.pins(), {grid.index(2, 0, 0)});
  EXPECT_EQ(result.kept_steiner.size(), 1u);
}

TEST(Oarmst, UselessSteinerPointDoesNotHurtAfterRemoval) {
  HananGrid grid = unit_grid(6, 6, 1);
  grid.add_pin(grid.index(0, 0, 0));
  grid.add_pin(grid.index(5, 5, 0));
  OarmstRouter router(grid);
  const double base = router.build(grid.pins()).cost;
  // An off-path Steiner point is dropped by the redundancy filter.
  const auto result = router.build(grid.pins(), {grid.index(5, 0, 0)});
  EXPECT_DOUBLE_EQ(result.cost, base);
}

TEST(Oarmst, AvoidsObstacles) {
  HananGrid grid = unit_grid(5, 3, 1);
  for (std::int32_t v = 0; v < 3; ++v) grid.block_vertex(grid.index(2, v, 0));
  grid.add_pin(grid.index(0, 1, 0));
  grid.add_pin(grid.index(4, 1, 0));
  const auto result = OarmstRouter(grid).build(grid.pins());
  EXPECT_FALSE(result.connected);  // wall spans the full height on one layer
  EXPECT_TRUE(std::isinf(result.cost));
}

TEST(Oarmst, FullyEnclosedPinCostsInfinity) {
  // Regression: a walled-off terminal used to report the *partial* tree's
  // cost — cheaper than the connected tree — so cost comparisons (the MCTS
  // critic minimizes OarmstResult::cost directly) could prefer the
  // disconnected state.  A disconnected build must cost +inf.
  HananGrid grid = unit_grid(5, 5, 1);
  const Vertex enclosed = grid.index(2, 2, 0);
  for (const auto& [dh, dv] : {std::pair{-1, 0}, {1, 0}, {0, -1}, {0, 1}}) {
    grid.block_vertex(grid.index(2 + dh, 2 + dv, 0));
  }
  grid.add_pin(grid.index(0, 0, 0));
  grid.add_pin(grid.index(4, 0, 0));
  grid.add_pin(enclosed);

  for (const AttachMode attach : {AttachMode::kTreeVertices, AttachMode::kTerminalsOnly}) {
    for (const CostModel model : {CostModel::kUnionLength, CostModel::kSumOfPaths}) {
      OarmstConfig cfg;
      cfg.attach = attach;
      cfg.cost_model = model;
      const auto result = OarmstRouter(grid, cfg).build(grid.pins());
      EXPECT_FALSE(result.connected);
      EXPECT_TRUE(std::isinf(result.cost)) << "attach=" << int(attach)
                                           << " model=" << int(model);
      // The partial tree is still returned for diagnostics.
      EXPECT_FALSE(result.tree.empty());
    }
  }

  // Any connected two-pin layout now strictly beats the disconnected one.
  HananGrid open_grid = unit_grid(5, 5, 1);
  open_grid.add_pin(open_grid.index(0, 0, 0));
  open_grid.add_pin(open_grid.index(4, 0, 0));
  EXPECT_LT(OarmstRouter(open_grid).cost(open_grid.pins()),
            OarmstRouter(grid).cost(grid.pins()));
}

TEST(Oarmst, BarePinsCacheStaysCorrectAcrossMutationsAndConfigs) {
  // The scratch caches the bare pins-only build (the fixed point of the
  // redundant-steiner removal loop).  Served results must be identical to
  // a cold build, and the cache must miss on any grid mutation (revision
  // bump) or config change sharing the same scratch.
  HananGrid grid = unit_grid(7, 7, 1);
  grid.add_pin(grid.index(0, 0, 0));
  grid.add_pin(grid.index(6, 0, 0));
  grid.add_pin(grid.index(3, 6, 0));

  OarmstRouter router(grid);
  RouterScratch scratch;

  // Two different all-redundant selections: the second call's final pass is
  // served from the cache primed by the first.
  const auto r1 = router.build(grid.pins(), {grid.index(0, 6, 0)}, &scratch);
  const auto r2 = router.build(grid.pins(), {grid.index(6, 6, 0)}, &scratch);
  RouterScratch cold;
  const auto ref = router.build(grid.pins(), {grid.index(6, 6, 0)}, &cold);
  EXPECT_TRUE(r2.kept_steiner.empty());
  EXPECT_EQ(r2.rebuild_passes, ref.rebuild_passes);
  EXPECT_DOUBLE_EQ(r2.cost, ref.cost);
  EXPECT_EQ(r2.tree.edges(), ref.tree.edges());
  EXPECT_DOUBLE_EQ(r1.cost, r2.cost);  // both collapse to the bare tree

  // A different config through the same scratch must not see the entry.
  OarmstConfig terminals_cfg;
  terminals_cfg.attach = AttachMode::kTerminalsOnly;
  terminals_cfg.cost_model = CostModel::kSumOfPaths;
  OarmstRouter terminals_router(grid, terminals_cfg);
  RouterScratch cold2;
  EXPECT_DOUBLE_EQ(terminals_router.cost(grid.pins(), {}, &scratch),
                   terminals_router.cost(grid.pins(), {}, &cold2));

  // Blocking a vertex of the cached tree bumps the grid revision; the next
  // build through the same scratch must re-route around it.
  Vertex on_tree = hanan::kInvalidVertex;
  for (Vertex v : r2.tree.vertices()) {
    if (!grid.is_pin(v)) { on_tree = v; break; }
  }
  ASSERT_NE(on_tree, hanan::kInvalidVertex);
  grid.block_vertex(on_tree);
  const auto rerouted = router.build(grid.pins(), {}, &scratch);
  RouterScratch cold3;
  const auto rerouted_ref = router.build(grid.pins(), {}, &cold3);
  EXPECT_DOUBLE_EQ(rerouted.cost, rerouted_ref.cost);
  EXPECT_EQ(rerouted.tree.edges(), rerouted_ref.tree.edges());
  EXPECT_NE(rerouted.tree.edges(), r2.tree.edges());  // old tree is invalid
  EXPECT_FALSE(rerouted.tree.contains_vertex(on_tree));
}

TEST(Oarmst, EscapesThroughSecondLayer) {
  HananGrid grid = unit_grid(5, 3, 2, 1.5);
  for (std::int32_t v = 0; v < 3; ++v) grid.block_vertex(grid.index(2, v, 0));
  grid.add_pin(grid.index(0, 1, 0));
  grid.add_pin(grid.index(4, 1, 0));
  const auto result = OarmstRouter(grid).build(grid.pins());
  EXPECT_TRUE(result.connected);
  EXPECT_DOUBLE_EQ(result.cost, 4.0 + 2.0 * 1.5);  // 4 steps + 2 vias
  EXPECT_EQ(result.tree.validate(grid.pins()), "");
}

TEST(Oarmst, DuplicateAndInvalidSteinerInputsFiltered) {
  HananGrid grid = unit_grid(4, 4, 1);
  grid.add_pin(grid.index(0, 0, 0));
  grid.add_pin(grid.index(3, 3, 0));
  grid.block_vertex(grid.index(2, 2, 0));
  OarmstRouter router(grid);
  const auto result = router.build(
      grid.pins(),
      {grid.index(0, 0, 0),        // coincides with a pin
       grid.index(2, 2, 0),        // blocked
       grid.index(1, 1, 0), grid.index(1, 1, 0),  // duplicate
       Vertex(-3), Vertex(9999)});                // out of range
  EXPECT_TRUE(result.connected);
  EXPECT_EQ(result.tree.validate(grid.pins()), "");
}

TEST(Oarmst, TreeAttachmentBeatsTerminalOnlyMst) {
  // Three collinear-ish pins where a T-junction helps.
  HananGrid grid = unit_grid(5, 5, 1);
  grid.add_pin(grid.index(0, 0, 0));
  grid.add_pin(grid.index(4, 0, 0));
  grid.add_pin(grid.index(2, 4, 0));

  OarmstConfig tree_cfg;  // defaults: tree attachment, union length
  const double st = OarmstRouter(grid, tree_cfg).build(grid.pins()).cost;
  const double mst = steiner::mst_cost(grid);
  EXPECT_LE(st, mst);
  EXPECT_DOUBLE_EQ(st, 8.0);   // trunk + stub via T-junction
  EXPECT_DOUBLE_EQ(mst, 10.0); // two pairwise paths
}

TEST(Oarmst, TreeAttachmentCostModelsCoincide) {
  // Under kTreeVertices attachment every attached path starts at a
  // zero-distance tree vertex and its interior vertices are not yet in the
  // tree, so each attachment adds exactly dist(reached) of new wire:
  // kSumOfPaths and kUnionLength are the same number.
  util::Rng rng(7);
  gen::RandomGridSpec spec;
  spec.h = 9;
  spec.v = 9;
  spec.m = 2;
  spec.min_pins = 4;
  spec.max_pins = 7;
  spec.min_obstacles = 6;
  spec.max_obstacles = 14;
  spec.min_edge_cost = 1;
  spec.max_edge_cost = 30;
  for (int trial = 0; trial < 16; ++trial) {
    const HananGrid grid = gen::random_grid(spec, rng);
    OarmstConfig union_cfg;
    union_cfg.cost_model = CostModel::kUnionLength;
    OarmstConfig sum_cfg;
    sum_cfg.cost_model = CostModel::kSumOfPaths;
    const auto a = OarmstRouter(grid, union_cfg).build(grid.pins());
    const auto b = OarmstRouter(grid, sum_cfg).build(grid.pins());
    ASSERT_EQ(a.connected, b.connected);
    if (!a.connected) continue;
    EXPECT_DOUBLE_EQ(a.cost, b.cost) << "trial=" << trial;
  }
}

TEST(Oarmst, TerminalsOnlyCostModelOrdering) {
  // With kTerminalsOnly attachment, paths can retrace wire that is already
  // in the tree, so the union of edges is no longer the sum of path costs:
  //   union length <= sum of paths,
  // and kSumOfPaths reproduces steiner::mst_cost exactly (it is the metric
  // closure MST the paper's ST-to-MST ratio divides by).
  util::Rng rng(11);
  gen::RandomGridSpec spec;
  spec.h = 9;
  spec.v = 9;
  spec.m = 2;
  spec.min_pins = 4;
  spec.max_pins = 7;
  spec.min_obstacles = 6;
  spec.max_obstacles = 14;
  spec.min_edge_cost = 1;
  spec.max_edge_cost = 30;
  for (int trial = 0; trial < 16; ++trial) {
    const HananGrid grid = gen::random_grid(spec, rng);
    OarmstConfig term_union;
    term_union.attach = AttachMode::kTerminalsOnly;
    term_union.cost_model = CostModel::kUnionLength;
    OarmstConfig term_sum;
    term_sum.attach = AttachMode::kTerminalsOnly;
    term_sum.cost_model = CostModel::kSumOfPaths;
    const auto u = OarmstRouter(grid, term_union).build(grid.pins());
    const auto s = OarmstRouter(grid, term_sum).build(grid.pins());
    ASSERT_EQ(u.connected, s.connected);
    if (!u.connected) continue;
    EXPECT_LE(u.cost, s.cost + 1e-9) << "trial=" << trial;
    EXPECT_DOUBLE_EQ(s.cost, steiner::mst_cost(grid)) << "trial=" << trial;

    // Tree attachment can only improve on terminal-only attachment.
    const double tree_cost = OarmstRouter(grid).cost(grid.pins());
    EXPECT_LE(tree_cost, u.cost + 1e-9) << "trial=" << trial;
  }
}

TEST(Oarmst, SinglePinZeroCost) {
  HananGrid grid = unit_grid(3, 3, 1);
  grid.add_pin(grid.index(1, 1, 0));
  const auto result = OarmstRouter(grid).build(grid.pins());
  EXPECT_TRUE(result.connected);
  EXPECT_DOUBLE_EQ(result.cost, 0.0);
}

class OarmstPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OarmstPropertyTest, RandomGridsProduceValidTrees) {
  util::Rng rng(GetParam());
  gen::RandomGridSpec spec;
  spec.h = 8;
  spec.v = 8;
  spec.m = 2;
  spec.min_pins = 3;
  spec.max_pins = 6;
  spec.min_obstacles = 4;
  spec.max_obstacles = 10;
  spec.min_edge_cost = 1;
  spec.max_edge_cost = 20;
  const HananGrid grid = gen::random_grid(spec, rng);

  OarmstRouter router(grid);
  const auto result = router.build(grid.pins());
  ASSERT_TRUE(result.connected);
  EXPECT_EQ(result.tree.validate(grid.pins()), "");

  // Union-length ST cost never exceeds the terminal-only sum-of-paths MST.
  EXPECT_LE(result.cost, steiner::mst_cost(grid) + 1e-9);

  // Kept Steiner points all have degree >= 3.
  const auto with_sp = router.build(grid.pins(), {grid.index(4, 4, 0)});
  for (Vertex s : with_sp.kept_steiner) {
    EXPECT_GE(with_sp.tree.degree(s), 3);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OarmstPropertyTest,
                         ::testing::Range(std::uint64_t(100), std::uint64_t(116)));

}  // namespace
}  // namespace oar::route
