#include "rl/dataset.hpp"

#include <algorithm>

namespace oar::rl {

void Dataset::add(TrainingSample sample) {
  const SizeKey key{sample.grid.h_dim(), sample.grid.v_dim(), sample.grid.m_dim()};
  by_size_[key].push_back(samples_.size());
  samples_.push_back(std::move(sample));
}

void Dataset::clear() {
  samples_.clear();
  by_size_.clear();
}

std::vector<std::vector<std::size_t>> Dataset::epoch_batches(std::size_t batch_size,
                                                             util::Rng& rng) const {
  std::vector<std::vector<std::size_t>> batches;
  for (const auto& [key, indices] : by_size_) {
    std::vector<std::size_t> shuffled = indices;
    rng.shuffle(shuffled);
    for (std::size_t start = 0; start < shuffled.size(); start += batch_size) {
      const std::size_t end = std::min(start + batch_size, shuffled.size());
      batches.emplace_back(shuffled.begin() + std::ptrdiff_t(start),
                           shuffled.begin() + std::ptrdiff_t(end));
    }
  }
  rng.shuffle(batches);
  return batches;
}

std::vector<std::vector<std::size_t>> Dataset::ordered_batches(
    std::size_t batch_size) const {
  std::vector<std::vector<std::size_t>> batches;
  for (const auto& [key, indices] : by_size_) {
    for (std::size_t start = 0; start < indices.size(); start += batch_size) {
      const std::size_t end = std::min(start + batch_size, indices.size());
      batches.emplace_back(indices.begin() + std::ptrdiff_t(start),
                           indices.begin() + std::ptrdiff_t(end));
    }
  }
  return batches;
}

}  // namespace oar::rl
