#include "rl/selector.hpp"

#include <algorithm>
#include <unordered_set>

#include "nn/activations.hpp"
#include "nn/serialize.hpp"

namespace oar::rl {

SteinerSelector::SteinerSelector(SelectorConfig config)
    : config_(config), net_(config.unet) {}

nn::Tensor SteinerSelector::encode(const HananGrid& grid,
                                   const std::vector<Vertex>& extra_pins) {
  const hanan::FeatureVolume vol = hanan::encode_features(grid, extra_pins);
  nn::Tensor input({vol.c, vol.h, vol.v, vol.m});
  std::copy(vol.data.begin(), vol.data.end(), input.data());
  return input;
}

std::vector<double> SteinerSelector::infer_fsp(const HananGrid& grid,
                                               const std::vector<Vertex>& extra_pins) {
  const nn::Tensor input = encode(grid, extra_pins);
  const nn::Tensor logits = net_.forward(input);  // (1, H, V, M), priority order
  std::vector<double> fsp(std::size_t(logits.numel()));
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    fsp[std::size_t(i)] = nn::Sigmoid::apply(logits[i]);
  }
  return fsp;
}

std::vector<Vertex> SteinerSelector::top_k_valid(const HananGrid& grid,
                                                 const std::vector<double>& fsp,
                                                 std::int32_t k,
                                                 const std::vector<Vertex>& extra_pins) {
  if (k <= 0) return {};
  std::unordered_set<Vertex> banned(extra_pins.begin(), extra_pins.end());
  std::vector<std::pair<double, Vertex>> scored;
  scored.reserve(std::size_t(grid.num_vertices()));
  for (Vertex v = 0; v < grid.num_vertices(); ++v) {
    if (grid.is_blocked(v) || grid.is_pin(v) || banned.count(v)) continue;
    scored.emplace_back(fsp[std::size_t(grid.priority_of(v))], v);
  }
  const std::size_t take = std::min<std::size_t>(std::size_t(k), scored.size());
  std::partial_sort(scored.begin(), scored.begin() + std::ptrdiff_t(take), scored.end(),
                    [](const auto& a, const auto& b) {
                      return a.first > b.first || (a.first == b.first && a.second < b.second);
                    });
  std::vector<Vertex> out;
  out.reserve(take);
  for (std::size_t i = 0; i < take; ++i) out.push_back(scored[i].second);
  return out;
}

std::vector<Vertex> SteinerSelector::select_steiner_points(
    const HananGrid& grid, std::int32_t k, const std::vector<Vertex>& extra_pins) {
  const std::vector<double> fsp = infer_fsp(grid, extra_pins);
  return top_k_valid(grid, fsp, k, extra_pins);
}

bool SteinerSelector::save(const std::string& path) {
  return nn::save_parameters(net_, path);
}

bool SteinerSelector::load(const std::string& path) {
  return nn::load_parameters(net_, path);
}

void SteinerSelector::copy_weights_from(SteinerSelector& other) {
  nn::copy_parameters(net_, other.net_);
}

}  // namespace oar::rl
