// Congestion-aware routing: the Hanan-grid input lets every grid step carry
// its own routing cost (paper Sec. 1: "can handle different routing costs
// between adjacent grids").
//
// In the Hanan cost model steps are separable (a column's crossing cost is
// the same at every row), so cost-awareness shows up in the tree TOPOLOGY:
// an expensive column interval should be crossed once through a shared
// trunk, not once per pin pair.  This example builds four pins forming a
// rectangle around a congested channel; priced uniformly the cheapest tree
// crosses the channel twice, priced with the real costs it must cross once.

#include <cstdio>

#include "core/oarsmtrl.hpp"

namespace {

int channel_crossings(const oar::hanan::HananGrid& grid,
                      const oar::route::RouteTree& tree, std::int32_t lo,
                      std::int32_t hi) {
  int count = 0;
  for (const auto& e : tree.edges()) {
    const auto a = grid.cell(std::min(e.a, e.b));
    const auto b = grid.cell(std::max(e.a, e.b));
    if (b.h == a.h + 1 && a.h >= lo && a.h < hi) ++count;
  }
  return count;
}

}  // namespace

int main() {
  using namespace oar;

  const std::int32_t H = 17, V = 17, M = 2;
  std::vector<double> x_step(std::size_t(H - 1), 1.0);
  std::vector<double> y_step(std::size_t(V - 1), 1.0);
  // Congested channel: crossing columns 7..9 costs 20x the normal step.
  for (std::int32_t h = 7; h <= 9; ++h) x_step[std::size_t(h)] = 20.0;

  hanan::HananGrid grid(H, V, M, x_step, y_step, /*via_cost=*/2.0);
  // Two pins on each side of the channel; the vertical span (12) exceeds
  // the uniform horizontal span (8), so a cost-blind tree prefers two
  // channel crossings over one crossing plus a vertical trunk.
  grid.add_pin(grid.index(4, 2, 0));
  grid.add_pin(grid.index(4, 14, 0));
  grid.add_pin(grid.index(12, 2, 0));
  grid.add_pin(grid.index(12, 14, 0));

  // The same pin geometry priced uniformly — what a congestion-blind
  // router optimizes.
  hanan::HananGrid uniform(H, V, M, std::vector<double>(std::size_t(H - 1), 1.0),
                           y_step, 2.0);
  for (hanan::Vertex p : grid.pins()) uniform.add_pin(p);

  std::printf("layout %dx%dx%d, congested columns 7..9 (crossing cost 65 vs 8)\n\n",
              H, V, M);

  steiner::Lin18Router lin18;
  const auto aware = lin18.route(grid);
  const auto blind = lin18.route(uniform);

  // Price the congestion-blind tree at the real (congested) costs.
  double blind_real_cost = 0.0;
  for (const auto& e : blind.tree.edges()) {
    blind_real_cost += grid.cost_between(e.a, e.b);
  }

  const int aware_x = channel_crossings(grid, aware.tree, 7, 10);
  const int blind_x = channel_crossings(grid, blind.tree, 7, 10);
  std::printf("congestion-aware tree : cost %6.1f, %d expensive steps crossed\n",
              aware.cost, aware_x);
  std::printf("congestion-blind tree : cost %6.1f at real prices, %d expensive"
              " steps crossed\n", blind_real_cost, blind_x);
  std::printf("penalty avoided       : %6.1f (%.0f%% of the blind cost)\n\n",
              blind_real_cost - aware.cost,
              100.0 * (blind_real_cost - aware.cost) / blind_real_cost);

  // The RL selector consumes the same per-step costs through its feature
  // channels (Fig. 3), so the learned router is cost-aware by construction.
  auto selector = core::load_or_train_pretrained(2);
  core::RlRouter rl_router(selector, core::RlRouterConfig{true});
  const auto ours = rl_router.route(grid);
  std::printf("RL router (real costs): cost %6.1f, %d expensive steps crossed\n",
              ours.cost, channel_crossings(grid, ours.tree, 7, 10));

  const bool demonstrated = aware_x < blind_x && aware.cost < blind_real_cost;
  std::printf("\n%s\n", demonstrated
                            ? "cost-aware routing shares one channel crossing; the"
                              " blind tree pays for two."
                            : "note: at this geometry both trees crossed equally"
                              " often.");
  return 0;
}
