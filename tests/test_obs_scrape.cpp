// Integration: a live RouterService scrape must expose the serving-layer
// families (request latency histogram, batch occupancy, symmetry-cache
// hits/misses) AND the lower layers' (MazeRouter epochs) in one Prometheus
// payload — the acceptance contract of the observability subsystem.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "gen/random_layout.hpp"
#include "obs/metrics.hpp"
#include "serve/service.hpp"

namespace oar::serve {
namespace {

rl::SelectorConfig tiny_config() {
  rl::SelectorConfig cfg;
  cfg.unet.in_channels = 7;
  cfg.unet.base_channels = 4;
  cfg.unet.depth = 1;
  cfg.unet.seed = 11;
  return cfg;
}

std::shared_ptr<const HananGrid> small_grid(std::uint64_t seed) {
  util::Rng rng(seed);
  gen::RandomGridSpec spec;
  spec.h = 6;
  spec.v = 6;
  spec.m = 2;
  spec.min_pins = 4;
  spec.max_pins = 4;
  spec.min_obstacles = 3;
  spec.max_obstacles = 3;
  return std::make_shared<const HananGrid>(gen::random_grid(spec, rng));
}

/// Value of a plain `name value` sample line; -1 when absent.
double sample_value(const std::string& scrape, const std::string& name) {
  const std::string needle = "\n" + name + " ";
  std::size_t pos = scrape.rfind(needle);
  if (pos == std::string::npos) {
    if (scrape.rfind(name + " ", 0) == 0) {
      pos = 0;
    } else {
      return -1.0;
    }
  } else {
    pos += 1;
  }
  return std::stod(scrape.substr(pos + name.size() + 1));
}

TEST(ObsScrape, RouterServiceExposesAllLayers) {
  if (!obs::kMetricsCompiled) GTEST_SKIP() << "built with OARSMTRL_NO_METRICS";

  auto selector = std::make_shared<rl::SteinerSelector>(tiny_config());
  RouterServiceConfig cfg;
  cfg.max_batch = 4;
  cfg.worker_threads = 2;
  RouterService service(selector, cfg);

  const auto grid = small_grid(21);
  const RouteReply first = service.route(grid);
  EXPECT_FALSE(first.cache_hit);
  const RouteReply replay = service.route(grid);  // symmetry-cache hit
  EXPECT_TRUE(replay.cache_hit);
  service.route(small_grid(22));

  const std::string scrape = service.scrape_prometheus();

  // Request latency histogram, fully formed.
  EXPECT_NE(scrape.find("# TYPE oar_serve_request_latency_seconds histogram"),
            std::string::npos);
  EXPECT_NE(scrape.find("oar_serve_request_latency_seconds_bucket{le=\""),
            std::string::npos);
  EXPECT_GE(sample_value(scrape, "oar_serve_request_latency_seconds_count"),
            3.0);

  // Batch occupancy histogram.
  EXPECT_NE(scrape.find("# TYPE oar_serve_batch_occupancy histogram"),
            std::string::npos);
  EXPECT_GE(sample_value(scrape, "oar_serve_batch_occupancy_count"), 2.0);

  // Symmetry-cache hit ratio: both counters present, at least one hit and
  // one miss from the replayed request above.
  const double hits = sample_value(scrape, "oar_serve_cache_hits_total");
  const double misses = sample_value(scrape, "oar_serve_cache_misses_total");
  ASSERT_GE(hits, 1.0);
  ASSERT_GE(misses, 2.0);
  EXPECT_GT(hits / (hits + misses), 0.0);

  // MazeRouter epoch counters from the routing layer underneath.
  EXPECT_GE(sample_value(scrape, "oar_route_maze_epochs_total"), 1.0);
  EXPECT_GE(sample_value(scrape, "oar_route_maze_heap_pushes_total"), 1.0);

  // Liveness gauges refreshed by the scrape itself.
  EXPECT_GE(sample_value(scrape, "oar_serve_cache_entries"), 1.0);

  // The JSON flavor carries the same families.
  const std::string json = service.scrape_json();
  EXPECT_NE(json.find("\"oar_serve_request_latency_seconds\""),
            std::string::npos);
  EXPECT_NE(json.find("\"oar_route_maze_epochs_total\""), std::string::npos);
}

}  // namespace
}  // namespace oar::serve
