# Empty dependencies file for oar_core.
# This may be replaced when dependencies are built.
