#include "obs/export.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>

namespace oar::obs {

namespace {

/// Shortest round-trip-ish formatting: integers print bare, everything
/// else with up to 9 significant digits (enough for latency seconds).
std::string format_number(double x) {
  char buf[64];
  if (std::isfinite(x) && x == std::floor(x) && std::fabs(x) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", x);
  } else if (std::isinf(x)) {
    std::snprintf(buf, sizeof(buf), "%s", x > 0 ? "+Inf" : "-Inf");
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", x);
  }
  return buf;
}

void append_header(std::string& out, const std::string& name,
                   const std::string& help, const char* type) {
  if (!help.empty()) {
    out += "# HELP " + name + " " + help + "\n";
  }
  out += "# TYPE " + name + " ";
  out += type;
  out += "\n";
}

}  // namespace

double histogram_quantile(const HistogramSample& sample, double q) {
  if (sample.count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * double(sample.count);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < sample.counts.size(); ++b) {
    const std::uint64_t in_bucket = sample.counts[b];
    if (in_bucket == 0) continue;
    if (double(cumulative) + double(in_bucket) >= rank) {
      const double lo = b == 0 ? 0.0 : sample.bounds[b - 1];
      if (b >= sample.bounds.size()) return lo;  // open +Inf bucket
      const double hi = sample.bounds[b];
      const double frac = (rank - double(cumulative)) / double(in_bucket);
      return lo + (hi - lo) * frac;
    }
    cumulative += in_bucket;
  }
  return sample.bounds.empty() ? 0.0 : sample.bounds.back();
}

std::string to_prometheus(const Snapshot& snapshot) {
  std::string out;
  char buf[64];
  for (const CounterSample& c : snapshot.counters) {
    append_header(out, c.name, c.help, "counter");
    std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", c.value);
    out += c.name + buf;
  }
  for (const GaugeSample& g : snapshot.gauges) {
    append_header(out, g.name, g.help, "gauge");
    out += g.name + " " + format_number(g.value) + "\n";
  }
  for (const HistogramSample& h : snapshot.histograms) {
    append_header(out, h.name, h.help, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      cumulative += h.counts[b];
      const std::string le =
          b < h.bounds.size() ? format_number(h.bounds[b]) : "+Inf";
      std::snprintf(buf, sizeof(buf), "\"} %" PRIu64 "\n", cumulative);
      out += h.name + "_bucket{le=\"" + le + buf;
    }
    out += h.name + "_sum " + format_number(h.sum) + "\n";
    std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", h.count);
    out += h.name + "_count" + buf;
  }
  return out;
}

std::string to_json(const Snapshot& snapshot) {
  std::string out = "{";
  char buf[64];
  bool first = true;
  const auto sep = [&] {
    out += first ? "\n" : ",\n";
    first = false;
  };
  for (const CounterSample& c : snapshot.counters) {
    sep();
    std::snprintf(buf, sizeof(buf), "%" PRIu64, c.value);
    out += "  \"" + c.name + "\": " + buf;
  }
  for (const GaugeSample& g : snapshot.gauges) {
    sep();
    out += "  \"" + g.name + "\": " + format_number(g.value);
  }
  for (const HistogramSample& h : snapshot.histograms) {
    sep();
    out += "  \"" + h.name + "\": {\"bounds\": [";
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      if (b) out += ", ";
      out += format_number(h.bounds[b]);
    }
    out += "], \"counts\": [";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      if (b) out += ", ";
      std::snprintf(buf, sizeof(buf), "%" PRIu64, h.counts[b]);
      out += buf;
    }
    std::snprintf(buf, sizeof(buf), "%" PRIu64, h.count);
    out += std::string("], \"count\": ") + buf +
           ", \"sum\": " + format_number(h.sum) + "}";
  }
  out += first ? "}\n" : "\n}\n";
  return out;
}

std::string scrape_prometheus() {
  return to_prometheus(MetricsRegistry::instance().snapshot());
}

std::string scrape_json() {
  return to_json(MetricsRegistry::instance().snapshot());
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << text;
  return bool(out);
}

}  // namespace oar::obs
