# Empty dependencies file for bench_fig10_obstacle_ratio.
# This may be replaced when dependencies are built.
