// Run every registered router over the synthetic public-benchmark clones
// and print a summary table — a one-command health check of the whole
// library (and a user-facing template for custom sweeps).
//
// Usage: benchmark_suite [scale]
//   scale divides the published benchmark dimensions (default 6, keeping
//   the run under half a minute; the oracle is skipped above tiny sizes).

#include <cstdio>
#include <cstdlib>
#include <map>

#include "core/oarsmtrl.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace oar;

  const std::int32_t scale = argc > 1 ? std::atoi(argv[1]) : 6;
  auto& registry = core::RouterRegistry::instance();
  const std::vector<std::string> router_names = {"lin08", "liu14", "lin18",
                                                 "rl-ours"};

  std::printf("benchmark suite at dimension scale 1/%d\n\n", scale);
  std::printf("%-6s %9s %6s |", "case", "dims", "pins");
  for (const auto& name : router_names) std::printf(" %16s |", name.c_str());
  std::printf("\n");

  std::map<std::string, double> totals;
  for (const auto& info : gen::public_benchmark_table()) {
    const auto scaled = gen::scaled_info(info, scale);
    const hanan::HananGrid grid = gen::make_public_benchmark(info, scale);
    char dims[32];
    std::snprintf(dims, sizeof(dims), "%dx%dx%d", scaled.h, scaled.v, scaled.m);
    std::printf("%-6s %9s %6d |", info.name.c_str(), dims, scaled.pins);
    for (const auto& name : router_names) {
      auto router = registry.create(name);
      util::Timer timer;
      const auto result = router->route(grid);
      if (!result.connected) {
        std::printf(" %16s |", "unroutable");
        continue;
      }
      std::printf(" %8.0f %6.2fs |", result.cost, timer.seconds());
      totals[name] += result.cost;
    }
    std::printf("\n");
  }

  std::printf("\ntotal routed cost:");
  for (const auto& name : router_names) {
    std::printf("  %s %.0f", name.c_str(), totals[name]);
  }
  std::printf("\n");
  return 0;
}
