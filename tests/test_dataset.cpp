#include "rl/dataset.hpp"

#include <gtest/gtest.h>

#include <set>

namespace oar::rl {
namespace {

HananGrid unit_grid(std::int32_t h, std::int32_t v, std::int32_t m) {
  return HananGrid(h, v, m, std::vector<double>(std::size_t(h - 1), 1.0),
                   std::vector<double>(std::size_t(v - 1), 1.0), 1.0);
}

TrainingSample sample_of_size(std::int32_t h, std::int32_t v, std::int32_t m) {
  TrainingSample s;
  s.grid = unit_grid(h, v, m);
  s.label.assign(std::size_t(h) * v * m, 0.0f);
  s.mask.assign(std::size_t(h) * v * m, 1.0f);
  return s;
}

TEST(Dataset, TracksSizesAndCounts) {
  Dataset ds;
  for (int i = 0; i < 5; ++i) ds.add(sample_of_size(4, 4, 2));
  for (int i = 0; i < 3; ++i) ds.add(sample_of_size(6, 4, 2));
  EXPECT_EQ(ds.size(), 8u);
  EXPECT_EQ(ds.num_sizes(), 2u);
}

TEST(Dataset, EpochBatchesAreSameSizeOnly) {
  Dataset ds;
  for (int i = 0; i < 7; ++i) ds.add(sample_of_size(4, 4, 2));
  for (int i = 0; i < 5; ++i) ds.add(sample_of_size(6, 4, 2));
  util::Rng rng(1);
  const auto batches = ds.epoch_batches(3, rng);
  for (const auto& batch : batches) {
    ASSERT_FALSE(batch.empty());
    const auto& first = ds.sample(batch.front()).grid;
    for (std::size_t idx : batch) {
      const auto& g = ds.sample(idx).grid;
      EXPECT_EQ(g.h_dim(), first.h_dim());
      EXPECT_EQ(g.v_dim(), first.v_dim());
      EXPECT_EQ(g.m_dim(), first.m_dim());
    }
    EXPECT_LE(batch.size(), 3u);
  }
}

TEST(Dataset, EpochCoversEverySampleExactlyOnce) {
  Dataset ds;
  for (int i = 0; i < 10; ++i) ds.add(sample_of_size(4, 4, 2));
  for (int i = 0; i < 4; ++i) ds.add(sample_of_size(5, 5, 1));
  util::Rng rng(2);
  std::multiset<std::size_t> seen;
  for (const auto& batch : ds.epoch_batches(4, rng)) {
    for (std::size_t idx : batch) seen.insert(idx);
  }
  EXPECT_EQ(seen.size(), ds.size());
  for (std::size_t i = 0; i < ds.size(); ++i) EXPECT_EQ(seen.count(i), 1u);
}

TEST(Dataset, ShufflingChangesOrderAcrossSeeds) {
  Dataset ds;
  for (int i = 0; i < 32; ++i) ds.add(sample_of_size(4, 4, 2));
  util::Rng r1(1), r2(2);
  const auto b1 = ds.epoch_batches(8, r1);
  const auto b2 = ds.epoch_batches(8, r2);
  EXPECT_NE(b1, b2);
}

TEST(Dataset, ClearResets) {
  Dataset ds;
  ds.add(sample_of_size(4, 4, 2));
  ds.clear();
  EXPECT_TRUE(ds.empty());
  EXPECT_EQ(ds.num_sizes(), 0u);
  util::Rng rng(3);
  EXPECT_TRUE(ds.epoch_batches(4, rng).empty());
}

}  // namespace
}  // namespace oar::rl
