// Fig. 11 reproduction: ST-to-MST ratio vs training time for the three
// policy-optimization schemes on fixed-size layouts.
//
// Paper scale: 24x24x4 layouts, hours of training, 10K eval layouts per
// pin count.  Bench scale: 8x8x2 layouts, ~18 s per trainer, 16 eval
// layouts per range; the out-of-range eval uses 7-10 pins (paper: 7-12).
//
// Extra ablation rows (DESIGN.md Sec. 6): the terminal pruning rules of the
// combinatorial MCTS toggled off, to show their effect on sample time.

#include "bench_training_curves.hpp"

int main() {
  using namespace oar;

  bench::CurveConfig cfg;
  cfg.figure_name = "Fig. 11";
  cfg.h = 8;
  cfg.v = 8;
  cfg.m = 2;
  cfg.out_min_pins = 7;
  cfg.out_max_pins = 10;
  bench::run_training_curves(cfg);

  // --- ablation: terminal pruning rules of combinatorial MCTS ---
  std::printf("\nablation: combinatorial-MCTS terminal rules (sample time, one"
              " stage of 4 layouts)\n");
  rl::TrainConfig train;
  train.sizes = {{cfg.h, cfg.v, cfg.m}};
  train.layouts_per_size = 4;
  train.epochs_per_stage = 1;
  train.augment_count = 1;
  train.mcts.iterations_per_move = 128;
  train.curriculum_stages = 0;
  train.seed = 0xab1a;

  for (const bool prune : {true, false}) {
    rl::SelectorConfig sel_cfg = core::pretrained_selector_config();
    sel_cfg.unet.seed = 0xad;
    rl::SteinerSelector selector(sel_cfg);
    rl::TrainConfig t = train;
    t.mcts.stop_on_cost_increase = prune;
    t.mcts.flat_cost_patience = prune ? 3 : 1000000;
    rl::CombTrainer trainer(selector, t);
    const auto report = trainer.run_stage();
    std::printf("  pruning %-3s : %.3f s/sample\n", prune ? "on" : "off",
                report.seconds_per_sample);
  }
  return 0;
}
