// Serving-layer acceptance bench: micro-batched throughput and result-cache
// speedup over 64 random 16x16x4 layouts (the paper's training-size grids).
//
// Three phases, each against a fresh RouterService:
//   1. baseline  — max_batch = 1, cache off (the legacy per-request path),
//   2. batched   — max_batch = 8, cache off (one U-Net pass per micro-batch),
//   3. cached    — max_batch = 8, cache on; a cold pass then a 100%-hit rerun.
//
// Acceptance: batched >= 2x baseline throughput, rerun >= 10x cold pass.
// `--smoke` shrinks the sweep and reports the ratios without gating the
// exit code on them (CI runners have too few cores for the batching win).
// Per-stage latency percentiles land in bench_serve_metrics.csv; the final
// service's obs scrape lands in BENCH_serve_metrics.prom / .json (the
// artifact CI uploads — a real snapshot of every layer's metric families).

#include <cstring>
#include <future>
#include <vector>

#include "bench_common.hpp"
#include "gen/random_layout.hpp"
#include "obs/export.hpp"
#include "serve/service.hpp"
#include "util/rng.hpp"

namespace {

using namespace oar;

std::vector<std::shared_ptr<const hanan::HananGrid>> make_layouts(
    std::size_t count) {
  gen::RandomGridSpec spec;  // defaults: 16x16x4, 3..6 pins
  util::Rng rng(20240805);
  std::vector<std::shared_ptr<const hanan::HananGrid>> grids;
  grids.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    grids.push_back(
        std::make_shared<const hanan::HananGrid>(gen::random_grid(spec, rng)));
  }
  return grids;
}

/// Submits every layout up front (a deep queue, as a loaded server sees) and
/// waits for all replies; returns the wall seconds for the whole sweep.
double run_sweep(serve::RouterService& service,
                 const std::vector<std::shared_ptr<const hanan::HananGrid>>& grids) {
  util::Timer timer;
  std::vector<std::future<serve::RouteReply>> replies;
  replies.reserve(grids.size());
  for (const auto& grid : grids) {
    replies.push_back(service.submit(serve::RouteRequest{grid, std::nullopt}));
  }
  for (auto& reply : replies) reply.get();
  return timer.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::size_t kLayouts = smoke ? 24 : 64;
  auto selector = bench::bench_selector();
  const auto grids = make_layouts(kLayouts);

  std::printf("bench_serve: %zu random 16x16x4 layouts%s\n\n", kLayouts,
              smoke ? " (smoke)" : "");

  // Phase 1: batch-size-1 baseline (legacy single-sample inference path).
  double base_seconds = 0.0;
  {
    serve::RouterServiceConfig cfg;
    cfg.max_batch = 1;
    cfg.cache_capacity = 0;
    serve::RouterService service(selector, cfg);
    base_seconds = run_sweep(service, grids);
  }
  const double base_rps = double(kLayouts) / base_seconds;
  std::printf("baseline   (batch=1):  %7.3fs  %6.1f req/s\n", base_seconds,
              base_rps);

  // Phase 2: micro-batched, cache still off so every request infers.
  double batch_seconds = 0.0;
  double mean_batch = 0.0;
  {
    serve::RouterServiceConfig cfg;
    cfg.max_batch = 8;
    cfg.cache_capacity = 0;
    serve::RouterService service(selector, cfg);
    batch_seconds = run_sweep(service, grids);
    mean_batch = service.metrics().snapshot().mean_batch_size;
  }
  const double batch_rps = double(kLayouts) / batch_seconds;
  const double speedup = base_seconds / batch_seconds;
  std::printf("batched    (batch=8):  %7.3fs  %6.1f req/s   mean batch %.1f\n",
              batch_seconds, batch_rps, mean_batch);
  std::printf("micro-batching speedup: %.2fx  [%s] (need >= 2x)\n\n", speedup,
              speedup >= 2.0 ? "PASS" : "FAIL");

  // Phase 3: cache on — cold sweep populates, identical rerun must be hits.
  double cold_seconds = 0.0, warm_seconds = 0.0, hit_rate = 0.0;
  {
    serve::RouterServiceConfig cfg;
    cfg.max_batch = 8;
    cfg.cache_capacity = 2 * kLayouts;
    serve::RouterService service(selector, cfg);
    cold_seconds = run_sweep(service, grids);
    warm_seconds = run_sweep(service, grids);
    const auto snap = service.metrics().snapshot();
    hit_rate = snap.cache_hit_rate();
    service.metrics().dump_csv("bench_serve_metrics.csv");
    if (obs::write_text_file("BENCH_serve_metrics.prom",
                             service.scrape_prometheus()) &&
        obs::write_text_file("BENCH_serve_metrics.json",
                             service.scrape_json())) {
      std::printf("obs scrape -> BENCH_serve_metrics.prom / .json\n\n");
    }
  }
  const double cache_speedup = cold_seconds / warm_seconds;
  std::printf("cache cold:            %7.3fs\n", cold_seconds);
  std::printf("cache rerun:           %7.3fs   overall hit rate %.0f%%\n",
              warm_seconds, 100.0 * hit_rate);
  std::printf("cache speedup: %.1fx  [%s] (need >= 10x)\n\n", cache_speedup,
              cache_speedup >= 10.0 ? "PASS" : "FAIL");

  std::printf("per-stage latency histograms -> bench_serve_metrics.csv\n");
  if (smoke) return 0;  // ratios are informational on small machines
  return (speedup >= 2.0 && cache_speedup >= 10.0) ? 0 : 1;
}
