#include "serve/service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <set>
#include <thread>

#include "gen/random_layout.hpp"
#include "obs/metrics.hpp"
#include "serve/batched_selector.hpp"
#include "serve/canonical.hpp"
#include "serve/metrics.hpp"
#include "serve/result_cache.hpp"

namespace oar::serve {
namespace {

rl::SelectorConfig tiny_config() {
  rl::SelectorConfig cfg;
  cfg.unet.in_channels = 7;
  cfg.unet.base_channels = 4;
  cfg.unet.depth = 1;
  cfg.unet.seed = 11;
  return cfg;
}

HananGrid small_grid(std::uint64_t seed = 4) {
  util::Rng rng(seed);
  gen::RandomGridSpec spec;
  spec.h = 6;
  spec.v = 6;
  spec.m = 2;
  spec.min_pins = 4;
  spec.max_pins = 4;
  spec.min_obstacles = 3;
  spec.max_obstacles = 3;
  return gen::random_grid(spec, rng);
}

std::set<std::pair<Vertex, Vertex>> edge_set(const route::RouteTree& tree) {
  std::set<std::pair<Vertex, Vertex>> out;
  for (const route::GridEdge& e : tree.edges()) out.insert({e.a, e.b});
  return out;
}

TEST(Canonical, AllSixteenSymmetriesShareOneKey) {
  const HananGrid grid = small_grid();
  const CanonicalForm base = canonicalize(grid);
  EXPECT_TRUE(base.symmetric);
  for (const rl::AugmentSpec& spec : rl::all_augmentations()) {
    const HananGrid variant = rl::transform_grid(grid, spec);
    const CanonicalForm form = canonicalize(variant);
    EXPECT_EQ(form.key, base.key);
  }
}

TEST(Canonical, FastOrbitSerializationMatchesReference) {
  const HananGrid grid = small_grid();
  // Reference: serialize the fully constructed transformed grids.
  std::string expect;
  for (const rl::AugmentSpec& spec : rl::all_augmentations()) {
    std::string key = serialize_grid(rl::transform_grid(grid, spec));
    if (expect.empty() || key < expect) expect = std::move(key);
  }
  EXPECT_EQ(canonicalize(grid).key, expect);
}

TEST(Canonical, DistinctLayoutsGetDistinctKeys) {
  EXPECT_NE(canonicalize(small_grid(4)).key, canonicalize(small_grid(5)).key);
}

TEST(Canonical, CostBiasOverlayForcesIdentityKey) {
  // A congestion overlay (full-chip negotiation) breaks the symmetry
  // orbit: canonicalize must fall back to the identity key, and two
  // different overlay states must never alias one cache entry.
  HananGrid grid = small_grid();
  const CanonicalForm plain = canonicalize(grid);
  ASSERT_TRUE(plain.symmetric);

  grid.set_edge_cost_bias(0, hanan::Dir::kPosX, 2.5);
  const CanonicalForm biased = canonicalize(grid);
  EXPECT_FALSE(biased.symmetric);
  EXPECT_NE(biased.key, plain.key);

  grid.set_edge_cost_bias(0, hanan::Dir::kPosX, 3.5);
  EXPECT_NE(canonicalize(grid).key, biased.key);

  // Clearing the overlay restores the symmetric orbit key exactly.
  grid.clear_edge_cost_biases();
  const CanonicalForm restored = canonicalize(grid);
  EXPECT_TRUE(restored.symmetric);
  EXPECT_EQ(restored.key, plain.key);
}

TEST(Canonical, InverseVertexMapRoundTrips) {
  const HananGrid grid = small_grid();
  for (const rl::AugmentSpec& spec : rl::all_augmentations()) {
    const std::vector<Vertex> inv = inverse_vertex_map(grid, spec);
    for (Vertex v = 0; v < grid.num_vertices(); ++v) {
      EXPECT_EQ(inv[std::size_t(rl::transform_vertex(grid, v, spec))], v);
    }
  }
}

// ResultCache is a deprecated shim over experience::Store; these tests
// exercise the shim itself, so the warning is expected noise here.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

TEST(ResultCache, LruEvictsOldestAndGetRefreshes) {
  ResultCache cache(2);
  CachedRoute value;
  value.cost = 1.0;
  cache.put("a", value);
  cache.put("b", value);
  ASSERT_TRUE(cache.get("a").has_value());  // refreshes "a"
  cache.put("c", value);                    // evicts "b"
  EXPECT_TRUE(cache.get("a").has_value());
  EXPECT_FALSE(cache.get("b").has_value());
  EXPECT_TRUE(cache.get("c").has_value());
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ResultCache, ZeroCapacityStoresNothing) {
  ResultCache cache(0);
  cache.put("a", CachedRoute{});
  EXPECT_FALSE(cache.get("a").has_value());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ResultCache, ClearResetsEntriesGauge) {
  // Regression: clear() used to leave oar_serve_cache_entries at its old
  // value until the next scrape refreshed it.  Mutations now maintain it.
  if (!obs::enabled()) GTEST_SKIP() << "metrics disabled";
  obs::Gauge& gauge = obs::MetricsRegistry::instance().gauge(
      "oar_serve_cache_entries", "Entries resident in the result cache");
  ResultCache cache(4);
  CachedRoute value;
  cache.put("a", value);
  cache.put("b", value);
  EXPECT_EQ(gauge.value(), 2.0);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(gauge.value(), 0.0);
}

#pragma GCC diagnostic pop

TEST(BatchedSelector, MatchesSingleSampleInference) {
  rl::SteinerSelector selector(tiny_config());
  std::vector<HananGrid> grids = {small_grid(1), small_grid(2), small_grid(3)};
  std::vector<const HananGrid*> ptrs;
  for (const HananGrid& g : grids) ptrs.push_back(&g);

  const auto batched = batched_fsp(selector, ptrs);
  ASSERT_EQ(batched.size(), grids.size());
  for (std::size_t i = 0; i < grids.size(); ++i) {
    const auto single = selector.infer_fsp(grids[i]);
    ASSERT_EQ(batched[i].size(), single.size());
    for (std::size_t j = 0; j < single.size(); ++j) {
      // The batched kernels may contract FMAs in a different order.
      EXPECT_NEAR(batched[i][j], single[j], 1e-4);
    }
  }
}

TEST(RouterService, CacheHitReturnsIdenticalTree) {
  auto selector = std::make_shared<rl::SteinerSelector>(tiny_config());
  RouterServiceConfig cfg;
  cfg.max_batch = 4;
  RouterService service(selector, cfg);

  const auto grid = std::make_shared<const HananGrid>(small_grid());
  const RouteReply cold = service.route(grid);
  ASSERT_TRUE(cold.result.connected);
  EXPECT_FALSE(cold.cache_hit);

  const RouteReply warm = service.route(grid);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_TRUE(warm.result.connected);
  EXPECT_DOUBLE_EQ(warm.result.cost, cold.result.cost);
  EXPECT_EQ(edge_set(warm.result.tree), edge_set(cold.result.tree));
  EXPECT_EQ(warm.result.kept_steiner.size(), cold.result.kept_steiner.size());
  EXPECT_EQ(service.metrics().snapshot().cache_hits, 1u);
}

TEST(RouterService, RotatedLayoutHitsSameCacheEntry) {
  auto selector = std::make_shared<rl::SteinerSelector>(tiny_config());
  RouterService service(selector, {});

  const auto grid = std::make_shared<const HananGrid>(small_grid());
  const RouteReply cold = service.route(grid);
  ASSERT_TRUE(cold.result.connected);

  for (const rl::AugmentSpec& spec : rl::all_augmentations()) {
    const auto variant =
        std::make_shared<const HananGrid>(rl::transform_grid(*grid, spec));
    const RouteReply reply = service.route(variant);
    EXPECT_TRUE(reply.cache_hit);
    // Symmetries preserve step costs, so the replayed tree costs the same
    // and must be a valid tree over the variant's own pins.
    EXPECT_DOUBLE_EQ(reply.result.cost, cold.result.cost);
    EXPECT_EQ(reply.result.tree.validate(variant->pins()), "");
  }
  EXPECT_EQ(service.cache_size(), 1u);
}

TEST(RouterService, ExpiredDeadlineIsFlagged) {
  auto selector = std::make_shared<rl::SteinerSelector>(tiny_config());
  RouterService service(selector, {});

  RouteRequest request;
  request.grid = std::make_shared<const HananGrid>(small_grid());
  request.deadline = Clock::now() - std::chrono::seconds(1);
  const RouteReply reply = service.submit(std::move(request)).get();
  EXPECT_TRUE(reply.result.connected);  // still routed, just late
  EXPECT_FALSE(reply.deadline_met);
  EXPECT_EQ(service.metrics().snapshot().deadline_misses, 1u);
}

TEST(RouterService, ConcurrentClientsAllComplete) {
  auto selector = std::make_shared<rl::SteinerSelector>(tiny_config());
  RouterServiceConfig cfg;
  cfg.max_batch = 4;
  cfg.batch_wait_ms = 1.0;
  RouterService service(selector, cfg);

  std::vector<std::shared_ptr<const HananGrid>> layouts;
  for (std::uint64_t s = 1; s <= 3; ++s) {
    layouts.push_back(std::make_shared<const HananGrid>(small_grid(s)));
  }

  constexpr int kClients = 4, kPerClient = 6;
  std::atomic<int> connected{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kPerClient; ++r) {
        const auto& grid = layouts[std::size_t(c + r) % layouts.size()];
        const RouteReply reply =
            service.submit(RouteRequest{grid, std::nullopt}).get();
        if (reply.result.connected) connected++;
      }
    });
  }
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(connected.load(), kClients * kPerClient);
  const MetricsSnapshot snap = service.metrics().snapshot();
  EXPECT_EQ(snap.requests, std::uint64_t(kClients * kPerClient));
  // Only 3 distinct layouts exist; concurrent first touches may each miss,
  // but the steady state must be hits and at most 3 entries.
  EXPECT_GE(snap.cache_hits, 1u);
  EXPECT_LE(service.cache_size(), 3u);
}

TEST(ServiceMetrics, SnapshotAndCsvDump) {
  ServiceMetrics metrics;
  for (int i = 1; i <= 10; ++i) {
    metrics.record_stage(Stage::kInference, 0.001 * i);
  }
  metrics.add_request();
  metrics.add_request();
  metrics.add_cache_hit();
  metrics.add_batch(4);

  const MetricsSnapshot snap = metrics.snapshot();
  const StageSummary& inf = snap.stages[std::size_t(Stage::kInference)];
  EXPECT_EQ(inf.count, 10u);
  EXPECT_NEAR(inf.mean_ms, 5.5, 1e-9);
  EXPECT_NEAR(inf.max_ms, 10.0, 1e-9);
  EXPECT_GT(inf.p90_ms, inf.p50_ms);
  EXPECT_DOUBLE_EQ(snap.cache_hit_rate(), 0.5);
  EXPECT_DOUBLE_EQ(snap.mean_batch_size, 4.0);

  const std::string path = testing::TempDir() + "serve_metrics_test.csv";
  EXPECT_TRUE(metrics.dump_csv(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace oar::serve
