# Empty compiler generated dependencies file for congestion_aware.
# This may be replaced when dependencies are built.
