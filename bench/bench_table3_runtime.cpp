// Table 3 reproduction: average runtime of the [14]-class baseline vs the
// RL router, with the RL runtime split into Steiner-point selection (one
// network inference) and the total including OARMST construction.
//
// The paper's headline shape — the baseline's runtime explodes with layout
// size while the one-inference RL selection grows mildly, crossing from a
// sub-1x "speedup" on the smallest subset to double-digit speedups on the
// large ones — reproduces at bench scale because it is driven by algorithmic
// complexity, not absolute hardware speed.

#include "bench_common.hpp"

int main() {
  using namespace oar;

  auto selector = bench::bench_selector();
  core::RlRouter ours(selector);
  steiner::Lin18Router lin18(bench::bench_lin18_config());

  const auto subsets = gen::paper_test_subsets(/*scale=*/8);
  const std::vector<int> base_counts = {16, 10, 8, 6, 4, 3, 2};
  const double scale = bench::env_scale();

  std::printf("Table 3: runtime comparison ([14]-class baseline vs ours)\n\n");
  std::printf("%-8s %4s | %14s | %14s %14s | %8s\n", "subset", "n", "lin18 avg [s]",
              "Spoint sel [s]", "total [s]", "speedup");
  bench::print_rule(84);

  for (std::size_t i = 0; i < subsets.size(); ++i) {
    const auto& subset = subsets[i];
    const int count = std::max(1, int(base_counts[i] * scale));
    util::Rng rng(0x7ab1e3 + std::uint64_t(i));
    util::RunningStats base_time, select_time, total_time;
    for (int l = 0; l < count; ++l) {
      gen::TestSubsetSpec capped = subset;
      capped.max_m = 6;
      const hanan::HananGrid grid = gen::random_subset_grid(capped, rng);

      util::Timer t;
      const auto base = lin18.route(grid);
      base_time.add(t.seconds());

      const auto mine = ours.route(grid);
      select_time.add(ours.last_timing().select_seconds);
      total_time.add(ours.last_timing().total_seconds);
      (void)base;
      (void)mine;
    }
    const double speedup =
        total_time.mean() > 0.0 ? base_time.mean() / total_time.mean() : 0.0;
    std::printf("%-8s %4zu | %14.4f | %14.4f %14.4f | %7.1fx\n", subset.name.c_str(),
                base_time.count(), base_time.mean(), select_time.mean(),
                total_time.mean(), speedup);
  }
  std::printf("\npaper (full scale): speedup 0.8x (T32) growing to 75.6x (T512)\n");
  return 0;
}
