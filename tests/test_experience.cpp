#include "experience/store.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "experience/file_store.hpp"
#include "experience/record.hpp"
#include "experience/warm_start.hpp"
#include "gen/random_layout.hpp"
#include "mcts/comb_mcts.hpp"
#include "rl/augment.hpp"
#include "rl/selector.hpp"
#include "route/oarmst.hpp"
#include "serve/service.hpp"

namespace oar::experience {
namespace {

rl::SelectorConfig tiny_config() {
  rl::SelectorConfig cfg;
  cfg.unet.in_channels = 7;
  cfg.unet.base_channels = 4;
  cfg.unet.depth = 1;
  cfg.unet.seed = 11;
  return cfg;
}

HananGrid small_grid(std::uint64_t seed = 4) {
  util::Rng rng(seed);
  gen::RandomGridSpec spec;
  spec.h = 6;
  spec.v = 6;
  spec.m = 2;
  spec.min_pins = 4;
  spec.max_pins = 4;
  spec.min_obstacles = 3;
  spec.max_obstacles = 3;
  return gen::random_grid(spec, rng);
}

std::string temp_path(const std::string& name) {
  std::string p = ::testing::TempDir() + "oar_" + name;
  std::remove(p.c_str());
  std::remove((p + ".tmp").c_str());
  return p;
}

/// Routes `grid` and packages the episode the way the serving path and the
/// trainer do: tree + fsp summary + best combination.  The "best"
/// combination is the first free vertex — an arbitrary but valid Steiner
/// choice, enough for the exact-match machinery to have a floor to replay.
KeyedRecord routed_record(const HananGrid& grid) {
  std::vector<Vertex> best;
  for (Vertex v = 0; v < grid.num_vertices() && best.empty(); ++v) {
    if (!grid.is_blocked(v) && !grid.is_pin(v)) best.push_back(v);
  }
  route::OarmstRouter router(grid);
  route::OarmstResult res = router.build(grid.pins(), best);
  EXPECT_TRUE(res.connected);
  std::vector<float> fsp(std::size_t(grid.num_vertices()), 0.0f);
  for (Vertex v : best) fsp[std::size_t(grid.priority_of(v))] = 1.0f;
  return build_record(grid, res, fsp, best);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), std::streamsize(bytes.size()));
}

TEST(ExperienceRecord, SerializeRoundTripsWarmPayload) {
  const HananGrid grid = small_grid();
  const KeyedRecord keyed = routed_record(grid);
  ASSERT_TRUE(keyed.record.has_warm_start());

  const std::string bytes = serialize_record(keyed.record);
  ExperienceRecord back;
  ASSERT_TRUE(deserialize_record(bytes.data(), bytes.size(), back));

  EXPECT_EQ(back.edges.size(), keyed.record.edges.size());
  for (std::size_t i = 0; i < back.edges.size(); ++i) {
    EXPECT_EQ(back.edges[i].a, keyed.record.edges[i].a);
    EXPECT_EQ(back.edges[i].b, keyed.record.edges[i].b);
  }
  EXPECT_EQ(back.steiner, keyed.record.steiner);
  EXPECT_EQ(back.cost, keyed.record.cost);
  EXPECT_EQ(back.connected, keyed.record.connected);
  EXPECT_EQ(back.base_key, keyed.record.base_key);
  EXPECT_EQ(back.pins_base, keyed.record.pins_base);
  EXPECT_EQ(back.best_base, keyed.record.best_base);
  EXPECT_EQ(back.fsp_base, keyed.record.fsp_base);
}

TEST(ExperienceRecord, DeserializeFailsClosedOnMalformedBytes) {
  const std::string bytes = serialize_record(routed_record(small_grid()).record);
  ExperienceRecord out;
  // Every strict prefix is rejected — no partial parse ever succeeds.
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    EXPECT_FALSE(deserialize_record(bytes.data(), n, out)) << "prefix " << n;
  }
  // Trailing garbage is rejected too (a frame length lie must not pass).
  const std::string longer = bytes + 'x';
  EXPECT_FALSE(deserialize_record(longer.data(), longer.size(), out));
}

TEST(ExperienceFile, RoundTripSurvivesReopen) {
  const std::string path = temp_path("roundtrip.oarexp");
  const HananGrid grid = small_grid();
  const KeyedRecord keyed = routed_record(grid);
  {
    FileStore fs(path);
    fs.put(keyed.key, keyed.record);
    fs.flush();
    EXPECT_EQ(fs.stats().appended, 1u);
  }
  FileStore reopened(path);
  EXPECT_EQ(reopened.stats().recovered, 1u);
  EXPECT_EQ(reopened.stats().tail_lost_bytes, 0u);
  ExperienceRecord back;
  ASSERT_TRUE(reopened.get(keyed.key, back));
  EXPECT_EQ(back.cost, keyed.record.cost);
  EXPECT_EQ(back.steiner, keyed.record.steiner);
  std::remove(path.c_str());
}

TEST(ExperienceFile, TornTailIsDroppedAndWritableAgain) {
  const std::string path = temp_path("torn.oarexp");
  const KeyedRecord a = routed_record(small_grid(4));
  const KeyedRecord b = routed_record(small_grid(5));
  {
    FileStore fs(path);
    fs.put(a.key, a.record);
    fs.flush();
  }
  // Simulate a kill mid-append: half a frame of garbage at the tail.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write("EXPRgarbage-that-is-not-a-frame", 31);
  }
  {
    FileStore fs(path);  // writable open truncates the torn tail
    EXPECT_EQ(fs.stats().recovered, 1u);
    EXPECT_GT(fs.stats().tail_lost_bytes, 0u);
    ExperienceRecord back;
    EXPECT_TRUE(fs.get(a.key, back));
    fs.put(b.key, b.record);
    fs.flush();
  }
  // Appends made after the tear are reachable by the next open.
  FileStore reopened(path);
  EXPECT_EQ(reopened.stats().recovered, 2u);
  ExperienceRecord back;
  EXPECT_TRUE(reopened.get(a.key, back));
  EXPECT_TRUE(reopened.get(b.key, back));
  std::remove(path.c_str());
}

TEST(ExperienceFile, BitFlipFailsClosedFromTheFlipOn) {
  const std::string path = temp_path("bitflip.oarexp");
  const KeyedRecord a = routed_record(small_grid(4));
  const KeyedRecord b = routed_record(small_grid(5));
  {
    FileStore fs(path);
    fs.put(a.key, a.record);
    fs.put(b.key, b.record);
    fs.flush();
  }
  std::string bytes = read_file(path);
  // Flip one byte inside the FIRST frame's payload (just past the header
  // and frame head): the checksum must reject it, and the scan stops there
  // — b's frame after the corruption is unreachable, never misparsed.
  bytes[40] = char(bytes[40] ^ 0x40);
  write_file(path, bytes);

  FileStore fs(path, /*read_only=*/true);
  EXPECT_EQ(fs.stats().recovered, 0u);
  EXPECT_GT(fs.stats().tail_lost_bytes, 0u);
  ExperienceRecord back;
  EXPECT_FALSE(fs.get(a.key, back));
  EXPECT_FALSE(fs.get(b.key, back));
  std::remove(path.c_str());
}

TEST(ExperienceFile, WrongMagicOrTruncatedHeaderThrows) {
  const std::string path = temp_path("notanexp.oarexp");
  write_file(path, "definitely not an experience file");
  EXPECT_THROW(FileStore fs(path), std::runtime_error);
  write_file(path, "OAREXP1\n");  // magic alone, header truncated
  EXPECT_THROW(FileStore fs(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(ExperienceFile, CompactDropsSupersededFramesAndKeepsNewest) {
  const std::string path = temp_path("compact.oarexp");
  const HananGrid grid = small_grid();
  KeyedRecord keyed = routed_record(grid);
  FileStore fs(path);
  fs.put(keyed.key, keyed.record);
  keyed.record.cost += 1.0;  // append-merge update under the same key
  fs.put(keyed.key, keyed.record);
  fs.flush();
  const std::uint64_t before = fs.stats().file_bytes;
  EXPECT_GT(fs.stats().dead_bytes, 0u);

  fs.compact();
  EXPECT_LT(fs.stats().file_bytes, before);
  EXPECT_EQ(fs.stats().dead_bytes, 0u);
  EXPECT_EQ(fs.size(), 1u);
  ExperienceRecord back;
  ASSERT_TRUE(fs.get(keyed.key, back));
  EXPECT_EQ(back.cost, keyed.record.cost);  // newest frame won
  std::remove(path.c_str());
}

TEST(ExperienceStore, TierProvenanceMemoryDiskMiss) {
  const std::string path = temp_path("tiers.oarexp");
  StoreConfig sc;
  sc.memory_capacity = 4;
  sc.path = path;
  sc.flush_batch = 1;
  Store store(sc);
  const KeyedRecord keyed = routed_record(small_grid());

  HitTier tier = HitTier::kMemory;
  EXPECT_FALSE(store.get(keyed.key, &tier).has_value());
  EXPECT_EQ(tier, HitTier::kMiss);

  store.put(keyed.key, keyed.record);
  EXPECT_TRUE(store.get(keyed.key, &tier).has_value());
  EXPECT_EQ(tier, HitTier::kMemory);

  // Evict the memory tier: the next hit must come from disk, then be
  // promoted so the one after is a memory hit again.
  store.clear_memory();
  EXPECT_TRUE(store.get(keyed.key, &tier).has_value());
  EXPECT_EQ(tier, HitTier::kDisk);
  EXPECT_TRUE(store.get(keyed.key, &tier).has_value());
  EXPECT_EQ(tier, HitTier::kMemory);

  const StoreStats stats = store.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.disk_hits, 1u);
  EXPECT_EQ(stats.memory_hits, 2u);
  std::remove(path.c_str());
}

TEST(ExperienceStore, MemoryOnlyStoreIsAPureLru) {
  StoreConfig sc;
  sc.memory_capacity = 2;
  Store store(sc);
  EXPECT_FALSE(store.has_disk_tier());
  const KeyedRecord a = routed_record(small_grid(4));
  const KeyedRecord b = routed_record(small_grid(5));
  const KeyedRecord c = routed_record(small_grid(6));
  store.put(a.key, a.record);
  store.put(b.key, b.record);
  EXPECT_TRUE(store.get(a.key).has_value());  // refresh a
  store.put(c.key, c.record);                 // evicts b
  EXPECT_TRUE(store.get(a.key).has_value());
  EXPECT_FALSE(store.get(b.key).has_value());
  EXPECT_TRUE(store.get(c.key).has_value());
  EXPECT_EQ(store.memory_entries(), 2u);
}

TEST(ExperienceStore, ReadOnlyStoreServesButNeverAppends) {
  const std::string path = temp_path("readonly.oarexp");
  const KeyedRecord a = routed_record(small_grid(4));
  const KeyedRecord b = routed_record(small_grid(5));
  {
    StoreConfig sc;
    sc.path = path;
    Store writer(sc);
    writer.put(a.key, a.record);
    writer.flush();
  }
  StoreConfig sc;
  sc.path = path;
  sc.read_only = true;
  Store reader(sc);
  HitTier tier = HitTier::kMiss;
  EXPECT_TRUE(reader.get(a.key, &tier).has_value());
  EXPECT_EQ(tier, HitTier::kDisk);
  reader.put(b.key, b.record);  // memory tier only — never hits the file
  EXPECT_EQ(reader.stats().disk.appended, 0u);
  FileStore check(path, /*read_only=*/true);
  EXPECT_EQ(check.size(), 1u);
  std::remove(path.c_str());
}

TEST(ExperienceConcurrentReaders, GetAndMatchBaseRaceAWriter) {
  const std::string path = temp_path("concurrent.oarexp");
  StoreConfig sc;
  sc.memory_capacity = 2;
  sc.path = path;
  sc.flush_batch = 2;
  Store store(sc);

  std::vector<KeyedRecord> keyed;
  for (std::uint64_t s = 0; s < 6; ++s) keyed.push_back(routed_record(small_grid(s + 4)));
  const std::string base = keyed[0].record.base_key;

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      std::size_t hits = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        for (const KeyedRecord& k : keyed) {
          if (store.get(k.key).has_value()) ++hits;
        }
        hits += store.match_base(base).size();
      }
      (void)hits;
    });
  }
  for (int round = 0; round < 4; ++round) {
    for (const KeyedRecord& k : keyed) store.put(k.key, k.record);
    store.flush();
  }
  store.compact();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();

  for (const KeyedRecord& k : keyed) EXPECT_TRUE(store.get(k.key).has_value());
  std::remove(path.c_str());
}

TEST(ExperienceWarmStart, ExactMatchYieldsPriorAndBestFloor) {
  const std::string path = temp_path("warm_exact.oarexp");
  StoreConfig sc;
  sc.path = path;
  Store store(sc);
  const HananGrid grid = small_grid();
  store.put(routed_record(grid));

  const WarmStart warm = lookup_warm_start(store, grid);
  ASSERT_FALSE(warm.empty());
  EXPECT_TRUE(warm.exact);
  EXPECT_EQ(warm.matches, 1);
  ASSERT_EQ(warm.prior.size(), std::size_t(grid.num_vertices()));
  // The recorded combination maps back into request space onto routable
  // non-pin vertices.
  for (Vertex v : warm.best) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, grid.num_vertices());
    EXPECT_FALSE(grid.is_blocked(v));
    EXPECT_FALSE(grid.is_pin(v));
  }
  std::remove(path.c_str());
}

TEST(ExperienceWarmStart, SymmetryVariantOfTheEpisodeStillMatches) {
  const std::string path = temp_path("warm_sym.oarexp");
  StoreConfig sc;
  sc.path = path;
  Store store(sc);
  const HananGrid grid = small_grid();
  store.put(routed_record(grid));

  // A rotated/mirrored request shares the pin-stripped base key, so the
  // episode applies there too (mapped through the inverse symmetry).
  const HananGrid variant = rl::transform_grid(grid, rl::all_augmentations()[5]);
  const WarmStart warm = lookup_warm_start(store, variant);
  ASSERT_FALSE(warm.empty());
  EXPECT_TRUE(warm.exact);
  for (Vertex v : warm.best) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, variant.num_vertices());
    EXPECT_FALSE(variant.is_blocked(v));
    EXPECT_FALSE(variant.is_pin(v));
  }
  std::remove(path.c_str());
}

TEST(ExperienceWarmStart, DisabledOrEmptyStoreIsBitwiseCold) {
  const std::string path = temp_path("warm_anchor.oarexp");
  rl::SteinerSelector selector(tiny_config());
  const HananGrid grid = small_grid();
  mcts::CombMctsConfig cfg;
  cfg.iterations_per_move = 48;
  cfg.use_critic = false;

  mcts::CombMcts cold(selector, cfg);
  const mcts::CombMctsResult want = cold.run(grid);

  StoreConfig sc;
  sc.path = path;
  Store store(sc);

  // warm_start=false with a populated store attached: bitwise identical.
  store.put(routed_record(grid));
  mcts::CombMcts off(selector, cfg, &store);
  const mcts::CombMctsResult got_off = off.run(grid);
  EXPECT_EQ(got_off.selected, want.selected);
  EXPECT_EQ(got_off.best_selected, want.best_selected);
  EXPECT_EQ(got_off.best_cost, want.best_cost);
  EXPECT_EQ(got_off.final_cost, want.final_cost);
  EXPECT_EQ(got_off.label, want.label);
  EXPECT_FALSE(got_off.stats.warm_started);

  // warm_start=true against a store with no applicable experience: the
  // lookup comes back empty and the search is still bitwise cold.
  const std::string empty_path = temp_path("warm_anchor_empty.oarexp");
  StoreConfig esc;
  esc.path = empty_path;
  Store empty_store(esc);
  mcts::CombMctsConfig warm_cfg = cfg;
  warm_cfg.warm_start = true;
  mcts::CombMcts on_empty(selector, warm_cfg, &empty_store);
  const mcts::CombMctsResult got_empty = on_empty.run(grid);
  EXPECT_EQ(got_empty.selected, want.selected);
  EXPECT_EQ(got_empty.best_cost, want.best_cost);
  EXPECT_EQ(got_empty.label, want.label);
  EXPECT_FALSE(got_empty.stats.warm_started);

  std::remove(path.c_str());
  std::remove(empty_path.c_str());
}

TEST(ExperienceWarmStart, WarmReplayNeverLosesToCold) {
  const std::string path = temp_path("warm_replay.oarexp");
  rl::SteinerSelector selector(tiny_config());
  mcts::CombMctsConfig cfg;
  cfg.iterations_per_move = 48;
  cfg.use_critic = false;

  StoreConfig sc;
  sc.path = path;
  Store store(sc);

  for (std::uint64_t seed = 4; seed < 9; ++seed) {
    const HananGrid grid = small_grid(seed);
    mcts::CombMcts cold(selector, cfg);
    const mcts::CombMctsResult cold_res = cold.run(grid);

    // Record the cold episode, then replay the same layout warm: the
    // exact-match floor guarantees best cost <= cold best cost.
    route::OarmstRouter router(grid);
    route::OarmstResult routed =
        router.build(grid.pins(), cold_res.best_selected);
    ASSERT_TRUE(routed.connected);
    store.put(build_record(grid, routed, cold_res.label,
                           cold_res.best_selected));

    mcts::CombMctsConfig warm_cfg = cfg;
    warm_cfg.warm_start = true;
    mcts::CombMcts warm(selector, warm_cfg, &store);
    const mcts::CombMctsResult warm_res = warm.run(grid);
    EXPECT_TRUE(warm_res.stats.warm_started) << "seed " << seed;
    EXPECT_LE(warm_res.best_cost, cold_res.best_cost) << "seed " << seed;
  }
  std::remove(path.c_str());
}

TEST(ExperienceServe, ExactHitsSurviveServiceRestart) {
  const std::string path = temp_path("serve_restart.oarexp");
  auto selector = std::make_shared<rl::SteinerSelector>(tiny_config());
  auto grid = std::make_shared<const HananGrid>(small_grid());

  serve::RouterServiceConfig cfg;
  cfg.max_batch = 1;
  cfg.batch_wait_ms = 0.0;
  cfg.worker_threads = 1;
  cfg.experience_path = path;
  cfg.experience_flush_batch = 1;

  route::OarmstResult first;
  {
    serve::RouterService service(selector, cfg);
    serve::RouteReply miss = service.route(grid);
    EXPECT_FALSE(miss.cache_hit);
    EXPECT_EQ(miss.hit_tier, HitTier::kMiss);
    ASSERT_TRUE(miss.result.connected);
    first = std::move(miss.result);

    serve::RouteReply hit = service.route(grid);
    EXPECT_TRUE(hit.cache_hit);
    EXPECT_EQ(hit.hit_tier, HitTier::kMemory);
  }  // service torn down — the "deploy"

  serve::RouterService reborn(selector, cfg);
  serve::RouteReply hit = reborn.route(grid);
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(hit.hit_tier, HitTier::kDisk);
  EXPECT_TRUE(hit.result.connected);
  EXPECT_EQ(hit.result.cost, first.cost);
  EXPECT_EQ(hit.result.tree.edges().size(), first.tree.edges().size());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace oar::experience
