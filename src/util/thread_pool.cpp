#include "util/thread_pool.hpp"

#include <algorithm>

namespace oar::util {

namespace {
// Which pool (if any) the current thread belongs to.  Set once per worker
// at the top of worker_loop; gives current_thread_in_pool() a race-free
// answer without touching any shared structure.
thread_local const ThreadPool* t_current_pool = nullptr;
}  // namespace

bool ThreadPool::current_thread_in_pool() const {
  return t_current_pool == this;
}

std::size_t ThreadPool::resolve_thread_count(std::int64_t requested) {
  if (requested > 0) return std::size_t(requested);
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  t_current_pool = this;
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !jobs_.empty(); });
      if (stopping_ && jobs_.empty()) return;
      job = std::move(jobs_.front());
      jobs_.pop();
    }
    job();
  }
}

void ThreadPool::parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;

  // Reentrant call from one of our own workers: run inline (see header).
  // Enqueueing would park this worker on futures whose chunks may never be
  // scheduled — with every worker blocked the same way, the pool deadlocks.
  if (current_thread_in_pool()) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  // One contiguous index range per worker rather than one task per index:
  // a task has queue/future overhead that swamps small bodies, and the
  // ranges keep neighbouring indices on the same worker.
  const std::size_t chunks = std::min(count, size());
  const std::size_t base = count / chunks;
  const std::size_t extra = count % chunks;  // first `extra` chunks get +1

  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  std::size_t begin = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t end = begin + base + (c < extra ? 1 : 0);
    futures.push_back(submit([&fn, begin, end] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }));
    begin = end;
  }

  // Wait for every chunk even if one throws, so `fn` stays alive for the
  // still-running workers; then surface the first exception.
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace oar::util
