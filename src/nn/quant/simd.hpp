#pragma once

// Runtime CPU dispatch for the int8 inference kernels (DESIGN.md §17).
//
// The quantized U-Net forward reduces to two integer convolution
// primitives over channel-interleaved (NHWC, "voxel-major") uint8
// activations:
//
//   conv3_nhwc — 3x3x3, stride 1, symmetric zero padding ("same" size)
//   conv1_nhwc — 1x1x1 (residual projections and the logit head)
//
// Kernel contract (what makes every level bit-exact):
//   * Activations are uint8 in [0, 127] (quantization clamps to 7 bits).
//     Weights are int8 in [-128, 127].  A `_mm256_maddubs_epi16` pair sum
//     is therefore bounded by 2 * 127 * 128 = 32512 < 32767 — the u8*s8
//     multiply-add NEVER saturates, so the AVX2 path is exact integer
//     arithmetic, and int32 accumulation is associative.  Every level
//     (scalar reference, AVX2 maddubs, AVX-512VL VNNI dpbusd, NEON)
//     computes the same int32 accumulators bit for bit; all float
//     rounding (dequantize / GroupNorm / requantize) happens once, in
//     shared scalar code in quantize.cpp.
//   * The activation channel stride ICp is the channel count padded up to
//     a multiple of 4.  Weight packs zero the padding lanes, so padding
//     bytes may hold anything (0 * x == 0 exactly).
//   * Weight pack layout, conv3: w[((tap*G + g)*OC + oc)*4 + j] where
//     tap = (k0*3 + k1)*3 + k2, G = ICp/4, g = ic/4, j = ic%4.  conv1 is
//     the tap == 0 slice of the same layout.  The 4-byte (oc, g) groups
//     line up with one dpbusd lane / one maddubs+madd pair.
//   * Output accumulators are voxel-major: acc[voxel*OC + oc].
//
// Dispatch: dispatch() picks the best supported level once per process —
// NEON on aarch64, else AVX-512VL+VNNI, else AVX2, else scalar — and logs
// the choice.  OARSMTRL_FORCE_SCALAR=1 forces the scalar reference (the CI
// force-scalar lane); OARSMTRL_SIMD=scalar|avx2|vnni|neon requests a
// specific level and falls back to the best supported one if unavailable.
// kernels_for() exposes every supported level so the test battery can run
// each vector kernel against the scalar reference in one process.

#include <cstdint>

namespace oar::nn::simd {

enum class Level : std::int32_t {
  kScalar = 0,
  kAvx2 = 1,
  kAvx2Vnni = 2,  // 256-bit _mm256_dpbusd_epi32 (AVX-512VL + AVX-512VNNI)
  kNeon = 3,
};

struct Kernels {
  /// 3x3x3 "same" convolution over an NHWC uint8 volume (D0, D1, D2, ICp)
  /// into voxel-major int32 accumulators acc[(D0*D1*D2) * OC].
  void (*conv3_nhwc)(const std::uint8_t* act, std::int32_t D0, std::int32_t D1,
                     std::int32_t D2, std::int32_t ICp, const std::int8_t* wp,
                     std::int32_t OC, std::int32_t* acc);
  /// 1x1x1 convolution: S voxels of ICp channels -> acc[S * OC].
  void (*conv1_nhwc)(const std::uint8_t* act, std::int64_t S, std::int32_t ICp,
                     const std::int8_t* wp, std::int32_t OC, std::int32_t* acc);
};

/// Human-readable level name ("scalar", "avx2", "avx2+vnni", "neon").
const char* level_name(Level level);

/// Compile-time + runtime support check for `level` on this machine.
bool level_supported(Level level);

/// Kernel table for `level`, or nullptr when unsupported — the test
/// battery iterates all levels and compares each against kScalar.
const Kernels* kernels_for(Level level);

/// The level the process dispatched to (chosen once, env honored).
Level dispatch_level();

/// True when OARSMTRL_FORCE_SCALAR pinned the dispatcher to the scalar
/// reference (recorded in bench machine blocks).
bool force_scalar_active();

/// Kernel table of dispatch_level(); never null (scalar always exists).
const Kernels& dispatch();

/// Pure selection policy, exposed for unit tests: `force_scalar_env` /
/// `simd_env` are the raw OARSMTRL_FORCE_SCALAR / OARSMTRL_SIMD values
/// (nullptr when unset); the has_* flags describe the machine.  An
/// unsupported OARSMTRL_SIMD request falls back to the best level.
Level choose_level(const char* force_scalar_env, const char* simd_env,
                   bool has_avx2, bool has_vnni, bool has_neon);

}  // namespace oar::nn::simd
