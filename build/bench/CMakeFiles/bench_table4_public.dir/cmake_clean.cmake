file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_public.dir/bench_table4_public.cpp.o"
  "CMakeFiles/bench_table4_public.dir/bench_table4_public.cpp.o.d"
  "bench_table4_public"
  "bench_table4_public.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_public.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
