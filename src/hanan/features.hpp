#pragma once

// Input feature encoding of a Hanan-grid layout (paper Fig. 3).
//
// Every vertex gets 7 channels:
//   0: is a pin (previously selected Steiner points are passed in as extra
//      pins by the MCTS, matching the paper's "treated as normal pins")
//   1: is an obstacle
//   2: routing cost to the vertex immediately to the right (+x)
//   3: routing cost to the left (-x)
//   4: routing cost upstairs (+y)
//   5: routing cost downstairs (-y)
//   6: via cost
// The five cost channels are normalized by the maximum cost value of the
// layout so they lie in [0, 1]; a direction with no usable edge encodes 0.

#include <cstdint>
#include <vector>

#include "hanan/hanan_grid.hpp"

namespace oar::hanan {

inline constexpr std::int32_t kNumFeatureChannels = 7;

/// Dense C x H x V x M float volume, m fastest-varying:
/// data[((c*H + h)*V + v)*M + m].
struct FeatureVolume {
  std::int32_t c = 0, h = 0, v = 0, m = 0;
  std::vector<float> data;

  std::size_t offset(std::int32_t ci, std::int32_t hi, std::int32_t vi,
                     std::int32_t mi) const {
    return std::size_t(((std::int64_t(ci) * h + hi) * v + vi) * m + mi);
  }
  float at(std::int32_t ci, std::int32_t hi, std::int32_t vi, std::int32_t mi) const {
    return data[offset(ci, hi, vi, mi)];
  }
  float& at(std::int32_t ci, std::int32_t hi, std::int32_t vi, std::int32_t mi) {
    return data[offset(ci, hi, vi, mi)];
  }
};

/// Encode `grid` into the 7-channel feature volume.  `extra_pins` are
/// additional vertices (selected Steiner points) encoded as pins.
FeatureVolume encode_features(const HananGrid& grid,
                              const std::vector<Vertex>& extra_pins = {});

}  // namespace oar::hanan
