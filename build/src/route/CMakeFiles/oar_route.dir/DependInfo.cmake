
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/route/astar.cpp" "src/route/CMakeFiles/oar_route.dir/astar.cpp.o" "gcc" "src/route/CMakeFiles/oar_route.dir/astar.cpp.o.d"
  "/root/repo/src/route/maze.cpp" "src/route/CMakeFiles/oar_route.dir/maze.cpp.o" "gcc" "src/route/CMakeFiles/oar_route.dir/maze.cpp.o.d"
  "/root/repo/src/route/oarmst.cpp" "src/route/CMakeFiles/oar_route.dir/oarmst.cpp.o" "gcc" "src/route/CMakeFiles/oar_route.dir/oarmst.cpp.o.d"
  "/root/repo/src/route/route_tree.cpp" "src/route/CMakeFiles/oar_route.dir/route_tree.cpp.o" "gcc" "src/route/CMakeFiles/oar_route.dir/route_tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hanan/CMakeFiles/oar_hanan.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/oar_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/oar_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
