# Empty dependencies file for test_mcts_rl.
# This may be replaced when dependencies are built.
