// End-to-end integration: train briefly with combinatorial MCTS, route
// layouts with the full RL router (Fig. 2 flow), compare against baselines
// and check every structural invariant of the produced trees.

#include <gtest/gtest.h>

#include "core/oarsmtrl.hpp"

namespace oar {
namespace {

rl::SelectorConfig tiny_selector() {
  rl::SelectorConfig cfg;
  cfg.unet.base_channels = 4;
  cfg.unet.depth = 1;
  cfg.unet.seed = 303;
  return cfg;
}

TEST(Integration, TrainRouteValidate) {
  auto selector = std::make_shared<rl::SteinerSelector>(tiny_selector());

  rl::TrainConfig train;
  train.sizes = {{6, 6, 2}};
  train.layouts_per_size = 3;
  train.stages = 2;
  train.epochs_per_stage = 2;
  train.augment_count = 4;
  train.mcts.iterations_per_move = 16;
  train.curriculum_stages = 1;
  train.min_pins = 3;
  train.max_pins = 5;
  train.threads = 2;
  rl::CombTrainer trainer(*selector, train);
  const auto reports = trainer.train();
  ASSERT_EQ(reports.size(), 2u);

  core::RlRouter rl_router(selector);
  steiner::Lin08Router lin08;

  util::Rng rng(17);
  gen::RandomGridSpec spec;
  spec.h = 8;
  spec.v = 8;
  spec.m = 2;
  spec.min_pins = 4;
  spec.max_pins = 6;
  spec.min_obstacles = 4;
  spec.max_obstacles = 8;

  int routed = 0;
  for (int i = 0; i < 5; ++i) {
    const hanan::HananGrid grid = gen::random_grid(spec, rng);
    const auto ours = rl_router.route(grid);
    if (!ours.connected) continue;
    ++routed;
    EXPECT_EQ(ours.tree.validate(grid.pins()), "");
    EXPECT_GT(rl_router.last_timing().select_seconds, 0.0);
    EXPECT_GE(rl_router.last_timing().total_seconds,
              rl_router.last_timing().select_seconds);
    // Kept Steiner points are irredundant.
    for (auto s : ours.kept_steiner) EXPECT_GE(ours.tree.degree(s), 3);
    // The RL tree must never be drastically worse than the plain OARMST:
    // redundant-point removal guarantees it degenerates to Lin08's tree
    // when the selected points are useless.
    const auto base = lin08.route(grid);
    EXPECT_LE(ours.cost, base.cost * 1.25);
  }
  EXPECT_GE(routed, 4);
}

TEST(Integration, GeometricLayoutEndToEnd) {
  // Physical-coordinate flow: Layout -> Hanan grid -> route.
  geom::Layout layout(200, 200, 3, 4.0);
  layout.add_pin(10, 10, 0);
  layout.add_pin(180, 20, 1);
  layout.add_pin(40, 170, 2);
  layout.add_pin(150, 150, 0);
  layout.add_obstacle(geom::Rect(60, 60, 120, 120), 0);
  layout.add_obstacle(geom::Rect(90, 10, 110, 50), 1);
  ASSERT_EQ(layout.validate(), "");

  const hanan::HananGrid grid = hanan::HananGrid::from_layout(layout);
  ASSERT_EQ(grid.validate(), "");
  EXPECT_EQ(grid.m_dim(), 3);
  EXPECT_EQ(grid.pins().size(), 4u);

  steiner::Lin18Router router;
  const auto result = router.route(grid);
  ASSERT_TRUE(result.connected);
  EXPECT_EQ(result.tree.validate(grid.pins()), "");
  EXPECT_GT(result.cost, 0.0);
}

TEST(Integration, EvaluateStToMstRatioBelowOne) {
  auto selector = std::make_shared<rl::SteinerSelector>(tiny_selector());
  util::Rng rng(23);
  gen::RandomGridSpec spec;
  spec.h = 7;
  spec.v = 7;
  spec.m = 2;
  spec.min_pins = 5;
  spec.max_pins = 6;
  spec.min_obstacles = 3;
  spec.max_obstacles = 6;
  std::vector<hanan::HananGrid> grids;
  for (int i = 0; i < 6; ++i) grids.push_back(gen::random_grid(spec, rng));

  const auto stats = rl::evaluate_st_to_mst(*selector, grids);
  EXPECT_EQ(stats.count, 6);
  // Tree attachment + redundancy removal keep the ST at or below the MST
  // even for an untrained selector.
  EXPECT_LE(stats.mean_st_mst_ratio, 1.0 + 1e-9);
  EXPECT_DOUBLE_EQ(stats.mean_inferences, 1.0);

  rl::EvalOptions seq;
  seq.sequential = true;
  const auto seq_stats = rl::evaluate_st_to_mst(*selector, grids, seq);
  EXPECT_EQ(seq_stats.count, 6);
  EXPECT_GE(seq_stats.mean_inferences, 1.0);
}

TEST(Integration, PretrainedConfigIsLoadable) {
  // The bundled-checkpoint helper must always return a usable selector.
  const auto cfg = core::pretrained_selector_config();
  rl::SteinerSelector selector(cfg);
  EXPECT_GT(selector.net().num_parameters(), 0);
  EXPECT_FALSE(core::default_checkpoint_path().empty());
}

}  // namespace
}  // namespace oar
