file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mcts.dir/bench_ablation_mcts.cpp.o"
  "CMakeFiles/bench_ablation_mcts.dir/bench_ablation_mcts.cpp.o.d"
  "bench_ablation_mcts"
  "bench_ablation_mcts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mcts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
