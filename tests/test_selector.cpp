#include "rl/selector.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "gen/random_layout.hpp"

namespace oar::rl {
namespace {

SelectorConfig tiny_config() {
  SelectorConfig cfg;
  cfg.unet.in_channels = 7;
  cfg.unet.base_channels = 4;
  cfg.unet.depth = 1;
  cfg.unet.seed = 11;
  return cfg;
}

HananGrid small_grid() {
  util::Rng rng(4);
  gen::RandomGridSpec spec;
  spec.h = 6;
  spec.v = 6;
  spec.m = 2;
  spec.min_pins = 4;
  spec.max_pins = 4;
  spec.min_obstacles = 3;
  spec.max_obstacles = 3;
  return gen::random_grid(spec, rng);
}

TEST(Selector, EncodeShape) {
  const HananGrid grid = small_grid();
  const nn::Tensor input = SteinerSelector::encode(grid);
  EXPECT_EQ(input.shape(),
            (std::vector<std::int32_t>{7, grid.h_dim(), grid.v_dim(), grid.m_dim()}));
}

TEST(Selector, FspSizeAndRange) {
  SteinerSelector selector(tiny_config());
  const HananGrid grid = small_grid();
  const auto fsp = selector.infer_fsp(grid);
  EXPECT_EQ(std::int64_t(fsp.size()), grid.num_vertices());
  for (double p : fsp) {
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 1.0);
  }
}

TEST(Selector, ExtraPinsChangeInference) {
  SteinerSelector selector(tiny_config());
  const HananGrid grid = small_grid();
  const auto base = selector.infer_fsp(grid);
  // Find a valid vertex for the extra pin.
  Vertex extra = hanan::kInvalidVertex;
  for (Vertex v = 0; v < grid.num_vertices(); ++v) {
    if (!grid.is_pin(v) && !grid.is_blocked(v)) {
      extra = v;
      break;
    }
  }
  ASSERT_NE(extra, hanan::kInvalidVertex);
  const auto with_extra = selector.infer_fsp(grid, {extra});
  double diff = 0.0;
  for (std::size_t i = 0; i < base.size(); ++i) diff += std::abs(base[i] - with_extra[i]);
  EXPECT_GT(diff, 1e-9);
}

TEST(Selector, TopKExcludesPinsObstaclesAndExtras) {
  SteinerSelector selector(tiny_config());
  const HananGrid grid = small_grid();
  Vertex extra = hanan::kInvalidVertex;
  for (Vertex v = 0; v < grid.num_vertices(); ++v) {
    if (!grid.is_pin(v) && !grid.is_blocked(v)) {
      extra = v;
      break;
    }
  }
  const auto selected = selector.select_steiner_points(grid, 5, {extra});
  EXPECT_LE(selected.size(), 5u);
  for (Vertex v : selected) {
    EXPECT_FALSE(grid.is_pin(v));
    EXPECT_FALSE(grid.is_blocked(v));
    EXPECT_NE(v, extra);
  }
}

TEST(Selector, TopKZeroOrNegativeIsEmpty) {
  SteinerSelector selector(tiny_config());
  const HananGrid grid = small_grid();
  EXPECT_TRUE(selector.select_steiner_points(grid, 0).empty());
  EXPECT_TRUE(selector.select_steiner_points(grid, -3).empty());
}

TEST(Selector, TopKReturnsHighestProbabilityVertices) {
  SteinerSelector selector(tiny_config());
  const HananGrid grid = small_grid();
  const auto fsp = selector.infer_fsp(grid);
  const auto top2 = SteinerSelector::top_k_valid(grid, fsp, 2, {});
  ASSERT_EQ(top2.size(), 2u);
  const double p0 = fsp[std::size_t(grid.priority_of(top2[0]))];
  const double p1 = fsp[std::size_t(grid.priority_of(top2[1]))];
  EXPECT_GE(p0, p1);
  // No valid vertex beats the first pick.
  for (Vertex v = 0; v < grid.num_vertices(); ++v) {
    if (grid.is_pin(v) || grid.is_blocked(v)) continue;
    EXPECT_LE(fsp[std::size_t(grid.priority_of(v))], p0 + 1e-12);
  }
}

TEST(Selector, SaveLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/selector_ckpt.bin";
  SteinerSelector a(tiny_config());
  ASSERT_TRUE(a.save(path));
  SelectorConfig other = tiny_config();
  other.unet.seed = 555;
  SteinerSelector b(other);
  ASSERT_TRUE(b.load(path));
  const HananGrid grid = small_grid();
  const auto fa = a.infer_fsp(grid);
  const auto fb = b.infer_fsp(grid);
  for (std::size_t i = 0; i < fa.size(); ++i) EXPECT_DOUBLE_EQ(fa[i], fb[i]);
  std::remove(path.c_str());
}

TEST(Selector, ArbitrarySizeInference) {
  SteinerSelector selector(tiny_config());
  for (auto [h, v, m] : {std::tuple{4, 9, 1}, std::tuple{13, 5, 3}, std::tuple{8, 8, 6}}) {
    HananGrid grid(h, v, m, std::vector<double>(std::size_t(h - 1), 1.0),
                   std::vector<double>(std::size_t(v - 1), 1.0), 2.0);
    grid.add_pin(grid.index(0, 0, 0));
    grid.add_pin(grid.index(h - 1, v - 1, m - 1));
    const auto fsp = selector.infer_fsp(grid);
    EXPECT_EQ(std::int64_t(fsp.size()), grid.num_vertices());
  }
}

}  // namespace
}  // namespace oar::rl
