#include "chip/congestion.hpp"

#include <gtest/gtest.h>

namespace oar::chip {
namespace {

HananGrid open_grid(std::int32_t h, std::int32_t v, std::int32_t m) {
  return HananGrid(h, v, m, std::vector<double>(std::size_t(h - 1), 1.0),
                   std::vector<double>(std::size_t(v - 1), 1.0), 1.5);
}

TEST(Congestion, EdgeSlotAndDirCoverAllAxes) {
  const auto grid = open_grid(3, 3, 2);
  const Vertex o = grid.index(1, 1, 0);
  EXPECT_EQ(edge_dir(grid, o, grid.index(2, 1, 0)), Dir::kPosX);
  EXPECT_EQ(edge_dir(grid, o, grid.index(1, 2, 0)), Dir::kPosY);
  EXPECT_EQ(edge_dir(grid, o, grid.index(1, 1, 1)), Dir::kPosZ);
  // Argument order is irrelevant; the slot belongs to the min vertex.
  EXPECT_EQ(edge_slot(grid, grid.index(2, 1, 0), o),
            edge_slot(grid, o, grid.index(2, 1, 0)));
  EXPECT_EQ(edge_slot(grid, o, grid.index(2, 1, 0)),
            std::size_t(o) * 3 + std::size_t(Dir::kPosX));
}

TEST(Congestion, EdgeDirHandlesDegenerateDims) {
  // h = 1: the h-stride collides with the v-stride; cell comparison must
  // still classify the edge as a y edge.
  const auto grid = HananGrid(1, 4, 2, {}, std::vector<double>(3, 1.0), 2.0);
  EXPECT_EQ(edge_dir(grid, grid.index(0, 0, 0), grid.index(0, 1, 0)),
            Dir::kPosY);
  EXPECT_EQ(edge_dir(grid, grid.index(0, 3, 0), grid.index(0, 3, 1)),
            Dir::kPosZ);
}

TEST(Congestion, CommitRipUpRoundTripsToExactlyZero) {
  const auto grid = open_grid(4, 4, 2);
  route::RouteTree tree(&grid);
  tree.add_path({grid.index(0, 0, 0), grid.index(1, 0, 0), grid.index(2, 0, 0),
                 grid.index(2, 1, 0), grid.index(2, 1, 1)});

  CongestionMap congestion(grid);
  EXPECT_EQ(congestion.total_usage(), 0);
  congestion.commit(tree);
  EXPECT_EQ(congestion.total_usage(), std::int64_t(tree.num_edges()));
  EXPECT_EQ(congestion.usage(grid.index(0, 0, 0), Dir::kPosX), 1);
  EXPECT_EQ(congestion.usage(grid.index(2, 1, 0), Dir::kPosZ), 1);
  EXPECT_EQ(congestion.overflow(), 0);
  EXPECT_TRUE(congestion.matches({&tree}));

  congestion.rip_up(tree);
  EXPECT_EQ(congestion.total_usage(), 0);
  EXPECT_TRUE(congestion.matches({}));
  for (Vertex v = 0; v < grid.num_vertices(); ++v) {
    EXPECT_EQ(congestion.usage(v, Dir::kPosX), 0);
    EXPECT_EQ(congestion.usage(v, Dir::kPosY), 0);
    EXPECT_EQ(congestion.usage(v, Dir::kPosZ), 0);
  }
}

TEST(Congestion, OverflowCountsSharedEdges) {
  const auto grid = open_grid(4, 1, 1);
  route::RouteTree a(&grid), b(&grid);
  a.add_path({grid.index(0, 0, 0), grid.index(1, 0, 0), grid.index(2, 0, 0)});
  b.add_path({grid.index(1, 0, 0), grid.index(2, 0, 0), grid.index(3, 0, 0)});

  CongestionMap congestion(grid, 1);
  congestion.commit(a);
  EXPECT_EQ(congestion.overflow(), 0);
  EXPECT_FALSE(congestion.tree_overflows(a));

  congestion.commit(b);  // edge (1,0,0)-(2,0,0) now carries both nets
  EXPECT_EQ(congestion.overflow(), 1);
  EXPECT_EQ(congestion.overflowed_edges(), 1);
  EXPECT_TRUE(congestion.tree_overflows(a));
  EXPECT_TRUE(congestion.tree_overflows(b));
  EXPECT_TRUE(congestion.matches({&a, &b}));
  EXPECT_FALSE(congestion.matches({&a}));

  // Capacity 2 absorbs the sharing.
  CongestionMap wide(grid, 2);
  wide.commit(a);
  wide.commit(b);
  EXPECT_EQ(wide.overflow(), 0);
}

TEST(Congestion, HistoryIsMonotoneAndOnlyOnOverflowedEdges) {
  const auto grid = open_grid(3, 1, 1);
  route::RouteTree a(&grid), b(&grid);
  a.add_path({grid.index(0, 0, 0), grid.index(1, 0, 0)});
  b.add_path({grid.index(0, 0, 0), grid.index(1, 0, 0), grid.index(2, 0, 0)});

  CongestionMap congestion(grid, 1);
  congestion.commit(a);
  congestion.commit(b);
  congestion.add_history(0.5);
  EXPECT_DOUBLE_EQ(congestion.history(grid.index(0, 0, 0), Dir::kPosX), 0.5);
  EXPECT_DOUBLE_EQ(congestion.history(grid.index(1, 0, 0), Dir::kPosX), 0.0);

  // History persists across rip-ups and only ever grows.
  congestion.rip_up(a);
  congestion.add_history(0.25);  // edge no longer over capacity: no growth
  EXPECT_DOUBLE_EQ(congestion.history(grid.index(0, 0, 0), Dir::kPosX), 0.5);
  congestion.commit(a);
  congestion.add_history(0.25);
  EXPECT_DOUBLE_EQ(congestion.history(grid.index(0, 0, 0), Dir::kPosX), 0.75);
}

TEST(Congestion, ApplyToWritesBiasAndBumpsRevisionOnce) {
  auto grid = open_grid(3, 1, 1);
  route::RouteTree a(&grid);
  a.add_path({grid.index(0, 0, 0), grid.index(1, 0, 0)});

  CongestionMap congestion(grid, 1);
  const auto rev0 = grid.revision();
  // Nothing committed, no history: the overlay stays empty and the
  // revision untouched.
  EXPECT_FALSE(congestion.apply_to(grid, 0.5));
  EXPECT_EQ(grid.revision(), rev0);
  EXPECT_FALSE(grid.has_edge_cost_bias());

  congestion.commit(a);
  EXPECT_TRUE(congestion.apply_to(grid, 0.5));
  EXPECT_GT(grid.revision(), rev0);
  EXPECT_TRUE(grid.has_edge_cost_bias());
  // usage 1, capacity 1: the next net would overflow by 1, so
  // bias = base * present_factor = 1.0 * 0.5.
  EXPECT_DOUBLE_EQ(grid.edge_cost_bias(grid.index(0, 0, 0), Dir::kPosX), 0.5);
  EXPECT_DOUBLE_EQ(grid.edge_cost_bias(grid.index(1, 0, 0), Dir::kPosX), 0.0);
  EXPECT_DOUBLE_EQ(
      grid.cost_between(grid.index(0, 0, 0), grid.index(1, 0, 0)), 1.5);
  EXPECT_DOUBLE_EQ(
      grid.base_cost_between(grid.index(0, 0, 0), grid.index(1, 0, 0)), 1.0);

  // Re-applying the identical overlay must NOT bump the revision (cache
  // coherence: unchanged costs keep the maze adjacency cache valid).
  const auto rev1 = grid.revision();
  EXPECT_FALSE(congestion.apply_to(grid, 0.5));
  EXPECT_EQ(grid.revision(), rev1);

  // A different present factor is a different overlay.
  EXPECT_TRUE(congestion.apply_to(grid, 1.0));
  EXPECT_GT(grid.revision(), rev1);

  // Ripping the tree back out clears the overlay.
  congestion.rip_up(a);
  EXPECT_TRUE(congestion.apply_to(grid, 1.0));
  EXPECT_FALSE(grid.has_edge_cost_bias());
}

TEST(Congestion, HistoryAloneBiasesEvenWhenUncongested) {
  auto grid = open_grid(3, 1, 1);
  route::RouteTree a(&grid), b(&grid);
  a.add_path({grid.index(0, 0, 0), grid.index(1, 0, 0)});
  b.add_path({grid.index(0, 0, 0), grid.index(1, 0, 0)});

  CongestionMap congestion(grid, 1);
  congestion.commit(a);
  congestion.commit(b);
  congestion.add_history(2.0);
  congestion.rip_up(a);
  congestion.rip_up(b);

  // Present usage is zero but the history term keeps the chronically
  // contested edge expensive: bias = base * history = 1.0 * 2.0.
  EXPECT_TRUE(congestion.apply_to(grid, 0.5));
  EXPECT_DOUBLE_EQ(grid.edge_cost_bias(grid.index(0, 0, 0), Dir::kPosX), 2.0);
}

}  // namespace
}  // namespace oar::chip
