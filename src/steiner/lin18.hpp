#pragma once

// Lin'18-class baseline [14]: the strongest previous algorithmic
// ML-OARSMT router and the paper's main comparison point (Tables 2-4).
// Our stand-in is an iterated 1-Steiner search over maze distances: each
// round generates corner/midpoint candidates around the current tree,
// evaluates the most promising ones exactly by rebuilding the OARMST with
// the candidate added, inserts the best improving candidate, and repeats
// until no candidate improves the cost (or the n-2 Steiner-point budget is
// reached).  A final retracing pass re-runs the construction from the kept
// Steiner set.  Like [14], runtime grows superlinearly with layout size and
// pin count, which is what produces the runtime-shape of Table 3.

#include "steiner/router_base.hpp"

namespace oar::steiner {

struct Lin18Config {
  int max_evaluations_per_round = 32;
  int neighbors_per_terminal = 4;
  /// Upper bound on rounds; n-2 is also enforced.
  int max_rounds = 64;
  /// Minimum relative improvement to accept a candidate.
  double min_gain = 1e-9;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

class Lin18Router : public Router {
 public:
  explicit Lin18Router(Lin18Config config = {}) : config_(config) {
    config_.validate();
  }

  std::string name() const override { return "lin18"; }
  route::OarmstResult route(const HananGrid& grid) override;

 private:
  Lin18Config config_;
};

}  // namespace oar::steiner
