#include "route/maze.hpp"

#include <algorithm>
#include <cassert>
#include <queue>

namespace oar::route {

MazeRouter::MazeRouter(const HananGrid& grid) : grid_(grid) {
  const auto n = std::size_t(grid.num_vertices());
  dist_.assign(n, kInf);
  parent_.assign(n, hanan::kInvalidVertex);
  epoch_.assign(n, 0);
  settled_.assign(n, 0);
}

Vertex MazeRouter::run(const std::vector<Vertex>& sources,
                       const std::vector<Vertex>& targets) {
  ++current_epoch_;
  if (current_epoch_ == 0) {  // stamp wrap-around: hard reset
    std::fill(epoch_.begin(), epoch_.end(), 0u);
    std::fill(settled_.begin(), settled_.end(), 0u);
    current_epoch_ = 1;
  }

  using Entry = std::pair<double, Vertex>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;

  for (Vertex s : sources) {
    assert(s >= 0 && s < grid_.num_vertices());
    if (grid_.is_blocked(s)) continue;
    if (stamped(s) && dist_[std::size_t(s)] <= 0.0) continue;
    dist_[std::size_t(s)] = 0.0;
    parent_[std::size_t(s)] = s;  // parent(source) == itself terminates path walks
    epoch_[std::size_t(s)] = current_epoch_;
    heap.emplace(0.0, s);
  }

  // Mark targets for O(1) membership checks using the settled_ array of a
  // dedicated sentinel is not possible; use a small local bitmapless scheme:
  // targets lists are short (one nearest-terminal query), linear scan is fine
  // only for tiny lists, so build a sorted copy for binary search.
  std::vector<Vertex> sorted_targets(targets);
  std::sort(sorted_targets.begin(), sorted_targets.end());
  auto is_target = [&](Vertex v) {
    return std::binary_search(sorted_targets.begin(), sorted_targets.end(), v);
  };

  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (!stamped(u) || d > dist_[std::size_t(u)]) continue;  // stale entry
    if (settled_[std::size_t(u)] == current_epoch_) continue;
    settled_[std::size_t(u)] = current_epoch_;
    if (!sorted_targets.empty() && is_target(u)) return u;

    grid_.for_each_neighbor(u, [&](Vertex nb, double w) {
      const double nd = d + w;
      if (!stamped(nb) || nd < dist_[std::size_t(nb)]) {
        dist_[std::size_t(nb)] = nd;
        parent_[std::size_t(nb)] = u;
        epoch_[std::size_t(nb)] = current_epoch_;
        heap.emplace(nd, nb);
      }
    });
  }
  return hanan::kInvalidVertex;
}

double MazeRouter::dist(Vertex v) const {
  return stamped(v) ? dist_[std::size_t(v)] : kInf;
}

bool MazeRouter::reached(Vertex v) const {
  return stamped(v) && settled_[std::size_t(v)] == current_epoch_;
}

std::vector<Vertex> MazeRouter::path_to(Vertex v) const {
  assert(stamped(v));
  std::vector<Vertex> path;
  Vertex cur = v;
  while (true) {
    path.push_back(cur);
    const Vertex p = parent_[std::size_t(cur)];
    assert(p != hanan::kInvalidVertex);
    if (p == cur) break;  // reached a source
    cur = p;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace oar::route
