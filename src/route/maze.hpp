#pragma once

// Obstacle-aware maze router: multi-source Dijkstra over a HananGrid.
//
// The router keeps per-vertex scratch arrays alive between calls and uses
// epoch stamping so that repeated searches (Prim's loop runs one per
// terminal) cost O(visited) instead of O(grid) to reset.
//
// Two usage styles:
//   * one-shot: run(sources, targets) — a fresh search per call, as before.
//   * incremental: begin(sources) once, then alternate continue_run(targets)
//     and add_sources(...).  The Dijkstra frontier (heap + stamped distance
//     map) survives across continuations, so Prim's tree growth re-relaxes
//     only the region improved by the newly attached vertices instead of
//     re-flooding the whole grid every iteration.  See DESIGN.md §10 for
//     the invariant that makes this sound: sources are only ever *added*
//     within an epoch, so stamped distances only decrease and every settled
//     distance stays exact for the current source set.
//
// Parent ties are broken canonically (smallest predecessor vertex id among
// all neighbors achieving the final distance), which makes the extracted
// paths independent of relaxation order — incremental and from-scratch
// searches return bitwise-identical paths, not merely equal-cost ones.

#include <cstdint>
#include <limits>
#include <vector>

#include "hanan/hanan_grid.hpp"

namespace oar::route {

using hanan::HananGrid;
using hanan::Vertex;

class MazeRouter {
 public:
  /// An unbound router; bind() (or RouterScratch) must attach a grid before
  /// any search.  Allows pooled reuse across grids of different sizes.
  MazeRouter() = default;

  explicit MazeRouter(const HananGrid& grid);

  /// (Re)binds the router to `grid`, growing the scratch arrays if needed.
  /// Stamps from searches on a previously bound grid are invalidated by the
  /// next begin()/run(); dist()/path_to() results are only meaningful after
  /// a search on the *current* binding.
  ///
  /// Binding also caches the grid's adjacency as flat CSR arrays (the hot
  /// relaxation loop then scans contiguous memory instead of re-deriving
  /// cell coordinates and edge-usability per neighbor).  The cache is keyed
  /// on (grid address, HananGrid::revision()): re-binding the same unchanged
  /// grid — the steady state of the MCTS critic loop — is O(1), while any
  /// topology mutation or a different grid rebuilds it.
  void bind(const HananGrid& grid);

  const HananGrid* grid() const { return grid_; }

  /// Run Dijkstra from `sources` (all at distance 0).  If `targets` is
  /// non-empty the search stops as soon as the cheapest target is settled
  /// and returns it; otherwise the search exhausts the reachable region and
  /// returns kInvalidVertex.  Sources on blocked vertices are ignored.
  /// Equivalent to begin(sources) followed by continue_run(targets).
  Vertex run(const std::vector<Vertex>& sources,
             const std::vector<Vertex>& targets = {});

  /// Starts a new search epoch: clears the frontier and seeds `sources` at
  /// distance 0.  Invalidates all stamps of the previous epoch in O(1).
  void begin(const std::vector<Vertex>& sources);

  /// Adds `sources` as zero-distance seeds to the *current* epoch's
  /// frontier.  Already-seeded and blocked vertices are skipped; settled
  /// vertices whose distance improves are re-opened for relaxation.
  void add_sources(const std::vector<Vertex>& sources);
  void add_source(Vertex v);

  /// Continues the current epoch's search until the cheapest vertex of
  /// `targets` is settled and returns it (kInvalidVertex when no target is
  /// reachable; exhausts the frontier when `targets` is empty).  Targets
  /// already settled by an earlier continuation are re-discovered at their
  /// stamped distance.  Target membership is tracked with an epoch-stamped
  /// mark array — no per-call sort or allocation.
  Vertex continue_run(const std::vector<Vertex>& targets);

  /// Distance of `v` from the nearest source in the current epoch; +inf
  /// when unreached.
  double dist(Vertex v) const;

  /// True when `v` was settled (finalized) in the current epoch.
  bool reached(Vertex v) const;

  /// Path from a source to `v` (inclusive), following parents of the
  /// current epoch.  Throws std::logic_error when `v` was never reached —
  /// stale parents from an earlier epoch could otherwise cycle forever in
  /// release builds where asserts are compiled out.
  std::vector<Vertex> path_to(Vertex v) const;
  void path_to(Vertex v, std::vector<Vertex>& out) const;

  /// Test hook: forces the epoch counter so the wrap-around reset branch in
  /// begin() can be exercised without 2^32 searches.
  void debug_set_epoch(std::uint32_t epoch) { current_epoch_ = epoch; }

  static constexpr double kInf = std::numeric_limits<double>::infinity();

 private:
  /// Per-vertex search state, packed so one relaxation touches one cache
  /// line instead of four parallel arrays (the Dijkstra loop is memory-
  /// latency-bound; this layout is worth ~25% on full floods).
  struct State {
    double dist;
    Vertex parent;
    std::uint32_t epoch;    // dist/parent validity stamp
    std::uint32_t settled;  // settled stamp
    std::uint32_t target;   // target-mark stamp (per continue_run)
  };

  const HananGrid* grid_ = nullptr;
  std::vector<State> state_;
  std::uint32_t current_epoch_ = 0;     // 0 = no search yet
  std::uint32_t target_stamp_ = 0;

  // CSR adjacency cache of the bound grid (see bind()).
  std::vector<std::int32_t> adj_offset_;  // size n+1
  std::vector<Vertex> adj_vertex_;
  std::vector<double> adj_cost_;
  std::uint64_t bound_revision_ = 0;      // 0 = no adjacency cached

  using Entry = std::pair<double, Vertex>;  // (distance, vertex) min-heap
  std::vector<Entry> heap_;

  // Heap pushes since the last flush into the obs registry.  The hot loop
  // bumps this plain member; one relaxed atomic add per continue_run()
  // publishes it (DESIGN.md §12), keeping instrumentation off the
  // relaxation path.
  std::uint64_t heap_pushes_pending_ = 0;

  bool stamped(Vertex v) const {
    return current_epoch_ != 0 && state_[std::size_t(v)].epoch == current_epoch_;
  }
  void push_entry(double d, Vertex v);
  Entry pop_entry();
  void sift_down(std::size_t i);
  void compact_heap();
};

}  // namespace oar::route
