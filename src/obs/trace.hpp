#pragma once

// Scoped timing + optional ring-buffer tracing (DESIGN.md §12).
//
// ScopedTimer is the one-liner for feeding a latency Histogram:
//
//   obs::ScopedTimer timer(request_latency_hist);   // observes on scope exit
//
// TraceSpan does the same and additionally records a (name, tid, start,
// duration) event into the global TraceRing when tracing is on.  The ring
// is a fixed-capacity lock-free buffer (monotone atomic write index, slot =
// index % capacity) that keeps the most recent events; it is disabled
// (capacity 0) by default so spans cost exactly one Timer read when unused.
// dump_chrome_json() emits the retained events in the chrome://tracing /
// Perfetto "traceEvents" array format.
//
// Span names must be string literals (or otherwise outlive the ring): the
// ring stores the pointer, never a copy — recording must not allocate.
//
// Under OARSMTRL_NO_METRICS both classes compile to empty shells and the
// ring never records.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

#ifndef OARSMTRL_NO_METRICS
#include <atomic>
#include <chrono>
#include <mutex>
#endif

namespace oar::obs {

struct TraceEvent {
  const char* name = nullptr;
  std::uint32_t tid = 0;
  std::int64_t start_ns = 0;  // since process trace epoch
  std::int64_t dur_ns = 0;
};

#ifndef OARSMTRL_NO_METRICS

class TraceRing {
 public:
  static TraceRing& instance();

  /// Sets the retained-event capacity; 0 disables tracing (default).
  /// Resizing discards previously retained events.  Not safe to call
  /// concurrently with recording spans.
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const { return slots_.size(); }

  bool recording() const {
    return !slots_.empty() && enabled();
  }

  void record(const char* name, std::int64_t start_ns, std::int64_t dur_ns);

  /// The retained events, oldest first.  Racing writers may tear the very
  /// newest slots; the dump is a diagnostic view, not a synchronized one.
  std::vector<TraceEvent> events() const;

  /// chrome://tracing JSON: {"traceEvents":[{"ph":"X",...}]}.
  std::string dump_chrome_json() const;

  /// Nanoseconds since the process trace epoch (first use).
  static std::int64_t now_ns();

 private:
  TraceRing() = default;

  std::vector<TraceEvent> slots_;
  std::atomic<std::uint64_t> next_{0};  // total records ever; slot = next_ % size
};

/// RAII: observes elapsed seconds into `hist` on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& hist)
      : hist_(&hist), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() { hist_->observe(seconds()); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

/// RAII: feeds `hist` (when non-null) and the global TraceRing (when
/// tracing is on).  `name` must outlive the ring (use a literal).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, Histogram* hist = nullptr)
      : name_(name), hist_(hist), start_ns_(TraceRing::now_ns()) {}

  ~TraceSpan() {
    const std::int64_t dur = TraceRing::now_ns() - start_ns_;
    if (hist_ != nullptr) hist_->observe(double(dur) * 1e-9);
    TraceRing& ring = TraceRing::instance();
    if (ring.recording()) ring.record(name_, start_ns_, dur);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  Histogram* hist_;
  std::int64_t start_ns_;
};

#else  // OARSMTRL_NO_METRICS

class TraceRing {
 public:
  static TraceRing& instance() {
    static TraceRing ring;
    return ring;
  }
  void set_capacity(std::size_t) {}
  std::size_t capacity() const { return 0; }
  bool recording() const { return false; }
  void record(const char*, std::int64_t, std::int64_t) {}
  std::vector<TraceEvent> events() const { return {}; }
  std::string dump_chrome_json() const { return "{\"traceEvents\":[]}\n"; }
  static std::int64_t now_ns() { return 0; }
};

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram&) {}
  double seconds() const { return 0.0; }
};

class TraceSpan {
 public:
  explicit TraceSpan(const char*, Histogram* = nullptr) {}
};

#endif  // OARSMTRL_NO_METRICS

}  // namespace oar::obs
