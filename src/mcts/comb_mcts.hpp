#pragma once

// Combinatorial Monte-Carlo tree search (paper Sec. 3.4-3.5) — the core
// contribution: an MCTS over *combinations* of Steiner points.
//
// Compared to conventional MCTS:
//  * actions are ordered by the lexicographic (h, v, m) selection priority,
//    so every tree node corresponds to a unique Steiner-point combination
//    (no permutation duplicates) and the search space is compacted;
//  * the training label is collected once per search tree — the label of
//    vertex v is L_fsp(v) = n_sel(v) / n_opp(v) (eq. (3)) accumulated over
//    every UCT selection step of the whole search, teaching the selector
//    the probability of v belonging to the *final* combination.
//
// Terminal states (Sec. 3.4): (1) n-2 Steiner points placed, (2) the last
// action increased the routing cost, (3) cost flat for three consecutive
// actions.

#include <chrono>
#include <cstdint>
#include <optional>

#include "mcts/actor_critic.hpp"

namespace oar::experience {
class Store;
}

namespace oar::mcts {

/// Wall-clock basis for anytime search deadlines (matches serve::Clock).
using SearchClock = std::chrono::steady_clock;
using SearchDeadline = std::optional<SearchClock::time_point>;

struct CombMctsConfig {
  /// UCT iterations per executed root move (the paper's alpha; 2000 for a
  /// 16x16x4 layout, scaled proportionally to layout size by callers —
  /// see scaled_iterations()).
  std::int32_t iterations_per_move = 128;
  /// Exploration constant multiplying U(s, a) (eq. (2)).
  double c_puct = 1.0;
  /// false: curriculum mode — the value of a leaf is computed from the
  /// exact routing cost of its own state instead of the critic completion
  /// (paper Sec. 3.6, first four stages).
  bool use_critic = true;
  /// Terminal rule (2): stop below a node whose action increased the cost.
  bool stop_on_cost_increase = true;
  /// Terminal rule (3): consecutive flat-cost actions allowed.
  std::int32_t flat_cost_patience = 3;
  /// Relative tolerance for "cost stayed the same".
  double flat_eps = 1e-9;
  /// Keep only the top-k prior children at expansion (0 = all valid).
  /// Performance knob for larger training layouts.
  std::int32_t max_children = 0;
  /// Exploration floor: expansion priors are mixed with a uniform
  /// distribution, P' = (1-mix)*P + mix/K (the AlphaGo root-noise idea in
  /// deterministic form).  Without it, eq. (1)'s running product assigns
  /// practically zero prior to high-priority-index vertices under an
  /// untrained selector and UCT never explores them.
  double prior_uniform_mix = 0.15;

  // --- tree-parallel search (ParallelCombMcts, DESIGN.md §15) ---
  /// Concurrent tree workers sharing one search tree under virtual loss.
  /// 1 = serial semantics (ParallelCombMcts is then bitwise-identical to
  /// CombMcts); 0 = hardware concurrency.  Ignored by the serial CombMcts.
  std::int32_t search_workers = 1;
  /// Max same-shape leaf inferences the EvalServer fuses into one
  /// Module::forward_batch pass.
  std::int32_t eval_batch = 8;
  /// EvalServer straggler wait before flushing an undersized batch.
  std::int64_t flush_us = 200;

  // --- persistent-experience warm start (DESIGN.md §18) ---
  /// Seed the root from the experience store (exact or pin-subset/superset
  /// matches on the same canonical obstacle field).  Off by default; with
  /// warm_start == false — or no store attached, or no applicable
  /// experience — the search is bitwise identical to the cold search.
  bool warm_start = false;
  /// Blend weight λ of the experience prior into the root expansion
  /// priors: P' = (1-λ)·P_search + λ·P_exp.
  double warm_start_weight = 0.25;
  /// Synthetic visits seeded on the recorded first action of an exact
  /// match (Q initialized to the recorded combination's re-evaluated
  /// value).  0 disables visit seeding, leaving only the prior blend.
  std::int32_t warm_start_visits = 8;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

/// Paper: alpha = 2000 for 16x16x4, proportional to size for larger.
std::int32_t scaled_iterations(std::int32_t base_iterations,
                               const hanan::HananGrid& grid);

struct CombMctsStats {
  std::int64_t iterations = 0;
  std::int64_t expansions = 0;
  std::int64_t simulations = 0;   // critic/exact evaluations of leaves
  std::int64_t nodes = 0;
  std::int64_t executed_moves = 0;
  double seconds = 0.0;
  // Tree-parallel accounting (always 0 for the serial CombMcts).  The
  // applied/reverted pair must match after every episode — the virtual-loss
  // invariant ParallelCombMcts also self-checks between root moves.
  std::int64_t vloss_applied = 0;
  std::int64_t vloss_reverted = 0;
  /// Descents that reached a leaf another worker was already evaluating
  /// and waited for its result instead of duplicating the evaluation.
  std::int64_t eval_waits = 0;
  /// True when an anytime run stopped because its deadline expired (the
  /// result is still the valid best-so-far state — see
  /// CombMctsResult::best_selected).  Always false for unbounded runs.
  bool deadline_hit = false;
  /// Experience candidates blended into the root (0 == cold start).
  std::int32_t warm_matches = 0;
  /// True when warm-start data actually touched this search.
  bool warm_started = false;
};

struct CombMctsResult {
  /// L_fsp per vertex in priority order (size = grid.num_vertices()).
  std::vector<float> label;
  /// Mask: 1 where the vertex had at least one selection opportunity or is
  /// a valid empty location; 0 on pins/obstacles.  Used to weight the BCE.
  std::vector<float> label_mask;
  /// Steiner points actually executed by the search.
  std::vector<Vertex> selected;
  /// The combination achieving `best_cost` — the anytime answer.  Every
  /// entry was exact-evaluated during the search, so routing pins +
  /// best_selected through OarmstRouter always yields a valid tree (the
  /// critic-completion guarantee: the search never exposes a state it has
  /// not routed).  Equals `selected` when the executed path ends best.
  std::vector<Vertex> best_selected;
  double initial_cost = 0.0;  // rc_{s0}: cost with no Steiner points
  double final_cost = 0.0;    // exact cost of the executed terminal state
  double best_cost = 0.0;     // best exact cost over all evaluated states
  CombMctsStats stats;
};

class CombMcts {
 public:
  /// `experience` (optional, must outlive the search) feeds the
  /// warm-start lookup; it is only consulted when config.warm_start is on.
  CombMcts(rl::SteinerSelector& selector, CombMctsConfig config = {},
           const experience::Store* experience = nullptr);

  /// Builds one MC search tree on `grid` and returns the training label
  /// plus the executed combination (one sample per layout, Sec. 3.5).
  ///
  /// Anytime mode: with a `deadline`, the control loop checks the clock at
  /// iteration granularity and stops as soon as it has passed, setting
  /// stats.deadline_hit and leaving best_selected/best_cost at the best
  /// fully-evaluated state so far — never an invalid partial.  One UCT
  /// iteration is always run even when the deadline is already expired
  /// (the zero-slack fallback), and a run whose deadline never fires is
  /// bitwise identical to the unbounded run.
  CombMctsResult run(const HananGrid& grid,
                     const SearchDeadline& deadline = std::nullopt);

 private:
  rl::SteinerSelector& selector_;
  CombMctsConfig config_;
  const experience::Store* experience_;
};

}  // namespace oar::mcts
