// Checkpoint/resume battery: exact round-trip of weights + Adam moments +
// RNG stream, kill/resume equivalence of CombTrainer, and clean rejection
// of truncated or corrupted checkpoint files.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "nn/serialize.hpp"
#include "nn/unet3d.hpp"
#include "rl/trainer.hpp"

namespace oar::rl {
namespace {

SelectorConfig tiny_selector() {
  SelectorConfig cfg;
  cfg.unet.base_channels = 4;
  cfg.unet.depth = 1;
  cfg.unet.seed = 101;
  return cfg;
}

TrainConfig tiny_train() {
  TrainConfig cfg;
  cfg.sizes = {{6, 6, 2}};
  cfg.layouts_per_size = 2;
  cfg.stages = 3;
  cfg.epochs_per_stage = 1;
  cfg.batch_size = 8;
  cfg.augment_count = 4;
  cfg.mcts.iterations_per_move = 12;
  cfg.curriculum_stages = 1;
  cfg.min_pins = 3;
  cfg.max_pins = 4;
  cfg.threads = 2;
  cfg.fit_workers = 2;
  return cfg;
}

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::vector<float> flatten_weights(SteinerSelector& selector) {
  std::vector<float> out;
  for (auto* p : selector.net().parameters()) {
    for (std::int64_t i = 0; i < p->value.numel(); ++i) out.push_back(p->value[i]);
  }
  return out;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), std::streamsize(bytes.size()));
}

TEST(CheckpointTest, SerializeRoundTripIsExact) {
  nn::UNet3dConfig net_cfg;
  net_cfg.base_channels = 4;
  net_cfg.depth = 1;
  net_cfg.seed = 77;
  nn::UNet3d net(net_cfg);
  nn::Adam opt(net.parameters(), 1e-3);

  // Give every piece of state a non-default value: a few noisy optimizer
  // steps plus a partially consumed RNG stream (odd normal() count leaves
  // the Box-Muller spare loaded).
  util::Rng rng(5);
  for (int step = 0; step < 3; ++step) {
    for (auto* p : net.parameters()) {
      for (std::int64_t i = 0; i < p->grad.numel(); ++i) {
        p->grad[i] = float(rng.normal());
      }
    }
    opt.step();
  }
  (void)rng.normal();

  const std::string path = tmp_path("ckpt_exact.bin");
  ASSERT_TRUE(nn::save_training_checkpoint(path, net, opt, rng.state(), 7));

  nn::UNet3d net2(net_cfg);
  nn::Adam opt2(net2.parameters(), 1e-3);
  util::RngState restored_rng;
  std::int32_t stage = 0;
  ASSERT_TRUE(nn::load_training_checkpoint(path, net2, opt2, &restored_rng, &stage));

  EXPECT_EQ(stage, 7);
  EXPECT_EQ(restored_rng, rng.state());
  EXPECT_EQ(opt2.step_count(), opt.step_count());

  const auto params = net.parameters();
  const auto params2 = net2.parameters();
  ASSERT_EQ(params.size(), params2.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    for (std::int64_t j = 0; j < params[i]->value.numel(); ++j) {
      ASSERT_EQ(params[i]->value[j], params2[i]->value[j]);
    }
    for (std::int64_t j = 0; j < opt.moments1()[i].numel(); ++j) {
      ASSERT_EQ(opt.moments1()[i][j], opt2.moments1()[i][j]);
      ASSERT_EQ(opt.moments2()[i][j], opt2.moments2()[i][j]);
    }
  }
}

TEST(CheckpointTest, InterruptedRunResumesToSameFinalWeights) {
  const TrainConfig cfg = tiny_train();

  // Uninterrupted reference run: all three stages in one trainer.
  SteinerSelector uninterrupted(tiny_selector());
  CombTrainer reference(uninterrupted, cfg);
  reference.train();
  ASSERT_EQ(reference.stage_index(), cfg.stages);

  // Killed run: one stage, checkpoint, then the trainer goes away.
  const std::string path = tmp_path("ckpt_resume.bin");
  TrainConfig cfg_ck = cfg;
  cfg_ck.checkpoint_path = path;
  {
    SteinerSelector victim(tiny_selector());
    CombTrainer killed(victim, cfg_ck);
    killed.run_stage();
    ASSERT_TRUE(killed.save_checkpoint(path));
  }

  // Fresh process stand-in: new selector + trainer resume from disk.
  SteinerSelector resumed_selector(tiny_selector());
  CombTrainer resumed(resumed_selector, cfg_ck);
  ASSERT_TRUE(resumed.try_resume());
  EXPECT_EQ(resumed.stage_index(), 1);
  resumed.train();
  EXPECT_EQ(resumed.stage_index(), cfg.stages);

  const auto want = flatten_weights(uninterrupted);
  const auto got = flatten_weights(resumed_selector);
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_FLOAT_EQ(want[i], got[i]) << "weight " << i;
  }
}

TEST(CheckpointTest, TrainWritesCheckpointAfterEveryStage) {
  const std::string path = tmp_path("ckpt_auto.bin");
  std::remove(path.c_str());
  TrainConfig cfg = tiny_train();
  cfg.stages = 1;
  cfg.checkpoint_path = path;
  SteinerSelector selector(tiny_selector());
  CombTrainer trainer(selector, cfg);
  trainer.train();

  SteinerSelector loaded_selector(tiny_selector());
  CombTrainer loaded(loaded_selector, cfg);
  ASSERT_TRUE(loaded.load_checkpoint(path));
  EXPECT_EQ(loaded.stage_index(), 1);
}

TEST(CheckpointTest, TruncatedAndCorruptFilesAreRejectedCleanly) {
  const std::string path = tmp_path("ckpt_good.bin");
  SteinerSelector selector(tiny_selector());
  CombTrainer trainer(selector, tiny_train());
  trainer.run_stage();
  ASSERT_TRUE(trainer.save_checkpoint(path));
  const std::string good = read_file(path);
  ASSERT_GT(good.size(), 64u);

  SteinerSelector victim_selector(tiny_selector());
  CombTrainer victim(victim_selector, tiny_train());
  victim.run_stage();
  const auto before = flatten_weights(victim_selector);
  const auto check_untouched = [&]() {
    const auto after = flatten_weights(victim_selector);
    ASSERT_EQ(before.size(), after.size());
    for (std::size_t i = 0; i < before.size(); ++i) ASSERT_EQ(before[i], after[i]);
    ASSERT_EQ(victim.stage_index(), 1);
  };

  const std::string bad = tmp_path("ckpt_bad.bin");
  // Truncations: inside the header, mid-payload, and inside the checksum.
  for (const std::size_t keep :
       {std::size_t(3), good.size() / 2, good.size() - 1, good.size() - 9}) {
    write_file(bad, good.substr(0, keep));
    EXPECT_FALSE(victim.load_checkpoint(bad)) << "kept " << keep << " bytes";
    check_untouched();
  }

  // Bit flips: in the magic, in the payload, and in the checksum itself.
  for (const std::size_t pos : {std::size_t(0), good.size() / 2, good.size() - 2}) {
    std::string corrupt = good;
    corrupt[pos] = char(corrupt[pos] ^ 0x40);
    write_file(bad, corrupt);
    EXPECT_FALSE(victim.load_checkpoint(bad)) << "flipped byte " << pos;
    check_untouched();
  }

  // Garbage and missing files.
  write_file(bad, "not a checkpoint at all");
  EXPECT_FALSE(victim.load_checkpoint(bad));
  check_untouched();
  EXPECT_FALSE(victim.load_checkpoint(tmp_path("ckpt_never_written.bin")));
  check_untouched();

  // The unmodified file still loads after all the failed attempts.
  EXPECT_TRUE(victim.load_checkpoint(path));
}

TEST(CheckpointTest, ArchitectureMismatchIsRejected) {
  const std::string path = tmp_path("ckpt_arch.bin");
  SteinerSelector selector(tiny_selector());
  CombTrainer trainer(selector, tiny_train());
  ASSERT_TRUE(trainer.save_checkpoint(path));

  SelectorConfig wide = tiny_selector();
  wide.unet.base_channels = 8;
  SteinerSelector other(wide);
  CombTrainer other_trainer(other, tiny_train());
  EXPECT_FALSE(other_trainer.load_checkpoint(path));
}

}  // namespace
}  // namespace oar::rl
