#pragma once

// Fully connected layer over a flat vector, used by the PPO value head.

#include "nn/module.hpp"

namespace oar::nn {

class Linear : public Module {
 public:
  Linear(std::int32_t in_features, std::int32_t out_features, util::Rng& rng);

  Tensor forward(const Tensor& input) override;   // input: (in_features)
  Tensor backward(const Tensor& grad_output) override;
  void collect_parameters(std::vector<Parameter*>& out) override;

 private:
  std::int32_t in_features_, out_features_;
  Parameter weight_;  // (out, in)
  Parameter bias_;    // (out)
  Tensor input_;
};

/// Mean over all spatial positions per channel: (C, D0, D1, D2) -> (C).
/// Makes the value head size-agnostic, preserving the arbitrary-size
/// property for the PPO baseline as well.
class GlobalAvgPool3d : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

 private:
  std::vector<std::int32_t> in_shape_;
};

}  // namespace oar::nn
