#include "obs/metrics.hpp"

#include <stdexcept>
#include <thread>

namespace oar::obs {

#ifndef OARSMTRL_NO_METRICS

namespace detail {

std::atomic<bool> g_enabled{true};

std::size_t shard_index() {
  thread_local const std::size_t index = [] {
    const std::size_t h = std::hash<std::thread::id>{}(std::this_thread::get_id());
    // Avalanche the hash a little: libstdc++'s thread-id hash is close to
    // the raw pthread pointer, whose low bits barely vary.
    std::size_t x = h;
    x ^= x >> 17;
    x *= 0x9e3779b97f4a7c15ull;
    x ^= x >> 29;
    return x & (kShards - 1);
  }();
  return index;
}

}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i - 1] < bounds_[i])) {
      throw std::invalid_argument("Histogram bounds must be strictly ascending");
    }
  }
  for (auto& shard : shards_) {
    shard.buckets = std::vector<detail::PaddedU64>(bounds_.size() + 1);
  }
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    for (const auto& b : shard.buckets) {
      total += b.v.load(std::memory_order_relaxed);
    }
  }
  return total;
}

double Histogram::sum() const {
  double total = 0.0;
  for (const auto& shard : shards_) {
    total += shard.sum.v.load(std::memory_order_relaxed);
  }
  return total;
}

#endif  // !OARSMTRL_NO_METRICS

std::vector<double> latency_buckets() {
  std::vector<double> bounds;
  for (double b = 1e-6; b < 100.0; b *= 2.0) bounds.push_back(b);
  return bounds;
}

std::vector<double> pow2_buckets(int max_exponent) {
  std::vector<double> bounds;
  for (int e = 0; e <= max_exponent; ++e) {
    bounds.push_back(double(std::uint64_t(1) << e));
  }
  return bounds;
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.kind = Kind::kCounter;
    entry.help = help;
    entry.counter = std::make_unique<Counter>();
    it = entries_.emplace(name, std::move(entry)).first;
  } else if (it->second.kind != Kind::kCounter) {
    throw std::logic_error("metric '" + name + "' already registered with another kind");
  }
  return *it->second.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.kind = Kind::kGauge;
    entry.help = help;
    entry.gauge = std::make_unique<Gauge>();
    it = entries_.emplace(name, std::move(entry)).first;
  } else if (it->second.kind != Kind::kGauge) {
    throw std::logic_error("metric '" + name + "' already registered with another kind");
  }
  return *it->second.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds,
                                      const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.kind = Kind::kHistogram;
    entry.help = help;
#ifndef OARSMTRL_NO_METRICS
    entry.histogram.reset(new Histogram(std::move(bounds)));
#else
    (void)bounds;
    entry.histogram = std::make_unique<Histogram>();
#endif
    it = entries_.emplace(name, std::move(entry)).first;
  } else if (it->second.kind != Kind::kHistogram) {
    throw std::logic_error("metric '" + name + "' already registered with another kind");
  }
  return *it->second.histogram;
}

Snapshot MetricsRegistry::snapshot() const {
  Snapshot snap;
#ifndef OARSMTRL_NO_METRICS
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        snap.counters.push_back({name, entry.help, entry.counter->value()});
        break;
      case Kind::kGauge:
        snap.gauges.push_back({name, entry.help, entry.gauge->value()});
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        HistogramSample sample;
        sample.name = name;
        sample.help = entry.help;
        sample.bounds = h.bounds();
        sample.counts.assign(sample.bounds.size() + 1, 0);
        for (const auto& shard : h.shards_) {
          for (std::size_t b = 0; b < shard.buckets.size(); ++b) {
            sample.counts[b] += shard.buckets[b].v.load(std::memory_order_relaxed);
          }
        }
        for (std::uint64_t c : sample.counts) sample.count += c;
        sample.sum = h.sum();
        snap.histograms.push_back(std::move(sample));
        break;
      }
    }
  }
#endif
  return snap;
}

void MetricsRegistry::reset() {
#ifndef OARSMTRL_NO_METRICS
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, entry] : entries_) {
    (void)name;
    switch (entry.kind) {
      case Kind::kCounter:
        for (auto& s : entry.counter->shards_) {
          s.v.store(0, std::memory_order_relaxed);
        }
        break;
      case Kind::kGauge:
        entry.gauge->value_.store(0.0, std::memory_order_relaxed);
        break;
      case Kind::kHistogram:
        for (auto& shard : entry.histogram->shards_) {
          for (auto& b : shard.buckets) b.v.store(0, std::memory_order_relaxed);
          shard.sum.v.store(0.0, std::memory_order_relaxed);
        }
        break;
    }
  }
#endif
}

}  // namespace oar::obs
