#include "chip/ordering.hpp"

#include <algorithm>
#include <numeric>

namespace oar::chip {

namespace {

struct Bbox {
  std::int32_t min_h = 0, max_h = 0, min_v = 0, max_v = 0, min_m = 0, max_m = 0;
};

Bbox net_bbox(const HananGrid& grid, const Net& net) {
  Bbox b;
  bool first = true;
  for (Vertex p : net.pins) {
    const auto c = grid.cell(p);
    if (first) {
      b = Bbox{c.h, c.h, c.v, c.v, c.m, c.m};
      first = false;
    } else {
      b.min_h = std::min(b.min_h, c.h);
      b.max_h = std::max(b.max_h, c.h);
      b.min_v = std::min(b.min_v, c.v);
      b.max_v = std::max(b.max_v, c.v);
      b.min_m = std::min(b.min_m, c.m);
      b.max_m = std::max(b.max_m, c.m);
    }
  }
  return b;
}

double span_cost(const HananGrid& grid, std::int32_t lo, std::int32_t hi,
                 bool x_axis) {
  double total = 0.0;
  for (std::int32_t i = lo; i < hi; ++i) {
    total += x_axis ? grid.x_step(i) : grid.y_step(i);
  }
  return total;
}

}  // namespace

double net_hpwl(const HananGrid& grid, const Net& net) {
  if (net.pins.empty()) return 0.0;
  const Bbox b = net_bbox(grid, net);
  return span_cost(grid, b.min_h, b.max_h, /*x_axis=*/true) +
         span_cost(grid, b.min_v, b.max_v, /*x_axis=*/false) +
         grid.via_cost() * double(b.max_m - b.min_m);
}

double net_bbox_area(const HananGrid& grid, const Net& net) {
  if (net.pins.empty()) return 0.0;
  const Bbox b = net_bbox(grid, net);
  return span_cost(grid, b.min_h, b.max_h, /*x_axis=*/true) *
         span_cost(grid, b.min_v, b.max_v, /*x_axis=*/false);
}

std::vector<std::size_t> order_nets(const HananGrid& grid,
                                    const std::vector<Net>& nets,
                                    NetOrder order, const OrderKeyFn& custom) {
  std::vector<std::size_t> sequence(nets.size());
  std::iota(sequence.begin(), sequence.end(), std::size_t{0});
  if (!custom) {
    if (order == NetOrder::kAsGiven) return sequence;
  }
  std::vector<double> primary(nets.size(), 0.0), secondary(nets.size(), 0.0);
  for (std::size_t i = 0; i < nets.size(); ++i) {
    if (custom) {
      primary[i] = custom(grid, nets[i]);
      continue;
    }
    switch (order) {
      case NetOrder::kAsGiven:
        break;
      case NetOrder::kHpwl:
        primary[i] = net_hpwl(grid, nets[i]);
        break;
      case NetOrder::kPinCount:
        primary[i] = double(nets[i].pins.size());
        secondary[i] = net_hpwl(grid, nets[i]);
        break;
      case NetOrder::kBboxArea:
        primary[i] = net_bbox_area(grid, nets[i]);
        secondary[i] = net_hpwl(grid, nets[i]);
        break;
    }
  }
  std::stable_sort(sequence.begin(), sequence.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (primary[a] != primary[b]) return primary[a] < primary[b];
                     return secondary[a] < secondary[b];
                   });
  return sequence;
}

}  // namespace oar::chip
