file(REMOVE_RECURSE
  "liboar_geom.a"
)
