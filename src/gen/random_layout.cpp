#include "gen/random_layout.hpp"

#include <algorithm>

#include "route/maze.hpp"

namespace oar::gen {

namespace {

/// True when every pin reaches every other pin (single maze flood).
bool routable(const HananGrid& grid) {
  if (grid.pins().size() < 2) return true;
  route::MazeRouter maze(grid);
  maze.run({grid.pins().front()});
  for (Vertex p : grid.pins()) {
    if (maze.dist(p) == route::MazeRouter::kInf) return false;
  }
  return true;
}

std::vector<std::uint8_t> random_blocked(const RandomGridSpec& spec, util::Rng& rng) {
  const std::size_t n = std::size_t(spec.h) * spec.v * spec.m;
  std::vector<std::uint8_t> blocked(n, 0);
  const auto num_obstacles =
      std::int32_t(rng.uniform_int(spec.min_obstacles, spec.max_obstacles));
  for (std::int32_t i = 0; i < num_obstacles; ++i) {
    const auto len =
        std::int32_t(rng.uniform_int(spec.min_obstacle_len, spec.max_obstacle_len));
    const bool horizontal = rng.chance(0.5);
    const auto m = std::int32_t(rng.uniform_int(0, spec.m - 1));
    if (horizontal) {
      const auto h0 = std::int32_t(rng.uniform_int(0, std::max(0, spec.h - len)));
      const auto v0 = std::int32_t(rng.uniform_int(0, spec.v - 1));
      for (std::int32_t d = 0; d < len && h0 + d < spec.h; ++d) {
        blocked[std::size_t((std::int64_t(m) * spec.v + v0) * spec.h + h0 + d)] = 1;
      }
    } else {
      const auto h0 = std::int32_t(rng.uniform_int(0, spec.h - 1));
      const auto v0 = std::int32_t(rng.uniform_int(0, std::max(0, spec.v - len)));
      for (std::int32_t d = 0; d < len && v0 + d < spec.v; ++d) {
        blocked[std::size_t((std::int64_t(m) * spec.v + v0 + d) * spec.h + h0)] = 1;
      }
    }
  }
  return blocked;
}

}  // namespace

HananGrid random_grid(const RandomGridSpec& spec, util::Rng& rng) {
  std::vector<double> x_step(std::size_t(spec.h - 1));
  std::vector<double> y_step(std::size_t(spec.v - 1));
  for (auto& s : x_step) s = double(rng.uniform_int(spec.min_edge_cost, spec.max_edge_cost));
  for (auto& s : y_step) s = double(rng.uniform_int(spec.min_edge_cost, spec.max_edge_cost));
  const double via = rng.uniform(spec.min_via_cost, spec.max_via_cost);

  const int kMaxAttempts = 8;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    auto blocked = random_blocked(spec, rng);
    HananGrid grid(spec.h, spec.v, spec.m, x_step, y_step, via, std::move(blocked));

    const auto num_pins = std::int32_t(rng.uniform_int(spec.min_pins, spec.max_pins));
    std::int32_t placed = 0;
    for (int tries = 0; placed < num_pins && tries < num_pins * 50; ++tries) {
      const auto idx = Vertex(rng.uniform_int(0, grid.num_vertices() - 1));
      if (grid.is_blocked(idx) || grid.is_pin(idx)) continue;
      grid.add_pin(idx);
      ++placed;
    }
    if (placed < 2) continue;  // pathological obstacle density; re-draw
    if (!spec.ensure_routable || routable(grid) || attempt == kMaxAttempts - 1) {
      return grid;
    }
  }
  // Unreachable: the loop always returns on its final attempt.
  return HananGrid(spec.h, spec.v, spec.m, x_step, y_step, via);
}

std::vector<TestSubsetSpec> paper_test_subsets(std::int32_t scale) {
  // Paper Table 1 rows: {name, H, V, pin range, obstacle range}.
  struct Row {
    const char* name;
    std::int32_t h, v, min_pins, max_pins, min_obs, max_obs;
  };
  static constexpr Row kRows[] = {
      {"T32", 32, 32, 3, 10, 128, 640},
      {"T64", 64, 64, 12, 40, 512, 2560},
      {"T128", 128, 128, 48, 160, 2048, 10240},
      {"T128_2", 128, 256, 96, 320, 4096, 20480},
      {"T256", 256, 256, 192, 640, 8192, 40960},
      {"T256_2", 256, 512, 384, 1280, 16384, 81920},
      {"T512", 512, 512, 768, 2560, 32768, 163840},
  };
  std::vector<TestSubsetSpec> subsets;
  for (const Row& row : kRows) {
    TestSubsetSpec subset;
    subset.name = row.name;
    RandomGridSpec& s = subset.spec;
    const std::int32_t sc = std::max<std::int32_t>(1, scale);
    // Dimensions scale by `scale`; pins/obstacles scale with the area
    // (scale^2) to preserve the paper's densities.
    s.h = std::max<std::int32_t>(8, row.h / sc);
    s.v = std::max<std::int32_t>(8, row.v / sc);
    const std::int64_t area_ratio =
        std::max<std::int64_t>(1, (std::int64_t(row.h) * row.v) /
                                      (std::int64_t(s.h) * s.v));
    s.min_pins = std::max<std::int32_t>(3, std::int32_t(row.min_pins / area_ratio));
    s.max_pins = std::max<std::int32_t>(s.min_pins, std::int32_t(row.max_pins / area_ratio));
    s.min_obstacles = std::max<std::int32_t>(1, std::int32_t(row.min_obs / area_ratio));
    s.max_obstacles =
        std::max<std::int32_t>(s.min_obstacles, std::int32_t(row.max_obs / area_ratio));
    subsets.push_back(std::move(subset));
  }
  return subsets;
}

geom::Layout random_layout(const RandomLayoutSpec& spec, util::Rng& rng) {
  geom::Layout layout(spec.width, spec.height, spec.layers,
                      rng.uniform(spec.min_via_cost, spec.max_via_cost));

  const auto num_obstacles =
      std::int32_t(rng.uniform_int(spec.min_obstacles, spec.max_obstacles));
  for (std::int32_t i = 0; i < num_obstacles; ++i) {
    const auto w = std::int32_t(
        rng.uniform(spec.min_obstacle_frac, spec.max_obstacle_frac) * spec.width);
    const auto h = std::int32_t(
        rng.uniform(spec.min_obstacle_frac, spec.max_obstacle_frac) * spec.height);
    if (w < 1 || h < 1) continue;
    const auto x0 = std::int32_t(rng.uniform_int(0, std::max(0, spec.width - w)));
    const auto y0 = std::int32_t(rng.uniform_int(0, std::max(0, spec.height - h)));
    const auto layer = std::int32_t(rng.uniform_int(0, spec.layers - 1));
    layout.add_obstacle(geom::Rect(x0, y0, x0 + w, y0 + h), layer);
  }

  const auto num_pins = std::int32_t(rng.uniform_int(spec.min_pins, spec.max_pins));
  std::int32_t placed = 0;
  for (int tries = 0; placed < num_pins && tries < num_pins * 100; ++tries) {
    const geom::Point3 pin{std::int32_t(rng.uniform_int(0, spec.width)),
                           std::int32_t(rng.uniform_int(0, spec.height)),
                           std::int32_t(rng.uniform_int(0, spec.layers - 1))};
    bool buried = false;
    for (const auto& o : layout.obstacles()) {
      if (o.layer == pin.layer &&
          o.rect.strictly_contains(geom::Point2{pin.x, pin.y})) {
        buried = true;
        break;
      }
    }
    if (buried) continue;
    layout.add_pin(pin);
    ++placed;
  }
  return layout;
}

HananGrid random_subset_grid(const TestSubsetSpec& subset, util::Rng& rng) {
  RandomGridSpec spec = subset.spec;
  // Paper: M ranges 4..10 per layout; keep even layer counts for variety.
  spec.m = std::int32_t(rng.uniform_int(subset.min_m, subset.max_m));
  return random_grid(spec, rng);
}

}  // namespace oar::gen
