#include "route/oarmst.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace oar::route {

OarmstRouter::OarmstRouter(const HananGrid& grid, OarmstConfig config)
    : grid_(grid), config_(config) {}

OarmstResult OarmstRouter::build_once(const std::vector<Vertex>& terminals) const {
  OarmstResult result;
  result.tree = RouteTree(&grid_);
  result.connected = true;
  if (terminals.empty()) return result;

  MazeRouter maze(grid_);

  std::vector<Vertex> tree_vertices;      // maze sources in kTreeVertices mode
  std::vector<Vertex> connected_terms;    // maze sources in kTerminalsOnly mode
  std::unordered_set<Vertex> in_tree;

  connected_terms.push_back(terminals.front());
  tree_vertices.push_back(terminals.front());
  in_tree.insert(terminals.front());

  std::vector<Vertex> remaining(terminals.begin() + 1, terminals.end());
  // Deduplicate targets that equal the start terminal.
  remaining.erase(std::remove(remaining.begin(), remaining.end(), terminals.front()),
                  remaining.end());

  double sum_of_paths = 0.0;
  while (!remaining.empty()) {
    const auto& sources = config_.attach == AttachMode::kTreeVertices
                              ? tree_vertices
                              : connected_terms;
    const Vertex reached = maze.run(sources, remaining);
    if (reached == hanan::kInvalidVertex) {
      result.connected = false;  // some terminal is walled off
      break;
    }
    const std::vector<Vertex> path = maze.path_to(reached);
    sum_of_paths += maze.dist(reached);
    result.tree.add_path(path);
    for (Vertex v : path) {
      if (in_tree.insert(v).second) tree_vertices.push_back(v);
    }
    connected_terms.push_back(reached);
    remaining.erase(std::remove(remaining.begin(), remaining.end(), reached),
                    remaining.end());
  }

  result.cost = config_.cost_model == CostModel::kUnionLength
                    ? result.tree.cost()
                    : sum_of_paths;
  return result;
}

OarmstResult OarmstRouter::build(const std::vector<Vertex>& pins,
                                 const std::vector<Vertex>& steiner_points) const {
  // Filter Steiner points: drop blocked vertices and duplicates of pins.
  std::unordered_set<Vertex> pin_set(pins.begin(), pins.end());
  std::vector<Vertex> steiner;
  std::unordered_set<Vertex> seen;
  for (Vertex s : steiner_points) {
    if (s < 0 || s >= grid_.num_vertices()) continue;
    if (grid_.is_blocked(s) || pin_set.count(s)) continue;
    if (seen.insert(s).second) steiner.push_back(s);
  }

  std::vector<Vertex> terminals(pins.begin(), pins.end());
  terminals.insert(terminals.end(), steiner.begin(), steiner.end());

  OarmstResult result = build_once(terminals);
  result.kept_steiner = steiner;

  if (!config_.remove_redundant_steiner || steiner.empty()) return result;

  // Iteratively drop redundant Steiner terminals (degree < 3) and rebuild.
  for (int pass = 0; pass < config_.max_rebuild_passes; ++pass) {
    std::vector<Vertex> kept;
    kept.reserve(result.kept_steiner.size());
    for (Vertex s : result.kept_steiner) {
      if (result.tree.degree(s) >= 3) kept.push_back(s);
    }
    if (kept.size() == result.kept_steiner.size()) break;  // all irredundant

    std::vector<Vertex> new_terminals(pins.begin(), pins.end());
    new_terminals.insert(new_terminals.end(), kept.begin(), kept.end());
    OarmstResult rebuilt = build_once(new_terminals);
    rebuilt.kept_steiner = std::move(kept);
    rebuilt.rebuild_passes = result.rebuild_passes + 1;
    result = std::move(rebuilt);
    if (result.kept_steiner.empty()) break;
  }
  return result;
}

double OarmstRouter::cost(const std::vector<Vertex>& pins,
                          const std::vector<Vertex>& steiner_points) const {
  return build(pins, steiner_points).cost;
}

}  // namespace oar::route
