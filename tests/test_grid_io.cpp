#include "gen/grid_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "gen/random_layout.hpp"

namespace oar::gen {
namespace {

using hanan::HananGrid;
using hanan::Vertex;

HananGrid sample_grid() {
  util::Rng rng(12);
  RandomGridSpec spec;
  spec.h = 7;
  spec.v = 5;
  spec.m = 3;
  spec.min_pins = 4;
  spec.max_pins = 5;
  spec.min_obstacles = 4;
  spec.max_obstacles = 8;
  spec.min_edge_cost = 1;
  spec.max_edge_cost = 50;
  return random_grid(spec, rng);
}

TEST(GridIo, RoundTripPreservesEverything) {
  const HananGrid grid = sample_grid();
  std::stringstream buffer;
  ASSERT_TRUE(write_grid(grid, buffer));
  std::string error;
  const auto loaded = read_grid(buffer, &error);
  ASSERT_TRUE(loaded.has_value()) << error;

  EXPECT_EQ(loaded->h_dim(), grid.h_dim());
  EXPECT_EQ(loaded->v_dim(), grid.v_dim());
  EXPECT_EQ(loaded->m_dim(), grid.m_dim());
  EXPECT_DOUBLE_EQ(loaded->via_cost(), grid.via_cost());
  for (std::int32_t h = 0; h + 1 < grid.h_dim(); ++h) {
    EXPECT_DOUBLE_EQ(loaded->x_step(h), grid.x_step(h));
  }
  for (std::int32_t v = 0; v + 1 < grid.v_dim(); ++v) {
    EXPECT_DOUBLE_EQ(loaded->y_step(v), grid.y_step(v));
  }
  ASSERT_EQ(loaded->pins().size(), grid.pins().size());
  for (Vertex v = 0; v < grid.num_vertices(); ++v) {
    EXPECT_EQ(loaded->is_blocked(v), grid.is_blocked(v));
    EXPECT_EQ(loaded->is_pin(v), grid.is_pin(v));
  }
}

TEST(GridIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/grid_roundtrip.oargrid";
  const HananGrid grid = sample_grid();
  ASSERT_TRUE(save_grid(grid, path));
  std::string error;
  const auto loaded = load_grid(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->pins(), grid.pins());
  std::remove(path.c_str());
}

TEST(GridIo, CommentsAndBlankLinesIgnored) {
  std::stringstream in(
      "# a comment\n"
      "oargrid 1\n"
      "\n"
      "dims 2 2 1\n"
      "via 3\n"
      "xsteps 5\n"
      "ysteps 7\n"
      "pins 0 0 0 1 1 0\n"
      "blocked\n"
      "end\n");
  std::string error;
  const auto grid = read_grid(in, &error);
  ASSERT_TRUE(grid.has_value()) << error;
  EXPECT_EQ(grid->pins().size(), 2u);
  EXPECT_DOUBLE_EQ(grid->x_step(0), 5.0);
}

struct BadInputCase {
  const char* name;
  const char* text;
  const char* expected_error;
};

class GridIoBadInputTest : public ::testing::TestWithParam<BadInputCase> {};

TEST_P(GridIoBadInputTest, RejectsMalformedInput) {
  std::stringstream in(GetParam().text);
  std::string error;
  const auto grid = read_grid(in, &error);
  EXPECT_FALSE(grid.has_value());
  EXPECT_NE(error.find(GetParam().expected_error), std::string::npos)
      << "actual error: " << error;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, GridIoBadInputTest,
    ::testing::Values(
        BadInputCase{"missing_header", "dims 2 2 1\nend\n", "header"},
        BadInputCase{"bad_version", "oargrid 9\nend\n", "version"},
        BadInputCase{"missing_end", "oargrid 1\ndims 2 2 1\nxsteps 1\nysteps 1\n",
                     "end"},
        BadInputCase{"missing_dims", "oargrid 1\nend\n", "dims"},
        BadInputCase{"bad_dims", "oargrid 1\ndims 0 2 1\nend\n", "dims"},
        BadInputCase{"step_count",
                     "oargrid 1\ndims 3 2 1\nxsteps 1\nysteps 1\nend\n",
                     "step count"},
        BadInputCase{"negative_step",
                     "oargrid 1\ndims 2 2 1\nxsteps -1\nysteps 1\nend\n",
                     "x step"},
        BadInputCase{"pin_range",
                     "oargrid 1\ndims 2 2 1\nxsteps 1\nysteps 1\npins 5 0 0\nend\n",
                     "out of range"},
        BadInputCase{"pin_on_block",
                     "oargrid 1\ndims 2 2 1\nxsteps 1\nysteps 1\n"
                     "blocked 0 0 0\npins 0 0 0\nend\n",
                     "blocked"},
        BadInputCase{"unknown_keyword",
                     "oargrid 1\ndims 2 2 1\nxsteps 1\nysteps 1\nwat\nend\n",
                     "unknown keyword"},
        BadInputCase{"partial_triple",
                     "oargrid 1\ndims 2 2 1\nxsteps 1\nysteps 1\npins 0 0\nend\n",
                     "bad pins"}),
    [](const ::testing::TestParamInfo<BadInputCase>& info) {
      return info.param.name;
    });

TEST(GridIo, LoadMissingFileFails) {
  std::string error;
  EXPECT_FALSE(load_grid("/nonexistent/file.oargrid", &error).has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace oar::gen
