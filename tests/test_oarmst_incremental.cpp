// Property test for the incremental maze-Prim core (DESIGN.md §10): the
// frontier-continuing construction must be *bitwise* equivalent to the
// from-scratch reference — same cost, same connectivity, same edge set, same
// kept Steiner points — on randomized obstacle layouts, in every attach
// mode and cost model, with and without Steiner points.  This is the
// invariant that lets the fast path replace the reference everywhere.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "gen/random_layout.hpp"
#include "route/oarmst.hpp"

namespace oar::route {
namespace {

gen::RandomGridSpec property_spec(bool ensure_routable) {
  gen::RandomGridSpec spec;
  spec.h = 10;
  spec.v = 10;
  spec.m = 2;
  spec.min_pins = 3;
  spec.max_pins = 7;
  spec.min_obstacles = 8;
  spec.max_obstacles = 20;
  spec.min_edge_cost = 1;
  spec.max_edge_cost = 50;
  // Disconnected layouts must agree too (cost +inf, same partial tree).
  spec.ensure_routable = ensure_routable;
  return spec;
}

std::vector<Vertex> some_steiner_candidates(const HananGrid& grid, util::Rng& rng) {
  std::vector<Vertex> out;
  for (int i = 0; i < 3; ++i) {
    out.push_back(Vertex(rng.uniform_int(0, grid.num_vertices() - 1)));
  }
  return out;
}

void expect_identical(const OarmstResult& inc, const OarmstResult& ref,
                      const std::string& context) {
  EXPECT_EQ(inc.connected, ref.connected) << context;
  if (std::isfinite(ref.cost) || std::isfinite(inc.cost)) {
    EXPECT_DOUBLE_EQ(inc.cost, ref.cost) << context;
  } else {
    EXPECT_TRUE(std::isinf(inc.cost) && std::isinf(ref.cost)) << context;
  }
  EXPECT_EQ(inc.kept_steiner, ref.kept_steiner) << context;
  EXPECT_EQ(inc.rebuild_passes, ref.rebuild_passes) << context;
  // Bitwise tree equality: same edges in the same construction order.
  ASSERT_EQ(inc.tree.num_edges(), ref.tree.num_edges()) << context;
  const auto& ie = inc.tree.edges();
  const auto& re = ref.tree.edges();
  for (std::size_t i = 0; i < ie.size(); ++i) {
    EXPECT_TRUE(ie[i] == re[i]) << context << " edge " << i << ": ("
                                << ie[i].a << "," << ie[i].b << ") vs ("
                                << re[i].a << "," << re[i].b << ")";
  }
}

class OarmstIncrementalProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OarmstIncrementalProperty, MatchesFromScratchBitwise) {
  util::Rng rng(GetParam());
  // Mix in occasional unroutable layouts: equivalence must hold for the
  // disconnected/+inf case as well.
  const bool ensure_routable = (GetParam() % 5) != 0;
  const HananGrid grid = gen::random_grid(property_spec(ensure_routable), rng);
  const std::vector<Vertex> steiner = some_steiner_candidates(grid, rng);

  // The incremental build shares this thread's pooled scratch with every
  // other build in the process; the reference uses a private scratch so the
  // comparison also exercises cross-build pool reuse.
  RouterScratch reference_scratch;

  for (const AttachMode attach : {AttachMode::kTreeVertices, AttachMode::kTerminalsOnly}) {
    for (const CostModel model : {CostModel::kUnionLength, CostModel::kSumOfPaths}) {
      for (const bool remove_redundant : {true, false}) {
        for (const bool with_steiner : {false, true}) {
          OarmstConfig inc_cfg;
          inc_cfg.attach = attach;
          inc_cfg.cost_model = model;
          inc_cfg.remove_redundant_steiner = remove_redundant;
          inc_cfg.incremental = true;
          OarmstConfig ref_cfg = inc_cfg;
          ref_cfg.incremental = false;

          const std::vector<Vertex>& sp =
              with_steiner ? steiner : std::vector<Vertex>{};
          const auto inc = OarmstRouter(grid, inc_cfg).build(grid.pins(), sp);
          const auto ref =
              OarmstRouter(grid, ref_cfg).build(grid.pins(), sp, &reference_scratch);

          const std::string context =
              "seed=" + std::to_string(GetParam()) +
              " attach=" + std::to_string(int(attach)) +
              " model=" + std::to_string(int(model)) +
              " remove=" + std::to_string(remove_redundant) +
              " steiner=" + std::to_string(with_steiner);
          expect_identical(inc, ref, context);
        }
      }
    }
  }
}

// >= 100 randomized layouts, as required by the acceptance criteria.
INSTANTIATE_TEST_SUITE_P(Layouts, OarmstIncrementalProperty,
                         ::testing::Range(std::uint64_t(1), std::uint64_t(105)));

TEST(OarmstIncremental, PooledScratchSurvivesInterleavedGrids) {
  // Alternate builds between two different-size grids through one scratch:
  // the grow-only arrays and epoch stamps must never leak state across
  // rebinds.  Each build is checked against a fresh-scratch reference.
  util::Rng rng(424242);
  const HananGrid small = gen::random_grid(property_spec(true), rng);
  gen::RandomGridSpec big_spec = property_spec(true);
  big_spec.h = 14;
  big_spec.v = 14;
  big_spec.m = 3;
  const HananGrid big = gen::random_grid(big_spec, rng);

  RouterScratch shared;
  for (int round = 0; round < 8; ++round) {
    const HananGrid& grid = (round % 2 == 0) ? small : big;
    OarmstConfig ref_cfg;
    ref_cfg.incremental = false;
    RouterScratch fresh;
    const auto inc = OarmstRouter(grid).build(grid.pins(), {}, &shared);
    const auto ref = OarmstRouter(grid, ref_cfg).build(grid.pins(), {}, &fresh);
    expect_identical(inc, ref, "round=" + std::to_string(round));
  }
}

}  // namespace
}  // namespace oar::route
