#include "mcts/actor_critic.hpp"

#include <unordered_set>

#include "obs/metrics.hpp"

namespace oar::mcts {

namespace {
route::OarmstConfig raw_config() {
  route::OarmstConfig cfg;
  cfg.remove_redundant_steiner = false;
  return cfg;
}

struct CriticObs {
  obs::Counter& fsp_calls;
  obs::Counter& critic_calls;
  obs::Counter& exact_cost_calls;
};

CriticObs& critic_obs() {
  auto& reg = obs::MetricsRegistry::instance();
  static CriticObs o{
      reg.counter("oar_mcts_fsp_calls_total",
                  "Selector fsp inferences issued through ActorCritic"),
      reg.counter("oar_mcts_critic_calls_total",
                  "Critic completions (top-up + OARMST route) evaluated"),
      reg.counter("oar_mcts_exact_cost_calls_total",
                  "Exact raw-state routing-cost evaluations"),
  };
  return o;
}
}  // namespace

ActorCritic::ActorCritic(rl::SteinerSelector& selector, const HananGrid& grid)
    : selector_(selector),
      grid_(grid),
      final_router_(grid),
      raw_router_(grid, raw_config()) {}

std::vector<double> ActorCritic::fsp(const std::vector<Vertex>& selected) {
  return selector_.infer_fsp(grid_, selected);
}

void ActorCritic::fsp_into(const std::vector<Vertex>& selected,
                           std::vector<double>& out) {
  critic_obs().fsp_calls.inc();
  selector_.infer_fsp_into(grid_, selected, out);
}

std::vector<std::pair<Vertex, double>> ActorCritic::policy(
    const std::vector<Vertex>& selected, std::int64_t last_priority,
    const std::vector<double>& fsp_map) const {
  std::unordered_set<Vertex> taken(selected.begin(), selected.end());

  std::vector<std::pair<Vertex, double>> out;
  double running_product = 1.0;
  double total = 0.0;
  // Walk vertices in priority order after the last selected point; eq. (1)
  // multiplies (1 - fsp) of every *valid* vertex passed over.
  for (std::int64_t p = last_priority + 1; p < grid_.num_vertices(); ++p) {
    const Vertex v = grid_.vertex_at_priority(p);
    if (grid_.is_blocked(v) || grid_.is_pin(v) || taken.count(v)) continue;
    const double f = fsp_map[std::size_t(p)];
    const double weighted = f * running_product;
    out.emplace_back(v, weighted);
    total += weighted;
    running_product *= (1.0 - f);
  }
  if (total > 0.0) {
    for (auto& [v, prob] : out) prob /= total;
  } else if (!out.empty()) {
    const double uniform = 1.0 / double(out.size());
    for (auto& [v, prob] : out) prob = uniform;
  }
  return out;
}

double ActorCritic::critic_cost(const std::vector<Vertex>& selected,
                                std::int32_t steiner_budget,
                                const std::vector<double>& fsp_map) const {
  critic_obs().critic_calls.inc();
  const std::int32_t remaining = steiner_budget - std::int32_t(selected.size());
  std::vector<Vertex> completed = selected;
  if (remaining > 0) {
    const std::vector<Vertex> extra =
        rl::SteinerSelector::top_k_valid(grid_, fsp_map, remaining, selected);
    completed.insert(completed.end(), extra.begin(), extra.end());
  }
  return final_router_.cost(grid_.pins(), completed, &scratch_);
}

double ActorCritic::exact_cost(const std::vector<Vertex>& selected) const {
  critic_obs().exact_cost_calls.inc();
  return raw_router_.cost(grid_.pins(), selected, &scratch_);
}

}  // namespace oar::mcts
