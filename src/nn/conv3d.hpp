#pragma once

// 3D convolution (stride 1, symmetric zero padding) over a (C, D0, D1, D2)
// volume.  The paper's agent uses 3x3x3 kernels everywhere plus 1x1x1
// projections inside residual blocks; both are supported via `kernel`.

#include "nn/module.hpp"

namespace oar::nn {

class InferenceScratch;

class Conv3d : public Module {
 public:
  /// He-initialized convolution.  `kernel` must be odd; padding defaults to
  /// kernel/2 ("same" output size).
  Conv3d(std::int32_t in_channels, std::int32_t out_channels, std::int32_t kernel,
         util::Rng& rng, std::int32_t padding = -1);

  /// Training mode: reference scalar kernel, retains the input for
  /// backward.  Inference mode: routes through infer_into (tiled kernels,
  /// no retention).
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  /// (N, IC, D0, D1, D2) -> (N, OC, O0, O1, O2).  Unlike the looped base
  /// default, this runs one im2col + register-blocked GEMM over the whole
  /// batch — the kernel the serving layer's micro-batching amortizes.
  Tensor forward_batch(const Tensor& input) override;
  void collect_parameters(std::vector<Parameter*>& out) override;

  /// Single-sample inference kernel: convolves the (in_channels, D0, D1,
  /// D2) volume at `in` into the (out_channels, O0, O1, O2) buffer at
  /// `out` using the register-tiled/im2col machinery of conv3d_batch.cpp
  /// (which also defines this, so it compiles under that TU's wider
  /// flags).  All temporaries come from `scratch`; nothing is retained, so
  /// a warmed-up call performs zero heap allocations.
  ///
  /// Parameter order follows the repo-wide *_into convention (DESIGN.md
  /// §13): inputs, then scratch, then the output buffer last.
  void infer_into(const float* in, std::int32_t D0, std::int32_t D1,
                  std::int32_t D2, InferenceScratch& scratch, float* out) const;

  std::int32_t in_channels() const { return in_channels_; }
  std::int32_t out_channels() const { return out_channels_; }
  std::int32_t kernel() const { return kernel_; }
  std::int32_t padding() const { return padding_; }

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }
  const Parameter& weight() const { return weight_; }
  const Parameter& bias() const { return bias_; }

 private:
  std::int32_t in_channels_, out_channels_, kernel_, padding_;
  Parameter weight_;  // (OC, IC, k, k, k)
  Parameter bias_;    // (OC)
  Tensor input_;      // cached for backward
};

}  // namespace oar::nn
