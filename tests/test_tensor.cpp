#include "nn/tensor.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace oar::nn {
namespace {

TEST(Tensor, ConstructionAndShape) {
  Tensor t({2, 3, 4});
  EXPECT_TRUE(t.defined());
  EXPECT_EQ(t.dim(), 3);
  EXPECT_EQ(t.numel(), 24);
  EXPECT_EQ(t.shape(1), 3);
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_FLOAT_EQ(t[i], 0.0f);
}

TEST(Tensor, DefaultIsUndefined) {
  Tensor t;
  EXPECT_FALSE(t.defined());
}

TEST(Tensor, FullAndFill) {
  Tensor t = Tensor::full({3}, 2.5f);
  EXPECT_FLOAT_EQ(t[0], 2.5f);
  t.fill(-1.0f);
  EXPECT_FLOAT_EQ(t[2], -1.0f);
}

TEST(Tensor, MultiIndexAccessRowMajor) {
  Tensor t({2, 3});
  t.at({1, 2}) = 7.0f;
  EXPECT_FLOAT_EQ(t[5], 7.0f);
  t.at({0, 1}) = 3.0f;
  EXPECT_FLOAT_EQ(t[1], 3.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t = Tensor::from({1, 2, 3, 4, 5, 6});
  Tensor r = t.reshaped({2, 3});
  EXPECT_EQ(r.dim(), 2);
  EXPECT_FLOAT_EQ(r.at({1, 0}), 4.0f);
}

TEST(Tensor, ArithmeticOps) {
  Tensor a = Tensor::from({1, 2, 3});
  Tensor b = Tensor::from({10, 20, 30});
  a += b;
  EXPECT_FLOAT_EQ(a[2], 33.0f);
  a -= b;
  EXPECT_FLOAT_EQ(a[2], 3.0f);
  a *= 2.0f;
  EXPECT_FLOAT_EQ(a[0], 2.0f);
  a.axpy(0.5f, b);
  EXPECT_FLOAT_EQ(a[1], 14.0f);
  const Tensor c = a + b;
  EXPECT_FLOAT_EQ(c[0], 17.0f);
  const Tensor d = b - a;
  EXPECT_FLOAT_EQ(d[0], 3.0f);
  const Tensor e = b * 0.1f;
  EXPECT_FLOAT_EQ(e[2], 3.0f);
}

TEST(Tensor, Reductions) {
  const Tensor t = Tensor::from({-1, 4, 2, -5});
  EXPECT_DOUBLE_EQ(t.sum(), 0.0);
  EXPECT_DOUBLE_EQ(t.mean(), 0.0);
  EXPECT_FLOAT_EQ(t.max_value(), 4.0f);
  EXPECT_FLOAT_EQ(t.min_value(), -5.0f);
  EXPECT_EQ(t.argmax(), 1);
  EXPECT_NEAR(t.norm(), std::sqrt(1.0 + 16 + 4 + 25), 1e-6);
}

TEST(Tensor, RandnStatistics) {
  util::Rng rng(1);
  const Tensor t = Tensor::randn({10000}, rng, 2.0f);
  EXPECT_NEAR(t.mean(), 0.0, 0.1);
  double var = 0.0;
  for (std::int64_t i = 0; i < t.numel(); ++i) var += double(t[i]) * t[i];
  EXPECT_NEAR(var / double(t.numel()), 4.0, 0.3);
}

TEST(Tensor, ShapeString) {
  EXPECT_EQ(Tensor({2, 3}).shape_string(), "(2,3)");
}

}  // namespace
}  // namespace oar::nn
