#include "hanan/features.hpp"

#include <algorithm>
#include <cassert>

#include "obs/metrics.hpp"

namespace oar::hanan {

namespace {

struct FeatureObs {
  obs::Counter& cache_hits;
  obs::Counter& cache_rebuilds;
};

FeatureObs& feature_obs() {
  auto& reg = obs::MetricsRegistry::instance();
  static FeatureObs o{
      reg.counter("oar_nn_feature_cache_hits_total",
                  "encode_into calls answered from the cached base volume"),
      reg.counter("oar_nn_feature_cache_rebuilds_total",
                  "Base feature-volume re-encodes (grid address or revision "
                  "changed)"),
  };
  return o;
}

}  // namespace

void encode_features_into(const HananGrid& grid,
                          const std::vector<Vertex>& extra_pins, float* out) {
  const std::int32_t H = grid.h_dim(), V = grid.v_dim(), M = grid.m_dim();
  const std::int64_t chan = std::int64_t(H) * V * M;
  std::fill(out, out + kNumFeatureChannels * chan, 0.0f);
  const auto at = [&](std::int32_t c, std::int32_t h, std::int32_t v,
                      std::int32_t m) -> float& {
    return out[std::size_t(((std::int64_t(c) * H + h) * V + v) * M + m)];
  };

  // Normalizer: the maximum of all cost-related values in the layout.
  double max_cost = grid.via_cost();
  for (std::int32_t h = 0; h + 1 < H; ++h) max_cost = std::max(max_cost, grid.x_step(h));
  for (std::int32_t v = 0; v + 1 < V; ++v) max_cost = std::max(max_cost, grid.y_step(v));
  if (max_cost <= 0.0) max_cost = 1.0;
  const float inv = float(1.0 / max_cost);

  const float via_feature = float(grid.via_cost()) * inv;
  for (std::int32_t m = 0; m < M; ++m) {
    for (std::int32_t v = 0; v < V; ++v) {
      for (std::int32_t h = 0; h < H; ++h) {
        const Vertex idx = grid.index(h, v, m);
        if (grid.is_pin(idx)) at(0, h, v, m) = 1.0f;
        if (grid.is_blocked(idx)) at(1, h, v, m) = 1.0f;
        if (h + 1 < H && grid.edge_usable(idx, Dir::kPosX)) {
          at(2, h, v, m) = float(grid.x_step(h)) * inv;
        }
        if (h > 0 && grid.edge_usable(grid.index(h - 1, v, m), Dir::kPosX)) {
          at(3, h, v, m) = float(grid.x_step(h - 1)) * inv;
        }
        if (v + 1 < V && grid.edge_usable(idx, Dir::kPosY)) {
          at(4, h, v, m) = float(grid.y_step(v)) * inv;
        }
        if (v > 0 && grid.edge_usable(grid.index(h, v - 1, m), Dir::kPosY)) {
          at(5, h, v, m) = float(grid.y_step(v - 1)) * inv;
        }
        at(6, h, v, m) = via_feature;
      }
    }
  }
  for (Vertex p : extra_pins) {
    assert(p >= 0 && p < grid.num_vertices());
    const Cell c = grid.cell(p);
    at(0, c.h, c.v, c.m) = 1.0f;
  }
}

FeatureVolume encode_features(const HananGrid& grid,
                              const std::vector<Vertex>& extra_pins) {
  FeatureVolume vol;
  vol.c = kNumFeatureChannels;
  vol.h = grid.h_dim();
  vol.v = grid.v_dim();
  vol.m = grid.m_dim();
  vol.data.resize(std::size_t(vol.c) * vol.h * vol.v * vol.m);
  encode_features_into(grid, extra_pins, vol.data.data());
  return vol;
}

void FeatureCache::encode_into(const HananGrid& grid,
                               const std::vector<Vertex>& extra_pins,
                               float* out) {
  if (grid_ == &grid && revision_ == grid.revision()) {
    feature_obs().cache_hits.inc();
  } else {
    base_.c = kNumFeatureChannels;
    base_.h = grid.h_dim();
    base_.v = grid.v_dim();
    base_.m = grid.m_dim();
    base_.data.resize(std::size_t(base_.c) * base_.h * base_.v * base_.m);
    encode_features_into(grid, {}, base_.data.data());
    grid_ = &grid;
    revision_ = grid.revision();
    ++rebuilds_;
    feature_obs().cache_rebuilds.inc();
  }
  std::copy(base_.data.begin(), base_.data.end(), out);
  for (Vertex p : extra_pins) {
    assert(p >= 0 && p < grid.num_vertices());
    const Cell c = grid.cell(p);
    out[base_.offset(0, c.h, c.v, c.m)] = 1.0f;
  }
}

}  // namespace oar::hanan
