file(REMOVE_RECURSE
  "CMakeFiles/oar_core.dir/multi_net.cpp.o"
  "CMakeFiles/oar_core.dir/multi_net.cpp.o.d"
  "CMakeFiles/oar_core.dir/pretrained.cpp.o"
  "CMakeFiles/oar_core.dir/pretrained.cpp.o.d"
  "CMakeFiles/oar_core.dir/registry.cpp.o"
  "CMakeFiles/oar_core.dir/registry.cpp.o.d"
  "CMakeFiles/oar_core.dir/rl_router.cpp.o"
  "CMakeFiles/oar_core.dir/rl_router.cpp.o.d"
  "liboar_core.a"
  "liboar_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oar_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
