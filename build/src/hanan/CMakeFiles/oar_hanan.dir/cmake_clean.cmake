file(REMOVE_RECURSE
  "CMakeFiles/oar_hanan.dir/features.cpp.o"
  "CMakeFiles/oar_hanan.dir/features.cpp.o.d"
  "CMakeFiles/oar_hanan.dir/hanan_grid.cpp.o"
  "CMakeFiles/oar_hanan.dir/hanan_grid.cpp.o.d"
  "liboar_hanan.a"
  "liboar_hanan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oar_hanan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
