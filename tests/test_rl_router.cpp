#include "core/rl_router.hpp"

#include <gtest/gtest.h>

#include "gen/random_layout.hpp"
#include "steiner/lin08.hpp"

namespace oar::core {
namespace {

std::shared_ptr<rl::SteinerSelector> tiny_selector() {
  rl::SelectorConfig cfg;
  cfg.unet.base_channels = 4;
  cfg.unet.depth = 1;
  cfg.unet.seed = 404;
  return std::make_shared<rl::SteinerSelector>(cfg);
}

hanan::HananGrid test_grid(std::uint64_t seed) {
  util::Rng rng(seed);
  gen::RandomGridSpec spec;
  spec.h = 8;
  spec.v = 8;
  spec.m = 2;
  spec.min_pins = 5;
  spec.max_pins = 6;
  spec.min_obstacles = 4;
  spec.max_obstacles = 8;
  return gen::random_grid(spec, rng);
}

TEST(RlRouterTest, NamesReflectConfig) {
  auto selector = tiny_selector();
  EXPECT_EQ(RlRouter(selector).name(), "rl-ours");
  EXPECT_EQ(RlRouter(selector, RlRouterConfig{true}).name(), "rl-ours+sweep");
}

TEST(RlRouterTest, ProducesValidTreesAndTimings) {
  auto selector = tiny_selector();
  RlRouter router(selector);
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto grid = test_grid(seed);
    const auto result = router.route(grid);
    if (!result.connected) continue;
    EXPECT_EQ(result.tree.validate(grid.pins()), "");
    EXPECT_GT(router.last_timing().select_seconds, 0.0);
    EXPECT_GE(router.last_timing().total_seconds,
              router.last_timing().select_seconds);
  }
}

class PrefixSweepTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrefixSweepTest, SweepNeverLosesToPlainOrTopK) {
  auto selector = tiny_selector();
  RlRouter plain(selector);
  RlRouter swept(selector, RlRouterConfig{true});
  steiner::Lin08Router lin08;

  const auto grid = test_grid(GetParam());
  const auto p = plain.route(grid);
  const auto s = swept.route(grid);
  const auto base = lin08.route(grid);
  if (!p.connected || !s.connected || !base.connected) return;
  // Sweep includes the top-(n-2) choice and the empty prefix, so it can
  // lose to neither.
  EXPECT_LE(s.cost, p.cost + 1e-9);
  EXPECT_LE(s.cost, base.cost + 1e-9);
  EXPECT_EQ(s.tree.validate(grid.pins()), "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrefixSweepTest,
                         ::testing::Range(std::uint64_t(10), std::uint64_t(20)));

TEST(RlRouterTest, TwoPinNetNeedsNoSteinerPoints) {
  auto selector = tiny_selector();
  RlRouter router(selector);
  hanan::HananGrid grid(5, 5, 1, std::vector<double>(4, 1.0),
                        std::vector<double>(4, 1.0), 1.0);
  grid.add_pin(grid.index(0, 0, 0));
  grid.add_pin(grid.index(4, 4, 0));
  const auto result = router.route(grid);
  EXPECT_TRUE(result.connected);
  EXPECT_TRUE(result.kept_steiner.empty());
  EXPECT_DOUBLE_EQ(result.cost, 8.0);
}

}  // namespace
}  // namespace oar::core
