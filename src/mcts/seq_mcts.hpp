#pragma once

// Conventional, AlphaGo-like sequential MCTS baseline (paper Sec. 4.2).
//
// Differences from the combinatorial MCTS:
//  * actions are unordered — any valid vertex can be chosen at any level,
//    so permutations of the same combination occupy distinct subtrees
//    (the redundancy the combinatorial variant eliminates);
//  * the agent is a *sequential* selector: one training sample is produced
//    per executed root move, whose label is the root visit-count
//    distribution (learn the best NEXT Steiner point, not the final
//    combination);
//  * at inference the trained sequential selector must be applied n-2
//    times, one inference per Steiner point.
//
// Priors come from the selector's fsp map normalized over valid vertices;
// the critic is shared with the combinatorial implementation.

#include "mcts/comb_mcts.hpp"

namespace oar::mcts {

/// One per-move training sample of the sequential agent.
struct SeqSample {
  /// Steiner points already placed when the sample's state was the root.
  std::vector<Vertex> state_selected;
  /// Root visit distribution over vertices, priority-order flat array.
  std::vector<float> label;
  std::vector<float> label_mask;
};

struct SeqMctsResult {
  std::vector<SeqSample> samples;
  std::vector<Vertex> selected;
  double initial_cost = 0.0;
  double final_cost = 0.0;
  double best_cost = 0.0;  // best exact cost along the executed path
  CombMctsStats stats;
};

class SeqMcts {
 public:
  /// Reuses CombMctsConfig (iterations, c_puct, terminal rules, critic).
  SeqMcts(rl::SteinerSelector& selector, CombMctsConfig config = {});

  SeqMctsResult run(const HananGrid& grid);

 private:
  rl::SteinerSelector& selector_;
  CombMctsConfig config_;
};

/// Inference with a sequentially-trained selector: repeatedly pick the
/// argmax-probability valid vertex, feeding selections back as pins, until
/// n-2 points are placed or the best remaining probability drops below
/// `stop_threshold`.  Returns the selected Steiner points and the number of
/// network inferences used (n-2 per net, vs 1 for the combinatorial agent).
struct SeqInferenceResult {
  std::vector<Vertex> selected;
  std::int32_t inferences = 0;
};
SeqInferenceResult sequential_select(rl::SteinerSelector& selector,
                                     const HananGrid& grid,
                                     double stop_threshold = 0.05);

}  // namespace oar::mcts
