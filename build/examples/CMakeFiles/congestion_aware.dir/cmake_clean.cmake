file(REMOVE_RECURSE
  "CMakeFiles/congestion_aware.dir/congestion_aware.cpp.o"
  "CMakeFiles/congestion_aware.dir/congestion_aware.cpp.o.d"
  "congestion_aware"
  "congestion_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/congestion_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
