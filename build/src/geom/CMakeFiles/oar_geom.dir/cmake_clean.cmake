file(REMOVE_RECURSE
  "CMakeFiles/oar_geom.dir/layout.cpp.o"
  "CMakeFiles/oar_geom.dir/layout.cpp.o.d"
  "liboar_geom.a"
  "liboar_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oar_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
