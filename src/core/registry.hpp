#pragma once

// Router registry: name -> factory, so benches, examples and user tools can
// instantiate any router (baselines, oracle, RL) from a string.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "steiner/router_base.hpp"

namespace oar::core {

using RouterFactory = std::function<std::unique_ptr<steiner::Router>()>;

class RouterRegistry {
 public:
  /// The default registry, pre-populated with every built-in router:
  /// "lin08", "liu14", "lin18", "oracle", "rl-ours" (RL router backed by
  /// the bundled checkpoint, quick-trained when absent).
  static RouterRegistry& instance();

  /// Registers (or replaces) a factory under `name`.
  void register_router(const std::string& name, RouterFactory factory);

  /// Creates a router; nullptr for unknown names.
  std::unique_ptr<steiner::Router> create(const std::string& name) const;

  bool contains(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> names() const;

 private:
  std::vector<std::pair<std::string, RouterFactory>> factories_;
};

}  // namespace oar::core
