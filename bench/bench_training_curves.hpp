#pragma once

// Shared driver for the Fig. 11 / Fig. 12 reproductions: train three
// routers — combinatorial MCTS (ours), AlphaGo-like sequential MCTS, and
// PPO — on fixed-size layouts under the same wall-clock budget, and report
// the average ST-to-MST ratio over held-out layouts versus training time,
// for both the training pin range (3-6) and an out-of-range set (the
// paper's 7-12 pins, scaled with the layout).
//
// Also prints the paper's Sec. 4.2 side claims at bench scale: seconds per
// MCTS training sample (combinatorial vs conventional is the 3.48x claim)
// and inference counts/time of the one-shot vs sequential selector (the
// 1.67x / 3.54x inference speedup claim).

#include "bench_common.hpp"

namespace oar::bench {

struct CurveConfig {
  const char* figure_name;
  std::int32_t h, v, m;           // fixed training size
  std::int32_t in_min_pins = 3, in_max_pins = 6;
  std::int32_t out_min_pins = 7, out_max_pins = 10;
  double seconds_per_trainer = 30.0;
  int eval_layouts = 20;
  int layouts_per_stage = 6;
  /// Paper alpha (2000 @ 16x16x4), scaled per grid by the trainer.
  int mcts_iterations = 2000;
  int report_rows = 6;            // eval checkpoints per trainer
};

inline void run_training_curves(const CurveConfig& cfg) {
  using namespace oar;

  const double scale = env_scale();
  const double budget = cfg.seconds_per_trainer * scale;

  // Held-out evaluation sets (same for all trainers).
  auto make_eval = [&](std::int32_t min_pins, std::int32_t max_pins) {
    util::Rng rng(0xe7a1 + std::uint64_t(min_pins));
    std::vector<hanan::HananGrid> grids;
    for (int i = 0; i < cfg.eval_layouts; ++i) {
      const auto spec = rl::training_spec({cfg.h, cfg.v, cfg.m}, 0.10, min_pins, max_pins);
      grids.push_back(gen::random_grid(spec, rng));
    }
    return grids;
  };
  const auto eval_in = make_eval(cfg.in_min_pins, cfg.in_max_pins);
  const auto eval_out = make_eval(cfg.out_min_pins, cfg.out_max_pins);
  const double report_every = budget / double(std::max(1, cfg.report_rows));

  rl::SelectorConfig sel_cfg = core::pretrained_selector_config();

  rl::TrainConfig train;
  train.sizes = {{cfg.h, cfg.v, cfg.m}};
  train.layouts_per_size = cfg.layouts_per_stage;
  train.epochs_per_stage = 2;
  train.batch_size = 16;
  train.augment_count = 8;
  train.mcts.iterations_per_move = cfg.mcts_iterations;
  train.curriculum_stages = 4;  // fixed-pin bootstrap, as in the paper
  train.min_pins = cfg.in_min_pins;
  train.max_pins = cfg.in_max_pins;
  train.seed = 0xf119;

  std::printf("%s: ST-to-MST ratio vs training time on %dx%dx%d layouts\n",
              cfg.figure_name, cfg.h, cfg.v, cfg.m);
  std::printf("(budget %.0f s per trainer; eval: %d layouts each for %d-%d and %d-%d pins)\n\n",
              budget, cfg.eval_layouts, cfg.in_min_pins, cfg.in_max_pins,
              cfg.out_min_pins, cfg.out_max_pins);
  std::printf("%-14s %10s | %12s %12s | %10s | %10s %10s\n", "trainer",
              "time[s]", "ST/MST in", "ST/MST out", "search", "sec/sample",
              "eval infs");
  print_rule(92);

  util::RunningStats comb_sample_time, seq_sample_time;
  double comb_infer = 1.0, seq_infer = 1.0;
  double comb_select_s = 0.0, seq_select_s = 0.0;

  // ---- combinatorial MCTS (ours) ----
  {
    sel_cfg.unet.seed = 0xc0;
    rl::SteinerSelector selector(sel_cfg);
    rl::CombTrainer trainer(selector, train);
    util::Timer timer;
    double next_report = report_every;
    util::RunningStats search_quality;
    while (timer.seconds() < budget) {
      const auto report = trainer.run_stage();
      comb_sample_time.add(report.seconds_per_sample);
      search_quality.add(report.mean_mcts_st_mst);
      if (timer.seconds() < next_report && timer.seconds() < budget) continue;
      next_report += report_every;
      const auto in = rl::evaluate_st_to_mst(selector, eval_in);
      const auto out = rl::evaluate_st_to_mst(selector, eval_out);
      comb_infer = in.mean_inferences;
      comb_select_s = in.select_seconds / std::max(1, in.count);
      std::printf("%-14s %10.1f | %12.4f %12.4f | %10.4f | %10.3f %10.1f\n",
                  "comb-mcts", timer.seconds(), in.mean_st_mst_ratio,
                  out.mean_st_mst_ratio, report.mean_mcts_st_mst,
                  report.seconds_per_sample, in.mean_inferences);
    }
  }

  // ---- AlphaGo-like sequential MCTS ----
  {
    sel_cfg.unet.seed = 0xa1;
    rl::SteinerSelector selector(sel_cfg);
    rl::SeqTrainer trainer(selector, train);
    rl::EvalOptions seq_eval;
    seq_eval.sequential = true;
    seq_eval.seq_stop_threshold = 0.0;  // n-2 inferences, as in Sec. 4.2
    util::Timer timer;
    double next_report = report_every;
    while (timer.seconds() < budget) {
      const auto report = trainer.run_stage();
      seq_sample_time.add(report.seconds_per_sample);
      if (timer.seconds() < next_report && timer.seconds() < budget) continue;
      next_report += report_every;
      const auto in = rl::evaluate_st_to_mst(selector, eval_in, seq_eval);
      const auto out = rl::evaluate_st_to_mst(selector, eval_out, seq_eval);
      seq_infer = in.mean_inferences;
      seq_select_s = in.select_seconds / std::max(1, in.count);
      std::printf("%-14s %10.1f | %12.4f %12.4f | %10.4f | %10.3f %10.1f\n",
                  "alphago-mcts", timer.seconds(), in.mean_st_mst_ratio,
                  out.mean_st_mst_ratio, report.mean_mcts_st_mst,
                  report.seconds_per_sample, in.mean_inferences);
    }
  }

  // ---- PPO ----
  {
    sel_cfg.unet.seed = 0x99;
    rl::SteinerSelector selector(sel_cfg);
    rl::PpoConfig ppo;
    ppo.episodes_per_iteration = 8;
    ppo.min_pins = cfg.in_min_pins;
    ppo.max_pins = cfg.in_max_pins;
    rl::PpoTrainer trainer(selector, {{cfg.h, cfg.v, cfg.m}}, ppo);
    rl::EvalOptions seq_eval;
    seq_eval.sequential = true;
    seq_eval.seq_stop_threshold = 0.0;
    util::Timer timer;
    double next_report = report_every;
    double mean_return = 0.0;
    while (timer.seconds() < budget) {
      mean_return = trainer.run_iteration().mean_return;
      if (timer.seconds() < next_report && timer.seconds() < budget) continue;
      next_report += report_every;
      const auto in = rl::evaluate_st_to_mst(selector, eval_in, seq_eval);
      const auto out = rl::evaluate_st_to_mst(selector, eval_out, seq_eval);
      std::printf("%-14s %10.1f | %12.4f %12.4f | %10.4f | %10s %10.1f\n", "ppo",
                  timer.seconds(), in.mean_st_mst_ratio, out.mean_st_mst_ratio,
                  1.0 - mean_return, "-", in.mean_inferences);
    }
  }

  print_rule(92);
  if (seq_sample_time.mean() > 0.0 && comb_sample_time.mean() > 0.0) {
    std::printf("sample generation (mean over stages): comb %.3f s vs conventional"
                " %.3f s -> %.2fx (paper: 1.16 s, 3.48x)\n", comb_sample_time.mean(),
                seq_sample_time.mean(), seq_sample_time.mean() / comb_sample_time.mean());
  }
  if (comb_select_s > 0.0 && seq_select_s > 0.0) {
    std::printf("inference: ours 1 inference (%.2f ms) vs sequential %.1f"
                " inferences (%.2f ms) -> %.2fx\n", comb_select_s * 1e3, seq_infer,
                seq_select_s * 1e3, seq_select_s / comb_select_s);
  }
  (void)comb_infer;
  std::printf("paper shape: comb-mcts below alphago-mcts at every time point, ppo"
              " far above both\n");
}

}  // namespace oar::bench
