#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace oar::util {
namespace {

TEST(RunningStats, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStats, NegativeValues) {
  RunningStats s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(Percentile, EmptyReturnsZero) { EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0); }

TEST(Percentile, MedianAndExtremes) {
  std::vector<double> v{5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 75), 7.5);
}

TEST(Mean, Basics) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Geomean, KnownValue) {
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
  EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

}  // namespace
}  // namespace oar::util
