#pragma once

// The RL ML-OARSMT router — the paper's end product (Fig. 2).
//
// route(grid):
//   1. one inference of the trained Steiner-point selector over the
//      encoded 3D Hanan graph,
//   2. take the top n-2 probability vertices as Steiner points,
//   3. run the OARMST router over pins + Steiner points (redundant-point
//      removal + rebuild) to produce the final tree.
//
// Timing of step 1 vs the total is recorded separately, matching the two
// runtime columns of the paper's Table 3.

#include <memory>

#include "rl/selector.hpp"
#include "steiner/router_base.hpp"

namespace oar::core {

using hanan::HananGrid;
using hanan::Vertex;

struct RlRouterTiming {
  double select_seconds = 0.0;  // Steiner-point selection (one inference)
  double total_seconds = 0.0;   // selection + OARMST construction
};

struct RlRouterConfig {
  /// EXTENSION beyond the paper: after the single inference, instead of
  /// committing to exactly the top n-2 vertices, sweep the probability-
  /// ordered prefixes top-0 .. top-(n-2) and keep the cheapest routed tree
  /// (n-1 extra OARMST builds, no extra inference).  With the sweep the
  /// router can never lose to the plain no-Steiner construction, which
  /// insulates a weakly trained selector.  Off by default — the paper's
  /// flow commits to the top n-2 (Fig. 2).
  bool prefix_sweep = false;

  /// All fields are currently unconstrained; present so every *Config in
  /// the API shares the validate() contract.
  void validate() const {}
};

class RlRouter : public steiner::Router {
 public:
  explicit RlRouter(std::shared_ptr<rl::SteinerSelector> selector,
                    RlRouterConfig config = {});

  std::string name() const override {
    return config_.prefix_sweep ? "rl-ours+sweep" : "rl-ours";
  }
  route::OarmstResult route(const HananGrid& grid) override;

  /// Timing of the most recent route() call.
  const RlRouterTiming& last_timing() const { return timing_; }

  rl::SteinerSelector& selector() { return *selector_; }

 private:
  std::shared_ptr<rl::SteinerSelector> selector_;
  RlRouterConfig config_;
  RlRouterTiming timing_;
};

}  // namespace oar::core
