// Command-line router: route an .oargrid layout file (see gen/grid_io.hpp)
// with any registered router and optionally dump the routed tree as SVG.
//
// Usage:
//   oarsmt_cli <layout.oargrid> [--router NAME] [--svg out.svg] [--list]
//
//   --list prints the registered router names and exits.

#include <cstdio>
#include <cstring>
#include <string>

#include "core/oarsmtrl.hpp"
#include "util/timer.hpp"

namespace {

int list_routers() {
  std::printf("registered routers:\n");
  for (const auto& name : oar::core::RouterRegistry::instance().names()) {
    std::printf("  %s\n", name.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace oar;

  std::string layout_path, router_name = "lin18", svg_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--list") == 0) return list_routers();
    if (std::strcmp(argv[i], "--router") == 0 && i + 1 < argc) {
      router_name = argv[++i];
    } else if (std::strcmp(argv[i], "--svg") == 0 && i + 1 < argc) {
      svg_path = argv[++i];
    } else if (argv[i][0] != '-') {
      layout_path = argv[i];
    } else {
      std::printf("unknown option: %s\n", argv[i]);
      return 2;
    }
  }
  if (layout_path.empty()) {
    std::printf("usage: %s <layout.oargrid> [--router NAME] [--svg out.svg] [--list]\n",
                argv[0]);
    return 2;
  }

  std::string error;
  const auto grid = gen::load_grid(layout_path, &error);
  if (!grid) {
    std::printf("failed to load %s: %s\n", layout_path.c_str(), error.c_str());
    return 1;
  }
  if (const std::string problems = grid->validate(); !problems.empty()) {
    std::printf("invalid layout: %s\n", problems.c_str());
    return 1;
  }

  auto router = core::RouterRegistry::instance().create(router_name);
  if (!router) {
    std::printf("unknown router '%s'; use --list\n", router_name.c_str());
    return 2;
  }

  std::printf("layout %dx%dx%d, %zu pins, %.1f%% blocked\n", grid->h_dim(),
              grid->v_dim(), grid->m_dim(), grid->pins().size(),
              100.0 * grid->blocked_ratio());
  util::Timer timer;
  const auto result = router->route(*grid);
  const double seconds = timer.seconds();
  if (!result.connected) {
    std::printf("%s: UNROUTABLE (some pin is walled off)\n", router_name.c_str());
    return 1;
  }
  const std::string check = result.tree.validate(grid->pins());
  std::printf("%s: cost %.2f, %zu edges, %zu Steiner points, %.3f s%s\n",
              router_name.c_str(), result.cost, result.tree.num_edges(),
              result.kept_steiner.size(), seconds,
              check.empty() ? "" : "  [INVALID TREE]");
  if (!svg_path.empty()) {
    if (gen::save_svg(svg_path, *grid, &result.tree, result.kept_steiner)) {
      std::printf("wrote %s\n", svg_path.c_str());
    } else {
      std::printf("failed to write %s\n", svg_path.c_str());
      return 1;
    }
  }
  return check.empty() ? 0 : 1;
}
