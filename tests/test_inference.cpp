// Tests for the single-sample inference engine (DESIGN.md §11): the tiled
// eval-mode kernels, the InferenceScratch arena, and the incremental
// feature cache.
//
// This translation unit replaces the global allocation functions with
// counting wrappers so the zero-allocation acceptance criterion (no heap
// traffic in a warmed-up inference forward) is checked directly rather
// than inferred from arena statistics alone.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <new>
#include <vector>

#include "gen/random_layout.hpp"
#include "hanan/features.hpp"
#include "nn/gradcheck.hpp"
#include "nn/inference.hpp"
#include "rl/augment.hpp"
#include "rl/dataset.hpp"
#include "rl/selector.hpp"
#include "rl/trainer.hpp"
#include "util/rng.hpp"

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  ++g_allocs;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace oar {
namespace {

using hanan::HananGrid;
using hanan::Vertex;

rl::SelectorConfig config_direct() {
  // base 8 / depth 2: every conv hits a direct_conv<OC> or pointwise
  // specialization of the tiled engine.
  rl::SelectorConfig cfg;
  cfg.unet.in_channels = 7;
  cfg.unet.base_channels = 8;
  cfg.unet.depth = 2;
  cfg.unet.seed = 21;
  return cfg;
}

rl::SelectorConfig config_im2col() {
  // base 4: out-channel counts miss every direct specialization, forcing
  // the im2col + blocked-GEMM fallback.
  rl::SelectorConfig cfg;
  cfg.unet.in_channels = 7;
  cfg.unet.base_channels = 4;
  cfg.unet.depth = 1;
  cfg.unet.seed = 22;
  return cfg;
}

HananGrid make_grid(std::int32_t h, std::int32_t v, std::int32_t m,
                    std::uint64_t seed) {
  util::Rng rng(seed);
  gen::RandomGridSpec spec;
  spec.h = h;
  spec.v = v;
  spec.m = m;
  spec.min_pins = 4;
  spec.max_pins = 6;
  spec.min_obstacles = 4;
  spec.max_obstacles = 8;
  return gen::random_grid(spec, rng);
}

std::vector<Vertex> some_valid_vertices(const HananGrid& grid, std::size_t k,
                                        std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Vertex> out;
  while (out.size() < k) {
    const Vertex v =
        Vertex(rng.uniform_int(0, std::int64_t(grid.num_vertices()) - 1));
    if (grid.is_pin(v) || grid.is_blocked(v)) continue;
    bool dup = false;
    for (Vertex u : out) dup |= (u == v);
    if (!dup) out.push_back(v);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Train/eval parity and determinism (satellite 3).
// ---------------------------------------------------------------------------

void expect_parity(rl::SelectorConfig cfg, const HananGrid& grid) {
  rl::SteinerSelector selector(cfg);
  const std::vector<Vertex> extra = some_valid_vertices(grid, 2, 7);

  ASSERT_FALSE(selector.net().training());
  const std::vector<double> fast = selector.infer_fsp(grid, extra);

  selector.net().set_training(true);
  const std::vector<double> reference = selector.infer_fsp(grid, extra);
  selector.net().set_training(false);

  ASSERT_EQ(fast.size(), reference.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    const double tol = 1e-4 * std::max(1.0, std::abs(reference[i]));
    EXPECT_NEAR(fast[i], reference[i], tol) << "vertex priority " << i;
  }
}

TEST(InferenceEngine, EvalMatchesTrainingWithin1e4DirectPath) {
  expect_parity(config_direct(), make_grid(12, 12, 3, 101));
}

TEST(InferenceEngine, EvalMatchesTrainingWithin1e4Im2colPath) {
  expect_parity(config_im2col(), make_grid(9, 11, 2, 102));
}

TEST(InferenceEngine, EvalIsBitwiseDeterministic) {
  rl::SteinerSelector selector(config_direct());
  const HananGrid grid = make_grid(10, 10, 3, 103);
  const std::vector<Vertex> extra = some_valid_vertices(grid, 3, 9);

  const std::vector<double> a = selector.infer_fsp(grid, extra);
  // Interleave an unrelated layout to dirty the arena and feature cache.
  const HananGrid other = make_grid(7, 8, 2, 104);
  (void)selector.infer_fsp(other, {});
  const std::vector<double> b = selector.infer_fsp(grid, extra);

  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0);
}

TEST(InferenceEngine, GradCheckStillPassesAfterEvalUse) {
  // Inference forwards retain nothing; a later training pass must still
  // produce correct gradients on the reference path.  (Verified while
  // picking the seeds: gradcheck results here are bitwise identical with
  // and without the eval-mode warmup calls.)
  rl::SelectorConfig cfg = config_im2col();
  cfg.unet.seed = 24;
  rl::SteinerSelector selector(cfg);
  const HananGrid grid = make_grid(6, 6, 2, 105);
  (void)selector.infer_fsp(grid, {});
  (void)selector.infer_fsp(grid, some_valid_vertices(grid, 1, 3));

  const nn::Tensor input = rl::SteinerSelector::encode(grid);
  util::Rng rng(7);
  const nn::Tensor weights =
      nn::Tensor::randn({1, grid.h_dim(), grid.v_dim(), grid.m_dim()}, rng);
  // Same tolerances as the UNet gradcheck in test_unet.cpp.
  const nn::GradCheckResult result =
      nn::grad_check(selector.net(), input, weights, rng, 1e-2, 8e-2, 12);
  EXPECT_TRUE(result.ok) << "max_abs=" << result.max_abs_error
                         << " max_rel=" << result.max_rel_error
                         << " violations=" << result.violations;
  // grad_check flips the module into training mode; selectors hand it back.
  selector.net().set_training(false);
  (void)selector.infer_fsp(grid, {});
}

// ---------------------------------------------------------------------------
// Zero-allocation acceptance: a warmed-up inference forward performs no
// heap allocations (tentpole acceptance criterion).
// ---------------------------------------------------------------------------

TEST(InferenceEngine, WarmedUpForwardPerformsZeroHeapAllocations) {
  rl::SteinerSelector selector(config_direct());
  const HananGrid grid = make_grid(12, 12, 3, 106);

  // Pre-build the per-state extra-pin vectors so the loop body is exactly
  // the MCTS hot path: patch features, infer, read out.
  std::vector<std::vector<Vertex>> states;
  states.push_back({});
  states.push_back(some_valid_vertices(grid, 1, 31));
  states.push_back(some_valid_vertices(grid, 2, 32));
  states.push_back(some_valid_vertices(grid, 3, 33));

  std::vector<double> fsp;
  for (const auto& extra : states) selector.infer_fsp_into(grid, extra, fsp);

  const std::uint64_t grow_before = selector.net().inference_scratch().grow_events();
  const std::uint64_t allocs_before = g_allocs.load();
  for (int round = 0; round < 8; ++round) {
    for (const auto& extra : states) selector.infer_fsp_into(grid, extra, fsp);
  }
  const std::uint64_t allocs_after = g_allocs.load();
  const std::uint64_t grow_after = selector.net().inference_scratch().grow_events();

  EXPECT_EQ(allocs_after - allocs_before, 0u);
  EXPECT_EQ(grow_after - grow_before, 0u);
}

// ---------------------------------------------------------------------------
// Incremental feature encoding (satellite 4): property test.
// ---------------------------------------------------------------------------

TEST(FeatureCacheProperty, PatchedVolumesBitwiseMatchFreshEncodes) {
  util::Rng rng(2024);
  hanan::FeatureCache cache;
  // Revisions are globally unique, so the cache must rebuild exactly when
  // encode_into observes a revision it has not just served.  Consecutive
  // mutations between encodes collapse into one rebuild.
  std::uint64_t expected_rebuilds = 0;
  std::uint64_t last_served_revision = 0;

  for (int episode = 0; episode < 6; ++episode) {
    HananGrid grid = make_grid(std::int32_t(rng.uniform_int(5, 10)),
                               std::int32_t(rng.uniform_int(5, 10)),
                               std::int32_t(rng.uniform_int(2, 4)),
                               0xa0 + std::uint64_t(episode));
    std::vector<Vertex> selected;
    const std::size_t numel =
        std::size_t(hanan::kNumFeatureChannels) * std::size_t(grid.h_dim()) *
        std::size_t(grid.v_dim()) * std::size_t(grid.m_dim());
    std::vector<float> patched(numel);

    for (int step = 0; step < 12; ++step) {
      // Random episode dynamics: add a selection, drop one, or mutate the
      // grid itself (which must invalidate the cached base via revision()).
      const double dice = rng.uniform();
      if (dice < 0.5) {
        const auto fresh = some_valid_vertices(grid, selected.size() + 1,
                                               0xb0 + std::uint64_t(step));
        for (Vertex v : fresh) {
          bool dup = false;
          for (Vertex u : selected) dup |= (u == v);
          if (!dup) {
            selected.push_back(v);
            break;
          }
        }
      } else if (dice < 0.7 && !selected.empty()) {
        selected.pop_back();
      } else {
        const auto victims = some_valid_vertices(grid, 1, 0xc0 + std::uint64_t(step));
        if (rng.chance(0.5)) {
          grid.add_pin(victims[0]);
        } else {
          grid.block_vertex(victims[0]);
        }
        // Selections that became pins/obstacles are still encodable (both
        // paths write channel 0 the same way); keep them.
      }

      if (grid.revision() != last_served_revision) {
        ++expected_rebuilds;
        last_served_revision = grid.revision();
      }
      cache.encode_into(grid, selected, patched.data());
      const hanan::FeatureVolume fresh = hanan::encode_features(grid, selected);
      ASSERT_EQ(fresh.data.size(), patched.size());
      ASSERT_EQ(std::memcmp(patched.data(), fresh.data.data(),
                            patched.size() * sizeof(float)),
                0)
          << "episode " << episode << " step " << step;
    }
    EXPECT_EQ(cache.rebuilds(), expected_rebuilds);
  }
}

TEST(FeatureCacheProperty, FullAugmentationOrbitBitwiseMatches) {
  const HananGrid grid = make_grid(8, 6, 3, 107);
  const std::vector<Vertex> selected = some_valid_vertices(grid, 3, 17);

  // Keep all 16 transformed grids alive at distinct addresses; one cache
  // serves them all in sequence (worst case: every call re-keys).
  std::vector<HananGrid> orbit;
  std::vector<std::vector<Vertex>> orbit_selected;
  for (const rl::AugmentSpec& spec : rl::all_augmentations()) {
    orbit.push_back(rl::transform_grid(grid, spec));
    std::vector<Vertex> mapped;
    for (Vertex v : selected) mapped.push_back(rl::transform_vertex(grid, v, spec));
    orbit_selected.push_back(std::move(mapped));
  }

  hanan::FeatureCache cache;
  for (std::size_t i = 0; i < orbit.size(); ++i) {
    const hanan::FeatureVolume fresh =
        hanan::encode_features(orbit[i], orbit_selected[i]);
    std::vector<float> patched(fresh.data.size());
    cache.encode_into(orbit[i], orbit_selected[i], patched.data());
    // Twice: second call hits the cached base for this (grid, revision).
    ASSERT_EQ(std::memcmp(patched.data(), fresh.data.data(),
                          patched.size() * sizeof(float)),
              0)
        << "augmentation " << i;
    cache.encode_into(orbit[i], orbit_selected[i], patched.data());
    ASSERT_EQ(std::memcmp(patched.data(), fresh.data.data(),
                          patched.size() * sizeof(float)),
              0)
        << "augmentation " << i << " (cached)";
  }
}

// ---------------------------------------------------------------------------
// dataset_loss shape guard (satellite 2): mixed-size datasets batch by
// size, so stacking sees one shape per batch and the guard stays silent.
// ---------------------------------------------------------------------------

TEST(InferenceEngine, DatasetLossHandlesMixedSizeDatasets) {
  rl::SteinerSelector selector(config_im2col());
  rl::Dataset dataset;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    for (const auto& [h, v, m] :
         {std::tuple{6, 6, 2}, std::tuple{8, 5, 3}}) {
      rl::TrainingSample sample;
      sample.grid = make_grid(h, v, m, 0xd0 + seed);
      const auto n = std::size_t(sample.grid.num_vertices());
      sample.label.assign(n, 0.25f);
      sample.mask.assign(n, 1.0f);
      dataset.add(std::move(sample));
    }
  }
  EXPECT_EQ(dataset.num_sizes(), 2u);
  const double loss = rl::dataset_loss(selector, dataset, 4);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_GT(loss, 0.0);
}

}  // namespace
}  // namespace oar
