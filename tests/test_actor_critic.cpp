#include "mcts/actor_critic.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gen/random_layout.hpp"

namespace oar::mcts {
namespace {

rl::SelectorConfig tiny_config() {
  rl::SelectorConfig cfg;
  cfg.unet.base_channels = 4;
  cfg.unet.depth = 1;
  cfg.unet.seed = 21;
  return cfg;
}

HananGrid test_grid(std::uint64_t seed = 5) {
  util::Rng rng(seed);
  gen::RandomGridSpec spec;
  spec.h = 6;
  spec.v = 5;
  spec.m = 2;
  spec.min_pins = 4;
  spec.max_pins = 5;
  spec.min_obstacles = 2;
  spec.max_obstacles = 4;
  return gen::random_grid(spec, rng);
}

TEST(ActorCritic, PolicySumsToOne) {
  rl::SteinerSelector selector(tiny_config());
  const HananGrid grid = test_grid();
  ActorCritic ac(selector, grid);
  const auto fsp = ac.fsp({});
  const auto policy = ac.policy({}, -1, fsp);
  ASSERT_FALSE(policy.empty());
  double total = 0.0;
  for (const auto& [v, p] : policy) {
    EXPECT_GE(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ActorCritic, PolicyExcludesInvalidVertices) {
  rl::SteinerSelector selector(tiny_config());
  const HananGrid grid = test_grid();
  ActorCritic ac(selector, grid);
  const auto fsp = ac.fsp({});
  // Pick one valid vertex as "already selected".
  const auto first_policy = ac.policy({}, -1, fsp);
  ASSERT_FALSE(first_policy.empty());
  const Vertex taken = first_policy.front().first;
  const auto policy = ac.policy({taken}, grid.priority_of(taken), fsp);
  for (const auto& [v, p] : policy) {
    EXPECT_FALSE(grid.is_pin(v));
    EXPECT_FALSE(grid.is_blocked(v));
    EXPECT_NE(v, taken);
    // Priority ordering constraint of the combinatorial action space.
    EXPECT_GT(grid.priority_of(v), grid.priority_of(taken));
  }
}

TEST(ActorCritic, PolicyMatchesEquationOne) {
  // Hand-check eq. (1) on a tiny layout with no obstacles: weighted
  // probability of the k-th valid vertex is fsp_k * prod_{j<k} (1 - fsp_j).
  rl::SteinerSelector selector(tiny_config());
  HananGrid grid(3, 2, 1, {1.0, 1.0}, {1.0}, 1.0);
  grid.add_pin(grid.index(0, 0, 0));
  grid.add_pin(grid.index(2, 1, 0));
  ActorCritic ac(selector, grid);
  const auto fsp = ac.fsp({});
  const auto policy = ac.policy({}, -1, fsp);

  // Valid vertices in priority order.
  std::vector<double> f;
  for (std::int64_t p = 0; p < grid.num_vertices(); ++p) {
    const Vertex v = grid.vertex_at_priority(p);
    if (grid.is_pin(v) || grid.is_blocked(v)) continue;
    f.push_back(fsp[std::size_t(p)]);
  }
  ASSERT_EQ(policy.size(), f.size());
  std::vector<double> expected(f.size());
  double running = 1.0, total = 0.0;
  for (std::size_t i = 0; i < f.size(); ++i) {
    expected[i] = f[i] * running;
    running *= (1.0 - f[i]);
    total += expected[i];
  }
  for (std::size_t i = 0; i < f.size(); ++i) {
    EXPECT_NEAR(policy[i].second, expected[i] / total, 1e-9);
  }
}

TEST(ActorCritic, PolicyEmptyWhenNoHigherPriorityVertexLeft) {
  rl::SteinerSelector selector(tiny_config());
  const HananGrid grid = test_grid();
  ActorCritic ac(selector, grid);
  const auto fsp = ac.fsp({});
  const auto policy = ac.policy({}, grid.num_vertices() - 1, fsp);
  EXPECT_TRUE(policy.empty());
}

TEST(ActorCritic, CriticCompletesToBudget) {
  rl::SteinerSelector selector(tiny_config());
  const HananGrid grid = test_grid();
  ActorCritic ac(selector, grid);
  const auto fsp = ac.fsp({});
  const std::int32_t budget = std::int32_t(grid.pins().size()) - 2;
  const double predicted = ac.critic_cost({}, budget, fsp);
  EXPECT_GT(predicted, 0.0);
  // The critic's completion cannot be worse than never adding Steiner
  // points... it can, slightly, but redundant removal caps the damage:
  // compare within a loose factor.
  const double base = ac.exact_cost({});
  EXPECT_LE(predicted, base * 1.5);
}

TEST(ActorCritic, ExactCostMatchesRouterWithoutRemoval) {
  rl::SteinerSelector selector(tiny_config());
  const HananGrid grid = test_grid();
  ActorCritic ac(selector, grid);
  route::OarmstConfig cfg;
  cfg.remove_redundant_steiner = false;
  route::OarmstRouter router(grid, cfg);
  EXPECT_DOUBLE_EQ(ac.exact_cost({}), router.cost(grid.pins()));
}

TEST(ActorCritic, ExactCostMonotoneInObviousCase) {
  // Adding a Steiner point far from everything (as raw terminal, no
  // removal) can only increase or keep the cost.
  rl::SteinerSelector selector(tiny_config());
  const HananGrid grid = test_grid();
  ActorCritic ac(selector, grid);
  const double base = ac.exact_cost({});
  Vertex far = hanan::kInvalidVertex;
  for (Vertex v = grid.num_vertices() - 1; v >= 0; --v) {
    if (!grid.is_pin(v) && !grid.is_blocked(v)) {
      far = v;
      break;
    }
  }
  ASSERT_NE(far, hanan::kInvalidVertex);
  EXPECT_GE(ac.exact_cost({far}), base - 1e-9);
}

TEST(ActorCritic, WalledOffSteinerSelectionCostsInfinity) {
  // Regression: selecting an unblocked vertex that obstacles fully enclose
  // used to return the *partial* tree's cost, which is below the connected
  // base cost — so the search could actively prefer walling itself off.
  // With OarmstResult::cost = +inf on disconnect, such a selection can
  // never outrank any connected state.
  rl::SteinerSelector selector(tiny_config());
  HananGrid grid(5, 5, 1, std::vector<double>(4, 1.0), std::vector<double>(4, 1.0),
                 1.0);
  const Vertex enclosed = grid.index(2, 2, 0);
  for (const auto& [dh, dv] : {std::pair{-1, 0}, {1, 0}, {0, -1}, {0, 1}}) {
    grid.block_vertex(grid.index(2 + dh, 2 + dv, 0));
  }
  grid.add_pin(grid.index(0, 0, 0));
  grid.add_pin(grid.index(4, 4, 0));
  ActorCritic ac(selector, grid);

  const double base = ac.exact_cost({});
  ASSERT_TRUE(std::isfinite(base));
  const double walled = ac.exact_cost({enclosed});
  EXPECT_TRUE(std::isinf(walled));
  EXPECT_GT(walled, base);
}

}  // namespace
}  // namespace oar::mcts
