file(REMOVE_RECURSE
  "CMakeFiles/oar_route.dir/astar.cpp.o"
  "CMakeFiles/oar_route.dir/astar.cpp.o.d"
  "CMakeFiles/oar_route.dir/maze.cpp.o"
  "CMakeFiles/oar_route.dir/maze.cpp.o.d"
  "CMakeFiles/oar_route.dir/oarmst.cpp.o"
  "CMakeFiles/oar_route.dir/oarmst.cpp.o.d"
  "CMakeFiles/oar_route.dir/route_tree.cpp.o"
  "CMakeFiles/oar_route.dir/route_tree.cpp.o.d"
  "liboar_route.a"
  "liboar_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oar_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
