file(REMOVE_RECURSE
  "CMakeFiles/oar_nn.dir/activations.cpp.o"
  "CMakeFiles/oar_nn.dir/activations.cpp.o.d"
  "CMakeFiles/oar_nn.dir/conv3d.cpp.o"
  "CMakeFiles/oar_nn.dir/conv3d.cpp.o.d"
  "CMakeFiles/oar_nn.dir/gradcheck.cpp.o"
  "CMakeFiles/oar_nn.dir/gradcheck.cpp.o.d"
  "CMakeFiles/oar_nn.dir/group_norm.cpp.o"
  "CMakeFiles/oar_nn.dir/group_norm.cpp.o.d"
  "CMakeFiles/oar_nn.dir/linear.cpp.o"
  "CMakeFiles/oar_nn.dir/linear.cpp.o.d"
  "CMakeFiles/oar_nn.dir/loss.cpp.o"
  "CMakeFiles/oar_nn.dir/loss.cpp.o.d"
  "CMakeFiles/oar_nn.dir/optim.cpp.o"
  "CMakeFiles/oar_nn.dir/optim.cpp.o.d"
  "CMakeFiles/oar_nn.dir/pool3d.cpp.o"
  "CMakeFiles/oar_nn.dir/pool3d.cpp.o.d"
  "CMakeFiles/oar_nn.dir/residual_block.cpp.o"
  "CMakeFiles/oar_nn.dir/residual_block.cpp.o.d"
  "CMakeFiles/oar_nn.dir/serialize.cpp.o"
  "CMakeFiles/oar_nn.dir/serialize.cpp.o.d"
  "CMakeFiles/oar_nn.dir/tensor.cpp.o"
  "CMakeFiles/oar_nn.dir/tensor.cpp.o.d"
  "CMakeFiles/oar_nn.dir/unet3d.cpp.o"
  "CMakeFiles/oar_nn.dir/unet3d.cpp.o.d"
  "CMakeFiles/oar_nn.dir/value_net.cpp.o"
  "CMakeFiles/oar_nn.dir/value_net.cpp.o.d"
  "liboar_nn.a"
  "liboar_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oar_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
