# Empty compiler generated dependencies file for test_gen_baselines.
# This may be replaced when dependencies are built.
