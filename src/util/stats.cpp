#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace oar::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  sum_sq_ += x * x;
}

double RunningStats::mean() const { return n_ == 0 ? 0.0 : sum_ / static_cast<double>(n_); }
double RunningStats::min() const { return min_; }
double RunningStats::max() const { return max_; }

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  const double m = mean();
  const double num = sum_sq_ - static_cast<double>(n_) * m * m;
  return std::max(0.0, num / static_cast<double>(n_ - 1));
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  assert(p >= 0.0 && p <= 100.0);
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

double geomean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) {
    assert(v > 0.0);
    s += std::log(v);
  }
  return std::exp(s / static_cast<double>(values.size()));
}

}  // namespace oar::util
