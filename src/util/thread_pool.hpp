#pragma once

// Fixed-size thread pool used to parallelize embarrassingly parallel work:
// MCTS sample generation across layouts and per-layout routing in benches.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace oar::util {

class ThreadPool {
 public:
  /// `num_threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  /// Shared worker-count policy for config knobs: `requested > 0` is taken
  /// verbatim, `requested <= 0` means hardware_concurrency (at least 1).
  static std::size_t resolve_thread_count(std::int64_t requested);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; the future resolves with its result.
  template <typename F>
  auto submit(F&& f) -> std::future<decltype(f())> {
    using R = decltype(f());
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      jobs_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run fn(i) for i in [0, count) across the pool and wait for completion.
  /// The index space is split into min(count, size()) contiguous chunks, one
  /// task per chunk.  If calls throw, every chunk still runs to its own
  /// first failure before the first exception (in chunk order) is rethrown;
  /// later indices of a throwing chunk are skipped.
  ///
  /// Reentrancy contract: calling parallel_for from INSIDE a task running on
  /// this pool executes every index inline on the calling worker instead of
  /// enqueueing chunks.  The naive alternative deadlocks: the outer task
  /// occupies a worker while blocking on chunk futures that can only run on
  /// the workers the outer level already holds (with pool size 1 the very
  /// first nested call hangs forever).  Inline execution trades the lost
  /// nested parallelism for a guarantee of forward progress, so layered
  /// callers — a serve::RouterService routing fan-out whose engine itself
  /// fans out, an EvalServer client running on a pool task — degrade to
  /// serial instead of freezing.  Nested calls on a *different* pool are
  /// unaffected.  submit() from a worker never blocks and stays safe.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// True iff the calling thread is one of this pool's workers (the
  /// condition under which parallel_for runs inline).
  bool current_thread_in_pool() const;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> jobs_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace oar::util
