#pragma once

// Per-edge congestion accounting for negotiated full-chip routing
// (DESIGN.md §14).
//
// The CongestionMap tracks, for every grid edge, how many committed route
// trees currently use it (present usage) and how persistently it has been
// over capacity across negotiation iterations (history).  PathFinder-style
// negotiation turns both into an additive cost overlay on the shared
// HananGrid:
//
//   bias(e) = base(e) * ( present_factor * max(0, usage(e) + 1 - capacity)
//                         + history(e) )
//
// The `usage + 1` term prices the edge as the net being routed would leave
// it: an edge at capacity already costs extra, an edge below capacity is
// free.  Scaling by the base cost keeps penalties commensurate on grids
// whose step costs span 1..1000.  History is monotone non-decreasing: each
// negotiation iteration adds a fixed increment to every over-capacity edge,
// so chronically contested edges become expensive even when momentarily
// uncongested — the mechanism that breaks livelock between nets that keep
// displacing each other.
//
// Edges are addressed like HananGrid's edge blocks: slot = vertex * 3 + dir
// for the positive edge leaving `vertex`.

#include <cstdint>
#include <vector>

#include "hanan/hanan_grid.hpp"
#include "route/route_tree.hpp"

namespace oar::chip {

using hanan::Dir;
using hanan::HananGrid;
using hanan::Vertex;

/// (min-vertex, direction) slot of the edge between adjacent a and b.
std::size_t edge_slot(const HananGrid& grid, Vertex a, Vertex b);
Dir edge_dir(const HananGrid& grid, Vertex a, Vertex b);

class CongestionMap {
 public:
  /// `capacity` is the per-edge net limit (>= 1); the classic grid-graph
  /// model uses 1 — each unit edge carries one net.
  CongestionMap(const HananGrid& grid, std::int32_t capacity = 1);

  std::int32_t capacity() const { return capacity_; }
  std::int32_t usage(Vertex idx, Dir dir) const {
    return usage_[std::size_t(idx) * 3 + std::size_t(dir)];
  }
  double history(Vertex idx, Dir dir) const {
    return history_[std::size_t(idx) * 3 + std::size_t(dir)];
  }

  /// Adds / removes one unit of usage on every edge of `tree`.  rip_up
  /// asserts the usage was there (a tree can only be ripped after commit).
  void commit(const route::RouteTree& tree);
  void rip_up(const route::RouteTree& tree);

  /// Sum over edges of max(0, usage - capacity): the negotiation loop's
  /// convergence objective (0 = every edge within capacity).
  std::int64_t overflow() const;
  /// Number of edges currently over capacity.
  std::int64_t overflowed_edges() const;
  /// Sum of usage over all edges (0 exactly when nothing is committed).
  std::int64_t total_usage() const;

  /// True when any edge of `tree` is over capacity — the rip-up criterion
  /// for the reroute-only-overflowed iteration mode.
  bool tree_overflows(const route::RouteTree& tree) const;

  /// history(e) += increment for every over-capacity edge.  Called once
  /// per negotiation iteration; history never decreases.
  void add_history(double increment);

  /// Writes the cost overlay into `grid` (see file comment).  Returns true
  /// when the overlay changed and the grid's revision was bumped.
  bool apply_to(HananGrid& grid, double present_factor) const;

  /// Exact usage equality against a set of committed trees — the
  /// validation hook for tests and bench_chip: recounts from scratch and
  /// compares to the running tallies.
  bool matches(const std::vector<const route::RouteTree*>& trees) const;

 private:
  double base_edge_cost(std::size_t slot) const;

  const HananGrid* grid_;
  std::int32_t capacity_;
  std::vector<std::int32_t> usage_;   // per edge slot
  std::vector<double> history_;       // per edge slot, monotone
  mutable std::vector<double> bias_;  // apply_to scratch
};

}  // namespace oar::chip
