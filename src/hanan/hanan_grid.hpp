#pragma once

// 3D Hanan grid graph (Sec. 2.2 of the paper).
//
// The grid has H columns (x cuts), V rows (y cuts) and M routing layers.
// A vertex is addressed either by its (h, v, m) cell coordinate or by a
// flat index.  Edge costs are separable: moving between columns h and h+1
// costs x_step(h) on every row/layer, moving between rows v and v+1 costs
// y_step(v), and moving between adjacent layers costs the layout-wide via
// cost.  Obstacles are blocked vertices; additionally, individual edges can
// be blocked (needed when an obstacle spans two adjacent cuts with no cut
// strictly inside it, so that neither endpoint is blocked but the segment
// still crosses the obstacle interior).
//
// Two construction paths:
//   * HananGrid::from_layout(layout): geometric construction — consolidate
//     pins/obstacle boundaries of all layers into one set of x/y cuts, then
//     place objects back on their layers (paper Sec. 2.2).
//   * the direct constructor: "grid world" used by the random-layout
//     generator, which (like the paper's Table 1 subsets) specifies layouts
//     directly by their Hanan-graph dimensions and per-step costs.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "geom/layout.hpp"

namespace oar::hanan {

using Vertex = std::int32_t;
constexpr Vertex kInvalidVertex = -1;

/// (h, v, m) cell coordinate of a Hanan vertex.
struct Cell {
  std::int32_t h = 0;
  std::int32_t v = 0;
  std::int32_t m = 0;

  friend auto operator<=>(const Cell&, const Cell&) = default;
};

/// Direction of the "positive" edge leaving a vertex; used for edge blocks.
enum class Dir : std::uint8_t { kPosX = 0, kPosY = 1, kPosZ = 2 };

class HananGrid {
 public:
  HananGrid() = default;

  /// Grid-world constructor.  `x_step` has size H-1, `y_step` size V-1; all
  /// steps must be positive.  `blocked` (if non-empty) has size H*V*M.
  HananGrid(std::int32_t H, std::int32_t V, std::int32_t M,
            std::vector<double> x_step, std::vector<double> y_step,
            double via_cost, std::vector<std::uint8_t> blocked = {},
            std::vector<Vertex> pins = {});

  /// Geometric construction from a physical layout (Sec. 2.2).
  static HananGrid from_layout(const geom::Layout& layout);

  std::int32_t h_dim() const { return h_; }
  std::int32_t v_dim() const { return v_; }
  std::int32_t m_dim() const { return m_; }
  std::int64_t num_vertices() const { return std::int64_t(h_) * v_ * m_; }

  double via_cost() const { return via_cost_; }
  double x_step(std::int32_t h) const { return x_step_[std::size_t(h)]; }
  double y_step(std::int32_t v) const { return y_step_[std::size_t(v)]; }

  /// Flat index of cell (h, v, m); layer-major so that one layer is a
  /// contiguous H*V slab.
  Vertex index(std::int32_t h, std::int32_t v, std::int32_t m) const {
    return Vertex((std::int64_t(m) * v_ + v) * h_ + h);
  }
  Vertex index(const Cell& c) const { return index(c.h, c.v, c.m); }

  Cell cell(Vertex idx) const {
    const std::int32_t h = idx % h_;
    const std::int32_t rest = idx / h_;
    return Cell{h, rest % v_, rest / v_};
  }

  bool is_blocked(Vertex idx) const { return blocked_[std::size_t(idx)] != 0; }
  bool is_pin(Vertex idx) const { return pin_mask_[std::size_t(idx)] != 0; }
  const std::vector<Vertex>& pins() const { return pins_; }

  void add_pin(Vertex idx);
  /// Removes every pin (the mask and the ordered list).  Lets one shared
  /// grid present a different net's pins per routing call (src/chip/)
  /// without re-copying the whole grid.
  void clear_pins();
  void block_vertex(Vertex idx);
  void block_edge(Vertex idx, Dir dir);

  /// Per-edge additive cost overlay ("bias"), keyed like edge blocks by the
  /// positive edge leaving a vertex.  The overlay is what makes committed
  /// routes *soft* obstacles for full-chip negotiated routing: congestion
  /// penalties raise an edge's cost without removing it from the graph.
  /// Biases must be >= 0 (Dijkstra requires non-negative weights) and are
  /// included in edge_cost()/cost_between()/for_each_neighbor(), so every
  /// consumer — including MazeRouter's CSR adjacency cache — sees them.
  /// Every overlay mutation bumps revision(), which is what keeps those
  /// caches coherent.
  bool has_edge_cost_bias() const { return !edge_bias_.empty(); }
  double edge_cost_bias(Vertex idx, Dir dir) const {
    return edge_bias_.empty()
               ? 0.0
               : edge_bias_[std::size_t(idx) * 3 + std::size_t(dir)];
  }
  void set_edge_cost_bias(Vertex idx, Dir dir, double bias);
  /// Bulk overlay swap: `bias` is either empty (no overlay) or one value
  /// per (vertex, dir) slot, laid out idx*3 + dir.  Returns true when the
  /// overlay actually changed (and revision() was bumped); re-applying an
  /// identical overlay is free and keeps downstream caches warm.
  bool set_edge_cost_biases(std::vector<double> bias);
  void clear_edge_cost_biases();

  /// Cost of the edge between two adjacent vertices *excluding* any bias
  /// overlay — the physical wirelength metric reported by the full-chip
  /// router while searches run on the biased costs.
  double base_cost_between(Vertex a, Vertex b) const;

  /// True when the positive edge leaving `idx` in `dir` exists in-bounds,
  /// is not explicitly blocked, and neither endpoint is a blocked vertex.
  bool edge_usable(Vertex idx, Dir dir) const;

  /// Cost of the positive edge leaving `idx` in `dir` (unchecked).
  double edge_cost(Vertex idx, Dir dir) const;

  /// Cost between two adjacent vertices (asserts adjacency).
  double cost_between(Vertex a, Vertex b) const;

  /// Invoke fn(neighbor, cost) for every usable incident edge.  Costs
  /// include the bias overlay; a negative-direction edge carries the bias
  /// of the neighbor's positive slot (one slot per physical edge).
  template <typename Fn>
  void for_each_neighbor(Vertex idx, Fn&& fn) const {
    const Cell c = cell(idx);
    const Vertex layer_stride = Vertex(h_) * v_;
    if (edge_bias_.empty()) {
      if (c.h + 1 < h_ && edge_usable(idx, Dir::kPosX)) fn(idx + 1, x_step_[std::size_t(c.h)]);
      if (c.h > 0 && edge_usable(idx - 1, Dir::kPosX)) fn(idx - 1, x_step_[std::size_t(c.h - 1)]);
      if (c.v + 1 < v_ && edge_usable(idx, Dir::kPosY)) fn(idx + h_, y_step_[std::size_t(c.v)]);
      if (c.v > 0 && edge_usable(idx - h_, Dir::kPosY)) fn(idx - h_, y_step_[std::size_t(c.v - 1)]);
      if (c.m + 1 < m_ && edge_usable(idx, Dir::kPosZ)) fn(idx + layer_stride, via_cost_);
      if (c.m > 0 && edge_usable(idx - layer_stride, Dir::kPosZ)) fn(idx - layer_stride, via_cost_);
      return;
    }
    if (c.h + 1 < h_ && edge_usable(idx, Dir::kPosX))
      fn(idx + 1, x_step_[std::size_t(c.h)] + edge_cost_bias(idx, Dir::kPosX));
    if (c.h > 0 && edge_usable(idx - 1, Dir::kPosX))
      fn(idx - 1, x_step_[std::size_t(c.h - 1)] + edge_cost_bias(idx - 1, Dir::kPosX));
    if (c.v + 1 < v_ && edge_usable(idx, Dir::kPosY))
      fn(idx + h_, y_step_[std::size_t(c.v)] + edge_cost_bias(idx, Dir::kPosY));
    if (c.v > 0 && edge_usable(idx - h_, Dir::kPosY))
      fn(idx - h_, y_step_[std::size_t(c.v - 1)] + edge_cost_bias(idx - h_, Dir::kPosY));
    if (c.m + 1 < m_ && edge_usable(idx, Dir::kPosZ))
      fn(idx + layer_stride, via_cost_ + edge_cost_bias(idx, Dir::kPosZ));
    if (c.m > 0 && edge_usable(idx - layer_stride, Dir::kPosZ))
      fn(idx - layer_stride, via_cost_ + edge_cost_bias(idx - layer_stride, Dir::kPosZ));
  }

  /// Lexicographic (h, v, m) selection priority used by the combinatorial
  /// MCTS action ordering.  Lower value = higher priority.
  std::int64_t priority_of(Vertex idx) const {
    const Cell c = cell(idx);
    return (std::int64_t(c.h) * v_ + c.v) * m_ + c.m;
  }
  Vertex vertex_at_priority(std::int64_t p) const {
    const std::int32_t m = std::int32_t(p % m_);
    const std::int64_t rest = p / m_;
    return index(std::int32_t(rest / v_), std::int32_t(rest % v_), m);
  }

  /// Fraction of blocked vertices (grid-world analogue of Fig. 10's
  /// obstacle ratio).
  double blocked_ratio() const;

  /// Geometric cut coordinates when constructed from a layout (empty in
  /// grid world, where cut k is simply at the cumulative step distance).
  const std::vector<double>& x_cuts() const { return x_cuts_; }
  const std::vector<double>& y_cuts() const { return y_cuts_; }

  /// Empty string when internally consistent, else a problem report.
  std::string validate() const;

  /// Globally unique stamp, refreshed by every topology mutation (pins,
  /// blocked vertices/edges).  Lets consumers cache derived structures
  /// (e.g. MazeRouter's adjacency arrays) keyed on (address, revision):
  /// two grids only ever share both when their topology is identical.
  std::uint64_t revision() const { return revision_; }

 private:
  static std::uint64_t next_revision();

  std::int32_t h_ = 0, v_ = 0, m_ = 0;
  std::vector<double> x_step_;   // size h_-1
  std::vector<double> y_step_;   // size v_-1
  double via_cost_ = 1.0;
  std::vector<std::uint8_t> blocked_;     // per vertex
  std::vector<std::uint8_t> edge_block_;  // per vertex, bit per Dir
  std::vector<double> edge_bias_;         // per vertex, 3 slots per Dir; empty = no overlay
  std::vector<std::uint8_t> pin_mask_;    // per vertex
  std::vector<Vertex> pins_;
  std::vector<double> x_cuts_, y_cuts_;
  std::uint64_t revision_ = next_revision();
};

}  // namespace oar::hanan
