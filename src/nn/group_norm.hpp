#pragma once

// Group normalization over a (C, D0, D1, D2) volume.
//
// The paper's residual blocks use per-feature normalization; since our
// modules run one sample at a time (batch statistics are unavailable),
// GroupNorm is the standard batch-size-independent substitute — with
// num_groups == num_channels it degenerates to InstanceNorm.  Learnable
// per-channel affine (gamma, beta).

#include "nn/module.hpp"

namespace oar::nn {

class GroupNorm : public Module {
 public:
  GroupNorm(std::int32_t num_channels, std::int32_t num_groups, float eps = 1e-5f);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  /// (N, C, D0, D1, D2): statistics stay per sample per group, so batched
  /// output matches the per-sample forward exactly.
  Tensor forward_batch(const Tensor& input) override;
  void collect_parameters(std::vector<Parameter*>& out) override;

  // Single-sample inference kernels (no retention; same double-precision
  // group statistics as the training forward).  `spatial` is the per-
  // channel voxel count D0*D1*D2.
  /// out = gn(in); in == out aliasing is allowed.  Parameter order follows
  /// the repo-wide *_into convention (DESIGN.md §13): output buffer last.
  void infer_into(const float* in, std::int64_t spatial, float* out) const;

  /// x = relu(gn(x)) in place — the norm1 position of a residual block.
  void infer_relu_inplace(float* x, std::int64_t spatial) const;
  /// x = relu(gn(x) + skip) in place — norm2 + skip-add + output ReLU.
  void infer_add_relu_inplace(float* x, const float* skip,
                              std::int64_t spatial) const;

  std::int32_t num_channels() const { return channels_; }
  std::int32_t num_groups() const { return groups_; }
  float eps() const { return eps_; }
  const Parameter& gamma() const { return gamma_; }
  const Parameter& beta() const { return beta_; }

 private:
  std::int32_t channels_, groups_;
  float eps_;
  Parameter gamma_;  // (C)
  Parameter beta_;   // (C)
  Tensor input_;
  Tensor normalized_;             // (x - mu) / sigma, cached for backward
  std::vector<float> inv_sigma_;  // per group
};

}  // namespace oar::nn
