#include "nn/linear.hpp"

#include <cmath>

namespace oar::nn {

Linear::Linear(std::int32_t in_features, std::int32_t out_features, util::Rng& rng)
    : in_features_(in_features), out_features_(out_features) {
  const float stddev = std::sqrt(2.0f / float(in_features));
  weight_ = Parameter("linear.weight",
                      Tensor::randn({out_features, in_features}, rng, stddev));
  bias_ = Parameter("linear.bias", Tensor({out_features}));
}

void Linear::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&weight_);
  out.push_back(&bias_);
}

Tensor Linear::forward(const Tensor& input) {
  assert(input.numel() == in_features_);
  input_ = input;
  Tensor out({out_features_});
  const float* x = input.data();
  const float* w = weight_.value.data();
  for (std::int32_t o = 0; o < out_features_; ++o) {
    double s = bias_.value[o];
    const float* row = w + std::int64_t(o) * in_features_;
    for (std::int32_t i = 0; i < in_features_; ++i) s += double(row[i]) * x[i];
    out[o] = float(s);
  }
  return out;
}

Tensor Linear::backward(const Tensor& grad_output) {
  assert(grad_output.numel() == out_features_);
  Tensor grad_input(input_.shape());
  const float* x = input_.data();
  const float* go = grad_output.data();
  const float* w = weight_.value.data();
  float* gw = weight_.grad.data();
  float* gb = bias_.grad.data();
  float* gi = grad_input.data();
  for (std::int32_t o = 0; o < out_features_; ++o) {
    const float g = go[o];
    gb[o] += g;
    const float* row = w + std::int64_t(o) * in_features_;
    float* grow = gw + std::int64_t(o) * in_features_;
    for (std::int32_t i = 0; i < in_features_; ++i) {
      grow[i] += g * x[i];
      gi[i] += g * row[i];
    }
  }
  return grad_input;
}

Tensor GlobalAvgPool3d::forward(const Tensor& input) {
  assert(input.dim() == 4);
  in_shape_ = input.shape();
  const std::int32_t C = input.shape(0);
  const std::int64_t spatial = input.numel() / C;
  Tensor out({C});
  const float* x = input.data();
  for (std::int32_t c = 0; c < C; ++c) {
    double s = 0.0;
    for (std::int64_t i = 0; i < spatial; ++i) s += x[std::int64_t(c) * spatial + i];
    out[c] = float(s / double(spatial));
  }
  return out;
}

Tensor GlobalAvgPool3d::backward(const Tensor& grad_output) {
  assert(!in_shape_.empty());
  const std::int32_t C = in_shape_[0];
  Tensor grad_input(in_shape_);
  const std::int64_t spatial = grad_input.numel() / C;
  float* gi = grad_input.data();
  for (std::int32_t c = 0; c < C; ++c) {
    const float g = grad_output[c] / float(spatial);
    for (std::int64_t i = 0; i < spatial; ++i) gi[std::int64_t(c) * spatial + i] = g;
  }
  return grad_input;
}

}  // namespace oar::nn
