#pragma once

// First-order optimizers over a parameter list.

#include <vector>

#include "nn/module.hpp"

namespace oar::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies one update from the accumulated gradients and clears them.
  virtual void step() = 0;

  void zero_grad() {
    for (Parameter* p : params_) p->grad.zero();
  }

  /// Scales gradients so their global L2 norm is at most `max_norm`.
  /// Returns the pre-clip norm.
  double clip_grad_norm(double max_norm);

  const std::vector<Parameter*>& params() const { return params_; }

 protected:
  std::vector<Parameter*> params_;
};

class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Parameter*> params, double lr, double momentum = 0.9,
      double weight_decay = 0.0);
  void step() override;

  void set_lr(double lr) { lr_ = lr; }
  double lr() const { return lr_; }

 private:
  double lr_, momentum_, weight_decay_;
  std::vector<Tensor> velocity_;
};

class Adam : public Optimizer {
 public:
  Adam(std::vector<Parameter*> params, double lr, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8, double weight_decay = 0.0);
  void step() override;

  void set_lr(double lr) { lr_ = lr; }
  double lr() const { return lr_; }

  // Full optimizer state, exposed for checkpoint/resume (nn/serialize):
  // the step counter drives bias correction, m_/v_ are the per-parameter
  // first/second moment estimates (same order and shapes as params()).
  std::int64_t step_count() const { return t_; }
  void set_step_count(std::int64_t t) { t_ = t; }
  std::vector<Tensor>& moments1() { return m_; }
  std::vector<Tensor>& moments2() { return v_; }

 private:
  double lr_, beta1_, beta2_, eps_, weight_decay_;
  std::int64_t t_ = 0;
  std::vector<Tensor> m_, v_;
};

}  // namespace oar::nn
