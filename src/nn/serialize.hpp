#pragma once

// Binary checkpointing of module parameters and full training state.
//
// Weights-only format (OARNN1): magic "OARNN1\n", int32 parameter count,
// then per parameter: int32 name length + bytes, int32 rank, int32 dims...,
// float32 data.  Loading verifies that names and shapes match the module
// being restored and leaves the module untouched on any mismatch.
//
// Training checkpoint format (OARCK1, versioned + checksummed):
//   magic "OARCK1\n"
//   int32  version (currently 1)
//   uint64 payload size in bytes
//   payload:
//     int32    stage index
//     RNG      4x uint64 xoshiro words, uint8 spare flag, double spare
//     params   same block as OARNN1 body (count + name/shape/data records)
//     Adam     int64 step count, then per parameter: float32 m data,
//              float32 v data (shapes implied by the parameter block)
//   uint64 FNV-1a64 checksum of the payload
// The file is written to "<path>.tmp" and renamed into place, so a crash
// mid-write never clobbers the previous checkpoint; loading rejects
// truncated or corrupted files via the size and checksum fields before any
// state is modified.

#include <string>

#include "nn/module.hpp"
#include "nn/optim.hpp"
#include "util/rng.hpp"

namespace oar::nn {

/// Writes all parameters of `module` to `path`.  Returns false on I/O error.
bool save_parameters(Module& module, const std::string& path);

/// Restores parameters saved by save_parameters.  Returns false on I/O
/// error or any name/shape mismatch; the module is left unchanged unless
/// the whole file validates.
bool load_parameters(Module& module, const std::string& path);

/// Copies parameter values from `src` into `dst` (identical architectures
/// required; asserts on shape mismatch).  Used to clone a selector per
/// worker thread for parallel sample generation and parallel fitting.
void copy_parameters(Module& dst, Module& src);

/// Atomically writes a full training checkpoint (module weights, Adam
/// moments + step count, RNG stream, stage index) to `path` via a temp
/// file + rename.  Returns false on I/O error.
bool save_training_checkpoint(const std::string& path, Module& module,
                              Adam& optimizer, const util::RngState& rng,
                              std::int32_t stage_index);

/// Restores a checkpoint written by save_training_checkpoint.  All state is
/// validated (magic, version, payload size, checksum, parameter names and
/// shapes, optimizer arity) before anything is modified: on failure the
/// module, optimizer, and outputs are left exactly as they were.
bool load_training_checkpoint(const std::string& path, Module& module,
                              Adam& optimizer, util::RngState* rng,
                              std::int32_t* stage_index);

}  // namespace oar::nn
