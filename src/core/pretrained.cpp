#include "core/pretrained.hpp"

#include <cstdlib>
#include <filesystem>

#include "rl/trainer.hpp"
#include "util/logging.hpp"

#ifndef OARSMTRL_SOURCE_DIR
#define OARSMTRL_SOURCE_DIR "."
#endif

namespace oar::core {

rl::SelectorConfig pretrained_selector_config() {
  rl::SelectorConfig config;
  config.unet.in_channels = 7;
  config.unet.base_channels = 8;
  config.unet.depth = 2;
  config.unet.seed = 0x0a25;
  return config;
}

std::string default_checkpoint_path() {
  if (const char* env = std::getenv("OARSMTRL_MODEL"); env != nullptr && *env) {
    return env;
  }
  return std::string(OARSMTRL_SOURCE_DIR) + "/models/pretrained.bin";
}

std::shared_ptr<rl::SteinerSelector> load_pretrained(const std::string& path) {
  if (!std::filesystem::exists(path)) return nullptr;
  auto selector = std::make_shared<rl::SteinerSelector>(pretrained_selector_config());
  if (!selector->load(path)) {
    util::log_warn("failed to load checkpoint ", path);
    return nullptr;
  }
  return selector;
}

std::shared_ptr<rl::SteinerSelector> load_or_train_pretrained(
    int fallback_stages, const std::string& path) {
  if (auto selector = load_pretrained(path)) {
    util::log_info("loaded pretrained selector from ", path);
    return selector;
  }
  util::log_info("no checkpoint at ", path, "; quick-training ", fallback_stages,
                 " stages");
  auto selector = std::make_shared<rl::SteinerSelector>(pretrained_selector_config());
  rl::TrainConfig config;
  config.sizes = {{10, 10, 2}, {12, 12, 3}};
  config.layouts_per_size = 6;
  config.stages = fallback_stages;
  config.epochs_per_stage = 2;
  config.batch_size = 16;
  config.mcts.iterations_per_move = 48;
  config.curriculum_stages = std::max(1, fallback_stages / 2);
  rl::CombTrainer trainer(*selector, config);
  trainer.train();
  return selector;
}

}  // namespace oar::core
