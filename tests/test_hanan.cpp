#include "hanan/hanan_grid.hpp"

#include <gtest/gtest.h>

namespace oar::hanan {
namespace {

HananGrid unit_grid(std::int32_t h, std::int32_t v, std::int32_t m, double via = 1.0) {
  return HananGrid(h, v, m, std::vector<double>(std::size_t(h - 1), 1.0),
                   std::vector<double>(std::size_t(v - 1), 1.0), via);
}

class IndexRoundTripTest
    : public ::testing::TestWithParam<std::tuple<std::int32_t, std::int32_t, std::int32_t>> {};

TEST_P(IndexRoundTripTest, CellIndexRoundTrip) {
  const auto [H, V, M] = GetParam();
  const HananGrid grid = unit_grid(H, V, M);
  for (Vertex idx = 0; idx < grid.num_vertices(); ++idx) {
    const Cell c = grid.cell(idx);
    EXPECT_EQ(grid.index(c), idx);
    EXPECT_GE(c.h, 0);
    EXPECT_LT(c.h, H);
    EXPECT_GE(c.v, 0);
    EXPECT_LT(c.v, V);
    EXPECT_GE(c.m, 0);
    EXPECT_LT(c.m, M);
  }
}

TEST_P(IndexRoundTripTest, PriorityRoundTripAndLexicographicOrder) {
  const auto [H, V, M] = GetParam();
  const HananGrid grid = unit_grid(H, V, M);
  std::int64_t prev = -1;
  // Walking (h, v, m) lexicographically must produce increasing priority.
  for (std::int32_t h = 0; h < H; ++h) {
    for (std::int32_t v = 0; v < V; ++v) {
      for (std::int32_t m = 0; m < M; ++m) {
        const Vertex idx = grid.index(h, v, m);
        const std::int64_t p = grid.priority_of(idx);
        EXPECT_EQ(p, prev + 1);
        EXPECT_EQ(grid.vertex_at_priority(p), idx);
        prev = p;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, IndexRoundTripTest,
                         ::testing::Values(std::tuple{1, 1, 1}, std::tuple{4, 3, 2},
                                           std::tuple{5, 5, 1}, std::tuple{2, 7, 3},
                                           std::tuple{9, 4, 6}));

TEST(HananGrid, NeighborCostsMatchSteps) {
  HananGrid grid(3, 3, 2, {2.0, 5.0}, {1.0, 7.0}, 4.0);
  const Vertex center = grid.index(1, 1, 0);
  std::map<Vertex, double> nbrs;
  grid.for_each_neighbor(center, [&](Vertex n, double c) { nbrs[n] = c; });
  EXPECT_EQ(nbrs.size(), 5u);  // 4 in-plane + 1 via up
  EXPECT_DOUBLE_EQ(nbrs[grid.index(2, 1, 0)], 5.0);
  EXPECT_DOUBLE_EQ(nbrs[grid.index(0, 1, 0)], 2.0);
  EXPECT_DOUBLE_EQ(nbrs[grid.index(1, 2, 0)], 7.0);
  EXPECT_DOUBLE_EQ(nbrs[grid.index(1, 0, 0)], 1.0);
  EXPECT_DOUBLE_EQ(nbrs[grid.index(1, 1, 1)], 4.0);
}

TEST(HananGrid, BlockedVertexRemovesIncidentEdges) {
  HananGrid grid = unit_grid(3, 3, 1);
  grid.block_vertex(grid.index(1, 1, 0));
  int count = 0;
  grid.for_each_neighbor(grid.index(0, 1, 0), [&](Vertex, double) { ++count; });
  EXPECT_EQ(count, 2);  // up and down remain; right is blocked
  // Neighbors of the blocked vertex itself: none are usable.
  int blocked_count = 0;
  grid.for_each_neighbor(grid.index(1, 1, 0), [&](Vertex, double) { ++blocked_count; });
  EXPECT_EQ(blocked_count, 0);
}

TEST(HananGrid, ExplicitEdgeBlock) {
  HananGrid grid = unit_grid(2, 1, 1);
  EXPECT_TRUE(grid.edge_usable(grid.index(0, 0, 0), Dir::kPosX));
  grid.block_edge(grid.index(0, 0, 0), Dir::kPosX);
  EXPECT_FALSE(grid.edge_usable(grid.index(0, 0, 0), Dir::kPosX));
}

TEST(HananGrid, CostBetweenAdjacent) {
  HananGrid grid(3, 2, 2, {2.0, 3.0}, {6.0}, 9.0);
  EXPECT_DOUBLE_EQ(grid.cost_between(grid.index(0, 0, 0), grid.index(1, 0, 0)), 2.0);
  EXPECT_DOUBLE_EQ(grid.cost_between(grid.index(2, 0, 0), grid.index(1, 0, 0)), 3.0);
  EXPECT_DOUBLE_EQ(grid.cost_between(grid.index(1, 0, 0), grid.index(1, 1, 0)), 6.0);
  EXPECT_DOUBLE_EQ(grid.cost_between(grid.index(1, 1, 0), grid.index(1, 1, 1)), 9.0);
}

TEST(HananGrid, PinManagement) {
  HananGrid grid = unit_grid(3, 3, 1);
  const Vertex p = grid.index(2, 2, 0);
  EXPECT_FALSE(grid.is_pin(p));
  grid.add_pin(p);
  grid.add_pin(p);  // duplicate is a no-op
  EXPECT_TRUE(grid.is_pin(p));
  EXPECT_EQ(grid.pins().size(), 1u);
}

TEST(HananGrid, BlockedRatio) {
  HananGrid grid = unit_grid(2, 2, 1);
  EXPECT_DOUBLE_EQ(grid.blocked_ratio(), 0.0);
  grid.block_vertex(grid.index(0, 0, 0));
  EXPECT_DOUBLE_EQ(grid.blocked_ratio(), 0.25);
}

TEST(HananGrid, ValidateReportsProblems) {
  HananGrid good = unit_grid(3, 3, 2);
  EXPECT_EQ(good.validate(), "");
  HananGrid bad(3, 1, 1, {1.0, -2.0}, {}, 1.0);
  EXPECT_NE(bad.validate().find("non-positive x step"), std::string::npos);
}

TEST(FromLayout, BuildsCutsFromPinsAndObstacles) {
  geom::Layout layout(100, 100, 2, 3.0);
  layout.add_pin(10, 20, 0);
  layout.add_pin(80, 70, 1);
  layout.add_obstacle(geom::Rect(30, 30, 50, 60), 0);
  const HananGrid grid = HananGrid::from_layout(layout);
  // x cuts: 10, 30, 50, 80; y cuts: 20, 30, 60, 70.
  EXPECT_EQ(grid.h_dim(), 4);
  EXPECT_EQ(grid.v_dim(), 4);
  EXPECT_EQ(grid.m_dim(), 2);
  EXPECT_DOUBLE_EQ(grid.x_step(0), 20.0);
  EXPECT_DOUBLE_EQ(grid.x_step(1), 20.0);
  EXPECT_DOUBLE_EQ(grid.x_step(2), 30.0);
  EXPECT_DOUBLE_EQ(grid.via_cost(), 3.0);
  EXPECT_EQ(grid.pins().size(), 2u);
  EXPECT_EQ(grid.validate(), "");
}

TEST(FromLayout, ObstacleBlocksInteriorNotBoundary) {
  geom::Layout layout(100, 100, 1, 1.0);
  layout.add_pin(0, 0, 0);
  layout.add_pin(40, 40, 0);  // creates a cut strictly inside the obstacle
  layout.add_obstacle(geom::Rect(20, 20, 60, 60), 0);
  const HananGrid grid = HananGrid::from_layout(layout);
  // x cuts: 0, 20, 40, 60; y cuts the same.
  // (40, 40) is strictly inside the obstacle -> blocked... but it is a pin.
  // Use a non-pin interior vertex instead: none other than (40,40) here, so
  // check boundary vertices are unblocked.
  EXPECT_FALSE(grid.is_blocked(grid.index(1, 1, 0)));  // (20,20) corner
  EXPECT_FALSE(grid.is_blocked(grid.index(3, 2, 0)));  // (60,40) boundary
}

TEST(EdgeCostBias, OverlayAddsToCostsAndBumpsRevision) {
  HananGrid grid = unit_grid(3, 3, 2, 1.5);
  const Vertex a = grid.index(0, 0, 0);
  const Vertex bx = grid.index(1, 0, 0);
  const Vertex bz = grid.index(0, 0, 1);
  EXPECT_FALSE(grid.has_edge_cost_bias());
  EXPECT_DOUBLE_EQ(grid.cost_between(a, bx), 1.0);

  const auto rev0 = grid.revision();
  grid.set_edge_cost_bias(a, Dir::kPosX, 2.0);
  EXPECT_TRUE(grid.has_edge_cost_bias());
  EXPECT_GT(grid.revision(), rev0);
  EXPECT_DOUBLE_EQ(grid.edge_cost_bias(a, Dir::kPosX), 2.0);
  // Both travel directions across the edge pay the bias; base stays.
  EXPECT_DOUBLE_EQ(grid.cost_between(a, bx), 3.0);
  EXPECT_DOUBLE_EQ(grid.cost_between(bx, a), 3.0);
  EXPECT_DOUBLE_EQ(grid.base_cost_between(a, bx), 1.0);
  EXPECT_DOUBLE_EQ(grid.cost_between(a, bz), 1.5);  // unbiased via
  EXPECT_EQ(grid.validate(), "");

  // for_each_neighbor reports the biased weight.
  bool seen = false;
  grid.for_each_neighbor(a, [&](Vertex nbr, double w) {
    if (nbr == bx) {
      EXPECT_DOUBLE_EQ(w, 3.0);
      seen = true;
    }
  });
  EXPECT_TRUE(seen);
  // ... and the negative-direction traversal of the same edge too.
  grid.for_each_neighbor(bx, [&](Vertex nbr, double w) {
    if (nbr == a) EXPECT_DOUBLE_EQ(w, 3.0);
  });

  // Setting the same value again must not invalidate caches.
  const auto rev1 = grid.revision();
  grid.set_edge_cost_bias(a, Dir::kPosX, 2.0);
  EXPECT_EQ(grid.revision(), rev1);

  grid.clear_edge_cost_biases();
  EXPECT_FALSE(grid.has_edge_cost_bias());
  EXPECT_GT(grid.revision(), rev1);
  EXPECT_DOUBLE_EQ(grid.cost_between(a, bx), 1.0);
}

TEST(EdgeCostBias, BulkSetterShortCircuitsOnEqualOverlay) {
  HananGrid grid = unit_grid(2, 2, 1);
  std::vector<double> bias(std::size_t(grid.num_vertices()) * 3, 0.0);
  bias[std::size_t(grid.index(0, 0, 0)) * 3 + std::size_t(Dir::kPosY)] = 4.0;

  EXPECT_TRUE(grid.set_edge_cost_biases(bias));
  const auto rev = grid.revision();
  EXPECT_FALSE(grid.set_edge_cost_biases(bias));  // identical: no-op
  EXPECT_EQ(grid.revision(), rev);

  // An all-zero overlay normalizes to "no overlay".
  EXPECT_TRUE(grid.set_edge_cost_biases(
      std::vector<double>(std::size_t(grid.num_vertices()) * 3, 0.0)));
  EXPECT_FALSE(grid.has_edge_cost_bias());
  EXPECT_FALSE(grid.set_edge_cost_biases({}));  // already empty: no-op
}

TEST(EdgeCostBias, ValidateCatchesBadOverlay) {
  HananGrid grid = unit_grid(2, 2, 1);
  std::vector<double> bias(std::size_t(grid.num_vertices()) * 3, 0.0);
  bias[0] = -1.0;
  grid.set_edge_cost_biases(bias);
  EXPECT_NE(grid.validate(), "");
}

TEST(ClearPins, RemovesAllPinsAndBumpsRevision) {
  HananGrid grid = unit_grid(3, 3, 1);
  grid.add_pin(grid.index(0, 0, 0));
  grid.add_pin(grid.index(2, 2, 0));
  ASSERT_EQ(grid.pins().size(), 2u);
  const auto rev = grid.revision();
  grid.clear_pins();
  EXPECT_TRUE(grid.pins().empty());
  EXPECT_FALSE(grid.is_pin(grid.index(0, 0, 0)));
  EXPECT_GT(grid.revision(), rev);
  // Pins can be re-added afterwards.
  grid.add_pin(grid.index(1, 1, 0));
  EXPECT_EQ(grid.pins().size(), 1u);
}

TEST(FromLayout, EdgeAcrossObstacleInteriorIsBlocked) {
  geom::Layout layout(100, 100, 1, 1.0);
  layout.add_pin(0, 50, 0);
  layout.add_pin(100, 50, 0);
  layout.add_obstacle(geom::Rect(40, 0, 60, 100), 0);
  const HananGrid grid = HananGrid::from_layout(layout);
  // x cuts: 0, 40, 60, 100; y cuts: 0, 50, 100.  The edge 40->60 at y=50
  // crosses the obstacle interior even though both endpoints are boundary.
  const Vertex left = grid.index(1, 1, 0);
  EXPECT_FALSE(grid.is_blocked(left));
  EXPECT_FALSE(grid.edge_usable(left, Dir::kPosX));
  // Travel along the obstacle's vertical boundary is allowed.
  EXPECT_TRUE(grid.edge_usable(grid.index(1, 0, 0), Dir::kPosY));
}

}  // namespace
}  // namespace oar::hanan
