#include "rl/evaluate.hpp"

#include <algorithm>
#include <cmath>

#include "mcts/seq_mcts.hpp"
#include "route/oarmst.hpp"
#include "steiner/router_base.hpp"
#include "util/timer.hpp"

namespace oar::rl {

EvalStats evaluate_st_to_mst(SteinerSelector& selector,
                             const std::vector<hanan::HananGrid>& grids,
                             EvalOptions options) {
  EvalStats stats;
  // Pooled routing scratch for the whole evaluation sweep (one OARMST +
  // one MST build per grid; no per-grid O(V) maze allocations).
  route::RouterScratch& scratch = route::local_router_scratch();
  for (const hanan::HananGrid& grid : grids) {
    const std::int32_t budget =
        std::max<std::int32_t>(0, std::int32_t(grid.pins().size()) - 2);

    util::Timer timer;
    std::vector<hanan::Vertex> selected;
    std::int32_t inferences = 0;
    if (options.sequential) {
      const auto result =
          mcts::sequential_select(selector, grid, options.seq_stop_threshold);
      selected = result.selected;
      inferences = result.inferences;
    } else {
      selected = selector.select_steiner_points(grid, budget);
      inferences = 1;
    }
    stats.select_seconds += timer.seconds();

    route::OarmstRouter router(grid);
    const route::OarmstResult st = router.build(grid.pins(), selected, &scratch);
    const double mst = steiner::mst_cost(grid, &scratch);
    if (!st.connected || mst <= 0.0 || !std::isfinite(mst)) continue;

    stats.mean_st_mst_ratio += st.cost / mst;
    stats.mean_st_cost += st.cost;
    stats.mean_mst_cost += mst;
    stats.mean_inferences += double(inferences);
    ++stats.count;
  }
  if (stats.count > 0) {
    const double inv = 1.0 / double(stats.count);
    stats.mean_st_mst_ratio *= inv;
    stats.mean_st_cost *= inv;
    stats.mean_mst_cost *= inv;
    stats.mean_inferences *= inv;
  }
  return stats;
}

}  // namespace oar::rl
