#include "rl/selector.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <unordered_set>

#include "nn/activations.hpp"
#include "nn/serialize.hpp"

namespace oar::rl {

/// Grid-keyed cache of the int8 first-layer state (the NNUE accumulator,
/// DESIGN.md §17): quantized base input plus the conv1 / projection int32
/// accumulators of the pin-free layout.  Per call the base is copied and
/// only the touched pin columns are patched — O(pins * 27 * OC) instead of
/// a full first-layer convolution.
struct SteinerSelector::Int8Accum {
  const HananGrid* grid = nullptr;
  std::uint64_t revision = 0;
  std::vector<float> feats;
  std::vector<std::uint8_t> base_q;
  std::vector<std::int32_t> base_acc1, base_accp;
  std::vector<std::uint8_t> q;  // patched working copies
  std::vector<std::int32_t> acc1, accp;
};

SteinerSelector::SteinerSelector(SelectorConfig config)
    : config_(config), net_(config.unet) {
  // Selectors are inference objects first: MCTS, serving and evaluation
  // all query fsp and never backprop.  Training passes flip the mode
  // explicitly (and restore it when done).
  net_.set_training(false);
}

SteinerSelector::~SteinerSelector() = default;

nn::Tensor SteinerSelector::encode(const HananGrid& grid,
                                   const std::vector<Vertex>& extra_pins) {
  nn::Tensor input(
      {hanan::kNumFeatureChannels, grid.h_dim(), grid.v_dim(), grid.m_dim()});
  hanan::encode_features_into(grid, extra_pins, input.data());
  return input;
}

void SteinerSelector::infer_fsp_into(const HananGrid& grid,
                                     const std::vector<Vertex>& extra_pins,
                                     std::vector<double>& out) {
  if (int8_active()) {
    infer_fsp_int8(grid, extra_pins, out);
    return;
  }
  if (!net_.training()) {
    nn::quant::note_fp32_forward();
    nn::InferenceScratch& arena = net_.inference_scratch();
    arena.rewind();  // infer() never rewinds, so the input slot survives
    nn::Tensor& input = arena.push(
        {hanan::kNumFeatureChannels, grid.h_dim(), grid.v_dim(), grid.m_dim()});
    features_.encode_into(grid, extra_pins, input.data());
    const nn::Tensor& logits = net_.infer(input);  // (1, H, V, M)
    out.resize(std::size_t(logits.numel()));
    nn::sigmoid_into(logits.data(), logits.numel(), out.data());
    return;
  }
  // Reference path (training mode): full re-encode + scalar forward.  Also
  // the baseline bench_infer measures the fast path against.
  const nn::Tensor input = encode(grid, extra_pins);
  const nn::Tensor logits = net_.forward(input);
  out.resize(std::size_t(logits.numel()));
  nn::sigmoid_into(logits.data(), logits.numel(), out.data());
}

std::vector<double> SteinerSelector::infer_fsp(const HananGrid& grid,
                                               const std::vector<Vertex>& extra_pins) {
  std::vector<double> fsp;
  infer_fsp_into(grid, extra_pins, fsp);
  return fsp;
}

std::vector<Vertex> SteinerSelector::top_k_valid(const HananGrid& grid,
                                                 const std::vector<double>& fsp,
                                                 std::int32_t k,
                                                 const std::vector<Vertex>& extra_pins) {
  if (k <= 0) return {};
  std::unordered_set<Vertex> banned(extra_pins.begin(), extra_pins.end());
  std::vector<std::pair<double, Vertex>> scored;
  scored.reserve(std::size_t(grid.num_vertices()));
  for (Vertex v = 0; v < grid.num_vertices(); ++v) {
    if (grid.is_blocked(v) || grid.is_pin(v) || banned.count(v)) continue;
    scored.emplace_back(fsp[std::size_t(grid.priority_of(v))], v);
  }
  const std::size_t take = std::min<std::size_t>(std::size_t(k), scored.size());
  std::partial_sort(scored.begin(), scored.begin() + std::ptrdiff_t(take), scored.end(),
                    [](const auto& a, const auto& b) {
                      return a.first > b.first || (a.first == b.first && a.second < b.second);
                    });
  std::vector<Vertex> out;
  out.reserve(take);
  for (std::size_t i = 0; i < take; ++i) out.push_back(scored[i].second);
  return out;
}

std::vector<Vertex> SteinerSelector::select_steiner_points(
    const HananGrid& grid, std::int32_t k, const std::vector<Vertex>& extra_pins) {
  const std::vector<double> fsp = infer_fsp(grid, extra_pins);
  return top_k_valid(grid, fsp, k, extra_pins);
}

// ---------------------------------------------------------------------------
// int8 inference path.
// ---------------------------------------------------------------------------

bool SteinerSelector::int8_active() const {
  return int8_ != nullptr &&
         config_.infer.precision == nn::InferConfig::Precision::kInt8 &&
         !net_.training();
}

void SteinerSelector::set_precision(nn::InferConfig::Precision p) {
  config_.infer.precision = p;
}

void SteinerSelector::calibrate_int8(
    const std::vector<const HananGrid*>& grids) {
  if (grids.empty()) {
    throw std::invalid_argument(
        "SteinerSelector::calibrate_int8: empty calibration set");
  }
  nn::quant::QuantCalibrator cal(net_);
  std::vector<float> feats;
  for (const HananGrid* g : grids) {
    const std::int64_t chan =
        std::int64_t(g->h_dim()) * g->v_dim() * g->m_dim();
    feats.resize(std::size_t(hanan::kNumFeatureChannels) * std::size_t(chan));
    hanan::encode_features_into(*g, {}, feats.data());
    cal.observe(feats.data(), g->h_dim(), g->v_dim(), g->m_dim());
  }
  int8_ = cal.finish();
  accum_ = std::make_unique<Int8Accum>();
  config_.infer.precision = nn::InferConfig::Precision::kInt8;
}

void SteinerSelector::infer_fsp_from_features(const float* features,
                                              std::int32_t H, std::int32_t V,
                                              std::int32_t M,
                                              std::vector<double>& out) {
  assert(int8_ != nullptr);
  int8_->infer_fsp_from_features(features, H, V, M, out);
}

void SteinerSelector::infer_fsp_int8(const HananGrid& grid,
                                     const std::vector<Vertex>& extra_pins,
                                     std::vector<double>& out) {
  const std::int32_t H = grid.h_dim(), V = grid.v_dim(), M = grid.m_dim();
  const std::int64_t S = std::int64_t(H) * V * M;
  Int8Accum& a = *accum_;
  const std::int32_t icp = int8_->input_icp();
  const std::int32_t OC = int8_->first_layer_oc();
  const bool proj = int8_->first_layer_has_proj();

  if (a.grid != &grid || a.revision != grid.revision()) {
    a.grid = &grid;
    a.revision = grid.revision();
    a.feats.resize(std::size_t(hanan::kNumFeatureChannels) * std::size_t(S));
    // Shares the float base volume with the fp32 path's FeatureCache.
    features_.encode_into(grid, {}, a.feats.data());
    a.base_q.resize(std::size_t(S) * std::size_t(icp));
    int8_->quantize_input(a.feats.data(), H, V, M, a.base_q.data());
    a.base_acc1.resize(std::size_t(S) * std::size_t(OC));
    if (proj) a.base_accp.resize(std::size_t(S) * std::size_t(OC));
    int8_->first_layer_acc(a.base_q.data(), H, V, M, a.base_acc1.data(),
                           proj ? a.base_accp.data() : nullptr);
    nn::quant::note_accumulator_rebuild();
  } else {
    nn::quant::note_accumulator_hit();
  }

  a.q.assign(a.base_q.begin(), a.base_q.end());
  a.acc1.assign(a.base_acc1.begin(), a.base_acc1.end());
  if (proj) a.accp.assign(a.base_accp.begin(), a.base_accp.end());

  // Patch pin flips: input channel 0 goes 0 -> 1 at each extra pin, which
  // shifts the conv1 accumulator at output voxel (pin + 1 - k) per tap by
  // the precomputed delta column.  Set semantics (skip voxels already at
  // q_pin) keep base pins and duplicate extra pins exact, mirroring the
  // FeatureCache float patch.
  const std::uint8_t qpin = int8_->quantized_one(0);
  const auto& dcol = int8_->pin_delta();
  const auto& dproj = int8_->pin_delta_proj();
  for (const Vertex pv : extra_pins) {
    const hanan::Cell c = grid.cell(pv);
    const std::int64_t vox = (std::int64_t(c.h) * V + c.v) * M + c.m;
    std::uint8_t& qb = a.q[std::size_t(vox * icp)];
    if (qb == qpin) continue;
    qb = qpin;
    if (proj) {
      std::int32_t* ap = a.accp.data() + vox * OC;
      for (std::int32_t oc = 0; oc < OC; ++oc) ap[oc] += dproj[std::size_t(oc)];
    }
    for (std::int32_t k0 = 0; k0 < 3; ++k0) {
      const std::int32_t o0 = c.h + 1 - k0;
      if (o0 < 0 || o0 >= H) continue;
      for (std::int32_t k1 = 0; k1 < 3; ++k1) {
        const std::int32_t o1 = c.v + 1 - k1;
        if (o1 < 0 || o1 >= V) continue;
        for (std::int32_t k2 = 0; k2 < 3; ++k2) {
          const std::int32_t o2 = c.m + 1 - k2;
          if (o2 < 0 || o2 >= M) continue;
          const std::int32_t tap = (k0 * 3 + k1) * 3 + k2;
          std::int32_t* av =
              a.acc1.data() + ((std::int64_t(o0) * V + o1) * M + o2) * OC;
          const std::int32_t* d = dcol.data() + std::int64_t(tap) * OC;
          for (std::int32_t oc = 0; oc < OC; ++oc) av[oc] += d[oc];
        }
      }
    }
  }

  int8_->infer_from_first_layer(a.q.data(), a.acc1.data(),
                                proj ? a.accp.data() : nullptr, H, V, M, out);
}

bool SteinerSelector::save(const std::string& path) {
  return nn::save_parameters(net_, path);
}

bool SteinerSelector::load(const std::string& path) {
  int8_.reset();  // weights change invalidates the pack
  accum_.reset();
  return nn::load_parameters(net_, path);
}

void SteinerSelector::copy_weights_from(SteinerSelector& other) {
  int8_.reset();
  accum_.reset();
  nn::copy_parameters(net_, other.net_);
}

}  // namespace oar::rl
