#pragma once

// FNV-1a 64-bit: the repo-wide content checksum.  The same constants guard
// the OARCK1 checkpoint records (nn/serialize.cpp) and the OAREXP1
// experience frames (experience/file_store.cpp); keeping one definition
// here means the two formats can never drift apart.

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace oar::util {

inline std::uint64_t fnv1a64(const char* data, std::size_t n) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

inline std::uint64_t fnv1a64(std::string_view bytes) {
  return fnv1a64(bytes.data(), bytes.size());
}

}  // namespace oar::util
