#pragma once

// Module protocol for the manual-backprop DL library.
//
// Modules process ONE sample at a time (no batch axis); batching is done by
// the trainer, which runs forward/backward per sample and accumulates
// parameter gradients before an optimizer step.  This matches the paper's
// same-size batches while keeping every layer's backward simple and easy to
// verify with finite differences.  A module caches whatever it needs in
// forward(); backward(grad_out) must be called after the matching forward.

#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.hpp"

namespace oar::nn {

/// Learnable tensor plus its gradient accumulator.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;

  Parameter() = default;
  Parameter(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}
};

class Module {
 public:
  virtual ~Module() = default;

  /// Computes the output and caches activations needed for backward().
  virtual Tensor forward(const Tensor& input) = 0;

  /// Given dLoss/dOutput, accumulates parameter gradients and returns
  /// dLoss/dInput.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Appends raw pointers to this module's (and submodules') parameters.
  virtual void collect_parameters(std::vector<Parameter*>& out) { (void)out; }

  std::vector<Parameter*> parameters() {
    std::vector<Parameter*> out;
    collect_parameters(out);
    return out;
  }

  std::int64_t num_parameters() {
    std::int64_t n = 0;
    for (Parameter* p : parameters()) n += p->value.numel();
    return n;
  }

  void zero_grad() {
    for (Parameter* p : parameters()) p->grad.zero();
  }

  virtual void set_training(bool training) { training_ = training; }
  bool training() const { return training_; }

 protected:
  bool training_ = true;
};

}  // namespace oar::nn
