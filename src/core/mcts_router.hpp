#pragma once

// Search-based single-net engine ("rl-mcts"): instead of committing to the
// selector's one-shot top-(n-2) Steiner points like RlRouter, run the full
// combinatorial MCTS over the layout and route the best combination the
// search executed.  This is the paper's *training-time* search exposed as
// an inference engine — orders of magnitude slower than "rl-ours", but the
// strongest tree the repository can produce for a single net, and the
// natural consumer of the tree-parallel search (CombMctsConfig's
// search_workers / eval_batch / flush_us knobs, DESIGN.md §15).

#include <memory>

#include "experience/store.hpp"
#include "mcts/comb_mcts.hpp"
#include "steiner/router_base.hpp"

namespace oar::core {

class MctsRouter : public steiner::Router {
 public:
  /// `config.iterations_per_move` is the paper's alpha at the 16x16x4
  /// reference size; route() rescales it to each layout via
  /// mcts::scaled_iterations.  search_workers != 1 runs the tree-parallel
  /// search (0 = hardware concurrency).
  ///
  /// `experience` (optional) attaches a tiered experience store: the
  /// search warm-starts its root from it when config.warm_start is on
  /// (DESIGN.md §18), and every connected routed episode is appended back
  /// (unless the store is read-only), so searches keep getting warmer
  /// across calls — and, with a disk tier, across process restarts.
  explicit MctsRouter(std::shared_ptr<rl::SteinerSelector> selector,
                      mcts::CombMctsConfig config = {},
                      std::shared_ptr<experience::Store> experience = nullptr);

  std::string name() const override { return "rl-mcts"; }

  /// Search, then final OARMST construction (redundant-point removal on)
  /// over pins + the searched combination — the same final flow as Fig. 2.
  route::OarmstResult route(const hanan::HananGrid& grid) override;

  /// Anytime entry (DESIGN.md §16): same as route() but the search runs
  /// against `deadline`.  When it fires, the returned tree is built from
  /// the best fully-evaluated combination so far (never an invalid
  /// partial) and last_stats().deadline_hit is set.
  route::OarmstResult route(const hanan::HananGrid& grid,
                            const mcts::SearchDeadline& deadline);

  /// Search statistics of the most recent route() call (including
  /// deadline_hit for anytime calls).
  const mcts::CombMctsStats& last_stats() const { return stats_; }

 private:
  std::shared_ptr<rl::SteinerSelector> selector_;
  mcts::CombMctsConfig config_;
  std::shared_ptr<experience::Store> experience_;
  mcts::CombMctsStats stats_;
};

}  // namespace oar::core
