#pragma once

// Warm-start priors for CombMcts root expansion (DESIGN.md §18).
//
// The lookup strips the request's pins, canonicalizes the remaining
// obstacle field (record.hpp's base key), and mines the disk tier for
// episodes routed on the *same field* — the exact pin set, a subset, or a
// superset of it.  Candidates are blended into one per-vertex prior in
// request priority order:
//
//   P_exp(v) = sum_e w_e * fsp_e(v) / sum_e w_e,
//   w_e      = |pins_e ∩ pins_req| / |pins_e ∪ pins_req|   (Jaccard)
//
// so an exact repeat dominates loosely-related pin sets.  When an exact
// match exists, its recorded best Steiner combination is returned too; the
// search re-evaluates it with its own exact cost model and uses it as a
// best-so-far floor, which is what guarantees warm best cost <= cold best
// cost on replayed layouts.

#include <vector>

#include "experience/store.hpp"

namespace oar::experience {

struct WarmStart {
  /// Blended experience prior, request priority order (empty on no match).
  std::vector<float> prior;
  /// Best recorded combination of an exact pin match, request vertex ids,
  /// priority-sorted.  Empty unless `exact`.
  std::vector<Vertex> best;
  /// Recorded cost of `best` (advisory; the search re-evaluates).
  double best_cost = 0.0;
  bool exact = false;
  /// Candidates blended in (0 == cold start).
  std::int32_t matches = 0;

  bool empty() const { return matches == 0; }
};

/// Mines `store` for experience applicable to `grid`.  Returns an empty
/// WarmStart (never throws) when the store has no disk tier, the layout is
/// asymmetric-keyed, or nothing matches.
WarmStart lookup_warm_start(const Store& store, const HananGrid& grid);

}  // namespace oar::experience
