# Empty compiler generated dependencies file for oarsmt_cli.
# This may be replaced when dependencies are built.
