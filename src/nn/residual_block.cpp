#include "nn/residual_block.hpp"

#include "nn/inference.hpp"

namespace oar::nn {

std::int32_t ResidualBlock3d::pick_groups(std::int32_t channels) {
  for (std::int32_t g = std::min(4, channels); g > 1; --g) {
    if (channels % g == 0) return g;
  }
  return 1;
}

ResidualBlock3d::ResidualBlock3d(std::int32_t in_channels, std::int32_t out_channels,
                                 util::Rng& rng)
    : out_channels_(out_channels),
      conv1_(in_channels, out_channels, 3, rng),
      norm1_(out_channels, pick_groups(out_channels)),
      conv2_(out_channels, out_channels, 3, rng),
      norm2_(out_channels, pick_groups(out_channels)) {
  if (in_channels != out_channels) {
    projection_ = std::make_unique<Conv3d>(in_channels, out_channels, 1, rng);
  }
}

void ResidualBlock3d::collect_parameters(std::vector<Parameter*>& out) {
  conv1_.collect_parameters(out);
  norm1_.collect_parameters(out);
  conv2_.collect_parameters(out);
  norm2_.collect_parameters(out);
  if (projection_) projection_->collect_parameters(out);
}

void ResidualBlock3d::set_training(bool training) {
  Module::set_training(training);
  conv1_.set_training(training);
  norm1_.set_training(training);
  conv2_.set_training(training);
  norm2_.set_training(training);
  if (projection_) projection_->set_training(training);
}

Tensor ResidualBlock3d::forward(const Tensor& input) {
  if (!training()) {
    InferenceScratch& arena = local_inference_scratch();
    arena.rewind();
    return infer(input, arena);  // copies out of the arena
  }
  Tensor main = norm2_.forward(conv2_.forward(
      relu1_.forward(norm1_.forward(conv1_.forward(input)))));
  Tensor skip = projection_ ? projection_->forward(input) : input;
  assert(main.shape() == skip.shape());
  main += skip;
  // Final ReLU (mask cached for backward).
  out_mask_.assign(std::size_t(main.numel()), 0);
  for (std::int64_t i = 0; i < main.numel(); ++i) {
    if (main[i] > 0.0f) {
      out_mask_[std::size_t(i)] = 1;
    } else {
      main[i] = 0.0f;
    }
  }
  return main;
}

Tensor ResidualBlock3d::forward_batch(const Tensor& input) {
  Tensor main = norm1_.forward_batch(conv1_.forward_batch(input));
  for (std::int64_t i = 0; i < main.numel(); ++i) {
    main[i] = std::max(0.0f, main[i]);
  }
  main = norm2_.forward_batch(conv2_.forward_batch(main));
  const Tensor skip = projection_ ? projection_->forward_batch(input) : input;
  assert(main.shape() == skip.shape());
  main += skip;
  for (std::int64_t i = 0; i < main.numel(); ++i) {
    main[i] = std::max(0.0f, main[i]);
  }
  return main;
}

const Tensor& ResidualBlock3d::infer(const Tensor& input,
                                     InferenceScratch& arena) {
  assert(input.dim() == 4 && input.shape(0) == conv1_.in_channels());
  const std::int32_t D0 = input.shape(1), D1 = input.shape(2),
                     D2 = input.shape(3);
  const std::int64_t spatial = std::int64_t(D0) * D1 * D2;

  Tensor& t1 = arena.push({out_channels_, D0, D1, D2});
  conv1_.infer_into(input.data(), D0, D1, D2, arena, t1.data());
  norm1_.infer_relu_inplace(t1.data(), spatial);

  Tensor& t2 = arena.push({out_channels_, D0, D1, D2});
  conv2_.infer_into(t1.data(), D0, D1, D2, arena, t2.data());

  const float* skip = input.data();
  if (projection_) {
    Tensor& proj = arena.push({out_channels_, D0, D1, D2});
    projection_->infer_into(input.data(), D0, D1, D2, arena, proj.data());
    skip = proj.data();
  }
  norm2_.infer_add_relu_inplace(t2.data(), skip, spatial);
  return t2;
}

Tensor ResidualBlock3d::backward(const Tensor& grad_output) {
  assert(training());  // inference-mode forward retains nothing
  Tensor grad = grad_output;
  for (std::int64_t i = 0; i < grad.numel(); ++i) {
    if (!out_mask_[std::size_t(i)]) grad[i] = 0.0f;
  }
  // Branch gradients: both the main path and the skip see `grad`.
  Tensor grad_main = conv1_.backward(
      norm1_.backward(relu1_.backward(conv2_.backward(norm2_.backward(grad)))));
  Tensor grad_skip = projection_ ? projection_->backward(grad) : grad;
  grad_main += grad_skip;
  return grad_main;
}

}  // namespace oar::nn
