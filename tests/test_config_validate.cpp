// Every public *Config struct carries a validate() that throws
// std::invalid_argument naming the offending field ("Struct.field must ...
// (got ...)").  This suite walks every rejection path once and checks that
// (a) the defaults pass, and (b) each bad field is named in the message.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "chip/chip_router.hpp"
#include "core/router.hpp"
#include "experience/store.hpp"
#include "gen/random_netlist.hpp"
#include "mcts/comb_mcts.hpp"
#include "mcts/eval_server.hpp"
#include "mcts/parallel.hpp"
#include "nn/quant/quantize.hpp"
#include "nn/unet3d.hpp"
#include "nn/value_net.hpp"
#include "route/oarmst.hpp"
#include "rl/ppo.hpp"
#include "rl/selector.hpp"
#include "rl/trainer.hpp"
#include "serve/service.hpp"
#include "steiner/lin18.hpp"
#include "steiner/liu14.hpp"
#include "steiner/oracle.hpp"

namespace oar {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Mutates a default-constructed config, expects validate() to throw an
/// invalid_argument whose message names `Struct.field`.
template <typename Config, typename Mutator>
void expect_rejects(Mutator&& mutate, const std::string& field_path) {
  Config cfg;
  mutate(cfg);
  try {
    cfg.validate();
    ADD_FAILURE() << "expected " << field_path << " to be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(field_path), std::string::npos)
        << "message does not name the field: " << e.what();
  }
}

TEST(ConfigValidate, DefaultsAllPass) {
  EXPECT_NO_THROW(steiner::Liu14Config{}.validate());
  EXPECT_NO_THROW(steiner::Lin18Config{}.validate());
  EXPECT_NO_THROW(steiner::OracleConfig{}.validate());
  EXPECT_NO_THROW(nn::UNet3dConfig{}.validate());
  EXPECT_NO_THROW(nn::ValueNetConfig{}.validate());
  EXPECT_NO_THROW(nn::InferConfig{}.validate());
  EXPECT_NO_THROW(route::OarmstConfig{}.validate());
  EXPECT_NO_THROW(serve::RouterServiceConfig{}.validate());
  EXPECT_NO_THROW(mcts::CombMctsConfig{}.validate());
  EXPECT_NO_THROW(rl::TrainConfig{}.validate());
  EXPECT_NO_THROW(rl::FitOptions{}.validate());
  EXPECT_NO_THROW(rl::SelectorConfig{}.validate());
  EXPECT_NO_THROW(rl::PpoConfig{}.validate());
  EXPECT_NO_THROW(core::RlRouterConfig{}.validate());
  EXPECT_NO_THROW(core::RouterOptions{}.validate());
  EXPECT_NO_THROW(chip::ChipConfig{}.validate());
  EXPECT_NO_THROW(gen::RandomNetlistSpec{}.validate());
}

TEST(ConfigValidate, ChipConfig) {
  using C = chip::ChipConfig;
  expect_rejects<C>([](C& c) { c.max_iterations = 0; },
                    "ChipConfig.max_iterations");
  expect_rejects<C>([](C& c) { c.edge_capacity = 0; },
                    "ChipConfig.edge_capacity");
  expect_rejects<C>([](C& c) { c.present_factor = -0.5; },
                    "ChipConfig.present_factor");
  expect_rejects<C>([](C& c) { c.present_growth = 0.9; },
                    "ChipConfig.present_growth");
  expect_rejects<C>([](C& c) { c.history_increment = -1.0; },
                    "ChipConfig.history_increment");
}

TEST(ConfigValidate, RandomNetlistSpec) {
  using C = gen::RandomNetlistSpec;
  expect_rejects<C>([](C& c) { c.min_pins = 1; },
                    "RandomNetlistSpec.min_pins");
  expect_rejects<C>(
      [](C& c) {
        c.min_pins = 4;
        c.max_pins = 3;
      },
      "RandomNetlistSpec.max_pins");
  expect_rejects<C>([](C& c) { c.max_attempts_per_net = 0; },
                    "RandomNetlistSpec.max_attempts_per_net");
}

TEST(ConfigValidate, Liu14) {
  using C = steiner::Liu14Config;
  expect_rejects<C>([](C& c) { c.max_evaluations = 0; },
                    "Liu14Config.max_evaluations");
  expect_rejects<C>([](C& c) { c.neighbors_per_terminal = 0; },
                    "Liu14Config.neighbors_per_terminal");
}

TEST(ConfigValidate, Lin18) {
  using C = steiner::Lin18Config;
  expect_rejects<C>([](C& c) { c.max_evaluations_per_round = 0; },
                    "Lin18Config.max_evaluations_per_round");
  expect_rejects<C>([](C& c) { c.neighbors_per_terminal = -1; },
                    "Lin18Config.neighbors_per_terminal");
  expect_rejects<C>([](C& c) { c.max_rounds = 0; }, "Lin18Config.max_rounds");
  expect_rejects<C>([](C& c) { c.min_gain = -1e-3; }, "Lin18Config.min_gain");
}

TEST(ConfigValidate, Oracle) {
  using C = steiner::OracleConfig;
  expect_rejects<C>([](C& c) { c.max_steiner = -1; },
                    "OracleConfig.max_steiner");
  expect_rejects<C>([](C& c) { c.max_evaluations = -1; },
                    "OracleConfig.max_evaluations");
}

TEST(ConfigValidate, UNet3d) {
  using C = nn::UNet3dConfig;
  expect_rejects<C>([](C& c) { c.in_channels = 0; },
                    "UNet3dConfig.in_channels");
  expect_rejects<C>([](C& c) { c.base_channels = 0; },
                    "UNet3dConfig.base_channels");
  expect_rejects<C>([](C& c) { c.depth = 0; }, "UNet3dConfig.depth");
  expect_rejects<C>([](C& c) { c.head_bias_init = kNan; },
                    "UNet3dConfig.head_bias_init");
  // SelectorConfig delegates to the nested UNet3dConfig.
  rl::SelectorConfig sel;
  sel.unet.depth = 0;
  EXPECT_THROW(sel.validate(), std::invalid_argument);
}

TEST(ConfigValidate, ValueNet) {
  using C = nn::ValueNetConfig;
  expect_rejects<C>([](C& c) { c.in_channels = 0; },
                    "ValueNetConfig.in_channels");
  expect_rejects<C>([](C& c) { c.channels = 0; }, "ValueNetConfig.channels");
  expect_rejects<C>([](C& c) { c.hidden = 0; }, "ValueNetConfig.hidden");
}

TEST(ConfigValidate, Oarmst) {
  using C = route::OarmstConfig;
  expect_rejects<C>([](C& c) { c.max_rebuild_passes = 0; },
                    "OarmstConfig.max_rebuild_passes");
}

TEST(ConfigValidate, RouterService) {
  using C = serve::RouterServiceConfig;
  expect_rejects<C>([](C& c) { c.max_batch = 0; },
                    "RouterServiceConfig.max_batch");
  expect_rejects<C>([](C& c) { c.batch_wait_ms = -1.0; },
                    "RouterServiceConfig.batch_wait_ms");
  expect_rejects<C>([](C& c) { c.batch_wait_ms = kNan; },
                    "RouterServiceConfig.batch_wait_ms");
  expect_rejects<C>([](C& c) { c.experience_read_only = true; },
                    "RouterServiceConfig.experience_read_only");
  // The nested SLO policy is validated through the service config.
  expect_rejects<C>([](C& c) { c.slo.default_deadline_ms = -1.0; },
                    "SloConfig.default_deadline_ms");
  expect_rejects<C>([](C& c) { c.slo.min_slack_ms = kNan; },
                    "SloConfig.min_slack_ms");
}

TEST(ConfigValidate, SloConfig) {
  using C = serve::SloConfig;
  EXPECT_NO_THROW(C{}.validate());
  expect_rejects<C>([](C& c) { c.default_deadline_ms = kNan; },
                    "SloConfig.default_deadline_ms");
  expect_rejects<C>([](C& c) { c.default_deadline_ms = -5.0; },
                    "SloConfig.default_deadline_ms");
  expect_rejects<C>([](C& c) { c.min_slack_ms = -1.0; },
                    "SloConfig.min_slack_ms");
  expect_rejects<C>([](C& c) { c.min_slack_ms = kInf; },
                    "SloConfig.min_slack_ms");
}

TEST(ConfigValidate, CombMcts) {
  using C = mcts::CombMctsConfig;
  expect_rejects<C>([](C& c) { c.iterations_per_move = 0; },
                    "CombMctsConfig.iterations_per_move");
  expect_rejects<C>([](C& c) { c.c_puct = -0.5; }, "CombMctsConfig.c_puct");
  expect_rejects<C>([](C& c) { c.flat_cost_patience = -1; },
                    "CombMctsConfig.flat_cost_patience");
  expect_rejects<C>([](C& c) { c.flat_eps = -1e-6; },
                    "CombMctsConfig.flat_eps");
  expect_rejects<C>([](C& c) { c.max_children = -1; },
                    "CombMctsConfig.max_children");
  expect_rejects<C>([](C& c) { c.prior_uniform_mix = 1.5; },
                    "CombMctsConfig.prior_uniform_mix");
  expect_rejects<C>([](C& c) { c.search_workers = -1; },
                    "CombMctsConfig.search_workers");
  expect_rejects<C>([](C& c) { c.eval_batch = 0; }, "CombMctsConfig.eval_batch");
  expect_rejects<C>([](C& c) { c.flush_us = -1; }, "CombMctsConfig.flush_us");
  expect_rejects<C>([](C& c) { c.warm_start_weight = 1.5; },
                    "CombMctsConfig.warm_start_weight");
  expect_rejects<C>([](C& c) { c.warm_start_weight = -0.1; },
                    "CombMctsConfig.warm_start_weight");
  expect_rejects<C>([](C& c) { c.warm_start_visits = -1; },
                    "CombMctsConfig.warm_start_visits");
}

TEST(ConfigValidate, ExperienceStore) {
  using C = experience::StoreConfig;
  EXPECT_NO_THROW(C{}.validate());
  expect_rejects<C>(
      [](C& c) {
        c.read_only = true;
        c.path.clear();
      },
      "StoreConfig.read_only");
}

TEST(ConfigValidate, EvalServer) {
  using C = mcts::EvalServerConfig;
  EXPECT_NO_THROW(C{}.validate());
  expect_rejects<C>([](C& c) { c.eval_batch = 0; },
                    "EvalServerConfig.eval_batch");
  expect_rejects<C>([](C& c) { c.flush_us = -1; }, "EvalServerConfig.flush_us");
  expect_rejects<C>([](C& c) { c.queue_capacity = 0; },
                    "EvalServerConfig.queue_capacity");
}

TEST(ConfigValidate, Train) {
  using C = rl::TrainConfig;
  expect_rejects<C>([](C& c) { c.sizes.clear(); }, "TrainConfig.sizes");
  expect_rejects<C>([](C& c) { c.sizes = {{1, 4, 1}}; }, "TrainConfig.sizes");
  expect_rejects<C>([](C& c) { c.layouts_per_size = 0; },
                    "TrainConfig.layouts_per_size");
  expect_rejects<C>([](C& c) { c.stages = 0; }, "TrainConfig.stages");
  expect_rejects<C>([](C& c) { c.epochs_per_stage = 0; },
                    "TrainConfig.epochs_per_stage");
  expect_rejects<C>([](C& c) { c.batch_size = 0; }, "TrainConfig.batch_size");
  expect_rejects<C>([](C& c) { c.lr = 0.0; }, "TrainConfig.lr");
  expect_rejects<C>([](C& c) { c.lr = kInf; }, "TrainConfig.lr");
  expect_rejects<C>([](C& c) { c.grad_clip = 0.0; }, "TrainConfig.grad_clip");
  expect_rejects<C>([](C& c) { c.augment_count = 0; },
                    "TrainConfig.augment_count");
  expect_rejects<C>([](C& c) { c.augment_count = 17; },
                    "TrainConfig.augment_count");
  expect_rejects<C>([](C& c) { c.curriculum_stages = -1; },
                    "TrainConfig.curriculum_stages");
  expect_rejects<C>([](C& c) { c.min_pins = 1; }, "TrainConfig.min_pins");
  expect_rejects<C>([](C& c) { c.max_pins = c.min_pins - 1; },
                    "TrainConfig.max_pins");
  expect_rejects<C>([](C& c) { c.obstacle_density = 1.0; },
                    "TrainConfig.obstacle_density");
  expect_rejects<C>([](C& c) { c.threads = -1; }, "TrainConfig.threads");
  expect_rejects<C>([](C& c) { c.fit_workers = -2; },
                    "TrainConfig.fit_workers");
  expect_rejects<C>([](C& c) { c.int8_calibration_layouts = 0; },
                    "TrainConfig.int8_calibration_layouts");
  // Nested MCTS config is validated too.
  expect_rejects<C>([](C& c) { c.mcts.iterations_per_move = 0; },
                    "CombMctsConfig.iterations_per_move");
}

TEST(ConfigValidate, InferConfig) {
  using C = nn::InferConfig;
  expect_rejects<C>([](C& c) { c.int8_min_agreement = -0.1; },
                    "InferConfig.int8_min_agreement");
  expect_rejects<C>([](C& c) { c.int8_min_agreement = 1.5; },
                    "InferConfig.int8_min_agreement");
  expect_rejects<C>([](C& c) { c.int8_max_cost_ratio = 0.9; },
                    "InferConfig.int8_max_cost_ratio");
  expect_rejects<C>([](C& c) { c.precision = C::Precision(7); },
                    "InferConfig.precision");
  // SelectorConfig validates the nested InferConfig too.
  rl::SelectorConfig sel;
  sel.infer.int8_max_cost_ratio = 0.5;
  EXPECT_THROW(sel.validate(), std::invalid_argument);
}

TEST(ConfigValidate, FitOptions) {
  using C = rl::FitOptions;
  expect_rejects<C>([](C& c) { c.epochs = 0; }, "FitOptions.epochs");
  expect_rejects<C>([](C& c) { c.batch_size = 0; }, "FitOptions.batch_size");
  expect_rejects<C>([](C& c) { c.grad_clip = -1.0; }, "FitOptions.grad_clip");
  expect_rejects<C>([](C& c) { c.workers = -1; }, "FitOptions.workers");
}

TEST(ConfigValidate, Ppo) {
  using C = rl::PpoConfig;
  expect_rejects<C>([](C& c) { c.episodes_per_iteration = 0; },
                    "PpoConfig.episodes_per_iteration");
  expect_rejects<C>([](C& c) { c.update_epochs = 0; },
                    "PpoConfig.update_epochs");
  expect_rejects<C>([](C& c) { c.clip_epsilon = 0.0; },
                    "PpoConfig.clip_epsilon");
  expect_rejects<C>([](C& c) { c.lr_policy = kNan; }, "PpoConfig.lr_policy");
  expect_rejects<C>([](C& c) { c.lr_value = -1.0; }, "PpoConfig.lr_value");
  expect_rejects<C>([](C& c) { c.gamma = 0.0; }, "PpoConfig.gamma");
  expect_rejects<C>([](C& c) { c.gamma = 1.5; }, "PpoConfig.gamma");
  expect_rejects<C>([](C& c) { c.gae_lambda = -0.1; },
                    "PpoConfig.gae_lambda");
  expect_rejects<C>([](C& c) { c.entropy_coef = -1.0; },
                    "PpoConfig.entropy_coef");
  expect_rejects<C>([](C& c) { c.grad_clip = 0.0; }, "PpoConfig.grad_clip");
  expect_rejects<C>([](C& c) { c.min_pins = 0; }, "PpoConfig.min_pins");
  expect_rejects<C>([](C& c) { c.max_pins = 1; }, "PpoConfig.max_pins");
  expect_rejects<C>([](C& c) { c.obstacle_density = 1.0; },
                    "PpoConfig.obstacle_density");
}

TEST(ConfigValidate, RouterOptions) {
  using C = core::RouterOptions;
  expect_rejects<C>([](C& c) { c.engine = "no-such-engine"; },
                    "RouterOptions.engine");
  expect_rejects<C>([](C& c) { c.engine = ""; }, "RouterOptions.engine");
  expect_rejects<C>(
      [](C& c) {
        c.engine = "liu14";
        c.use_service = true;
      },
      "RouterOptions.use_service");
  expect_rejects<C>([](C& c) { c.experience_read_only = true; },
                    "RouterOptions.experience_read_only");
  // The nested service config is validated through the facade too.
  expect_rejects<C>([](C& c) { c.service.max_batch = 0; },
                    "RouterServiceConfig.max_batch");
  expect_rejects<C>([](C& c) { c.chip.edge_capacity = 0; },
                    "ChipConfig.edge_capacity");
  // The nested search config ("rl-mcts" engine knobs) as well.
  expect_rejects<C>([](C& c) { c.mcts.search_workers = -2; },
                    "CombMctsConfig.search_workers");
  expect_rejects<C>([](C& c) { c.mcts.eval_batch = -1; },
                    "CombMctsConfig.eval_batch");
  // The anytime deadline knob (DESIGN.md Â§16).
  expect_rejects<C>([](C& c) { c.deadline_ms = -10.0; },
                    "RouterOptions.deadline_ms");
  expect_rejects<C>([](C& c) { c.deadline_ms = kNan; },
                    "RouterOptions.deadline_ms");
  expect_rejects<C>([](C& c) { c.service.slo.default_deadline_ms = kInf; },
                    "SloConfig.default_deadline_ms");
}

TEST(ConfigValidate, ConstructorsEnforceValidation) {
  steiner::Liu14Config liu;
  liu.max_evaluations = 0;
  EXPECT_THROW(steiner::Liu14Router{liu}, std::invalid_argument);

  nn::UNet3dConfig unet;
  unet.depth = 0;
  EXPECT_THROW(nn::UNet3d{unet}, std::invalid_argument);

  mcts::CombMctsConfig mcts_cfg;
  mcts_cfg.prior_uniform_mix = -0.25;
  rl::SteinerSelector selector{[] {
    rl::SelectorConfig c;
    c.unet.base_channels = 2;
    c.unet.depth = 1;
    return c;
  }()};
  EXPECT_THROW(mcts::CombMcts(selector, mcts_cfg), std::invalid_argument);

  mcts::CombMctsConfig par_cfg;
  par_cfg.search_workers = -1;
  EXPECT_THROW(mcts::ParallelCombMcts(selector, par_cfg), std::invalid_argument);

  mcts::EvalServerConfig eval_cfg;
  eval_cfg.queue_capacity = 0;
  EXPECT_THROW(mcts::EvalServer(selector, eval_cfg), std::invalid_argument);

  core::RouterOptions opt;
  opt.engine = "no-such-engine";
  EXPECT_THROW(core::Router{opt}, std::invalid_argument);
}

}  // namespace
}  // namespace oar
