#include <gtest/gtest.h>

#include "gen/public_benchmarks.hpp"
#include "gen/random_layout.hpp"
#include "route/maze.hpp"

namespace oar::gen {
namespace {

TEST(RandomGrid, RespectsSpecRanges) {
  util::Rng rng(1);
  RandomGridSpec spec;
  spec.h = 10;
  spec.v = 8;
  spec.m = 3;
  spec.min_pins = 4;
  spec.max_pins = 6;
  spec.min_obstacles = 5;
  spec.max_obstacles = 10;
  spec.min_edge_cost = 2;
  spec.max_edge_cost = 7;
  spec.min_via_cost = 3.0;
  spec.max_via_cost = 5.0;
  for (int trial = 0; trial < 10; ++trial) {
    const HananGrid grid = random_grid(spec, rng);
    EXPECT_EQ(grid.h_dim(), 10);
    EXPECT_EQ(grid.v_dim(), 8);
    EXPECT_EQ(grid.m_dim(), 3);
    EXPECT_GE(grid.pins().size(), 4u);
    EXPECT_LE(grid.pins().size(), 6u);
    EXPECT_GE(grid.via_cost(), 3.0);
    EXPECT_LE(grid.via_cost(), 5.0);
    for (std::int32_t h = 0; h + 1 < grid.h_dim(); ++h) {
      EXPECT_GE(grid.x_step(h), 2.0);
      EXPECT_LE(grid.x_step(h), 7.0);
    }
    EXPECT_EQ(grid.validate(), "");
  }
}

TEST(RandomGrid, PinsNeverOnObstacles) {
  util::Rng rng(2);
  RandomGridSpec spec;
  spec.h = 8;
  spec.v = 8;
  spec.m = 2;
  spec.min_obstacles = 20;
  spec.max_obstacles = 30;
  for (int trial = 0; trial < 20; ++trial) {
    const HananGrid grid = random_grid(spec, rng);
    for (auto pin : grid.pins()) EXPECT_FALSE(grid.is_blocked(pin));
  }
}

TEST(RandomGrid, EnsureRoutableProducesConnectedPins) {
  util::Rng rng(3);
  RandomGridSpec spec;
  spec.h = 8;
  spec.v = 8;
  spec.m = 2;
  spec.min_obstacles = 15;
  spec.max_obstacles = 25;
  spec.ensure_routable = true;
  int connected = 0;
  const int trials = 20;
  for (int trial = 0; trial < trials; ++trial) {
    const HananGrid grid = random_grid(spec, rng);
    route::MazeRouter maze(grid);
    maze.run({grid.pins().front()});
    bool all = true;
    for (auto pin : grid.pins()) {
      all = all && maze.dist(pin) != route::MazeRouter::kInf;
    }
    connected += all;
  }
  EXPECT_GE(connected, trials - 1);  // the generator may give up rarely
}

TEST(RandomGrid, DeterministicGivenSeed) {
  RandomGridSpec spec;
  spec.h = 8;
  spec.v = 8;
  spec.m = 2;
  util::Rng r1(7), r2(7);
  const HananGrid a = random_grid(spec, r1);
  const HananGrid b = random_grid(spec, r2);
  EXPECT_EQ(a.pins(), b.pins());
  for (hanan::Vertex v = 0; v < a.num_vertices(); ++v) {
    EXPECT_EQ(a.is_blocked(v), b.is_blocked(v));
  }
}

TEST(TestSubsets, FullScaleMatchesPaperTable1) {
  const auto subsets = paper_test_subsets(1);
  ASSERT_EQ(subsets.size(), 7u);
  EXPECT_EQ(subsets[0].name, "T32");
  EXPECT_EQ(subsets[0].spec.h, 32);
  EXPECT_EQ(subsets[0].spec.min_pins, 3);
  EXPECT_EQ(subsets[0].spec.max_pins, 10);
  EXPECT_EQ(subsets[0].spec.min_obstacles, 128);
  EXPECT_EQ(subsets[6].name, "T512");
  EXPECT_EQ(subsets[6].spec.h, 512);
  EXPECT_EQ(subsets[3].spec.h, 128);
  EXPECT_EQ(subsets[3].spec.v, 256);  // the rectangular T128_2 subset
}

TEST(TestSubsets, ScalingPreservesDensityOrdering) {
  const auto scaled = paper_test_subsets(4);
  EXPECT_EQ(scaled[0].spec.h, 8);
  EXPECT_EQ(scaled[6].spec.h, 128);
  for (std::size_t i = 0; i + 1 < scaled.size(); ++i) {
    EXPECT_LE(scaled[i].spec.h * scaled[i].spec.v,
              scaled[i + 1].spec.h * scaled[i + 1].spec.v);
  }
}

TEST(TestSubsets, RandomSubsetGridHasLayerRange) {
  const auto subsets = paper_test_subsets(8);
  util::Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    const HananGrid grid = random_subset_grid(subsets[0], rng);
    EXPECT_GE(grid.m_dim(), 4);
    EXPECT_LE(grid.m_dim(), 10);
  }
}

TEST(PublicBenchmarks, TableMatchesPaper) {
  const auto table = public_benchmark_table();
  ASSERT_EQ(table.size(), 8u);
  const auto rt5 = public_benchmark_info("rt5");
  EXPECT_EQ(rt5.h, 702);
  EXPECT_EQ(rt5.v, 707);
  EXPECT_EQ(rt5.m, 4);
  EXPECT_EQ(rt5.pins, 1000);
  EXPECT_EQ(rt5.obstacles, 1000);
  const auto ind2 = public_benchmark_info("ind2");
  EXPECT_EQ(ind2.h, 83);
  EXPECT_EQ(ind2.m, 5);
  EXPECT_THROW(public_benchmark_info("nope"), std::out_of_range);
}

TEST(PublicBenchmarks, ScaledCloneMatchesScaledStats) {
  const auto info = public_benchmark_info("rt1");
  const auto scaled = scaled_info(info, 2);
  const HananGrid grid = make_public_benchmark(info, 2);
  EXPECT_EQ(grid.h_dim(), scaled.h);
  EXPECT_EQ(grid.v_dim(), scaled.v);
  EXPECT_EQ(grid.m_dim(), info.m);
  EXPECT_EQ(std::int32_t(grid.pins().size()), scaled.pins);
  EXPECT_DOUBLE_EQ(grid.via_cost(), 3.0);  // Table 4 via cost
}

TEST(PublicBenchmarks, DeterministicClones) {
  const auto info = public_benchmark_info("ind1");
  const HananGrid a = make_public_benchmark(info, 2);
  const HananGrid b = make_public_benchmark(info, 2);
  EXPECT_EQ(a.pins(), b.pins());
}

}  // namespace
}  // namespace oar::gen
