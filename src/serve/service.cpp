#include "serve/service.hpp"

#include <algorithm>
#include <cmath>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "serve/batched_selector.hpp"
#include "util/timer.hpp"
#include "util/validate.hpp"

namespace oar::serve {

namespace {

// Global-registry counterparts of ServiceMetrics (which keeps the CSV
// percentile path).  Names follow the oar_<subsystem>_<what>_<unit> scheme
// of DESIGN.md §12; the serving integration test pins these families.
struct ServeObs {
  obs::Counter& requests;
  obs::Counter& cache_hits;
  obs::Counter& cache_misses;
  obs::Counter& batches;
  obs::Counter& deadline_misses;
  // SLO family (DESIGN.md §16).  slo_deadline_misses counts together with
  // the legacy oar_serve_deadline_misses_total (kept for dashboards that
  // pinned it before the family existed).
  obs::Counter& slo_deadline_misses;
  obs::Counter& slo_rejected_queue_full;
  obs::Counter& slo_rejected_hopeless;
  obs::Gauge& queue_depth;
  obs::Gauge& cache_entries;
  obs::Gauge& slo_p50_latency;
  obs::Gauge& slo_p99_latency;
  obs::Histogram& batch_occupancy;
  obs::Histogram& request_latency;
  obs::Histogram& inference_latency;
  obs::Histogram& routing_latency;
  obs::Histogram& slo_slack;
};

ServeObs& serve_obs() {
  auto& reg = obs::MetricsRegistry::instance();
  static ServeObs o{
      reg.counter("oar_serve_requests_total", "Routing requests submitted"),
      reg.counter("oar_serve_cache_hits_total",
                  "Requests answered from the symmetry-aware result cache"),
      reg.counter("oar_serve_cache_misses_total",
                  "Requests that missed the result cache and were queued"),
      reg.counter("oar_serve_batches_total", "Micro-batches processed"),
      reg.counter("oar_serve_deadline_misses_total",
                  "Replies that finished after the request deadline"),
      reg.counter("oar_serve_slo_deadline_misses_total",
                  "Served replies that finished after their effective deadline"),
      reg.counter("oar_serve_slo_rejected_queue_full_total",
                  "Requests rejected at admission: queue at max_queue_depth"),
      reg.counter("oar_serve_slo_rejected_hopeless_total",
                  "Requests rejected at admission: deadline slack below floor"),
      reg.gauge("oar_serve_queue_depth", "Requests waiting in the batcher queue"),
      reg.gauge("oar_serve_cache_entries", "Entries resident in the result cache"),
      reg.gauge("oar_serve_slo_p50_latency_seconds",
                "Median end-to-end latency, refreshed at each scrape"),
      reg.gauge("oar_serve_slo_p99_latency_seconds",
                "p99 end-to-end latency, refreshed at each scrape"),
      reg.histogram("oar_serve_batch_occupancy", obs::pow2_buckets(8),
                    "Requests per processed micro-batch"),
      reg.histogram("oar_serve_request_latency_seconds", obs::latency_buckets(),
                    "Submit-to-reply latency per request"),
      reg.histogram("oar_serve_inference_seconds", obs::latency_buckets(),
                    "Batched U-Net pass latency per micro-batch"),
      reg.histogram("oar_serve_routing_seconds", obs::latency_buckets(),
                    "OARMST fan-out latency per micro-batch"),
      reg.histogram("oar_serve_slo_slack_seconds", obs::latency_buckets(),
                    "Deadline slack remaining at reply (misses land in the "
                    "zero bucket)"),
  };
  return o;
}

}  // namespace

const char* reply_status_name(ReplyStatus status) {
  switch (status) {
    case ReplyStatus::kOk:
      return "ok";
    case ReplyStatus::kOverloadedQueueFull:
      return "overloaded_queue_full";
    case ReplyStatus::kOverloadedHopelessDeadline:
      return "overloaded_hopeless_deadline";
  }
  return "unknown";
}

void SloConfig::validate() const {
  util::check_field(default_deadline_ms >= 0.0 && std::isfinite(default_deadline_ms),
                    "SloConfig", "default_deadline_ms",
                    "be finite and non-negative (0 disables)",
                    default_deadline_ms);
  util::check_field(min_slack_ms >= 0.0 && std::isfinite(min_slack_ms),
                    "SloConfig", "min_slack_ms", "be finite and non-negative",
                    min_slack_ms);
}

void RouterServiceConfig::validate() const {
  util::check_field(max_batch >= 1, "RouterServiceConfig", "max_batch",
                    "be >= 1 (1 disables batching)", max_batch);
  util::check_field(batch_wait_ms >= 0.0 && std::isfinite(batch_wait_ms),
                    "RouterServiceConfig", "batch_wait_ms",
                    "be finite and non-negative", batch_wait_ms);
  util::check_field(!experience_read_only || !experience_path.empty(),
                    "RouterServiceConfig", "experience_read_only",
                    "require experience_path to name an existing file",
                    experience_read_only);
  slo.validate();
}

std::size_t most_urgent_index(
    const std::vector<std::optional<Clock::time_point>>& deadlines) {
  if (deadlines.empty()) return 0;
  const auto it = detail::most_urgent(
      deadlines.begin(), deadlines.end(),
      [](const std::optional<Clock::time_point>& d)
          -> const std::optional<Clock::time_point>& { return d; });
  return std::size_t(it - deadlines.begin());
}

namespace {

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

bool same_shape(const HananGrid& a, const HananGrid& b) {
  return a.h_dim() == b.h_dim() && a.v_dim() == b.v_dim() &&
         a.m_dim() == b.m_dim();
}

}  // namespace

namespace {

experience::StoreConfig store_config_of(const RouterServiceConfig& config) {
  experience::StoreConfig sc;
  sc.memory_capacity = config.cache_capacity;
  sc.path = config.experience_path;
  sc.read_only = config.experience_read_only;
  sc.flush_batch = config.experience_flush_batch;
  return sc;
}

}  // namespace

RouterService::RouterService(std::shared_ptr<rl::SteinerSelector> selector,
                             RouterServiceConfig config)
    : RouterService(std::move(selector), config,
                    std::make_shared<experience::Store>(
                        store_config_of(config))) {}

RouterService::RouterService(std::shared_ptr<rl::SteinerSelector> selector,
                             RouterServiceConfig config,
                             std::shared_ptr<experience::Store> store)
    : config_(config),
      selector_(std::move(selector)),
      store_(std::move(store)),
      pool_(config.worker_threads) {
  config_.max_batch = std::max<std::size_t>(1, config_.max_batch);
  config_.validate();
  if (store_ == nullptr) {
    store_ = std::make_shared<experience::Store>(store_config_of(config_));
  }
  batcher_ = std::thread([this] { batcher_loop(); });
}

RouterService::~RouterService() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  batcher_.join();
}

std::future<RouteReply> RouterService::submit(RouteRequest request) {
  metrics_.add_request();
  serve_obs().requests.inc();
  const Clock::time_point now = Clock::now();

  Pending pending;
  pending.request = std::move(request);
  pending.enqueued = now;
  pending.deadline = pending.request.deadline;
  if (!pending.deadline && config_.slo.default_deadline_ms > 0.0) {
    pending.deadline =
        now + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double, std::milli>(
                      config_.slo.default_deadline_ms));
  }
  std::future<RouteReply> fut = pending.promise.get_future();

  // A symmetry-store hit is answered even when the deadline is hopeless —
  // the reply is free, so rejecting it would only discard useful work.
  if (caching_enabled()) {
    pending.canon = canonicalize(*pending.request.grid);
    experience::HitTier tier = experience::HitTier::kMiss;
    if (std::optional<experience::ExperienceRecord> hit = store_->get(
            experience::CanonicalKey::from_bytes(pending.canon.key), &tier)) {
      metrics_.add_cache_hit();
      serve_obs().cache_hits.inc();
      RouteReply reply = replay_cached(pending.request, pending.canon, *hit);
      reply.hit_tier = tier;
      const Clock::time_point done = Clock::now();
      reply.total_seconds = seconds_between(now, done);
      if (pending.deadline) {
        serve_obs().slo_slack.observe(
            std::max(0.0, seconds_between(done, *pending.deadline)));
        if (done > *pending.deadline) {
          reply.deadline_met = false;
          metrics_.add_deadline_miss();
          serve_obs().deadline_misses.inc();
          serve_obs().slo_deadline_misses.inc();
        }
      }
      metrics_.record_stage(Stage::kTotal, reply.total_seconds);
      serve_obs().request_latency.observe(reply.total_seconds);
      pending.promise.set_value(std::move(reply));
      return fut;
    }
  }

  serve_obs().cache_misses.inc();

  // Admission control: resolve hopeless or over-capacity requests here,
  // synchronously and typed — never by blocking the caller.
  const auto reject = [&](ReplyStatus status) {
    RouteReply reply;
    reply.grid = pending.request.grid;
    reply.status = status;
    reply.deadline_met = false;
    reply.total_seconds = seconds_between(now, Clock::now());
    pending.promise.set_value(std::move(reply));
  };

  if (config_.slo.reject_hopeless && pending.deadline) {
    const double slack_ms = seconds_between(now, *pending.deadline) * 1e3;
    if (slack_ms < config_.slo.min_slack_ms) {
      metrics_.add_rejected_hopeless();
      serve_obs().slo_rejected_hopeless.inc();
      reject(ReplyStatus::kOverloadedHopelessDeadline);
      return fut;
    }
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (config_.slo.max_queue_depth > 0 &&
        queue_.size() >= config_.slo.max_queue_depth) {
      metrics_.add_rejected_queue_full();
      serve_obs().slo_rejected_queue_full.inc();
      reject(ReplyStatus::kOverloadedQueueFull);
      return fut;
    }
    queue_.push_back(std::move(pending));
    serve_obs().queue_depth.set(double(queue_.size()));
  }
  cv_.notify_all();
  return fut;
}

RouteReply RouterService::route(std::shared_ptr<const HananGrid> grid) {
  return submit(RouteRequest{std::move(grid), std::nullopt}).get();
}

void RouterService::batcher_loop() {
  for (;;) {
    Batch batch = take_batch();
    if (batch.items.empty()) return;
    process_batch(std::move(batch));
  }
}

RouterService::Batch RouterService::take_batch() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
  if (queue_.empty()) {
    // Stopping and drained: leave the liveness gauge at its true value
    // instead of whatever the last scrape saw.
    serve_obs().queue_depth.set(0.0);
    return {};
  }

  // Leader = the most urgent request (earliest effective deadline, FIFO
  // among the deadline-less); its shape defines the micro-batch.
  Batch batch;
  const auto leader = detail::most_urgent(
      queue_.begin(), queue_.end(),
      [](const Pending& p) -> const std::optional<Clock::time_point>& {
        return p.deadline;
      });
  batch.items.push_back(std::move(*leader));
  queue_.erase(leader);
  batch.popped = Clock::now();
  const HananGrid& shape = *batch.items.front().request.grid;

  const auto harvest = [&] {
    for (auto it = queue_.begin();
         it != queue_.end() && batch.items.size() < config_.max_batch;) {
      if (same_shape(*it->request.grid, shape)) {
        batch.items.push_back(std::move(*it));
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
  };

  harvest();
  // Straggler wait, capped at the leader's deadline so a zero-slack
  // request never waits for company.  batch_wait_ms == 0 (or a leader
  // already at/past its deadline) short-circuits: no timed wait at all.
  if (config_.batch_wait_ms > 0.0 && batch.items.size() < config_.max_batch &&
      !stopping_) {
    Clock::time_point wait_until =
        batch.popped + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               config_.batch_wait_ms));
    const std::optional<Clock::time_point>& leader_deadline =
        batch.items.front().deadline;
    if (leader_deadline && *leader_deadline < wait_until) {
      wait_until = *leader_deadline;
    }
    if (wait_until > Clock::now()) {
      timed_waits_.fetch_add(1, std::memory_order_relaxed);
      while (batch.items.size() < config_.max_batch && !stopping_) {
        if (cv_.wait_until(lock, wait_until) == std::cv_status::timeout) {
          harvest();
          break;
        }
        harvest();
      }
    }
  }
  serve_obs().queue_depth.set(double(queue_.size()));
  return batch;
}

void RouterService::process_batch(Batch batch_in) {
  std::vector<Pending>& batch = batch_in.items;
  const Clock::time_point popped = batch_in.popped;
  for (const Pending& p : batch) {
    // Stragglers harvested during the wait can be enqueued after the
    // leader popped; their queue wait is effectively zero.
    metrics_.record_stage(Stage::kQueueWait,
                          std::max(0.0, seconds_between(p.enqueued, popped)));
  }
  metrics_.add_batch(batch.size());
  serve_obs().batches.inc();
  serve_obs().batch_occupancy.observe(double(batch.size()));

  std::vector<const HananGrid*> grids;
  grids.reserve(batch.size());
  for (const Pending& p : batch) grids.push_back(p.request.grid.get());

  // Assembly = leader popped -> inference dispatch: the straggler wait
  // plus the harvesting/feature gathering above.
  const double assembly_seconds = seconds_between(popped, Clock::now());
  metrics_.record_stage(Stage::kBatchAssembly, assembly_seconds);

  // Stage 1: one batched U-Net pass for the whole micro-batch.
  util::Timer infer_timer;
  const std::vector<std::vector<double>> fsp =
      batched_fsp(*selector_, grids, &pool_);
  const double infer_seconds = infer_timer.seconds();
  metrics_.record_stage(Stage::kInference, infer_seconds);
  serve_obs().inference_latency.observe(infer_seconds);

  // Stage 2: per-net top-k + OARMST construction across the pool.
  util::Timer route_timer;
  std::vector<route::OarmstResult> results(batch.size());
  pool_.parallel_for(batch.size(), [&](std::size_t i) {
    const HananGrid& grid = *batch[i].request.grid;
    const std::int32_t budget =
        std::max<std::int32_t>(0, std::int32_t(grid.pins().size()) - 2);
    const std::vector<Vertex> steiner =
        rl::SteinerSelector::top_k_valid(grid, fsp[i], budget, {});
    // Per-pool-thread scratch: the maze arrays persist across batches, so
    // steady-state serving does no O(V) routing allocations.
    route::OarmstRouter router(grid);
    results[i] = router.build(grid.pins(), steiner, &route::local_router_scratch());
  });
  const double route_seconds = route_timer.seconds();
  metrics_.record_stage(Stage::kRouting, route_seconds);
  serve_obs().routing_latency.observe(route_seconds);

  const Clock::time_point done = Clock::now();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Pending& p = batch[i];
    route::OarmstResult& res = results[i];

    if (caching_enabled() && res.connected) {
      // Stored in canonical vertex space so symmetry variants hit too.
      // The record also carries the fsp inference and kept Steiner set in
      // pin-stripped base space — the warm-start payload MCTS mines for
      // near-miss priors (experience/record.hpp).
      const HananGrid& grid = *p.request.grid;
      std::vector<float> fsp_f(fsp[i].begin(), fsp[i].end());
      store_->put(experience::build_record(grid, p.canon, res, fsp_f,
                                           res.kept_steiner));
      serve_obs().cache_entries.set(double(store_->memory_entries()));
    }

    RouteReply reply;
    reply.grid = p.request.grid;
    reply.result = std::move(res);
    reply.result.tree.rebind_grid(reply.grid.get());
    reply.cache_hit = false;
    reply.queue_seconds = std::max(0.0, seconds_between(p.enqueued, popped));
    reply.inference_seconds = infer_seconds;
    reply.routing_seconds = route_seconds;
    reply.total_seconds = seconds_between(p.enqueued, done);
    if (p.deadline) {
      serve_obs().slo_slack.observe(
          std::max(0.0, seconds_between(done, *p.deadline)));
      if (done > *p.deadline) {
        reply.deadline_met = false;
        metrics_.add_deadline_miss();
        serve_obs().deadline_misses.inc();
        serve_obs().slo_deadline_misses.inc();
      }
    }
    metrics_.record_stage(Stage::kTotal, reply.total_seconds);
    serve_obs().request_latency.observe(reply.total_seconds);
    p.promise.set_value(std::move(reply));
  }
}

void RouterService::refresh_gauges() {
  ServeObs& o = serve_obs();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    o.queue_depth.set(double(queue_.size()));
  }
  o.cache_entries.set(double(store_->memory_entries()));
  // Percentile gauges are point-in-time views over the retained samples —
  // recomputed at every scrape, like the liveness gauges above.
  const MetricsSnapshot snap = metrics_.snapshot();
  const StageSummary& total = snap.stages[std::size_t(Stage::kTotal)];
  o.slo_p50_latency.set(total.p50_ms * 1e-3);
  o.slo_p99_latency.set(total.p99_ms * 1e-3);
}

std::string RouterService::scrape_prometheus() {
  refresh_gauges();
  return obs::scrape_prometheus();
}

std::string RouterService::scrape_json() {
  refresh_gauges();
  return obs::scrape_json();
}

bool RouterService::caching_enabled() const {
  // The injected-store case must consult the store's own config (our
  // config_'s cache fields are ignored then).
  return store_->config().memory_capacity > 0 || store_->has_disk_tier();
}

RouteReply RouterService::replay_cached(
    const RouteRequest& request, const CanonicalForm& canon,
    const experience::ExperienceRecord& cached) const {
  const HananGrid& grid = *request.grid;
  const std::vector<Vertex> inv = inverse_vertex_map(grid, canon.spec);

  RouteReply reply;
  reply.grid = request.grid;
  reply.cache_hit = true;

  route::RouteTree tree(request.grid.get());
  for (const route::GridEdge& e : cached.edges) {
    tree.add_edge(inv[std::size_t(e.a)], inv[std::size_t(e.b)]);
  }
  reply.result.tree = std::move(tree);
  reply.result.cost = cached.cost;
  reply.result.connected = cached.connected;
  reply.result.rebuild_passes = 0;
  reply.result.kept_steiner.reserve(cached.steiner.size());
  for (Vertex v : cached.steiner) {
    reply.result.kept_steiner.push_back(inv[std::size_t(v)]);
  }
  return reply;
}

}  // namespace oar::serve
