#pragma once

// Size-agnostic scalar value network used by the PPO baseline's critic:
// two residual blocks -> global average pool -> small MLP -> 1 value.

#include <memory>

#include "nn/linear.hpp"
#include "nn/residual_block.hpp"

namespace oar::nn {

struct ValueNetConfig {
  std::int32_t in_channels = 7;
  std::int32_t channels = 8;
  std::int32_t hidden = 16;
  std::uint64_t seed = 0x7a1;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

class ValueNet : public Module {
 public:
  explicit ValueNet(ValueNetConfig config = {});

  /// (C, H, V, M) -> (1) scalar value.
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  void set_training(bool training) override;

 private:
  ValueNetConfig config_;
  std::unique_ptr<ResidualBlock3d> block1_;
  std::unique_ptr<ResidualBlock3d> block2_;
  GlobalAvgPool3d gap_;
  std::unique_ptr<Linear> fc1_;
  ReLU relu_;
  std::unique_ptr<Linear> fc2_;
};

}  // namespace oar::nn
