// Persistent-experience acceptance bench (DESIGN.md §18).
//
// Two phases, both landing in BENCH_experience.json:
//
//   1. restart survival — a RouterService backed by an on-disk experience
//      store routes a layout sweep cold (all misses), is torn down (the
//      "deploy"), and a fresh service over the same file replays the
//      identical sweep.  Reports cold vs warm-restart episodes/sec and the
//      restart hit rate.  HARD GATE in every mode: the rerun must answer
//      100% of requests from the store (disk or promoted-memory hits).
//
//   2. warm-started search — CombMcts routes N layouts cold at a fixed
//      budget, records each episode, then replays every layout warm at the
//      SAME budget.  HARD GATE in every mode: warm best cost <= cold best
//      cost on every replayed layout (the exact-match floor makes this a
//      deterministic guarantee, not a statistical hope), and the
//      warm_start=false anchor must be bitwise identical to the cold run.
//
// `--smoke` shrinks both sweeps; the gates stay armed (they are
// correctness statements, not timing assertions).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "experience/record.hpp"
#include "experience/store.hpp"
#include "gen/random_layout.hpp"
#include "mcts/comb_mcts.hpp"
#include "route/oarmst.hpp"
#include "serve/service.hpp"
#include "util/rng.hpp"

namespace {

using namespace oar;

std::vector<std::shared_ptr<const hanan::HananGrid>> make_layouts(
    std::size_t count) {
  gen::RandomGridSpec spec;  // defaults: 16x16x4, 3..6 pins
  util::Rng rng(20260809);
  std::vector<std::shared_ptr<const hanan::HananGrid>> grids;
  grids.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    grids.push_back(
        std::make_shared<const hanan::HananGrid>(gen::random_grid(spec, rng)));
  }
  return grids;
}

struct RestartResult {
  std::size_t episodes = 0;
  double cold_eps = 0.0;      // episodes/sec, empty store
  double restart_eps = 0.0;   // episodes/sec, fresh service over the file
  double restart_hit_rate = 0.0;
  std::size_t disk_records = 0;
  std::uint64_t file_bytes = 0;
};

struct WarmSearchResult {
  std::size_t layouts = 0;
  std::size_t warm_not_worse = 0;  // layouts where warm best <= cold best
  std::size_t anchor_identical = 0;
  double mean_cold_cost = 0.0;
  double mean_warm_cost = 0.0;
  double mean_improvement = 0.0;  // (cold - warm) / cold, averaged
  double cold_eps = 0.0;
  double warm_eps = 0.0;
};

bool write_json(const char* path, bool smoke, const RestartResult& rs,
                const WarmSearchResult& ws) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"restart\": {\n");
  std::fprintf(f, "    \"episodes\": %zu,\n", rs.episodes);
  std::fprintf(f, "    \"cold_episodes_per_sec\": %.2f,\n", rs.cold_eps);
  std::fprintf(f, "    \"restart_episodes_per_sec\": %.2f,\n", rs.restart_eps);
  std::fprintf(f, "    \"restart_hit_rate\": %.4f,\n", rs.restart_hit_rate);
  std::fprintf(f, "    \"disk_records\": %zu,\n", rs.disk_records);
  std::fprintf(f, "    \"file_bytes\": %llu\n",
               static_cast<unsigned long long>(rs.file_bytes));
  std::fprintf(f, "  },\n  \"warm_search\": {\n");
  std::fprintf(f, "    \"layouts\": %zu,\n", ws.layouts);
  std::fprintf(f, "    \"warm_not_worse\": %zu,\n", ws.warm_not_worse);
  std::fprintf(f, "    \"anchor_identical\": %zu,\n", ws.anchor_identical);
  std::fprintf(f, "    \"mean_cold_cost\": %.6f,\n", ws.mean_cold_cost);
  std::fprintf(f, "    \"mean_warm_cost\": %.6f,\n", ws.mean_warm_cost);
  std::fprintf(f, "    \"mean_improvement\": %.6f,\n", ws.mean_improvement);
  std::fprintf(f, "    \"cold_episodes_per_sec\": %.2f,\n", ws.cold_eps);
  std::fprintf(f, "    \"warm_episodes_per_sec\": %.2f\n", ws.warm_eps);
  std::fprintf(f, "  },\n  %s\n}\n", bench::machine_json().c_str());
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::string store_path = "BENCH_experience.oarexp";
  std::remove(store_path.c_str());
  auto selector = bench::bench_selector();
  bool ok = true;

  // ---- Phase 1: serving-path restart survival ----
  RestartResult rs;
  rs.episodes = smoke ? 16 : 64;
  const auto grids = make_layouts(rs.episodes);
  std::printf("bench_experience: %zu random 16x16x4 layouts%s\n\n",
              rs.episodes, smoke ? " (smoke)" : "");
  {
    serve::RouterServiceConfig cfg;
    cfg.max_batch = 8;
    cfg.cache_capacity = 2 * rs.episodes;
    cfg.experience_path = store_path;
    util::Timer cold_t;
    {
      serve::RouterService service(selector, cfg);
      for (const auto& g : grids) {
        const serve::RouteReply reply = service.route(g);
        if (reply.cache_hit || !reply.result.connected) ok = false;
      }
      rs.cold_eps = double(rs.episodes) / cold_t.seconds();
      service.experience().flush();
    }  // teardown = deploy

    serve::RouterService reborn(selector, cfg);
    std::size_t hits = 0;
    util::Timer warm_t;
    for (const auto& g : grids) {
      const serve::RouteReply reply = reborn.route(g);
      if (reply.cache_hit) ++hits;
      if (!reply.result.connected) ok = false;
    }
    rs.restart_eps = double(rs.episodes) / warm_t.seconds();
    rs.restart_hit_rate = double(hits) / double(rs.episodes);
    const experience::StoreStats stats = reborn.experience().stats();
    rs.disk_records = stats.disk.records;
    rs.file_bytes = stats.disk.file_bytes;
  }
  std::printf("restart: cold %7.1f eps  ->  rerun %7.1f eps after restart\n",
              rs.cold_eps, rs.restart_eps);
  std::printf(
      "restart hit rate %.0f%%  [%s] (need 100%%)   %zu disk records, "
      "%llu bytes\n\n",
      100.0 * rs.restart_hit_rate,
      rs.restart_hit_rate >= 1.0 ? "PASS" : "FAIL", rs.disk_records,
      static_cast<unsigned long long>(rs.file_bytes));
  if (rs.restart_hit_rate < 1.0) ok = false;

  // ---- Phase 2: warm-started search at a fixed budget ----
  WarmSearchResult ws;
  ws.layouts = smoke ? 6 : 24;
  {
    gen::RandomGridSpec spec;
    spec.h = 8, spec.v = 8, spec.m = 2;
    spec.min_pins = 4, spec.max_pins = 5;
    spec.min_obstacles = 4, spec.max_obstacles = 8;
    util::Rng rng(7);
    std::vector<hanan::HananGrid> layouts;
    for (std::size_t i = 0; i < ws.layouts; ++i) {
      layouts.push_back(gen::random_grid(spec, rng));
    }

    experience::StoreConfig sc;
    sc.path = store_path + ".search";
    std::remove(sc.path.c_str());
    experience::Store store(sc);

    mcts::CombMctsConfig cfg;
    cfg.iterations_per_move = smoke ? 32 : 96;
    cfg.use_critic = false;

    util::RunningStats cold_cost, warm_cost, improvement;
    route::RouterScratch scratch;
    util::Timer cold_t;
    std::vector<mcts::CombMctsResult> cold_runs;
    for (const hanan::HananGrid& grid : layouts) {
      mcts::CombMcts cold(*selector, cfg);
      cold_runs.push_back(cold.run(grid));
    }
    ws.cold_eps = double(ws.layouts) / cold_t.seconds();

    for (std::size_t i = 0; i < layouts.size(); ++i) {
      const hanan::HananGrid& grid = layouts[i];
      const mcts::CombMctsResult& cold_res = cold_runs[i];
      cold_cost.add(cold_res.best_cost);

      // The warm_start=false anchor: a store attached but the knob off
      // must reproduce the cold search bitwise.
      mcts::CombMcts anchor(*selector, cfg, &store);
      const mcts::CombMctsResult anchor_res = anchor.run(grid);
      if (anchor_res.best_cost == cold_res.best_cost &&
          anchor_res.selected == cold_res.selected &&
          anchor_res.label == cold_res.label) {
        ++ws.anchor_identical;
      } else {
        ok = false;
      }

      // Record the cold episode, replay warm at the same budget.
      route::OarmstRouter router(grid);
      const route::OarmstResult routed =
          router.build(grid.pins(), cold_res.best_selected, &scratch);
      if (routed.connected) {
        store.put(experience::build_record(grid, routed, cold_res.label,
                                           cold_res.best_selected));
      }
    }
    store.flush();

    util::Timer warm_t;
    for (std::size_t i = 0; i < layouts.size(); ++i) {
      mcts::CombMctsConfig warm_cfg = cfg;
      warm_cfg.warm_start = true;
      mcts::CombMcts warm(*selector, warm_cfg, &store);
      const mcts::CombMctsResult warm_res = warm.run(layouts[i]);
      warm_cost.add(warm_res.best_cost);
      const double cold_best = cold_runs[i].best_cost;
      if (warm_res.best_cost <= cold_best) ++ws.warm_not_worse;
      if (cold_best > 0.0) {
        improvement.add((cold_best - warm_res.best_cost) / cold_best);
      }
    }
    ws.warm_eps = double(ws.layouts) / warm_t.seconds();
    ws.mean_cold_cost = cold_cost.mean();
    ws.mean_warm_cost = warm_cost.mean();
    ws.mean_improvement = improvement.mean();
    std::remove(sc.path.c_str());
  }
  std::printf("warm search: %zu layouts at fixed budget\n", ws.layouts);
  std::printf("  anchor (warm_start=false) bitwise identical: %zu/%zu  [%s]\n",
              ws.anchor_identical, ws.layouts,
              ws.anchor_identical == ws.layouts ? "PASS" : "FAIL");
  std::printf(
      "  warm best <= cold best: %zu/%zu  [%s]   mean cost %.1f -> %.1f "
      "(%.2f%% better)\n",
      ws.warm_not_worse, ws.layouts,
      ws.warm_not_worse == ws.layouts ? "PASS" : "FAIL", ws.mean_cold_cost,
      ws.mean_warm_cost, 100.0 * ws.mean_improvement);
  std::printf("  throughput: cold %.1f eps, warm %.1f eps\n\n", ws.cold_eps,
              ws.warm_eps);
  if (ws.warm_not_worse != ws.layouts) ok = false;

  if (write_json("BENCH_experience.json", smoke, rs, ws)) {
    std::printf("results -> BENCH_experience.json\n");
  }
  std::remove(store_path.c_str());
  std::printf("experience gates: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
