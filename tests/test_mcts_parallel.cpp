// ParallelCombMcts determinism & concurrency battery (DESIGN.md §15).
//
// The gates, strongest first:
//   1. search_workers = 1 is BITWISE identical to the serial CombMcts —
//      labels, executed combination, costs, and tree statistics.
//   2. On exhaustively searchable layouts (3 pins => a one-point budget and
//      all-terminal children) every worker count reaches the identical
//      best-cost fixed point, because every root child is provably
//      evaluated (checked via the node count).
//   3. At K > 1 thread interleaving makes labels distribution-equivalent
//      rather than bitwise: over >= 64 fixed-seed episodes the mean
//      best/initial cost ratio of 2- and 4-worker searches must sit within
//      a small noise bound of the serial mean.
//   4. The virtual-loss invariant: every stamp is reverted by the end of
//      the episode (the search also self-checks this after every move and
//      throws — these runs completing IS the test passing).

#include "mcts/parallel.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/mcts_router.hpp"
#include "core/registry.hpp"
#include "gen/random_layout.hpp"
#include "rl/trainer.hpp"

namespace oar::mcts {
namespace {

rl::SelectorConfig tiny_config() {
  rl::SelectorConfig cfg;
  cfg.unet.base_channels = 4;
  cfg.unet.depth = 1;
  cfg.unet.seed = 33;
  return cfg;
}

HananGrid test_grid(std::uint64_t seed, std::int32_t pins = 4,
                    std::int32_t h = 6, std::int32_t v = 6, std::int32_t m = 2,
                    std::int32_t obstacles = 2) {
  util::Rng rng(seed);
  gen::RandomGridSpec spec;
  spec.h = h;
  spec.v = v;
  spec.m = m;
  spec.min_pins = pins;
  spec.max_pins = pins;
  spec.min_obstacles = obstacles;
  spec.max_obstacles = obstacles == 0 ? 0 : obstacles + 2;
  spec.min_edge_cost = 1;
  spec.max_edge_cost = 10;
  return gen::random_grid(spec, rng);
}

CombMctsConfig quick_config(std::int32_t workers) {
  CombMctsConfig cfg;
  cfg.iterations_per_move = 24;
  cfg.use_critic = true;
  cfg.search_workers = workers;
  cfg.flush_us = 50;  // tests favor latency over batch occupancy
  return cfg;
}

void expect_bitwise_equal(const CombMctsResult& a, const CombMctsResult& b) {
  // Costs and executed combination.
  EXPECT_EQ(a.initial_cost, b.initial_cost);
  EXPECT_EQ(a.final_cost, b.final_cost);
  EXPECT_EQ(a.best_cost, b.best_cost);
  EXPECT_EQ(a.selected, b.selected);
  // Labels: float-exact, element for element.
  ASSERT_EQ(a.label.size(), b.label.size());
  for (std::size_t i = 0; i < a.label.size(); ++i) {
    EXPECT_EQ(a.label[i], b.label[i]) << "label diverges at priority " << i;
  }
  EXPECT_EQ(a.label_mask, b.label_mask);
  // Tree statistics (everything except wall time and vloss accounting,
  // which the serial search does not maintain).
  EXPECT_EQ(a.stats.iterations, b.stats.iterations);
  EXPECT_EQ(a.stats.expansions, b.stats.expansions);
  EXPECT_EQ(a.stats.simulations, b.stats.simulations);
  EXPECT_EQ(a.stats.nodes, b.stats.nodes);
  EXPECT_EQ(a.stats.executed_moves, b.stats.executed_moves);
}

TEST(ParallelCombMcts, SingleWorkerBitwiseIdenticalToSerial) {
  rl::SteinerSelector selector(tiny_config());
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const HananGrid grid = test_grid(seed, 5);
    CombMcts serial(selector, quick_config(1));
    const CombMctsResult a = serial.run(grid);
    ParallelCombMcts parallel(selector, quick_config(1));
    const CombMctsResult b = parallel.run(grid);
    SCOPED_TRACE("seed " + std::to_string(seed));
    expect_bitwise_equal(a, b);
    // With one worker virtual losses are still stamped and reverted.
    EXPECT_EQ(b.stats.vloss_applied, b.stats.vloss_reverted);
  }
}

TEST(ParallelCombMcts, SingleWorkerRepeatedEpisodesStayBitwise) {
  // The EvalServer persists across run() calls; reuse must not perturb the
  // bitwise anchor.
  rl::SteinerSelector selector(tiny_config());
  ParallelCombMcts parallel(selector, quick_config(1));
  for (std::uint64_t seed = 11; seed <= 13; ++seed) {
    const HananGrid grid = test_grid(seed, 5);
    CombMcts serial(selector, quick_config(1));
    const CombMctsResult a = serial.run(grid);
    const CombMctsResult b = parallel.run(grid);
    SCOPED_TRACE("seed " + std::to_string(seed));
    expect_bitwise_equal(a, b);
  }
}

TEST(ParallelCombMcts, VirtualLossesAllRevertedAfterEveryEpisode) {
  rl::SteinerSelector selector(tiny_config());
  for (std::int32_t workers : {2, 4}) {
    CombMctsConfig cfg = quick_config(workers);
    ParallelCombMcts search(selector, cfg);
    for (std::uint64_t seed = 21; seed <= 23; ++seed) {
      const HananGrid grid = test_grid(seed, 5);
      // run() self-checks the per-edge vloss counters after every root
      // move and throws std::logic_error on violation — completing at all
      // is the structural half of this test.
      const CombMctsResult r = search.run(grid);
      EXPECT_GT(r.stats.vloss_applied, 0);
      EXPECT_EQ(r.stats.vloss_applied, r.stats.vloss_reverted)
          << "workers=" << workers << " seed=" << seed;
      EXPECT_LE(r.best_cost, r.initial_cost + 1e-9);
    }
  }
}

TEST(ParallelCombMcts, ExhaustiveLayoutsReachIdenticalBestCost) {
  // 3 pins => budget 1 => every root child is terminal at level 1.  With an
  // iteration budget far beyond the child count, UCT provably evaluates
  // every child (the node count asserts it), so best_cost is the exhaustive
  // optimum — EXACTLY equal across serial and any worker count.
  rl::SteinerSelector selector(tiny_config());
  for (std::uint64_t seed = 31; seed <= 34; ++seed) {
    const HananGrid grid = test_grid(seed, /*pins=*/3, 3, 3, 2, /*obstacles=*/0);
    std::int64_t n_children = 0;
    for (Vertex v = 0; v < grid.num_vertices(); ++v) {
      if (!grid.is_pin(v) && !grid.is_blocked(v)) ++n_children;
    }
    CombMctsConfig cfg;
    cfg.iterations_per_move = 4000;
    cfg.flush_us = 50;

    CombMcts serial(selector, cfg);
    const CombMctsResult base = serial.run(grid);
    ASSERT_EQ(base.stats.nodes, n_children)
        << "seed " << seed << ": serial search did not exhaust the layout";

    for (std::int32_t workers : {2, 4}) {
      CombMctsConfig pcfg = cfg;
      pcfg.search_workers = workers;
      ParallelCombMcts parallel(selector, pcfg);
      const CombMctsResult r = parallel.run(grid);
      SCOPED_TRACE("seed " + std::to_string(seed) + " workers " +
                   std::to_string(workers));
      ASSERT_EQ(r.stats.nodes, n_children) << "parallel search did not exhaust";
      EXPECT_DOUBLE_EQ(r.best_cost, base.best_cost);
      EXPECT_DOUBLE_EQ(r.initial_cost, base.initial_cost);
    }
  }
}

TEST(ParallelCombMcts, StatisticalEquivalenceOverFixedSeedEpisodes) {
  // Satellite gate: >= 64 fixed-seed episodes, serial vs 2- and 4-worker
  // means within a noise bound.  Layout quality is measured as
  // best_cost / initial_cost (lower = better), the trainer's own
  // mean_mcts_st_mst metric.
  rl::SteinerSelector selector(tiny_config());
  constexpr std::uint64_t kEpisodes = 64;
  CombMctsConfig cfg;
  cfg.iterations_per_move = 12;
  cfg.flush_us = 50;

  std::vector<HananGrid> grids;
  grids.reserve(kEpisodes);
  for (std::uint64_t e = 0; e < kEpisodes; ++e) {
    grids.push_back(test_grid(100 + e, 4, 5, 5, 2));
  }

  auto mean_ratio = [&](std::int32_t workers) {
    double sum = 0.0;
    std::size_t count = 0;
    CombMctsConfig wcfg = cfg;
    wcfg.search_workers = workers;
    if (workers == 1) {
      CombMcts search(selector, wcfg);
      for (const HananGrid& grid : grids) {
        const CombMctsResult r = search.run(grid);
        if (r.initial_cost > 0.0 && std::isfinite(r.initial_cost)) {
          sum += r.best_cost / r.initial_cost;
          ++count;
        }
      }
    } else {
      ParallelCombMcts search(selector, wcfg);
      for (const HananGrid& grid : grids) {
        const CombMctsResult r = search.run(grid);
        if (r.initial_cost > 0.0 && std::isfinite(r.initial_cost)) {
          sum += r.best_cost / r.initial_cost;
          ++count;
        }
      }
    }
    EXPECT_GT(count, kEpisodes / 2);
    return sum / double(count);
  };

  const double serial_mean = mean_ratio(1);
  const double two_mean = mean_ratio(2);
  const double four_mean = mean_ratio(4);
  // The ratio lives in (0, 1]; 0.05 absolute is ~4 sigma of the observed
  // per-episode spread at this layout size.
  EXPECT_NEAR(two_mean, serial_mean, 0.05);
  EXPECT_NEAR(four_mean, serial_mean, 0.05);
}

TEST(ParallelCombMcts, HardwareWorkerCountResolvesAndRuns) {
  rl::SteinerSelector selector(tiny_config());
  CombMctsConfig cfg = quick_config(0);  // 0 = hardware concurrency
  ParallelCombMcts search(selector, cfg);
  EXPECT_GE(search.workers(), 1);
  const HananGrid grid = test_grid(41, 4);
  const CombMctsResult r = search.run(grid);
  EXPECT_EQ(r.stats.vloss_applied, r.stats.vloss_reverted);
  EXPECT_LE(std::int64_t(r.selected.size()),
            std::int64_t(grid.pins().size()) - 2);
}

TEST(ParallelCombMcts, EvalServerBatchesLeavesAtHigherWorkerCounts) {
  rl::SteinerSelector selector(tiny_config());
  CombMctsConfig cfg = quick_config(4);
  cfg.flush_us = 2'000;  // give concurrent leaves a window to fuse
  ParallelCombMcts search(selector, cfg);
  for (std::uint64_t seed = 51; seed <= 53; ++seed) {
    search.run(test_grid(seed, 6));
  }
  const EvalServer::Stats stats = search.eval_server().stats();
  EXPECT_GT(stats.requests, 0u);
  EXPECT_GT(stats.batches, 0u);
  // Every expansion went through the server, none were dropped.
  EXPECT_GE(stats.requests, stats.batches);
}

TEST(ParallelCombMcts, TrainerUsesParallelSearchWhenConfigured) {
  rl::SteinerSelector selector([] {
    rl::SelectorConfig cfg;
    cfg.unet.base_channels = 4;
    cfg.unet.depth = 1;
    cfg.unet.seed = 101;
    return cfg;
  }());
  rl::TrainConfig cfg;
  cfg.sizes = {{6, 6, 2}};
  cfg.layouts_per_size = 2;
  cfg.stages = 1;
  cfg.epochs_per_stage = 1;
  cfg.batch_size = 8;
  cfg.augment_count = 4;
  cfg.mcts.iterations_per_move = 12;
  cfg.mcts.search_workers = 2;
  cfg.mcts.flush_us = 50;
  cfg.curriculum_stages = 1;
  cfg.min_pins = 3;
  cfg.max_pins = 4;
  cfg.threads = 2;
  rl::CombTrainer trainer(selector, cfg);
  const rl::StageReport report = trainer.run_stage();
  EXPECT_EQ(report.raw_samples, 2);
  EXPECT_GT(report.train_samples, 0);
  EXPECT_TRUE(std::isfinite(report.mean_loss));
}

TEST(MctsRouterEngine, RegisteredAndRoutesThroughParallelSearch) {
  EXPECT_TRUE(core::RouterRegistry::instance().contains("rl-mcts"));

  auto selector = std::make_shared<rl::SteinerSelector>(tiny_config());
  CombMctsConfig cfg;
  cfg.iterations_per_move = 12;
  cfg.search_workers = 2;
  cfg.flush_us = 50;
  core::MctsRouter router(selector, cfg);
  EXPECT_EQ(router.name(), "rl-mcts");

  const HananGrid grid = test_grid(61, 5);
  const route::OarmstResult result = router.route(grid);
  EXPECT_TRUE(result.connected);
  EXPECT_TRUE(std::isfinite(result.cost));
  EXPECT_GT(router.last_stats().iterations, 0);
}

}  // namespace
}  // namespace oar::mcts
