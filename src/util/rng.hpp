#pragma once

// Deterministic, fast random number generation.
//
// All stochastic components of the library (layout generation, MCTS
// tie-breaking, network initialization, PPO sampling) draw from Rng so that
// every experiment is reproducible from a single seed.  The generator is
// xoshiro256**, seeded through splitmix64 as recommended by its authors.

#include <cstdint>
#include <vector>

namespace oar::util {

/// splitmix64 step; used for seeding and for cheap stateless hashing.
std::uint64_t splitmix64(std::uint64_t& state);

/// Complete serializable generator state (xoshiro words plus the Box-Muller
/// spare), so a checkpointed training run resumes with the exact stream it
/// would have produced uninterrupted.
struct RngState {
  std::uint64_t s[4] = {0, 0, 0, 0};
  bool have_spare_normal = false;
  double spare_normal = 0.0;

  friend bool operator==(const RngState&, const RngState&) = default;
};

/// xoshiro256** pseudo-random generator with helpers for the distributions
/// the library needs.  Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()() { return next(); }

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [lo, hi] (inclusive).  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller.
  double normal();

  /// Normal with given mean / stddev.
  double normal(double mean, double stddev);

  /// Bernoulli trial.
  bool chance(double p);

  /// Index in [0, weights.size()) drawn proportionally to `weights`.
  /// All weights must be >= 0 and at least one must be > 0.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (for parallel workers).
  Rng split();

  /// Snapshot / restore the full generator state (checkpoint/resume).
  RngState state() const;
  void set_state(const RngState& state);

 private:
  std::uint64_t s_[4];
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace oar::util
