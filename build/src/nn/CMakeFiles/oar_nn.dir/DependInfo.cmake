
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cpp" "src/nn/CMakeFiles/oar_nn.dir/activations.cpp.o" "gcc" "src/nn/CMakeFiles/oar_nn.dir/activations.cpp.o.d"
  "/root/repo/src/nn/conv3d.cpp" "src/nn/CMakeFiles/oar_nn.dir/conv3d.cpp.o" "gcc" "src/nn/CMakeFiles/oar_nn.dir/conv3d.cpp.o.d"
  "/root/repo/src/nn/gradcheck.cpp" "src/nn/CMakeFiles/oar_nn.dir/gradcheck.cpp.o" "gcc" "src/nn/CMakeFiles/oar_nn.dir/gradcheck.cpp.o.d"
  "/root/repo/src/nn/group_norm.cpp" "src/nn/CMakeFiles/oar_nn.dir/group_norm.cpp.o" "gcc" "src/nn/CMakeFiles/oar_nn.dir/group_norm.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/nn/CMakeFiles/oar_nn.dir/linear.cpp.o" "gcc" "src/nn/CMakeFiles/oar_nn.dir/linear.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/oar_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/oar_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/optim.cpp" "src/nn/CMakeFiles/oar_nn.dir/optim.cpp.o" "gcc" "src/nn/CMakeFiles/oar_nn.dir/optim.cpp.o.d"
  "/root/repo/src/nn/pool3d.cpp" "src/nn/CMakeFiles/oar_nn.dir/pool3d.cpp.o" "gcc" "src/nn/CMakeFiles/oar_nn.dir/pool3d.cpp.o.d"
  "/root/repo/src/nn/residual_block.cpp" "src/nn/CMakeFiles/oar_nn.dir/residual_block.cpp.o" "gcc" "src/nn/CMakeFiles/oar_nn.dir/residual_block.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/oar_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/oar_nn.dir/serialize.cpp.o.d"
  "/root/repo/src/nn/tensor.cpp" "src/nn/CMakeFiles/oar_nn.dir/tensor.cpp.o" "gcc" "src/nn/CMakeFiles/oar_nn.dir/tensor.cpp.o.d"
  "/root/repo/src/nn/unet3d.cpp" "src/nn/CMakeFiles/oar_nn.dir/unet3d.cpp.o" "gcc" "src/nn/CMakeFiles/oar_nn.dir/unet3d.cpp.o.d"
  "/root/repo/src/nn/value_net.cpp" "src/nn/CMakeFiles/oar_nn.dir/value_net.cpp.o" "gcc" "src/nn/CMakeFiles/oar_nn.dir/value_net.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/oar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
