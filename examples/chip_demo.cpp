// Full-chip routing demo: many nets on one shared grid, negotiated
// rip-up & reroute (DESIGN.md §14, README "Full-chip routing").
//
// Builds a small layout with an obstacle wall, generates a random netlist
// on it, routes the whole chip through the core::Router facade, prints a
// per-net table plus the negotiation trajectory, and round-trips the
// netlist through the plain-text file format.

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "core/oarsmtrl.hpp"

int main() {
  using namespace oar;

  // A 12x12x2 unit grid with a wall through the middle of layer 0 —
  // nets crossing it must share the gap or hop to layer 1.
  const std::int32_t H = 12, V = 12, M = 2;
  hanan::HananGrid grid(H, V, M, std::vector<double>(std::size_t(H - 1), 1.0),
                        std::vector<double>(std::size_t(V - 1), 1.0),
                        /*via_cost=*/2.0);
  for (std::int32_t v = 0; v < V; ++v) {
    if (v != 5 && v != 6) grid.block_vertex(grid.index(5, v, 0));
  }

  // Random netlist: 8 nets, non-overlapping pins, each solo-routable.
  util::Rng rng(9);
  const chip::Netlist netlist = gen::random_netlist(grid, 8, rng);

  // Round-trip through the text format (see README for the spec).
  std::ostringstream file;
  chip::write_netlist(netlist, grid, file);
  std::printf("---- netlist file ----\n%s----------------------\n",
              file.str().c_str());
  std::istringstream in(file.str());
  std::string error;
  const auto reloaded = chip::read_netlist(in, grid, &error);
  if (!reloaded) {
    std::fprintf(stderr, "round-trip failed: %s\n", error.c_str());
    return 1;
  }

  // Route the whole chip: lin08 single-net engine under PathFinder-style
  // negotiation.  Swap options.engine for "rl-ours" to drive the RL router.
  core::RouterOptions options;
  options.engine = "lin08";
  options.chip.order = chip::NetOrder::kHpwl;
  core::Router router(options);
  const core::ChipRouteResult chip_result = router.route(grid, *reloaded);
  const chip::ChipResult& r = chip_result.result;

  std::printf("engine %s: %s after %d iteration(s), overflow %" PRId64 "\n",
              chip_result.engine.c_str(),
              r.success ? "converged" : "NOT converged", r.iterations_run,
              r.overflow);
  std::printf("%-6s %5s %12s %5s %9s\n", "net", "pins", "wirelength", "vias",
              "reroutes");
  for (std::size_t i = 0; i < r.nets.size(); ++i) {
    const chip::NetRoute& net = r.nets[i];
    std::printf("%-6s %5zu %12.1f %5d %9d\n", net.name.c_str(),
                reloaded->nets[i].pins.size(), net.wirelength, net.vias,
                net.reroutes);
  }
  std::printf("total  %5" PRId64 " %12.1f %5" PRId64 "\n",
              reloaded->total_pins(), r.wirelength, r.via_count);
  std::printf("negotiation overflow series:");
  for (const chip::IterationStats& it : r.iterations) {
    std::printf(" %" PRId64, it.overflow);
  }
  std::printf("\n");
  return r.success ? 0 : 1;
}
