# Empty compiler generated dependencies file for bench_oracle_headroom.
# This may be replaced when dependencies are built.
