#include "rl/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <mutex>

#include "nn/loss.hpp"
#include "rl/augment.hpp"
#include "steiner/router_base.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace oar::rl {

gen::RandomGridSpec training_spec(const LayoutSizeSpec& size, double obstacle_density,
                                  std::int32_t min_pins, std::int32_t max_pins) {
  gen::RandomGridSpec spec;
  spec.h = size.h;
  spec.v = size.v;
  spec.m = size.m;
  spec.min_pins = min_pins;
  spec.max_pins = max_pins;
  // Paper (16x16x4): 32..64 obstacles of 3..4 cells ~= 2.7%..6% blocked.
  // Convert the requested density into a 1x3 / 1x4 run count.
  const double cells = double(size.h) * size.v * size.m;
  const double mean_len = 3.5;
  const auto target = std::int32_t(std::lround(obstacle_density * cells / mean_len));
  spec.min_obstacles = std::max(1, target / 2);
  spec.max_obstacles = std::max(spec.min_obstacles, target);
  return spec;
}

double fit_dataset(SteinerSelector& selector, nn::Adam& optimizer,
                   const Dataset& dataset, std::int32_t epochs,
                   std::size_t batch_size, double grad_clip, util::Rng& rng) {
  if (dataset.empty()) return 0.0;
  selector.net().set_training(true);
  double last_epoch_loss = 0.0;
  for (std::int32_t epoch = 0; epoch < epochs; ++epoch) {
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (const auto& batch : dataset.epoch_batches(batch_size, rng)) {
      optimizer.zero_grad();
      double batch_loss = 0.0;
      const float inv_batch = 1.0f / float(batch.size());
      for (const std::size_t idx : batch) {
        const TrainingSample& sample = dataset.sample(idx);
        const nn::Tensor input = SteinerSelector::encode(sample.grid, sample.extra_pins);
        const nn::Tensor logits = selector.net().forward(input);

        nn::Tensor label({1, sample.grid.h_dim(), sample.grid.v_dim(),
                          sample.grid.m_dim()});
        nn::Tensor mask(label.shape());
        std::copy(sample.label.begin(), sample.label.end(), label.data());
        std::copy(sample.mask.begin(), sample.mask.end(), mask.data());

        nn::Tensor grad_logits;
        batch_loss += nn::bce_with_logits(logits, label, grad_logits, &mask);
        grad_logits *= inv_batch;
        selector.net().backward(grad_logits);
      }
      optimizer.clip_grad_norm(grad_clip);
      optimizer.step();
      epoch_loss += batch_loss / double(batch.size());
      ++batches;
    }
    last_epoch_loss = batches == 0 ? 0.0 : epoch_loss / double(batches);
  }
  return last_epoch_loss;
}

CombTrainer::CombTrainer(SteinerSelector& selector, TrainConfig config)
    : selector_(selector),
      config_(config),
      optimizer_(selector.net().parameters(), config.lr),
      rng_(config.seed) {}

StageReport CombTrainer::run_stage() {
  StageReport report;
  report.stage = stage_index_;

  // Curriculum (paper Sec. 3.6): the first stages use layouts with a FIXED
  // pin count that grows from min_pins to max_pins, and the exact routing
  // cost instead of the critic.  Starting at 3 pins (a single-point budget)
  // concentrates the whole search budget on level-1 children, which is what
  // makes the early labels sharp enough to bootstrap the selector.
  const bool curriculum = stage_index_ < config_.curriculum_stages;
  std::int32_t min_pins = config_.min_pins;
  std::int32_t max_pins = config_.max_pins;
  if (curriculum) {
    const std::int32_t span = std::max<std::int32_t>(1, config_.curriculum_stages);
    const std::int32_t step =
        (config_.max_pins - config_.min_pins) * stage_index_ / span;
    min_pins = max_pins = std::min(config_.max_pins, config_.min_pins + step);
  }
  mcts::CombMctsConfig mcts_config = config_.mcts;
  mcts_config.use_critic = config_.mcts.use_critic && !curriculum;

  // ---- sample generation (parallel across layouts) ----
  util::Timer gen_timer;
  struct RawSample {
    hanan::HananGrid grid;
    mcts::CombMctsResult mcts;
  };
  std::vector<RawSample> raw;
  std::mutex raw_mutex;

  std::vector<std::pair<gen::RandomGridSpec, std::uint64_t>> jobs;
  for (const LayoutSizeSpec& size : config_.sizes) {
    const gen::RandomGridSpec spec =
        training_spec(size, config_.obstacle_density, min_pins, max_pins);
    for (std::int32_t i = 0; i < config_.layouts_per_size; ++i) {
      jobs.emplace_back(spec, rng_.next());
    }
  }

  const std::size_t worker_count =
      config_.threads > 0 ? std::size_t(config_.threads)
                          : std::max(1u, std::thread::hardware_concurrency());
  util::ThreadPool pool(std::min(worker_count, jobs.size() == 0 ? 1 : jobs.size()));

  // Each job checks out a private selector clone (module forward caches
  // are not thread safe); clones are pooled and reused across jobs.
  std::vector<std::unique_ptr<SteinerSelector>> clone_pool;
  std::mutex clone_mutex;
  auto checkout_clone = [&]() -> std::unique_ptr<SteinerSelector> {
    {
      std::lock_guard<std::mutex> lock(clone_mutex);
      if (!clone_pool.empty()) {
        auto clone = std::move(clone_pool.back());
        clone_pool.pop_back();
        return clone;
      }
    }
    auto clone = std::make_unique<SteinerSelector>(selector_.config());
    clone->copy_weights_from(selector_);
    return clone;
  };
  auto checkin_clone = [&](std::unique_ptr<SteinerSelector> clone) {
    std::lock_guard<std::mutex> lock(clone_mutex);
    clone_pool.push_back(std::move(clone));
  };

  pool.parallel_for(jobs.size(), [&](std::size_t i) {
    auto clone = checkout_clone();
    util::Rng job_rng(jobs[i].second);
    hanan::HananGrid grid = gen::random_grid(jobs[i].first, job_rng);
    mcts::CombMctsConfig cfg = mcts_config;
    cfg.iterations_per_move =
        mcts::scaled_iterations(mcts_config.iterations_per_move, grid);
    mcts::CombMcts search(*clone, cfg);
    mcts::CombMctsResult result = search.run(grid);
    {
      std::lock_guard<std::mutex> lock(raw_mutex);
      raw.push_back(RawSample{std::move(grid), std::move(result)});
    }
    checkin_clone(std::move(clone));
  });
  report.sample_gen_seconds = gen_timer.seconds();
  report.raw_samples = std::int32_t(raw.size());
  report.seconds_per_sample =
      raw.empty() ? 0.0 : report.sample_gen_seconds / double(raw.size());

  double ratio_sum = 0.0;
  std::size_t ratio_count = 0;
  for (const RawSample& r : raw) {
    if (r.mcts.initial_cost > 0.0) {
      ratio_sum += r.mcts.best_cost / r.mcts.initial_cost;
      ++ratio_count;
    }
  }
  report.mean_mcts_st_mst = ratio_count == 0 ? 0.0 : ratio_sum / double(ratio_count);

  // ---- augmentation + dataset ----
  Dataset dataset;
  const auto augmentations = all_augmentations();
  const std::int32_t n_aug =
      config_.augment ? std::min<std::int32_t>(config_.augment_count, 16) : 1;
  for (const RawSample& r : raw) {
    for (std::int32_t a = 0; a < n_aug; ++a) {
      const AugmentSpec& spec = augmentations[std::size_t(a)];
      TrainingSample sample;
      sample.grid = transform_grid(r.grid, spec);
      sample.label = transform_label(r.grid, r.mcts.label, spec);
      sample.mask = transform_label(r.grid, r.mcts.label_mask, spec);
      dataset.add(std::move(sample));
    }
  }
  report.train_samples = std::int32_t(dataset.size());

  // ---- fit ----
  util::Timer fit_timer;
  report.mean_loss = fit_dataset(selector_, optimizer_, dataset,
                                 config_.epochs_per_stage,
                                 std::size_t(config_.batch_size),
                                 config_.grad_clip, rng_);
  report.train_seconds = fit_timer.seconds();

  util::log_info("stage ", stage_index_, ": ", report.raw_samples, " layouts -> ",
                 report.train_samples, " samples, loss ", report.mean_loss,
                 ", mcts ST/MST ", report.mean_mcts_st_mst);
  ++stage_index_;
  return report;
}

std::vector<StageReport> CombTrainer::train() {
  std::vector<StageReport> reports;
  for (std::int32_t s = 0; s < config_.stages; ++s) reports.push_back(run_stage());
  return reports;
}

}  // namespace oar::rl
