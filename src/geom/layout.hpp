#pragma once

// Geometric description of a multi-layer routing problem instance: pins to
// connect, rectangular obstacles per layer, and a uniform via cost.  This is
// the "physical" view; routers operate on the derived 3D Hanan grid graph
// (hanan/hanan_grid.hpp).

#include <string>
#include <vector>

#include "geom/point.hpp"
#include "geom/rect.hpp"

namespace oar::geom {

/// Rectangular blockage on a single routing layer.
struct Obstacle {
  Rect rect;
  std::int32_t layer = 0;

  friend auto operator<=>(const Obstacle&, const Obstacle&) = default;
};

/// A multi-layer ML-OARSMT problem instance in physical coordinates.
class Layout {
 public:
  Layout() = default;
  Layout(std::int32_t width, std::int32_t height, std::int32_t num_layers,
         double via_cost)
      : width_(width), height_(height), num_layers_(num_layers), via_cost_(via_cost) {}

  std::int32_t width() const { return width_; }
  std::int32_t height() const { return height_; }
  std::int32_t num_layers() const { return num_layers_; }
  double via_cost() const { return via_cost_; }
  void set_via_cost(double c) { via_cost_ = c; }

  const std::vector<Point3>& pins() const { return pins_; }
  const std::vector<Obstacle>& obstacles() const { return obstacles_; }

  void add_pin(Point3 pin) { pins_.push_back(pin); }
  void add_pin(std::int32_t x, std::int32_t y, std::int32_t layer) {
    pins_.push_back(Point3{x, y, layer});
  }
  void add_obstacle(Obstacle obstacle) { obstacles_.push_back(obstacle); }
  void add_obstacle(Rect rect, std::int32_t layer) {
    obstacles_.push_back(Obstacle{rect, layer});
  }

  /// Total obstacle area over total routable area (all layers), the
  /// "obstacle ratio" of the paper's Fig. 10.  Overlapping obstacles are
  /// counted once per covered cell.
  double obstacle_ratio() const;

  /// True when a pin coordinate lies strictly inside any obstacle on its
  /// layer (such a pin would be unroutable).
  bool has_buried_pin() const;

  /// Validates bounds, layer indices, pin/obstacle consistency.  Returns an
  /// empty string when valid, otherwise a human-readable problem report.
  std::string validate() const;

 private:
  std::int32_t width_ = 0;
  std::int32_t height_ = 0;
  std::int32_t num_layers_ = 0;
  double via_cost_ = 1.0;
  std::vector<Point3> pins_;
  std::vector<Obstacle> obstacles_;
};

}  // namespace oar::geom
