file(REMOVE_RECURSE
  "CMakeFiles/oar_rl.dir/augment.cpp.o"
  "CMakeFiles/oar_rl.dir/augment.cpp.o.d"
  "CMakeFiles/oar_rl.dir/dataset.cpp.o"
  "CMakeFiles/oar_rl.dir/dataset.cpp.o.d"
  "CMakeFiles/oar_rl.dir/evaluate.cpp.o"
  "CMakeFiles/oar_rl.dir/evaluate.cpp.o.d"
  "CMakeFiles/oar_rl.dir/ppo.cpp.o"
  "CMakeFiles/oar_rl.dir/ppo.cpp.o.d"
  "CMakeFiles/oar_rl.dir/seq_trainer.cpp.o"
  "CMakeFiles/oar_rl.dir/seq_trainer.cpp.o.d"
  "CMakeFiles/oar_rl.dir/trainer.cpp.o"
  "CMakeFiles/oar_rl.dir/trainer.cpp.o.d"
  "liboar_rl.a"
  "liboar_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oar_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
