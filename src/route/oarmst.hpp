#pragma once

// Obstacle-avoiding rectilinear minimum spanning tree (OARMST) router,
// following the maze-router-based Prim's construction of Lin'18 [14] as
// used by the paper (Sec. 3.1):
//
//   1. grow a tree with Prim's algorithm where the "distance" to the next
//      terminal is a multi-source maze (Dijkstra) search from the current
//      tree,
//   2. remove redundant Steiner points (selected Steiner terminals with
//      tree degree < 3),
//   3. rebuild the spanning tree over pins + irredundant Steiner points.
//
// Two attachment modes:
//   * kTreeVertices (default, the real router): the maze search starts from
//     every vertex of the current tree, so a new path may branch off the
//     middle of an existing wire (T-junction).
//   * kTerminalsOnly: paths may only start at terminals.  Combined with
//     CostModel::kSumOfPaths this yields the plain "minimum spanning tree
//     without using any Steiner point" that the paper's ST-to-MST ratio
//     (Figs. 11-12) divides by.

#include <string>
#include <vector>

#include "route/maze.hpp"
#include "route/route_tree.hpp"

namespace oar::route {

enum class AttachMode { kTreeVertices, kTerminalsOnly };
enum class CostModel { kUnionLength, kSumOfPaths };

struct OarmstConfig {
  AttachMode attach = AttachMode::kTreeVertices;
  CostModel cost_model = CostModel::kUnionLength;
  /// Drop Steiner terminals with degree < 3 and rebuild (paper Sec. 3.1).
  bool remove_redundant_steiner = true;
  /// Safety bound on removal/rebuild rounds.
  int max_rebuild_passes = 8;
};

struct OarmstResult {
  RouteTree tree;
  double cost = 0.0;                  // per the configured CostModel
  std::vector<Vertex> kept_steiner;   // irredundant Steiner points
  int rebuild_passes = 0;
  bool connected = false;             // false if some terminal is unreachable
};

class OarmstRouter {
 public:
  explicit OarmstRouter(const HananGrid& grid, OarmstConfig config = {});

  /// Builds the spanning tree over `pins` plus `steiner_points`.  Steiner
  /// points that coincide with pins or blocked vertices are ignored.
  OarmstResult build(const std::vector<Vertex>& pins,
                     const std::vector<Vertex>& steiner_points = {}) const;

  /// Routing cost only (convenience for the MCTS critic and benchmarks).
  double cost(const std::vector<Vertex>& pins,
              const std::vector<Vertex>& steiner_points = {}) const;

  const HananGrid& grid() const { return grid_; }
  const OarmstConfig& config() const { return config_; }

 private:
  /// One spanning-tree construction over the given terminal set.
  OarmstResult build_once(const std::vector<Vertex>& terminals) const;

  const HananGrid& grid_;
  OarmstConfig config_;
};

}  // namespace oar::route
