#include "experience/canonical.hpp"

#include <cstring>

namespace oar::experience {

namespace {

void append_i32(std::string& out, std::int32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void append_f64(std::string& out, double v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool in_bounds_edge(const HananGrid& grid, const hanan::Cell& c, hanan::Dir dir) {
  switch (dir) {
    case hanan::Dir::kPosX:
      return c.h + 1 < grid.h_dim();
    case hanan::Dir::kPosY:
      return c.v + 1 < grid.v_dim();
    case hanan::Dir::kPosZ:
      return c.m + 1 < grid.m_dim();
  }
  return false;
}

/// Reconstructs the explicit edge-block bit of (idx, dir).  edge_usable()
/// folds endpoint blocks and bounds into one answer, so an edge is
/// *explicitly* blocked exactly when it is in bounds, both endpoints are
/// clear, and the edge is still unusable.
bool edge_explicitly_blocked(const HananGrid& grid, Vertex idx, hanan::Dir dir) {
  const hanan::Cell c = grid.cell(idx);
  if (!in_bounds_edge(grid, c, dir)) return false;
  Vertex nbr = idx;
  switch (dir) {
    case hanan::Dir::kPosX:
      nbr = idx + 1;
      break;
    case hanan::Dir::kPosY:
      nbr = idx + grid.h_dim();
      break;
    case hanan::Dir::kPosZ:
      nbr = idx + Vertex(grid.h_dim()) * grid.v_dim();
      break;
  }
  if (grid.is_blocked(idx) || grid.is_blocked(nbr)) return false;
  return !grid.edge_usable(idx, dir);
}

/// Serializes transform_grid(grid, spec) without constructing it: the
/// header tracks the dims/steps through the same transform chain as
/// rl::transform_grid, the vertex bytes are scattered through
/// transform_vertex, and the edge-block section is written as zeros (the
/// caller guarantees the grid has none — transformed grids never do).
/// Byte-identical to serialize_grid(rl::transform_grid(grid, spec)).
void serialize_transformed(const HananGrid& grid, const rl::AugmentSpec& spec,
                           const std::string& vertex_bytes, std::string& out) {
  std::vector<double> x_step(grid.h_dim() > 1 ? std::size_t(grid.h_dim() - 1) : 0);
  std::vector<double> y_step(grid.v_dim() > 1 ? std::size_t(grid.v_dim() - 1) : 0);
  for (std::size_t i = 0; i < x_step.size(); ++i) x_step[i] = grid.x_step(std::int32_t(i));
  for (std::size_t i = 0; i < y_step.size(); ++i) y_step[i] = grid.y_step(std::int32_t(i));
  for (std::int32_t r = 0; r < spec.rotation; ++r) {
    std::vector<double> nx = y_step;
    std::vector<double> ny = x_step;
    std::reverse(ny.begin(), ny.end());
    x_step = std::move(nx);
    y_step = std::move(ny);
  }
  if (spec.reflect_v) std::reverse(y_step.begin(), y_step.end());

  const std::int32_t H = std::int32_t(x_step.size()) + 1;
  const std::int32_t V = std::int32_t(y_step.size()) + 1;
  const std::size_t n = vertex_bytes.size();

  out.clear();
  out.reserve(std::size_t(16) + std::size_t(H + V) * 8 + n * 2);
  append_i32(out, H);
  append_i32(out, V);
  append_i32(out, grid.m_dim());
  append_f64(out, grid.via_cost());
  for (const double s : x_step) append_f64(out, s);
  for (const double s : y_step) append_f64(out, s);

  const std::size_t base = out.size();
  out.resize(base + n);
  for (Vertex v = 0; v < Vertex(n); ++v) {
    out[base + std::size_t(rl::transform_vertex(grid, v, spec))] =
        vertex_bytes[std::size_t(v)];
  }
  out.append(n, '\0');  // edge-block section: none by precondition
}

}  // namespace

std::string serialize_grid(const HananGrid& grid) {
  const std::int32_t H = grid.h_dim(), V = grid.v_dim(), M = grid.m_dim();
  std::string out;
  out.reserve(std::size_t(16) + std::size_t(H + V) * 8 +
              std::size_t(grid.num_vertices()) * 3);
  append_i32(out, H);
  append_i32(out, V);
  append_i32(out, M);
  append_f64(out, grid.via_cost());
  for (std::int32_t h = 0; h + 1 < H; ++h) append_f64(out, grid.x_step(h));
  for (std::int32_t v = 0; v + 1 < V; ++v) append_f64(out, grid.y_step(v));
  for (Vertex idx = 0; idx < grid.num_vertices(); ++idx) {
    char b = grid.is_blocked(idx) ? 1 : 0;
    b |= grid.is_pin(idx) ? 2 : 0;
    out.push_back(b);
  }
  // Edge-block section; all zeros for grid-world layouts.
  for (Vertex idx = 0; idx < grid.num_vertices(); ++idx) {
    char e = 0;
    if (edge_explicitly_blocked(grid, idx, hanan::Dir::kPosX)) e |= 1;
    if (edge_explicitly_blocked(grid, idx, hanan::Dir::kPosY)) e |= 2;
    if (edge_explicitly_blocked(grid, idx, hanan::Dir::kPosZ)) e |= 4;
    out.push_back(e);
  }
  // Congestion cost-bias section, present only when an overlay is set (the
  // extra length alone already separates biased from unbiased grids).
  if (grid.has_edge_cost_bias()) {
    for (Vertex idx = 0; idx < grid.num_vertices(); ++idx) {
      append_f64(out, grid.edge_cost_bias(idx, hanan::Dir::kPosX));
      append_f64(out, grid.edge_cost_bias(idx, hanan::Dir::kPosY));
      append_f64(out, grid.edge_cost_bias(idx, hanan::Dir::kPosZ));
    }
  }
  return out;
}

bool has_edge_blocks(const HananGrid& grid) {
  for (Vertex idx = 0; idx < grid.num_vertices(); ++idx) {
    if (edge_explicitly_blocked(grid, idx, hanan::Dir::kPosX) ||
        edge_explicitly_blocked(grid, idx, hanan::Dir::kPosY) ||
        edge_explicitly_blocked(grid, idx, hanan::Dir::kPosZ)) {
      return true;
    }
  }
  return false;
}

CanonicalForm canonicalize(const HananGrid& grid) {
  CanonicalForm form;
  if (has_edge_blocks(grid) || grid.has_edge_cost_bias()) {
    form.key = serialize_grid(grid);
    form.spec = rl::AugmentSpec{};
    form.symmetric = false;
    return form;
  }
  std::string vertex_bytes(std::size_t(grid.num_vertices()), '\0');
  for (Vertex idx = 0; idx < grid.num_vertices(); ++idx) {
    char b = grid.is_blocked(idx) ? 1 : 0;
    b |= grid.is_pin(idx) ? 2 : 0;
    vertex_bytes[std::size_t(idx)] = b;
  }
  std::string key;
  for (const rl::AugmentSpec& spec : rl::all_augmentations()) {
    serialize_transformed(grid, spec, vertex_bytes, key);
    if (form.key.empty() || key < form.key) {
      form.key = key;
      form.spec = spec;
    }
  }
  form.symmetric = true;
  return form;
}

std::vector<Vertex> inverse_vertex_map(const HananGrid& grid,
                                       const rl::AugmentSpec& spec) {
  std::vector<Vertex> inv(std::size_t(grid.num_vertices()), hanan::kInvalidVertex);
  for (Vertex v = 0; v < grid.num_vertices(); ++v) {
    inv[std::size_t(rl::transform_vertex(grid, v, spec))] = v;
  }
  return inv;
}

}  // namespace oar::experience
