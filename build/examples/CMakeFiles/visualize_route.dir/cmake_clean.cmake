file(REMOVE_RECURSE
  "CMakeFiles/visualize_route.dir/visualize_route.cpp.o"
  "CMakeFiles/visualize_route.dir/visualize_route.cpp.o.d"
  "visualize_route"
  "visualize_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/visualize_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
