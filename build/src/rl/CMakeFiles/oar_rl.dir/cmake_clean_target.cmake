file(REMOVE_RECURSE
  "liboar_rl.a"
)
