
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/train_selector.cpp" "examples/CMakeFiles/train_selector.dir/train_selector.cpp.o" "gcc" "examples/CMakeFiles/train_selector.dir/train_selector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/oar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/oar_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/mcts/CMakeFiles/oar_mcts.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/oar_rl_selector.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/oar_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/steiner/CMakeFiles/oar_steiner.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/oar_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/oar_route.dir/DependInfo.cmake"
  "/root/repo/build/src/hanan/CMakeFiles/oar_hanan.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/oar_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/oar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
