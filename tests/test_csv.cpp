#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>

namespace oar::util {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(Csv, HeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/out.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    ASSERT_TRUE(csv.is_open());
    csv.row({"1", "2"});
    csv.row_values(3, 4.5);
  }
  EXPECT_EQ(slurp(path), "a,b\n1,2\n3,4.5\n");
  std::remove(path.c_str());
}

TEST(Csv, EscapesSeparatorsAndQuotes) {
  const std::string path = ::testing::TempDir() + "/escaped.csv";
  {
    CsvWriter csv(path, {"value"});
    csv.row({"a,b"});
    csv.row({"say \"hi\""});
    csv.row({"two\nlines"});
  }
  EXPECT_EQ(slurp(path),
            "value\n\"a,b\"\n\"say \"\"hi\"\"\"\n\"two\nlines\"\n");
  std::remove(path.c_str());
}

TEST(Csv, UnwritablePathReportsClosed) {
  CsvWriter csv("/nonexistent_dir/x.csv", {"a"});
  EXPECT_FALSE(csv.is_open());
  csv.row({"ignored"});  // must not crash
}

}  // namespace
}  // namespace oar::util
