// RouterService walkthrough: several concurrent clients stream routing
// requests (with deadlines) at one service instance.  Demonstrates
// micro-batching, symmetry-aware cache hits (a rotated copy of a routed
// layout is answered from the cache) and the per-stage metrics snapshot.
//
// Usage: serve_demo [clients] [requests-per-client]

#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "core/oarsmtrl.hpp"
#include "gen/random_layout.hpp"
#include "rl/augment.hpp"
#include "serve/service.hpp"

int main(int argc, char** argv) {
  using namespace oar;

  const int clients = argc > 1 ? std::atoi(argv[1]) : 4;
  const int per_client = argc > 2 ? std::atoi(argv[2]) : 6;

  auto selector = core::load_or_train_pretrained(/*fallback_stages=*/2);

  // A small shared pool of layouts so clients repeat each other's work —
  // that is what the cache is for.  Half the lookups use a rotated copy to
  // show that symmetry variants hit the same entry.
  gen::RandomGridSpec spec;  // 16x16x4
  util::Rng rng(7);
  std::vector<std::shared_ptr<const hanan::HananGrid>> layouts;
  for (int i = 0; i < 8; ++i) {
    layouts.push_back(
        std::make_shared<const hanan::HananGrid>(gen::random_grid(spec, rng)));
  }
  rl::AugmentSpec quarter_turn;
  quarter_turn.rotation = 1;

  serve::RouterServiceConfig cfg;
  cfg.max_batch = 8;
  cfg.batch_wait_ms = 3.0;
  serve::RouterService service(selector, cfg);

  std::vector<std::thread> workers;
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      util::Rng pick(100 + c);
      for (int r = 0; r < per_client; ++r) {
        auto grid = layouts[pick.uniform_int(0, int(layouts.size()) - 1)];
        if (pick.uniform_int(0, 1) == 1) {
          grid = std::make_shared<const hanan::HananGrid>(
              rl::transform_grid(*grid, quarter_turn));
        }
        serve::RouteRequest request;
        request.grid = grid;
        request.deadline =
            serve::Clock::now() + std::chrono::milliseconds(250);
        const serve::RouteReply reply = service.submit(std::move(request)).get();
        std::printf(
            "client %d req %d: cost %7.0f  %s%s  %5.1f ms total\n", c, r,
            reply.result.cost, reply.cache_hit ? "cache-hit " : "routed    ",
            reply.deadline_met ? "" : " DEADLINE MISSED", reply.total_seconds * 1e3);
      }
    });
  }
  for (auto& w : workers) w.join();

  const auto snap = service.metrics().snapshot();
  std::printf("\n%llu requests, %llu cache hits (%.0f%%), %llu batches "
              "(mean size %.1f), %llu deadline misses\n",
              (unsigned long long)snap.requests,
              (unsigned long long)snap.cache_hits, 100.0 * snap.cache_hit_rate(),
              (unsigned long long)snap.batches, snap.mean_batch_size,
              (unsigned long long)snap.deadline_misses);
  for (int s = 0; s < serve::kNumStages; ++s) {
    const auto& st = snap.stages[std::size_t(s)];
    if (st.count == 0) continue;
    std::printf("  %-14s count %4zu  mean %7.2f ms  p90 %7.2f ms\n",
                serve::stage_name(serve::Stage(s)), st.count, st.mean_ms,
                st.p90_ms);
  }
  return 0;
}
