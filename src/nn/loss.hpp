#pragma once

// Loss functions.  Each returns the scalar loss and writes dLoss/dLogits
// (or dLoss/dPred) so the caller can feed it straight into Module::backward.

#include "nn/tensor.hpp"

namespace oar::nn {

/// Numerically stable binary cross-entropy on logits (the paper trains the
/// selector with BCE against the L_fsp labels).  `weight` (optional, same
/// shape) scales each element's contribution — used to mask out invalid
/// vertices (pins / obstacles).  The loss is averaged over the total
/// weight.
double bce_with_logits(const Tensor& logits, const Tensor& targets,
                       Tensor& grad_logits, const Tensor* weight = nullptr);

/// Mean squared error, averaged over elements.
double mse(const Tensor& pred, const Tensor& targets, Tensor& grad_pred);

}  // namespace oar::nn
