# Empty compiler generated dependencies file for macro_blockage.
# This may be replaced when dependencies are built.
