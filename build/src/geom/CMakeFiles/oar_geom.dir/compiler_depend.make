# Empty compiler generated dependencies file for oar_geom.
# This may be replaced when dependencies are built.
