#include "rl/evaluate.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "mcts/seq_mcts.hpp"
#include "route/oarmst.hpp"
#include "steiner/router_base.hpp"
#include "util/timer.hpp"

namespace oar::rl {

EvalStats evaluate_st_to_mst(SteinerSelector& selector,
                             const std::vector<hanan::HananGrid>& grids,
                             EvalOptions options) {
  EvalStats stats;
  // Pooled routing scratch for the whole evaluation sweep (one OARMST +
  // one MST build per grid; no per-grid O(V) maze allocations).
  route::RouterScratch& scratch = route::local_router_scratch();
  for (const hanan::HananGrid& grid : grids) {
    const std::int32_t budget =
        std::max<std::int32_t>(0, std::int32_t(grid.pins().size()) - 2);

    util::Timer timer;
    std::vector<hanan::Vertex> selected;
    std::int32_t inferences = 0;
    if (options.sequential) {
      const auto result =
          mcts::sequential_select(selector, grid, options.seq_stop_threshold);
      selected = result.selected;
      inferences = result.inferences;
    } else {
      selected = selector.select_steiner_points(grid, budget);
      inferences = 1;
    }
    stats.select_seconds += timer.seconds();

    route::OarmstRouter router(grid);
    const route::OarmstResult st = router.build(grid.pins(), selected, &scratch);
    const double mst = steiner::mst_cost(grid, &scratch);
    if (!st.connected || mst <= 0.0 || !std::isfinite(mst)) continue;

    stats.mean_st_mst_ratio += st.cost / mst;
    stats.mean_st_cost += st.cost;
    stats.mean_mst_cost += mst;
    stats.mean_inferences += double(inferences);
    ++stats.count;
  }
  if (stats.count > 0) {
    const double inv = 1.0 / double(stats.count);
    stats.mean_st_mst_ratio *= inv;
    stats.mean_st_cost *= inv;
    stats.mean_mst_cost *= inv;
    stats.mean_inferences *= inv;
  }
  return stats;
}

Int8GateReport evaluate_int8_gate(SteinerSelector& selector,
                                  const std::vector<hanan::HananGrid>& grids) {
  if (selector.int8_engine() == nullptr) {
    throw std::logic_error(
        "evaluate_int8_gate: selector has no calibrated int8 engine");
  }
  const nn::InferConfig& cfg = selector.config().infer;
  route::RouterScratch& scratch = route::local_router_scratch();

  Int8GateReport report;
  for (const hanan::HananGrid& grid : grids) {
    const std::int32_t budget =
        std::max<std::int32_t>(0, std::int32_t(grid.pins().size()) - 2);
    if (budget <= 0) continue;

    selector.set_precision(nn::InferConfig::Precision::kFp32);
    const std::vector<hanan::Vertex> sel_fp32 =
        selector.select_steiner_points(grid, budget);
    selector.set_precision(nn::InferConfig::Precision::kInt8);
    const std::vector<hanan::Vertex> sel_int8 =
        selector.select_steiner_points(grid, budget);

    route::OarmstRouter router(grid);
    const route::OarmstResult st_fp32 =
        router.build(grid.pins(), sel_fp32, &scratch);
    const route::OarmstResult st_int8 =
        router.build(grid.pins(), sel_int8, &scratch);
    if (!st_fp32.connected || !st_int8.connected || st_fp32.cost <= 0.0) {
      continue;
    }

    const std::unordered_set<hanan::Vertex> ref(sel_fp32.begin(),
                                                sel_fp32.end());
    std::int32_t hits = 0;
    for (const hanan::Vertex v : sel_int8) hits += ref.count(v) ? 1 : 0;
    report.mean_agreement +=
        double(hits) / double(std::max<std::size_t>(1, sel_fp32.size()));
    report.mean_cost_ratio += st_int8.cost / st_fp32.cost;
    ++report.count;
  }
  if (report.count > 0) {
    report.mean_agreement /= double(report.count);
    report.mean_cost_ratio /= double(report.count);
  }
  report.passed = report.count > 0 &&
                  report.mean_agreement >= cfg.int8_min_agreement &&
                  report.mean_cost_ratio <= cfg.int8_max_cost_ratio;
  if (!report.passed) {
    nn::quant::note_int8_gate_failure();
    if (cfg.int8_fallback_to_fp32) {
      selector.set_precision(nn::InferConfig::Precision::kFp32);
      report.fell_back = true;
    }
  }
  return report;
}

}  // namespace oar::rl
