#pragma once

// Tiered experience store: a bounded in-memory LRU tier in front of the
// append-only disk tier (file_store.hpp).  This is the one caching API the
// rest of the system talks to — the serving path's exact hits, the MCTS
// warm start's near-miss lookups, and the trainer's episode appends all go
// through a Store.
//
// Tier semantics:
//   get  — memory first (kMemory), then disk with promotion into memory
//          (kDisk), else kMiss.  Hit provenance is returned to the caller
//          and surfaced as oar_exp_* counters.
//   put  — inserts into memory and, when a disk tier is configured and the
//          store is not read-only, buffers an append; every flush_batch
//          puts the buffer is flushed (batched single-writer appends).
//
// A Store with an empty path is a pure memory cache — exactly the old
// serve::ResultCache behavior behind the new typed interface.
//
// Thread safety: all methods are safe to call concurrently; the memory
// tier has its own mutex and FileStore locks internally.

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "experience/file_store.hpp"
#include "experience/key.hpp"
#include "experience/record.hpp"

namespace oar::experience {

/// Which tier answered a get().
enum class HitTier : int { kMiss = 0, kMemory = 1, kDisk = 2 };

const char* hit_tier_name(HitTier tier);

struct StoreConfig {
  /// Memory-tier capacity in entries; 0 disables the memory tier.
  std::size_t memory_capacity = 256;
  /// Disk-tier file path; empty disables the disk tier.
  std::string path;
  /// Open the disk tier read-only: get()/match_base() serve from it but
  /// put() feeds only the memory tier.
  bool read_only = false;
  /// Flush the disk tier after this many put()s; 0 defers to explicit
  /// flush() / destruction.
  std::size_t flush_batch = 16;
  /// Near-miss candidates returned per warm-start base lookup.
  std::size_t max_base_matches = 8;

  void validate() const;
};

struct StoreStats {
  std::uint64_t gets = 0;
  std::uint64_t memory_hits = 0;
  std::uint64_t disk_hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t puts = 0;
  std::uint64_t memory_entries = 0;
  FileStoreStats disk;  ///< zeroed when no disk tier
};

class Store {
 public:
  /// Opens the configured tiers.  Propagates FileStore's exceptions for an
  /// unreadable or wrong-format disk file (fail-closed, never clobber).
  explicit Store(StoreConfig config = {});
  ~Store();

  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;

  /// Tiered lookup; `tier` (optional) reports provenance, also on miss.
  std::optional<ExperienceRecord> get(const CanonicalKey& key,
                                      HitTier* tier = nullptr);

  void put(const CanonicalKey& key, ExperienceRecord record);
  void put(KeyedRecord keyed);

  /// Disk-tier records sharing a warm-start base key (newest first, up to
  /// max_base_matches).  Memory-tier entries are reachable by exact key
  /// only; near-miss mining is a disk-tier feature.
  std::vector<ExperienceRecord> match_base(std::string_view base_key) const;

  void flush();
  void compact();
  void clear_memory();

  std::size_t memory_entries() const;
  std::size_t disk_records() const;
  bool has_disk_tier() const { return disk_ != nullptr; }
  StoreStats stats() const;
  const StoreConfig& config() const { return config_; }

 private:
  void refresh_gauges() const;

  const StoreConfig config_;
  std::unique_ptr<FileStore> disk_;  // null when no disk tier

  // Memory tier: LRU over canonical keys, same discipline as the retired
  // serve::ResultCache but typed and provenance-aware.
  using MemEntry = std::pair<CanonicalKey, ExperienceRecord>;
  mutable std::mutex mem_mu_;
  std::list<MemEntry> lru_;  // front = most recently used
  std::unordered_map<CanonicalKey, std::list<MemEntry>::iterator, KeyHash>
      mem_index_;

  mutable std::mutex stats_mu_;
  StoreStats stats_{};
  std::size_t puts_since_flush_ = 0;
};

}  // namespace oar::experience
