file(REMOVE_RECURSE
  "CMakeFiles/oar_gen.dir/grid_io.cpp.o"
  "CMakeFiles/oar_gen.dir/grid_io.cpp.o.d"
  "CMakeFiles/oar_gen.dir/public_benchmarks.cpp.o"
  "CMakeFiles/oar_gen.dir/public_benchmarks.cpp.o.d"
  "CMakeFiles/oar_gen.dir/random_layout.cpp.o"
  "CMakeFiles/oar_gen.dir/random_layout.cpp.o.d"
  "CMakeFiles/oar_gen.dir/svg.cpp.o"
  "CMakeFiles/oar_gen.dir/svg.cpp.o.d"
  "liboar_gen.a"
  "liboar_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oar_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
