
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mcts/actor_critic.cpp" "src/mcts/CMakeFiles/oar_mcts.dir/actor_critic.cpp.o" "gcc" "src/mcts/CMakeFiles/oar_mcts.dir/actor_critic.cpp.o.d"
  "/root/repo/src/mcts/comb_mcts.cpp" "src/mcts/CMakeFiles/oar_mcts.dir/comb_mcts.cpp.o" "gcc" "src/mcts/CMakeFiles/oar_mcts.dir/comb_mcts.cpp.o.d"
  "/root/repo/src/mcts/seq_mcts.cpp" "src/mcts/CMakeFiles/oar_mcts.dir/seq_mcts.cpp.o" "gcc" "src/mcts/CMakeFiles/oar_mcts.dir/seq_mcts.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rl/CMakeFiles/oar_rl_selector.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/oar_route.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/oar_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/hanan/CMakeFiles/oar_hanan.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/oar_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/oar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
