#include "rl/seq_trainer.hpp"

#include <memory>
#include <mutex>

#include "rl/augment.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace oar::rl {

SeqTrainer::SeqTrainer(SteinerSelector& selector, TrainConfig config)
    : selector_(selector),
      config_(config),
      optimizer_(selector.net().parameters(), config.lr),
      rng_(config.seed ^ 0x5e90ull) {}

StageReport SeqTrainer::run_stage() {
  StageReport report;
  report.stage = stage_index_;

  // Curriculum (paper Sec. 3.6): the first stages use layouts with a FIXED
  // pin count that grows from min_pins to max_pins, and the exact routing
  // cost instead of the critic.  Starting at 3 pins (a single-point budget)
  // concentrates the whole search budget on level-1 children, which is what
  // makes the early labels sharp enough to bootstrap the selector.
  const bool curriculum = stage_index_ < config_.curriculum_stages;
  std::int32_t min_pins = config_.min_pins;
  std::int32_t max_pins = config_.max_pins;
  if (curriculum) {
    const std::int32_t span = std::max<std::int32_t>(1, config_.curriculum_stages);
    const std::int32_t step =
        (config_.max_pins - config_.min_pins) * stage_index_ / span;
    min_pins = max_pins = std::min(config_.max_pins, config_.min_pins + step);
  }
  mcts::CombMctsConfig mcts_config = config_.mcts;
  mcts_config.use_critic = config_.mcts.use_critic && !curriculum;

  util::Timer gen_timer;
  struct RawSample {
    hanan::HananGrid grid;
    mcts::SeqMctsResult mcts;
  };

  std::vector<std::pair<gen::RandomGridSpec, std::uint64_t>> jobs;
  for (const LayoutSizeSpec& size : config_.sizes) {
    const gen::RandomGridSpec spec =
        training_spec(size, config_.obstacle_density, min_pins, max_pins);
    for (std::int32_t i = 0; i < config_.layouts_per_size; ++i) {
      jobs.emplace_back(spec, rng_.next());
    }
  }

  // One pool serves both phases: sample generation fans out over layouts,
  // the fit phase over per-worker replicas.
  const std::size_t gen_workers = std::min(
      util::ThreadPool::resolve_thread_count(config_.threads),
      jobs.empty() ? std::size_t(1) : jobs.size());
  const std::size_t fit_workers = util::ThreadPool::resolve_thread_count(
      config_.fit_workers > 0 ? config_.fit_workers : config_.threads);
  util::ThreadPool pool(std::max(gen_workers, fit_workers));

  std::vector<std::unique_ptr<SteinerSelector>> clone_pool;
  std::mutex clone_mutex;
  auto checkout_clone = [&]() -> std::unique_ptr<SteinerSelector> {
    {
      std::lock_guard<std::mutex> lock(clone_mutex);
      if (!clone_pool.empty()) {
        auto clone = std::move(clone_pool.back());
        clone_pool.pop_back();
        return clone;
      }
    }
    auto clone = std::make_unique<SteinerSelector>(selector_.config());
    clone->copy_weights_from(selector_);
    return clone;
  };

  // Results are written by job index, never appended: append order would
  // depend on thread completion and make fixed-seed runs diverge.
  std::vector<RawSample> raw(jobs.size());
  pool.parallel_for(jobs.size(), [&](std::size_t i) {
    auto clone = checkout_clone();
    util::Rng job_rng(jobs[i].second);
    hanan::HananGrid grid = gen::random_grid(jobs[i].first, job_rng);
    mcts::CombMctsConfig cfg = mcts_config;
    cfg.iterations_per_move =
        mcts::scaled_iterations(mcts_config.iterations_per_move, grid);
    mcts::SeqMcts search(*clone, cfg);
    mcts::SeqMctsResult result = search.run(grid);
    raw[i] = RawSample{std::move(grid), std::move(result)};
    std::lock_guard<std::mutex> lock(clone_mutex);
    clone_pool.push_back(std::move(clone));
  });
  report.sample_gen_seconds = gen_timer.seconds();
  report.raw_samples = std::int32_t(raw.size());
  report.seconds_per_sample =
      raw.empty() ? 0.0 : report.sample_gen_seconds / double(raw.size());

  double ratio_sum = 0.0;
  std::size_t ratio_count = 0;
  for (const RawSample& r : raw) {
    if (r.mcts.initial_cost > 0.0) {
      ratio_sum += r.mcts.best_cost / r.mcts.initial_cost;
      ++ratio_count;
    }
  }
  report.mean_mcts_st_mst = ratio_count == 0 ? 0.0 : ratio_sum / double(ratio_count);

  // Sequential labeling: one sample per executed move, state includes the
  // already-selected points as extra pins.
  Dataset dataset;
  const auto augmentations = all_augmentations();
  const std::int32_t n_aug =
      config_.augment ? std::min<std::int32_t>(config_.augment_count, 16) : 1;
  for (const RawSample& r : raw) {
    for (const mcts::SeqSample& move_sample : r.mcts.samples) {
      for (std::int32_t a = 0; a < n_aug; ++a) {
        const AugmentSpec& spec = augmentations[std::size_t(a)];
        TrainingSample sample;
        sample.grid = transform_grid(r.grid, spec);
        sample.extra_pins.reserve(move_sample.state_selected.size());
        for (Vertex v : move_sample.state_selected) {
          sample.extra_pins.push_back(transform_vertex(r.grid, v, spec));
        }
        sample.label = transform_label(r.grid, move_sample.label, spec);
        sample.mask = transform_label(r.grid, move_sample.label_mask, spec);
        dataset.add(std::move(sample));
      }
    }
  }
  report.train_samples = std::int32_t(dataset.size());

  util::Timer fit_timer;
  FitOptions fit;
  fit.epochs = config_.epochs_per_stage;
  fit.batch_size = std::size_t(config_.batch_size);
  fit.grad_clip = config_.grad_clip;
  fit.workers = std::int32_t(fit_workers);
  fit.pool = &pool;
  report.mean_loss = fit_dataset(selector_, optimizer_, dataset, fit, rng_);
  report.train_seconds = fit_timer.seconds();

  util::log_info("seq stage ", stage_index_, ": ", report.raw_samples,
                 " layouts -> ", report.train_samples, " samples, loss ",
                 report.mean_loss);
  ++stage_index_;
  return report;
}

std::vector<StageReport> SeqTrainer::train() {
  std::vector<StageReport> reports;
  for (std::int32_t s = 0; s < config_.stages; ++s) reports.push_back(run_stage());
  return reports;
}

}  // namespace oar::rl
