#include "route/route_tree.hpp"

#include <gtest/gtest.h>

namespace oar::route {
namespace {

HananGrid unit_grid(std::int32_t h, std::int32_t v, std::int32_t m, double via = 1.0) {
  return HananGrid(h, v, m, std::vector<double>(std::size_t(h - 1), 1.0),
                   std::vector<double>(std::size_t(v - 1), 1.0), via);
}

TEST(RouteTree, AddEdgeDeduplicates) {
  const HananGrid grid = unit_grid(3, 1, 1);
  RouteTree tree(&grid);
  EXPECT_TRUE(tree.add_edge(0, 1));
  EXPECT_FALSE(tree.add_edge(1, 0));  // same edge, reversed
  EXPECT_EQ(tree.num_edges(), 1u);
  EXPECT_EQ(tree.degree(0), 1);
  EXPECT_EQ(tree.degree(1), 1);
}

TEST(RouteTree, AddPathAndDegrees) {
  const HananGrid grid = unit_grid(4, 1, 1);
  RouteTree tree(&grid);
  tree.add_path({0, 1, 2, 3});
  EXPECT_EQ(tree.num_edges(), 3u);
  EXPECT_EQ(tree.degree(0), 1);
  EXPECT_EQ(tree.degree(1), 2);
  EXPECT_EQ(tree.degree(3), 1);
  EXPECT_TRUE(tree.contains_vertex(2));
  EXPECT_FALSE(tree.contains_vertex(99));
}

TEST(RouteTree, CostSumsEdgeCosts) {
  HananGrid grid(3, 2, 1, {2.0, 7.0}, {5.0}, 1.0);
  RouteTree tree(&grid);
  tree.add_edge(grid.index(0, 0, 0), grid.index(1, 0, 0));  // 2
  tree.add_edge(grid.index(1, 0, 0), grid.index(2, 0, 0));  // 7
  tree.add_edge(grid.index(1, 0, 0), grid.index(1, 1, 0));  // 5
  EXPECT_DOUBLE_EQ(tree.cost(), 14.0);
}

TEST(RouteTree, ValidateAcceptsConnectedTree) {
  const HananGrid grid = unit_grid(3, 3, 1);
  RouteTree tree(&grid);
  tree.add_path({grid.index(0, 0, 0), grid.index(1, 0, 0), grid.index(2, 0, 0)});
  EXPECT_EQ(tree.validate({grid.index(0, 0, 0), grid.index(2, 0, 0)}), "");
}

TEST(RouteTree, ValidateFlagsUnreachedTerminal) {
  const HananGrid grid = unit_grid(3, 3, 1);
  RouteTree tree(&grid);
  tree.add_edge(grid.index(0, 0, 0), grid.index(1, 0, 0));
  const auto report = tree.validate({grid.index(0, 0, 0), grid.index(2, 2, 0)});
  EXPECT_NE(report.find("terminal unreached"), std::string::npos);
}

TEST(RouteTree, ValidateFlagsCycle) {
  const HananGrid grid = unit_grid(2, 2, 1);
  RouteTree tree(&grid);
  tree.add_edge(grid.index(0, 0, 0), grid.index(1, 0, 0));
  tree.add_edge(grid.index(1, 0, 0), grid.index(1, 1, 0));
  tree.add_edge(grid.index(1, 1, 0), grid.index(0, 1, 0));
  tree.add_edge(grid.index(0, 1, 0), grid.index(0, 0, 0));
  const auto report = tree.validate({grid.index(0, 0, 0)});
  EXPECT_NE(report.find("cycle"), std::string::npos);
}

TEST(RouteTree, ValidateFlagsBlockedVertex) {
  HananGrid grid = unit_grid(3, 1, 1);
  RouteTree tree(&grid);
  tree.add_edge(grid.index(0, 0, 0), grid.index(1, 0, 0));
  grid.block_vertex(grid.index(1, 0, 0));
  const auto report = tree.validate({grid.index(0, 0, 0)});
  EXPECT_NE(report.find("blocked"), std::string::npos);
}

TEST(RouteTree, VerticesSortedUnique) {
  const HananGrid grid = unit_grid(4, 1, 1);
  RouteTree tree(&grid);
  tree.add_path({3, 2, 1});
  const auto vs = tree.vertices();
  EXPECT_EQ(vs, (std::vector<Vertex>{1, 2, 3}));
}

}  // namespace
}  // namespace oar::route
