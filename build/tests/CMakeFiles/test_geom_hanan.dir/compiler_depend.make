# Empty compiler generated dependencies file for test_geom_hanan.
# This may be replaced when dependencies are built.
