#include "util/rng.hpp"

#include <cassert>
#include <cmath>

namespace oar::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ull - (~0ull % range);
  std::uint64_t x = next();
  while (x >= limit) x = next();
  return lo + static_cast<std::int64_t>(x % range);
}

double Rng::uniform() {
  // 53 random mantissa bits.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_normal_ = r * std::sin(theta);
  have_spare_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

bool Rng::chance(double p) { return uniform() < p; }

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x <= 0.0) return i;
  }
  return weights.size() - 1;  // numeric edge: fall back to last positive entry
}

Rng Rng::split() { return Rng(next() ^ 0xd1b54a32d192ed03ull); }

RngState Rng::state() const {
  RngState st;
  for (int i = 0; i < 4; ++i) st.s[i] = s_[i];
  st.have_spare_normal = have_spare_normal_;
  st.spare_normal = spare_normal_;
  return st;
}

void Rng::set_state(const RngState& state) {
  for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
  have_spare_normal_ = state.have_spare_normal;
  spare_normal_ = state.spare_normal;
}

}  // namespace oar::util
