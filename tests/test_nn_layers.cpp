// Finite-difference gradient verification of every hand-written backward
// pass, plus shape/semantics checks per layer.

#include <gtest/gtest.h>

#include "nn/activations.hpp"
#include "nn/conv3d.hpp"
#include "nn/gradcheck.hpp"
#include "nn/group_norm.hpp"
#include "nn/linear.hpp"
#include "nn/pool3d.hpp"
#include "nn/residual_block.hpp"
#include "nn/value_net.hpp"

namespace oar::nn {
namespace {

Tensor random_input(std::vector<std::int32_t> shape, std::uint64_t seed) {
  util::Rng rng(seed);
  return Tensor::randn(std::move(shape), rng, 1.0f);
}

Tensor random_weights_like(const Tensor& out, std::uint64_t seed) {
  util::Rng rng(seed);
  return Tensor::randn(out.shape(), rng, 1.0f);
}

template <typename M>
void expect_gradcheck_ok(M& module, const Tensor& input, std::uint64_t seed) {
  Tensor out = module.forward(input);
  const Tensor weights = random_weights_like(out, seed);
  util::Rng rng(seed ^ 0xabcull);
  const GradCheckResult r = grad_check(module, input, weights, rng);
  EXPECT_TRUE(r.ok) << "max_rel_error=" << r.max_rel_error
                    << " max_abs_error=" << r.max_abs_error;
}

/// forward_batch must agree with per-sample forward.  The batched conv
/// kernels contract FMAs in a different order than the naive loop, so the
/// comparison is tolerance-based, not bitwise.
void expect_batch_matches_single(Module& module,
                                 std::vector<std::int32_t> sample_shape,
                                 std::int32_t n, std::uint64_t seed,
                                 double tol = 1e-4) {
  std::vector<std::int32_t> batch_shape{n};
  batch_shape.insert(batch_shape.end(), sample_shape.begin(), sample_shape.end());
  const Tensor batch = random_input(std::move(batch_shape), seed);

  const Tensor batched = module.forward_batch(batch);
  ASSERT_EQ(batched.shape(0), n);
  const std::int64_t out_stride = batched.numel() / n;

  Tensor sample(std::move(sample_shape));
  const std::int64_t in_stride = sample.numel();
  for (std::int32_t i = 0; i < n; ++i) {
    std::copy(batch.data() + i * in_stride, batch.data() + (i + 1) * in_stride,
              sample.data());
    const Tensor single = module.forward(sample);
    ASSERT_EQ(single.numel(), out_stride);
    for (std::int64_t j = 0; j < out_stride; ++j) {
      ASSERT_NEAR(batched[i * out_stride + j], single[j], tol)
          << "sample " << i << " element " << j;
    }
  }
}

TEST(ReLULayer, ForwardClampsNegatives) {
  ReLU relu;
  const Tensor out = relu.forward(Tensor::from({-1, 0, 2}));
  EXPECT_FLOAT_EQ(out[0], 0.0f);
  EXPECT_FLOAT_EQ(out[1], 0.0f);
  EXPECT_FLOAT_EQ(out[2], 2.0f);
}

TEST(ReLULayer, BackwardMasks) {
  ReLU relu;
  relu.forward(Tensor::from({-1, 3}));
  const Tensor grad = relu.backward(Tensor::from({5, 5}));
  EXPECT_FLOAT_EQ(grad[0], 0.0f);
  EXPECT_FLOAT_EQ(grad[1], 5.0f);
}

TEST(SigmoidLayer, ForwardValues) {
  Sigmoid sig;
  const Tensor out = sig.forward(Tensor::from({0.0f, 100.0f, -100.0f}));
  EXPECT_FLOAT_EQ(out[0], 0.5f);
  EXPECT_NEAR(out[1], 1.0f, 1e-6);
  EXPECT_NEAR(out[2], 0.0f, 1e-6);
}

TEST(SigmoidLayer, GradCheck) {
  Sigmoid sig;
  const Tensor input = random_input({2, 3, 2, 2}, 3);
  expect_gradcheck_ok(sig, input, 4);
}

class Conv3dGradTest
    : public ::testing::TestWithParam<std::tuple<std::int32_t, std::int32_t, std::int32_t>> {};

TEST_P(Conv3dGradTest, GradCheck) {
  const auto [in_c, out_c, kernel] = GetParam();
  util::Rng rng(7);
  Conv3d conv(in_c, out_c, kernel, rng);
  const Tensor input = random_input({in_c, 3, 4, 2}, 11);
  expect_gradcheck_ok(conv, input, 13);
}

INSTANTIATE_TEST_SUITE_P(Shapes, Conv3dGradTest,
                         ::testing::Values(std::tuple{1, 1, 3}, std::tuple{2, 3, 3},
                                           std::tuple{3, 2, 1}, std::tuple{4, 4, 1}));

TEST(Conv3dLayer, SameSizeOutputWithDefaultPadding) {
  util::Rng rng(1);
  Conv3d conv(2, 5, 3, rng);
  const Tensor out = conv.forward(random_input({2, 4, 6, 3}, 2));
  EXPECT_EQ(out.shape(), (std::vector<std::int32_t>{5, 4, 6, 3}));
}

TEST(Conv3dLayer, IdentityKernelReproducesInput) {
  util::Rng rng(1);
  Conv3d conv(1, 1, 1, rng);
  conv.weight().value.fill(1.0f);
  conv.bias().value.fill(0.0f);
  const Tensor input = random_input({1, 2, 2, 2}, 5);
  const Tensor out = conv.forward(input);
  for (std::int64_t i = 0; i < input.numel(); ++i) EXPECT_FLOAT_EQ(out[i], input[i]);
}

TEST(GroupNormLayer, NormalizesPerGroup) {
  GroupNorm gn(4, 2);
  const Tensor input = random_input({4, 2, 2, 2}, 9);
  const Tensor out = gn.forward(input);
  // Each group of 2 channels x 8 voxels has ~zero mean, ~unit variance.
  for (int g = 0; g < 2; ++g) {
    double sum = 0.0, sum_sq = 0.0;
    for (int i = 0; i < 16; ++i) {
      const float v = out[g * 16 + i];
      sum += v;
      sum_sq += double(v) * v;
    }
    EXPECT_NEAR(sum / 16.0, 0.0, 1e-5);
    EXPECT_NEAR(sum_sq / 16.0, 1.0, 1e-3);
  }
}

class GroupNormGradTest
    : public ::testing::TestWithParam<std::pair<std::int32_t, std::int32_t>> {};

TEST_P(GroupNormGradTest, GradCheck) {
  const auto [channels, groups] = GetParam();
  GroupNorm gn(channels, groups);
  const Tensor input = random_input({channels, 2, 3, 2}, 21);
  expect_gradcheck_ok(gn, input, 22);
}

INSTANTIATE_TEST_SUITE_P(Configs, GroupNormGradTest,
                         ::testing::Values(std::pair{2, 1}, std::pair{4, 2},
                                           std::pair{4, 4}, std::pair{6, 3}));

TEST(MaxPoolLayer, CeilModeOddDims) {
  MaxPool3d pool;
  const Tensor out = pool.forward(random_input({2, 5, 3, 1}, 31));
  EXPECT_EQ(out.shape(), (std::vector<std::int32_t>{2, 3, 2, 1}));
}

TEST(MaxPoolLayer, TakesWindowMaximum) {
  MaxPool3d pool;
  Tensor input({1, 2, 2, 1});
  input[0] = 1.0f;
  input[1] = 9.0f;
  input[2] = -3.0f;
  input[3] = 4.0f;
  const Tensor out = pool.forward(input);
  EXPECT_EQ(out.numel(), 1);
  EXPECT_FLOAT_EQ(out[0], 9.0f);
}

TEST(MaxPoolLayer, GradCheck) {
  MaxPool3d pool;
  const Tensor input = random_input({2, 4, 3, 2}, 41);
  expect_gradcheck_ok(pool, input, 42);
}

TEST(UpsampleLayer, ReachesTargetSize) {
  UpsampleNearest3d up;
  up.set_target(5, 4, 3);
  const Tensor out = up.forward(random_input({2, 2, 2, 2}, 51));
  EXPECT_EQ(out.shape(), (std::vector<std::int32_t>{2, 5, 4, 3}));
}

TEST(UpsampleLayer, GradCheck) {
  UpsampleNearest3d up;
  up.set_target(4, 5, 2);
  const Tensor input = random_input({2, 2, 3, 1}, 61);
  expect_gradcheck_ok(up, input, 62);
}

TEST(UpsampleLayer, InverseOfPoolShapes) {
  // pool(ceil) then upsample-to-original restores the original dims for
  // arbitrary sizes — the property the U-Net depends on.
  for (std::int32_t d0 : {1, 3, 4, 7}) {
    for (std::int32_t d2 : {1, 2, 5}) {
      MaxPool3d pool;
      UpsampleNearest3d up;
      const Tensor input = random_input({2, d0, 3, d2}, 71);
      const Tensor pooled = pool.forward(input);
      up.set_target(d0, 3, d2);
      const Tensor restored = up.forward(pooled);
      EXPECT_EQ(restored.shape(), input.shape());
    }
  }
}

TEST(LinearLayer, KnownComputation) {
  util::Rng rng(1);
  Linear fc(2, 1, rng);
  auto params = fc.parameters();
  params[0]->value[0] = 2.0f;  // weight
  params[0]->value[1] = -1.0f;
  params[1]->value[0] = 0.5f;  // bias
  const Tensor out = fc.forward(Tensor::from({3, 4}));
  EXPECT_FLOAT_EQ(out[0], 2.0f * 3 - 1.0f * 4 + 0.5f);
}

TEST(LinearLayer, GradCheck) {
  util::Rng rng(81);
  Linear fc(6, 4, rng);
  expect_gradcheck_ok(fc, random_input({6}, 82), 83);
}

TEST(GlobalAvgPoolLayer, AveragesPerChannel) {
  GlobalAvgPool3d gap;
  Tensor input({2, 1, 2, 1});
  input[0] = 2.0f;
  input[1] = 4.0f;
  input[2] = -1.0f;
  input[3] = 1.0f;
  const Tensor out = gap.forward(input);
  EXPECT_FLOAT_EQ(out[0], 3.0f);
  EXPECT_FLOAT_EQ(out[1], 0.0f);
}

TEST(GlobalAvgPoolLayer, GradCheck) {
  GlobalAvgPool3d gap;
  expect_gradcheck_ok(gap, random_input({3, 2, 2, 2}, 91), 92);
}

TEST(ResidualBlockLayer, OutputShapeAndChannels) {
  util::Rng rng(5);
  ResidualBlock3d block(3, 6, rng);
  const Tensor out = block.forward(random_input({3, 3, 4, 2}, 6));
  EXPECT_EQ(out.shape(), (std::vector<std::int32_t>{6, 3, 4, 2}));
}

TEST(ResidualBlockLayer, GradCheckWithProjection) {
  util::Rng rng(15);
  ResidualBlock3d block(2, 4, rng);
  expect_gradcheck_ok(block, random_input({2, 2, 3, 2}, 16), 17);
}

TEST(ResidualBlockLayer, GradCheckIdentitySkip) {
  util::Rng rng(25);
  ResidualBlock3d block(4, 4, rng);
  expect_gradcheck_ok(block, random_input({4, 2, 2, 2}, 26), 27);
}

TEST(ResidualBlockLayer, PickGroups) {
  EXPECT_EQ(ResidualBlock3d::pick_groups(1), 1);
  EXPECT_EQ(ResidualBlock3d::pick_groups(4), 4);
  EXPECT_EQ(ResidualBlock3d::pick_groups(6), 3);
  EXPECT_EQ(ResidualBlock3d::pick_groups(8), 4);
  EXPECT_EQ(ResidualBlock3d::pick_groups(7), 1);
}

TEST(Conv3dLayer, BatchMatchesSingleTemplatedPath) {
  // OC=8, last dim in {1,2,4,8}: the register-tiled full-line kernel.
  util::Rng rng(61);
  Conv3d conv(7, 8, 3, rng);
  expect_batch_matches_single(conv, {7, 6, 5, 4}, 5, 62);
}

TEST(Conv3dLayer, BatchMatchesSingleGeneralTilePath) {
  // Last dim 3 forces the general tiling inside the templated kernel.
  util::Rng rng(63);
  Conv3d conv(4, 16, 3, rng);
  expect_batch_matches_single(conv, {4, 4, 5, 3}, 3, 64);
}

TEST(Conv3dLayer, BatchMatchesSingleIm2colFallback) {
  // OC=5 has no template instantiation: exercises the im2col + GEMM path.
  util::Rng rng(65);
  Conv3d conv(3, 5, 3, rng);
  expect_batch_matches_single(conv, {3, 4, 4, 4}, 4, 66);
}

TEST(Conv3dLayer, BatchMatchesSinglePointwise) {
  util::Rng rng(67);
  Conv3d conv(6, 8, 1, rng);
  expect_batch_matches_single(conv, {6, 4, 3, 2}, 4, 68);
}

TEST(GroupNormLayer, BatchMatchesSingle) {
  GroupNorm norm(8, 4);
  expect_batch_matches_single(norm, {8, 3, 4, 2}, 3, 70);
}

TEST(PoolLayers, BatchMatchesSingle) {
  MaxPool3d pool;
  expect_batch_matches_single(pool, {4, 6, 4, 2}, 3, 71);
  UpsampleNearest3d up;
  expect_batch_matches_single(up, {4, 3, 2, 1}, 3, 72);
}

TEST(ResidualBlockLayer, BatchMatchesSingle) {
  util::Rng rng(73);
  ResidualBlock3d block(7, 8, rng);
  expect_batch_matches_single(block, {7, 4, 4, 4}, 3, 74);
}

TEST(ValueNetModel, ScalarOutputAnySize) {
  ValueNet net(ValueNetConfig{3, 4, 8, 1});
  for (std::int32_t d : {2, 3, 5}) {
    const Tensor out = net.forward(random_input({3, d, d + 1, 2}, 100 + d));
    EXPECT_EQ(out.shape(), (std::vector<std::int32_t>{1}));
  }
}

TEST(ValueNetModel, GradCheck) {
  // The scalar head makes per-entry gradients tiny (GAP divides by the
  // spatial volume), so use a larger probe step and tolerance to stay
  // above float32 noise.
  ValueNet net(ValueNetConfig{2, 4, 6, 2});
  const Tensor input = random_input({2, 2, 3, 2}, 111);
  net.forward(input);
  const Tensor weights = Tensor::from({1.0f});
  util::Rng rng(112);
  const GradCheckResult r = grad_check(net, input, weights, rng, 1e-2, 0.12, 24);
  EXPECT_TRUE(r.ok) << "max_rel_error=" << r.max_rel_error;
}

}  // namespace
}  // namespace oar::nn
