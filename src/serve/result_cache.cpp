#include "serve/result_cache.hpp"

#include <utility>

#include "obs/metrics.hpp"

// This file implements the deprecated shim itself; silence the self-use
// warnings so builds stay clean while external callers still see them.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace oar::serve {

namespace {

obs::Gauge& cache_entries_gauge() {
  // Same family RouterService scrapes (get-or-create registry): the shim
  // refreshes it at every mutation so it can never go stale between
  // scrapes — the fix for the old clear() staleness bug.
  static obs::Gauge& g = obs::MetricsRegistry::instance().gauge(
      "oar_serve_cache_entries", "Entries resident in the result cache");
  return g;
}

experience::StoreConfig memory_only(std::size_t capacity) {
  experience::StoreConfig config;
  config.memory_capacity = capacity;
  return config;
}

experience::ExperienceRecord to_record(CachedRoute value) {
  experience::ExperienceRecord rec;
  rec.edges = std::move(value.edges);
  rec.steiner = std::move(value.steiner);
  rec.cost = value.cost;
  rec.connected = value.connected;
  return rec;
}

CachedRoute to_route(experience::ExperienceRecord rec) {
  CachedRoute value;
  value.edges = std::move(rec.edges);
  value.steiner = std::move(rec.steiner);
  value.cost = rec.cost;
  value.connected = rec.connected;
  return value;
}

}  // namespace

ResultCache::ResultCache(std::size_t capacity)
    : capacity_(capacity), store_(memory_only(capacity)) {}

std::optional<CachedRoute> ResultCache::get(const std::string& key) {
  std::optional<experience::ExperienceRecord> rec =
      store_.get(experience::CanonicalKey::from_bytes(key));
  if (!rec) return std::nullopt;
  return to_route(std::move(*rec));
}

void ResultCache::put(const std::string& key, CachedRoute value) {
  if (capacity_ == 0) return;
  store_.put(experience::CanonicalKey::from_bytes(key),
             to_record(std::move(value)));
  cache_entries_gauge().set(double(store_.memory_entries()));
}

std::size_t ResultCache::size() const { return store_.memory_entries(); }

void ResultCache::clear() {
  store_.clear_memory();
  cache_entries_gauge().set(0.0);
}

}  // namespace oar::serve

#pragma GCC diagnostic pop
