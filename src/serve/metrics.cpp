#include "serve/metrics.hpp"

#include "util/csv.hpp"

namespace oar::serve {

const char* stage_name(Stage stage) {
  switch (stage) {
    case Stage::kQueueWait:
      return "queue_wait";
    case Stage::kBatchAssembly:
      return "batch_assembly";
    case Stage::kInference:
      return "inference";
    case Stage::kRouting:
      return "routing";
    case Stage::kTotal:
      return "total";
  }
  return "unknown";
}

void ServiceMetrics::record_stage(Stage stage, double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_[std::size_t(stage)].add(seconds);
  samples_[std::size_t(stage)].push_back(seconds);
}

void ServiceMetrics::add_request() {
  std::lock_guard<std::mutex> lock(mutex_);
  requests_++;
}

void ServiceMetrics::add_cache_hit() {
  std::lock_guard<std::mutex> lock(mutex_);
  cache_hits_++;
}

void ServiceMetrics::add_batch(std::size_t batch_size) {
  std::lock_guard<std::mutex> lock(mutex_);
  batches_++;
  batch_sizes_.add(double(batch_size));
}

void ServiceMetrics::add_deadline_miss() {
  std::lock_guard<std::mutex> lock(mutex_);
  deadline_misses_++;
}

void ServiceMetrics::add_rejected_queue_full() {
  std::lock_guard<std::mutex> lock(mutex_);
  rejected_queue_full_++;
}

void ServiceMetrics::add_rejected_hopeless() {
  std::lock_guard<std::mutex> lock(mutex_);
  rejected_hopeless_++;
}

MetricsSnapshot ServiceMetrics::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  snap.requests = requests_;
  snap.cache_hits = cache_hits_;
  snap.batches = batches_;
  snap.deadline_misses = deadline_misses_;
  snap.rejected_queue_full = rejected_queue_full_;
  snap.rejected_hopeless = rejected_hopeless_;
  snap.mean_batch_size = batch_sizes_.count() == 0 ? 0.0 : batch_sizes_.mean();
  for (int s = 0; s < kNumStages; ++s) {
    const util::RunningStats& st = stats_[std::size_t(s)];
    StageSummary& out = snap.stages[std::size_t(s)];
    out.count = st.count();
    if (st.count() == 0) continue;
    out.mean_ms = st.mean() * 1e3;
    out.max_ms = st.max() * 1e3;
    out.p50_ms = util::percentile(samples_[std::size_t(s)], 50.0) * 1e3;
    out.p90_ms = util::percentile(samples_[std::size_t(s)], 90.0) * 1e3;
    out.p99_ms = util::percentile(samples_[std::size_t(s)], 99.0) * 1e3;
  }
  return snap;
}

bool ServiceMetrics::dump_csv(const std::string& path) const {
  const MetricsSnapshot snap = snapshot();
  util::CsvWriter csv(path, {"stage", "count", "mean_ms", "p50_ms", "p90_ms",
                             "p99_ms", "max_ms"});
  if (!csv.is_open()) return false;
  for (int s = 0; s < kNumStages; ++s) {
    const StageSummary& st = snap.stages[std::size_t(s)];
    csv.row_values(stage_name(Stage(s)), st.count, st.mean_ms, st.p50_ms,
                   st.p90_ms, st.p99_ms, st.max_ms);
  }
  csv.row_values("requests", snap.requests, "", "", "", "", "");
  csv.row_values("cache_hits", snap.cache_hits, "", "", "", "", "");
  csv.row_values("cache_hit_rate", snap.cache_hit_rate(), "", "", "", "", "");
  csv.row_values("batches", snap.batches, "", "", "", "", "");
  csv.row_values("mean_batch_size", snap.mean_batch_size, "", "", "", "", "");
  csv.row_values("deadline_misses", snap.deadline_misses, "", "", "", "", "");
  csv.row_values("rejected_queue_full", snap.rejected_queue_full, "", "", "", "",
                 "");
  csv.row_values("rejected_hopeless", snap.rejected_hopeless, "", "", "", "", "");
  return true;
}

}  // namespace oar::serve
