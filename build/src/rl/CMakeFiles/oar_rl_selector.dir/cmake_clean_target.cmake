file(REMOVE_RECURSE
  "liboar_rl_selector.a"
)
