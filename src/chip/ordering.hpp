#pragma once

// Net-ordering heuristics for sequential full-chip routing.
//
// The first negotiation iteration routes nets one at a time, so the order
// decides who claims contested resources first.  Small-before-large is the
// classic choice (short nets have the fewest detour options); the
// negotiation loop then corrects whatever the ordering got wrong.  All
// keys sort ascending with the netlist index as the tie-break, so orders
// are deterministic for a fixed netlist.

#include <functional>
#include <vector>

#include "chip/netlist.hpp"

namespace oar::chip {

enum class NetOrder {
  kAsGiven,    // netlist order
  kHpwl,       // half-perimeter wirelength (geometric steps + via span)
  kPinCount,   // pin count, HPWL tie-break
  kBboxArea,   // bounding-box area in geometric units, HPWL tie-break
};

/// Custom ordering hook: smaller key routes earlier.  When set on
/// ChipConfig it overrides the NetOrder enum.
using OrderKeyFn = std::function<double(const HananGrid&, const Net&)>;

/// Half-perimeter wirelength of the net's bounding box in geometric units:
/// the sum of x steps and y steps spanned plus via_cost per layer spanned.
/// The standard routing-demand estimate for a net.
double net_hpwl(const HananGrid& grid, const Net& net);

/// Bounding-box area (x extent * y extent) in geometric units.
double net_bbox_area(const HananGrid& grid, const Net& net);

/// Routing sequence: indices into `nets`, ordered per `order` (or `custom`
/// when provided).
std::vector<std::size_t> order_nets(const HananGrid& grid,
                                    const std::vector<Net>& nets,
                                    NetOrder order,
                                    const OrderKeyFn& custom = {});

}  // namespace oar::chip
