#include "route/scratch.hpp"

namespace oar::route {

RouterScratch& local_router_scratch() {
  thread_local RouterScratch scratch;
  return scratch;
}

}  // namespace oar::route
