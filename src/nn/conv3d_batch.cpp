#include <algorithm>
#include <vector>

#include "nn/conv3d.hpp"
#include "nn/inference.hpp"

// Batched convolution kernels.  Kept in their own translation unit so the
// build can compile just this file with wider vector flags (see
// src/nn/CMakeLists.txt) without touching the training path's numerics: the
// single-sample forward/backward in conv3d.cpp stay on the default flags.
//
// For the channel counts the U-Net instantiates we run a direct convolution
// with a register tile of TILE output voxels (a run along the innermost,
// layer axis) x OC accumulators; both extents are template constants so the
// accumulators live in registers and the per-weight axpy fully unrolls.
// This beats im2col here because routing volumes are shallow (M ~ 2..8): the
// contiguous runs im2col copies are only M long, so patch assembly costs as
// much as the GEMM it feeds.  Other channel counts fall back to an im2col +
// register-blocked GEMM that handles any OC.

namespace oar::nn {

namespace {

/// Accumulate one (TILE output voxels) x OC register tile at output line
/// position t: out voxels (n, :, o0, o1, t..t+TILE).  Weights arrive
/// transposed as wt(kk, oc) with kk = (ic, k0, k1, k2) so the accumulation
/// order matches the single-sample forward.
template <std::int32_t OC, std::int32_t TILE>
inline void conv_tile(const float* in_sample_ptr, const float* wt, const float* bias,
                      float* out_line, std::int32_t IC, std::int32_t D0,
                      std::int32_t D1, std::int32_t D2, std::int32_t kernel,
                      std::int32_t pad, std::int32_t o0, std::int32_t o1,
                      std::int32_t t, std::int64_t out_chan) {
  const std::int64_t in_plane = std::int64_t(D1) * D2;
  const std::int64_t in_chan = std::int64_t(D0) * in_plane;

  float a[TILE][OC];
  for (std::int32_t j = 0; j < TILE; ++j) {
    for (std::int32_t oc = 0; oc < OC; ++oc) a[j][oc] = bias[oc];
  }

  const float* wk = wt;
  for (std::int32_t ic = 0; ic < IC; ++ic) {
    const float* ichan = in_sample_ptr + ic * in_chan;
    for (std::int32_t k0 = 0; k0 < kernel; ++k0) {
      const std::int32_t z0 = o0 + k0 - pad;
      for (std::int32_t k1 = 0; k1 < kernel; ++k1) {
        const std::int32_t z1 = o1 + k1 - pad;
        if (z0 < 0 || z0 >= D0 || z1 < 0 || z1 >= D1) {
          wk += std::size_t(kernel) * OC;
          continue;
        }
        const float* L = ichan + std::int64_t(z0) * in_plane + std::int64_t(z1) * D2;
        for (std::int32_t k2 = 0; k2 < kernel; ++k2, wk += OC) {
          const std::int32_t z2_base = t + k2 - pad;
          const float* __restrict__ w = wk;
          for (std::int32_t j = 0; j < TILE; ++j) {
            const std::int32_t z2 = z2_base + j;
            if (std::uint32_t(z2) >= std::uint32_t(D2)) continue;
            const float s = L[z2];
            // Skipping zero activations only pays once the axpy is wide
            // enough to outweigh the branch.
            if (OC >= 16 && s == 0.0f) continue;
            for (std::int32_t oc = 0; oc < OC; ++oc) a[j][oc] += s * w[oc];
          }
        }
      }
    }
  }

  // Scatter to the channel-major output: out(oc, o0, o1, t + j).
  for (std::int32_t oc = 0; oc < OC; ++oc) {
    float* orow = out_line + oc * out_chan;
    for (std::int32_t j = 0; j < TILE; ++j) orow[j] = a[j][oc];
  }
}

/// Full-line specialization for 3x3x3 same-padding convolutions whose
/// innermost (layer) extent is exactly TILE: every k2 tap then has
/// compile-time valid j bounds, so the whole accumulate is branch-free and
/// the tile never leaves registers.  This is the shape the router serves
/// constantly — shallow volumes with M = D2 in {1, 2, 4, 8}.
template <std::int32_t OC, std::int32_t TILE>
inline void conv_line3(const float* in_sample_ptr, const float* wt,
                       const float* bias, float* out_line, std::int32_t IC,
                       std::int32_t D0, std::int32_t D1, std::int32_t o0,
                       std::int32_t o1, std::int64_t out_chan) {
  constexpr std::int32_t D2 = TILE;
  const std::int64_t in_plane = std::int64_t(D1) * D2;
  const std::int64_t in_chan = std::int64_t(D0) * in_plane;

  float a[TILE][OC];
  for (std::int32_t j = 0; j < TILE; ++j) {
    for (std::int32_t oc = 0; oc < OC; ++oc) a[j][oc] = bias[oc];
  }

  const float* wk = wt;
  for (std::int32_t ic = 0; ic < IC; ++ic) {
    const float* ichan = in_sample_ptr + ic * in_chan;
    for (std::int32_t k0 = 0; k0 < 3; ++k0) {
      const std::int32_t z0 = o0 + k0 - 1;
      for (std::int32_t k1 = 0; k1 < 3; ++k1, wk += 3 * OC) {
        const std::int32_t z1 = o1 + k1 - 1;
        if (z0 < 0 || z0 >= D0 || z1 < 0 || z1 >= D1) continue;
        const float* L = ichan + std::int64_t(z0) * in_plane + std::int64_t(z1) * D2;
        const float* __restrict__ w0 = wk;            // k2 = 0: z2 = j - 1
        const float* __restrict__ w1 = wk + OC;       // k2 = 1: z2 = j
        const float* __restrict__ w2 = wk + 2 * OC;   // k2 = 2: z2 = j + 1
        for (std::int32_t j = 1; j < TILE; ++j) {
          const float s = L[j - 1];
          for (std::int32_t oc = 0; oc < OC; ++oc) a[j][oc] += s * w0[oc];
        }
        for (std::int32_t j = 0; j < TILE; ++j) {
          const float s = L[j];
          for (std::int32_t oc = 0; oc < OC; ++oc) a[j][oc] += s * w1[oc];
        }
        for (std::int32_t j = 0; j < TILE - 1; ++j) {
          const float s = L[j + 1];
          for (std::int32_t oc = 0; oc < OC; ++oc) a[j][oc] += s * w2[oc];
        }
      }
    }
  }

  for (std::int32_t oc = 0; oc < OC; ++oc) {
    float* orow = out_line + oc * out_chan;
    for (std::int32_t j = 0; j < TILE; ++j) orow[j] = a[j][oc];
  }
}

#if defined(__GNUC__) || defined(__clang__)
#define OAR_CONV_VEC_EXT 1
/// conv_line3 with the accumulators held in native vector registers.  The
/// scalar variant above keeps a[TILE][OC] on the stack and the compiler
/// never proves it can stay in registers across the boundary-guarded tap
/// loop, so every tap pays a store-to-load round trip per accumulator —
/// measured at ~4 GFLOP/s for OC = 8 versus ~45 GFLOP/s here.  One vector
/// of OC lanes per output voxel only makes sense for narrow OC (8 or 16);
/// wider channel counts would spill the TILE accumulators right back to the
/// stack.  The per-element accumulation order is identical to conv_line3,
/// so the two kernels agree bit-for-bit under this file's FP flags.
template <std::int32_t OC, std::int32_t TILE>
inline void conv_line3_vec(const float* in_sample_ptr, const float* wt,
                           const float* bias, float* out_line, std::int32_t IC,
                           std::int32_t D0, std::int32_t D1, std::int32_t o0,
                           std::int32_t o1, std::int64_t out_chan) {
  typedef float Vec __attribute__((vector_size(OC * sizeof(float))));
  constexpr std::int32_t D2 = TILE;
  const std::int64_t in_plane = std::int64_t(D1) * D2;
  const std::int64_t in_chan = std::int64_t(D0) * in_plane;

  Vec b;
  __builtin_memcpy(&b, bias, sizeof(b));
  Vec a[TILE];
  for (std::int32_t j = 0; j < TILE; ++j) a[j] = b;

  const float* wk = wt;
  for (std::int32_t ic = 0; ic < IC; ++ic) {
    const float* ichan = in_sample_ptr + ic * in_chan;
    for (std::int32_t k0 = 0; k0 < 3; ++k0) {
      const std::int32_t z0 = o0 + k0 - 1;
      for (std::int32_t k1 = 0; k1 < 3; ++k1, wk += 3 * OC) {
        const std::int32_t z1 = o1 + k1 - 1;
        if (z0 < 0 || z0 >= D0 || z1 < 0 || z1 >= D1) continue;
        const float* L = ichan + std::int64_t(z0) * in_plane + std::int64_t(z1) * D2;
        Vec w0, w1, w2;  // k2 = 0/1/2 taps: z2 = j - 1 / j / j + 1
        __builtin_memcpy(&w0, wk, sizeof(w0));
        __builtin_memcpy(&w1, wk + OC, sizeof(w1));
        __builtin_memcpy(&w2, wk + 2 * OC, sizeof(w2));
        for (std::int32_t j = 1; j < TILE; ++j) a[j] += L[j - 1] * w0;
        for (std::int32_t j = 0; j < TILE; ++j) a[j] += L[j] * w1;
        for (std::int32_t j = 0; j < TILE - 1; ++j) a[j] += L[j + 1] * w2;
      }
    }
  }

  for (std::int32_t oc = 0; oc < OC; ++oc) {
    float* orow = out_line + oc * out_chan;
    for (std::int32_t j = 0; j < TILE; ++j) orow[j] = a[j][oc];
  }
}
#endif  // OAR_CONV_VEC_EXT

/// conv_line3 entry point: picks the vector-register accumulator build for
/// the narrow channel counts it pays off on, the portable scalar tile
/// otherwise.
template <std::int32_t OC, std::int32_t TILE>
inline void conv_line3_dispatch(const float* in_sample_ptr, const float* wt,
                                const float* bias, float* out_line,
                                std::int32_t IC, std::int32_t D0,
                                std::int32_t D1, std::int32_t o0,
                                std::int32_t o1, std::int64_t out_chan) {
#ifdef OAR_CONV_VEC_EXT
  if constexpr (OC == 8 || OC == 16) {
    conv_line3_vec<OC, TILE>(in_sample_ptr, wt, bias, out_line, IC, D0, D1, o0,
                             o1, out_chan);
    return;
  }
#endif
  conv_line3<OC, TILE>(in_sample_ptr, wt, bias, out_line, IC, D0, D1, o0, o1,
                       out_chan);
}

template <std::int32_t OC>
void direct_conv(const float* in, const float* wt, const float* bias, float* out,
                 std::int32_t N, std::int32_t IC, std::int32_t D0, std::int32_t D1,
                 std::int32_t D2, std::int32_t kernel, std::int32_t pad,
                 std::int32_t O0, std::int32_t O1, std::int32_t O2) {
  const std::int64_t in_sample = std::int64_t(IC) * D0 * D1 * D2;
  const std::int64_t out_chan = std::int64_t(O0) * O1 * O2;
  const std::int64_t out_sample = std::int64_t(OC) * out_chan;
  const std::int64_t out_plane = std::int64_t(O1) * O2;

  if (kernel == 3 && pad == 1 && O2 == D2 &&
      (D2 == 1 || D2 == 2 || D2 == 4 || D2 == 8)) {
    for (std::int32_t n = 0; n < N; ++n) {
      const float* isample = in + n * in_sample;
      float* osample = out + n * out_sample;
      for (std::int32_t o0 = 0; o0 < O0; ++o0) {
        for (std::int32_t o1 = 0; o1 < O1; ++o1) {
          float* oline =
              osample + std::int64_t(o0) * out_plane + std::int64_t(o1) * O2;
          switch (D2) {
            case 1:
              conv_line3_dispatch<OC, 1>(isample, wt, bias, oline, IC, D0, D1, o0, o1,
                                out_chan);
              break;
            case 2:
              conv_line3_dispatch<OC, 2>(isample, wt, bias, oline, IC, D0, D1, o0, o1,
                                out_chan);
              break;
            case 4:
              conv_line3_dispatch<OC, 4>(isample, wt, bias, oline, IC, D0, D1, o0, o1,
                                out_chan);
              break;
            default:
              conv_line3_dispatch<OC, 8>(isample, wt, bias, oline, IC, D0, D1, o0, o1,
                                out_chan);
              break;
          }
        }
      }
    }
    return;
  }

  for (std::int32_t n = 0; n < N; ++n) {
    const float* isample = in + n * in_sample;
    float* osample = out + n * out_sample;
    for (std::int32_t o0 = 0; o0 < O0; ++o0) {
      for (std::int32_t o1 = 0; o1 < O1; ++o1) {
        float* oline = osample + std::int64_t(o0) * out_plane + std::int64_t(o1) * O2;
        std::int32_t t = 0;
        for (; t + 8 <= O2; t += 8) {
          conv_tile<OC, 8>(isample, wt, bias, oline + t, IC, D0, D1, D2, kernel,
                           pad, o0, o1, t, out_chan);
        }
        for (; t + 4 <= O2; t += 4) {
          conv_tile<OC, 4>(isample, wt, bias, oline + t, IC, D0, D1, D2, kernel,
                           pad, o0, o1, t, out_chan);
        }
        for (; t + 2 <= O2; t += 2) {
          conv_tile<OC, 2>(isample, wt, bias, oline + t, IC, D0, D1, D2, kernel,
                           pad, o0, o1, t, out_chan);
        }
        for (; t < O2; ++t) {
          conv_tile<OC, 1>(isample, wt, bias, oline + t, IC, D0, D1, D2, kernel,
                           pad, o0, o1, t, out_chan);
        }
      }
    }
  }
}

/// 1x1x1 convolution: a per-voxel channel mix.  The spatial axis is
/// contiguous, so an axpy per (oc, ic) pair vectorizes without any patch
/// assembly.  Handles the output head and every residual projection.
void pointwise_conv(const float* in, const float* w, const float* bias,
                    float* out, std::int32_t N, std::int32_t IC, std::int32_t OC,
                    std::int64_t spatial) {
  const std::int64_t in_sample = std::int64_t(IC) * spatial;
  const std::int64_t out_sample = std::int64_t(OC) * spatial;
  for (std::int32_t n = 0; n < N; ++n) {
    const float* isample = in + n * in_sample;
    float* osample = out + n * out_sample;
    for (std::int32_t oc = 0; oc < OC; ++oc) {
      float* __restrict__ orow = osample + oc * spatial;
      const float b = bias[oc];
      for (std::int64_t i = 0; i < spatial; ++i) orow[i] = b;
      for (std::int32_t ic = 0; ic < IC; ++ic) {
        const float s = w[std::int64_t(oc) * IC + ic];
        if (s == 0.0f) continue;
        const float* __restrict__ irow = isample + ic * spatial;
        for (std::int64_t i = 0; i < spatial; ++i) orow[i] += s * irow[i];
      }
    }
  }
}

constexpr std::int64_t kRowBlock = 128;

/// im2col + 4-row register-blocked GEMM fallback for any output-channel
/// count: out(r, oc) = bias(oc) + sum_k col(r, k) * wt(k, oc).  `acc` is a
/// caller-provided 4*OC workspace so the inner loop stays allocation-free.
void gemm_block_generic(const float* col, std::int64_t rows, std::int64_t K,
                        std::int32_t OC, const float* wt, const float* bias,
                        float* out, float* acc) {
  std::int64_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    float* __restrict__ a0 = acc;
    float* __restrict__ a1 = a0 + OC;
    float* __restrict__ a2 = a1 + OC;
    float* __restrict__ a3 = a2 + OC;
    for (std::int32_t oc = 0; oc < OC; ++oc) {
      a0[oc] = a1[oc] = a2[oc] = a3[oc] = bias[oc];
    }
    const float* c0 = col + r * K;
    const float* c1 = c0 + K;
    const float* c2 = c1 + K;
    const float* c3 = c2 + K;
    for (std::int64_t kk = 0; kk < K; ++kk) {
      const float s0 = c0[kk], s1 = c1[kk], s2 = c2[kk], s3 = c3[kk];
      if (s0 == 0.0f && s1 == 0.0f && s2 == 0.0f && s3 == 0.0f) continue;
      const float* __restrict__ w = wt + std::size_t(kk) * OC;
      for (std::int32_t oc = 0; oc < OC; ++oc) {
        a0[oc] += s0 * w[oc];
        a1[oc] += s1 * w[oc];
        a2[oc] += s2 * w[oc];
        a3[oc] += s3 * w[oc];
      }
    }
    float* o = out + r * OC;
    std::copy(a0, a0 + OC, o);
    std::copy(a1, a1 + OC, o + OC);
    std::copy(a2, a2 + OC, o + 2 * OC);
    std::copy(a3, a3 + OC, o + 3 * OC);
  }
  for (; r < rows; ++r) {
    float* __restrict__ a = acc;
    for (std::int32_t oc = 0; oc < OC; ++oc) a[oc] = bias[oc];
    const float* c0 = col + r * K;
    for (std::int64_t kk = 0; kk < K; ++kk) {
      const float s = c0[kk];
      if (s == 0.0f) continue;
      const float* __restrict__ w = wt + std::size_t(kk) * OC;
      for (std::int32_t oc = 0; oc < OC; ++oc) a[oc] += s * w[oc];
    }
    std::copy(a, a + OC, out + r * OC);
  }
}

void im2col_conv(const float* in, const float* wt, const float* bias, float* out,
                 std::int32_t N, std::int32_t IC, std::int32_t D0, std::int32_t D1,
                 std::int32_t D2, std::int32_t kernel, std::int32_t pad,
                 std::int32_t O0, std::int32_t O1, std::int32_t O2,
                 std::int32_t OC, InferenceScratch& ws) {
  const std::int64_t in_plane = std::int64_t(D1) * D2;
  const std::int64_t in_chan = std::int64_t(D0) * in_plane;
  const std::int64_t in_sample = std::int64_t(IC) * in_chan;
  const std::int64_t out_chan = std::int64_t(O0) * O1 * O2;
  const std::int64_t out_sample = std::int64_t(OC) * out_chan;
  const std::int64_t k3 = std::int64_t(kernel) * kernel * kernel;
  const std::int64_t K = std::int64_t(IC) * k3;
  const std::int64_t rows_total = std::int64_t(N) * out_chan;

  float* col = ws.col(std::size_t(kRowBlock) * std::size_t(K));
  float* prod = ws.prod(std::size_t(kRowBlock) * std::size_t(OC));
  float* acc = ws.acc(std::size_t(OC) * 4);

  for (std::int64_t r0 = 0; r0 < rows_total; r0 += kRowBlock) {
    const std::int64_t rblk = std::min(kRowBlock, rows_total - r0);

    // im2col: one row per (sample, output voxel); padding stays zero.
    std::fill(col, col + rblk * K, 0.0f);
    for (std::int64_t r = 0; r < rblk; ++r) {
      const std::int64_t row = r0 + r;
      const std::int32_t n = std::int32_t(row / out_chan);
      const std::int64_t s = row % out_chan;
      const std::int32_t o0 = std::int32_t(s / (std::int64_t(O1) * O2));
      const std::int32_t o1 = std::int32_t((s / O2) % O1);
      const std::int32_t o2 = std::int32_t(s % O2);
      float* crow = col + r * K;
      const float* isample = in + n * in_sample;
      const std::int32_t k2_lo = std::max(0, pad - o2);
      const std::int32_t k2_hi = std::min(kernel, D2 + pad - o2);
      if (k2_lo >= k2_hi) continue;
      for (std::int32_t ic = 0; ic < IC; ++ic) {
        const float* ichan = isample + ic * in_chan;
        float* cchan = crow + ic * k3;
        for (std::int32_t k0 = 0; k0 < kernel; ++k0) {
          const std::int32_t z0 = o0 + k0 - pad;
          if (z0 < 0 || z0 >= D0) continue;
          for (std::int32_t k1 = 0; k1 < kernel; ++k1) {
            const std::int32_t z1 = o1 + k1 - pad;
            if (z1 < 0 || z1 >= D1) continue;
            float* cdst = cchan + (std::int64_t(k0) * kernel + k1) * kernel + k2_lo;
            const float* isrc = ichan + std::int64_t(z0) * in_plane +
                                std::int64_t(z1) * D2 + (o2 + k2_lo - pad);
            std::copy(isrc, isrc + (k2_hi - k2_lo), cdst);
          }
        }
      }
    }

    gemm_block_generic(col, rblk, K, OC, wt, bias, prod, acc);

    // Scatter (row, oc) back to the channel-major output layout.
    for (std::int64_t r = 0; r < rblk; ++r) {
      const std::int64_t row = r0 + r;
      const std::int32_t n = std::int32_t(row / out_chan);
      const std::int64_t s = row % out_chan;
      float* obase = out + n * out_sample + s;
      const float* p = prod + r * OC;
      for (std::int32_t oc = 0; oc < OC; ++oc) {
        obase[std::int64_t(oc) * out_chan] = p[oc];
      }
    }
  }
}

/// Shared tail of forward_batch and the single-sample infer_into fast path:
/// transpose the weights to (K, OC) in the workspace, then dispatch the
/// register-tiled kernel for the known channel counts or the im2col
/// fallback.  The kk = (ic, k0, k1, k2) accumulation order matches the
/// single-sample training forward, keeping the two paths numerically
/// aligned up to flag-dependent FP contraction in this translation unit.
void conv_dispatch(const float* in, const float* w, const float* bias, float* o,
                   std::int32_t N, std::int32_t IC, std::int32_t OC,
                   std::int32_t D0, std::int32_t D1, std::int32_t D2,
                   std::int32_t kernel, std::int32_t pad, std::int32_t O0,
                   std::int32_t O1, std::int32_t O2, InferenceScratch& ws) {
  if (kernel == 1 && pad == 0) {
    pointwise_conv(in, w, bias, o, N, IC, OC, std::int64_t(O0) * O1 * O2);
    return;
  }

  const std::int64_t K = std::int64_t(IC) * kernel * kernel * kernel;
  float* wt = ws.wt(std::size_t(K) * std::size_t(OC));
  for (std::int32_t oc = 0; oc < OC; ++oc) {
    for (std::int64_t kk = 0; kk < K; ++kk) {
      wt[std::size_t(kk) * std::size_t(OC) + std::size_t(oc)] = w[oc * K + kk];
    }
  }

  switch (OC) {
    case 1:
      direct_conv<1>(in, wt, bias, o, N, IC, D0, D1, D2, kernel, pad, O0, O1, O2);
      break;
    case 8:
      direct_conv<8>(in, wt, bias, o, N, IC, D0, D1, D2, kernel, pad, O0, O1, O2);
      break;
    case 16:
      direct_conv<16>(in, wt, bias, o, N, IC, D0, D1, D2, kernel, pad, O0, O1, O2);
      break;
    case 32:
      direct_conv<32>(in, wt, bias, o, N, IC, D0, D1, D2, kernel, pad, O0, O1, O2);
      break;
    case 64:
      direct_conv<64>(in, wt, bias, o, N, IC, D0, D1, D2, kernel, pad, O0, O1, O2);
      break;
    default:
      im2col_conv(in, wt, bias, o, N, IC, D0, D1, D2, kernel, pad, O0, O1, O2,
                  OC, ws);
      break;
  }
}

}  // namespace

Tensor Conv3d::forward_batch(const Tensor& input) {
  assert(input.dim() == 5);
  assert(input.shape(1) == in_channels_);

  const std::int32_t N = input.shape(0);
  const std::int32_t D0 = input.shape(2), D1 = input.shape(3), D2 = input.shape(4);
  const std::int32_t O0 = D0 + 2 * padding_ - kernel_ + 1;
  const std::int32_t O1 = D1 + 2 * padding_ - kernel_ + 1;
  const std::int32_t O2 = D2 + 2 * padding_ - kernel_ + 1;
  assert(O0 > 0 && O1 > 0 && O2 > 0);

  Tensor out({N, out_channels_, O0, O1, O2});
  conv_dispatch(input.data(), weight_.value.data(), bias_.value.data(),
                out.data(), N, in_channels_, out_channels_, D0, D1, D2, kernel_,
                padding_, O0, O1, O2, local_inference_scratch());
  return out;
}

void Conv3d::infer_into(const float* in, std::int32_t D0, std::int32_t D1,
                        std::int32_t D2, InferenceScratch& scratch,
                        float* out) const {
  const std::int32_t O0 = D0 + 2 * padding_ - kernel_ + 1;
  const std::int32_t O1 = D1 + 2 * padding_ - kernel_ + 1;
  const std::int32_t O2 = D2 + 2 * padding_ - kernel_ + 1;
  assert(O0 > 0 && O1 > 0 && O2 > 0);
  conv_dispatch(in, weight_.value.data(), bias_.value.data(), out, 1,
                in_channels_, out_channels_, D0, D1, D2, kernel_, padding_, O0,
                O1, O2, scratch);
}

}  // namespace oar::nn
