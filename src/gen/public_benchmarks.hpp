#pragma once

// Synthetic clones of the public ML-OARSMT benchmarks (rt1-rt5, ind1-ind3)
// used in the paper's Table 4.  The original IBM/industry files are not
// redistributable, so each clone is generated deterministically (fixed
// seed per benchmark) to match the published statistics: Hanan-graph
// dimensions H x V, layer count M, pin count and obstacle count, with via
// cost 3 as in Table 4.  Obstacles are random rectangular vertex blocks
// whose count equals the published "# obstacles" column.
//
// A `scale` > 1 shrinks dimensions and pin counts proportionally so that
// the full Table 4 sweep stays within a CPU benchmark budget; scale = 1
// reproduces the paper's sizes.

#include <string>
#include <vector>

#include "hanan/hanan_grid.hpp"

namespace oar::gen {

struct PublicBenchmarkInfo {
  std::string name;
  std::int32_t h = 0, v = 0, m = 0;
  std::int32_t pins = 0;
  std::int32_t obstacles = 0;
};

/// The eight Table 4 rows with their published statistics.
std::vector<PublicBenchmarkInfo> public_benchmark_table();

/// Statistics after downscaling by `scale` (dimension divisor).
PublicBenchmarkInfo scaled_info(const PublicBenchmarkInfo& info, std::int32_t scale);

/// Deterministic synthetic clone of a Table 4 benchmark at `scale`.
hanan::HananGrid make_public_benchmark(const PublicBenchmarkInfo& info,
                                       std::int32_t scale = 1);

/// Lookup by name ("rt1".."rt5", "ind1".."ind3"); throws std::out_of_range
/// for unknown names.
PublicBenchmarkInfo public_benchmark_info(const std::string& name);

}  // namespace oar::gen
