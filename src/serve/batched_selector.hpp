#pragma once

// Micro-batched Steiner-point inference: encodes N same-shape layouts into
// one (N, C, H, V, M) tensor and runs a single batched U-Net pass
// (Module::forward_batch, the im2col/direct-conv kernels of
// nn/conv3d_batch.cpp), returning per-layout fsp in priority order.  A
// batch of one falls back to the selector's plain single-sample path, so a
// batch-size-1 service is exactly the legacy router.

#include <vector>

#include "rl/selector.hpp"
#include "util/thread_pool.hpp"

namespace oar::serve {

using hanan::HananGrid;

/// fsp (sigmoid probabilities in priority order) for every grid.  All grids
/// must share one (H, V, M) shape.  Feature encoding fans out across `pool`
/// when provided.
std::vector<std::vector<double>> batched_fsp(rl::SteinerSelector& selector,
                                             const std::vector<const HananGrid*>& grids,
                                             util::ThreadPool* pool = nullptr);

}  // namespace oar::serve
