#pragma once

// Dense float tensor.  This is the numeric substrate for the from-scratch
// deep-learning library (no external DL framework is available offline).
// Keep it small and predictable: contiguous row-major storage, explicit
// shapes, no views, no broadcasting beyond the few helpers the layers need.

#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace oar::nn {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<std::int32_t> shape, float fill_value = 0.0f);

  static Tensor zeros(std::vector<std::int32_t> shape) { return Tensor(std::move(shape)); }
  static Tensor full(std::vector<std::int32_t> shape, float v) { return Tensor(std::move(shape), v); }
  /// Gaussian init with given stddev (He/Xavier scaling is done by callers).
  static Tensor randn(std::vector<std::int32_t> shape, util::Rng& rng, float stddev = 1.0f);
  /// 1-D tensor wrapping a copy of `values`.
  static Tensor from(const std::vector<float>& values);

  bool defined() const { return !shape_.empty(); }
  std::int32_t dim() const { return std::int32_t(shape_.size()); }
  const std::vector<std::int32_t>& shape() const { return shape_; }
  std::int32_t shape(std::int32_t i) const { return shape_[std::size_t(i)]; }
  std::int64_t numel() const { return std::int64_t(data_.size()); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& raw() { return data_; }
  const std::vector<float>& raw() const { return data_; }

  float operator[](std::int64_t i) const { return data_[std::size_t(i)]; }
  float& operator[](std::int64_t i) { return data_[std::size_t(i)]; }

  /// Multi-index access (asserts rank and bounds in debug builds).
  float at(std::initializer_list<std::int32_t> idx) const { return data_[flat(idx)]; }
  float& at(std::initializer_list<std::int32_t> idx) { return data_[flat(idx)]; }

  /// Same data, new shape (element counts must match).
  Tensor reshaped(std::vector<std::int32_t> new_shape) const;

  /// In-place re-dimension for pooled tensors (InferenceScratch slots):
  /// adopts `shape`, resizing storage to match.  Contents are unspecified
  /// afterwards.  Capacity is never released, so once a slot has seen its
  /// high-water shape further reset_shape calls allocate nothing.
  void reset_shape(const std::vector<std::int32_t>& shape);
  /// Braced-shape variant: avoids materializing a std::vector for the
  /// shape argument, so a warm call performs no heap allocation at all.
  void reset_shape(std::initializer_list<std::int32_t> shape);

  void fill(float v);
  void zero() { fill(0.0f); }

  // In-place arithmetic (shapes must match exactly).
  Tensor& operator+=(const Tensor& o);
  Tensor& operator-=(const Tensor& o);
  Tensor& operator*=(float s);
  /// this += alpha * o
  void axpy(float alpha, const Tensor& o);

  double sum() const;
  double mean() const;
  float max_value() const;
  float min_value() const;
  std::int64_t argmax() const;

  /// L2 norm of all elements (used by grad-norm clipping / diagnostics).
  double norm() const;

  std::string shape_string() const;

 private:
  std::size_t flat(std::initializer_list<std::int32_t> idx) const;

  std::vector<std::int32_t> shape_;
  std::vector<float> data_;
};

/// Element-wise binary helpers (allocate a result tensor).
Tensor operator+(const Tensor& a, const Tensor& b);
Tensor operator-(const Tensor& a, const Tensor& b);
Tensor operator*(const Tensor& a, float s);

}  // namespace oar::nn
