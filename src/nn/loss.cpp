#include "nn/loss.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace oar::nn {

double bce_with_logits(const Tensor& logits, const Tensor& targets,
                       Tensor& grad_logits, const Tensor* weight) {
  assert(logits.shape() == targets.shape());
  if (weight != nullptr) assert(weight->shape() == logits.shape());
  grad_logits = Tensor(logits.shape());

  double total_weight = 0.0;
  if (weight == nullptr) {
    total_weight = double(logits.numel());
  } else {
    total_weight = weight->sum();
  }
  if (total_weight <= 0.0) return 0.0;
  const double inv_w = 1.0 / total_weight;

  double loss = 0.0;
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    const double w = weight == nullptr ? 1.0 : double((*weight)[i]);
    if (w == 0.0) continue;
    const double x = logits[i];
    const double t = targets[i];
    // log(1 + e^{-|x|}) formulation: max(x,0) - x*t + log(1+exp(-|x|))
    loss += w * (std::max(x, 0.0) - x * t + std::log1p(std::exp(-std::abs(x))));
    const double p = 1.0 / (1.0 + std::exp(-x));
    grad_logits[i] = float(w * (p - t) * inv_w);
  }
  return loss * inv_w;
}

double mse(const Tensor& pred, const Tensor& targets, Tensor& grad_pred) {
  assert(pred.shape() == targets.shape());
  grad_pred = Tensor(pred.shape());
  const double inv_n = 1.0 / double(pred.numel());
  double loss = 0.0;
  for (std::int64_t i = 0; i < pred.numel(); ++i) {
    const double d = double(pred[i]) - targets[i];
    loss += d * d;
    grad_pred[i] = float(2.0 * d * inv_n);
  }
  return loss * inv_n;
}

}  // namespace oar::nn
