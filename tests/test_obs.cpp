#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace oar::obs {
namespace {

MetricsRegistry& reg() { return MetricsRegistry::instance(); }

// Most tests exercise the real implementation; under OARSMTRL_NO_METRICS the
// whole layer compiles to no-ops, so they skip (the no-op build has its own
// compile test in CI, plus NoMetricsBuildStillLinks below).
#define SKIP_WITHOUT_METRICS() \
  if (!kMetricsCompiled) GTEST_SKIP() << "built with OARSMTRL_NO_METRICS"

TEST(MetricsRegistry, GetOrCreateReturnsStableReferences) {
  Counter& a = reg().counter("test_registry_stable_total", "help");
  Counter& b = reg().counter("test_registry_stable_total", "help");
  EXPECT_EQ(&a, &b);
  Gauge& g1 = reg().gauge("test_registry_stable_gauge", "help");
  Gauge& g2 = reg().gauge("test_registry_stable_gauge", "help");
  EXPECT_EQ(&g1, &g2);
  Histogram& h1 =
      reg().histogram("test_registry_stable_hist", {1.0, 2.0}, "help");
  Histogram& h2 =
      reg().histogram("test_registry_stable_hist", {1.0, 2.0}, "help");
  EXPECT_EQ(&h1, &h2);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  SKIP_WITHOUT_METRICS();
  reg().counter("test_registry_kind_total", "help");
  EXPECT_THROW(reg().gauge("test_registry_kind_total", "help"),
               std::logic_error);
  EXPECT_THROW(reg().histogram("test_registry_kind_total", {1.0}, "help"),
               std::logic_error);
}

TEST(MetricsRegistry, HistogramRequiresAscendingBounds) {
  SKIP_WITHOUT_METRICS();
  EXPECT_THROW(reg().histogram("test_registry_bad_bounds", {2.0, 1.0}, "h"),
               std::invalid_argument);
  EXPECT_THROW(reg().histogram("test_registry_dup_bounds", {1.0, 1.0}, "h"),
               std::invalid_argument);
}

TEST(Counter, ConcurrentIncrementsAreExact) {
  SKIP_WITHOUT_METRICS();
  Counter& c = reg().counter("test_concurrent_total", "help");
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  util::ThreadPool pool(kThreads);
  pool.parallel_for(kThreads, [&](std::size_t) {
    for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    c.add(5);
  });
  const Snapshot snap = reg().snapshot();
  bool found = false;
  for (const CounterSample& s : snap.counters) {
    if (s.name == "test_concurrent_total") {
      EXPECT_EQ(s.value, kThreads * kPerThread + kThreads * 5);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Histogram, ConcurrentObservationsAreExact) {
  SKIP_WITHOUT_METRICS();
  Histogram& h =
      reg().histogram("test_concurrent_hist", {1.0, 2.0, 4.0}, "help");
  constexpr std::size_t kThreads = 8;
  constexpr int kPerThread = 5000;
  util::ThreadPool pool(kThreads);
  pool.parallel_for(kThreads, [&](std::size_t) {
    for (int i = 0; i < kPerThread; ++i) h.observe(1.5);
  });
  const Snapshot snap = reg().snapshot();
  for (const HistogramSample& s : snap.histograms) {
    if (s.name != "test_concurrent_hist") continue;
    EXPECT_EQ(s.count, std::uint64_t(kThreads * kPerThread));
    EXPECT_EQ(s.counts[1], std::uint64_t(kThreads * kPerThread));
    EXPECT_DOUBLE_EQ(s.sum, 1.5 * kThreads * kPerThread);
    return;
  }
  FAIL() << "histogram not found in snapshot";
}

TEST(Histogram, BucketBoundariesUsePrometheusLeSemantics) {
  SKIP_WITHOUT_METRICS();
  Histogram& h = reg().histogram("test_bounds_hist", {1.0, 2.0, 4.0}, "help");
  h.observe(0.5);  // <= 1    -> bucket 0
  h.observe(1.0);  // <= 1    -> bucket 0 (le is inclusive)
  h.observe(1.5);  // <= 2    -> bucket 1
  h.observe(4.0);  // <= 4    -> bucket 2
  h.observe(9.0);  // overflow-> bucket 3 (+Inf)
  const Snapshot snap = reg().snapshot();
  for (const HistogramSample& s : snap.histograms) {
    if (s.name != "test_bounds_hist") continue;
    ASSERT_EQ(s.bounds.size(), 3u);
    ASSERT_EQ(s.counts.size(), 4u);
    EXPECT_EQ(s.counts[0], 2u);
    EXPECT_EQ(s.counts[1], 1u);
    EXPECT_EQ(s.counts[2], 1u);
    EXPECT_EQ(s.counts[3], 1u);
    EXPECT_EQ(s.count, 5u);
    EXPECT_DOUBLE_EQ(s.sum, 0.5 + 1.0 + 1.5 + 4.0 + 9.0);
    return;
  }
  FAIL() << "histogram not found in snapshot";
}

TEST(Gauge, SetAndAdd) {
  SKIP_WITHOUT_METRICS();
  Gauge& g = reg().gauge("test_gauge", "help");
  g.set(10.0);
  g.add(-2.5);
  const Snapshot snap = reg().snapshot();
  for (const GaugeSample& s : snap.gauges) {
    if (s.name == "test_gauge") {
      EXPECT_DOUBLE_EQ(s.value, 7.5);
      return;
    }
  }
  FAIL() << "gauge not found in snapshot";
}

TEST(Enabled, KillSwitchSuppressesRecording) {
  SKIP_WITHOUT_METRICS();
  Counter& c = reg().counter("test_kill_switch_total", "help");
  set_enabled(false);
  c.inc();
  c.add(100);
  set_enabled(true);
  c.inc();
  const Snapshot snap = reg().snapshot();
  for (const CounterSample& s : snap.counters) {
    if (s.name == "test_kill_switch_total") {
      EXPECT_EQ(s.value, 1u);
      return;
    }
  }
  FAIL() << "counter not found in snapshot";
}

// Exporters are tested against hand-built snapshots, so the expected text
// is exact regardless of what other tests registered globally.
Snapshot golden_snapshot() {
  Snapshot snap;
  snap.counters.push_back({"app_requests_total", "Requests served", 42});
  snap.gauges.push_back({"app_queue_depth", "", 3.5});
  HistogramSample h;
  h.name = "app_latency_seconds";
  h.help = "Request latency";
  h.bounds = {0.001, 0.01};
  h.counts = {2, 1, 1};
  h.count = 4;
  h.sum = 0.5125;
  snap.histograms.push_back(h);
  return snap;
}

TEST(Export, PrometheusGolden) {
  // Kind-grouped exposition: counters, gauges, histograms; HELP only when
  // a help string was registered; cumulative le buckets ending in +Inf.
  const std::string expected =
      "# HELP app_requests_total Requests served\n"
      "# TYPE app_requests_total counter\n"
      "app_requests_total 42\n"
      "# TYPE app_queue_depth gauge\n"
      "app_queue_depth 3.5\n"
      "# HELP app_latency_seconds Request latency\n"
      "# TYPE app_latency_seconds histogram\n"
      "app_latency_seconds_bucket{le=\"0.001\"} 2\n"
      "app_latency_seconds_bucket{le=\"0.01\"} 3\n"
      "app_latency_seconds_bucket{le=\"+Inf\"} 4\n"
      "app_latency_seconds_sum 0.5125\n"
      "app_latency_seconds_count 4\n";
  EXPECT_EQ(to_prometheus(golden_snapshot()), expected);
}

TEST(Export, JsonGolden) {
  const std::string expected =
      "{\n"
      "  \"app_requests_total\": 42,\n"
      "  \"app_queue_depth\": 3.5,\n"
      "  \"app_latency_seconds\": {\"bounds\": [0.001, 0.01], "
      "\"counts\": [2, 1, 1], \"count\": 4, \"sum\": 0.5125}\n"
      "}\n";
  EXPECT_EQ(to_json(golden_snapshot()), expected);
}

TEST(Export, EmptySnapshot) {
  EXPECT_EQ(to_prometheus(Snapshot{}), "");
  EXPECT_EQ(to_json(Snapshot{}), "{}\n");
}

TEST(Trace, RingRecordsAndDumpsChromeJson) {
  SKIP_WITHOUT_METRICS();
  TraceRing& ring = TraceRing::instance();
  ring.set_capacity(4);
  {
    TraceSpan s1("span_one");
    TraceSpan s2("span_two");
  }
  std::vector<TraceEvent> events = ring.events();
  ASSERT_EQ(events.size(), 2u);
  // RAII destruction order: s2 completes (and records) before s1.
  EXPECT_STREQ(events[0].name, "span_two");
  EXPECT_STREQ(events[1].name, "span_one");
  EXPECT_GE(events[0].dur_ns, 0);

  const std::string json = ring.dump_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"span_one\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  ring.set_capacity(0);  // restore the disabled default
}

TEST(Trace, RingWrapsKeepingNewestEvents) {
  SKIP_WITHOUT_METRICS();
  TraceRing& ring = TraceRing::instance();
  ring.set_capacity(2);
  { TraceSpan a("wrap_a"); }
  { TraceSpan b("wrap_b"); }
  { TraceSpan c("wrap_c"); }
  std::vector<TraceEvent> events = ring.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "wrap_b");
  EXPECT_STREQ(events[1].name, "wrap_c");
  ring.set_capacity(0);
}

TEST(Trace, ScopedTimerFeedsHistogram) {
  SKIP_WITHOUT_METRICS();
  Histogram& h =
      reg().histogram("test_scoped_timer_seconds", latency_buckets(), "help");
  { ScopedTimer t(h); }
  const Snapshot snap = reg().snapshot();
  for (const HistogramSample& s : snap.histograms) {
    if (s.name == "test_scoped_timer_seconds") {
      EXPECT_EQ(s.count, 1u);
      return;
    }
  }
  FAIL() << "histogram not found in snapshot";
}

TEST(Buckets, GeneratorsAreAscending) {
  const std::vector<double> lat = latency_buckets();
  ASSERT_GT(lat.size(), 2u);
  for (std::size_t i = 1; i < lat.size(); ++i) EXPECT_LT(lat[i - 1], lat[i]);
  const std::vector<double> p2 = pow2_buckets(8);
  ASSERT_EQ(p2.size(), 9u);
  EXPECT_DOUBLE_EQ(p2.front(), 1.0);
  EXPECT_DOUBLE_EQ(p2.back(), 256.0);
}

TEST(MetricsRegistry, ResetZeroesValuesKeepsEntries) {
  SKIP_WITHOUT_METRICS();
  Counter& c = reg().counter("test_reset_total", "help");
  c.add(7);
  reg().reset();
  c.add(2);
  const Snapshot snap = reg().snapshot();
  for (const CounterSample& s : snap.counters) {
    if (s.name == "test_reset_total") {
      EXPECT_EQ(s.value, 2u);
      return;
    }
  }
  FAIL() << "counter not found after reset";
}

// The no-op shells must keep the full API surface: this block compiles and
// runs in BOTH builds, proving instrumented call sites never need #ifdefs.
TEST(NoMetrics, ApiSurfaceIsCallableInEitherBuild) {
  Counter& c = reg().counter("test_noop_surface_total", "help");
  c.inc();
  c.add(3);
  Gauge& g = reg().gauge("test_noop_surface_gauge", "help");
  g.set(1.0);
  g.add(-1.0);
  Histogram& h =
      reg().histogram("test_noop_surface_hist", latency_buckets(), "help");
  h.observe(0.5);
  { ScopedTimer t(h); }
  { TraceSpan span("noop_surface", &h); }
  set_enabled(true);
  (void)enabled();
  const Snapshot snap = reg().snapshot();
  const std::string prom = scrape_prometheus();
  const std::string json = scrape_json();
  if (!kMetricsCompiled) {
    EXPECT_TRUE(snap.counters.empty());
    EXPECT_EQ(json, "{}\n");
  } else {
    EXPECT_NE(prom.find("test_noop_surface_total"), std::string::npos);
  }
}

TEST(HistogramQuantile, EmptyHistogramReturnsZero) {
  HistogramSample h;
  h.bounds = {1.0, 2.0};
  h.counts = {0, 0, 0};
  EXPECT_EQ(histogram_quantile(h, 0.5), 0.0);
}

TEST(HistogramQuantile, InterpolatesInsideTheBucket) {
  // 10 observations, all in (1, 2]: the median sits linearly at 1.5.
  HistogramSample h;
  h.bounds = {1.0, 2.0, 4.0};
  h.counts = {0, 10, 0, 0};
  h.count = 10;
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.5), 1.5);
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.1), 1.1);
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 1.0), 2.0);
}

TEST(HistogramQuantile, WalksCumulativeCounts) {
  // 4 in [0,1], 4 in (1,2], 2 in (2,4]: p75 is halfway into bucket 2.
  HistogramSample h;
  h.bounds = {1.0, 2.0, 4.0};
  h.counts = {4, 4, 2, 0};
  h.count = 10;
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.4), 1.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.8), 2.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.9), 3.0);
}

TEST(HistogramQuantile, OverflowBucketReturnsLastFiniteBound) {
  // Observations beyond every bound: the +Inf bucket has no upper edge,
  // so the estimate saturates at the last finite bound (Prometheus
  // behaviour).
  HistogramSample h;
  h.bounds = {1.0, 2.0};
  h.counts = {1, 0, 9};
  h.count = 10;
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.99), 2.0);
}

TEST(HistogramQuantile, ClampsQOutsideUnitRange) {
  HistogramSample h;
  h.bounds = {1.0};
  h.counts = {10, 0};
  h.count = 10;
  EXPECT_DOUBLE_EQ(histogram_quantile(h, -0.5), histogram_quantile(h, 0.0));
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 7.0), histogram_quantile(h, 1.0));
}

TEST(HistogramQuantile, MatchesLiveHistogramObservations) {
  SKIP_WITHOUT_METRICS();
  Histogram& h = reg().histogram("test_quantile_live_seconds",
                                 {0.1, 1.0, 10.0}, "help");
  for (int i = 0; i < 8; ++i) h.observe(0.5);  // all in (0.1, 1]
  const Snapshot snap = reg().snapshot();
  for (const HistogramSample& sample : snap.histograms) {
    if (sample.name != "test_quantile_live_seconds") continue;
    const double p50 = histogram_quantile(sample, 0.5);
    EXPECT_GT(p50, 0.1);
    EXPECT_LE(p50, 1.0);
    return;
  }
  FAIL() << "histogram not found in snapshot";
}

}  // namespace
}  // namespace oar::obs
