#include "route/astar.hpp"

#include <gtest/gtest.h>

#include "gen/random_layout.hpp"

namespace oar::route {
namespace {

HananGrid unit_grid(std::int32_t h, std::int32_t v, std::int32_t m, double via = 1.0) {
  return HananGrid(h, v, m, std::vector<double>(std::size_t(h - 1), 1.0),
                   std::vector<double>(std::size_t(v - 1), 1.0), via);
}

TEST(AStar, StraightLine) {
  const HananGrid grid = unit_grid(6, 1, 1);
  AStarRouter astar(grid);
  EXPECT_DOUBLE_EQ(astar.distance(grid.index(0, 0, 0), grid.index(5, 0, 0)), 5.0);
}

TEST(AStar, SourceEqualsTarget) {
  const HananGrid grid = unit_grid(3, 3, 1);
  AStarRouter astar(grid);
  EXPECT_DOUBLE_EQ(astar.distance(4, 4), 0.0);
  EXPECT_EQ(astar.path(4, 4), std::vector<Vertex>{4});
}

TEST(AStar, UnreachableAndBlockedEndpoints) {
  HananGrid grid = unit_grid(3, 1, 1);
  grid.block_vertex(grid.index(1, 0, 0));
  AStarRouter astar(grid);
  EXPECT_EQ(astar.distance(grid.index(0, 0, 0), grid.index(2, 0, 0)), AStarRouter::kInf);
  EXPECT_TRUE(astar.path(grid.index(0, 0, 0), grid.index(2, 0, 0)).empty());
  EXPECT_EQ(astar.distance(grid.index(1, 0, 0), grid.index(0, 0, 0)), AStarRouter::kInf);
}

TEST(AStar, PathIsContinuousAndCostsMatch) {
  HananGrid grid = unit_grid(6, 6, 2, 1.5);
  grid.block_vertex(grid.index(2, 2, 0));
  grid.block_vertex(grid.index(3, 2, 0));
  AStarRouter astar(grid);
  const Vertex s = grid.index(0, 0, 0), t = grid.index(5, 5, 1);
  const double d = astar.distance(s, t);
  const auto p = astar.path(s, t);
  ASSERT_GE(p.size(), 2u);
  EXPECT_EQ(p.front(), s);
  EXPECT_EQ(p.back(), t);
  double cost = 0.0;
  for (std::size_t i = 0; i + 1 < p.size(); ++i) cost += grid.cost_between(p[i], p[i + 1]);
  EXPECT_DOUBLE_EQ(cost, d);
}

class AStarVsDijkstraTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AStarVsDijkstraTest, MatchesMazeRouterDistances) {
  util::Rng rng(GetParam());
  gen::RandomGridSpec spec;
  spec.h = 7;
  spec.v = 6;
  spec.m = 3;
  spec.min_pins = 2;
  spec.max_pins = 5;
  spec.min_obstacles = 4;
  spec.max_obstacles = 8;
  spec.min_edge_cost = 1;
  spec.max_edge_cost = 12;
  const HananGrid grid = gen::random_grid(spec, rng);

  MazeRouter maze(grid);
  AStarRouter astar(grid);
  const Vertex source = grid.pins().front();
  maze.run({source});
  for (Vertex target : grid.pins()) {
    const double md = maze.dist(target);
    const double ad = astar.distance(source, target);
    if (md == MazeRouter::kInf) {
      EXPECT_EQ(ad, AStarRouter::kInf);
    } else {
      EXPECT_NEAR(ad, md, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AStarVsDijkstraTest,
                         ::testing::Range(std::uint64_t(50), std::uint64_t(62)));

TEST(AStar, HeuristicFocusesTheSearch) {
  // Axis-aligned query on an open grid: the heuristic is exact, so only
  // vertices on/near the direct corridor have competitive f-values.  (A
  // corner-to-corner query would not discriminate — every vertex of the
  // bounding box lies on some shortest path.)
  const HananGrid grid = unit_grid(15, 15, 1);
  AStarRouter astar(grid);
  astar.distance(grid.index(2, 7, 0), grid.index(12, 7, 0));
  EXPECT_LE(astar.last_settled(), 30);  // corridor, not the whole grid

  MazeRouter maze(grid);
  maze.run({grid.index(2, 7, 0)}, {grid.index(12, 7, 0)});
  // Blind Dijkstra settles a radius-10 diamond (~half the grid) first.
  EXPECT_GT(grid.num_vertices(), 4 * astar.last_settled());
}

TEST(AStar, ReusableAcrossQueries) {
  const HananGrid grid = unit_grid(5, 5, 1);
  AStarRouter astar(grid);
  EXPECT_DOUBLE_EQ(astar.distance(grid.index(0, 0, 0), grid.index(4, 4, 0)), 8.0);
  EXPECT_DOUBLE_EQ(astar.distance(grid.index(4, 0, 0), grid.index(0, 4, 0)), 8.0);
  EXPECT_DOUBLE_EQ(astar.distance(grid.index(2, 2, 0), grid.index(2, 2, 0)), 0.0);
}

}  // namespace
}  // namespace oar::route
