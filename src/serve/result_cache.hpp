#pragma once

// Thread-safe LRU cache of routing results, keyed by the canonical layout
// bytes of serve/canonical.hpp.  Values are stored in *canonical* vertex
// space so one entry serves all 16 symmetry variants of a layout; the
// service maps edges back through the request's inverse vertex permutation
// on a hit.

#include <cstddef>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "route/route_tree.hpp"

namespace oar::serve {

using hanan::Vertex;

/// A routed tree in canonical vertex space.
struct CachedRoute {
  std::vector<route::GridEdge> edges;
  std::vector<Vertex> steiner;
  double cost = 0.0;
  bool connected = false;
};

class ResultCache {
 public:
  explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Returns the entry and marks it most-recently used.
  std::optional<CachedRoute> get(const std::string& key);

  /// Inserts or refreshes an entry, evicting the least-recently-used one
  /// when over capacity.  A capacity of 0 disables storage entirely.
  void put(const std::string& key, CachedRoute value);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  void clear();

 private:
  using Entry = std::pair<std::string, CachedRoute>;

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
};

}  // namespace oar::serve
