#pragma once

// One unit of persisted routing experience.  A record carries two payloads:
//
//  * A *serving* payload — the routed tree in canonical vertex space
//    (edges, kept Steiner points, cost, connectivity), exactly what the
//    symmetry-aware result cache held in memory.  Replay maps it back
//    through the request's inverse vertex permutation.
//
//  * An optional *warm-start* payload expressed in the layout's
//    pin-stripped ("base") canonical space: the pins of the episode, the
//    best Steiner combination the search found, and the per-vertex fsp
//    summary (CombMcts selection frequencies, eq.(3) labels).  Stripping
//    the pins before canonicalizing lets a new request with a different
//    pin set on the *same obstacle field* find near-miss experience —
//    the subset/superset matches CombMcts seeds its root from.
//
// Records are value types serialized to a flat little-endian byte string
// (serialize_record / deserialize_record); the file store frames and
// checksums those bytes but never interprets them.

#include <cstdint>
#include <string>
#include <vector>

#include "experience/canonical.hpp"
#include "experience/key.hpp"
#include "route/oarmst.hpp"

namespace oar::experience {

struct ExperienceRecord {
  // --- Serving payload, canonical (full-key) vertex space. ---
  std::vector<route::GridEdge> edges;
  std::vector<Vertex> steiner;
  double cost = 0.0;
  bool connected = false;
  /// Canonical grid dims, a replay sanity check against key collisions.
  std::int32_t h = 0, v = 0, m = 0;

  // --- Warm-start payload, base-canonical (pin-stripped) vertex space.
  // --- An empty base_key means the record carries no priors.
  std::string base_key;
  std::vector<Vertex> pins_base;    // episode pins, sorted
  std::vector<Vertex> best_base;    // best search combination (may be empty)
  std::vector<float> fsp_base;      // per-vertex fsp summary (may be empty)

  bool has_warm_start() const { return !base_key.empty(); }
};

/// Flat byte serialization of a record.
std::string serialize_record(const ExperienceRecord& rec);

/// Parses `serialize_record` output.  Returns false (and leaves `out`
/// unspecified) on any malformed input: short buffer, trailing bytes,
/// negative counts, or an absurd element count.  Never throws, never reads
/// out of bounds — this is the fail-closed boundary for mmap'd bytes whose
/// checksum already passed but whose writer may predate this reader.
bool deserialize_record(const char* data, std::size_t n, ExperienceRecord& out);

/// A record paired with the key it is stored under.
struct KeyedRecord {
  CanonicalKey key;
  ExperienceRecord record;
};

/// Builds a keyed record from a routed episode on `grid`, reusing an
/// already-computed canonical form (the serving path has one in hand).
///
/// `fsp_priority` is the per-vertex fsp summary in *request priority
/// order* (grid.priority_of), `best` the best Steiner combination in
/// request vertex ids; both may be empty.  The warm-start payload is
/// emitted only for symmetric layouts (edge-blocked / biased grids fall
/// back to identity-only keys, where pin-stripped matching is unsound
/// because the overlay bytes differ per request).
KeyedRecord build_record(const HananGrid& grid, const CanonicalForm& canon,
                         const route::OarmstResult& result,
                         const std::vector<float>& fsp_priority = {},
                         const std::vector<Vertex>& best = {});

/// Convenience overload: canonicalizes `grid` itself.
KeyedRecord build_record(const HananGrid& grid,
                         const route::OarmstResult& result,
                         const std::vector<float>& fsp_priority = {},
                         const std::vector<Vertex>& best = {});

/// Base-canonical form of `grid` with pins stripped: the near-miss lookup
/// key shared by every pin set on one obstacle field.
CanonicalForm base_canonical(const HananGrid& grid);

}  // namespace oar::experience
