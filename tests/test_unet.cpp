#include "nn/unet3d.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include <cstdio>

#include "nn/gradcheck.hpp"
#include "nn/serialize.hpp"

namespace oar::nn {
namespace {

UNet3dConfig tiny_config() {
  UNet3dConfig cfg;
  cfg.in_channels = 3;
  cfg.base_channels = 4;
  cfg.depth = 2;
  cfg.seed = 77;
  return cfg;
}

class UNetShapeTest
    : public ::testing::TestWithParam<std::tuple<std::int32_t, std::int32_t, std::int32_t>> {};

TEST_P(UNetShapeTest, ImageInImageOutForArbitrarySizes) {
  const auto [H, V, M] = GetParam();
  UNet3d net(tiny_config());
  util::Rng rng(1);
  const Tensor input = Tensor::randn({3, H, V, M}, rng);
  const Tensor out = net.forward(input);
  EXPECT_EQ(out.shape(), (std::vector<std::int32_t>{1, H, V, M}));
  for (std::int64_t i = 0; i < out.numel(); ++i) EXPECT_TRUE(std::isfinite(out[i]));
}

// The paper's headline property: any length, any width, any layer count —
// including odd sizes, degenerate single-layer and rectangular inputs.
INSTANTIATE_TEST_SUITE_P(Sizes, UNetShapeTest,
                         ::testing::Values(std::tuple{4, 4, 4}, std::tuple{7, 5, 3},
                                           std::tuple{16, 16, 4}, std::tuple{9, 17, 1},
                                           std::tuple{1, 6, 2}, std::tuple{12, 3, 10},
                                           std::tuple{5, 5, 5}, std::tuple{2, 2, 1}));

TEST(UNet, SameInputSameOutputDeterministic) {
  UNet3d net(tiny_config());
  util::Rng rng(2);
  const Tensor input = Tensor::randn({3, 5, 5, 2}, rng);
  const Tensor a = net.forward(input);
  const Tensor b = net.forward(input);
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
}

TEST(UNet, SeedControlsInitialization) {
  UNet3dConfig c1 = tiny_config(), c2 = tiny_config();
  c2.seed = 99;
  UNet3d n1(c1), n2(c1), n3(c2);
  util::Rng rng(3);
  const Tensor input = Tensor::randn({3, 4, 4, 2}, rng);
  const Tensor o1 = n1.forward(input), o2 = n2.forward(input), o3 = n3.forward(input);
  double diff12 = 0.0, diff13 = 0.0;
  for (std::int64_t i = 0; i < o1.numel(); ++i) {
    diff12 += std::abs(double(o1[i]) - o2[i]);
    diff13 += std::abs(double(o1[i]) - o3[i]);
  }
  EXPECT_DOUBLE_EQ(diff12, 0.0);
  EXPECT_GT(diff13, 1e-6);
}

TEST(UNet, GradCheckTiny) {
  UNet3dConfig cfg;
  cfg.in_channels = 2;
  cfg.base_channels = 2;
  cfg.depth = 1;
  cfg.seed = 5;
  UNet3d net(cfg);
  util::Rng rng(6);
  const Tensor input = Tensor::randn({2, 3, 3, 2}, rng);
  const Tensor out = net.forward(input);
  const Tensor weights = Tensor::randn(out.shape(), rng);
  util::Rng check_rng(7);
  const GradCheckResult r = grad_check(net, input, weights, check_rng, 1e-2, 8e-2, 12);
  EXPECT_TRUE(r.ok) << "max_rel_error=" << r.max_rel_error;
}

TEST(UNet, ParameterCountGrowsWithDepth) {
  UNet3dConfig shallow = tiny_config();
  shallow.depth = 1;
  UNet3dConfig deep = tiny_config();
  deep.depth = 3;
  UNet3d a(shallow), b(deep);
  EXPECT_GT(b.num_parameters(), a.num_parameters());
  EXPECT_GT(a.num_parameters(), 0);
}

TEST(UNet, SerializationRoundTrip) {
  const std::string path = ::testing::TempDir() + "/unet_roundtrip.bin";
  UNet3d net(tiny_config());
  ASSERT_TRUE(save_parameters(net, path));

  UNet3d restored(UNet3dConfig{3, 4, 2, 123456});  // different init seed
  ASSERT_TRUE(load_parameters(restored, path));

  util::Rng rng(8);
  const Tensor input = Tensor::randn({3, 6, 5, 3}, rng);
  const Tensor a = net.forward(input);
  const Tensor b = restored.forward(input);
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
  std::remove(path.c_str());
}

TEST(UNet, LoadRejectsMismatchedArchitecture) {
  const std::string path = ::testing::TempDir() + "/unet_mismatch.bin";
  UNet3d net(tiny_config());
  ASSERT_TRUE(save_parameters(net, path));
  UNet3dConfig other = tiny_config();
  other.base_channels = 8;
  UNet3d wrong(other);
  EXPECT_FALSE(load_parameters(wrong, path));
  std::remove(path.c_str());
}

TEST(UNet, LoadRejectsMissingFile) {
  UNet3d net(tiny_config());
  EXPECT_FALSE(load_parameters(net, "/nonexistent/path/model.bin"));
}

TEST(UNet, CopyParametersMakesNetsIdentical) {
  UNet3dConfig cfg = tiny_config();
  UNet3d a(cfg);
  cfg.seed = 999;
  UNet3d b(cfg);
  copy_parameters(b, a);
  util::Rng rng(9);
  const Tensor input = Tensor::randn({3, 4, 7, 2}, rng);
  const Tensor oa = a.forward(input);
  const Tensor ob = b.forward(input);
  for (std::int64_t i = 0; i < oa.numel(); ++i) EXPECT_FLOAT_EQ(oa[i], ob[i]);
}

TEST(UNet, ForwardBatchMatchesPerSampleForward) {
  UNet3d net(tiny_config());
  util::Rng rng(12);
  const std::int32_t n = 4;
  const Tensor batch = Tensor::randn({n, 3, 8, 8, 2}, rng);
  const Tensor batched = net.forward_batch(batch);

  const std::int64_t in_stride = batch.numel() / n;
  const std::int64_t out_stride = batched.numel() / n;
  Tensor sample({3, 8, 8, 2});
  for (std::int32_t i = 0; i < n; ++i) {
    std::copy(batch.data() + i * in_stride, batch.data() + (i + 1) * in_stride,
              sample.data());
    const Tensor single = net.forward(sample);
    ASSERT_EQ(single.numel(), out_stride);
    for (std::int64_t j = 0; j < out_stride; ++j) {
      // Batched conv kernels reorder FMA contractions; tolerance, not bits.
      ASSERT_NEAR(batched[i * out_stride + j], single[j], 1e-4) << i << "," << j;
    }
  }
}

TEST(UNet, ZeroGradClearsGradients) {
  UNet3d net(tiny_config());
  util::Rng rng(10);
  const Tensor input = Tensor::randn({3, 4, 4, 2}, rng);
  const Tensor out = net.forward(input);
  net.backward(Tensor::full(out.shape(), 1.0f));
  double norm_before = 0.0;
  for (Parameter* p : net.parameters()) norm_before += p->grad.norm();
  EXPECT_GT(norm_before, 0.0);
  net.zero_grad();
  for (Parameter* p : net.parameters()) EXPECT_DOUBLE_EQ(p->grad.norm(), 0.0);
}

}  // namespace
}  // namespace oar::nn
