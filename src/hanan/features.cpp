#include "hanan/features.hpp"

#include <algorithm>
#include <cassert>

namespace oar::hanan {

FeatureVolume encode_features(const HananGrid& grid,
                              const std::vector<Vertex>& extra_pins) {
  FeatureVolume vol;
  vol.c = kNumFeatureChannels;
  vol.h = grid.h_dim();
  vol.v = grid.v_dim();
  vol.m = grid.m_dim();
  vol.data.assign(std::size_t(vol.c) * vol.h * vol.v * vol.m, 0.0f);

  // Normalizer: the maximum of all cost-related values in the layout.
  double max_cost = grid.via_cost();
  for (std::int32_t h = 0; h + 1 < vol.h; ++h) max_cost = std::max(max_cost, grid.x_step(h));
  for (std::int32_t v = 0; v + 1 < vol.v; ++v) max_cost = std::max(max_cost, grid.y_step(v));
  if (max_cost <= 0.0) max_cost = 1.0;
  const float inv = float(1.0 / max_cost);

  const float via_feature = float(grid.via_cost()) * inv;
  for (std::int32_t m = 0; m < vol.m; ++m) {
    for (std::int32_t v = 0; v < vol.v; ++v) {
      for (std::int32_t h = 0; h < vol.h; ++h) {
        const Vertex idx = grid.index(h, v, m);
        if (grid.is_pin(idx)) vol.at(0, h, v, m) = 1.0f;
        if (grid.is_blocked(idx)) vol.at(1, h, v, m) = 1.0f;
        if (h + 1 < vol.h && grid.edge_usable(idx, Dir::kPosX)) {
          vol.at(2, h, v, m) = float(grid.x_step(h)) * inv;
        }
        if (h > 0 && grid.edge_usable(grid.index(h - 1, v, m), Dir::kPosX)) {
          vol.at(3, h, v, m) = float(grid.x_step(h - 1)) * inv;
        }
        if (v + 1 < vol.v && grid.edge_usable(idx, Dir::kPosY)) {
          vol.at(4, h, v, m) = float(grid.y_step(v)) * inv;
        }
        if (v > 0 && grid.edge_usable(grid.index(h, v - 1, m), Dir::kPosY)) {
          vol.at(5, h, v, m) = float(grid.y_step(v - 1)) * inv;
        }
        vol.at(6, h, v, m) = via_feature;
      }
    }
  }
  for (Vertex p : extra_pins) {
    assert(p >= 0 && p < grid.num_vertices());
    const Cell c = grid.cell(p);
    vol.at(0, c.h, c.v, c.m) = 1.0f;
  }
  return vol;
}

}  // namespace oar::hanan
