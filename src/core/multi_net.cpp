#include "core/multi_net.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_set>

namespace oar::core {

namespace {

/// Order heuristic: pin count first, then bounding-volume extent.
std::int64_t net_size_key(const hanan::HananGrid& grid, const Net& net) {
  std::int32_t min_h = 1 << 30, max_h = -1, min_v = 1 << 30, max_v = -1;
  for (hanan::Vertex p : net.pins) {
    const auto c = grid.cell(p);
    min_h = std::min(min_h, c.h);
    max_h = std::max(max_h, c.h);
    min_v = std::min(min_v, c.v);
    max_v = std::max(max_v, c.v);
  }
  const std::int64_t extent =
      net.pins.empty() ? 0 : std::int64_t(max_h - min_h) + (max_v - min_v);
  return std::int64_t(net.pins.size()) * 100000 + extent;
}

}  // namespace

MultiNetSummary route_nets(const hanan::HananGrid& grid,
                           const std::vector<Net>& nets, steiner::Router& router,
                           NetOrder order) {
  MultiNetSummary summary;

  std::vector<std::size_t> sequence(nets.size());
  std::iota(sequence.begin(), sequence.end(), 0u);
  if (order == NetOrder::kSmallestFirst) {
    std::stable_sort(sequence.begin(), sequence.end(),
                     [&](std::size_t a, std::size_t b) {
                       return net_size_key(grid, nets[a]) < net_size_key(grid, nets[b]);
                     });
  }

  // Wires routed so far, blocked for subsequent nets.
  std::unordered_set<hanan::Vertex> used;

  for (const std::size_t idx : sequence) {
    const Net& net = nets[idx];
    NetResult net_result;
    net_result.name = net.name;

    // Fresh per-net grid: original blockages + previously routed wires.
    // Contract: the template grid carries no pins of its own (each net
    // brings its pins).  The grid is kept alive in the result so the
    // returned tree stays valid.
    auto net_grid = std::make_shared<hanan::HananGrid>(grid);
    bool pins_ok = !net.pins.empty();
    for (hanan::Vertex p : net.pins) {
      if (p < 0 || p >= net_grid->num_vertices() || net_grid->is_blocked(p) ||
          used.count(p)) {
        pins_ok = false;
        break;
      }
    }
    if (pins_ok) {
      for (hanan::Vertex v : used) {
        if (!net_grid->is_pin(v) && !net_grid->is_blocked(v)) {
          net_grid->block_vertex(v);
        }
      }
      for (hanan::Vertex p : net.pins) net_grid->add_pin(p);
      route::OarmstResult routed = router.route(*net_grid);
      if (routed.connected) {
        for (hanan::Vertex v : routed.tree.vertices()) used.insert(v);
        summary.total_cost += routed.cost;
        routed.tree.rebind_grid(net_grid.get());
        net_result.result = std::move(routed);
        net_result.grid = std::move(net_grid);
        net_result.routed = true;
      }
    }
    if (net_result.routed) {
      ++summary.routed;
    } else {
      ++summary.failed;
    }
    summary.nets.push_back(std::move(net_result));
  }
  return summary;
}

}  // namespace oar::core
