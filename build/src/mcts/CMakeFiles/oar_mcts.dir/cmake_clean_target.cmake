file(REMOVE_RECURSE
  "liboar_mcts.a"
)
