# Empty dependencies file for oar_nn.
# This may be replaced when dependencies are built.
