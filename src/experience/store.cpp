#include "experience/store.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "util/validate.hpp"

namespace oar::experience {

namespace {

// oar_exp_* family (DESIGN.md §18).  Gauges are refreshed at every
// mutation point — put/flush/compact/clear and disk-tier open — never only
// at scrape time, so they can't go stale the way the pre-PR-10 serve cache
// gauge did.
struct ExpObs {
  obs::Counter& gets;
  obs::Counter& hits_memory;
  obs::Counter& hits_disk;
  obs::Counter& misses;
  obs::Counter& puts;
  obs::Counter& appends;
  obs::Counter& flushes;
  obs::Counter& compactions;
  obs::Counter& warm_lookups;
  obs::Counter& warm_matches;
  obs::Gauge& mem_entries;
  obs::Gauge& disk_records;
  obs::Gauge& file_bytes;
  obs::Gauge& pending_bytes;
  obs::Histogram& record_bytes;
};

ExpObs& exp_obs() {
  auto& reg = obs::MetricsRegistry::instance();
  static ExpObs o{
      reg.counter("oar_exp_gets_total", "Experience store lookups"),
      reg.counter("oar_exp_hits_memory_total",
                  "Lookups answered by the memory LRU tier"),
      reg.counter("oar_exp_hits_disk_total",
                  "Lookups answered by the disk tier (promoted to memory)"),
      reg.counter("oar_exp_misses_total", "Lookups that missed every tier"),
      reg.counter("oar_exp_puts_total", "Records stored (any tier)"),
      reg.counter("oar_exp_appends_total",
                  "Records appended to the disk tier"),
      reg.counter("oar_exp_flushes_total", "Disk-tier flushes"),
      reg.counter("oar_exp_compactions_total", "Disk-tier compactions"),
      reg.counter("oar_exp_warm_lookups_total",
                  "Warm-start base-key lookups"),
      reg.counter("oar_exp_warm_matches_total",
                  "Warm-start candidates returned across all lookups"),
      reg.gauge("oar_exp_mem_entries",
                "Entries resident in the memory LRU tier"),
      reg.gauge("oar_exp_disk_records",
                "Live records indexed in the disk tier"),
      reg.gauge("oar_exp_file_bytes", "Experience file size on disk"),
      reg.gauge("oar_exp_pending_bytes",
                "Appended bytes buffered but not yet flushed"),
      reg.histogram("oar_exp_record_bytes", obs::pow2_buckets(24),
                    "Serialized record payload size"),
  };
  return o;
}

}  // namespace

const char* hit_tier_name(HitTier tier) {
  switch (tier) {
    case HitTier::kMiss:
      return "miss";
    case HitTier::kMemory:
      return "memory";
    case HitTier::kDisk:
      return "disk";
  }
  return "unknown";
}

void StoreConfig::validate() const {
  util::check_field(!read_only || !path.empty(), "StoreConfig", "read_only",
                    "be false when no disk path is configured",
                    int(read_only));
}

Store::Store(StoreConfig config) : config_(std::move(config)) {
  config_.validate();
  if (!config_.path.empty()) {
    disk_ = std::make_unique<FileStore>(config_.path, config_.read_only);
  }
  refresh_gauges();
}

Store::~Store() {
  try {
    flush();
  } catch (...) {
    // Best effort; FileStore's destructor retries.
  }
}

std::optional<ExperienceRecord> Store::get(const CanonicalKey& key,
                                           HitTier* tier) {
  if (tier != nullptr) *tier = HitTier::kMiss;
  exp_obs().gets.inc();
  {
    std::scoped_lock lock(stats_mu_);
    ++stats_.gets;
  }
  if (key.empty()) {
    exp_obs().misses.inc();
    std::scoped_lock lock(stats_mu_);
    ++stats_.misses;
    return std::nullopt;
  }

  // Memory tier.
  {
    std::scoped_lock lock(mem_mu_);
    const auto it = mem_index_.find(key);
    if (it != mem_index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      if (tier != nullptr) *tier = HitTier::kMemory;
      exp_obs().hits_memory.inc();
      std::scoped_lock slock(stats_mu_);
      ++stats_.memory_hits;
      return it->second->second;
    }
  }

  // Disk tier, promoting hits into memory.
  if (disk_ != nullptr) {
    ExperienceRecord rec;
    if (disk_->get(key, rec)) {
      if (config_.memory_capacity > 0) {
        std::scoped_lock lock(mem_mu_);
        const auto it = mem_index_.find(key);
        if (it == mem_index_.end()) {
          lru_.emplace_front(key, rec);
          mem_index_.emplace(key, lru_.begin());
          while (lru_.size() > config_.memory_capacity) {
            mem_index_.erase(lru_.back().first);
            lru_.pop_back();
          }
        }
      }
      if (tier != nullptr) *tier = HitTier::kDisk;
      exp_obs().hits_disk.inc();
      {
        std::scoped_lock slock(stats_mu_);
        ++stats_.disk_hits;
      }
      refresh_gauges();
      return rec;
    }
  }

  exp_obs().misses.inc();
  std::scoped_lock lock(stats_mu_);
  ++stats_.misses;
  return std::nullopt;
}

void Store::put(const CanonicalKey& key, ExperienceRecord record) {
  if (key.empty()) return;
  exp_obs().puts.inc();
  bool want_flush = false;
  if (disk_ != nullptr && !config_.read_only) {
    disk_->put(key, record);
    exp_obs().appends.inc();
    exp_obs().record_bytes.observe(double(serialize_record(record).size()));
    std::scoped_lock lock(stats_mu_);
    ++puts_since_flush_;
    if (config_.flush_batch > 0 && puts_since_flush_ >= config_.flush_batch) {
      puts_since_flush_ = 0;
      want_flush = true;
    }
  }
  if (config_.memory_capacity > 0) {
    std::scoped_lock lock(mem_mu_);
    const auto it = mem_index_.find(key);
    if (it != mem_index_.end()) {
      it->second->second = std::move(record);
      lru_.splice(lru_.begin(), lru_, it->second);
    } else {
      lru_.emplace_front(key, std::move(record));
      mem_index_.emplace(key, lru_.begin());
      while (lru_.size() > config_.memory_capacity) {
        mem_index_.erase(lru_.back().first);
        lru_.pop_back();
      }
    }
  }
  {
    std::scoped_lock lock(stats_mu_);
    ++stats_.puts;
  }
  if (want_flush) {
    flush();
  } else {
    refresh_gauges();
  }
}

void Store::put(KeyedRecord keyed) {
  put(keyed.key, std::move(keyed.record));
}

std::vector<ExperienceRecord> Store::match_base(
    std::string_view base_key) const {
  exp_obs().warm_lookups.inc();
  if (disk_ == nullptr || base_key.empty()) return {};
  std::vector<ExperienceRecord> out =
      disk_->match_base(base_key, config_.max_base_matches);
  exp_obs().warm_matches.add(double(out.size()));
  return out;
}

void Store::flush() {
  if (disk_ != nullptr && !config_.read_only) {
    disk_->flush();
    exp_obs().flushes.inc();
  }
  refresh_gauges();
}

void Store::compact() {
  if (disk_ != nullptr && !config_.read_only) {
    disk_->compact();
    exp_obs().compactions.inc();
  }
  refresh_gauges();
}

void Store::clear_memory() {
  {
    std::scoped_lock lock(mem_mu_);
    lru_.clear();
    mem_index_.clear();
  }
  refresh_gauges();
}

std::size_t Store::memory_entries() const {
  std::scoped_lock lock(mem_mu_);
  return lru_.size();
}

std::size_t Store::disk_records() const {
  return disk_ != nullptr ? disk_->size() : 0;
}

StoreStats Store::stats() const {
  StoreStats out;
  {
    std::scoped_lock lock(stats_mu_);
    out = stats_;
  }
  out.memory_entries = memory_entries();
  if (disk_ != nullptr) out.disk = disk_->stats();
  return out;
}

void Store::refresh_gauges() const {
  ExpObs& o = exp_obs();
  o.mem_entries.set(double(memory_entries()));
  if (disk_ != nullptr) {
    const FileStoreStats ds = disk_->stats();
    o.disk_records.set(double(ds.records));
    o.file_bytes.set(double(ds.file_bytes));
    o.pending_bytes.set(double(ds.pending_bytes));
  }
}

}  // namespace oar::experience
