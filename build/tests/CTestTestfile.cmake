# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_geom_hanan[1]_include.cmake")
include("/root/repo/build/tests/test_route[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_mcts_rl[1]_include.cmake")
include("/root/repo/build/tests/test_gen_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_training[1]_include.cmake")
