#include <gtest/gtest.h>

#include "gen/random_layout.hpp"
#include "steiner/candidates.hpp"
#include "steiner/lin08.hpp"
#include "steiner/lin18.hpp"
#include "steiner/liu14.hpp"

namespace oar::steiner {
namespace {

HananGrid test_grid(std::uint64_t seed, std::int32_t dim = 10, std::int32_t pins = 6) {
  util::Rng rng(seed);
  gen::RandomGridSpec spec;
  spec.h = dim;
  spec.v = dim;
  spec.m = 2;
  spec.min_pins = pins;
  spec.max_pins = pins;
  spec.min_obstacles = 6;
  spec.max_obstacles = 12;
  spec.min_edge_cost = 1;
  spec.max_edge_cost = 10;
  return gen::random_grid(spec, rng);
}

TEST(DistanceOracleTest, SeparableDistances) {
  HananGrid grid(4, 3, 2, {2.0, 3.0, 4.0}, {5.0, 6.0}, 7.0);
  const DistanceOracle dist(grid);
  EXPECT_DOUBLE_EQ(dist(grid.index(0, 0, 0), grid.index(3, 0, 0)), 9.0);
  EXPECT_DOUBLE_EQ(dist(grid.index(0, 0, 0), grid.index(0, 2, 0)), 11.0);
  EXPECT_DOUBLE_EQ(dist(grid.index(0, 0, 0), grid.index(0, 0, 1)), 7.0);
  EXPECT_DOUBLE_EQ(dist(grid.index(1, 1, 0), grid.index(2, 2, 1)), 3.0 + 6.0 + 7.0);
  // Symmetry.
  EXPECT_DOUBLE_EQ(dist(grid.index(3, 2, 1), grid.index(0, 0, 0)),
                   dist(grid.index(0, 0, 0), grid.index(3, 2, 1)));
}

TEST(Candidates, ExcludesTerminalsObstaclesAndExclusions) {
  const HananGrid grid = test_grid(1);
  const auto cands = corner_candidates(grid, grid.pins(), 3, 32);
  for (hanan::Vertex c : cands) {
    EXPECT_FALSE(grid.is_blocked(c));
    EXPECT_FALSE(grid.is_pin(c));
  }
  if (!cands.empty()) {
    const auto without_first =
        corner_candidates(grid, grid.pins(), 3, 32, {cands.front()});
    for (hanan::Vertex c : without_first) EXPECT_NE(c, cands.front());
  }
}

TEST(Candidates, RespectsBudget) {
  const HananGrid grid = test_grid(2);
  EXPECT_LE(corner_candidates(grid, grid.pins(), 4, 5).size(), 5u);
  EXPECT_TRUE(corner_candidates(grid, grid.pins(), 4, 0).empty());
}

TEST(MstCost, TwoPinsEqualsShortestPath) {
  HananGrid grid(5, 1, 1, std::vector<double>(4, 2.0), {}, 1.0);
  grid.add_pin(grid.index(0, 0, 0));
  grid.add_pin(grid.index(4, 0, 0));
  EXPECT_DOUBLE_EQ(mst_cost(grid), 8.0);
}

TEST(Lin08, ProducesValidTree) {
  const HananGrid grid = test_grid(3);
  Lin08Router router;
  const auto result = router.route(grid);
  ASSERT_TRUE(result.connected);
  EXPECT_EQ(result.tree.validate(grid.pins()), "");
  EXPECT_EQ(router.name(), "lin08");
}

class BaselineOrderingTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BaselineOrderingTest, StrongerBaselinesNeverLoseToLin08) {
  const HananGrid grid = test_grid(GetParam());
  Lin08Router lin08;
  Liu14Router liu14;
  Lin18Router lin18;
  const double c08 = lin08.route(grid).cost;
  const double c14 = liu14.route(grid).cost;
  const double c18 = lin18.route(grid).cost;
  // Both Steiner-point searchers start from the Lin08 construction and only
  // accept strict improvements.
  EXPECT_LE(c14, c08 + 1e-9);
  EXPECT_LE(c18, c08 + 1e-9);
  // Everything beats or ties the no-Steiner MST.
  const double mst = mst_cost(grid);
  EXPECT_LE(c08, mst + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselineOrderingTest,
                         ::testing::Range(std::uint64_t(10), std::uint64_t(22)));

TEST(Lin18, FindsTheClassicSteinerSaving) {
  // Four pins on a cross: explicit Steiner point(s) save length vs MST.
  HananGrid grid(5, 5, 1, std::vector<double>(4, 1.0), std::vector<double>(4, 1.0),
                 1.0);
  grid.add_pin(grid.index(0, 2, 0));
  grid.add_pin(grid.index(4, 2, 0));
  grid.add_pin(grid.index(2, 0, 0));
  grid.add_pin(grid.index(2, 4, 0));
  Lin18Router lin18;
  const auto result = lin18.route(grid);
  EXPECT_TRUE(result.connected);
  EXPECT_DOUBLE_EQ(result.cost, 8.0);  // the optimal cross tree
}

TEST(Lin18, StopsAtSteinerBudget) {
  const HananGrid grid = test_grid(30, 10, 4);
  Lin18Router lin18;
  const auto result = lin18.route(grid);
  EXPECT_LE(result.kept_steiner.size(), grid.pins().size() - 2);
}

TEST(Baselines, AverageOrderingAcrossSeeds) {
  // Aggregate ordering (the Table 4 structure): lin18 <= liu14 <= lin08 on
  // average over a batch of layouts.
  double c08 = 0.0, c14 = 0.0, c18 = 0.0;
  for (std::uint64_t seed = 40; seed < 52; ++seed) {
    const HananGrid grid = test_grid(seed, 12, 7);
    c08 += Lin08Router().route(grid).cost;
    c14 += Liu14Router().route(grid).cost;
    c18 += Lin18Router().route(grid).cost;
  }
  EXPECT_LE(c14, c08 + 1e-9);
  EXPECT_LE(c18, c14 + 1e-6);
}

}  // namespace
}  // namespace oar::steiner
