#include "experience/warm_start.hpp"

#include <algorithm>

namespace oar::experience {

namespace {

/// |a ∩ b| for two sorted vertex sets.
std::size_t intersection_size(const std::vector<Vertex>& a,
                              const std::vector<Vertex>& b) {
  std::size_t n = 0, i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++n;
      ++i;
      ++j;
    }
  }
  return n;
}

}  // namespace

WarmStart lookup_warm_start(const Store& store, const HananGrid& grid) {
  WarmStart out;
  if (!store.has_disk_tier() || grid.pins().empty()) return out;

  HananGrid base = grid;
  base.clear_pins();
  const CanonicalForm bf = canonicalize(base);
  if (!bf.symmetric) return out;  // records never carry warm payloads here

  const auto n = std::size_t(grid.num_vertices());
  std::vector<Vertex> pins_req;
  pins_req.reserve(grid.pins().size());
  for (const Vertex p : grid.pins()) {
    pins_req.push_back(rl::transform_vertex(base, p, bf.spec));
  }
  std::sort(pins_req.begin(), pins_req.end());

  const std::vector<ExperienceRecord> candidates = store.match_base(bf.key);
  if (candidates.empty()) return out;

  // Blend fsp summaries in base-vertex space, Jaccard-weighted; keep the
  // newest exact pin match's best combination (candidates arrive newest
  // first).
  std::vector<double> acc(n, 0.0);
  double weight_sum = 0.0;
  const ExperienceRecord* exact_rec = nullptr;

  for (const ExperienceRecord& rec : candidates) {
    if (rec.pins_base.empty()) continue;
    const std::size_t inter = intersection_size(rec.pins_base, pins_req);
    // Applicable experience = same field with a pin subset or superset;
    // partially-overlapping pin sets route fundamentally different nets.
    if (inter != rec.pins_base.size() && inter != pins_req.size()) continue;
    const std::size_t uni = rec.pins_base.size() + pins_req.size() - inter;
    const double w = uni == 0 ? 0.0 : double(inter) / double(uni);
    if (w <= 0.0) continue;

    bool contributed = false;
    if (rec.fsp_base.size() == n) {
      for (std::size_t v = 0; v < n; ++v) {
        acc[v] += w * double(rec.fsp_base[v]);
      }
      weight_sum += w;
      contributed = true;
    }
    if (exact_rec == nullptr && inter == rec.pins_base.size() &&
        inter == pins_req.size() && !rec.best_base.empty()) {
      exact_rec = &rec;
      contributed = true;
    }
    if (contributed) ++out.matches;
  }

  if (out.matches == 0) return out;

  const std::vector<Vertex> inv = inverse_vertex_map(base, bf.spec);
  if (weight_sum > 0.0) {
    out.prior.assign(n, 0.0f);
    for (std::size_t vb = 0; vb < n; ++vb) {
      out.prior[std::size_t(grid.priority_of(inv[vb]))] =
          float(acc[vb] / weight_sum);
    }
  }
  if (exact_rec != nullptr) {
    out.exact = true;
    out.best_cost = exact_rec->cost;
    out.best.reserve(exact_rec->best_base.size());
    bool valid = true;
    for (const Vertex vb : exact_rec->best_base) {
      if (vb < 0 || std::size_t(vb) >= n) {
        valid = false;
        break;
      }
      const Vertex v = inv[std::size_t(vb)];
      if (grid.is_blocked(v) || grid.is_pin(v)) {
        valid = false;  // key collision or stale record: fail closed
        break;
      }
      out.best.push_back(v);
    }
    if (!valid) {
      out.best.clear();
      out.exact = false;
      out.best_cost = 0.0;
    } else {
      std::sort(out.best.begin(), out.best.end(),
                [&](Vertex a, Vertex b) {
                  return grid.priority_of(a) < grid.priority_of(b);
                });
    }
  }
  return out;
}

}  // namespace oar::experience
