#include "route/oarmst.hpp"

#include <algorithm>
#include <cassert>

#include "obs/metrics.hpp"
#include "util/validate.hpp"

namespace oar::route {

namespace {

struct OarmstObs {
  obs::Counter& builds;
  obs::Counter& rebuild_passes;
  obs::Counter& bare_cache_hits;
  obs::Counter& bare_cache_misses;
};

OarmstObs& oarmst_obs() {
  auto& reg = obs::MetricsRegistry::instance();
  static OarmstObs o{
      reg.counter("oar_route_oarmst_builds_total",
                  "OARMST constructions (OarmstRouter::build)"),
      reg.counter("oar_route_oarmst_rebuild_passes_total",
                  "Redundant-Steiner removal rebuild passes"),
      reg.counter("oar_route_bare_cache_hits_total",
                  "RouterScratch bare pins-only tree cache hits"),
      reg.counter("oar_route_bare_cache_misses_total",
                  "RouterScratch bare pins-only tree cache misses"),
  };
  return o;
}

}  // namespace

void OarmstConfig::validate() const {
  util::check_field(max_rebuild_passes >= 1, "OarmstConfig",
                    "max_rebuild_passes", "be >= 1", max_rebuild_passes);
}

OarmstRouter::OarmstRouter(const HananGrid& grid, OarmstConfig config)
    : grid_(grid), config_(config) {
  config_.validate();
}

OarmstResult OarmstRouter::build_once(const std::vector<Vertex>& terminals,
                                      RouterScratch& scratch) const {
  OarmstResult result;
  result.tree = RouteTree(&grid_);
  result.connected = true;
  if (terminals.empty()) return result;

  MazeRouter& maze = scratch.maze(grid_);
  const bool tree_attach = config_.attach == AttachMode::kTreeVertices;
  const bool incremental = config_.incremental;

  auto& tree_vertices = scratch.tree_vertices_;    // maze sources, kTreeVertices
  auto& connected_terms = scratch.connected_terms_;  // maze sources, kTerminalsOnly
  auto& remaining = scratch.remaining_;
  auto& path = scratch.path_;
  auto& new_sources = scratch.new_sources_;
  tree_vertices.clear();
  connected_terms.clear();

  const std::uint32_t in_tree = scratch.next_mark(std::size_t(grid_.num_vertices()));
  auto& mark = scratch.mark_;

  connected_terms.push_back(terminals.front());
  tree_vertices.push_back(terminals.front());
  mark[std::size_t(terminals.front())] = in_tree;

  remaining.assign(terminals.begin() + 1, terminals.end());
  // Deduplicate targets that equal the start terminal.
  remaining.erase(std::remove(remaining.begin(), remaining.end(), terminals.front()),
                  remaining.end());

  if (incremental) maze.begin(tree_vertices);  // seed = {first terminal}

  double sum_of_paths = 0.0;
  while (!remaining.empty()) {
    if (!incremental) {
      maze.begin(tree_attach ? tree_vertices : connected_terms);
    }
    const Vertex reached = maze.continue_run(remaining);
    if (reached == hanan::kInvalidVertex) {
      result.connected = false;  // some terminal is walled off
      break;
    }
    // Read the path and distance before new sources mutate the frontier.
    maze.path_to(reached, path);
    sum_of_paths += maze.dist(reached);
    result.tree.add_path(path);
    new_sources.clear();
    for (Vertex v : path) {
      if (mark[std::size_t(v)] != in_tree) {
        mark[std::size_t(v)] = in_tree;
        tree_vertices.push_back(v);
        new_sources.push_back(v);
      }
    }
    connected_terms.push_back(reached);
    remaining.erase(std::remove(remaining.begin(), remaining.end(), reached),
                    remaining.end());
    if (incremental) {
      // Continue the live frontier: only the newly attached vertices enter
      // as zero-distance sources; everything already relaxed stays valid.
      if (tree_attach) {
        maze.add_sources(new_sources);
      } else {
        maze.add_source(reached);
      }
    }
  }

  if (!result.connected) {
    result.cost = MazeRouter::kInf;  // see OarmstResult::cost contract
  } else {
    result.cost = config_.cost_model == CostModel::kUnionLength
                      ? result.tree.cost()
                      : sum_of_paths;
  }
  return result;
}

OarmstResult OarmstRouter::build(const std::vector<Vertex>& pins,
                                 const std::vector<Vertex>& steiner_points,
                                 RouterScratch* scratch_in) const {
  RouterScratch& scratch = scratch_in != nullptr ? *scratch_in : local_router_scratch();
  oarmst_obs().builds.inc();

  // Filter Steiner points: drop blocked vertices and duplicates of pins.
  const auto n = std::size_t(grid_.num_vertices());
  auto& mark = scratch.mark_;
  const std::uint32_t is_pin = scratch.next_mark(n);
  for (Vertex p : pins) mark[std::size_t(p)] = is_pin;
  const std::uint32_t seen = scratch.next_mark(n);

  auto& steiner = scratch.steiner_;
  steiner.clear();
  for (Vertex s : steiner_points) {
    if (s < 0 || s >= grid_.num_vertices()) continue;
    if (grid_.is_blocked(s) || mark[std::size_t(s)] == is_pin) continue;
    if (mark[std::size_t(s)] == seen) continue;
    mark[std::size_t(s)] = seen;
    steiner.push_back(s);
  }

  if (steiner.empty()) return bare_result(pins, scratch);

  auto& terminals = scratch.terminals_;
  terminals.assign(pins.begin(), pins.end());
  terminals.insert(terminals.end(), steiner.begin(), steiner.end());

  OarmstResult result = build_once(terminals, scratch);
  result.kept_steiner = steiner;

  if (!config_.remove_redundant_steiner) return result;

  // Iteratively drop redundant Steiner terminals (degree < 3) and rebuild.
  for (int pass = 0; pass < config_.max_rebuild_passes; ++pass) {
    auto& kept = scratch.kept_;
    kept.clear();
    for (Vertex s : result.kept_steiner) {
      if (result.tree.degree(s) >= 3) kept.push_back(s);
    }
    if (kept.size() == result.kept_steiner.size()) break;  // all irredundant

    if (kept.empty()) {
      // Every candidate dropped: the fixed point is the bare pins-only
      // tree, which is identical for every selection on this grid — serve
      // it from the scratch's cache instead of rebuilding it per call.
      OarmstResult bare = bare_result(pins, scratch);
      bare.rebuild_passes = result.rebuild_passes + 1;
      return bare;
    }

    oarmst_obs().rebuild_passes.inc();
    auto& new_terminals = scratch.rebuild_terminals_;
    new_terminals.assign(pins.begin(), pins.end());
    new_terminals.insert(new_terminals.end(), kept.begin(), kept.end());
    OarmstResult rebuilt = build_once(new_terminals, scratch);
    rebuilt.kept_steiner.assign(kept.begin(), kept.end());
    rebuilt.rebuild_passes = result.rebuild_passes + 1;
    result = std::move(rebuilt);
  }
  return result;
}

OarmstResult OarmstRouter::bare_result(const std::vector<Vertex>& pins,
                                       RouterScratch& scratch) const {
  const auto attach = std::uint8_t(config_.attach);
  const auto model = std::uint8_t(config_.cost_model);
  if (scratch.bare_valid_ && scratch.bare_grid_ == &grid_ &&
      scratch.bare_revision_ == grid_.revision() &&
      scratch.bare_attach_ == attach && scratch.bare_cost_model_ == model &&
      scratch.bare_pins_ == pins) {
    oarmst_obs().bare_cache_hits.inc();
    OarmstResult result;
    result.tree = scratch.bare_tree_;
    result.cost = scratch.bare_cost_;
    result.connected = scratch.bare_connected_;
    return result;
  }
  oarmst_obs().bare_cache_misses.inc();
  OarmstResult result = build_once(pins, scratch);
  scratch.bare_valid_ = true;
  scratch.bare_grid_ = &grid_;
  scratch.bare_revision_ = grid_.revision();
  scratch.bare_attach_ = attach;
  scratch.bare_cost_model_ = model;
  scratch.bare_pins_ = pins;
  scratch.bare_tree_ = result.tree;
  scratch.bare_cost_ = result.cost;
  scratch.bare_connected_ = result.connected;
  return result;
}

double OarmstRouter::cost(const std::vector<Vertex>& pins,
                          const std::vector<Vertex>& steiner_points,
                          RouterScratch* scratch) const {
  return build(pins, steiner_points, scratch).cost;
}

}  // namespace oar::route
