#pragma once

// Netlist model for full-chip multi-net routing (DESIGN.md §14).
//
// A Netlist is a list of named nets whose pins are vertex indices on one
// shared HananGrid.  Unlike the single-net entry points, pins live in the
// netlist rather than on the grid: the ChipRouter presents each net's pins
// to the underlying single-net engine in turn while all nets share the
// grid's obstacles and congestion state.
//
// Plain-text file format (line oriented, '#' starts a comment):
//
//   oarnetlist 1
//   name <identifier>                  # optional netlist name
//   net <name> h v m  h v m ...        # one line per net, >= 2 pin triples
//   end
//
// Pins are written as h v m cell coordinates so files stay meaningful
// across serialization of the grid itself (gen/grid_io.hpp uses the same
// convention).  The parser validates strictly — malformed lines, unknown
// directives, duplicate net names, out-of-range coordinates and nets with
// fewer than two pins are all errors that name the offending line.

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "hanan/hanan_grid.hpp"

namespace oar::chip {

using hanan::HananGrid;
using hanan::Vertex;

struct Net {
  std::string name;
  std::vector<Vertex> pins;
};

struct Netlist {
  std::string name = "netlist";
  std::vector<Net> nets;

  std::size_t size() const { return nets.size(); }
  std::int64_t total_pins() const;

  /// Structural validation against `grid`.  Empty string when routable as
  /// a full-chip problem; otherwise the first problem found, in the
  /// repository's check_field message style with the offending net named:
  ///
  ///   Netlist.nets["clk"].pins[2] must not lie on a blocked vertex (got ...)
  ///
  /// Checks: non-empty unique net names, >= 2 pins per net, pins in range,
  /// no pin on an obstacle (blocked) vertex, no duplicate pin inside a net,
  /// and no pin vertex shared between two nets (an electrical short — the
  /// message names both nets).
  std::string validate(const HananGrid& grid) const;
};

/// Serializes `netlist` (grid supplies the vertex -> cell mapping).
/// Returns false on I/O failure.
bool write_netlist(const Netlist& netlist, const HananGrid& grid,
                   std::ostream& out);
bool save_netlist(const Netlist& netlist, const HananGrid& grid,
                  const std::string& path);

/// Parses a netlist, resolving pin cells to vertex indices on `grid`.
/// Returns std::nullopt and fills `error` (when non-null) on malformed
/// input; errors name the offending line.  Structural netlist validation
/// (blocked pins, cross-net duplicates) is Netlist::validate's job — the
/// parser only enforces format-level rules so a netlist for a grid variant
/// with different obstacles can still be loaded and inspected.
std::optional<Netlist> read_netlist(std::istream& in, const HananGrid& grid,
                                    std::string* error = nullptr);
std::optional<Netlist> load_netlist(const std::string& path,
                                    const HananGrid& grid,
                                    std::string* error = nullptr);

}  // namespace oar::chip
