#include "nn/gradcheck.hpp"

#include <algorithm>
#include <cmath>

namespace oar::nn {

namespace {

double objective(Module& module, const Tensor& input, const Tensor& weights) {
  const Tensor out = module.forward(input);
  assert(out.shape() == weights.shape());
  double s = 0.0;
  for (std::int64_t i = 0; i < out.numel(); ++i) s += double(out[i]) * weights[i];
  return s;
}

std::vector<std::int64_t> sample_indices(std::int64_t n, int max_entries,
                                         util::Rng& rng) {
  std::vector<std::int64_t> idx;
  if (n <= max_entries) {
    idx.resize(std::size_t(n));
    for (std::int64_t i = 0; i < n; ++i) idx[std::size_t(i)] = i;
  } else {
    for (int i = 0; i < max_entries; ++i) idx.push_back(rng.uniform_int(0, n - 1));
    std::sort(idx.begin(), idx.end());
    idx.erase(std::unique(idx.begin(), idx.end()), idx.end());
  }
  return idx;
}

}  // namespace

GradCheckResult grad_check(Module& module, const Tensor& input,
                           const Tensor& loss_weights, util::Rng& rng,
                           double epsilon, double rtol, int max_entries,
                           double atol) {
  GradCheckResult result;

  // Finite differences verify the reference training path by definition;
  // inference-mode modules (e.g. a freshly constructed SteinerSelector's
  // net) would neither retain activations nor admit backward().
  module.set_training(true);

  // Analytic pass.
  module.zero_grad();
  const Tensor out = module.forward(input);
  (void)out;
  Tensor analytic_input_grad = module.backward(loss_weights);

  // Baseline objective, shared by the kink test of every probed entry.
  const double f0 = objective(module, input, loss_weights);

  // A probe sits on a ReLU-style kink when its two one-sided difference
  // quotients disagree; central differences are meaningless there, so such
  // entries are skipped rather than reported as gradient errors.
  auto update = [&](double analytic, double plus, double minus) {
    const double fwd = (plus - f0) / epsilon;
    const double bwd = (f0 - minus) / epsilon;
    const double scale = std::max({std::abs(fwd), std::abs(bwd), 1e-3});
    if (std::abs(fwd - bwd) > 0.2 * scale) return;  // non-smooth point
    const double numeric = (plus - minus) / (2.0 * epsilon);
    const double abs_err = std::abs(analytic - numeric);
    const double denom = std::max({std::abs(analytic), std::abs(numeric), 1e-3});
    result.max_abs_error = std::max(result.max_abs_error, abs_err);
    result.max_rel_error = std::max(result.max_rel_error, abs_err / denom);
    if (abs_err > atol + rtol * std::abs(numeric)) ++result.violations;
  };

  // Input gradient entries.
  Tensor probe = input;
  for (std::int64_t i : sample_indices(input.numel(), max_entries, rng)) {
    const float saved = probe[i];
    probe[i] = saved + float(epsilon);
    const double plus = objective(module, probe, loss_weights);
    probe[i] = saved - float(epsilon);
    const double minus = objective(module, probe, loss_weights);
    probe[i] = saved;
    update(analytic_input_grad[i], plus, minus);
  }

  // Parameter gradient entries.
  for (Parameter* p : module.parameters()) {
    for (std::int64_t i : sample_indices(p->value.numel(), max_entries, rng)) {
      const float saved = p->value[i];
      p->value[i] = saved + float(epsilon);
      const double plus = objective(module, input, loss_weights);
      p->value[i] = saved - float(epsilon);
      const double minus = objective(module, input, loss_weights);
      p->value[i] = saved;
      update(p->grad[i], plus, minus);
    }
  }

  result.ok = result.violations == 0;
  return result;
}

}  // namespace oar::nn
