file(REMOVE_RECURSE
  "CMakeFiles/oar_rl_selector.dir/selector.cpp.o"
  "CMakeFiles/oar_rl_selector.dir/selector.cpp.o.d"
  "liboar_rl_selector.a"
  "liboar_rl_selector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oar_rl_selector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
