file(REMOVE_RECURSE
  "liboar_util.a"
)
