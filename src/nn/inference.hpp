#pragma once

// Inference-mode workspace arena for the single-sample U-Net fast path
// (DESIGN.md §11).
//
// Every `UNet3d::forward` in training mode heap-allocates each intermediate
// activation and retains inputs for backward; the MCTS hot loop calls it
// thousands of times per episode and never backprops.  An InferenceScratch
// owns (a) a pool of activation tensors handed out in pass order via
// push()/rewind() — ping-pong buffers sized to the layer high-water mark —
// and (b) the named flat workspaces of the tiled convolution kernels
// (transposed weights, im2col panel, GEMM product panel, accumulator
// block).  Everything is grow-only, so after one warmed-up pass of a given
// layout size a full inference forward performs zero heap allocations
// (asserted by tests/test_inference.cpp via an operator-new counting hook
// and the grow_events() counter below).
//
// Threading contract (mirrors route::RouterScratch): an InferenceScratch is
// NOT thread safe and must not be shared between concurrently running
// forwards.  Each UNet3d owns one (so one selector == one arena, which is
// what threads ActorCritic, serve::BatchedSelector and the trainer clone
// pool correctly — they all hold per-worker selectors); standalone
// eval-mode layer forwards fall back to local_inference_scratch(), one per
// thread.
//
// Lifetime contract: tensors returned by push() stay valid until the slot
// is handed out again after a rewind().  UNet3d::infer never rewinds — the
// caller rewinds first, optionally push()es the input tensor, then runs
// infer, so arena-resident inputs survive the pass.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "nn/tensor.hpp"

namespace oar::nn {

class InferenceScratch {
 public:
  InferenceScratch() = default;
  InferenceScratch(const InferenceScratch&) = delete;
  InferenceScratch& operator=(const InferenceScratch&) = delete;

  /// Next pooled activation tensor, re-dimensioned to `shape`; contents are
  /// unspecified.  Slots are unique_ptr-backed so the returned reference
  /// stays stable across later push() calls.
  Tensor& push(const std::vector<std::int32_t>& shape);
  /// Braced-shape variant; preferred in the hot loop because it never
  /// materializes a std::vector for the shape argument.
  Tensor& push(std::initializer_list<std::int32_t> shape);

  /// Hand all slots back without releasing memory.
  void rewind() { used_ = 0; }
  std::size_t used() const { return used_; }

  // Named kernel workspaces, grow-only.  wt: (K, OC)-transposed conv
  // weights; col/prod/acc: im2col panel, GEMM output panel, register block.
  float* wt(std::size_t n) { return ensure(wt_, n); }
  float* col(std::size_t n) { return ensure(col_, n); }
  float* prod(std::size_t n) { return ensure(prod_, n); }
  float* acc(std::size_t n) { return ensure(acc_, n); }

  /// Number of capacity-growth events (new slot, or any slot/workspace
  /// outgrowing its storage).  A warmed-up arena must hold this constant —
  /// the allocation-freeness hook used by tests and benchmarks.
  std::uint64_t grow_events() const { return grow_events_; }

 private:
  Tensor& next_slot();
  float* ensure(std::vector<float>& v, std::size_t n);

  std::vector<std::unique_ptr<Tensor>> slots_;
  std::size_t used_ = 0;
  std::vector<float> wt_;
  std::vector<float> col_;
  std::vector<float> prod_;
  std::vector<float> acc_;
  std::uint64_t grow_events_ = 0;
};

/// Per-thread fallback arena for inference-mode layer forwards that run
/// outside a UNet3d (which owns its own scratch).
InferenceScratch& local_inference_scratch();

}  // namespace oar::nn
