#pragma once

// Physical routing tree on a Hanan grid: a set of unit grid edges.  The
// tree is what the OARMST router produces and what every cost number in
// the benchmarks is computed from.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "hanan/hanan_grid.hpp"

namespace oar::route {

using hanan::HananGrid;
using hanan::Vertex;

/// Canonical grid edge (a < b, adjacent vertices).
struct GridEdge {
  Vertex a = hanan::kInvalidVertex;
  Vertex b = hanan::kInvalidVertex;

  friend auto operator<=>(const GridEdge&, const GridEdge&) = default;
};

class RouteTree {
 public:
  explicit RouteTree(const HananGrid* grid = nullptr) : grid_(grid) {}

  /// Re-points the tree at an equivalent grid (same dims/costs).  Needed
  /// when a tree outlives the grid instance it was built against (e.g. the
  /// per-net grids of core::route_nets).
  void rebind_grid(const HananGrid* grid) { grid_ = grid; }

  /// Adds the edge (deduplicated); returns true when newly inserted.
  bool add_edge(Vertex a, Vertex b);

  /// Adds every consecutive pair of `path` as an edge.
  void add_path(const std::vector<Vertex>& path);

  const std::vector<GridEdge>& edges() const { return edges_; }
  std::size_t num_edges() const { return edges_.size(); }
  bool empty() const { return edges_.empty(); }

  bool contains_vertex(Vertex v) const { return degree_.count(v) > 0; }
  int degree(Vertex v) const;

  /// Total cost: sum of grid edge costs over the (deduplicated) edge set.
  double cost() const;

  /// All distinct vertices touched by the tree.
  std::vector<Vertex> vertices() const;

  /// Checks the tree is a connected acyclic subgraph of usable grid edges
  /// spanning all of `terminals`.  Empty string when valid.
  std::string validate(const std::vector<Vertex>& terminals) const;

 private:
  static std::uint64_t key(Vertex a, Vertex b) {
    return (std::uint64_t(std::uint32_t(a)) << 32) | std::uint32_t(b);
  }

  const HananGrid* grid_;
  std::vector<GridEdge> edges_;
  std::unordered_set<std::uint64_t> edge_keys_;
  std::unordered_map<Vertex, int> degree_;
};

}  // namespace oar::route
