#include "route/astar.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>

namespace oar::route {

AStarRouter::AStarRouter(const HananGrid& grid) : grid_(grid) {
  const auto n = std::size_t(grid.num_vertices());
  g_.assign(n, kInf);
  parent_.assign(n, hanan::kInvalidVertex);
  epoch_.assign(n, 0);

  x_prefix_.assign(std::size_t(grid.h_dim()), 0.0);
  for (std::int32_t h = 1; h < grid.h_dim(); ++h) {
    x_prefix_[std::size_t(h)] = x_prefix_[std::size_t(h - 1)] + grid.x_step(h - 1);
  }
  y_prefix_.assign(std::size_t(grid.v_dim()), 0.0);
  for (std::int32_t v = 1; v < grid.v_dim(); ++v) {
    y_prefix_[std::size_t(v)] = y_prefix_[std::size_t(v - 1)] + grid.y_step(v - 1);
  }
}

double AStarRouter::heuristic(Vertex from, Vertex target) const {
  const auto a = grid_.cell(from);
  const auto b = grid_.cell(target);
  return std::abs(x_prefix_[std::size_t(a.h)] - x_prefix_[std::size_t(b.h)]) +
         std::abs(y_prefix_[std::size_t(a.v)] - y_prefix_[std::size_t(b.v)]) +
         grid_.via_cost() * std::abs(a.m - b.m);
}

bool AStarRouter::search(Vertex source, Vertex target) {
  assert(source >= 0 && source < grid_.num_vertices());
  assert(target >= 0 && target < grid_.num_vertices());
  ++current_epoch_;
  if (current_epoch_ == 0) {
    std::fill(epoch_.begin(), epoch_.end(), 0u);
    current_epoch_ = 1;
  }
  last_settled_ = 0;
  last_distance_ = kInf;
  last_target_ = target;
  if (grid_.is_blocked(source) || grid_.is_blocked(target)) return false;

  using Entry = std::pair<double, Vertex>;  // (f = g + h, vertex)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> open;

  g_[std::size_t(source)] = 0.0;
  parent_[std::size_t(source)] = source;
  epoch_[std::size_t(source)] = current_epoch_;
  open.emplace(heuristic(source, target), source);

  while (!open.empty()) {
    const auto [f, u] = open.top();
    open.pop();
    const double gu = g_[std::size_t(u)];
    if (epoch_[std::size_t(u)] != current_epoch_ ||
        f > gu + heuristic(u, target) + 1e-12) {
      continue;  // stale entry
    }
    ++last_settled_;
    if (u == target) {
      last_distance_ = gu;
      return true;
    }
    grid_.for_each_neighbor(u, [&](Vertex nb, double w) {
      const double ng = gu + w;
      if (epoch_[std::size_t(nb)] != current_epoch_ || ng < g_[std::size_t(nb)]) {
        g_[std::size_t(nb)] = ng;
        parent_[std::size_t(nb)] = u;
        epoch_[std::size_t(nb)] = current_epoch_;
        open.emplace(ng + heuristic(nb, target), nb);
      }
    });
  }
  return false;
}

double AStarRouter::distance(Vertex source, Vertex target) {
  return search(source, target) ? last_distance_ : kInf;
}

std::vector<Vertex> AStarRouter::path(Vertex source, Vertex target) {
  if (!search(source, target)) return {};
  std::vector<Vertex> out;
  Vertex cur = target;
  while (true) {
    out.push_back(cur);
    const Vertex p = parent_[std::size_t(cur)];
    if (p == cur) break;
    cur = p;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace oar::route
