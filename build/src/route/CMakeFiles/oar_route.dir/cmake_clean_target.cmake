file(REMOVE_RECURSE
  "liboar_route.a"
)
